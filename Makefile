# Build, verify, and benchmark targets for the LinBP reproduction.
#
#   make verify   - tier-1 gate: build + gofmt + vet + full test suite
#   make bench    - run every benchmark with -benchmem and archive the
#                   results as BENCH_results.json via cmd/benchjson
#   make bench-quick - the headline kernel benchmarks only (fast)
#   make bench-batch - the prepared-Solver serving benchmark: SolveBatch
#                   vs sequential one-shot Solve throughput rows into
#                   BENCH_results.json
#   make bench-reorder - the graph-layout comparison on a >=100k-node
#                   Kronecker graph (PR 2 wide/natural layout vs the
#                   compact-index + auto-reordered one), archived into
#                   BENCH_results.json
#   make race     - race-detector pass over the concurrent packages
#
# Tuning knobs (see EXPERIMENTS.md):
#   LSBP_BENCH_MAXGRAPH=N  largest Fig. 6a Kronecker graph to bench (1-9)
#   LSBP_BENCH_REORDER_POWER=P  Kronecker power of the layout benchmarks
#                   (default 11 = 177,147 nodes)

GO ?= go
BENCHTIME ?= 1s

.PHONY: verify test fmt vet build bench bench-quick bench-batch bench-reorder race

verify: build fmt vet test

build:
	$(GO) build ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/kernel/ ./internal/linbp/ ./internal/sparse/ ./internal/fabp/ ./internal/core/

bench:
	$(GO) test -bench . -benchmem -run '^$$' -benchtime $(BENCHTIME) ./... | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json

bench-quick:
	$(GO) test -bench 'Fig7aLinBP|EngineReuse' -benchmem -run '^$$' -benchtime 300ms . | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json

bench-batch:
	$(GO) test -bench 'SolveBatch' -benchmem -run '^$$' -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json

bench-reorder:
	$(GO) test -bench 'BenchmarkReorder' -benchmem -run '^$$' -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json
