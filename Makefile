# Build, verify, and benchmark targets for the LinBP reproduction.
#
#   make verify   - tier-1 gate: build + gofmt + vet + lint + full test
#                   suite + the race-detector pass over the concurrent
#                   packages + the crash-recovery fault-injection matrix
#                   under -race
#   make lint     - the lsbplint invariant analyzers (hot-path allocs,
#                   atomic fields, error taxonomy, durable format lock,
#                   RACE_PKGS completeness) + staticcheck/govulncheck
#                   when installed
#   make test-race - race-detector pass (the 32-goroutine shared-Solver
#                   stress, the partitioned kernel, the pools)
#   make cover    - per-package coverage with a floor: fails when any of
#                   internal/{kernel,order,sparse,core} drops below
#                   $(COVER_FLOOR)% statement coverage
#   make bench    - run every benchmark with -benchmem and archive the
#                   results as BENCH_results.json via cmd/benchjson
#   make bench-quick - the headline kernel benchmarks only (fast)
#   make bench-batch - the prepared-Solver serving benchmark: SolveBatch
#                   vs sequential one-shot Solve throughput rows into
#                   BENCH_results.json
#   make bench-reorder - the graph-layout comparison on a >=100k-node
#                   Kronecker graph (PR 2 wide/natural layout vs the
#                   compact-index + auto-reordered one), archived into
#                   BENCH_results.json
#   make bench-partition - the partition-parallel plane vs the PR 3
#                   baseline on the same large Kronecker graph
#                   (partitions 1..GOMAXPROCS + the span pool), archived
#                   into BENCH_results.json
#   make bench-update - the dynamic-plane benchmark on the same large
#                   Kronecker graph: Update round-trip (overlay commit +
#                   epoch swap + re-solve) warm vs cold, plus the
#                   belief-only and single-edge commit throughput,
#                   archived into BENCH_results.json
#   make bench-residual - the residual-schedule benchmark on the same
#                   large Kronecker graph: Update absorbing a <=0.1%
#                   edge delta under the rounds vs residual vs auto
#                   schedules, plus the delta-size scaling sweep,
#                   archived into BENCH_results.json
#   make bench-durable - the durable-plane benchmark: snapshot-load cold
#                   start (Open) vs full re-Prepare on the same large
#                   Kronecker graph, plus WAL append overhead per fsync
#                   policy, archived into BENCH_results.json
#   make bench-serve - the serving front-end benchmark: closed-loop
#                   Solve throughput through admission control and
#                   request coalescing, archived into BENCH_results.json
#   make crash    - the fault-injection crash-recovery matrix (torn
#                   appends, bit rot, lying fsyncs, interrupted
#                   checkpoints) under -race
#   make loadtest - the serving-plane overload smoke: the closed-loop
#                   2x-saturation shed/recovery test, the WAL-broken
#                   degraded-mode flip, and the lsbpd daemon boot/drain
#                   round trip — under -race
#
# Tuning knobs (see EXPERIMENTS.md):
#   LSBP_BENCH_MAXGRAPH=N  largest Fig. 6a Kronecker graph to bench (1-9)
#   LSBP_BENCH_REORDER_POWER=P  Kronecker power of the layout/partition
#                   benchmarks (default 11 = 177,147 nodes)
#   LSBP_BENCH_RESIDUAL_EPS=E  skip bench-residual's one-time auto-εH
#                   spectral derivation (minutes at power 11) and use E
#                   (deterministic per power; 0.01497919... at 11)

GO ?= go
BENCHTIME ?= 1s
COVER_FLOOR ?= 70
COVER_PKGS = internal/kernel internal/order internal/sparse internal/core internal/difftest internal/durable internal/errs internal/serve cmd/benchjson
# RACE_PKGS must cover every concurrency-relevant ./internal/ package
# (directly or through module-internal imports); `make lint` fails if
# one is missing (internal/analysis race-pkgs check). Extra entries are
# allowed.
RACE_PKGS = ./internal/kernel/ ./internal/linbp/ ./internal/sparse/ ./internal/fabp/ \
	./internal/core/ ./internal/difftest/ ./internal/durable/ ./internal/bp/ \
	./internal/sbp/ ./internal/order/ ./internal/experiments/ ./internal/gen/ \
	./internal/learn/ ./internal/mooij/ ./internal/relalgo/ ./internal/spectral/ \
	./internal/serve/ ./internal/metrics/

.PHONY: verify test fmt vet build cover lint bench bench-quick bench-batch bench-reorder bench-partition bench-update bench-residual bench-durable race test-race crash

verify: build fmt vet lint test test-race crash

build:
	$(GO) build ./...

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# The invariant lint gate: the in-tree analyzer suite (hot-path
# allocation freedom, atomic-field discipline, error taxonomy, durable
# format locking, RACE_PKGS completeness), plus staticcheck and
# govulncheck when those tools are installed (they are not vendored, so
# offline builds skip them).
lint:
	$(GO) run ./cmd/lsbplint -makefile Makefile ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else echo "govulncheck not installed; skipping"; fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race $(RACE_PKGS)

# Kept as an alias for the pre-PR 4 target name.
race: test-race

# The durable-plane acceptance matrix: every injected fault (torn WAL
# append, bit rot in log or snapshot, dropped/failed fsyncs, power
# loss mid-checkpoint) must recover to a pinned update prefix or fail
# with a typed error — under the race detector, since recovery shares
# the epoch-swap machinery with concurrent serving.
crash:
	$(GO) test -race -run 'Crash|Durable|TestWAL|TestSnapshot|TestMemFS' ./internal/difftest/ ./internal/core/ ./internal/durable/

cover:
	@set -e; for pkg in $(COVER_PKGS); do \
		pct=$$($(GO) test -cover ./$$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "$$pkg: no coverage output"; exit 1; fi; \
		echo "$$pkg: $$pct%"; \
		awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(p >= f) }' || \
			{ echo "FAIL: $$pkg coverage $$pct% below floor $(COVER_FLOOR)%"; exit 1; }; \
	done

bench:
	$(GO) test -bench . -benchmem -run '^$$' -benchtime $(BENCHTIME) ./... | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json

bench-quick:
	$(GO) test -bench 'Fig7aLinBP|EngineReuse' -benchmem -run '^$$' -benchtime 300ms . | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json

bench-batch:
	$(GO) test -bench 'SolveBatch' -benchmem -run '^$$' -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json

bench-reorder:
	$(GO) test -bench 'BenchmarkReorder' -benchmem -run '^$$' -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json

bench-partition:
	$(GO) test -bench 'BenchmarkPartition' -benchmem -run '^$$' -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json

bench-update:
	$(GO) test -bench 'BenchmarkUpdate' -benchmem -run '^$$' -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json

bench-residual:
	$(GO) test -bench 'BenchmarkResidual' -benchmem -run '^$$' -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json

bench-durable:
	$(GO) test -bench 'BenchmarkColdStart|BenchmarkWALAppend' -benchmem -run '^$$' -benchtime $(BENCHTIME) . | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json

bench-serve:
	$(GO) test -bench 'BenchmarkServe' -benchmem -run '^$$' -benchtime $(BENCHTIME) ./internal/serve/ | $(GO) run ./cmd/benchjson > BENCH_results.json
	@echo wrote BENCH_results.json

# The serving-plane acceptance smoke (see EXPERIMENTS.md "Overload
# behavior"): typed shedding at 2x saturation with bounded p99 and
# clean recovery, the degraded-mode flip on a broken WAL, and a full
# lsbpd boot -> serve -> drain round trip.
.PHONY: loadtest
loadtest:
	$(GO) test -race -count=1 -run 'TestClosedLoopOverload|TestDegradedModeOnWALBreak|TestEveryShedPathIsTyped|TestDaemon' ./internal/serve/ ./cmd/lsbpd/
