// Ablation benchmarks for the design choices DESIGN.md calls out:
// echo cancellation on/off, the CSR kernel against a naive triplet
// multiply, belief-space updates against message-space BP, and the
// sorted ΔSBP schedule against Algorithm 4's simultaneous waves.
package lsbp_test

import (
	"testing"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linbp"
	"repro/internal/sbp"
)

// BenchmarkAblationEchoOn measures LinBP with the echo-cancellation
// term: one extra k×k transform per node per iteration.
func BenchmarkAblationEchoOn(b *testing.B) {
	g, e := kron(maxBenchGraph())
	h := fig6bH()
	for i := 0; i < b.N; i++ {
		if _, err := linbp.Run(g, e, h, linbp.Options{EchoCancellation: true, MaxIter: timingIters, Tol: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEchoOff measures LinBP* — the cost saved by dropping
// the echo term (Eq. 5 vs Eq. 4).
func BenchmarkAblationEchoOff(b *testing.B) {
	g, e := kron(maxBenchGraph())
	h := fig6bH()
	for i := 0; i < b.N; i++ {
		if _, err := linbp.Run(g, e, h, linbp.Options{EchoCancellation: false, MaxIter: timingIters, Tol: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCSRMulDense measures the CSR SpMM kernel (A·Bˆ), the
// hot loop of LinBP.
func BenchmarkAblationCSRMulDense(b *testing.B) {
	g, _ := kron(maxBenchGraph())
	a := g.Adjacency()
	n, k := g.N(), 3
	x := make([]float64, n*k)
	for i := range x {
		x[i] = float64(i%13) * 0.01
	}
	y := make([]float64, n*k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulDenseInto(y, x, k)
	}
}

// BenchmarkAblationTripletMulDense is the naive alternative: multiply
// from the raw edge list without the CSR layout. The CSR kernel wins on
// locality (row-major accumulation vs scattered writes).
func BenchmarkAblationTripletMulDense(b *testing.B) {
	g, _ := kron(maxBenchGraph())
	edges := g.Edges()
	n, k := g.N(), 3
	x := make([]float64, n*k)
	for i := range x {
		x[i] = float64(i%13) * 0.01
	}
	y := make([]float64, n*k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range y {
			y[j] = 0
		}
		for _, e := range edges {
			for c := 0; c < k; c++ {
				y[e.S*k+c] += e.W * x[e.T*k+c]
				y[e.T*k+c] += e.W * x[e.S*k+c]
			}
		}
	}
}

// BenchmarkAblationDeltaEdgesWave measures Algorithm 4's simultaneous
// waves on a batch engineered to trigger re-updates.
func BenchmarkAblationDeltaEdgesWave(b *testing.B) {
	benchDeltaEdges(b, func(st *sbp.State, batch []graph.Edge) error {
		return st.AddEdges(batch)
	})
}

// BenchmarkAblationDeltaEdgesSorted measures the Appendix C sorted
// schedule on the same batch.
func BenchmarkAblationDeltaEdgesSorted(b *testing.B) {
	benchDeltaEdges(b, func(st *sbp.State, batch []graph.Edge) error {
		return st.AddEdgesSorted(batch)
	})
}

func benchDeltaEdges(b *testing.B, update func(*sbp.State, []graph.Edge) error) {
	b.Helper()
	base := gen.Kronecker(gen.KroneckerGraphNumber(min(maxBenchGraph(), 3)))
	n := base.N()
	e, _ := beliefs.Seed(n, 3, beliefs.SeedConfig{Fraction: 0.02, Seed: 8})
	// Shortcut batch touching several depths at once.
	seeds := e.ExplicitNodes()
	var batch []graph.Edge
	for i := 0; i < 10 && i < len(seeds); i++ {
		batch = append(batch, graph.Edge{S: seeds[i], T: (seeds[i] + n/2) % n, W: 1})
	}
	h := coupling.Fig6bResidual()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := sbp.Run(base.Clone(), e, h)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := update(st, batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSeedFraction contrasts SBP cost at sparse vs dense
// labeling — the mechanism behind Fig. 10(a).
func BenchmarkAblationSeedFraction(b *testing.B) {
	g, _ := kron(min(maxBenchGraph(), 3))
	h := coupling.Fig6bResidual()
	for _, frac := range []float64{0.01, 0.5} {
		e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: frac, Seed: 2})
		b.Run(benchName(frac), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sbp.Run(g, e, h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(frac float64) string {
	if frac < 0.1 {
		return "sparse1pct"
	}
	return "dense50pct"
}

// BenchmarkAblationWorkers1 and Workers4 contrast the serial SpMM
// kernel (the paper's single-processor evaluation setting) against the
// goroutine-parallel one (the Parallel Colt role in the JAVA runs).
func BenchmarkAblationWorkers1(b *testing.B) {
	benchWorkers(b, 1)
}

// BenchmarkAblationWorkers4 is the 4-goroutine variant.
func BenchmarkAblationWorkers4(b *testing.B) {
	benchWorkers(b, 4)
}

func benchWorkers(b *testing.B, workers int) {
	b.Helper()
	g, e := kron(maxBenchGraph())
	h := fig6bH()
	for i := 0; i < b.N; i++ {
		if _, err := linbp.Run(g, e, h, linbp.Options{
			EchoCancellation: true, MaxIter: timingIters, Tol: -1, Workers: workers,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
