// Benchmarks regenerating the timing side of every table and figure in
// the paper's evaluation. Each benchmark name carries the paper
// artifact it reproduces; EXPERIMENTS.md maps results back to the
// paper's numbers. Graph sizes default to the small end of Fig. 6a so
// `go test -bench=.` finishes quickly; set LSBP_BENCH_MAXGRAPH (1–9) to
// scale up.
package lsbp_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/bp"
	"repro/internal/core"
	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/fabp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linbp"
	"repro/internal/mooij"
	"repro/internal/relalgo"
	"repro/internal/reldb"
	"repro/internal/sbp"
)

// maxBenchGraph returns the largest Fig. 6a graph number to bench.
func maxBenchGraph() int {
	if s := os.Getenv("LSBP_BENCH_MAXGRAPH"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 && v <= 9 {
			return v
		}
	}
	return 3
}

// kron builds the Fig. 6a workload: graph #num with 5% explicit beliefs.
func kron(num int) (*graph.Graph, *beliefs.Residual) {
	g := gen.Kronecker(gen.KroneckerGraphNumber(num))
	e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: 0.05, Seed: uint64(num)})
	g.Adjacency() // warm caches so benches measure computation only
	g.WeightedDegrees()
	return g, e
}

// fig6bH returns the synthetic coupling Hˆ = 0.001·Hˆo of the timing runs.
func fig6bH() *dense.Matrix { return coupling.Fig6bResidual().Scaled(0.001) }

const timingIters = 5 // the paper times BP and LinBP for 5 iterations

// BenchmarkFig7aBP times standard BP (in-memory) per Fig. 6a graph —
// the slow line of Fig. 7(a) and the "BP (JAVA)" column of Fig. 7(c).
func BenchmarkFig7aBP(b *testing.B) {
	h := coupling.Uncenter(fig6bH())
	for num := 1; num <= maxBenchGraph(); num++ {
		g, e := kron(num)
		es := e.Clone().Scale(0.1 / e.Matrix().MaxAbs())
		b.Run(fmt.Sprintf("graph%d_edges%d", num, g.DirectedEdgeCount()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bp.Run(g, es, h, bp.Options{MaxIter: timingIters, Tol: -1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7aLinBP times in-memory LinBP — the fast line of
// Fig. 7(a) and the "LinBP (JAVA)" column of Fig. 7(c).
func BenchmarkFig7aLinBP(b *testing.B) {
	h := fig6bH()
	for num := 1; num <= maxBenchGraph(); num++ {
		g, e := kron(num)
		b.Run(fmt.Sprintf("graph%d_edges%d", num, g.DirectedEdgeCount()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := linbp.Run(g, e, h, linbp.Options{EchoCancellation: true, MaxIter: timingIters, Tol: -1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7aLinBPParallel is BenchmarkFig7aLinBP with the fused
// kernel's row-partitioned worker pool at Workers = NumCPU (the role
// Parallel Colt played in the paper's JAVA runs). On a single-core host
// it degenerates to the serial fused kernel.
func BenchmarkFig7aLinBPParallel(b *testing.B) {
	h := fig6bH()
	workers := runtime.NumCPU()
	for num := 1; num <= maxBenchGraph(); num++ {
		g, e := kron(num)
		b.Run(fmt.Sprintf("graph%d_edges%d", num, g.DirectedEdgeCount()), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := linbp.Run(g, e, h, linbp.Options{EchoCancellation: true, MaxIter: timingIters, Tol: -1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineReuse is the serving scenario: one prepared LinBP
// engine answering repeated solves on the same graph. The fused kernel
// reuses every buffer, so steady state must report 0 allocs/op (the
// one-shot BenchmarkFig7aLinBP pays a fresh result matrix per call).
func BenchmarkEngineReuse(b *testing.B) {
	h := fig6bH()
	workers := runtime.NumCPU()
	for num := 1; num <= maxBenchGraph(); num++ {
		g, e := kron(num)
		b.Run(fmt.Sprintf("graph%d_edges%d", num, g.DirectedEdgeCount()), func(b *testing.B) {
			eng, err := linbp.NewEngine(g, h, linbp.Options{EchoCancellation: true, MaxIter: timingIters, Tol: -1, Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			dst := beliefs.New(g.N(), 3)
			if _, _, _, err := eng.SolveInto(dst, e); err != nil { // warm the worker pool
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := eng.SolveInto(dst, e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveBatch measures the serving surface of the unified
// prepared-Solver API on the Fig. 7a graph3 workload (5 fixed LinBP
// rounds, the paper's timing convention): R independent classification
// requests answered (a) by R sequential one-shot lsbp.Solve calls —
// each paying validation, preparation, the result matrix, and the top
// assignment — and (b) by one SolveBatch on a prepared solver, which
// fuses the requests into multi-block kernel rounds that traverse the
// CSR once per round for the whole batch. Compare the oneshot and
// batch ns/op per request; the batch path is the serving-throughput
// row EXPERIMENTS.md tracks.
func BenchmarkSolveBatch(b *testing.B) {
	const nreq = 16
	g, _ := kron(3)
	ho := coupling.Fig6bResidual()
	p := &core.Problem{Graph: g, Explicit: beliefs.New(g.N(), 3), Ho: ho, EpsilonH: 0.001}
	es := make([]*beliefs.Residual, nreq)
	for i := range es {
		es[i], _ = beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: 0.05, Seed: uint64(i + 1)})
	}

	b.Run(fmt.Sprintf("oneshot_%dreq", nreq), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, e := range es {
				q := &core.Problem{Graph: g, Explicit: e, Ho: ho, EpsilonH: 0.001}
				if _, err := core.Solve(q, core.MethodLinBP, core.Options{MaxIter: timingIters, Tol: -1}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run(fmt.Sprintf("batch_%dreq", nreq), func(b *testing.B) {
		s, err := core.Prepare(p, core.MethodLinBP, core.WithMaxIter(timingIters), core.WithTol(-1))
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		reqs := make([]core.Request, nreq)
		for i, e := range es {
			reqs[i] = core.Request{E: e, Dst: beliefs.New(g.N(), 3)}
		}
		ctx := context.Background()
		s.SolveBatch(ctx, reqs) // warm the fused engine
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range s.SolveBatch(ctx, reqs) {
				if r.Err != nil && !errors.Is(r.Err, core.ErrNotConverged) {
					b.Fatal(r.Err)
				}
			}
		}
	})
}

// BenchmarkFig7bRelLinBP times LinBP on the relational engine — the
// "LinBP (SQL)" series of Fig. 7(b)/(c).
func BenchmarkFig7bRelLinBP(b *testing.B) {
	for num := 1; num <= min(maxBenchGraph(), 3); num++ {
		g, e := kron(num)
		db := relalgo.Load(g, e, fig6bH())
		b.Run(fmt.Sprintf("graph%d", num), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db.LinBP(timingIters, true)
			}
		})
	}
}

// BenchmarkFig7bRelSBP times SBP on the relational engine — the "SBP
// (SQL)" series of Fig. 7(b)/(c).
func BenchmarkFig7bRelSBP(b *testing.B) {
	for num := 1; num <= min(maxBenchGraph(), 3); num++ {
		g, e := kron(num)
		db := relalgo.Load(g, e, coupling.Fig6bResidual())
		b.Run(fmt.Sprintf("graph%d", num), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db.SBP()
			}
		})
	}
}

// BenchmarkFig7bRelDeltaSBP times the incremental ΔSBP update that
// relabels 1‰ of all nodes — the "ΔSBP" series of Fig. 7(b)/(c).
func BenchmarkFig7bRelDeltaSBP(b *testing.B) {
	for num := 1; num <= min(maxBenchGraph(), 3); num++ {
		g, e := kron(num)
		count := g.N() / 1000
		if count < 1 {
			count = 1
		}
		fresh, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Count: count, Seed: 99})
		en := reldb.New("En", []string{"v", "c", "b"})
		for _, v := range fresh.ExplicitNodes() {
			for c, bb := range fresh.Row(v) {
				if bb != 0 {
					en.Insert(float64(v), float64(c), bb)
				}
			}
		}
		b.Run(fmt.Sprintf("graph%d", num), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := relalgo.Load(g, e, coupling.Fig6bResidual())
				st := db.SBP()
				b.StartTimer()
				st.AddExplicitBeliefs(en)
			}
		})
	}
}

// BenchmarkFig7dLinBPIteration times one LinBP round (the per-iteration
// cost LinBP pays on every round, Fig. 7(d)).
func BenchmarkFig7dLinBPIteration(b *testing.B) {
	g, e := kron(maxBenchGraph())
	h := fig6bH()
	for i := 0; i < b.N; i++ {
		if _, err := linbp.Run(g, e, h, linbp.Options{EchoCancellation: true, MaxIter: 1, Tol: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7dSBPFull times a complete SBP pass (all geodesic levels;
// each edge visited at most once, Fig. 7(d)'s point).
func BenchmarkFig7dSBPFull(b *testing.B) {
	g, e := kron(maxBenchGraph())
	h := coupling.Fig6bResidual()
	for i := 0; i < b.N; i++ {
		if _, err := sbp.Run(g, e, h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7eDeltaBeliefs20pct times ΔSBP with 20% of the final
// explicit beliefs new (left of Fig. 7(e)'s crossover, where
// incremental wins).
func BenchmarkFig7eDeltaBeliefs20pct(b *testing.B) {
	g, _ := kron(min(maxBenchGraph(), 3))
	n := g.N()
	total := n / 10
	all, _ := beliefs.Seed(n, 3, beliefs.SeedConfig{Count: total, Seed: 5})
	nodes := all.ExplicitNodes()
	oldCount := total * 8 / 10
	oldE := beliefs.New(n, 3)
	en := reldb.New("En", []string{"v", "c", "b"})
	for i, v := range nodes {
		if i < oldCount {
			oldE.Set(v, all.Row(v))
			continue
		}
		for c, bb := range all.Row(v) {
			if bb != 0 {
				en.Insert(float64(v), float64(c), bb)
			}
		}
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := relalgo.Load(g, oldE, coupling.Fig6bResidual())
		st := db.SBP()
		b.StartTimer()
		st.AddExplicitBeliefs(en)
	}
}

// BenchmarkFig7eScratch is Fig. 7(e)'s horizontal line: recompute SBP
// from scratch with all beliefs present.
func BenchmarkFig7eScratch(b *testing.B) {
	g, _ := kron(min(maxBenchGraph(), 3))
	all, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Count: g.N() / 10, Seed: 5})
	for i := 0; i < b.N; i++ {
		db := relalgo.Load(g, all, coupling.Fig6bResidual())
		db.SBP()
	}
}

// BenchmarkFig7fQualitySweepPoint times one quality-sweep point of
// Fig. 7(f): a BP run to convergence plus a LinBP run plus the
// precision/recall comparison.
func BenchmarkFig7fQualitySweepPoint(b *testing.B) {
	g, e := kron(min(maxBenchGraph(), 3))
	es := e.Clone().Scale(0.1 / e.Matrix().MaxAbs())
	hLin := fig6bH()
	hBP := coupling.Uncenter(hLin)
	for i := 0; i < b.N; i++ {
		bpRes, err := bp.Run(g, es, hBP, bp.Options{MaxIter: 100})
		if err != nil {
			b.Fatal(err)
		}
		linRes, err := linbp.Run(g, e, hLin, linbp.Options{EchoCancellation: true, MaxIter: 200})
		if err != nil {
			b.Fatal(err)
		}
		_ = bpRes.Beliefs.TopAssignment()
		_ = linRes.Beliefs.TopAssignment()
	}
}

// BenchmarkFig10aSBPFractions times SBP at 10% vs 90% explicit nodes
// (Fig. 10(a): SBP gets slightly faster with more labels).
func BenchmarkFig10aSBPFractions(b *testing.B) {
	g, _ := kron(maxBenchGraph())
	h := coupling.Fig6bResidual()
	for _, frac := range []float64{0.1, 0.9} {
		e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: frac, Seed: 3})
		b.Run(fmt.Sprintf("explicit%.0f%%", frac*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sbp.Run(g, e, h); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10bDeltaEdges1pct times ΔSBP edge insertion for 1% new
// edges (left of Fig. 10(b)'s ≈3% crossover).
func BenchmarkFig10bDeltaEdges1pct(b *testing.B) {
	full := gen.Kronecker(gen.KroneckerGraphNumber(min(maxBenchGraph(), 3)))
	n := full.N()
	e, _ := beliefs.Seed(n, 3, beliefs.SeedConfig{Fraction: 0.1, Seed: 4})
	edges := full.Edges()
	newCount := len(edges) / 100
	if newCount < 1 {
		newCount = 1
	}
	base := graph.New(n)
	for _, ed := range edges[:len(edges)-newCount] {
		base.AddEdge(ed.S, ed.T, ed.W)
	}
	batch := append([]graph.Edge(nil), edges[len(edges)-newCount:]...)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := relalgo.Load(base.Clone(), e, coupling.Fig6bResidual())
		st := db.SBP()
		b.StartTimer()
		st.AddEdges(batch)
	}
}

// BenchmarkFig11bDBLP times one LinBP labeling of the DBLP-like graph
// (the workload behind Fig. 11(b)).
func BenchmarkFig11bDBLP(b *testing.B) {
	d := gen.DBLP(gen.DefaultDBLPConfig())
	n := d.G.N()
	e := beliefs.New(n, 4)
	for _, v := range beliefs.SeededNodes(n, beliefs.SeedConfig{Fraction: 0.104, Seed: 1}) {
		e.Set(v, beliefs.LabelResidual(4, d.TrueClass[v], 0.05))
	}
	h := coupling.Fig11aResidual().Scaled(0.001)
	d.G.Adjacency()
	d.G.WeightedDegrees()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linbp.Run(d.G, e, h, linbp.Options{EchoCancellation: true, MaxIter: timingIters, Tol: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEx20ClosedForm times the dense Kronecker-system solve of
// Proposition 7 on the torus (Example 20 / Fig. 4's exact reference).
func BenchmarkEx20ClosedForm(b *testing.B) {
	g := gen.Torus()
	e := beliefs.New(8, 3)
	e.Set(0, []float64{2, -1, -1})
	e.Set(1, []float64{-1, 2, -1})
	e.Set(2, []float64{-1, -1, 2})
	ho, err := coupling.NewResidual(coupling.Fig1c())
	if err != nil {
		b.Fatal(err)
	}
	h := ho.Scaled(0.1)
	for i := 0; i < b.N; i++ {
		if _, err := linbp.ClosedForm(g, e, h, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEx20ExactCriterion times the spectral-radius evaluation of
// Lemma 8 (the cost of checking convergence before running LinBP).
func BenchmarkEx20ExactCriterion(b *testing.B) {
	g, _ := kron(min(maxBenchGraph(), 3))
	h := fig6bH()
	for i := 0; i < b.N; i++ {
		if _, err := linbp.CheckConvergence(g, h, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppGMooijBound times the Mooij–Kappen bound evaluation
// (Appendix G), dominated by the edge-matrix spectral radius.
func BenchmarkAppGMooijBound(b *testing.B) {
	g, _ := kron(1)
	h := coupling.Uncenter(fig6bH())
	for i := 0; i < b.N; i++ {
		if _, _, _, err := mooij.Bound(g, h); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppEFABP times the binary-case scalar solver (Appendix E),
// the cheapest of all the methods.
func BenchmarkAppEFABP(b *testing.B) {
	g, _ := kron(maxBenchGraph())
	e := make([]float64, g.N())
	for i := 0; i < len(e); i += 20 {
		e[i] = 0.1
	}
	for i := 0; i < b.N; i++ {
		if _, err := fabp.Run(g, e, 0.01, fabp.Options{MaxIter: timingIters, Tol: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// reorderBenchPower returns the Kronecker power of the layout
// benchmarks: default 11 (177,147 nodes / ~4.2M directed entries — the
// ≥100k-node scalability regime of Fig. 7 where layout matters),
// overridable with LSBP_BENCH_REORDER_POWER for quick runs.
func reorderBenchPower() int {
	if s := os.Getenv("LSBP_BENCH_REORDER_POWER"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 && v <= 13 {
			return v
		}
	}
	return 11
}

// BenchmarkReorderLinBP compares the prepared graph layouts on a large
// Kronecker workload (5 fixed LinBP rounds per solve, the paper's
// timing convention; same tol/iters across variants):
//
//   - pr2_wide_natural — the PR 2 data plane: natural node order, wide
//     (int) CSR indices, the original row kernels;
//   - compact_natural — the compact-index layout (int32 stream +
//     hoisted kernels), natural order;
//   - compact_auto — compact indices plus the auto-chosen prepare-time
//     reordering (what Prepare does by default on graphs this size).
//
// The acceptance bar of the layout PR is compact_auto ≥ 1.3× faster
// than pr2_wide_natural. The few B/op shown are the ErrNotConverged
// wrap of the fixed-round convention; the converged serving path stays
// at 0 allocs/op under every layout (TestReorderingZeroAlloc).
func BenchmarkReorderLinBP(b *testing.B) {
	power := reorderBenchPower()
	g := gen.Kronecker(power)
	e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: 0.05, Seed: 1})
	p := &core.Problem{Graph: g, Explicit: beliefs.New(g.N(), 3), Ho: coupling.Fig6bResidual(), EpsilonH: 0.001}
	g.Adjacency()
	g.WeightedDegrees()
	for _, tc := range []struct {
		name string
		opts []core.Option
	}{
		{"pr2_wide_natural", []core.Option{core.WithReordering(core.ReorderNone), core.WithCompactIndices(false)}},
		{"compact_natural", []core.Option{core.WithReordering(core.ReorderNone)}},
		{"compact_auto", []core.Option{core.WithReordering(core.ReorderAuto)}},
	} {
		opts := append([]core.Option{core.WithMaxIter(timingIters), core.WithTol(-1)}, tc.opts...)
		b.Run(fmt.Sprintf("%s/power%d_nodes%d", tc.name, power, g.N()), func(b *testing.B) {
			s, err := core.Prepare(p, core.MethodLinBP, opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			dst := beliefs.New(g.N(), 3)
			ctx := context.Background()
			if _, err := s.SolveInto(ctx, dst, e); err != nil && !errors.Is(err, core.ErrNotConverged) {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.SolveInto(ctx, dst, e); err != nil && !errors.Is(err, core.ErrNotConverged) {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReorderSolveBatch extends the layout comparison to the fused
// multi-request path: one 4-request SolveBatch per op over the same
// large Kronecker graph, PR 2 layout vs the auto-reordered compact one.
func BenchmarkReorderSolveBatch(b *testing.B) {
	power := reorderBenchPower()
	g := gen.Kronecker(power)
	p := &core.Problem{Graph: g, Explicit: beliefs.New(g.N(), 3), Ho: coupling.Fig6bResidual(), EpsilonH: 0.001}
	g.Adjacency()
	g.WeightedDegrees()
	const nreq = 4 // one register-blocked rows3x4 chunk
	reqs := make([]core.Request, nreq)
	for i := range reqs {
		e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: 0.05, Seed: uint64(i + 1)})
		reqs[i] = core.Request{E: e, Dst: beliefs.New(g.N(), 3)}
	}
	for _, tc := range []struct {
		name string
		opts []core.Option
	}{
		{"pr2_wide_natural", []core.Option{core.WithReordering(core.ReorderNone), core.WithCompactIndices(false)}},
		{"compact_auto", []core.Option{core.WithReordering(core.ReorderAuto)}},
	} {
		opts := append([]core.Option{core.WithMaxIter(timingIters), core.WithTol(-1)}, tc.opts...)
		b.Run(fmt.Sprintf("%s/power%d_%dreq", tc.name, power, nreq), func(b *testing.B) {
			s, err := core.Prepare(p, core.MethodLinBP, opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			s.SolveBatch(ctx, reqs) // warm the fused engine
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, r := range s.SolveBatch(ctx, reqs) {
					if r.Err != nil && !errors.Is(r.Err, core.ErrNotConverged) {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
