// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so benchmark results can be
// archived (BENCH_results.json) and compared across PRs:
//
//	go test -bench . -benchmem -run '^$' | benchjson > BENCH_results.json
//
// Context lines (goos, goarch, pkg, cpu) are captured as metadata; each
// benchmark line becomes an entry with its iteration count and every
// reported metric (ns/op, B/op, allocs/op, MB/s, custom units).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the -N GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is the b.N the reported averages are over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value, e.g. "ns/op" → 305893.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the full document.
type Report struct {
	// Meta holds the context lines goos/goarch/pkg/cpu (last seen wins
	// per key; multi-package runs append the pkg list under "pkgs").
	Meta map[string]string `json:"meta"`
	// Benchmarks lists every parsed result in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Failures counts lines starting with FAIL or ok-with-error.
	Failures int `json:"failures"`
}

// parseLine parses one "BenchmarkX-N  iters  v unit  v unit ..." line.
// ok is false for non-benchmark lines.
func parseLine(line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	// Need at least name, iterations, and one value+unit pair.
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Procs: 1, Iterations: iters, Metrics: map[string]float64{}}
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// parse consumes the full benchmark output.
func parse(sc *bufio.Scanner) (*Report, error) {
	r := &Report{Meta: map[string]string{}}
	var pkgs []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if b, ok := parseLine(line); ok {
			r.Benchmarks = append(r.Benchmarks, b)
			continue
		}
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				r.Meta[key] = v
				if key == "pkg" {
					pkgs = append(pkgs, v)
				}
			}
		}
		if strings.HasPrefix(line, "FAIL") {
			r.Failures++
		}
	}
	if len(pkgs) > 1 {
		r.Meta["pkgs"] = strings.Join(pkgs, ",")
	}
	return r, sc.Err()
}

func main() {
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr))
}

// run converts in (go test -bench output) to JSON on out, returning
// the process exit code: 1 on a read/encode error or when the input
// reported FAIL lines, 0 otherwise.
func run(in io.Reader, out, errw io.Writer) int {
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	report, err := parse(sc)
	if err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 1
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 1
	}
	if report.Failures > 0 {
		return 1
	}
	return 0
}
