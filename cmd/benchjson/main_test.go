package main

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig7aLinBP/graph3_edges16384        	    1209	    344063 ns/op	   76059 B/op	       6 allocs/op
BenchmarkEngineReuse/graph3_edges16384-8     	    1582	    305893 ns/op	       0 B/op	       0 allocs/op
BenchmarkThroughput                          	     100	   1000000 ns/op	  52.31 MB/s
PASS
ok  	repro	5.242s
`

func TestParse(t *testing.T) {
	r, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if r.Meta["goos"] != "linux" || r.Meta["cpu"] == "" || r.Meta["pkg"] != "repro" {
		t.Fatalf("meta = %v", r.Meta)
	}
	if len(r.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(r.Benchmarks))
	}
	b := r.Benchmarks[0]
	if b.Name != "BenchmarkFig7aLinBP/graph3_edges16384" || b.Procs != 1 || b.Iterations != 1209 {
		t.Fatalf("bench[0] = %+v", b)
	}
	if b.Metrics["ns/op"] != 344063 || b.Metrics["B/op"] != 76059 || b.Metrics["allocs/op"] != 6 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	if got := r.Benchmarks[1]; got.Procs != 8 || got.Name != "BenchmarkEngineReuse/graph3_edges16384" {
		t.Fatalf("procs suffix not stripped: %+v", got)
	}
	if got := r.Benchmarks[2].Metrics["MB/s"]; got != 52.31 {
		t.Fatalf("MB/s = %v", got)
	}
	if r.Failures != 0 {
		t.Fatalf("failures = %d", r.Failures)
	}
}

func TestParseFailLine(t *testing.T) {
	r, err := parse(bufio.NewScanner(strings.NewReader("FAIL\trepro\t0.1s\n")))
	if err != nil {
		t.Fatal(err)
	}
	if r.Failures != 1 {
		t.Fatalf("failures = %d, want 1", r.Failures)
	}
}

func TestRun(t *testing.T) {
	var out, errw strings.Builder
	if code := run(strings.NewReader(sample), &out, &errw); code != 0 {
		t.Fatalf("run = %d, stderr %q", code, errw.String())
	}
	var r Report
	if err := json.Unmarshal([]byte(out.String()), &r); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(r.Benchmarks) != 3 || r.Meta["goos"] != "linux" {
		t.Fatalf("round-tripped report = %+v", r)
	}

	// FAIL lines surface as a non-zero exit, with the (valid) JSON
	// still written so the failure is inspectable.
	out.Reset()
	if code := run(strings.NewReader("FAIL\trepro\t0.1s\n"), &out, &errw); code != 1 {
		t.Fatalf("run on FAIL input = %d, want 1", code)
	}
	if err := json.Unmarshal([]byte(out.String()), &r); err != nil || r.Failures != 1 {
		t.Fatalf("FAIL report = %+v err=%v", r, err)
	}
}

func TestRunScannerError(t *testing.T) {
	// A single token longer than the scanner's max buffer surfaces as
	// an error exit.
	var out, errw strings.Builder
	long := strings.Repeat("x", 5*1024*1024)
	if code := run(strings.NewReader(long), &out, &errw); code != 1 {
		t.Fatalf("run on oversized line = %d, want 1", code)
	}
	if errw.Len() == 0 {
		t.Fatal("expected an error message on stderr")
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"Benchmark",                     // no fields
		"BenchmarkX notanumber 1 ns/op", // bad iterations
		"BenchmarkX 10",                 // no metrics
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted garbage", line)
		}
	}
}
