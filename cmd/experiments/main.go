// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig7a,fig7f -maxgraph 5
//	experiments -list
//
// Each experiment prints the same rows/series the corresponding paper
// artifact reports; see DESIGN.md §2 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiment names, or 'all'")
		list     = flag.Bool("list", false, "list available experiments and exit")
		maxGraph = flag.Int("maxgraph", 4, "largest Kronecker graph # for in-memory runs (1-9)")
		maxRel   = flag.Int("relgraph", 3, "largest Kronecker graph # for relational runs (1-9)")
		iters    = flag.Int("iters", 5, "fixed iteration count for timing runs")
		seed     = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Paper)
		}
		return
	}

	cfg := experiments.Config{
		Out:         os.Stdout,
		MaxGraph:    *maxGraph,
		MaxRelGraph: *maxRel,
		Iterations:  *iters,
		Seed:        *seed,
	}

	var names []string
	if *run == "all" {
		for _, e := range experiments.All() {
			names = append(names, e.Name)
		}
	} else {
		names = strings.Split(*run, ",")
	}
	for _, name := range names {
		e, ok := experiments.Lookup(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
	}
}
