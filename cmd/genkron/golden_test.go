package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestGolden pins the emitted edge lists end to end: the Kronecker
// generator is deterministic, so the exact stdout (including an RCM
// relabeling) is a stable artifact. Regenerate with
//
//	go test ./cmd/genkron -run TestGolden -update
func TestGolden(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"power3", []string{"-power", "3"}},
		{"power3_rcm", []string{"-power", "3", "-order", "rcm"}},
		{"num1", []string{"-num", "1"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(tc.args, &stdout, &stderr); code != 0 {
				t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
			}
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(path, stdout.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create the golden file)", err)
			}
			if !bytes.Equal(stdout.Bytes(), want) {
				t.Errorf("edge list differs from %s", path)
			}
		})
	}
}

// TestUsageErrors pins the command's failure exits.
func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-power", "2", "-order", "fastest"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad -order: exit %d, want 2", code)
	}
}
