// Command genkron emits the paper's deterministic Kronecker graphs
// (Fig. 6a) as edge lists on stdout.
//
// Usage:
//
//	genkron -num 3 > graph3.txt     # paper graph #3 (2187 nodes)
//	genkron -power 6 > g.txt        # arbitrary Kronecker power
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
)

func main() {
	var (
		num   = flag.Int("num", 0, "paper graph number 1-9 (Fig. 6a)")
		power = flag.Int("power", 0, "explicit Kronecker power (overrides -num)")
	)
	flag.Parse()
	p := *power
	if p == 0 {
		if *num == 0 {
			fmt.Fprintln(os.Stderr, "genkron: need -num or -power")
			os.Exit(2)
		}
		p = gen.KroneckerGraphNumber(*num)
	}
	g := gen.Kronecker(p)
	fmt.Fprintf(os.Stderr, "nodes=%d undirected-edges=%d directed-entries=%d\n",
		g.N(), g.NumEdges(), g.DirectedEdgeCount())
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := g.WriteEdgeList(w); err != nil {
		fmt.Fprintln(os.Stderr, "genkron:", err)
		os.Exit(1)
	}
}
