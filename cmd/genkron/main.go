// Command genkron emits the paper's deterministic Kronecker graphs
// (Fig. 6a) as edge lists on stdout, optionally relabeled by the
// prepare-time layout optimizer so downstream consumers start from a
// locality-ordered id space.
//
// Usage:
//
//	genkron -num 3 > graph3.txt         # paper graph #3 (2187 nodes)
//	genkron -power 6 > g.txt            # arbitrary Kronecker power
//	genkron -power 11 -order rcm > g.txt  # RCM-relabeled node ids
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/gen"
	"repro/internal/order"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable arguments and streams, so the golden-file
// tests can execute the command end to end in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("genkron", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		num       = fs.Int("num", 0, "paper graph number 1-9 (Fig. 6a)")
		power     = fs.Int("power", 0, "explicit Kronecker power (overrides -num)")
		orderFlag = fs.String("order", "none", "relabel node ids before writing: auto | rcm | degree | none")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	p := *power
	if p == 0 {
		if *num == 0 {
			fmt.Fprintln(stderr, "genkron: need -num or -power")
			return 2
		}
		p = gen.KroneckerGraphNumber(*num)
	}
	strat, err := order.ParseStrategy(*orderFlag)
	if err != nil {
		fmt.Fprintln(stderr, "genkron:", err)
		return 2
	}
	g := gen.Kronecker(p)
	if strat != order.StrategyNone {
		a := g.Adjacency()
		perm, chosen := order.Compute(strat, a)
		if perm != nil {
			fmt.Fprintf(stderr, "ordering=%v bandwidth=%d→%d\n",
				chosen, order.Bandwidth(a, nil), order.Bandwidth(a, perm))
			g = g.Permute(perm)
		} else {
			fmt.Fprintf(stderr, "ordering=none (heuristic kept the natural order)\n")
		}
	}
	fmt.Fprintf(stderr, "nodes=%d undirected-edges=%d directed-entries=%d\n",
		g.N(), g.NumEdges(), g.DirectedEdgeCount())
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	if err := g.WriteEdgeList(w); err != nil {
		fmt.Fprintln(stderr, "genkron:", err)
		return 1
	}
	return 0
}
