// Command genkron emits the paper's deterministic Kronecker graphs
// (Fig. 6a) as edge lists on stdout, optionally relabeled by the
// prepare-time layout optimizer so downstream consumers start from a
// locality-ordered id space.
//
// Usage:
//
//	genkron -num 3 > graph3.txt         # paper graph #3 (2187 nodes)
//	genkron -power 6 > g.txt            # arbitrary Kronecker power
//	genkron -power 11 -order rcm > g.txt  # RCM-relabeled node ids
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/order"
)

func main() {
	var (
		num       = flag.Int("num", 0, "paper graph number 1-9 (Fig. 6a)")
		power     = flag.Int("power", 0, "explicit Kronecker power (overrides -num)")
		orderFlag = flag.String("order", "none", "relabel node ids before writing: auto | rcm | degree | none")
	)
	flag.Parse()
	p := *power
	if p == 0 {
		if *num == 0 {
			fmt.Fprintln(os.Stderr, "genkron: need -num or -power")
			os.Exit(2)
		}
		p = gen.KroneckerGraphNumber(*num)
	}
	strat, err := order.ParseStrategy(*orderFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genkron:", err)
		os.Exit(2)
	}
	g := gen.Kronecker(p)
	if strat != order.StrategyNone {
		a := g.Adjacency()
		perm, chosen := order.Compute(strat, a)
		if perm != nil {
			fmt.Fprintf(os.Stderr, "ordering=%v bandwidth=%d→%d\n",
				chosen, order.Bandwidth(a, nil), order.Bandwidth(a, perm))
			g = g.Permute(perm)
		} else {
			fmt.Fprintf(os.Stderr, "ordering=none (heuristic kept the natural order)\n")
		}
	}
	fmt.Fprintf(os.Stderr, "nodes=%d undirected-edges=%d directed-entries=%d\n",
		g.N(), g.NumEdges(), g.DirectedEdgeCount())
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := g.WriteEdgeList(w); err != nil {
		fmt.Fprintln(os.Stderr, "genkron:", err)
		os.Exit(1)
	}
}
