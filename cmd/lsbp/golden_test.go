package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestGolden pins the command's stdout end to end: every case runs the
// real run() on the checked-in fixture graph and compares the printed
// top-belief assignment against its golden file. Regenerate with
//
//	go test ./cmd/lsbp -run TestGolden -update
func TestGolden(t *testing.T) {
	base := []string{"-edges", "testdata/graph.txt"}
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"linbp_k2", []string{"-labels", "testdata/labels2.txt", "-k", "2", "-method", "linbp", "-eps", "0.05", "-order", "none"}},
		{"linbpstar_k3_rcm", []string{"-labels", "testdata/labels3.txt", "-k", "3", "-method", "linbpstar", "-eps", "0.05", "-order", "rcm"}},
		{"bp_k2", []string{"-labels", "testdata/labels2.txt", "-k", "2", "-method", "bp", "-eps", "0.05"}},
		{"sbp_k3", []string{"-labels", "testdata/labels3.txt", "-k", "3", "-method", "sbp", "-eps", "0.05"}},
		{"fabp_partitioned", []string{"-labels", "testdata/labels2.txt", "-k", "2", "-method", "fabp", "-eps", "0.05", "-partitions", "2", "-v"}},
		{"linbp_updates", []string{"-labels", "testdata/labels3.txt", "-k", "3", "-method", "linbp", "-eps", "0.05", "-order", "none", "-updates", "testdata/updates.txt"}},
		{"sbp_updates", []string{"-labels", "testdata/labels3.txt", "-k", "3", "-method", "sbp", "-eps", "0.05", "-updates", "testdata/updates.txt"}},
		{"linbp_residual", []string{"-labels", "testdata/labels2.txt", "-k", "2", "-method", "linbp", "-eps", "0.05", "-order", "none", "-schedule", "residual"}},
		{"linbp_updates_residual", []string{"-labels", "testdata/labels3.txt", "-k", "3", "-method", "linbp", "-eps", "0.05", "-order", "none", "-schedule", "residual", "-updates", "testdata/updates.txt", "-v"}},
		{"fabp_updates_auto", []string{"-labels", "testdata/labels2.txt", "-k", "2", "-method", "fabp", "-eps", "0.05", "-schedule", "auto", "-updates", "testdata/updates2.txt", "-v"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(append(append([]string{}, base...), tc.args...), &stdout, &stderr); code != 0 {
				t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
			}
			checkGolden(t, filepath.Join("testdata", tc.name+".golden"), stdout.Bytes())
		})
	}
}

// TestGoldenUsageErrors pins the failure modes (no fixtures involved).
func TestGoldenUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("missing flags: exit %d, want 2", code)
	}
	stderr.Reset()
	args := []string{"-edges", "testdata/graph.txt", "-labels", "testdata/labels2.txt", "-partitions", "-3"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("bad -partitions: exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	stderr.Reset()
	args = []string{"-edges", "testdata/graph.txt", "-labels", "testdata/labels2.txt", "-updates", "testdata/no_such_stream.txt"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("missing -updates file: exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	stderr.Reset()
	args = []string{"-edges", "testdata/graph.txt", "-labels", "testdata/labels2.txt", "-schedule", "eager"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("bad -schedule: exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "schedule") {
		t.Errorf("bad -schedule error does not name the flag: %q", stderr.String())
	}
}

// TestVerboseResidualStats pins the -v stats surface of the residual
// schedule: the updates-path stats line must carry the schedule name
// and nonzero relaxed-row / queue-peak counters, which only the
// residual plane produces.
func TestVerboseResidualStats(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-edges", "testdata/graph.txt", "-labels", "testdata/labels3.txt",
		"-k", "3", "-eps", "0.05", "-order", "none",
		"-schedule", "residual", "-updates", "testdata/updates.txt", "-v"}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stderr.String()
	for _, want := range []string{"schedule=residual", "relaxed=", "qpeak="} {
		if !strings.Contains(out, want) {
			t.Errorf("stats line missing %q:\n%s", want, out)
		}
	}
	for _, zero := range []string{"relaxed=0 ", "qpeak=0\n"} {
		if strings.Contains(out, zero) {
			t.Errorf("residual schedule reported %q — the queue never ran:\n%s", zero, out)
		}
	}
}

// TestUpdatesParseErrors pins the event-stream validation.
func TestUpdatesParseErrors(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"bad-op":    "frobnicate 1 2\n",
		"bad-node":  "add 0 99\n",
		"bad-class": "label 0 7\n",
		"bad-w":     "add 0 1 -2\n",
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".txt")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			var stdout, stderr bytes.Buffer
			args := []string{"-edges", "testdata/graph.txt", "-labels", "testdata/labels3.txt", "-k", "3", "-eps", "0.05", "-updates", path}
			if code := run(args, &stdout, &stderr); code != 1 {
				t.Fatalf("exit %d, want 1 (stderr %q)", code, stderr.String())
			}
		})
	}
}

// checkGolden compares got against the golden file, rewriting it under
// -update.
func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestUpdatesEventOrder pins two parser subtleties: a del-then-add of
// the same pair splits the batch (an Update applies adds before
// removals, so folding them together would undo the re-add), and bare
// repeated commits do not produce spurious empty epochs.
func TestUpdatesEventOrder(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.txt")
	content := "del 0 3\nadd 0 3 2\ncommit\ncommit\ncommit\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	args := []string{"-edges", "testdata/graph.txt", "-labels", "testdata/labels2.txt",
		"-eps", "0.05", "-order", "none", "-updates", path}
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	// The del must land in its own epoch (1) so the re-add (epoch 2)
	// survives; the duplicate commits must add no further epochs.
	if !strings.Contains(out, "epoch 1: +0 -1 edges") {
		t.Errorf("missing del-only epoch:\n%s", out)
	}
	if !strings.Contains(out, "epoch 2: +1 -0 edges") {
		t.Errorf("missing re-add epoch:\n%s", out)
	}
	if strings.Contains(out, "epoch 3") {
		t.Errorf("empty commit produced a spurious epoch:\n%s", out)
	}
}
