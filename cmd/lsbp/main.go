// Command lsbp runs one of the paper's inference methods on a graph
// given as an edge list plus a label file, and prints the top belief
// assignment per node. It drives the prepared-Solver API: the problem
// is prepared once, solved under an optional -timeout deadline
// (context cancellation aborts a running solve at iteration-round
// granularity), and the solver's serving stats line is reported.
//
// Usage:
//
//	lsbp -edges graph.txt -labels labels.txt -k 3 -method linbp
//
// graph.txt holds "s t [w]" lines; labels.txt holds "node class" lines
// for the explicitly labeled nodes. With -eps 0 (the default) a safe
// εH is derived from the exact convergence criterion (Lemma 8). The
// coupling defaults to k-class homophily; -coupling FILE loads a k×k
// stochastic coupling matrix (whitespace-separated rows) instead.
// -partitions engages the kernel's partition-parallel data plane
// (0 = off, auto, or an explicit block count). -schedule picks the
// kernel execution schedule: rounds (the default synchronous plane),
// residual (a priority queue relaxes only rows whose residual exceeds
// tolerance — localized updates cost what they touch), or auto (rounds
// for cold solves, residual for localized re-solves). -updates FILE
// replays an
// edge/belief event stream ('add s t [w]', 'del s t', 'label node
// class [strength]', 'commit') against the prepared solver through the
// epoch-versioned Update path, printing the top-belief assignment per
// epoch instead of the single one-shot solve.
//
// -state DIR makes the solver durable: the first invocation prepares
// from -edges/-labels and persists a checksummed snapshot plus a
// write-ahead log of every update under DIR (fsync cadence set by
// -fsync); later invocations find the snapshot and recover from it —
// replaying any logged updates a crash left behind — without re-reading
// the input files or re-preparing (-edges, -labels, -k, -method, -eps
// are then taken from the recovered state and the flags are ignored).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	lsbp "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable arguments and streams, so the golden-file
// tests can execute the command end to end in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lsbp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		edgesPath = fs.String("edges", "", "edge list file: 's t [w]' per line (required)")
		labelPath = fs.String("labels", "", "label file: 'node class' per line (required)")
		k         = fs.Int("k", 2, "number of classes")
		method    = fs.String("method", "linbp", "bp | linbp | linbpstar | sbp | fabp")
		eps       = fs.Float64("eps", 0, "εH coupling scale; 0 = auto from Lemma 8")
		strength  = fs.Float64("homophily", 0.8, "homophily strength for the default coupling")
		coupPath  = fs.String("coupling", "", "optional k×k stochastic coupling matrix file")
		maxIter   = fs.Int("maxiter", 200, "iteration cap for iterative methods")
		tol       = fs.Float64("tol", 0, "convergence tolerance (0 = method default; negative forces maxiter rounds)")
		workers   = fs.Int("workers", 0, "kernel worker goroutines (0 = serial)")
		timeout   = fs.Duration("timeout", 0, "abort the solve after this duration (0 = no limit)")
		orderFlag = fs.String("order", "auto", "prepare-time node reordering: auto | rcm | degree | none")
		partsFlag = fs.String("partitions", "0", "partition-parallel data plane: 0 = off, auto, or a block count")
		schedFlag = fs.String("schedule", "rounds", "kernel execution schedule: rounds | residual | auto")
		updates   = fs.String("updates", "", "event stream file replayed against the prepared solver: 'add s t [w]' | 'del s t' | 'label node class [strength]' | 'commit' lines; beliefs print per epoch")
		statePath = fs.String("state", "", "durable state directory: first run persists a snapshot + update WAL there, later runs recover from it (ignoring -edges/-labels)")
		fsyncFlag = fs.String("fsync", "always", "WAL fsync cadence under -state: always | interval=N | never")
		verbose   = fs.Bool("v", false, "print the solver stats line (ordering, bandwidth, partitions, epochs, iterations) to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	recovering := *statePath != "" && lsbp.HasState(*statePath)
	if !recovering && (*edgesPath == "" || *labelPath == "") {
		fs.Usage()
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "lsbp:", err)
		return 1
	}

	sched, err := lsbp.ParseSchedule(*schedFlag)
	if err != nil {
		return fail(err)
	}

	var pol lsbp.DurabilityPolicy
	if *statePath != "" {
		var err error
		if pol, err = parseFsync(*fsyncFlag); err != nil {
			return fail(err)
		}
	}

	var s lsbp.Solver
	var e *lsbp.Beliefs
	var m lsbp.Method
	if recovering {
		var err error
		s, err = lsbp.Open(*statePath, lsbp.WithDurability(*statePath, pol),
			lsbp.WithMaxIter(*maxIter), lsbp.WithTol(*tol), lsbp.WithWorkers(*workers),
			lsbp.WithSchedule(sched))
		if err != nil {
			return fail(err)
		}
		defer s.Close()
		st := s.Stats()
		m = st.Method
		fmt.Fprintf(stderr, "recovered %v state from %s: n=%d k=%d updates=%d eps_H=%g\n",
			st.Method, *statePath, st.N, st.K, st.Updates, st.EpsilonH)
	} else {
		g, err := loadGraph(*edgesPath)
		if err != nil {
			return fail(err)
		}
		if e, err = loadLabels(*labelPath, g.N(), *k); err != nil {
			return fail(err)
		}

		ho := lsbp.Homophily(*k, *strength)
		if *coupPath != "" {
			mat, err := loadMatrix(*coupPath, *k)
			if err != nil {
				return fail(err)
			}
			ho, err = lsbp.NewCouplingFromStochastic(mat)
			if err != nil {
				return fail(err)
			}
		}

		if m, err = parseMethod(*method); err != nil {
			return fail(err)
		}

		reorder, err := lsbp.ParseReordering(*orderFlag)
		if err != nil {
			return fail(err)
		}
		partitions, err := parsePartitions(*partsFlag)
		if err != nil {
			return fail(err)
		}

		opts := []lsbp.Option{
			lsbp.WithMaxIter(*maxIter), lsbp.WithTol(*tol),
			lsbp.WithWorkers(*workers), lsbp.WithReordering(reorder),
			lsbp.WithPartitions(partitions), lsbp.WithSchedule(sched),
		}
		if *eps == 0 && m != lsbp.SBP {
			opts = append(opts, lsbp.WithAutoEpsilonH())
		}
		if *statePath != "" {
			opts = append(opts, lsbp.WithDurability(*statePath, pol))
		}

		p := &lsbp.Problem{Graph: g, Explicit: e, Ho: ho, EpsilonH: *eps}
		if s, err = lsbp.Prepare(p, m, opts...); err != nil {
			return fail(err)
		}
		defer s.Close()
		if *eps == 0 && m != lsbp.SBP {
			fmt.Fprintf(stderr, "auto eps_H = %g\n", s.Stats().EpsilonH)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *updates != "" {
		st := s.Stats()
		batches, err := loadUpdates(*updates, st.N, st.K)
		if err != nil {
			return fail(err)
		}
		if err := replayUpdates(ctx, s, batches, stdout, stderr); err != nil {
			return fail(err)
		}
		if *verbose {
			st := s.Stats()
			fmt.Fprintf(stderr, "stats: method=%v n=%d k=%d ordering=%v schedule=%v epochs=%d updates=%d rebuilds=%d overlay=%d iters=%d relaxed=%d qpeak=%d\n",
				st.Method, st.N, st.K, st.Ordering, st.Schedule, st.Epoch, st.Updates, st.Rebuilds, st.OverlayNNZ, st.Iterations,
				st.ResidualRowsRelaxed, st.ResidualQueuePeak)
		}
		return 0
	}

	var res *lsbp.Result
	if recovering {
		// No explicit-belief file on the recovered path: an empty Update
		// re-solves the maintained problem (graph and beliefs as of the
		// last logged batch).
		res, err = s.Update(ctx, lsbp.Update{})
	} else {
		res, err = s.Solve(ctx, e)
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fail(fmt.Errorf("solve exceeded -timeout %v after %d iterations", *timeout, s.Stats().Iterations))
	case errors.Is(err, lsbp.ErrNotConverged):
		fmt.Fprintf(stderr, "warning: %v did not converge (delta %g)\n", m, res.Delta)
	case err != nil:
		return fail(err)
	}

	if *verbose {
		st := s.Stats()
		fmt.Fprintf(stderr, "stats: method=%v n=%d k=%d ordering=%v bandwidth=%d→%d partitions=%d cut=%d imbalance=%.3f schedule=%v iters=%d converged=%v relaxed=%d qpeak=%d\n",
			st.Method, st.N, st.K, st.Ordering, st.BandwidthBefore, st.BandwidthAfter,
			st.Partitions, st.CutEdges, st.Imbalance, st.Schedule, res.Iterations, res.Converged,
			st.ResidualRowsRelaxed, st.ResidualQueuePeak)
	}

	w := bufio.NewWriter(stdout)
	defer w.Flush()
	for node, classes := range res.Top {
		strs := make([]string, len(classes))
		for i, c := range classes {
			strs[i] = strconv.Itoa(c)
		}
		fmt.Fprintf(w, "%d %s\n", node, strings.Join(strs, ","))
	}
	return 0
}

// updateBatch is one committed event batch of a -updates stream plus
// its label count (for the per-epoch summary line).
type updateBatch struct {
	u      lsbp.Update
	labels int
}

// loadUpdates parses a -updates event stream: 'add s t [w]' inserts an
// edge (w defaults to 1), 'del s t' removes all edges between s and t,
// 'label node class [strength]' installs an explicit belief (strength
// defaults to 0.1), and 'commit' closes a batch (empty commits are
// no-ops). Trailing events commit implicitly at EOF; blank lines and
// '#' comments are skipped. One subtlety preserves event order: an
// Update applies its additions before its removals, so an 'add'
// following a 'del' of the same pair within one batch would be undone
// by its own batch — the parser commits the pending batch first, so
// the delete lands in its own epoch and the re-add survives.
func loadUpdates(path string, n, k int) ([]updateBatch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []updateBatch
	var cur updateBatch
	pending := false
	deleted := make(map[[2]int]bool) // pairs removed in the pending batch
	flush := func() {
		if pending {
			out = append(out, cur)
			cur = updateBatch{}
			pending = false
			deleted = make(map[[2]int]bool)
		}
	}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		bad := func(msg string) error { return fmt.Errorf("%s:%d: %s: %q", path, line, msg, text) }
		switch fields[0] {
		case "commit":
			if len(fields) != 1 {
				return nil, bad("want bare 'commit'")
			}
			flush()
		case "add", "del":
			if len(fields) < 3 || len(fields) > 4 || (fields[0] == "del" && len(fields) != 3) {
				return nil, bad("want 'add s t [w]' or 'del s t'")
			}
			s, err1 := strconv.Atoi(fields[1])
			t, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, bad("bad endpoint")
			}
			if s < 0 || s >= n || t < 0 || t >= n {
				return nil, bad(fmt.Sprintf("endpoint outside graph (n=%d)", n))
			}
			pair := [2]int{s, t}
			if s > t {
				pair = [2]int{t, s}
			}
			if fields[0] == "del" {
				cur.u.RemoveEdges = append(cur.u.RemoveEdges, lsbp.Edge{S: s, T: t})
				deleted[pair] = true
			} else {
				w := 1.0
				if len(fields) == 4 {
					if w, err = strconv.ParseFloat(fields[3], 64); err != nil || !(w > 0) || math.IsInf(w, 1) {
						return nil, bad("bad weight (want finite > 0)")
					}
				}
				if deleted[pair] {
					flush() // see the event-order note above
				}
				cur.u.AddEdges = append(cur.u.AddEdges, lsbp.Edge{S: s, T: t, W: w})
			}
			pending = true
		case "label":
			if len(fields) < 3 || len(fields) > 4 {
				return nil, bad("want 'label node class [strength]'")
			}
			node, err1 := strconv.Atoi(fields[1])
			class, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, bad("bad node or class")
			}
			if node < 0 || node >= n || class < 0 || class >= k {
				return nil, bad(fmt.Sprintf("node or class out of range (n=%d k=%d)", n, k))
			}
			strength := 0.1
			if len(fields) == 4 {
				// Zero would encode an all-zero residual row, which the
				// Update contract treats as "leave untouched" — the
				// event would silently no-op; NaN/Inf would poison the
				// beliefs. Reject all three.
				strength, err = strconv.ParseFloat(fields[3], 64)
				if err != nil || strength == 0 || math.IsNaN(strength) || math.IsInf(strength, 0) {
					return nil, bad("bad strength (want finite nonzero)")
				}
			}
			if cur.u.SetExplicit == nil {
				cur.u.SetExplicit = lsbp.NewBeliefs(n, k)
			}
			cur.u.SetExplicit.Set(node, lsbp.LabelResidual(k, class, strength))
			cur.labels++
			pending = true
		default:
			return nil, bad("unknown event")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return out, nil
}

// replayUpdates drives the event stream through Solver.Update, printing
// the top-belief assignment after the initial solve (epoch 0) and
// after every committed batch.
func replayUpdates(ctx context.Context, s lsbp.Solver, batches []updateBatch, stdout, stderr io.Writer) error {
	w := bufio.NewWriter(stdout)
	defer w.Flush()
	printEpoch := func(i int, b updateBatch, res *lsbp.Result) {
		fmt.Fprintf(w, "epoch %d: +%d -%d edges, %d labels, iters=%d, converged=%v\n",
			i, len(b.u.AddEdges), len(b.u.RemoveEdges), b.labels, res.Iterations, res.Converged)
		for node, classes := range res.Top {
			strs := make([]string, len(classes))
			for i, c := range classes {
				strs[i] = strconv.Itoa(c)
			}
			fmt.Fprintf(w, "%d %s\n", node, strings.Join(strs, ","))
		}
	}
	res, err := s.Update(ctx, lsbp.Update{})
	if err != nil && !errors.Is(err, lsbp.ErrNotConverged) {
		return fmt.Errorf("initial solve: %w", err)
	}
	if errors.Is(err, lsbp.ErrNotConverged) {
		fmt.Fprintf(stderr, "warning: epoch 0 did not converge (delta %g)\n", res.Delta)
	}
	printEpoch(0, updateBatch{}, res)
	for i, b := range batches {
		res, err := s.Update(ctx, b.u)
		if err != nil && !errors.Is(err, lsbp.ErrNotConverged) {
			return fmt.Errorf("epoch %d: %w", i+1, err)
		}
		if errors.Is(err, lsbp.ErrNotConverged) {
			fmt.Fprintf(stderr, "warning: epoch %d did not converge (delta %g)\n", i+1, res.Delta)
		}
		printEpoch(i+1, b, res)
	}
	return nil
}

// parseMethod maps the -method flag onto the Method enum.
func parseMethod(name string) (lsbp.Method, error) {
	switch strings.ToLower(name) {
	case "bp":
		return lsbp.BP, nil
	case "linbp":
		return lsbp.LinBP, nil
	case "linbpstar", "linbp*":
		return lsbp.LinBPStar, nil
	case "sbp":
		return lsbp.SBP, nil
	case "fabp":
		return lsbp.FABP, nil
	default:
		return 0, fmt.Errorf("unknown method %q", name)
	}
}

// parseFsync maps the -fsync spellings onto WAL sync policies.
func parseFsync(s string) (lsbp.DurabilityPolicy, error) {
	switch {
	case s == "always":
		return lsbp.DurabilityPolicy{Sync: lsbp.SyncAlways}, nil
	case s == "never":
		return lsbp.DurabilityPolicy{Sync: lsbp.SyncNever}, nil
	case strings.HasPrefix(s, "interval="):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "interval="))
		if err != nil || n < 1 {
			return lsbp.DurabilityPolicy{}, fmt.Errorf("invalid -fsync %q (want interval=N with N >= 1)", s)
		}
		return lsbp.DurabilityPolicy{Sync: lsbp.SyncInterval, Interval: n}, nil
	default:
		return lsbp.DurabilityPolicy{}, fmt.Errorf("invalid -fsync %q (want always, interval=N, or never)", s)
	}
}

// parsePartitions maps the -partitions spellings (0 = off, "auto", or
// an explicit positive block count) onto WithPartitions values.
func parsePartitions(s string) (int, error) {
	if strings.ToLower(s) == "auto" {
		return lsbp.PartitionsAuto, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid -partitions %q (want 0, auto, or a positive count)", s)
	}
	return n, nil
}

func loadGraph(path string) (*lsbp.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lsbp.ReadEdgeList(f)
}

func loadLabels(path string, n, k int) (*lsbp.Beliefs, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	e := lsbp.NewBeliefs(n, k)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want 'node class'", path, line)
		}
		node, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		class, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		if node < 0 || node >= n {
			return nil, fmt.Errorf("%s:%d: node %d outside graph (n=%d)", path, line, node, n)
		}
		if class < 0 || class >= k {
			return nil, fmt.Errorf("%s:%d: class %d outside [0,%d)", path, line, class, k)
		}
		e.Set(node, lsbp.LabelResidual(k, class, 0.1))
	}
	return e, sc.Err()
}

func loadMatrix(path string, k int) (*lsbp.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows [][]float64
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var row []float64
		for _, fstr := range strings.Fields(text) {
			v, err := strconv.ParseFloat(fstr, 64)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) != k {
		return nil, fmt.Errorf("coupling matrix has %d rows, want %d", len(rows), k)
	}
	return lsbp.NewMatrix(rows), nil
}
