package main

import (
	"os"
	"path/filepath"
	"testing"

	lsbp "repro"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadGraph(t *testing.T) {
	p := write(t, "g.txt", "0 1\n1 2 2.5\n")
	g, err := loadGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d e=%d", g.N(), g.NumEdges())
	}
	if _, err := loadGraph(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadLabels(t *testing.T) {
	p := write(t, "l.txt", "# comment\n0 0\n2 1\n")
	e, err := loadLabels(p, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	nodes := e.ExplicitNodes()
	if len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 2 {
		t.Fatalf("nodes = %v", nodes)
	}
	if e.Row(2)[1] <= e.Row(2)[0] {
		t.Fatal("node 2 must lean class 1")
	}
}

func TestLoadLabelsErrors(t *testing.T) {
	cases := map[string]string{
		"bad arity":    "0\n",
		"bad node":     "x 0\n",
		"bad class":    "0 x\n",
		"node range":   "9 0\n",
		"class range":  "0 7\n",
		"extra fields": "0 1 2\n",
	}
	for name, content := range cases {
		p := write(t, "l.txt", content)
		if _, err := loadLabels(p, 3, 2); err == nil {
			t.Fatalf("%s: expected error for %q", name, content)
		}
	}
}

func TestLoadMatrix(t *testing.T) {
	p := write(t, "h.txt", "0.8 0.2\n0.2 0.8\n")
	m, err := loadMatrix(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 0.8 {
		t.Fatal("parse wrong")
	}
	p2 := write(t, "h2.txt", "0.8 0.2\n")
	if _, err := loadMatrix(p2, 2); err == nil {
		t.Fatal("row-count mismatch must error")
	}
	p3 := write(t, "h3.txt", "a b\nc d\n")
	if _, err := loadMatrix(p3, 2); err == nil {
		t.Fatal("non-numeric must error")
	}
}

func TestParseMethod(t *testing.T) {
	lsbp := func(name string) int {
		m, err := parseMethod(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return int(m)
	}
	if lsbp("bp") == lsbp("linbp") || lsbp("linbp*") != lsbp("linbpstar") {
		t.Fatal("method mapping wrong")
	}
	if lsbp("sbp") == lsbp("fabp") {
		t.Fatal("sbp and fabp must differ")
	}
	if _, err := parseMethod("nope"); err == nil {
		t.Fatal("unknown method must error")
	}
}

func TestOrderFlagValues(t *testing.T) {
	// The -order flag accepts exactly the four optimizer spellings.
	for _, v := range []string{"auto", "rcm", "degree", "none"} {
		if _, err := lsbp.ParseReordering(v); err != nil {
			t.Fatalf("-order %s must parse: %v", v, err)
		}
	}
	if _, err := lsbp.ParseReordering("fastest"); err == nil {
		t.Fatal("unknown -order value must be rejected")
	}
}
