package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/durable"
)

// TestGoldenStatePersistRecover pins the -state lifecycle end to end:
// a priming run persists its snapshot and update WAL, a bare -state
// invocation recovers by replaying the logged batches (the priming run
// never checkpoints, so recovery IS a WAL replay), a torn WAL tail —
// the artifact an append cut short by a crash leaves behind — is
// truncated transparently, and the recovered solver keeps absorbing
// further update streams durably.
func TestGoldenStatePersistRecover(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state")
	prime := []string{"-edges", "testdata/graph.txt", "-labels", "testdata/labels3.txt",
		"-k", "3", "-method", "linbp", "-eps", "0.05", "-order", "none",
		"-updates", "testdata/updates.txt", "-state", state}
	var stdout, stderr bytes.Buffer
	if code := run(prime, &stdout, &stderr); code != 0 {
		t.Fatalf("prime run: exit %d, stderr:\n%s", code, stderr.String())
	}
	// Durability must not change what the command prints.
	checkGolden(t, filepath.Join("testdata", "linbp_updates.golden"), stdout.Bytes())

	recover := func(name string, extra ...string) string {
		t.Helper()
		stdout.Reset()
		stderr.Reset()
		args := append([]string{"-state", state}, extra...)
		if code := run(args, &stdout, &stderr); code != 0 {
			t.Fatalf("%s: exit %d, stderr:\n%s", name, code, stderr.String())
		}
		return stderr.String()
	}

	// Bare recovery: the epoch-0 solve plus the stream's three batches
	// were logged; all four replay onto the Prepare-time snapshot, and
	// the solve must print exactly the final epoch of the priming run.
	errOut := recover("recover")
	if !strings.Contains(errOut, "recovered LinBP state") || !strings.Contains(errOut, "updates=4") {
		t.Errorf("recovery note missing or wrong: %q", errOut)
	}
	checkGolden(t, filepath.Join("testdata", "state_recover.golden"), stdout.Bytes())

	// Crash artifact: an append torn mid-frame that the OS flushed
	// anyway. Recovery truncates the tail back to the last intact
	// record and lands on the same state as the clean reopen. (The
	// bare recovery above logged one more empty batch: updates=5.)
	wal, err := os.OpenFile(filepath.Join(state, durable.WALFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}
	errOut = recover("recover after torn tail")
	if !strings.Contains(errOut, "updates=5") {
		t.Errorf("torn-tail recovery note: %q", errOut)
	}
	checkGolden(t, filepath.Join("testdata", "state_recover.golden"), stdout.Bytes())

	// The recovered solver is itself durable: replay the stream again
	// on top and the next recovery sees the grown update count.
	recover("recover with updates", "-updates", "testdata/updates.txt")
	checkGolden(t, filepath.Join("testdata", "state_recover_updates.golden"), stdout.Bytes())
	errOut = recover("final recover")
	if !strings.Contains(errOut, "updates=10") {
		t.Errorf("final recovery note: %q", errOut)
	}
}

// TestStateFlagErrors pins the -state failure modes: a bad -fsync
// spelling, and a first run (no state yet) still needs its inputs.
func TestStateFlagErrors(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	args := []string{"-edges", "testdata/graph.txt", "-labels", "testdata/labels2.txt",
		"-state", filepath.Join(dir, "st"), "-fsync", "sometimes"}
	if code := run(args, &stdout, &stderr); code != 1 {
		t.Fatalf("bad -fsync: exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	stderr.Reset()
	if code := run([]string{"-state", filepath.Join(dir, "empty")}, &stdout, &stderr); code != 2 {
		t.Fatalf("-state without inputs or prior state: exit %d, want 2", code)
	}
}

// TestStateCorruptSnapshot pins the typed refusal: bit rot in the
// snapshot must produce an actionable error, not a solver.
func TestStateCorruptSnapshot(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state")
	args := []string{"-edges", "testdata/graph.txt", "-labels", "testdata/labels2.txt",
		"-eps", "0.05", "-state", state}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("prime run: exit %d, stderr:\n%s", code, stderr.String())
	}
	snap := filepath.Join(state, durable.SnapshotFile)
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[4100] ^= 0x04 // inside the first page-aligned section's payload
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-state", state}, &stdout, &stderr); code != 1 {
		t.Fatalf("corrupt snapshot: exit %d, want 1 (stderr %q)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "corrupt") {
		t.Errorf("corruption error not actionable: %q", stderr.String())
	}
}
