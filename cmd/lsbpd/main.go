// Command lsbpd serves top-belief inference over HTTP: a prepared
// solver behind the overload-safe front end (bounded admission queue,
// request coalescing into fused batches, deadline-aware shedding,
// read-only degradation on durable failures).
//
// Usage:
//
//	lsbpd -edges graph.txt -labels labels.txt -k 3 -addr :8080
//	lsbpd -kron 8 -k 3                  # synthetic Kronecker graph
//	lsbpd -random 10000,30000 -k 3      # synthetic random graph
//	lsbpd -state dir                    # recover a durable solver
//
// Endpoints (see internal/serve): POST /v1/solve, POST /v1/update,
// GET /v1/beliefs/{node}, GET /v1/top?class=&k=, GET /healthz,
// GET /readyz, GET /statz. Every rejection carries a JSON body with
// the typed taxonomy class; overload responses are 503 with
// Retry-After.
//
// On SIGINT/SIGTERM the daemon flips /readyz to 503, drains the
// admission queue (bounded by -drain-timeout), and exits cleanly.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	lsbp "repro"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable context, arguments, and streams so the
// smoke test can boot the daemon in-process and shut it down.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lsbpd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free one)")
		edgesPath = fs.String("edges", "", "edge list file: 's t [w]' per line")
		labelPath = fs.String("labels", "", "label file: 'node class' per line")
		kron      = fs.Int("kron", 0, "serve the p-th Kronecker power graph instead of -edges")
		random    = fs.String("random", "", "serve a random graph: 'nodes,edges'")
		k         = fs.Int("k", 3, "number of classes")
		eps       = fs.Float64("eps", 0, "coupling scale εH (0 = derive a safe value)")
		method    = fs.String("method", "linbp", "inference method: bp|linbp|linbp*|sbp|fabp")
		workers   = fs.Int("workers", 0, "kernel worker goroutines (0 = serial)")
		maxIter   = fs.Int("maxiter", 200, "iteration budget per solve")
		state     = fs.String("state", "", "durable state dir (recovered when it already holds state)")
		fsync     = fs.String("fsync", "always", "durability fsync cadence: always|interval|never")
		inFlight  = fs.Int("inflight", 2, "concurrent batch dispatches into the kernel")
		maxBatch  = fs.Int("max-batch", 0, "requests coalesced per dispatch (0 = 2x the solver's batch hint)")
		maxQueue  = fs.Int("max-queue", 64, "admission queue depth; beyond it the most-stale waiter is shed")
		timeout   = fs.Duration("timeout", 30*time.Second, "server-side ceiling per solve/update")
		maxBody   = fs.Int64("max-body", 8<<20, "request body byte limit")
		drainTO   = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
		seedFrac  = fs.Float64("seed-frac", 0.05, "explicit-belief fraction for synthetic graphs")
		seed      = fs.Uint64("seed", 42, "synthetic graph/belief seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	solver, err := buildSolver(solverSpec{
		edges: *edgesPath, labels: *labelPath, kron: *kron, random: *random,
		k: *k, eps: *eps, method: *method, workers: *workers, maxIter: *maxIter,
		state: *state, fsync: *fsync, seedFrac: *seedFrac, seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(stderr, "lsbpd: %v\n", err)
		return 1
	}
	defer solver.Close()

	front := lsbp.NewFrontEnd(solver, lsbp.ServeConfig{
		MaxInFlight: *inFlight,
		MaxBatch:    *maxBatch,
		MaxQueue:    *maxQueue,
	})
	// Seed the fixpoint behind /v1/beliefs and /v1/top. A solver
	// recovered from -state replays its WAL first, so this publishes
	// the recovered fixpoint.
	if _, err := front.Update(ctx, lsbp.Update{}); err != nil && !errors.Is(err, lsbp.ErrNotConverged) {
		fmt.Fprintf(stderr, "lsbpd: seeding fixpoint: %v\n", err)
		front.Close()
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "lsbpd: %v\n", err)
		front.Close()
		return 1
	}
	srv := &http.Server{
		Handler:           front.Handler(lsbp.HTTPConfig{MaxBody: *maxBody, Timeout: *timeout}),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *timeout,
		WriteTimeout:      2 * *timeout,
		IdleTimeout:       2 * time.Minute,
	}
	st := solver.Stats()
	fmt.Fprintf(stdout, "lsbpd listening on %s (method=%s n=%d k=%d)\n", ln.Addr(), st.Method, st.N, st.K)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		fmt.Fprintf(stderr, "lsbpd: serve: %v\n", err)
		front.Close()
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: stop admission (readyz flips 503 for the load
	// balancer), flush the queue, then close the listener.
	fmt.Fprintln(stdout, "lsbpd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := front.Drain(dctx); err != nil {
		fmt.Fprintf(stderr, "lsbpd: drain: %v\n", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(stderr, "lsbpd: shutdown: %v\n", err)
	}
	front.Close()
	fmt.Fprintln(stdout, "lsbpd: stopped")
	return 0
}

type solverSpec struct {
	edges, labels string
	kron          int
	random        string
	k             int
	eps           float64
	method        string
	workers       int
	maxIter       int
	state, fsync  string
	seedFrac      float64
	seed          uint64
}

func buildSolver(sp solverSpec) (lsbp.Solver, error) {
	opts := []lsbp.Option{lsbp.WithMaxIter(sp.maxIter)}
	if sp.workers > 0 {
		opts = append(opts, lsbp.WithWorkers(sp.workers))
	}
	if sp.eps <= 0 {
		opts = append(opts, lsbp.WithAutoEpsilonH())
	}
	if sp.state != "" {
		pol, err := parseFsync(sp.fsync)
		if err != nil {
			return nil, err
		}
		if lsbp.HasState(sp.state) {
			return lsbp.Open(sp.state, opts...)
		}
		opts = append(opts, lsbp.WithDurability(sp.state, pol))
	}

	method, err := parseMethod(sp.method)
	if err != nil {
		return nil, err
	}
	var g *lsbp.Graph
	var e *lsbp.Beliefs
	switch {
	case sp.edges != "":
		if g, err = readEdges(sp.edges); err != nil {
			return nil, err
		}
		if sp.labels == "" {
			return nil, errors.New("-edges needs -labels")
		}
		if e, err = readLabels(sp.labels, g.N(), sp.k); err != nil {
			return nil, err
		}
	case sp.kron > 0:
		g = lsbp.KroneckerGraph(sp.kron)
		e, _ = lsbp.SeedBeliefs(g.N(), sp.k, lsbp.SeedConfig{Fraction: sp.seedFrac, Seed: sp.seed})
	case sp.random != "":
		n, m, err := parsePair(sp.random)
		if err != nil {
			return nil, fmt.Errorf("-random: %w", err)
		}
		g = lsbp.RandomGraph(n, m, sp.seed)
		e, _ = lsbp.SeedBeliefs(g.N(), sp.k, lsbp.SeedConfig{Fraction: sp.seedFrac, Seed: sp.seed})
	default:
		return nil, errors.New("need one of -edges, -kron, -random, or a recoverable -state dir")
	}

	eps := sp.eps
	if eps <= 0 {
		eps = 0.1 // WithAutoEpsilonH shrinks it to the safe range at prepare time
	}
	p := &lsbp.Problem{Graph: g, Explicit: e, Ho: lsbp.Homophily(sp.k, 0.8), EpsilonH: eps}
	return lsbp.Prepare(p, method, opts...)
}

func parseMethod(name string) (lsbp.Method, error) {
	switch strings.ToLower(name) {
	case "bp":
		return lsbp.BP, nil
	case "linbp":
		return lsbp.LinBP, nil
	case "linbp*", "linbpstar":
		return lsbp.LinBPStar, nil
	case "sbp":
		return lsbp.SBP, nil
	case "fabp":
		return lsbp.FABP, nil
	}
	return 0, fmt.Errorf("unknown method %q", name)
}

func parseFsync(name string) (lsbp.DurabilityPolicy, error) {
	switch strings.ToLower(name) {
	case "always":
		return lsbp.DurabilityPolicy{Sync: lsbp.SyncAlways}, nil
	case "interval":
		return lsbp.DurabilityPolicy{Sync: lsbp.SyncInterval, Interval: 64}, nil
	case "never":
		return lsbp.DurabilityPolicy{Sync: lsbp.SyncNever}, nil
	}
	return lsbp.DurabilityPolicy{}, fmt.Errorf("unknown -fsync %q", name)
}

func parsePair(s string) (int, int, error) {
	a, b, ok := strings.Cut(s, ",")
	if !ok {
		return 0, 0, fmt.Errorf("want 'nodes,edges', got %q", s)
	}
	n, err := strconv.Atoi(strings.TrimSpace(a))
	if err != nil {
		return 0, 0, err
	}
	m, err := strconv.Atoi(strings.TrimSpace(b))
	if err != nil {
		return 0, 0, err
	}
	return n, m, nil
}

func readEdges(path string) (*lsbp.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lsbp.ReadEdgeList(f)
}

// readLabels parses 'node class' lines into explicit residual
// beliefs, one LabelResidual row per labeled node.
func readLabels(path string, n, k int) (*lsbp.Beliefs, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	e := lsbp.NewBeliefs(n, k)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want 'node class'", path, line)
		}
		node, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		class, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if node < 0 || node >= n || class < 0 || class >= k {
			return nil, fmt.Errorf("%s:%d: node %d class %d outside n=%d k=%d", path, line, node, class, n, k)
		}
		e.Set(node, lsbp.LabelResidual(k, class, 1))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return e, nil
}
