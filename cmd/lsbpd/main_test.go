package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the daemon goroutine write stdout while the test
// polls it for the listen line.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// boot starts the daemon in-process and returns its base URL and a
// shutdown func that asserts a clean exit.
func boot(t *testing.T, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), stdout, stderr)
	}()

	deadline := time.Now().Add(30 * time.Second)
	var addr string
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened\nstdout: %s\nstderr: %s", stdout, stderr)
		}
		select {
		case code := <-done:
			t.Fatalf("daemon exited %d before listening\nstderr: %s", code, stderr)
		case <-time.After(5 * time.Millisecond):
		}
		for _, line := range strings.Split(stdout.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "lsbpd listening on "); ok {
				addr = strings.Fields(rest)[0]
			}
		}
	}
	return "http://" + addr, func() {
		cancel()
		select {
		case code := <-done:
			if code != 0 {
				t.Errorf("daemon exit code %d\nstderr: %s", code, stderr)
			}
		case <-time.After(30 * time.Second):
			t.Error("daemon did not stop after cancel")
		}
		out := stdout.String()
		if !strings.Contains(out, "lsbpd: draining") || !strings.Contains(out, "lsbpd: stopped") {
			t.Errorf("shutdown log missing drain/stop markers:\n%s", out)
		}
	}
}

// TestDaemonSmoke boots lsbpd on a synthetic graph, exercises every
// endpoint once, and shuts it down gracefully — the `make loadtest`
// entry point.
func TestDaemonSmoke(t *testing.T) {
	url, shutdown := boot(t, "-random", "500,1200", "-k", "3", "-max-queue", "8")
	defer shutdown()

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// The boot-time empty Update seeded the fixpoint: reads serve.
	var row struct {
		Node   int       `json:"node"`
		Belief []float64 `json:"belief"`
	}
	resp, err = http.Get(url + "/v1/beliefs/7")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beliefs = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&row); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if row.Node != 7 || len(row.Belief) != 3 {
		t.Fatalf("beliefs row = %+v", row)
	}

	resp, err = http.Get(url + "/v1/top?class=0&k=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("top = %d", resp.StatusCode)
	}

	// A solve with an explicit row round-trips.
	body := strings.NewReader(`{"explicit":[{"node":0,"belief":[0.6,-0.3,-0.3]}],"nodes":[0,1]}`)
	resp, err = http.Post(url+"/v1/solve", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Converged bool `json:"converged"`
		Beliefs   []struct {
			Node int `json:"node"`
		} `json:"beliefs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !sr.Converged || len(sr.Beliefs) != 2 {
		t.Fatalf("solve = %d %+v", resp.StatusCode, sr)
	}

	// An update lands and statz reflects the traffic.
	resp, err = http.Post(url+"/v1/update", "application/json",
		strings.NewReader(`{"add_edges":[{"s":1,"t":99,"w":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update = %d", resp.StatusCode)
	}
	var st map[string]any
	resp, err = http.Get(url + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st["admitted"].(float64) < 1 {
		t.Errorf("statz admitted = %v, want >= 1", st["admitted"])
	}
}

// TestDaemonDurableRestart boots with -state, writes an update, shuts
// down, and reboots from the same dir: the daemon must recover the
// fixpoint without -random (proving it read the snapshot+WAL).
func TestDaemonDurableRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "state")
	url, shutdown := boot(t, "-random", "300,700", "-k", "3", "-state", dir)
	resp, err := http.Post(url+"/v1/update", "application/json",
		strings.NewReader(`{"add_edges":[{"s":5,"t":50,"w":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update = %d", resp.StatusCode)
	}
	var before struct {
		Belief []float64 `json:"belief"`
	}
	resp, err = http.Get(url + "/v1/beliefs/5")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&before); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	shutdown()
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("state dir missing after shutdown: %v", err)
	}

	// Reboot from state alone.
	url2, shutdown2 := boot(t, "-state", dir)
	defer shutdown2()
	var after struct {
		Belief []float64 `json:"belief"`
	}
	resp, err = http.Get(url2 + "/v1/beliefs/5")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The recovered daemon re-solves the fixpoint from the snapshot's
	// state, so it matches the warm pre-restart iterate to within the
	// convergence tolerance, not bitwise.
	if len(after.Belief) != len(before.Belief) {
		t.Fatalf("recovered beliefs %v != pre-restart %v", after.Belief, before.Belief)
	}
	for j := range before.Belief {
		if d := math.Abs(after.Belief[j] - before.Belief[j]); d > 1e-9 {
			t.Fatalf("recovered belief[%d] off by %g: %v vs %v", j, d, after.Belief, before.Belief)
		}
	}
}

// TestDaemonBadFlags: misconfiguration fails fast with a non-zero
// exit instead of serving nothing.
func TestDaemonBadFlags(t *testing.T) {
	var out, errOut syncBuffer
	if code := run(context.Background(), []string{"-method", "nope", "-random", "10,20"}, &out, &errOut); code == 0 {
		t.Error("unknown method accepted")
	}
	if code := run(context.Background(), nil, &out, &errOut); code == 0 {
		t.Error("no graph source accepted")
	}
}
