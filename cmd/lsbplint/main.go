// Command lsbplint is the project's invariant linter: it runs the
// internal/analysis suite (hotpath-noalloc, epoch-atomics,
// errs-taxonomy, durable-format) over the tree and, with -makefile,
// also asserts that the Makefile's RACE_PKGS list has not drifted from
// the set of concurrency-relevant packages.
//
// Usage:
//
//	lsbplint [-makefile Makefile] [-fixture dir=importpath]... [patterns...]
//
// Patterns default to ./... . Each finding prints as
// "file:line:col: message (analyzer)"; any finding exits 1.
//
// -fixture loads a bare directory (one not part of the module build,
// e.g. internal/analysis/testdata/src/hotpath) as if it were a package,
// which is how the test suite demonstrates that seeded violations fail
// the gate.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	var (
		makefile string
		fixtures []string
		patterns []string
	)
	for i := 0; i < len(args); i++ {
		switch arg := args[i]; {
		case arg == "-makefile" || arg == "--makefile":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "lsbplint: -makefile needs a path")
				return 2
			}
			i++
			makefile = args[i]
		case arg == "-fixture" || arg == "--fixture":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "lsbplint: -fixture needs dir=importpath")
				return 2
			}
			i++
			fixtures = append(fixtures, args[i])
		case arg == "-h" || arg == "-help" || arg == "--help":
			usage(stdout)
			return 0
		case strings.HasPrefix(arg, "-"):
			fmt.Fprintf(stderr, "lsbplint: unknown flag %s\n", arg)
			usage(stderr)
			return 2
		default:
			patterns = append(patterns, arg)
		}
	}
	if len(patterns) == 0 && len(fixtures) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "lsbplint:", err)
		return 2
	}
	loader := analysis.NewLoader(wd)

	var pkgs []*analysis.LoadedPackage
	if len(patterns) > 0 {
		pkgs, err = loader.LoadPatterns(patterns...)
		if err != nil {
			fmt.Fprintln(stderr, "lsbplint:", err)
			return 2
		}
	}
	for _, fx := range fixtures {
		dir, importPath, ok := strings.Cut(fx, "=")
		if !ok {
			importPath = "fixture/" + strings.Trim(dir, "./")
		}
		p, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fmt.Fprintln(stderr, "lsbplint:", err)
			return 2
		}
		pkgs = append(pkgs, p)
	}

	diags, err := analysis.Run(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(stderr, "lsbplint:", err)
		return 2
	}
	if makefile != "" {
		raceDiags, err := analysis.CheckRacePkgs(makefile)
		if err != nil {
			fmt.Fprintln(stderr, "lsbplint:", err)
			return 2
		}
		diags = append(diags, raceDiags...)
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stdout, "lsbplint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: lsbplint [-makefile Makefile] [-fixture dir=importpath]... [patterns...]

Runs the in-tree invariant analyzers (hotpath-noalloc, epoch-atomics,
errs-taxonomy, durable-format) over the packages matched by the go
list patterns (default ./...). With -makefile, also checks RACE_PKGS
drift. Exits 1 on any finding.`)
}
