package main

import (
	"os"
	"strings"
	"testing"
)

// TestSeededViolationsFailTheGate is the acceptance check for the lint
// gate: pointed at a fixture package seeded with hot-path allocations,
// the multichecker must exit 1 and print findings; pointed at a clean
// fixture it must exit 0 silently.
func TestSeededViolationsFailTheGate(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-fixture", "../../internal/analysis/testdata/src/hotpath=fixture/hotpath"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout %q stderr %q", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "hotpath-noalloc") {
		t.Errorf("findings missing analyzer name:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Errorf("missing summary line:\n%s", out.String())
	}
}

func TestCleanFixturePassesTheGate(t *testing.T) {
	var out, errw strings.Builder
	code := run([]string{"-fixture", "../../internal/analysis/testdata/src/clean=fixture/clean"}, &out, &errw)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stdout %q stderr %q", code, out.String(), errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run should print nothing, got %q", out.String())
	}
}

func TestFlagErrors(t *testing.T) {
	var out, errw strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errw); code != 2 {
		t.Errorf("unknown flag: exit = %d, want 2", code)
	}
	if code := run([]string{"-makefile"}, &out, &errw); code != 2 {
		t.Errorf("dangling -makefile: exit = %d, want 2", code)
	}
	if code := run([]string{"-fixture"}, &out, &errw); code != 2 {
		t.Errorf("dangling -fixture: exit = %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"-h"}, &out, &errw); code != 0 || !strings.Contains(out.String(), "usage:") {
		t.Errorf("-h: exit = %d out = %q", code, out.String())
	}
}

// TestRacePkgsDrift seeds a Makefile whose RACE_PKGS names a package
// that does not exist and omits every real one: the -makefile check
// must report both directions of drift.
func TestRacePkgsDrift(t *testing.T) {
	dir := t.TempDir()
	// A Makefile outside the module: the race-pkgs check lists packages
	// from the Makefile's own directory, which has none, so every entry
	// is a "matches no package" finding.
	mk := dir + "/Makefile"
	writeFile(t, mk, "RACE_PKGS = ./internal/ghost/\n")
	writeFile(t, dir+"/go.mod", "module scratch\n\ngo 1.24\n")

	var out, errw strings.Builder
	code := run([]string{"-makefile", mk, "-fixture", "../../internal/analysis/testdata/src/clean=fixture/clean"}, &out, &errw)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stdout %q stderr %q", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "matches no package") {
		t.Errorf("missing drift finding:\n%s", out.String())
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
