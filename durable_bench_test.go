// Benchmarks for the durable serving plane: recovering a prepared
// solver from its on-disk snapshot (map + verify + adopt) against the
// full re-Prepare it replaces (reordering, partitioning, the εH
// search), plus the write-ahead-log append overhead per fsync policy.
// `make bench-durable` archives these into BENCH_results.json; the
// acceptance bar is snapshot-load cold start ≥ 5× faster than
// re-Prepare on the large Kronecker regime.
package lsbp_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/core"
	"repro/internal/coupling"
	"repro/internal/durable"
	"repro/internal/gen"
)

// BenchmarkColdStartOpenVsPrepare measures a serving cold start both
// ways on the ≥100k-node Kronecker graph: core.Open mapping and
// validating the checksummed snapshot, versus core.Prepare redoing
// the layout optimization and the auto-εH spectral search from the
// raw graph. Both sides end with a Solver ready to serve (and are
// closed inside the loop, so the mapping lifecycle is included).
func BenchmarkColdStartOpenVsPrepare(b *testing.B) {
	power := reorderBenchPower()
	g := gen.Kronecker(power)
	e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: 0.05, Seed: 3})
	g.Adjacency()
	g.WeightedDegrees()
	p := &core.Problem{Graph: g, Explicit: e, Ho: coupling.Fig6bResidual(), EpsilonH: 0.001}
	opts := []core.Option{core.WithAutoEpsilonH(), core.WithMaxIter(200), core.WithTol(1e-9)}

	dir := b.TempDir()
	s, err := core.Prepare(p, core.MethodLinBP,
		append([]core.Option{core.WithDurability(dir, core.DurabilityPolicy{Sync: core.SyncAlways})}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	wantEps := s.Stats().EpsilonH
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}

	b.Run(fmt.Sprintf("open/power%d_nodes%d", power, g.N()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := core.Open(dir, core.WithMaxIter(200), core.WithTol(1e-9))
			if err != nil {
				b.Fatal(err)
			}
			if got := r.Stats().EpsilonH; got != wantEps {
				b.Fatalf("recovered eps_H %g, want %g", got, wantEps)
			}
			r.Close()
		}
	})
	b.Run(fmt.Sprintf("prepare/power%d_nodes%d", power, g.N()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := core.Prepare(p, core.MethodLinBP, opts...)
			if err != nil {
				b.Fatal(err)
			}
			s.Close()
		}
	})

	// Sanity outside the timed loops: the recovered solver serves the
	// same fixpoint (difftest pins this to 1e-12; here just run it).
	r, err := core.Open(dir, core.WithMaxIter(200), core.WithTol(1e-9))
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Update(context.Background(), core.Update{}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWALAppend isolates the per-update durability overhead: one
// representative record (three edge inserts, one delete, one relabel
// row) appended under each fsync policy. The "always" row is the
// price of losing nothing; "interval16" amortizes it 16×; "never"
// is the raw frame encode + page-cache write.
func BenchmarkWALAppend(b *testing.B) {
	rec := &durable.Record{
		Seq: 1, K: 3,
		Adds: []durable.Edge{{S: 1, T: 2, W: 1}, {S: 3, T: 4, W: 0.5}, {S: 5, T: 6, W: 2}},
		Dels: []durable.Pair{{S: 7, T: 8}},
		Rows: []durable.BeliefRow{{Node: 9, Row: []float64{0.1, -0.05, -0.05}}},
	}
	for _, pol := range []struct {
		name string
		p    durable.Policy
	}{
		{"always", durable.Policy{Sync: durable.SyncAlways}},
		{"interval16", durable.Policy{Sync: durable.SyncInterval, Interval: 16}},
		{"never", durable.Policy{Sync: durable.SyncNever}},
	} {
		b.Run(pol.name, func(b *testing.B) {
			w, err := durable.OpenWAL(durable.OS, b.TempDir(), pol.p)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.Seq = uint64(i + 1)
				if err := w.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
