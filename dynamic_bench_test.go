// Benchmarks for the dynamic-graph serving plane: absorbing an edge
// delta through Solver.Update (overlay merge + snapshot swap + warm
// re-solve) against the cold-restart alternative, on the large
// Kronecker regime. `make bench-update` archives these into
// BENCH_results.json; the acceptance bar is that the warm-started
// re-solve after a ≤1% edge delta takes measurably fewer iterations
// (and less wall time) than the cold solve of the same epoch.
package lsbp_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/core"
	"repro/internal/coupling"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// updateBenchDelta builds a deterministic ~0.5%-of-edges batch of unit
// edges over n nodes.
func updateBenchDelta(n, edges int, seed uint64) []graph.Edge {
	count := edges / 200
	if count < 8 {
		count = 8
	}
	rng := xrand.New(seed)
	out := make([]graph.Edge, 0, count)
	for len(out) < count {
		s, t := rng.Intn(n), rng.Intn(n)
		if s == t {
			continue
		}
		out = append(out, graph.Edge{S: s, T: t, W: 1})
	}
	return out
}

// BenchmarkUpdateWarmVsCold measures one full Update round trip — the
// overlay commit, the epoch swap, and the re-solve to tolerance — with
// the warm start on and off. Each op alternates inserting and removing
// the same delta batch, so the graph (and the overlay) stays bounded
// across b.N. iters/update reports the mean re-solve rounds: the
// warm-started variant must need measurably fewer than the cold one.
func BenchmarkUpdateWarmVsCold(b *testing.B) {
	power := reorderBenchPower()
	g := gen.Kronecker(power)
	e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: 0.05, Seed: 1})
	delta := updateBenchDelta(g.N(), g.NumEdges(), 7)
	g.Adjacency()
	g.WeightedDegrees()

	for _, tc := range []struct {
		name   string
		policy core.UpdatePolicy
	}{
		{"warm", core.UpdatePolicy{}},
		{"cold", core.UpdatePolicy{DisableWarmStart: true}},
	} {
		b.Run(fmt.Sprintf("%s/power%d_nodes%d_delta%d", tc.name, power, g.N(), len(delta)), func(b *testing.B) {
			// Auto εH (half the exact Lemma 8 threshold, the paper's
			// Section 7 recommendation) gives the realistic convergence
			// regime ρ ≈ 0.5: cold solves take ~25–30 rounds to 1e-9, so
			// the warm start has something real to save.
			p := &core.Problem{Graph: g, Explicit: e, Ho: coupling.Fig6bResidual(), EpsilonH: 0.001}
			s, err := core.Prepare(p, core.MethodLinBP, core.WithAutoEpsilonH(),
				core.WithMaxIter(200), core.WithTol(1e-9), core.WithUpdatePolicy(tc.policy))
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			if _, err := s.Update(ctx, core.Update{}); err != nil {
				b.Fatal(err)
			}
			var iters int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u := core.Update{AddEdges: delta}
				if i%2 == 1 {
					u = core.Update{RemoveEdges: delta}
				}
				res, err := s.Update(ctx, u)
				if err != nil {
					b.Fatal(err)
				}
				iters += res.Iterations
			}
			b.ReportMetric(float64(iters)/float64(b.N), "iters/update")
		})
	}
}

// BenchmarkUpdateThroughput measures the two commit shapes separately:
// a belief-only update (no snapshot rebuild — just the warm re-solve)
// and a single-edge topology update (overlay commit + epoch swap +
// warm re-solve), the steady-state costs of an event stream.
func BenchmarkUpdateThroughput(b *testing.B) {
	power := reorderBenchPower()
	g := gen.Kronecker(power)
	e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: 0.05, Seed: 2})
	g.Adjacency()
	g.WeightedDegrees()
	p := &core.Problem{Graph: g, Explicit: e, Ho: coupling.Fig6bResidual(), EpsilonH: 0.001}

	relabel := beliefs.New(g.N(), 3)
	relabel.Set(1, beliefs.LabelResidual(3, 1, 0.1))
	edge := []graph.Edge{{S: 2, T: g.N() - 3, W: 1}}

	for _, tc := range []struct {
		name string
		mk   func(i int) core.Update
	}{
		{"belief", func(int) core.Update { return core.Update{SetExplicit: relabel} }},
		{"topology", func(i int) core.Update {
			if i%2 == 1 {
				return core.Update{RemoveEdges: edge}
			}
			return core.Update{AddEdges: edge}
		}},
	} {
		b.Run(fmt.Sprintf("%s/power%d_nodes%d", tc.name, power, g.N()), func(b *testing.B) {
			s, err := core.Prepare(p, core.MethodLinBP, core.WithMaxIter(200), core.WithTol(1e-9))
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			ctx := context.Background()
			if _, err := s.Update(ctx, core.Update{}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Update(ctx, tc.mk(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
