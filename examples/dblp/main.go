// Research-area labeling on a DBLP-like heterogeneous graph — the
// paper's Fig. 11 scenario: papers, authors, conferences, and title
// terms over four areas (AI, DB, DM, IR), ~10% labeled, homophily
// coupling. We label the rest with SBP (fast, εH-free) and LinBP and
// compare both against the generator's ground truth.
package main

import (
	"context"
	"fmt"
	"log"

	lsbp "repro"
)

var areas = []string{"AI", "DB", "DM", "IR"}

func main() {
	d := lsbp.NewDBLPGraph(lsbp.DefaultDBLPConfig())
	n := d.G.N()

	// Label ~10% of all nodes with their true area.
	e := lsbp.NewBeliefs(n, 4)
	labeled := 0
	for v := 0; v < n; v++ {
		if v%10 == 3 {
			e.Set(v, lsbp.LabelResidual(4, d.TrueClass[v], 0.05))
			labeled++
		}
	}
	fmt.Printf("DBLP-like graph: %d nodes, %d edges, %d labeled (%.1f%%)\n",
		n, d.G.NumEdges(), labeled, 100*float64(labeled)/float64(n))

	ho := lsbp.Fig11aCoupling()
	p := &lsbp.Problem{Graph: d.G, Explicit: e, Ho: ho, EpsilonH: 0}

	for _, m := range []lsbp.Method{lsbp.LinBP, lsbp.SBP} {
		s, err := lsbp.Prepare(p, m, lsbp.WithAutoEpsilonH())
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Solve(context.Background(), e)
		if err != nil {
			log.Fatal(err)
		}
		s.Close()
		var correct, total, ties int
		perArea := map[int][2]int{} // area -> {correct, total}
		for v := 0; v < n; v++ {
			if e.IsExplicit(v) {
				continue
			}
			if len(res.Top[v]) > 1 {
				ties++
				continue
			}
			total++
			pa := perArea[d.TrueClass[v]]
			pa[1]++
			if res.Top[v][0] == d.TrueClass[v] {
				correct++
				pa[0]++
			}
			perArea[d.TrueClass[v]] = pa
		}
		fmt.Printf("\n%s: accuracy on unlabeled nodes %.1f%% (%d/%d, %d ties skipped)\n",
			m, 100*float64(correct)/float64(total), correct, total, ties)
		for a := 0; a < 4; a++ {
			pa := perArea[a]
			if pa[1] > 0 {
				fmt.Printf("  %s: %.1f%% (%d/%d)\n", areas[a], 100*float64(pa[0])/float64(pa[1]), pa[0], pa[1])
			}
		}
	}

	// Serving: one prepared LinBP solver answering a batch of "what if
	// we had labeled different nodes" queries through fused kernel
	// rounds — the repeated-workload scenario of the paper's
	// data-management pitch.
	s, err := lsbp.PrepareLinBP(p, lsbp.WithAutoEpsilonH())
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	reqs := make([]lsbp.Request, 4)
	for i := range reqs {
		alt := lsbp.NewBeliefs(n, 4)
		for v := 0; v < n; v++ {
			if v%10 == i {
				alt.Set(v, lsbp.LabelResidual(4, d.TrueClass[v], 0.05))
			}
		}
		reqs[i] = lsbp.Request{E: alt}
	}
	fmt.Println("\nbatched what-if labelings (one fused solve, accuracy per seed offset):")
	for i, r := range s.SolveBatch(context.Background(), reqs) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		top := r.Beliefs.TopAssignment()
		var correct, total int
		for v := 0; v < n; v++ {
			if reqs[i].E.IsExplicit(v) || len(top[v]) != 1 {
				continue
			}
			total++
			if top[v][0] == d.TrueClass[v] {
				correct++
			}
		}
		fmt.Printf("  offset %d: %.1f%% (%d iterations shared)\n",
			i, 100*float64(correct)/float64(total), r.Info.Iterations)
	}
}
