// Dynamic networks: SBP's incremental maintenance (Algorithms 3 and 4).
// A stream of events — new edges, newly labeled users — arrives, and the
// SBP state absorbs each batch without recomputation. After every batch
// we verify against a full recomputation from scratch.
package main

import (
	"context"
	"fmt"
	"log"

	lsbp "repro"
)

func main() {
	// Start from a modest random network with a few labeled nodes. The
	// prepared SBP solver materializes the incremental state in
	// Result.SBP, which then absorbs the event stream.
	g := lsbp.RandomGraph(200, 400, 1)
	e, seeds := lsbp.SeedBeliefs(200, 3, lsbp.SeedConfig{Fraction: 0.05, Seed: 2})
	ho, err := lsbp.NewCouplingFromStochastic(lsbp.Fig1c())
	if err != nil {
		log.Fatal(err)
	}
	p := &lsbp.Problem{Graph: g, Explicit: e, Ho: ho, EpsilonH: 1}
	solver, err := lsbp.PrepareSBP(p)
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), e)
	solver.Close()
	if err != nil {
		log.Fatal(err)
	}
	st := res.SBP
	fmt.Printf("initial: %d nodes, %d edges, %d labeled\n", g.N(), g.NumEdges(), len(seeds))
	printGeodesicHistogram(st)

	// Event 1: a batch of new edges (the network grows).
	newEdges := []lsbp.Edge{
		{S: 0, T: 100, W: 1}, {S: 3, T: 150, W: 1}, {S: 42, T: 7, W: 1},
		{S: 99, T: 1, W: 1}, {S: 180, T: 20, W: 1},
	}
	if err := st.AddEdges(newEdges); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter +%d edges:\n", len(newEdges))
	printGeodesicHistogram(st)
	verify(st, ho)

	// Event 2: five more users get labels.
	en := lsbp.NewBeliefs(200, 3)
	for i, v := range []int{11, 57, 123, 166, 199} {
		if !st.Explicit().IsExplicit(v) {
			en.Set(v, lsbp.LabelResidual(3, i%3, 0.1))
		}
	}
	if err := st.AddExplicitBeliefs(en); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter labeling 5 more users:")
	printGeodesicHistogram(st)
	verify(st, ho)

	fmt.Println("\nincremental state matches from-scratch recomputation after every batch")
}

// verify recomputes SBP from scratch on the current graph and explicit
// beliefs and compares against the incremental state.
func verify(st *lsbp.SBPState, ho *lsbp.Matrix) {
	scratch, err := lsbp.RunSBP(st.Graph().Clone(), st.Explicit(), ho)
	if err != nil {
		log.Fatal(err)
	}
	if !st.Beliefs().Matrix().EqualApprox(scratch.Beliefs().Matrix(), 1e-9) {
		log.Fatal("incremental state diverged from scratch recomputation")
	}
}

func printGeodesicHistogram(st *lsbp.SBPState) {
	hist := map[int]int{}
	maxG := 0
	for _, g := range st.Geodesics() {
		hist[g]++
		if g > maxG {
			maxG = g
		}
	}
	fmt.Print("  geodesic histogram:")
	for g := 0; g <= maxG; g++ {
		if hist[g] > 0 {
			fmt.Printf("  g=%d:%d", g, hist[g])
		}
	}
	if hist[lsbp.Unreachable] > 0 {
		fmt.Printf("  unreachable:%d", hist[lsbp.Unreachable])
	}
	fmt.Println()
}
