// Dynamic networks through the unified epoch-versioned Update API. A
// stream of events — new edges, newly labeled users — arrives, and the
// prepared solver absorbs each batch without re-preparing: SBP's
// incremental maintenance (Algorithms 3 and 4) keeps its geodesic
// story, and a LinBP solver on the same stream shows the warm-start
// payoff (the Section 8 future-work direction): after a small delta
// the re-solve needs a fraction of the cold iterations. After every
// batch we verify against a full recomputation from scratch.
package main

import (
	"context"
	"fmt"
	"log"

	lsbp "repro"
)

func main() {
	// Start from a modest random network with a few labeled nodes.
	g := lsbp.RandomGraph(200, 400, 1)
	e, seeds := lsbp.SeedBeliefs(200, 3, lsbp.SeedConfig{Fraction: 0.05, Seed: 2})
	ho, err := lsbp.NewCouplingFromStochastic(lsbp.Fig1c())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	p := &lsbp.Problem{Graph: g, Explicit: e, Ho: ho, EpsilonH: 1}
	solver, err := lsbp.PrepareSBP(p)
	if err != nil {
		log.Fatal(err)
	}
	defer solver.Close()

	// Epoch 0: the empty Update materializes the initial fixpoint (for
	// SBP, Result.SBP carries the geodesic state).
	res, err := solver.Update(ctx, lsbp.Update{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial: %d nodes, %d edges, %d labeled\n", g.N(), g.NumEdges(), len(seeds))
	printGeodesicHistogram(res.SBP)

	// Mirror problem for the from-scratch verification.
	mg, me := g.Clone(), e.Clone()

	// Event 1: a batch of new edges (the network grows).
	newEdges := []lsbp.Edge{
		{S: 0, T: 100, W: 1}, {S: 3, T: 150, W: 1}, {S: 42, T: 7, W: 1},
		{S: 99, T: 1, W: 1}, {S: 180, T: 20, W: 1},
	}
	res, err = solver.Update(ctx, lsbp.Update{AddEdges: newEdges})
	if err != nil {
		log.Fatal(err)
	}
	for _, ed := range newEdges {
		mg.AddEdge(ed.S, ed.T, ed.W)
	}
	fmt.Printf("\nafter +%d edges:\n", len(newEdges))
	printGeodesicHistogram(res.SBP)
	verify(res, mg, me, ho)

	// Event 2: five more users get labels.
	en := lsbp.NewBeliefs(200, 3)
	for i, v := range []int{11, 57, 123, 166, 199} {
		if !me.IsExplicit(v) {
			row := lsbp.LabelResidual(3, i%3, 0.1)
			en.Set(v, row)
			me.Set(v, row)
		}
	}
	res, err = solver.Update(ctx, lsbp.Update{SetExplicit: en})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter labeling 5 more users:")
	printGeodesicHistogram(res.SBP)
	verify(res, mg, me, ho)

	fmt.Println("\nincremental state matches from-scratch recomputation after every batch")

	// LinBP warm-start variant on the same stream: the dynamic solver
	// re-solves each Update from the previous fixpoint, so a ~1% edge
	// delta costs a fraction of the cold iterations.
	warmStartDemo(ctx, mg.Clone(), me, ho)
}

// warmStartDemo compares warm-started Update re-solves against cold
// ones on the same deltas.
func warmStartDemo(ctx context.Context, g *lsbp.Graph, e *lsbp.Beliefs, ho *lsbp.Matrix) {
	p := &lsbp.Problem{Graph: g, Explicit: e, Ho: ho, EpsilonH: 0.02}
	delta := lsbp.Update{AddEdges: []lsbp.Edge{
		{S: 5, T: 140, W: 1}, {S: 60, T: 61, W: 1}, {S: 17, T: 171, W: 1},
	}}
	iters := func(policy lsbp.UpdatePolicy) (initial, after int) {
		s, err := lsbp.PrepareLinBP(p, lsbp.WithUpdatePolicy(policy), lsbp.WithTol(1e-10))
		if err != nil {
			log.Fatal(err)
		}
		defer s.Close()
		r0, err := s.Update(ctx, lsbp.Update{})
		if err != nil {
			log.Fatal(err)
		}
		r1, err := s.Update(ctx, delta)
		if err != nil {
			log.Fatal(err)
		}
		return r0.Iterations, r1.Iterations
	}
	_, warm := iters(lsbp.UpdatePolicy{})
	cold0, cold := iters(lsbp.UpdatePolicy{DisableWarmStart: true})
	fmt.Printf("\nLinBP on the grown network: cold solve %d iterations;\n", cold0)
	fmt.Printf("after +%d edges: warm-started re-solve %d iterations vs %d cold (%.0f%% saved)\n",
		len(delta.AddEdges), warm, cold, 100*(1-float64(warm)/float64(cold)))
}

// verify recomputes SBP from scratch on the mirrored graph and
// explicit beliefs and compares against the updated solver's result.
func verify(res *lsbp.Result, g *lsbp.Graph, e *lsbp.Beliefs, ho *lsbp.Matrix) {
	scratch, err := lsbp.RunSBP(g.Clone(), e, ho)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Beliefs.Matrix().EqualApprox(scratch.Beliefs().Matrix(), 1e-9) {
		log.Fatal("updated solver diverged from scratch recomputation")
	}
}

func printGeodesicHistogram(st *lsbp.SBPState) {
	hist := map[int]int{}
	maxG := 0
	for _, g := range st.Geodesics() {
		hist[g]++
		if g > maxG {
			maxG = g
		}
	}
	fmt.Print("  geodesic histogram:")
	for g := 0; g <= maxG; g++ {
		if hist[g] > 0 {
			fmt.Printf("  g=%d:%d", g, hist[g])
		}
	}
	if hist[lsbp.Unreachable] > 0 {
		fmt.Printf("  unreachable:%d", hist[lsbp.Unreachable])
	}
	fmt.Println()
}
