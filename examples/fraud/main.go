// Fraud detection in an online auction network — the paper's motivating
// example (Fig. 1c): three classes with mixed homophily and heterophily.
// Honest users trade with honest users and accomplices; accomplices
// never interact with each other but feed fraudsters' reputations;
// fraudsters form near-bipartite cores with accomplices.
//
// We synthesize such a network, reveal a few known-honest users and a
// couple of convicted fraudsters, and let LinBP infer everyone else.
package main

import (
	"context"
	"fmt"
	"log"

	lsbp "repro"
)

func main() {
	cfg := lsbp.DefaultFraudConfig()
	cfg.Density = 0.1 // a denser market gives each account more signal
	g, truth := lsbp.FraudGraph(cfg)
	n := g.N()
	classNames := []string{"honest", "accomplice", "fraudster"}

	// Reveal 10% of honest users, a third of the fraudsters, and a few
	// accomplices (investigations usually start from confirmed cases and
	// expand through their known associates).
	e := lsbp.NewBeliefs(n, 3)
	labeled := 0
	for v := 0; v < n; v++ {
		var ok bool
		switch truth[v] {
		case 0:
			ok = v%10 == 0
		case 1:
			ok = v%4 == 0
		case 2:
			ok = v%3 == 0
		}
		if ok {
			e.Set(v, lsbp.LabelResidual(3, truth[v], 0.1))
			labeled++
		}
	}

	// Fig. 1c as the coupling matrix; εH auto-scaled at Prepare time.
	// An investigation dashboard re-scores the same marketplace as new
	// labels arrive, so the LinBP solver is prepared once.
	ho, err := lsbp.NewCouplingFromStochastic(lsbp.Fig1c())
	if err != nil {
		log.Fatal(err)
	}
	p := &lsbp.Problem{Graph: g, Explicit: e, Ho: ho, EpsilonH: 0}
	s, err := lsbp.PrepareLinBP(p, lsbp.WithAutoEpsilonH())
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	res, err := s.Solve(context.Background(), e)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("auction network: %d users, %d interactions, %d labeled\n",
		n, g.NumEdges(), labeled)
	fmt.Printf("auto eps_H = %.4f, converged after %d iterations\n\n",
		s.Stats().EpsilonH, res.Iterations)

	// Confusion matrix over the unlabeled nodes.
	var confusion [3][3]int
	var correct, total int
	for v := 0; v < n; v++ {
		if e.IsExplicit(v) || len(res.Top[v]) != 1 {
			continue
		}
		pred := res.Top[v][0]
		confusion[truth[v]][pred]++
		total++
		if pred == truth[v] {
			correct++
		}
	}
	fmt.Println("confusion over unlabeled users (rows = truth, cols = predicted):")
	fmt.Printf("%12s %8s %11s %10s\n", "", "honest", "accomplice", "fraudster")
	for c := 0; c < 3; c++ {
		fmt.Printf("%12s %8d %11d %10d\n",
			classNames[c], confusion[c][0], confusion[c][1], confusion[c][2])
	}
	fmt.Printf("\naccuracy: %.1f%% (%d/%d)\n", 100*float64(correct)/float64(total), correct, total)

	// Show the most suspicious unlabeled accounts.
	fmt.Println("\nmost fraudster-leaning unlabeled accounts:")
	type suspect struct {
		node  int
		score float64
	}
	var best suspect
	shown := 0
	seen := map[int]bool{}
	for shown < 5 {
		best = suspect{node: -1}
		for v := 0; v < n; v++ {
			if e.IsExplicit(v) || seen[v] {
				continue
			}
			if s := res.Beliefs.StandardizedRow(v)[2]; best.node == -1 || s > best.score {
				best = suspect{node: v, score: s}
			}
		}
		if best.node == -1 {
			break
		}
		seen[best.node] = true
		fmt.Printf("  user %3d: fraud z-score %.3f (truth: %s)\n",
			best.node, best.score, classNames[truth[best.node]])
		shown++
	}
}
