// Learning the coupling matrix from data — the paper assumes Hˆo is
// "given, e.g., by domain experts" (footnote 1) and defers learning it
// to future work. This example closes that loop: estimate the coupling
// from the labeled subgraph of the auction network, compare it to the
// true Fig. 1c matrix, and show that inference with the learned
// coupling performs on par with the expert one.
package main

import (
	"context"
	"fmt"
	"log"

	lsbp "repro"
)

func main() {
	cfg := lsbp.DefaultFraudConfig()
	cfg.Density = 0.1
	g, truth := lsbp.FraudGraph(cfg)
	n := g.N()

	// Partial labels: investigators know a third of each class.
	partial := make([]int, n)
	e := lsbp.NewBeliefs(n, 3)
	for v := 0; v < n; v++ {
		partial[v] = lsbp.UnlabeledNode
		if v%3 == 0 {
			partial[v] = truth[v]
			e.Set(v, lsbp.LabelResidual(3, truth[v], 0.1))
		}
	}

	learned, err := lsbp.EstimateCoupling(g, partial, 3)
	if err != nil {
		log.Fatal(err)
	}
	expert, err := lsbp.NewCouplingFromStochastic(lsbp.Fig1c())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("expert residual coupling (Fig. 1c, centered):")
	printMatrix(expert)
	fmt.Println("\nlearned residual coupling (from labeled edges):")
	printMatrix(learned)

	for _, run := range []struct {
		name string
		ho   *lsbp.Matrix
	}{{"expert", expert}, {"learned", learned}} {
		p := &lsbp.Problem{Graph: g, Explicit: e, Ho: run.ho, EpsilonH: 0}
		s, err := lsbp.PrepareLinBP(p, lsbp.WithAutoEpsilonH())
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Solve(context.Background(), e)
		if err != nil {
			log.Fatal(err)
		}
		s.Close()
		var correct, total int
		for v := 0; v < n; v++ {
			if partial[v] != lsbp.UnlabeledNode || len(res.Top[v]) != 1 {
				continue
			}
			total++
			if res.Top[v][0] == truth[v] {
				correct++
			}
		}
		fmt.Printf("\n%s coupling: accuracy %.1f%% (%d/%d unlabeled nodes)\n",
			run.name, 100*float64(correct)/float64(total), correct, total)
	}
}

func printMatrix(m *lsbp.Matrix) {
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			fmt.Printf(" %+.3f", m.At(i, j))
		}
		fmt.Println()
	}
}
