// Political-leaning inference with k = 2 (Fig. 1a: Democrats and
// Republicans under homophily), demonstrating the binary special case
// of Appendix E: the full multi-class LinBP and the scalar FABP-style
// linearization give (near-)identical answers, and under heterophily
// (Fig. 1b: talkative/silent daters) the signs alternate.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	lsbp "repro"
)

func main() {
	// A two-community political network.
	g := lsbp.RandomGraph(60, 150, 9)
	n := g.N()

	// Known partisans: nodes 0-2 lean class 0, nodes 57-59 class 1.
	e := lsbp.NewBeliefs(n, 2)
	for _, v := range []int{0, 1, 2} {
		e.Set(v, lsbp.LabelResidual(2, 0, 0.1))
	}
	for _, v := range []int{57, 58, 59} {
		e.Set(v, lsbp.LabelResidual(2, 1, 0.1))
	}

	// Multi-class LinBP and the binary FABP collapse run through the
	// same prepared-Solver surface on the same Problem.
	const hhat = 0.05
	ho := lsbp.NewMatrix([][]float64{{hhat, -hhat}, {-hhat, hhat}})
	p := &lsbp.Problem{Graph: g, Explicit: e, Ho: ho, EpsilonH: 1}
	ctx := context.Background()

	lin, err := lsbp.PrepareLinBP(p, lsbp.WithMaxIter(500))
	if err != nil {
		log.Fatal(err)
	}
	defer lin.Close()
	res, err := lin.Solve(ctx, e)
	if err != nil {
		log.Fatal(err)
	}

	fab, err := lsbp.PrepareFABP(p, lsbp.WithMaxIter(500))
	if err != nil {
		log.Fatal(err)
	}
	defer fab.Close()
	fres, err := fab.Solve(ctx, e)
	if err != nil {
		log.Fatal(err)
	}
	b := make([]float64, n)
	for v := 0; v < n; v++ {
		b[v] = fres.Beliefs.Row(v)[0]
	}

	var maxGap float64
	var agree, total int
	for v := 0; v < n; v++ {
		gap := math.Abs(res.Beliefs.Row(v)[0] - b[v])
		if gap > maxGap {
			maxGap = gap
		}
		if (res.Beliefs.Row(v)[0] > 0) == (b[v] > 0) {
			agree++
		}
		total++
	}
	fmt.Printf("political network: %d users, %d edges, 6 known partisans\n", n, g.NumEdges())
	fmt.Printf("LinBP vs binary FABP: sign agreement %d/%d, max |gap| = %.2g (O(h^3) = %.2g)\n",
		agree, total, maxGap, hhat*hhat*hhat)

	dems := 0
	for v := 0; v < n; v++ {
		if res.Beliefs.Row(v)[0] > 0 {
			dems++
		}
	}
	fmt.Printf("inferred leaning: %d class-0, %d class-1\n\n", dems, n-dems)

	// Heterophily: an online dating chain (Fig. 1b) where talkative
	// users prefer silent ones. One labeled talkative user at the end of
	// a chain makes predictions alternate along it.
	chain := lsbp.NewGraph(6)
	for i := 0; i < 5; i++ {
		chain.AddUnitEdge(i, i+1)
	}
	b2, err := lsbp.BinaryFABP(chain, []float64{0.1, 0, 0, 0, 0, 0}, -0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dating chain under heterophily (node 0 is talkative):")
	for v, lean := range b2 {
		kind := "talkative"
		if lean < 0 {
			kind = "silent"
		}
		fmt.Printf("  node %d: %-9s (%.5f)\n", v, kind, lean)
	}
}
