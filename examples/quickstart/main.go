// Quickstart: label a small friendship network with two classes under
// homophily, using every method the library offers, and show that they
// agree — the paper's core claim in ten lines of API.
package main

import (
	"fmt"
	"log"

	lsbp "repro"
)

func main() {
	// A small social network: two communities bridged by one edge.
	//
	//   0 - 1 - 2       5 - 6
	//    \  |  /    \   |   |
	//     \ | /      4--+   |
	//       3           7 --+
	g := lsbp.NewGraph(8)
	for _, e := range [][2]int{
		{0, 1}, {1, 2}, {0, 3}, {1, 3}, {2, 3}, // community A
		{5, 6}, {6, 7}, {5, 7}, {4, 5}, // community B
		{2, 4}, // bridge
	} {
		g.AddUnitEdge(e[0], e[1])
	}

	// Two labeled users: node 0 is class 0, node 7 is class 1.
	e := lsbp.NewBeliefs(8, 2)
	e.Set(0, lsbp.LabelResidual(2, 0, 0.1))
	e.Set(7, lsbp.LabelResidual(2, 1, 0.1))

	// Homophily coupling; εH picked automatically from the exact
	// convergence criterion (Lemma 8 of the paper).
	ho := lsbp.Homophily(2, 0.8)
	eps, err := lsbp.AutoEpsilonH(g, ho, lsbp.LinBP)
	if err != nil {
		log.Fatal(err)
	}
	p := &lsbp.Problem{Graph: g, Explicit: e, Ho: ho, EpsilonH: eps}

	fmt.Printf("auto eps_H = %.4f\n\n", eps)
	fmt.Printf("%-8s", "node:")
	for s := 0; s < g.N(); s++ {
		fmt.Printf("%4d", s)
	}
	fmt.Println()
	for _, m := range []lsbp.Method{lsbp.BP, lsbp.LinBP, lsbp.LinBPStar, lsbp.SBP} {
		res, err := lsbp.Solve(p, m, lsbp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s", m.String()+":")
		for _, classes := range res.Top {
			fmt.Printf("%4d", classes[0])
		}
		fmt.Println()
	}
	fmt.Println("\nNodes 0-3 follow the class-0 seed, 4-7 the class-1 seed;")
	fmt.Println("all four methods give the same assignment.")
}
