// Quickstart: label a small friendship network with two classes under
// homophily, using every method the library offers through the unified
// prepared-Solver API, and show that they agree — the paper's core
// claim in a dozen lines of API.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	lsbp "repro"
)

func main() {
	// A small social network: two communities bridged by one edge.
	//
	//   0 - 1 - 2       5 - 6
	//    \  |  /    \   |   |
	//     \ | /      4--+   |
	//       3           7 --+
	g := lsbp.NewGraph(8)
	for _, e := range [][2]int{
		{0, 1}, {1, 2}, {0, 3}, {1, 3}, {2, 3}, // community A
		{5, 6}, {6, 7}, {5, 7}, {4, 5}, // community B
		{2, 4}, // bridge
	} {
		g.AddUnitEdge(e[0], e[1])
	}

	// Two labeled users: node 0 is class 0, node 7 is class 1.
	e := lsbp.NewBeliefs(8, 2)
	e.Set(0, lsbp.LabelResidual(2, 0, 0.1))
	e.Set(7, lsbp.LabelResidual(2, 1, 0.1))

	// Homophily coupling; εH picked automatically from the exact
	// convergence criterion (Lemma 8 of the paper) at Prepare time.
	ho := lsbp.Homophily(2, 0.8)
	p := &lsbp.Problem{Graph: g, Explicit: e, Ho: ho, EpsilonH: 0}
	ctx := context.Background()

	fmt.Printf("%-8s", "node:")
	for s := 0; s < g.N(); s++ {
		fmt.Printf("%4d", s)
	}
	fmt.Println()
	for i, m := range []lsbp.Method{lsbp.BP, lsbp.LinBP, lsbp.LinBPStar, lsbp.SBP, lsbp.FABP} {
		// One prepared solver per method; in a real serving setup this
		// happens once and the solver answers many queries.
		s, err := lsbp.Prepare(p, m, lsbp.WithAutoEpsilonH())
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Solve(ctx, e)
		if err != nil && !errors.Is(err, lsbp.ErrNotConverged) {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("%-8s (auto eps_H = %.4f)\n", "", s.Stats().EpsilonH)
		}
		fmt.Printf("%-8s", m.String()+":")
		for _, classes := range res.Top {
			fmt.Printf("%4d", classes[0])
		}
		fmt.Println()
		s.Close()
	}

	// The same solver also serves batches: here both label configurations
	// at once through one fused multi-request kernel.
	s, err := lsbp.PrepareLinBP(p, lsbp.WithAutoEpsilonH())
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	e2 := lsbp.NewBeliefs(8, 2) // swapped seeds
	e2.Set(0, lsbp.LabelResidual(2, 1, 0.1))
	e2.Set(7, lsbp.LabelResidual(2, 0, 0.1))
	resps := s.SolveBatch(ctx, []lsbp.Request{{E: e}, {E: e2}})
	fmt.Printf("\nbatched: original vs swapped seeds flip every node:")
	for _, r := range resps {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
		fmt.Printf(" %v", r.Beliefs.TopAssignment()[4])
	}
	fmt.Println()

	fmt.Println("\nNodes 0-3 follow the class-0 seed, 4-7 the class-1 seed;")
	fmt.Println("all methods give the same assignment.")
}
