// Package analysis is the in-tree static-analysis suite behind
// cmd/lsbplint: a small go/analysis-style framework (the upstream
// golang.org/x/tools module is deliberately not a dependency — the
// loader in load.go drives go/parser + go/types over `go list -export`
// output, so the suite builds offline with the standard library alone)
// plus the four analyzers that machine-check the serving plane's
// by-convention invariants:
//
//   - hotpath-noalloc (hotpath.go): functions annotated //lsbp:hotpath
//     must not contain allocating constructs and may only call other
//     annotated (or allowlisted) functions — the 0 allocs/op benchmark
//     guarantee as a compile-time gate.
//   - epoch-atomics (atomics.go): struct fields annotated //lsbp:atomic
//     may only be touched through sync/atomic operations or designated
//     //lsbp:atomic-access functions — the RCU epoch discipline.
//   - errs-taxonomy (errstaxonomy.go): packages that import
//     repro/internal/errs must wrap (%w) every fmt.Errorf they return
//     and must not mint dynamic errors.New values at return sites.
//   - durable-format (durableformat.go): in packages carrying
//     //lsbp:format declarations, raw file writes must flow through the
//     checksumming writer, and any edit to the format-affecting
//     declarations must be accompanied by a FormatVersion/formatLock
//     bump in the same package.
//
// A finding is suppressed with a justified directive on (or directly
// above) the offending line:
//
//	//lsbp:ignore <analyzer-name> -- <why this is safe>
//
// The justification is mandatory; a bare ignore is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore
	// directives, e.g. "hotpath-noalloc".
	Name string
	// Doc is the one-line description printed by lsbplint -help.
	Doc string
	// Run inspects pass and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one loaded package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Sources maps filename to raw file bytes (durable-format hashes
	// declaration source text).
	Sources map[string][]byte
	// Reg is the cross-package annotation registry collected from every
	// loaded package before any analyzer ran.
	Reg *Registry

	ignores map[string]map[int]*ignoreDirective // filename → line → directive
	diags   *[]Diagnostic
}

// Reportf records a finding unless a justified //lsbp:ignore directive
// covers its line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if ig := p.ignoreFor(position); ig != nil {
		ig.used = true
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignoreFor finds a directive covering pos: on the same line or the
// line directly above.
func (p *Pass) ignoreFor(pos token.Position) *ignoreDirective {
	lines := p.ignores[pos.Filename]
	for _, ln := range [2]int{pos.Line, pos.Line - 1} {
		if ig := lines[ln]; ig != nil && ig.covers(p.Analyzer.Name) {
			return ig
		}
	}
	return nil
}

type ignoreDirective struct {
	analyzers []string
	justified bool
	used      bool
	pos       token.Pos
}

func (ig *ignoreDirective) covers(name string) bool {
	if !ig.justified {
		return false // unjustified directives suppress nothing
	}
	for _, a := range ig.analyzers {
		if a == name || a == "all" {
			return true
		}
	}
	return false
}

// Directive prefixes recognized in comments.
const (
	dirHotpath      = "lsbp:hotpath"
	dirHotpathInit  = "lsbp:hotpath-init"
	dirAtomic       = "lsbp:atomic"
	dirAtomicAccess = "lsbp:atomic-access"
	dirFormat       = "lsbp:format"
	dirRawIO        = "lsbp:rawio"
	dirIgnore       = "lsbp:ignore"
)

// directivesOf extracts the lsbp: directives of a comment group: one
// entry per comment line that starts with //lsbp: (after trimming),
// with the leading "//" removed.
func directivesOf(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if strings.HasPrefix(text, "lsbp:") {
			out = append(out, strings.TrimSpace(text))
		}
	}
	return out
}

func hasDirective(doc *ast.CommentGroup, dir string) bool {
	for _, d := range directivesOf(doc) {
		if d == dir || strings.HasPrefix(d, dir+" ") {
			return true
		}
	}
	return false
}

// FuncAnnotation is the directive set of one function declaration.
type FuncAnnotation struct {
	// Hotpath marks a function whose body the hotpath-noalloc analyzer
	// checks in full.
	Hotpath bool
	// HotpathInit marks a function callable from hot paths whose body
	// is exempt: guarded one-time initialization or amortized growth
	// (sync worker spawn, pool-miss builds, buffer doubling).
	HotpathInit bool
	// AtomicAccess marks a designated accessor allowed to touch
	// //lsbp:atomic fields directly.
	AtomicAccess bool
	// RawIO marks a reviewed function allowed to issue raw Write calls
	// in a //lsbp:format package.
	RawIO bool
}

// Registry holds annotations collected from every loaded package, so
// cross-package checks (a core hot path calling a kernel function) see
// the callee's directives. Keys are position-independent strings, so
// objects imported from export data and objects type-checked from
// source agree.
type Registry struct {
	funcs  map[string]FuncAnnotation
	fields map[string]bool // //lsbp:atomic struct fields
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{funcs: map[string]FuncAnnotation{}, fields: map[string]bool{}}
}

// FuncKey is the registry key of a function object: the generic origin
// full name with pointer-receiver stars stripped, e.g.
// "(repro/internal/kernel.Engine).rows" or "repro/internal/durable.Join".
func FuncKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	name := fn.FullName()
	name = strings.ReplaceAll(name, "*", "")
	// Instantiated receivers keep their type arguments in FullName;
	// drop them so statePool[T].get and statePool[Engine].get agree.
	if i := strings.IndexByte(name, '['); i >= 0 {
		if j := strings.LastIndexByte(name, ']'); j > i {
			name = name[:i] + name[j+1:]
		}
	}
	return name
}

// FieldKey is the registry key of a struct field: pkgpath.Struct.Field.
func FieldKey(pkgPath, structName, fieldName string) string {
	return pkgPath + "." + structName + "." + fieldName
}

// FuncAnnotation looks up fn's directives; the zero value means
// un-annotated.
func (r *Registry) FuncAnnotation(fn *types.Func) FuncAnnotation {
	return r.funcs[FuncKey(fn)]
}

// AtomicField reports whether the named struct field is annotated
// //lsbp:atomic.
func (r *Registry) AtomicField(pkgPath, structName, fieldName string) bool {
	return r.fields[FieldKey(pkgPath, structName, fieldName)]
}

// Collect records pkg's annotations into the registry and returns the
// per-file ignore-directive index used by Reportf.
func (r *Registry) Collect(pkg *LoadedPackage) map[string]map[int]*ignoreDirective {
	ignores := map[string]map[int]*ignoreDirective{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				an := FuncAnnotation{
					Hotpath:      hasDirective(d.Doc, dirHotpath),
					HotpathInit:  hasDirective(d.Doc, dirHotpathInit),
					AtomicAccess: hasDirective(d.Doc, dirAtomicAccess),
					RawIO:        hasDirective(d.Doc, dirRawIO),
				}
				// "lsbp:hotpath-init" also matches the "lsbp:hotpath"
				// prefix test only when identical; keep them distinct.
				if an.HotpathInit {
					an.Hotpath = false
				}
				if an == (FuncAnnotation{}) {
					continue
				}
				if obj, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
					r.funcs[FuncKey(obj)] = an
				}
			case *ast.GenDecl:
				collectFieldDirectives(r, pkg, d)
			}
		}
		collectIgnores(ignores, pkg.Fset, f)
	}
	return ignores
}

func collectFieldDirectives(r *Registry, pkg *LoadedPackage, d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			if !hasDirective(field.Doc, dirAtomic) && !hasDirective(field.Comment, dirAtomic) {
				continue
			}
			for _, name := range field.Names {
				r.fields[FieldKey(pkg.Types.Path(), ts.Name.Name, name.Name)] = true
			}
		}
	}
}

func collectIgnores(into map[string]map[int]*ignoreDirective, fset *token.FileSet, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, dirIgnore) {
				continue
			}
			rest := strings.TrimPrefix(text, dirIgnore)
			ig := &ignoreDirective{pos: c.Pos()}
			if names, why, ok := strings.Cut(rest, "--"); ok && strings.TrimSpace(why) != "" {
				ig.justified = true
				ig.analyzers = strings.Fields(strings.ReplaceAll(names, ",", " "))
			}
			pos := fset.Position(c.Pos())
			lines := into[pos.Filename]
			if lines == nil {
				lines = map[int]*ignoreDirective{}
				into[pos.Filename] = lines
			}
			lines[pos.Line] = ig
		}
	}
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{HotpathNoAlloc, EpochAtomics, ErrsTaxonomy, DurableFormat}
}

// Run executes the analyzers over every loaded package: annotations are
// collected from all packages first, then each analyzer visits each
// package. Unjustified or unused ignore directives are reported as
// findings of the "lsbp-directives" pseudo-analyzer. Diagnostics come
// back sorted by position.
func Run(pkgs []*LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	reg := NewRegistry()
	ignoreIdx := make([]map[string]map[int]*ignoreDirective, len(pkgs))
	for i, pkg := range pkgs {
		ignoreIdx[i] = reg.Collect(pkg)
	}
	var diags []Diagnostic
	for i, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Sources:  pkg.Sources,
				Reg:      reg,
				ignores:  ignoreIdx[i],
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Types.Path(), err)
			}
		}
	}
	for i, pkg := range pkgs {
		for _, lines := range ignoreIdx[i] {
			for _, ig := range lines {
				switch {
				case !ig.justified:
					diags = append(diags, Diagnostic{
						Pos:      pkg.Fset.Position(ig.pos),
						Analyzer: "lsbp-directives",
						Message:  "lsbp:ignore needs a justification: //lsbp:ignore <analyzer> -- <why>",
					})
				case !ig.used:
					diags = append(diags, Diagnostic{
						Pos:      pkg.Fset.Position(ig.pos),
						Analyzer: "lsbp-directives",
						Message:  fmt.Sprintf("lsbp:ignore for %s suppresses nothing; remove it", strings.Join(ig.analyzers, ",")),
					})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
