package analysis

import (
	"testing"
)

func runFixtureTest(t *testing.T, name string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	loader := NewLoader(".")
	mismatches, diags, err := CheckFixture(loader, "testdata/src/"+name, analyzers)
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	for _, m := range mismatches {
		t.Errorf("fixture %s: %s", name, m)
	}
	return diags
}

func TestHotpathFixture(t *testing.T) {
	diags := runFixtureTest(t, "hotpath", HotpathNoAlloc)
	if len(diags) < 10 {
		t.Errorf("expected the hotpath fixture to seed >= 10 findings, got %d", len(diags))
	}
}

func TestAtomicsFixture(t *testing.T) {
	runFixtureTest(t, "atomics", EpochAtomics)
}

func TestErrsTaxonomyFixture(t *testing.T) {
	runFixtureTest(t, "errstax", ErrsTaxonomy)
}

func TestDurableFormatFixture(t *testing.T) {
	runFixtureTest(t, "durablefmt", DurableFormat)
}

func TestDurableFormatStaleLock(t *testing.T) {
	runFixtureTest(t, "durablefmtstale", DurableFormat)
}

func TestCleanFixtureAllAnalyzers(t *testing.T) {
	diags := runFixtureTest(t, "clean", All()...)
	if len(diags) != 0 {
		t.Errorf("clean fixture produced findings: %v", diags)
	}
}

// TestRepoClean is the gate the Makefile lint target re-runs from the
// command line: the whole module must produce zero findings.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	loader := NewLoader(".")
	pkgs, err := loader.LoadPatterns("repro/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}

// TestRacePkgsMatchesMakefile pins the RACE_PKGS list to the computed
// set of concurrency-relevant packages.
func TestRacePkgsMatchesMakefile(t *testing.T) {
	if testing.Short() {
		t.Skip("lists and parses the whole module")
	}
	diags, err := CheckRacePkgs("../../Makefile")
	if err != nil {
		t.Fatalf("race-pkgs: %v", err)
	}
	for _, d := range diags {
		t.Errorf("race-pkgs finding: %s", d)
	}
}

func TestIgnoreDirectiveRequiresJustification(t *testing.T) {
	ig := &ignoreDirective{analyzers: []string{"hotpath-noalloc"}}
	if ig.covers("hotpath-noalloc") {
		t.Error("unjustified ignore must not suppress")
	}
	ig.justified = true
	if !ig.covers("hotpath-noalloc") {
		t.Error("justified ignore must suppress its analyzer")
	}
	if ig.covers("epoch-atomics") {
		t.Error("ignore must not suppress other analyzers")
	}
	all := &ignoreDirective{analyzers: []string{"all"}, justified: true}
	if !all.covers("durable-format") {
		t.Error("'all' ignore must cover every analyzer")
	}
}
