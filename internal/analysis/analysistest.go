package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
)

// A WantError describes a mismatch between a fixture's "// want"
// expectations and the diagnostics an analyzer produced.
type WantError struct {
	Pos     string
	Message string
}

func (w WantError) String() string { return w.Pos + ": " + w.Message }

// CheckFixture loads the fixture package at dir (a bare directory of
// Go files, not part of the module build), runs the analyzers over it,
// and verifies the diagnostics against the fixture's expectations: a
// line containing
//
//	// want "regexp" ["regexp" ...]
//
// must receive one diagnostic matching each pattern, every line
// without one must receive none. It returns the mismatches (empty
// means the fixture passed) plus the raw diagnostics for callers that
// assert on counts.
func CheckFixture(loader *Loader, dir string, analyzers []*Analyzer) ([]WantError, []Diagnostic, error) {
	importPath := "fixture/" + filepath.Base(dir)
	pkg, err := loader.LoadDir(dir, importPath)
	if err != nil {
		return nil, nil, err
	}
	diags, err := Run([]*LoadedPackage{pkg}, analyzers)
	if err != nil {
		return nil, nil, err
	}

	type wantKey struct {
		file string
		line int
	}
	wants := map[wantKey][]*regexp.Regexp{}
	quoted := regexp.MustCompile(`"([^"]*)"`)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range quoted.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						return nil, nil, fmt.Errorf("analysis: bad want pattern %q at %s: %w", m[1], pos, err)
					}
					k := wantKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	var errs []WantError
	matched := make([]bool, len(diags))
	for k, res := range wants {
		for _, re := range res {
			found := false
			for i, d := range diags {
				if !matched[i] && d.Pos.Filename == k.file && d.Pos.Line == k.line && re.MatchString(d.Message) {
					matched[i] = true
					found = true
					break
				}
			}
			if !found {
				errs = append(errs, WantError{
					Pos:     fmt.Sprintf("%s:%d", k.file, k.line),
					Message: fmt.Sprintf("expected diagnostic matching %q, got none", re),
				})
			}
		}
	}
	for i, d := range diags {
		if !matched[i] {
			errs = append(errs, WantError{
				Pos:     d.Pos.String(),
				Message: fmt.Sprintf("unexpected diagnostic: %s (%s)", d.Message, d.Analyzer),
			})
		}
	}
	return errs, diags, nil
}
