package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EpochAtomics freezes the RCU discipline of the dynamic serving
// plane: struct fields annotated //lsbp:atomic (the dynSolver epoch
// pointer and its counters) may only be touched through sync/atomic
// operations — a method call on an atomic.* value, or the field's
// address passed to a sync/atomic function — or inside a function
// annotated //lsbp:atomic-access (a designated accessor reviewed for a
// reason, e.g. single-threaded construction before publication).
var EpochAtomics = &Analyzer{
	Name: "epoch-atomics",
	Doc:  "require sync/atomic access to //lsbp:atomic fields outside designated accessors",
	Run:  runEpochAtomics,
}

// atomicMethods are the methods of the sync/atomic value types; a
// selected //lsbp:atomic field used as the receiver of one of these is
// a sanctioned access.
var atomicMethods = map[string]bool{
	"Load": true, "Store": true, "Swap": true, "Add": true,
	"CompareAndSwap": true, "And": true, "Or": true,
}

func runEpochAtomics(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, _ := pass.Info.Defs[fd.Name].(*types.Func); obj != nil {
				if pass.Reg.FuncAnnotation(obj).AtomicAccess {
					continue
				}
			}
			checkAtomicUses(pass, fd.Body)
		}
	}
	return nil
}

// checkAtomicUses walks a function body with a parent map so each
// annotated-field selection can be judged by the expression consuming
// it.
func checkAtomicUses(pass *Pass, body *ast.BlockStmt) {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		field := atomicFieldOf(pass, sel)
		if field == "" {
			return true
		}
		if sanctionedAtomicUse(pass, parents, sel) {
			return true
		}
		pass.Reportf(sel.Sel.Pos(), "direct access to //lsbp:atomic field %s: use a sync/atomic operation or a //lsbp:atomic-access accessor", field)
		return true
	})
}

// atomicFieldOf returns the registry description of the selected field
// if sel selects an //lsbp:atomic field, else "".
func atomicFieldOf(pass *Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	fieldObj, ok := s.Obj().(*types.Var)
	if !ok || fieldObj.Pkg() == nil {
		return ""
	}
	// Resolve the named struct type owning the field from the receiver
	// side of the selection.
	recv := s.Recv()
	for {
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			continue
		}
		break
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	key := FieldKey(fieldObj.Pkg().Path(), named.Obj().Name(), fieldObj.Name())
	if !pass.Reg.fields[key] {
		return ""
	}
	return key
}

// sanctionedAtomicUse reports whether the annotated-field selection is
// consumed by a sync/atomic operation.
func sanctionedAtomicUse(pass *Pass, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	parent := parents[sel]
	// Unwrap parens around the selection.
	for {
		p, ok := parent.(*ast.ParenExpr)
		if !ok {
			break
		}
		parent = parents[p]
	}
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// x.field.Load() — the field is the receiver of an atomic-type
		// method call.
		if p.X != sel && ast.Unparen(p.X) != ast.Expr(sel) {
			return false
		}
		if !atomicMethods[p.Sel.Name] {
			return false
		}
		call, ok := parents[p].(*ast.CallExpr)
		if !ok || ast.Unparen(call.Fun) != ast.Expr(p) {
			return false
		}
		// The method must belong to sync/atomic (guards against a
		// same-named method on an ordinary type).
		if m, ok := pass.Info.Selections[p]; ok {
			if fn, ok := m.Obj().(*types.Func); ok && fn.Pkg() != nil {
				return fn.Pkg().Path() == "sync/atomic"
			}
		}
		return false
	case *ast.UnaryExpr:
		// &x.field passed to a sync/atomic function
		// (atomic.AddInt64(&x.field, 1)).
		if p.Op != token.AND {
			return false
		}
		call, ok := parents[p].(*ast.CallExpr)
		if !ok {
			return false
		}
		if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := pass.Info.Uses[se.Sel].(*types.Func); ok && fn.Pkg() != nil {
				return fn.Pkg().Path() == "sync/atomic"
			}
		}
		return false
	}
	return false
}
