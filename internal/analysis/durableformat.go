package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// DurableFormat guards the on-disk snapshot contract in packages that
// carry //lsbp:format declarations (internal/durable and its fixtures):
//
//  1. Raw write calls (methods named Write/WriteAt/WriteString) are
//     confined to functions annotated //lsbp:rawio — the reviewed write
//     paths: the checksumming section writer itself, padding, and the
//     separately-checksummed header patch. Everything else must route
//     payload bytes through those, so no section byte can reach the
//     file without entering a CRC.
//
//  2. The source text of every //lsbp:format-annotated declaration
//     (header layout constants, section-table encoding, record framing)
//     is hashed into a lock string "v<FormatVersion>:<hash16>" that
//     must equal the package's `formatLock` constant. Editing a
//     format-affecting declaration therefore fails lint until the
//     author either reverts, or bumps FormatVersion and re-locks —
//     making "changed the encoding without a version bump" mechanically
//     impossible.
var DurableFormat = &Analyzer{
	Name: "durable-format",
	Doc:  "confine raw writes to //lsbp:rawio paths and tie //lsbp:format decls to the format-version lock",
	Run:  runDurableFormat,
}

// formatLockConst is the package-level constant holding the expected
// lock string.
const formatLockConst = "formatLock"

// formatVersionConst is the package-level constant holding the on-disk
// format version embedded in the lock.
const formatVersionConst = "FormatVersion"

// rawWriteMethods are method names treated as raw byte sinks.
var rawWriteMethods = map[string]bool{
	"Write": true, "WriteAt": true, "WriteString": true,
}

func runDurableFormat(pass *Pass) error {
	var formatDecls []ast.Decl
	hasRawIO := false
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			doc := declDoc(decl)
			if hasDirective(doc, dirFormat) {
				formatDecls = append(formatDecls, decl)
			}
			if hasDirective(doc, dirRawIO) {
				hasRawIO = true
			}
		}
	}
	if len(formatDecls) == 0 && !hasRawIO {
		return nil // package has not opted into format guarding
	}
	checkRawWrites(pass)
	if len(formatDecls) > 0 {
		checkFormatLock(pass, formatDecls)
	}
	return nil
}

func declDoc(decl ast.Decl) *ast.CommentGroup {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		return d.Doc
	case *ast.GenDecl:
		return d.Doc
	}
	return nil
}

func checkRawWrites(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, _ := pass.Info.Defs[fd.Name].(*types.Func); obj != nil {
				if pass.Reg.FuncAnnotation(obj).RawIO {
					continue // a reviewed raw write path
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok || !rawWriteMethods[se.Sel.Name] {
					return true
				}
				sel, ok := pass.Info.Selections[se]
				if !ok || sel.Kind() != types.MethodVal {
					return true
				}
				callee, _ := sel.Obj().(*types.Func)
				if callee == nil {
					return true
				}
				// Calling a //lsbp:rawio-annotated concrete writer (the
				// checksumming section writer) is the sanctioned path.
				if pass.Reg.FuncAnnotation(callee).RawIO {
					return true
				}
				pass.Reportf(call.Pos(), "raw %s bypasses the checksumming writer: route payload bytes through a //lsbp:rawio path", se.Sel.Name)
				return true
			})
		}
	}
}

func checkFormatLock(pass *Pass, formatDecls []ast.Decl) {
	version, versionOK := lookupIntConst(pass.Pkg, formatVersionConst)
	lock, lockPos, lockOK := lookupStringConst(pass, formatLockConst)
	expected := ComputeFormatLock(pass.Fset, pass.Sources, formatDecls, version)
	switch {
	case !versionOK:
		pass.Reportf(pass.Files[0].Package, "package has //lsbp:format declarations but no %s integer constant", formatVersionConst)
	case !lockOK:
		pass.Reportf(pass.Files[0].Package, "package has //lsbp:format declarations but no %s constant; add: const %s = %q", formatLockConst, formatLockConst, expected)
	case lock != expected:
		pass.Reportf(lockPos, "format-affecting declarations changed: lock is %q, computed %q — if the on-disk format changed, bump %s and re-lock; otherwise revert", lock, expected, formatVersionConst)
	}
}

// ComputeFormatLock hashes the source text of the format-affecting
// declarations (sorted by file and offset, doc comments excluded) and
// binds the hash to the format version: "v<version>:<sha256-prefix>".
func ComputeFormatLock(fset *token.FileSet, sources map[string][]byte, decls []ast.Decl, version int64) string {
	type span struct {
		file       string
		start, end int
	}
	spans := make([]span, 0, len(decls))
	for _, d := range decls {
		start := fset.Position(d.Pos())
		end := fset.Position(d.End())
		spans = append(spans, span{file: start.Filename, start: start.Offset, end: end.Offset})
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].file != spans[j].file {
			return spans[i].file < spans[j].file
		}
		return spans[i].start < spans[j].start
	})
	h := sha256.New()
	for _, s := range spans {
		src := sources[s.file]
		if s.start < 0 || s.end > len(src) || s.start > s.end {
			continue
		}
		h.Write(src[s.start:s.end])
		h.Write([]byte{0})
	}
	sum := hex.EncodeToString(h.Sum(nil))
	return fmt.Sprintf("v%d:%s", version, sum[:16])
}

func lookupIntConst(pkg *types.Package, name string) (int64, bool) {
	obj, ok := pkg.Scope().Lookup(name).(*types.Const)
	if !ok {
		return 0, false
	}
	v, ok := constant.Int64Val(constant.ToInt(obj.Val()))
	return v, ok
}

func lookupStringConst(pass *Pass, name string) (string, token.Pos, bool) {
	obj, ok := pass.Pkg.Scope().Lookup(name).(*types.Const)
	if !ok || obj.Val().Kind() != constant.String {
		return "", token.NoPos, false
	}
	return constant.StringVal(obj.Val()), obj.Pos(), true
}
