package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// errsImportSuffix identifies the error-taxonomy package: any package
// importing it has opted into typed errors and is held to the rules.
const errsImportSuffix = "internal/errs"

// ErrsTaxonomy enforces the typed-error contract: a package that
// imports the internal/errs taxonomy must never hand back an
// untestable error. Concretely, in such packages:
//
//   - fmt.Errorf must %w-wrap something (a sentinel or an upstream
//     error) — a format string without %w creates an error no caller
//     can errors.Is/As against;
//   - errors.New may only appear in package-level var declarations
//     (defining a new sentinel is fine; minting a one-off dynamic error
//     at a return site is not).
var ErrsTaxonomy = &Analyzer{
	Name: "errs-taxonomy",
	Doc:  "require %w-wrapped fmt.Errorf and sentinel-only errors.New in packages using internal/errs",
	Run:  runErrsTaxonomy,
}

func runErrsTaxonomy(pass *Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), errsImportSuffix) {
		return nil // the taxonomy package defines the sentinels
	}
	usesErrs := false
	for _, imp := range pass.Pkg.Imports() {
		if strings.HasSuffix(imp.Path(), errsImportSuffix) {
			usesErrs = true
			break
		}
	}
	if !usesErrs {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					checkErrsBody(pass, d.Body)
				}
			case *ast.GenDecl:
				// Package-level var blocks are the sanctioned home of
				// errors.New sentinels; nothing to check inside.
			}
		}
	}
	return nil
}

func checkErrsBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() + "." + fn.Name() {
		case "fmt.Errorf":
			if s, ok := constFormatString(pass.Info, call); ok && !strings.Contains(s, "%w") {
				pass.Reportf(call.Pos(), "fmt.Errorf without %%w: wrap an internal/errs sentinel (or an upstream error) so callers can errors.Is against it")
			}
		case "errors.New":
			pass.Reportf(call.Pos(), "errors.New inside a function: reuse or add an internal/errs sentinel instead of a dynamic error")
		}
		return true
	})
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func constFormatString(info *types.Info, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
