package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotpathNoAlloc rejects allocating constructs inside functions
// annotated //lsbp:hotpath, and restricts their static calls to other
// annotated functions plus a small allocation-free allowlist. This
// turns the 0 allocs/op benchmark numbers into a compile-time gate.
//
// Escape hatches, because a hot path still needs error exits and
// amortized setup:
//
//   - Cold branches are exempt: any if/else block (or switch/select
//     case) whose statement list ends in return, panic, break,
//     continue, or goto is treated as an error/early-exit path, so
//     `if err != nil { return fmt.Errorf(...) }` stays legal.
//   - //lsbp:hotpath-init marks functions callable from hot paths whose
//     bodies are exempt: guarded one-time or amortized work (worker
//     spawn, pool-miss construction, buffer doubling). The annotation
//     is the reviewed claim that the cost is not per-operation.
var HotpathNoAlloc = &Analyzer{
	Name: "hotpath-noalloc",
	Doc:  "reject allocating constructs and un-annotated calls in //lsbp:hotpath functions",
	Run:  runHotpath,
}

// hotpathAllowedPkgs are packages whose exported functions are accepted
// in hot paths without annotation: allocation-free by contract.
var hotpathAllowedPkgs = map[string]bool{
	"math":            true,
	"math/bits":       true,
	"errors":          true, // errors.Is/As; errors.New is denied below
	"sync":            true,
	"sync/atomic":     true,
	"hash/crc32":      true,
	"hash/maphash":    true,
	"encoding/binary": true,
	"context":         true,
	"runtime":         true,
}

// hotpathDeniedFuncs are specific allowlisted-package functions that do
// allocate and are therefore rejected anyway.
var hotpathDeniedFuncs = map[string]bool{
	"errors.New":  true,
	"errors.Join": true,
}

func runHotpath(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil || !pass.Reg.FuncAnnotation(obj).Hotpath {
				continue
			}
			hc := &hotpathChecker{pass: pass, fn: obj}
			hc.stmts(fd.Body.List, false, 0)
		}
	}
	return nil
}

type hotpathChecker struct {
	pass *Pass
	fn   *types.Func
}

// terminates reports whether a statement list ends by leaving the
// function or the enclosing loop/switch: the structural signature of a
// cold (error/early-exit) branch.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		return isPanic(last.X)
	case *ast.BlockStmt:
		return terminates(last.List)
	case *ast.IfStmt:
		if last.Else == nil {
			return false
		}
		elseTerm := false
		switch e := last.Else.(type) {
		case *ast.BlockStmt:
			elseTerm = terminates(e.List)
		case *ast.IfStmt:
			elseTerm = terminates([]ast.Stmt{e})
		}
		return elseTerm && terminates(last.Body.List)
	}
	return false
}

func isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// stmts walks a statement list. cold marks an exempt early-exit
// branch; loops counts enclosing for/range statements (defer inside a
// loop allocates a defer record per iteration).
func (hc *hotpathChecker) stmts(list []ast.Stmt, cold bool, loops int) {
	for _, s := range list {
		hc.stmt(s, cold, loops)
	}
}

func (hc *hotpathChecker) stmt(s ast.Stmt, cold bool, loops int) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		hc.stmts(s.List, cold, loops)
	case *ast.IfStmt:
		if s.Init != nil {
			hc.stmt(s.Init, cold, loops)
		}
		hc.expr(s.Cond, cold)
		hc.stmts(s.Body.List, cold || terminates(s.Body.List), loops)
		if s.Else != nil {
			elseCold := cold
			if blk, ok := s.Else.(*ast.BlockStmt); ok {
				elseCold = cold || terminates(blk.List)
			}
			hc.stmt(s.Else, elseCold, loops)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			hc.stmt(s.Init, cold, loops)
		}
		if s.Cond != nil {
			hc.expr(s.Cond, cold)
		}
		if s.Post != nil {
			hc.stmt(s.Post, cold, loops)
		}
		hc.stmts(s.Body.List, cold, loops+1)
	case *ast.RangeStmt:
		hc.expr(s.X, cold)
		hc.stmts(s.Body.List, cold, loops+1)
	case *ast.SwitchStmt:
		if s.Init != nil {
			hc.stmt(s.Init, cold, loops)
		}
		if s.Tag != nil {
			hc.expr(s.Tag, cold)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				hc.expr(e, cold)
			}
			hc.stmts(cc.Body, cold || terminates(cc.Body), loops)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			hc.stmt(s.Init, cold, loops)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			hc.stmts(cc.Body, cold || terminates(cc.Body), loops)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				hc.stmt(cc.Comm, cold, loops)
			}
			hc.stmts(cc.Body, cold || terminates(cc.Body), loops)
		}
	case *ast.GoStmt:
		if !cold {
			hc.pass.Reportf(s.Pos(), "hot path spawns a goroutine")
		}
		hc.callArgs(s.Call, cold)
	case *ast.DeferStmt:
		if loops > 0 && !cold {
			hc.pass.Reportf(s.Pos(), "defer inside a loop allocates a defer record per iteration")
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// A directly-deferred literal at function scope is the
			// cleanup idiom; only its body needs checking.
			hc.stmts(lit.Body.List, cold, 0)
			hc.callArgs(s.Call, cold)
			return
		}
		hc.expr(s.Call, cold)
	case *ast.ReturnStmt:
		sig := hc.fn.Type().(*types.Signature)
		for i, r := range s.Results {
			hc.expr(r, cold)
			if !cold && sig.Results() != nil && len(s.Results) == sig.Results().Len() {
				hc.checkBoxing(r, sig.Results().At(i).Type(), cold, "return")
			}
		}
	case *ast.AssignStmt:
		hc.assign(s, cold)
	case *ast.ExprStmt:
		if isPanic(s.X) {
			// panic aborts; its argument is as cold as a return-throw.
			if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
				hc.callArgs(call, true)
			}
			return
		}
		hc.expr(s.X, cold)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					hc.expr(v, cold)
				}
			}
		}
	case *ast.IncDecStmt:
		hc.expr(s.X, cold)
	case *ast.SendStmt:
		hc.expr(s.Chan, cold)
		hc.expr(s.Value, cold)
	case *ast.LabeledStmt:
		hc.stmt(s.Stmt, cold, loops)
	}
}

// assign handles the self-append exemption: x = append(x, ...) (and
// x = append(x[:0], ...)) is the amortized reuse idiom, distinct from
// appending into a fresh or foreign slice.
func (hc *hotpathChecker) assign(s *ast.AssignStmt, cold bool) {
	for i, rhs := range s.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && len(s.Lhs) == len(s.Rhs) {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := hc.pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
					base := call.Args[0]
					if se, ok := ast.Unparen(base).(*ast.SliceExpr); ok {
						base = se.X
					}
					if exprString(s.Lhs[i]) == exprString(base) {
						for _, a := range call.Args[1:] {
							hc.expr(a, cold)
						}
						continue
					}
				}
			}
		}
		hc.expr(rhs, cold)
		if !cold && s.Tok == token.ASSIGN && i < len(s.Lhs) {
			if lt := hc.pass.Info.Types[s.Lhs[i]].Type; lt != nil {
				hc.checkBoxing(rhs, lt, cold, "assignment")
			}
		}
	}
	for _, lhs := range s.Lhs {
		hc.expr(lhs, cold)
	}
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return ""
}

func (hc *hotpathChecker) expr(e ast.Expr, cold bool) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		hc.expr(e.X, cold)
	case *ast.CallExpr:
		hc.call(e, cold)
	case *ast.CompositeLit:
		if !cold {
			if t := hc.pass.Info.Types[e].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					hc.pass.Reportf(e.Pos(), "hot path allocates: slice literal")
				case *types.Map:
					hc.pass.Reportf(e.Pos(), "hot path allocates: map literal")
				}
			}
		}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				hc.expr(kv.Value, cold)
				continue
			}
			hc.expr(el, cold)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok && !cold {
				hc.pass.Reportf(e.Pos(), "hot path allocates: &composite literal escapes to the heap")
			}
		}
		hc.expr(e.X, cold)
	case *ast.FuncLit:
		if !cold {
			hc.pass.Reportf(e.Pos(), "hot path allocates: closure")
		}
		hc.stmts(e.Body.List, cold, 0)
	case *ast.BinaryExpr:
		if e.Op == token.ADD && !cold {
			if tv := hc.pass.Info.Types[e]; tv.Type != nil && tv.Value == nil {
				if bt, ok := tv.Type.Underlying().(*types.Basic); ok && bt.Info()&types.IsString != 0 {
					hc.pass.Reportf(e.Pos(), "hot path allocates: string concatenation")
				}
			}
		}
		hc.expr(e.X, cold)
		hc.expr(e.Y, cold)
	case *ast.IndexExpr:
		hc.expr(e.X, cold)
		hc.expr(e.Index, cold)
	case *ast.IndexListExpr:
		hc.expr(e.X, cold)
	case *ast.SliceExpr:
		hc.expr(e.X, cold)
		hc.expr(e.Low, cold)
		hc.expr(e.High, cold)
		hc.expr(e.Max, cold)
	case *ast.StarExpr:
		hc.expr(e.X, cold)
	case *ast.TypeAssertExpr:
		hc.expr(e.X, cold)
	case *ast.SelectorExpr:
		if sel, ok := hc.pass.Info.Selections[e]; ok && sel.Kind() == types.MethodVal && !cold {
			// A method value not in call position closes over its
			// receiver. (Call positions never reach this case: call()
			// resolves its callee without recursing here.)
			hc.pass.Reportf(e.Pos(), "hot path allocates: method value %s closes over its receiver", e.Sel.Name)
		}
		hc.expr(e.X, cold)
	}
}

func (hc *hotpathChecker) callArgs(call *ast.CallExpr, cold bool) {
	for _, a := range call.Args {
		hc.expr(a, cold)
	}
}

func (hc *hotpathChecker) call(call *ast.CallExpr, cold bool) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](...) — unwrap to the function operand.
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ast.Unparen(ix.X)
	} else if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ast.Unparen(ix.X)
	}

	// Conversions: T(x).
	if tv, ok := hc.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if !cold && len(call.Args) == 1 {
			hc.checkConversion(call, tv.Type)
		}
		hc.callArgs(call, cold)
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := hc.pass.Info.Uses[id].(*types.Builtin); ok {
			hc.builtin(call, b.Name(), cold)
			return
		}
	}

	callee := hc.staticCallee(fun)
	if callee != nil && !cold {
		hc.checkCallee(call, callee)
	}
	// Boxing at the call boundary applies to static and dynamic calls
	// alike.
	if !cold {
		if sig, ok := hc.pass.Info.Types[call.Fun].Type.(*types.Signature); ok {
			hc.checkCallBoxing(call, sig, cold)
		}
	}
	// Receiver/operand side of the callee expression (x in x.M(), or a
	// func-valued expression) can itself contain calls.
	if se, ok := fun.(*ast.SelectorExpr); ok {
		hc.expr(se.X, cold)
	} else if callee == nil {
		hc.expr(fun, cold)
	}
	hc.callArgs(call, cold)
}

func (hc *hotpathChecker) builtin(call *ast.CallExpr, name string, cold bool) {
	switch name {
	case "make":
		if !cold {
			hc.pass.Reportf(call.Pos(), "hot path allocates: make")
		}
	case "new":
		if !cold {
			hc.pass.Reportf(call.Pos(), "hot path allocates: new")
		}
	case "append":
		// The self-append reuse form was consumed by assign(); any
		// append still seen here targets a fresh or foreign slice.
		if !cold {
			hc.pass.Reportf(call.Pos(), "hot path allocates: append outside the x = append(x, ...) reuse form")
		}
	case "print", "println":
		if !cold {
			hc.pass.Reportf(call.Pos(), "hot path calls %s", name)
		}
	case "panic":
		hc.callArgs(call, true)
		return
	}
	hc.callArgs(call, cold)
}

// staticCallee resolves a call operand to its compile-time *types.Func
// target, or nil for dynamic calls (func values, interface methods) —
// which are permitted: the dispatch itself does not allocate, and the
// concrete target is checked where it is defined.
func (hc *hotpathChecker) staticCallee(fun ast.Expr) *types.Func {
	var fn *types.Func
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ = hc.pass.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		if sel, ok := hc.pass.Info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil // func-typed field: dynamic
			}
			m, _ := sel.Obj().(*types.Func)
			if m == nil {
				return nil
			}
			if recv := m.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return nil // interface method: dynamic
			}
			fn = m
		} else {
			fn, _ = hc.pass.Info.Uses[fun.Sel].(*types.Func)
		}
	}
	return fn
}

func (hc *hotpathChecker) checkCallee(call *ast.CallExpr, callee *types.Func) {
	an := hc.pass.Reg.FuncAnnotation(callee)
	if an.Hotpath || an.HotpathInit {
		return
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return // universe-scope (error.Error etc.)
	}
	name := pkg.Path() + "." + callee.Name()
	if pkg.Path() == "fmt" {
		hc.pass.Reportf(call.Pos(), "hot path calls fmt.%s, which allocates", callee.Name())
		return
	}
	if hotpathAllowedPkgs[pkg.Path()] && !hotpathDeniedFuncs[name] {
		return
	}
	if strings.HasPrefix(pkg.Path(), modulePathOf(hc.pass.Pkg)+"/") || pkg.Path() == hc.pass.Pkg.Path() {
		hc.pass.Reportf(call.Pos(), "hot path calls %s, which is not annotated //lsbp:hotpath or //lsbp:hotpath-init", FuncKey(callee))
		return
	}
	hc.pass.Reportf(call.Pos(), "hot path calls %s, which is outside the hot-path allowlist", name)
}

// modulePathOf approximates the module path of pkg as its first path
// element — exact for this repo ("repro/...") and irrelevant for
// fixtures, whose non-stdlib imports point back into the module anyway.
func modulePathOf(pkg *types.Package) string {
	p := pkg.Path()
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i]
	}
	return p
}

func (hc *hotpathChecker) checkConversion(call *ast.CallExpr, target types.Type) {
	arg := call.Args[0]
	argT := hc.pass.Info.Types[arg].Type
	if argT == nil {
		return
	}
	if types.IsInterface(target) && !types.IsInterface(argT) && !isUntypedNil(hc.pass.Info, arg) {
		hc.pass.Reportf(call.Pos(), "hot path boxes %s into interface %s", argT, target)
		return
	}
	tb, tIsBasic := target.Underlying().(*types.Basic)
	aIsStringish := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	if tIsBasic && tb.Info()&types.IsString != 0 && isByteOrRuneSlice(argT) {
		hc.pass.Reportf(call.Pos(), "hot path allocates: []byte-to-string conversion")
	}
	if isByteOrRuneSlice(target) && aIsStringish(argT) {
		hc.pass.Reportf(call.Pos(), "hot path allocates: string-to-slice conversion")
	}
}

func (hc *hotpathChecker) checkCallBoxing(call *ast.CallExpr, sig *types.Signature, cold bool) {
	params := sig.Params()
	if params == nil {
		return
	}
	if call.Ellipsis != token.NoPos {
		return // slice... pass-through re-uses the caller's slice
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if params.Len() == 0 {
				return
			}
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				return
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			return
		}
		hc.checkBoxing(arg, pt, cold, "argument")
	}
}

func (hc *hotpathChecker) checkBoxing(arg ast.Expr, target types.Type, cold bool, what string) {
	if cold || target == nil || !types.IsInterface(target) {
		return
	}
	argT := hc.pass.Info.Types[arg].Type
	if argT == nil || types.IsInterface(argT) || isUntypedNil(hc.pass.Info, arg) {
		return
	}
	if _, isSig := argT.Underlying().(*types.Signature); isSig {
		return // func values into any (e.g. stored callbacks) — not a box
	}
	hc.pass.Reportf(arg.Pos(), "hot path boxes %s into interface %s (%s)", argT, target, what)
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
