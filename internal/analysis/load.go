package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A LoadedPackage is one source-parsed, fully type-checked package
// ready for analysis.
type LoadedPackage struct {
	Path    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Sources map[string][]byte
}

// A Loader type-checks packages of the module rooted at ModuleDir
// without golang.org/x/tools: `go list -deps -export` supplies compiled
// export data for every dependency, the targets themselves are parsed
// from source (comments included — the analyzers are driven by
// directives), and the standard gc importer reads the export files.
type Loader struct {
	// ModuleDir is the directory `go list` runs in (the module root or
	// any directory inside it).
	ModuleDir string

	fset    *token.FileSet
	exports map[string]string // import path → export-data file
}

// NewLoader returns a loader for the module containing dir.
func NewLoader(dir string) *Loader {
	return &Loader{ModuleDir: dir, fset: token.NewFileSet(), exports: map[string]string{}}
}

// Fset returns the file set shared by every package this loader built.
func (l *Loader) Fset() *token.FileSet { return l.fset }

type listedPackage struct {
	ImportPath   string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Deps         []string
	TestImports  []string
	XTestImports []string
	Dir          string
	Standard     bool
}

func (l *Loader) goList(args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// resolveExports lists the transitive dependency closure of the given
// patterns with compiled export data and caches the export file of
// every package in it. It returns the closure in dependency order.
func (l *Loader) resolveExports(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export,GoFiles,Dir,Standard"}, patterns...)
	pkgs, err := l.goList(args...)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return pkgs, nil
}

func (l *Loader) importer() types.Importer {
	return importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(e)
	})
}

// LoadPatterns loads the packages matched by the go list patterns
// (e.g. "./...", "./internal/core/"), type-checking each from source
// with its dependencies imported from export data.
func (l *Loader) LoadPatterns(patterns ...string) ([]*LoadedPackage, error) {
	targets, err := l.goList(append([]string{"list", "-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	closure, err := l.resolveExports(patterns)
	if err != nil {
		return nil, err
	}
	isTarget := map[string]bool{}
	for _, t := range targets {
		isTarget[t.ImportPath] = true
	}
	byPath := map[string]listedPackage{}
	for _, p := range closure {
		byPath[p.ImportPath] = p
	}
	var out []*LoadedPackage
	for _, t := range targets {
		p, ok := byPath[t.ImportPath]
		if !ok {
			return nil, fmt.Errorf("analysis: %s missing from dependency closure", t.ImportPath)
		}
		lp, err := l.check(p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

// LoadDir loads a single directory of Go files that is not a package
// of the module build (an analyzer test fixture under testdata). The
// files' imports are resolved through the module context, so fixtures
// may import both the standard library and module packages. importPath
// names the resulting package in diagnostics.
func (l *Loader) LoadDir(dir, importPath string) (*LoadedPackage, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: fixture dir: %w", err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	// Parse first to learn the import set, then resolve export data for
	// exactly those imports.
	files, sources, err := l.parseFiles(dir, goFiles)
	if err != nil {
		return nil, err
	}
	importSet := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != "unsafe" {
				importSet[p] = true
			}
		}
	}
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		if _, err := l.resolveExports(imports); err != nil {
			return nil, err
		}
	}
	return l.checkParsed(importPath, files, sources)
}

func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, map[string][]byte, error) {
	var files []*ast.File
	sources := map[string][]byte{}
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: %w", err)
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("analysis: parse: %w", err)
		}
		files = append(files, f)
		sources[full] = src
	}
	return files, sources, nil
}

func (l *Loader) check(importPath, dir string, goFiles []string) (*LoadedPackage, error) {
	files, sources, err := l.parseFiles(dir, goFiles)
	if err != nil {
		return nil, err
	}
	lp, err := l.checkParsed(importPath, files, sources)
	if err != nil {
		return nil, err
	}
	lp.Dir = dir
	return lp, nil
}

func (l *Loader) checkParsed(importPath string, files []*ast.File, sources map[string][]byte) (*LoadedPackage, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.importer()}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &LoadedPackage{
		Path:    importPath,
		Fset:    l.fset,
		Files:   files,
		Types:   pkg,
		Info:    info,
		Sources: sources,
	}, nil
}
