package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CheckRacePkgs asserts that the Makefile's RACE_PKGS list covers
// every ./internal/... package that is concurrency-relevant: the
// package (or a module-internal package it reaches through imports,
// including its test imports) uses go statements, channels, select, or
// the sync/sync-atomic packages. A package missing from the list is a
// finding — `make test-race` would silently stop exercising it. Extra
// entries are allowed: listing a sequential package only adds coverage.
//
// The check is syntactic (parse-only), so it also sees _test.go files,
// which `go vet`-style type-checked passes over the non-test build
// would miss.
func CheckRacePkgs(makefilePath string) ([]Diagnostic, error) {
	raceEntries, raceLine, err := parseRacePkgs(makefilePath)
	if err != nil {
		return nil, err
	}
	// RACE_PKGS entries are ./-relative to the Makefile, so list the
	// package universe from the Makefile's own directory.
	l := NewLoader(filepath.Dir(makefilePath))
	pkgs, err := l.goList("list", "-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles,Deps,TestImports,XTestImports,Standard", "./...")
	if err != nil {
		return nil, err
	}
	modPrefix := commonModulePrefix(pkgs)
	byPath := map[string]listedPackage{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}

	concurrent := map[string]string{} // import path → reason ("" = not computed yet)
	usesConcurrency := func(p listedPackage, includeTests bool) (bool, string) {
		files := append([]string{}, p.GoFiles...)
		if includeTests {
			files = append(files, p.TestGoFiles...)
			files = append(files, p.XTestGoFiles...)
		}
		for _, name := range files {
			why, err := fileConcurrency(filepath.Join(p.Dir, name))
			if err != nil {
				continue // unparseable file: leave to the build to complain
			}
			if why != "" {
				return true, name + ": " + why
			}
		}
		return false, ""
	}

	var diags []Diagnostic
	makePos := token.Position{Filename: makefilePath, Line: raceLine}

	required := map[string]string{} // rel dir → reason
	for _, p := range pkgs {
		if !strings.Contains(p.ImportPath, "/internal/") {
			continue
		}
		rel := strings.TrimPrefix(p.ImportPath, modPrefix)
		// The package's own files (tests included) first.
		if ok, why := usesConcurrency(p, true); ok {
			required[rel] = why
			continue
		}
		// Then anything reachable through its imports and test imports,
		// module-internal only.
		reach := map[string]bool{}
		var addDeps func(path string)
		addDeps = func(path string) {
			q, ok := byPath[path]
			if !ok || reach[path] || !strings.HasPrefix(path, modPrefix) {
				return
			}
			reach[path] = true
			for _, d := range q.Deps {
				if strings.HasPrefix(d, modPrefix) {
					addDeps(d)
				}
			}
		}
		for _, seed := range append(append([]string{}, p.TestImports...), p.XTestImports...) {
			addDeps(seed)
		}
		for _, d := range p.Deps {
			addDeps(d)
		}
		for path := range reach {
			if path == p.ImportPath {
				continue
			}
			why, computed := concurrent[path]
			if !computed {
				if ok, w := usesConcurrency(byPath[path], false); ok {
					why = w
				}
				concurrent[path] = why
			}
			if why != "" {
				required[rel] = "imports " + path + " (" + why + ")"
				break
			}
		}
	}

	listed := map[string]bool{}
	for _, e := range raceEntries {
		rel := strings.Trim(strings.TrimPrefix(e, "./"), "/")
		listed[rel] = true
		if _, ok := byPath[modPrefix+rel]; !ok {
			diags = append(diags, Diagnostic{
				Pos:      makePos,
				Analyzer: "race-pkgs",
				Message:  fmt.Sprintf("RACE_PKGS lists %s, which matches no package", e),
			})
		}
	}
	var missing []string
	for rel := range required {
		if !listed[rel] {
			missing = append(missing, rel)
		}
	}
	sort.Strings(missing)
	for _, rel := range missing {
		diags = append(diags, Diagnostic{
			Pos:      makePos,
			Analyzer: "race-pkgs",
			Message:  fmt.Sprintf("RACE_PKGS omits ./%s/ — concurrency-relevant: %s", rel, required[rel]),
		})
	}
	return diags, nil
}

// commonModulePrefix derives "<module>/" from the listed import paths.
func commonModulePrefix(pkgs []listedPackage) string {
	for _, p := range pkgs {
		if i := strings.IndexByte(p.ImportPath, '/'); i >= 0 {
			return p.ImportPath[:i+1]
		}
		return p.ImportPath + "/"
	}
	return ""
}

// parseRacePkgs extracts the RACE_PKGS assignment (with backslash
// continuations) from a Makefile, returning its entries and line.
func parseRacePkgs(path string) ([]string, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("analysis: race-pkgs: %w", err)
	}
	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		trimmed := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(trimmed, "RACE_PKGS") {
			continue
		}
		_, rhs, ok := strings.Cut(trimmed, "=")
		if !ok {
			continue
		}
		value := rhs
		for strings.HasSuffix(strings.TrimSpace(value), `\`) && i+1 < len(lines) {
			value = strings.TrimSuffix(strings.TrimSpace(value), `\`)
			i++
			value += " " + strings.TrimSpace(lines[i])
		}
		return strings.Fields(value), i + 1, nil
	}
	return nil, 0, fmt.Errorf("analysis: race-pkgs: no RACE_PKGS assignment in %s", path)
}

// fileConcurrency parses one file and reports the first concurrency
// construct found ("" if none).
func fileConcurrency(path string) (string, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return "", err
	}
	for _, imp := range f.Imports {
		switch strings.Trim(imp.Path.Value, `"`) {
		case "sync", "sync/atomic":
			return "imports " + strings.Trim(imp.Path.Value, `"`), nil
		}
	}
	why := ""
	ast.Inspect(f, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n.(type) {
		case *ast.GoStmt:
			why = "go statement"
		case *ast.SelectStmt:
			why = "select"
		case *ast.ChanType, *ast.SendStmt:
			why = "channel use"
		}
		return why == ""
	})
	return why, nil
}
