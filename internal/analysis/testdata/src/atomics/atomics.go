// Package atomics is the epoch-atomics analyzer fixture: an RCU-style
// server whose annotated fields must only be reached through
// sync/atomic operations or the designated constructor.
package atomics

import "sync/atomic"

type epoch struct {
	n int
}

type server struct {
	// cur is the published epoch; readers snapshot it.
	//
	//lsbp:atomic
	cur atomic.Pointer[epoch]
	// updates counts committed updates.
	//
	//lsbp:atomic
	updates int64
	// name is unannotated: free to touch.
	name string
}

func goodLoad(s *server) *epoch { return s.cur.Load() }

func goodStore(s *server, e *epoch) { s.cur.Store(e) }

func goodCounter(s *server) int64 {
	atomic.AddInt64(&s.updates, 1)
	return atomic.LoadInt64(&s.updates)
}

func goodUnannotated(s *server) string { return s.name }

func badIncrement(s *server) {
	s.updates++ // want "direct access to //lsbp:atomic field fixture/atomics.server.updates"
}

func badRead(s *server) int64 {
	return s.updates // want "direct access"
}

func badCopy(s *server) *atomic.Pointer[epoch] {
	return &s.cur // want "direct access"
}

// newServer is the designated single-threaded constructor: direct
// initialization is reviewed and sanctioned here.
//
//lsbp:atomic-access
func newServer() *server {
	s := &server{name: "fixture"}
	s.updates = 0
	s.cur.Store(&epoch{n: 1})
	return s
}
