// Package clean is a violation-free fixture: lsbplint must exit 0 on
// it.
package clean

import "sync/atomic"

type counter struct {
	//lsbp:atomic
	n atomic.Int64
}

//lsbp:hotpath
func accumulate(dst []float64, src []float64, c *counter) float64 {
	var sum float64
	for i := range src {
		dst[i] += src[i]
		sum += dst[i]
	}
	c.n.Add(1)
	return sum
}
