// Package durablefmt is the durable-format analyzer fixture: a
// miniature snapshot writer with a checksumming section writer, the
// reviewed raw-write paths, one seeded bypass, and a format lock that
// matches its //lsbp:format declarations.
package durablefmt

import "hash/crc32"

// FormatVersion is the fixture's on-disk format version.
const FormatVersion = 1

// formatLock binds FormatVersion to the hash of the //lsbp:format
// declarations below; durable-format recomputes and compares it.
const formatLock = "v1:144548d6d51820ff"

// Header layout: magic, then fixed-size section entries.
//
//lsbp:format
const (
	magic      = "FIX1"
	headerSize = 16
	entrySize  = 8
)

type file interface {
	Write(p []byte) (int, error)
	WriteAt(p []byte, off int64) (int, error)
}

// sumWriter is the checksumming section writer: every payload byte
// entering the file through it is folded into the running CRC.
type sumWriter struct {
	f   file
	crc uint32
	n   int64
}

// Write folds p into the CRC before handing it to the file.
//
//lsbp:rawio sumWriter is the checksumming writer itself
func (s *sumWriter) Write(p []byte) (int, error) {
	s.crc = crc32.Update(s.crc, crc32.IEEETable, p)
	n, err := s.f.Write(p)
	s.n += int64(n)
	return n, err
}

// patchHeader rewrites the already-checksummed header in place.
//
//lsbp:rawio header carries its own CRC, patched after sections land
func patchHeader(f file, hdr []byte) error {
	_, err := f.WriteAt(hdr, 0)
	return err
}

// writeSection routes a payload through the checksumming writer: the
// sanctioned path, no finding.
func writeSection(s *sumWriter, payload []byte) (uint32, error) {
	if _, err := s.Write(payload); err != nil {
		return 0, err
	}
	return s.crc, nil
}

// badDirectWrite pushes payload bytes straight into the file.
func badDirectWrite(f file, payload []byte) error {
	_, err := f.Write(payload) // want "raw Write bypasses the checksumming writer"
	return err
}
