// Package durablefmtstale is the negative durable-format fixture: its
// //lsbp:format declarations were edited (relative to the recorded
// lock) without a FormatVersion bump, so the lock no longer matches.
package durablefmtstale

// FormatVersion is the fixture's on-disk format version.
const FormatVersion = 2

// formatLock is stale: it records a hash the declarations below no
// longer produce.
const formatLock = "v2:0000000000000000" // want "format-affecting declarations changed"

// Record framing: length-prefixed, CRC-suffixed.
//
//lsbp:format
const (
	recHeader  = 24
	recTrailer = 4
)
