// Package errstax is the errs-taxonomy analyzer fixture: it imports
// the internal/errs taxonomy, which opts it into the typed-error
// rules.
package errstax

import (
	"errors"
	"fmt"

	"repro/internal/errs"
)

// ErrFixture is a package-level sentinel: errors.New is sanctioned
// here.
var ErrFixture = errors.New("errstax: fixture sentinel")

func goodWrapSentinel(n int) error {
	if n < 0 {
		return fmt.Errorf("errstax: n = %d out of range: %w", n, errs.ErrInvalidInput)
	}
	return nil
}

func goodWrapUpstream(err error) error {
	if err != nil {
		return fmt.Errorf("errstax: solve: %w", err)
	}
	return nil
}

func goodPlainFormatting(n int) string {
	return fmt.Sprintf("n = %d", n) // Sprintf is not error construction
}

func badBareErrorf(n int) error {
	return fmt.Errorf("errstax: n = %d is bad", n) // want "fmt.Errorf without %w"
}

func badStashedErrorf(n int) error {
	err := fmt.Errorf("stashed, still bare: %d", n) // want "fmt.Errorf without %w"
	return err
}

func badDynamicError() error {
	return errors.New("one-off dynamic error") // want "errors.New inside a function"
}

// Serving-plane cases: a front end sheds load only through the typed
// serving sentinels. A bare error on a rejection path is a silently
// dropped request — exactly what the taxonomy gate exists to forbid.

func goodShedOverload(waitedMS int) error {
	return fmt.Errorf("errstax: queue full, evicted after %dms: %w", waitedMS, errs.ErrOverloaded)
}

func goodShedBudget(budgetMS, estMS int) error {
	return fmt.Errorf("errstax: %dms of budget left, ~%dms estimated: %w", budgetMS, estMS, errs.ErrDeadlineBudget)
}

func goodDegradedWrite() error {
	return fmt.Errorf("errstax: write rejected, durable plane broken: %w", errs.ErrDegraded)
}

func goodConfinedPanic(v any) error {
	return fmt.Errorf("errstax: solve panicked: %v: %w", v, errs.ErrInternal)
}

func badUntypedShed() error {
	return fmt.Errorf("errstax: queue full, dropping request") // want "fmt.Errorf without %w"
}
