// Package hotpath is the hotpath-noalloc analyzer fixture: each
// "want" line seeds one violation; the remaining annotated functions
// are the allocation-free idioms the analyzer must accept.
package hotpath

import (
	"fmt"
	"io"
)

type ring struct {
	buf []byte
	w   io.Writer
}

// kernelRound is the shape of a real hot loop: index arithmetic,
// self-append reuse, cold error exit — no findings expected.
//
//lsbp:hotpath
func kernelRound(dst, src []float64, r *ring, p []byte) (float64, error) {
	if len(dst) != len(src) {
		return 0, fmt.Errorf("hotpath: length mismatch %d != %d", len(dst), len(src))
	}
	var delta float64
	for i := range src {
		dst[i] = 2 * src[i]
		delta += dst[i] - src[i]
	}
	r.buf = append(r.buf[:0], p...)
	if delta < 0 {
		panic(fmt.Sprintf("negative delta %f", delta))
	}
	return delta, nil
}

//lsbp:hotpath
func badMake(n int) []float64 {
	buf := make([]float64, n) // want "hot path allocates: make"
	return buf
}

//lsbp:hotpath
func badAppend(dst, extra []byte) []byte {
	out := append(dst, extra...) // want "append outside the x = append"
	return out
}

//lsbp:hotpath
func badLiterals() {
	xs := []int{1, 2, 3} // want "hot path allocates: slice literal"
	m := map[int]bool{}  // want "hot path allocates: map literal"
	_, _ = xs, m
}

//lsbp:hotpath
func badClosure(xs []int) func() int {
	f := func() int { return len(xs) } // want "hot path allocates: closure"
	return f
}

//lsbp:hotpath
func badGo(done chan struct{}) {
	go close(done) // want "hot path spawns a goroutine"
}

//lsbp:hotpath
func badFmt(n int) {
	_ = fmt.Sprint(n) // want "hot path calls fmt.Sprint, which allocates" "hot path boxes int into interface"
}

//lsbp:hotpath
func badConcat(a, b string) string {
	return a + b // want "hot path allocates: string concatenation"
}

//lsbp:hotpath
func badUnannotated(n int) int {
	return helper(n) // want "not annotated //lsbp:hotpath"
}

//lsbp:hotpath
func badBoxing(n int) {
	sink(n) // want "hot path boxes int into interface"
}

//lsbp:hotpath
func badDeferLoop(xs []int) {
	for range xs {
		defer release() // want "defer inside a loop"
	}
}

//lsbp:hotpath
func badMethodValue(r *ring) func([]byte) (int, error) {
	return r.write // want "method value write closes over its receiver"
}

// goodCalls exercises the allowed call surface: annotated callees,
// init-annotated amortized setup, dynamic interface dispatch, and an
// explicitly justified suppression.
//
//lsbp:hotpath
func goodCalls(r *ring, p []byte, n int) (float64, error) {
	grow(r, n)
	if _, err := r.w.Write(p); err != nil {
		return 0, fmt.Errorf("hotpath: flush: %w", err)
	}
	d, err := kernelRound(p2f(r.buf), p2f(r.buf), r, p)
	if err != nil {
		return 0, err
	}
	scratch := make([]byte, n) //lsbp:ignore hotpath-noalloc -- fixture: demonstrates justified suppression
	_ = scratch
	return d, nil
}

func helper(n int) int { return n + 1 }

//lsbp:hotpath-init
func sink(v any) { _ = v }

//lsbp:hotpath-init
func grow(r *ring, n int) {
	if cap(r.buf) < n {
		r.buf = make([]byte, 0, n)
	}
}

//lsbp:hotpath-init
func p2f(b []byte) []float64 { return make([]float64, len(b)) }

//lsbp:hotpath-init
func release() {}

//lsbp:hotpath-init
func (r *ring) write(p []byte) (int, error) { return len(p), nil }
