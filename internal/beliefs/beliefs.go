// Package beliefs manages the explicit (Eˆ) and final (Bˆ) belief
// matrices of the paper in residual (centered) form: n×k matrices whose
// rows sum to zero (Definition 3), with helpers for centering stochastic
// beliefs, the ζ-standardization of Definition 11, top-belief assignment
// with ties (Problem 1 and the precision/recall semantics of Section 7),
// and the deterministic explicit-belief seeding used by the synthetic
// experiments.
package beliefs

import (
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/errs"
	"repro/internal/xrand"
)

// Residual wraps an n×k residual belief matrix. Row s holds bˆs, the
// residual belief vector of node s; a zero row means "no explicit
// belief" for explicit matrices and "no information" for final ones.
type Residual struct {
	m *dense.Matrix
}

// New returns an all-zero n×k residual belief matrix.
func New(n, k int) *Residual {
	if k < 2 {
		panic("beliefs: need k >= 2 classes")
	}
	return &Residual{m: dense.New(n, k)}
}

// FromMatrix wraps an existing dense matrix as residual beliefs without
// copying. Rows are not validated; use Validate if the source is untrusted.
func FromMatrix(m *dense.Matrix) *Residual { return &Residual{m: m} }

// Matrix exposes the underlying dense matrix (aliased, not copied).
//
//lsbp:hotpath
func (r *Residual) Matrix() *dense.Matrix { return r.m }

// N returns the number of nodes.
//
//lsbp:hotpath
func (r *Residual) N() int { return r.m.Rows() }

// K returns the number of classes.
//
//lsbp:hotpath
func (r *Residual) K() int { return r.m.Cols() }

// Row returns node s's residual belief vector, aliasing storage.
//
//lsbp:hotpath
func (r *Residual) Row(s int) []float64 { return r.m.Row(s) }

// Clone returns a deep copy.
func (r *Residual) Clone() *Residual { return &Residual{m: r.m.Clone()} }

// Set assigns the residual vector v to node s. It panics if v does not
// sum to (numerically) zero — residual vectors always sum to 0 by
// construction (Definition 3).
func (r *Residual) Set(s int, v []float64) {
	if len(v) != r.K() {
		panic(fmt.Sprintf("beliefs: vector length %d, want %d", len(v), r.K()))
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum) > 1e-9 {
		panic(fmt.Sprintf("beliefs: residual vector sums to %v, want 0", sum))
	}
	copy(r.m.Row(s), v)
}

// IsExplicit reports whether node s carries a non-zero residual, i.e.
// whether it is one of the paper's "nodes with explicit beliefs"
// (footnote 10: eˆ ≠ 0).
func (r *Residual) IsExplicit(s int) bool {
	for _, v := range r.m.Row(s) {
		if v != 0 {
			return true
		}
	}
	return false
}

// ExplicitNodes returns the ids of all nodes with non-zero residuals,
// in ascending order.
func (r *Residual) ExplicitNodes() []int {
	var out []int
	for s := 0; s < r.N(); s++ {
		if r.IsExplicit(s) {
			out = append(out, s)
		}
	}
	return out
}

// Validate checks that every row sums to zero within tolerance.
func (r *Residual) Validate() error {
	for s := 0; s < r.N(); s++ {
		var sum float64
		for _, v := range r.m.Row(s) {
			// NaN must be rejected explicitly: it fails every comparison,
			// so a NaN row would sail through the |sum| check below and
			// silently poison the fixpoint.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("beliefs: row %d holds %v: %w", s, v, errs.ErrNonFinite)
			}
			sum += v
		}
		if math.Abs(sum) > 1e-9 {
			return fmt.Errorf("beliefs: row %d sums to %v, want 0: %w", s, sum, errs.ErrInvalidInput)
		}
	}
	return nil
}

// Scale multiplies every entry by lambda in place and returns the
// receiver (Lemma 12's operation Eˆ ← λ·Eˆ).
func (r *Residual) Scale(lambda float64) *Residual {
	d := r.m.Data()
	for i := range d {
		d[i] *= lambda
	}
	return r
}

// Center converts a row-stochastic belief matrix (rows sum to 1) into
// residual form by subtracting 1/k, validating the input rows.
func Center(stochastic *dense.Matrix) (*Residual, error) {
	n, k := stochastic.Rows(), stochastic.Cols()
	out := New(n, k)
	for s := 0; s < n; s++ {
		var sum float64
		row := stochastic.Row(s)
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("beliefs: stochastic row %d sums to %v, want 1: %w", s, sum, errs.ErrInvalidInput)
		}
		dst := out.m.Row(s)
		for i, v := range row {
			dst[i] = v - 1/float64(k)
		}
	}
	return out, nil
}

// Uncenter returns the stochastic matrix 1/k + bˆ. Callers feeding
// standard BP should check non-negativity separately (residuals larger
// than 1/k in magnitude produce invalid probabilities).
func (r *Residual) Uncenter() *dense.Matrix {
	out := r.m.Clone()
	d := out.Data()
	offset := 1 / float64(r.K())
	for i := range d {
		d[i] += offset
	}
	return out
}

// LabelResidual returns the canonical explicit residual for "node is
// class c with strength s": s·(k−1) in class c and −s elsewhere, the
// pattern of Example 20 (eˆv1 = [2,−1,−1] is LabelResidual(3, 0, 1)).
func LabelResidual(k, c int, s float64) []float64 {
	if c < 0 || c >= k {
		panic(fmt.Sprintf("beliefs: class %d out of range k=%d", c, k))
	}
	v := make([]float64, k)
	for i := range v {
		v[i] = -s
	}
	v[c] = s * float64(k-1)
	return v
}

// StandardizedRow returns ζ(bˆs) (Definition 11).
func (r *Residual) StandardizedRow(s int) []float64 {
	return dense.Standardize(r.m.Row(s))
}

// TopTolerance is the default tie tolerance for top-belief assignment:
// classes whose belief is within this relative distance of the row
// maximum are returned together, mirroring the paper's discussion of
// ties in Section 7.
const TopTolerance = 1e-9

// TieFloor is the absolute belief magnitude below which a row is
// treated as pure floating-point noise and all classes tie. Standard
// BP's log/exp round trips leave ~1e-16 dust on nodes that received no
// information at all; without the floor that dust would be read as a
// (random) top class. The paper observes the same effect ("errors
// result from roundoff errors due to limited precision").
const TieFloor = 1e-13

// Top returns the set of classes with the highest belief for node s,
// including ties within tolerance relative to the row's magnitude
// (its ∞-norm). The relative scaling matters: far-away nodes carry
// beliefs many orders of magnitude below the explicit ones (Hˆ^g decays
// geometrically), and an absolute tie threshold would spuriously tie
// all their classes. For an all-zero row every class ties.
func (r *Residual) Top(s int, tolerance float64) []int {
	row := r.m.Row(s)
	max := math.Inf(-1)
	scale := 0.0
	for _, v := range row {
		if v > max {
			max = v
		}
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	slack := tolerance*scale + TieFloor
	var out []int
	for c, v := range row {
		if v >= max-slack {
			out = append(out, c)
		}
	}
	return out
}

// TopAssignment returns Top for every node with the default tolerance.
func (r *Residual) TopAssignment() [][]int {
	out := make([][]int, r.N())
	for s := range out {
		out[s] = r.Top(s, TopTolerance)
	}
	return out
}

// SeedConfig controls deterministic explicit-belief seeding for the
// synthetic experiments (Section 7): a fraction of nodes receives k−1
// random residuals from the grid {−0.1, −0.09, …, 0.1}, with the last
// class getting the negative sum so rows stay centered.
type SeedConfig struct {
	// Fraction of nodes to label explicitly (e.g. 0.05 for 5%).
	Fraction float64
	// Count overrides Fraction when > 0: exact number of labeled nodes.
	Count int
	// Seed drives the deterministic PRNG.
	Seed uint64
	// ExtraDigits, when true, draws from a 10× finer grid. The paper
	// notes (end of Section 7) that extra digits remove top-belief ties.
	ExtraDigits bool
}

// SeededNodes picks which nodes get explicit beliefs under cfg, in the
// deterministic order of a seeded permutation.
func SeededNodes(n int, cfg SeedConfig) []int {
	count := cfg.Count
	if count <= 0 {
		count = int(math.Round(cfg.Fraction * float64(n)))
	}
	if count > n {
		count = n
	}
	rng := xrand.New(cfg.Seed)
	perm := rng.Perm(n)
	nodes := append([]int(nil), perm[:count]...)
	return nodes
}

// Seed generates an explicit residual belief matrix for n nodes and k
// classes under cfg and returns it with the list of seeded nodes.
func Seed(n, k int, cfg SeedConfig) (*Residual, []int) {
	nodes := SeededNodes(n, cfg)
	r := New(n, k)
	// Separate generator stream for values so that the node choice and
	// the value sequence are independently reproducible.
	rng := xrand.New(cfg.Seed ^ 0x5eedbe11ef5eed)
	grid := 21 // −0.10 … +0.10 step 0.01
	scale := 0.01
	if cfg.ExtraDigits {
		grid = 201 // −0.100 … +0.100 step 0.001
		scale = 0.001
	}
	for _, s := range nodes {
		row := r.m.Row(s)
		var sum float64
		for c := 0; c < k-1; c++ {
			v := float64(rng.Intn(grid)-(grid-1)/2) * scale
			row[c] = v
			sum += v
		}
		row[k-1] = -sum
		// Rows that came out exactly zero would make the node implicit;
		// bump the first class minimally to keep it explicit.
		if !r.IsExplicit(s) {
			row[0] = scale
			row[k-1] = -scale
		}
	}
	return r, nodes
}
