package beliefs

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dense"
)

func TestNewAndShape(t *testing.T) {
	r := New(5, 3)
	if r.N() != 5 || r.K() != 3 {
		t.Fatalf("shape %dx%d", r.N(), r.K())
	}
	if r.IsExplicit(0) {
		t.Fatal("fresh matrix must have no explicit nodes")
	}
}

func TestNewPanicsOnK1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3, 1)
}

func TestSetValidatesZeroSum(t *testing.T) {
	r := New(2, 3)
	r.Set(0, []float64{2, -1, -1})
	if !r.IsExplicit(0) || r.IsExplicit(1) {
		t.Fatal("explicitness tracking wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-zero-sum vector")
		}
	}()
	r.Set(1, []float64{1, 0, 0})
}

func TestSetWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Set(0, []float64{0, 0})
}

func TestExplicitNodes(t *testing.T) {
	r := New(4, 2)
	r.Set(1, []float64{0.1, -0.1})
	r.Set(3, []float64{-0.2, 0.2})
	nodes := r.ExplicitNodes()
	if len(nodes) != 2 || nodes[0] != 1 || nodes[1] != 3 {
		t.Fatalf("ExplicitNodes = %v", nodes)
	}
}

func TestValidate(t *testing.T) {
	r := New(2, 2)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	r.Matrix().Set(0, 0, 0.5) // break the invariant through the raw matrix
	if err := r.Validate(); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestScaleLemma12(t *testing.T) {
	r := New(1, 3)
	r.Set(0, []float64{2, -1, -1})
	r.Scale(0.5)
	if r.Row(0)[0] != 1 || r.Row(0)[1] != -0.5 {
		t.Fatalf("Scale wrong: %v", r.Row(0))
	}
}

func TestCenterUncenterRoundTrip(t *testing.T) {
	st := dense.NewFromRows([][]float64{{0.5, 0.3, 0.2}, {1.0 / 3, 1.0 / 3, 1.0 / 3}})
	r, err := Center(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.IsExplicit(1) {
		t.Fatal("uniform row must center to zero (implicit)")
	}
	back := r.Uncenter()
	if !back.EqualApprox(st, 1e-12) {
		t.Fatal("round trip failed")
	}
}

func TestCenterRejectsNonStochastic(t *testing.T) {
	if _, err := Center(dense.NewFromRows([][]float64{{0.5, 0.2}})); err == nil {
		t.Fatal("expected error")
	}
}

func TestLabelResidual(t *testing.T) {
	v := LabelResidual(3, 0, 1)
	want := []float64{2, -1, -1}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("LabelResidual = %v, want %v", v, want)
		}
	}
	// Always sums to zero.
	f := func(kRaw, cRaw uint8, s float64) bool {
		k := int(kRaw%6) + 2
		c := int(cRaw) % k
		if math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) > 1e6 {
			s = 1
		}
		v := LabelResidual(k, c, s)
		var sum float64
		for _, x := range v {
			sum += x
		}
		return math.Abs(sum) < 1e-9*math.Max(1, math.Abs(s))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabelResidualBadClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LabelResidual(3, 3, 1)
}

func TestStandardizedRow(t *testing.T) {
	r := New(2, 5)
	r.Set(0, []float64{4, -1, -1, -1, -1})
	z := r.StandardizedRow(0)
	want := []float64{2, -0.5, -0.5, -0.5, -0.5}
	for i := range want {
		if math.Abs(z[i]-want[i]) > 1e-12 {
			t.Fatalf("ζ = %v, want %v", z, want)
		}
	}
}

// TestStandardizationScaleEquivalence reproduces the example from
// Section 6.1: bˆs = [4,−1,−1,−1,−1] and bˆt = 10·bˆs standardize
// identically.
func TestStandardizationScaleEquivalence(t *testing.T) {
	r := New(2, 5)
	r.Set(0, []float64{4, -1, -1, -1, -1})
	r.Set(1, []float64{40, -10, -10, -10, -10})
	a, b := r.StandardizedRow(0), r.StandardizedRow(1)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("standardization must kill scale")
		}
	}
}

func TestTopSingle(t *testing.T) {
	r := New(1, 3)
	r.Set(0, []float64{0.2, -0.1, -0.1})
	top := r.Top(0, TopTolerance)
	if len(top) != 1 || top[0] != 0 {
		t.Fatalf("Top = %v", top)
	}
}

func TestTopTies(t *testing.T) {
	r := New(1, 3)
	r.Set(0, []float64{0.1, 0.1, -0.2})
	top := r.Top(0, TopTolerance)
	if len(top) != 2 || top[0] != 0 || top[1] != 1 {
		t.Fatalf("Top = %v, want [0 1]", top)
	}
}

func TestTopAllZeroRowTiesEverything(t *testing.T) {
	r := New(1, 4)
	top := r.Top(0, TopTolerance)
	if len(top) != 4 {
		t.Fatalf("all-zero row must tie all classes, got %v", top)
	}
}

func TestTopAssignmentShape(t *testing.T) {
	r := New(3, 2)
	r.Set(1, []float64{0.3, -0.3})
	ta := r.TopAssignment()
	if len(ta) != 3 {
		t.Fatalf("len = %d", len(ta))
	}
	if len(ta[1]) != 1 || ta[1][0] != 0 {
		t.Fatalf("ta[1] = %v", ta[1])
	}
}

func TestSeedFractionCount(t *testing.T) {
	r, nodes := Seed(1000, 3, SeedConfig{Fraction: 0.05, Seed: 1})
	if len(nodes) != 50 {
		t.Fatalf("seeded %d nodes, want 50", len(nodes))
	}
	if got := len(r.ExplicitNodes()); got != 50 {
		t.Fatalf("explicit nodes = %d, want 50", got)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSeedCountOverride(t *testing.T) {
	_, nodes := Seed(100, 2, SeedConfig{Fraction: 0.5, Count: 7, Seed: 2})
	if len(nodes) != 7 {
		t.Fatalf("seeded %d, want 7", len(nodes))
	}
}

func TestSeedDeterministic(t *testing.T) {
	a, an := Seed(500, 3, SeedConfig{Fraction: 0.1, Seed: 9})
	b, bn := Seed(500, 3, SeedConfig{Fraction: 0.1, Seed: 9})
	if len(an) != len(bn) {
		t.Fatal("node counts differ")
	}
	for i := range an {
		if an[i] != bn[i] {
			t.Fatal("node choice differs across identical seeds")
		}
	}
	if !a.Matrix().EqualApprox(b.Matrix(), 0) {
		t.Fatal("values differ across identical seeds")
	}
}

func TestSeedValuesOnGrid(t *testing.T) {
	r, nodes := Seed(200, 3, SeedConfig{Fraction: 0.2, Seed: 4})
	for _, s := range nodes {
		row := r.Row(s)
		for c := 0; c < 2; c++ { // first k−1 entries on the 0.01 grid in [−0.1, 0.1]
			v := row[c]
			if v < -0.1-1e-12 || v > 0.1+1e-12 {
				t.Fatalf("value %v off grid", v)
			}
			scaled := v * 100
			if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
				t.Fatalf("value %v not on 0.01 grid", v)
			}
		}
	}
}

func TestSeedExtraDigits(t *testing.T) {
	r, nodes := Seed(300, 3, SeedConfig{Fraction: 0.3, Seed: 5, ExtraDigits: true})
	onFine := false
	for _, s := range nodes {
		v := r.Row(s)[0]
		scaled := v * 100
		if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
			onFine = true
		}
	}
	if !onFine {
		t.Fatal("extra-digit seeding should produce sub-0.01 values")
	}
}

func TestSeedCapsAtN(t *testing.T) {
	_, nodes := Seed(10, 2, SeedConfig{Count: 50, Seed: 1})
	if len(nodes) != 10 {
		t.Fatalf("seeded %d, want 10", len(nodes))
	}
}

func TestSeedNeverProducesImplicitRows(t *testing.T) {
	// Over many draws, zero-sum collisions must be repaired.
	r, nodes := Seed(2000, 2, SeedConfig{Fraction: 1, Seed: 6})
	if len(nodes) != 2000 {
		t.Fatal("fraction 1 must label everything")
	}
	for _, s := range nodes {
		if !r.IsExplicit(s) {
			t.Fatalf("node %d seeded but implicit", s)
		}
	}
}

func TestFromMatrixAliases(t *testing.T) {
	m := dense.New(2, 2)
	r := FromMatrix(m)
	m.Set(0, 0, 5)
	if r.Row(0)[0] != 5 {
		t.Fatal("FromMatrix must alias")
	}
}

func TestCloneIndependent(t *testing.T) {
	r := New(2, 2)
	r.Set(0, []float64{0.1, -0.1})
	c := r.Clone()
	c.Row(0)[0] = 9
	if r.Row(0)[0] != 0.1 {
		t.Fatal("Clone must not alias")
	}
}
