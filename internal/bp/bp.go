// Package bp implements standard loopy Belief Propagation (the
// sum-product algorithm) for pairwise Markov networks with a single
// class-coupling matrix, exactly as Section 2 of the paper defines it:
//
//	bs(i) ← (1/Zs)·es(i)·Π_{u∈N(s)} mus(i)                      (Eq. 1)
//	mst(i) ← (1/Zst)·Σ_j H(j,i)·es(j)·Π_{u∈N(s)\t} mus(j)       (Eq. 3)
//
// with messages normalized to sum to k (so they stay centered around 1,
// the convention the LinBP derivation builds on). This package is the
// baseline the paper compares LinBP and SBP against; it is deliberately
// a faithful message-passing implementation, including its cost profile
// (one message per directed edge per iteration) and its lack of
// convergence guarantees on loopy graphs.
//
// The directed-edge layout (two messages per undirected edge plus the
// incoming-message index) depends only on the graph, so it is prepared
// once in an Engine and reused across solves; Run is the one-shot
// convenience wrapper.
package bp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/beliefs"
	"repro/internal/dense"
	"repro/internal/errs"
	"repro/internal/graph"
)

// Options tunes the BP iteration. The zero value selects defaults.
type Options struct {
	// MaxIter bounds the number of synchronous message rounds
	// (default 100).
	MaxIter int
	// Tol stops the iteration when no message entry changes by more
	// than Tol between rounds (default 1e-9). Set negative to force
	// exactly MaxIter rounds.
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	return o
}

// Result carries the outcome of a BP run.
type Result struct {
	// Beliefs holds the final beliefs in residual (centered) form so
	// they are directly comparable with LinBP/SBP output.
	Beliefs *beliefs.Residual
	// Iterations is the number of message rounds executed.
	Iterations int
	// Converged reports whether the message fixpoint was reached
	// within Options.Tol.
	Converged bool
	// Delta is the final maximum message change.
	Delta float64
}

// Engine is a BP solver prepared once for a fixed graph and stochastic
// coupling matrix and reused across solves: the directed-edge layout
// and every message/product buffer are allocated at construction, so
// repeated solves only pay the message rounds themselves.
//
// An Engine is not safe for concurrent use. Unlike the kernel-backed
// engines it holds no pooled resources, so it has no Close.
type Engine struct {
	g    *graph.Graph
	h    *dense.Matrix
	n, k int
	opts Options

	src, dst []int   // directed edge endpoints; reverse(d) = d^1
	incoming [][]int // node -> incoming directed edge ids

	prior     []float64 // uncentered priors, refreshed per solve
	msg, next []float64 // per-directed-edge messages
	logP, qs  []float64 // log-product and per-edge scratch
}

// NewEngine validates the shapes and builds the directed-edge layout.
// h is the uncentered stochastic coupling matrix H of Problem 1.
func NewEngine(g *graph.Graph, h *dense.Matrix, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	n, k := g.N(), h.Rows()
	if h.Cols() != k {
		return nil, fmt.Errorf("bp: coupling matrix %dx%d is not square: %w", h.Rows(), h.Cols(), errs.ErrDimensionMismatch)
	}
	edges := g.Edges()
	m := len(edges)
	en := &Engine{
		g: g, h: h, n: n, k: k, opts: opts,
		src:      make([]int, 2*m),
		dst:      make([]int, 2*m),
		incoming: make([][]int, n),
		prior:    make([]float64, n*k),
		msg:      make([]float64, 2*m*k),
		next:     make([]float64, 2*m*k),
		logP:     make([]float64, n*k),
		qs:       make([]float64, k),
	}
	// Directed edge layout: undirected edge idx -> directed 2*idx (s→t)
	// and 2*idx+1 (t→s).
	for idx, ed := range edges {
		if ed.S == ed.T {
			return nil, fmt.Errorf("bp: self-loop at node %d not supported: %w", ed.S, errs.ErrInvalidInput)
		}
		en.src[2*idx], en.dst[2*idx] = ed.S, ed.T
		en.src[2*idx+1], en.dst[2*idx+1] = ed.T, ed.S
	}
	for d := 0; d < 2*m; d++ {
		en.incoming[en.dst[d]] = append(en.incoming[en.dst[d]], d)
	}
	return en, nil
}

// Clone returns an engine sharing the prepared, immutable directed-edge
// layout (graph, coupling, edge endpoints, incoming-message index) with
// fresh per-solve message and scratch buffers. It is the cheap way to
// hand each concurrent goroutine its own solve workspace without paying
// the layout construction again; the shared layout is read-only during
// solves, so clones may run concurrently.
func (en *Engine) Clone() *Engine {
	return &Engine{
		g: en.g, h: en.h, n: en.n, k: en.k, opts: en.opts,
		src: en.src, dst: en.dst, incoming: en.incoming,
		prior: make([]float64, len(en.prior)),
		msg:   make([]float64, len(en.msg)),
		next:  make([]float64, len(en.next)),
		logP:  make([]float64, len(en.logP)),
		qs:    make([]float64, len(en.qs)),
	}
}

// SolveInto runs BP for the explicit residual beliefs e and writes the
// final residual beliefs into out (n×k, overwritten). scale multiplies
// the explicit residuals before they become priors (1 for the verbatim
// run; Lemma 12 makes rescaling harmless for the classification and the
// core dispatcher uses it to keep priors valid). ctx is checked at
// every message round; on cancellation the solve aborts with ctx.Err()
// and out holds the beliefs implied by the last completed messages.
func (en *Engine) SolveInto(ctx context.Context, out *beliefs.Residual, e *beliefs.Residual, scale float64) (iters int, delta float64, converged bool, err error) {
	n, k := en.n, en.k
	if e.N() != n || e.K() != k {
		return 0, 0, false, fmt.Errorf("bp: belief matrix %dx%d does not match n=%d k=%d: %w", e.N(), e.K(), n, k, errs.ErrDimensionMismatch)
	}
	if out.N() != n || out.K() != k {
		return 0, 0, false, fmt.Errorf("bp: destination matrix %dx%d does not match n=%d k=%d: %w", out.N(), out.K(), n, k, errs.ErrDimensionMismatch)
	}
	// Uncentered priors, validated as probabilities.
	for s := 0; s < n; s++ {
		row := e.Row(s)
		for i := 0; i < k; i++ {
			p := 1/float64(k) + scale*row[i]
			if p < -1e-12 || p > 1+1e-12 {
				return 0, 0, false, fmt.Errorf("bp: node %d class %d: prior %v outside [0,1]; scale the explicit residuals down: %w", s, i, p, errs.ErrInvalidInput)
			}
			if p < 0 {
				p = 0
			}
			en.prior[s*k+i] = p
		}
	}
	// Messages, all initialized to the neutral 1 (centered default).
	msg, next := en.msg, en.next
	for i := range msg {
		msg[i] = 1
	}
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	h, qs, logP := en.h, en.qs, en.logP
	for iter := 0; iter < en.opts.MaxIter; iter++ {
		if done != nil {
			select {
			case <-done:
				en.msg = msg // keep the last completed round's messages
				en.next = next
				en.finalBeliefs(out, msg)
				return iters, delta, false, ctx.Err()
			default:
			}
		}
		computeLogProducts(logP, en.prior, msg, en.incoming, n, k)
		var roundDelta float64
		for d := range en.src {
			rev := d ^ 1
			s := en.src[d]
			// q(j) = log( es(j)·Π_{u∈N(s)} mus(j) / mts(j) ): divide the
			// full product by the reverse message to exclude the target.
			maxq := math.Inf(-1)
			for j := 0; j < k; j++ {
				qs[j] = logP[s*k+j] - math.Log(msg[rev*k+j])
				if qs[j] > maxq {
					maxq = qs[j]
				}
			}
			if math.IsInf(maxq, -1) {
				maxq = 0 // whole product vanished; exp below yields zeros
			}
			var sum float64
			for i := 0; i < k; i++ {
				var v float64
				for j := 0; j < k; j++ {
					v += h.At(j, i) * math.Exp(qs[j]-maxq)
				}
				next[d*k+i] = v
				sum += v
			}
			// Normalize to sum k (Eq. 3's Zst), then track the change.
			if sum > 0 {
				sc := float64(k) / sum
				for i := 0; i < k; i++ {
					next[d*k+i] *= sc
				}
			}
			for i := 0; i < k; i++ {
				ch := math.Abs(next[d*k+i] - msg[d*k+i])
				if math.IsNaN(ch) {
					ch = math.Inf(1) // overflow: report divergence
				}
				if ch > roundDelta {
					roundDelta = ch
				}
			}
		}
		msg, next = next, msg
		iters = iter + 1
		delta = roundDelta
		if delta <= en.opts.Tol {
			converged = true
			break
		}
	}
	en.msg, en.next = msg, next
	en.finalBeliefs(out, msg)
	return iters, delta, converged, nil
}

// finalBeliefs evaluates Eq. 1 for the given messages, normalized to
// sum 1 and centered into residual form.
func (en *Engine) finalBeliefs(out *beliefs.Residual, msg []float64) {
	n, k := en.n, en.k
	computeLogProducts(en.logP, en.prior, msg, en.incoming, n, k)
	bm := out.Matrix()
	for s := 0; s < n; s++ {
		maxl := math.Inf(-1)
		for i := 0; i < k; i++ {
			if en.logP[s*k+i] > maxl {
				maxl = en.logP[s*k+i]
			}
		}
		row := bm.Row(s)
		var sum float64
		for i := 0; i < k; i++ {
			v := math.Exp(en.logP[s*k+i] - maxl)
			row[i] = v
			sum += v
		}
		for i := 0; i < k; i++ {
			row[i] = row[i]/sum - 1/float64(k)
		}
	}
}

// Run executes loopy BP on g with stochastic coupling matrix h (the
// uncentered H of Problem 1) and explicit beliefs e given in residual
// form. The uncentered prior 1/k + eˆs must be a valid probability
// vector for every node; nodes with zero residual rows get the uniform
// prior. Self-loops are rejected.
func Run(g *graph.Graph, e *beliefs.Residual, h *dense.Matrix, opts Options) (*Result, error) {
	en, err := NewEngine(g, h, opts)
	if err != nil {
		return nil, err
	}
	if e.N() != g.N() {
		return nil, fmt.Errorf("bp: belief matrix %dx%d does not match n=%d k=%d: %w", e.N(), e.K(), g.N(), h.Rows(), errs.ErrDimensionMismatch)
	}
	res := &Result{Beliefs: beliefs.New(en.n, en.k)}
	res.Iterations, res.Delta, res.Converged, err = en.SolveInto(context.Background(), res.Beliefs, e, 1)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// computeLogProducts fills logP with log(prior(s,j)) + Σ log(m_us(j))
// over incoming messages, the log of Eq. 1's unnormalized belief.
func computeLogProducts(logP, prior, msg []float64, incoming [][]int, n, k int) {
	for s := 0; s < n; s++ {
		for j := 0; j < k; j++ {
			logP[s*k+j] = math.Log(prior[s*k+j])
		}
		for _, d := range incoming[s] {
			for j := 0; j < k; j++ {
				logP[s*k+j] += math.Log(msg[d*k+j])
			}
		}
	}
}
