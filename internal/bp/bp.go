// Package bp implements standard loopy Belief Propagation (the
// sum-product algorithm) for pairwise Markov networks with a single
// class-coupling matrix, exactly as Section 2 of the paper defines it:
//
//	bs(i) ← (1/Zs)·es(i)·Π_{u∈N(s)} mus(i)                      (Eq. 1)
//	mst(i) ← (1/Zst)·Σ_j H(j,i)·es(j)·Π_{u∈N(s)\t} mus(j)       (Eq. 3)
//
// with messages normalized to sum to k (so they stay centered around 1,
// the convention the LinBP derivation builds on). This package is the
// baseline the paper compares LinBP and SBP against; it is deliberately
// a faithful message-passing implementation, including its cost profile
// (one message per directed edge per iteration) and its lack of
// convergence guarantees on loopy graphs.
package bp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/beliefs"
	"repro/internal/dense"
	"repro/internal/graph"
)

// Options tunes the BP iteration. The zero value selects defaults.
type Options struct {
	// MaxIter bounds the number of synchronous message rounds
	// (default 100).
	MaxIter int
	// Tol stops the iteration when no message entry changes by more
	// than Tol between rounds (default 1e-9). Set negative to force
	// exactly MaxIter rounds.
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	return o
}

// Result carries the outcome of a BP run.
type Result struct {
	// Beliefs holds the final beliefs in residual (centered) form so
	// they are directly comparable with LinBP/SBP output.
	Beliefs *beliefs.Residual
	// Iterations is the number of message rounds executed.
	Iterations int
	// Converged reports whether the message fixpoint was reached
	// within Options.Tol.
	Converged bool
	// Delta is the final maximum message change.
	Delta float64
}

// Run executes loopy BP on g with stochastic coupling matrix h (the
// uncentered H of Problem 1) and explicit beliefs e given in residual
// form. The uncentered prior 1/k + eˆs must be a valid probability
// vector for every node; nodes with zero residual rows get the uniform
// prior. Self-loops are rejected.
func Run(g *graph.Graph, e *beliefs.Residual, h *dense.Matrix, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n, k := g.N(), h.Rows()
	if h.Cols() != k {
		return nil, errors.New("bp: coupling matrix must be square")
	}
	if e.N() != n || e.K() != k {
		return nil, fmt.Errorf("bp: belief matrix %dx%d does not match n=%d k=%d", e.N(), e.K(), n, k)
	}

	// Uncentered priors, validated as probabilities.
	prior := make([]float64, n*k)
	for s := 0; s < n; s++ {
		row := e.Row(s)
		for i := 0; i < k; i++ {
			p := 1/float64(k) + row[i]
			if p < -1e-12 || p > 1+1e-12 {
				return nil, fmt.Errorf("bp: node %d class %d: prior %v outside [0,1]; scale the explicit residuals down", s, i, p)
			}
			if p < 0 {
				p = 0
			}
			prior[s*k+i] = p
		}
	}

	// Directed edge layout: undirected edge idx -> directed 2*idx (s→t)
	// and 2*idx+1 (t→s); reverse(d) = d^1.
	edges := g.Edges()
	m := len(edges)
	src := make([]int, 2*m)
	dst := make([]int, 2*m)
	for idx, ed := range edges {
		if ed.S == ed.T {
			return nil, fmt.Errorf("bp: self-loop at node %d not supported", ed.S)
		}
		src[2*idx], dst[2*idx] = ed.S, ed.T
		src[2*idx+1], dst[2*idx+1] = ed.T, ed.S
	}
	incoming := make([][]int, n)
	for d := 0; d < 2*m; d++ {
		incoming[dst[d]] = append(incoming[dst[d]], d)
	}

	// Messages, all initialized to the neutral 1 (centered default).
	msg := make([]float64, 2*m*k)
	next := make([]float64, 2*m*k)
	for i := range msg {
		msg[i] = 1
	}

	logP := make([]float64, n*k) // log of es(j)·Π mus(j) per node
	qs := make([]float64, k)     // per-edge scratch
	res := &Result{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		computeLogProducts(logP, prior, msg, incoming, n, k)
		var delta float64
		for d := 0; d < 2*m; d++ {
			rev := d ^ 1
			s := src[d]
			// q(j) = log( es(j)·Π_{u∈N(s)} mus(j) / mts(j) ): divide the
			// full product by the reverse message to exclude the target.
			maxq := math.Inf(-1)
			for j := 0; j < k; j++ {
				qs[j] = logP[s*k+j] - math.Log(msg[rev*k+j])
				if qs[j] > maxq {
					maxq = qs[j]
				}
			}
			if math.IsInf(maxq, -1) {
				maxq = 0 // whole product vanished; exp below yields zeros
			}
			var sum float64
			for i := 0; i < k; i++ {
				var v float64
				for j := 0; j < k; j++ {
					v += h.At(j, i) * math.Exp(qs[j]-maxq)
				}
				next[d*k+i] = v
				sum += v
			}
			// Normalize to sum k (Eq. 3's Zst), then track the change.
			if sum > 0 {
				scale := float64(k) / sum
				for i := 0; i < k; i++ {
					next[d*k+i] *= scale
				}
			}
			for i := 0; i < k; i++ {
				ch := math.Abs(next[d*k+i] - msg[d*k+i])
				if math.IsNaN(ch) {
					ch = math.Inf(1) // overflow: report divergence
				}
				if ch > delta {
					delta = ch
				}
			}
		}
		msg, next = next, msg
		res.Iterations = iter + 1
		res.Delta = delta
		if delta <= opts.Tol {
			res.Converged = true
			break
		}
	}

	// Final beliefs (Eq. 1), normalized to sum 1, then centered.
	computeLogProducts(logP, prior, msg, incoming, n, k)
	bm := dense.New(n, k)
	for s := 0; s < n; s++ {
		maxl := math.Inf(-1)
		for i := 0; i < k; i++ {
			if logP[s*k+i] > maxl {
				maxl = logP[s*k+i]
			}
		}
		row := bm.Row(s)
		var sum float64
		for i := 0; i < k; i++ {
			v := math.Exp(logP[s*k+i] - maxl)
			row[i] = v
			sum += v
		}
		for i := 0; i < k; i++ {
			row[i] = row[i]/sum - 1/float64(k)
		}
	}
	res.Beliefs = beliefs.FromMatrix(bm)
	return res, nil
}

// computeLogProducts fills logP with log(prior(s,j)) + Σ log(m_us(j))
// over incoming messages, the log of Eq. 1's unnormalized belief.
func computeLogProducts(logP, prior, msg []float64, incoming [][]int, n, k int) {
	for s := 0; s < n; s++ {
		for j := 0; j < k; j++ {
			logP[s*k+j] = math.Log(prior[s*k+j])
		}
		for _, d := range incoming[s] {
			for j := 0; j < k; j++ {
				logP[s*k+j] += math.Log(msg[d*k+j])
			}
		}
	}
}
