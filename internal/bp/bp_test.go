package bp

import (
	"math"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/graph"
)

// bruteMarginals computes exact marginals of the pairwise MRF
// p(x) ∝ Π_s prior_s(x_s) · Π_{(s,t)∈E} H(x_s, x_t) by enumeration.
func bruteMarginals(g *graph.Graph, prior *dense.Matrix, h *dense.Matrix) *dense.Matrix {
	n, k := g.N(), h.Rows()
	out := dense.New(n, k)
	assign := make([]int, n)
	var total float64
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			w := 1.0
			for s := 0; s < n; s++ {
				w *= prior.At(s, assign[s])
			}
			for _, e := range g.Edges() {
				w *= h.At(assign[e.S], assign[e.T])
			}
			total += w
			for s := 0; s < n; s++ {
				out.Add(s, assign[s], w)
			}
			return
		}
		for c := 0; c < k; c++ {
			assign[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	for s := 0; s < n; s++ {
		for c := 0; c < k; c++ {
			out.Set(s, c, out.At(s, c)/total)
		}
	}
	return out
}

// priorOf converts residual beliefs to the stochastic prior matrix.
func priorOf(e *beliefs.Residual) *dense.Matrix { return e.Uncenter() }

func TestBPExactOnTree(t *testing.T) {
	// Path v0−v1−v2−v3−v4, k = 3, general coupling, two explicit nodes.
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddUnitEdge(i, i+1)
	}
	h := coupling.Fig1c()
	e := beliefs.New(5, 3)
	e.Set(0, []float64{0.2, -0.1, -0.1})
	e.Set(4, []float64{-0.15, 0.25, -0.1})

	res, err := Run(g, e, h, Options{MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BP must converge on a tree (delta %v)", res.Delta)
	}
	want := bruteMarginals(g, priorOf(e), h)
	got := res.Beliefs.Uncenter()
	if !got.EqualApprox(want, 1e-8) {
		t.Fatalf("BP marginals differ from enumeration:\ngot  %v\nwant %v", got, want)
	}
}

func TestBPExactOnStar(t *testing.T) {
	// Star: center 0 with 4 leaves, k = 2 homophily.
	g := graph.New(5)
	for leaf := 1; leaf < 5; leaf++ {
		g.AddUnitEdge(0, leaf)
	}
	h := coupling.Fig1a()
	e := beliefs.New(5, 2)
	e.Set(1, []float64{0.3, -0.3})
	e.Set(2, []float64{0.2, -0.2})
	e.Set(3, []float64{-0.1, 0.1})

	res, err := Run(g, e, h, Options{MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteMarginals(g, priorOf(e), h)
	if !res.Beliefs.Uncenter().EqualApprox(want, 1e-8) {
		t.Fatal("BP marginals differ from enumeration on star")
	}
}

func TestBPTreeConvergesInDiameterRounds(t *testing.T) {
	g := graph.New(4)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(1, 2)
	g.AddUnitEdge(2, 3)
	e := beliefs.New(4, 2)
	e.Set(0, []float64{0.2, -0.2})
	res, err := Run(g, e, coupling.Fig1a(), Options{MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Synchronous BP on a path of diameter 3 settles within ~diameter+1 rounds.
	if res.Iterations > 6 {
		t.Fatalf("took %d iterations on a tiny tree", res.Iterations)
	}
}

func TestBPHomophilyPropagatesLabel(t *testing.T) {
	// One explicit democrat in a homophily path: everyone leans democrat.
	g := graph.New(4)
	for i := 0; i < 3; i++ {
		g.AddUnitEdge(i, i+1)
	}
	e := beliefs.New(4, 2)
	e.Set(0, []float64{0.4, -0.4})
	res, err := Run(g, e, coupling.Fig1a(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		if res.Beliefs.Row(s)[0] <= res.Beliefs.Row(s)[1] {
			t.Fatalf("node %d should lean class 0: %v", s, res.Beliefs.Row(s))
		}
	}
	// Influence decays with distance.
	if res.Beliefs.Row(1)[0] <= res.Beliefs.Row(3)[0] {
		t.Fatal("closer nodes must be more confident")
	}
}

func TestBPHeterophilyAlternates(t *testing.T) {
	// Heterophily path: labels alternate along the path (Fig. 1b).
	g := graph.New(4)
	for i := 0; i < 3; i++ {
		g.AddUnitEdge(i, i+1)
	}
	e := beliefs.New(4, 2)
	e.Set(0, []float64{0.3, -0.3}) // talkative
	res, err := Run(g, e, coupling.Fig1b(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		wantTalkative := s%2 == 0
		isTalkative := res.Beliefs.Row(s)[0] > res.Beliefs.Row(s)[1]
		if isTalkative != wantTalkative {
			t.Fatalf("node %d: wrong side under heterophily: %v", s, res.Beliefs.Row(s))
		}
	}
}

func TestBPOnLoopyTorusConverges(t *testing.T) {
	// Small εH keeps loopy BP convergent on the Fig. 5c torus.
	g := gen.Torus()
	ho, err := coupling.NewResidual(coupling.Fig1c())
	if err != nil {
		t.Fatal(err)
	}
	h := coupling.Uncenter(coupling.Scale(ho, 0.1))
	e := beliefs.New(8, 3)
	e.Set(0, beliefs.LabelResidual(3, 0, 0.1))
	e.Set(1, beliefs.LabelResidual(3, 1, 0.1))
	e.Set(2, beliefs.LabelResidual(3, 2, 0.1))
	res, err := Run(g, e, h, Options{MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BP should converge at small εH, delta %v", res.Delta)
	}
}

func TestBPUniformPriorGivesUniformBeliefs(t *testing.T) {
	g := gen.Torus()
	e := beliefs.New(8, 3) // no explicit beliefs anywhere
	res, err := Run(g, e, coupling.Fig1c(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		for _, v := range res.Beliefs.Row(s) {
			if math.Abs(v) > 1e-12 {
				t.Fatalf("node %d drifted from uniform: %v", s, res.Beliefs.Row(s))
			}
		}
	}
}

func TestBPRejectsInvalidPrior(t *testing.T) {
	g := graph.New(2)
	g.AddUnitEdge(0, 1)
	e := beliefs.New(2, 3)
	e.Set(0, []float64{2, -1, -1}) // 1/3+2 > 1: invalid probability
	if _, err := Run(g, e, coupling.Fig1c(), Options{}); err == nil {
		t.Fatal("expected prior validation error")
	}
}

func TestBPRejectsShapeMismatch(t *testing.T) {
	g := graph.New(2)
	g.AddUnitEdge(0, 1)
	e := beliefs.New(3, 3)
	if _, err := Run(g, e, coupling.Fig1c(), Options{}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestBPRejectsSelfLoop(t *testing.T) {
	g := graph.New(2)
	g.AddUnitEdge(0, 1)
	g.AddEdge(1, 1, 1)
	e := beliefs.New(2, 2)
	if _, err := Run(g, e, coupling.Fig1a(), Options{}); err == nil {
		t.Fatal("expected self-loop error")
	}
}

func TestBPFixedIterationMode(t *testing.T) {
	g := gen.Torus()
	e := beliefs.New(8, 3)
	e.Set(0, beliefs.LabelResidual(3, 0, 0.1))
	res, err := Run(g, e, coupling.Fig1c(), Options{MaxIter: 5, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 5 || res.Converged {
		t.Fatalf("negative Tol must force MaxIter rounds: iters=%d conv=%v", res.Iterations, res.Converged)
	}
}

func TestBPHardLabelZeroPrior(t *testing.T) {
	// A hard 0/1 prior (residual ±1/k at the boundary) must not produce
	// NaNs through the log-domain computation.
	g := graph.New(3)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(1, 2)
	e := beliefs.New(3, 2)
	e.Set(0, []float64{0.5, -0.5}) // prior [1, 0]
	res, err := Run(g, e, coupling.Fig1a(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 3; s++ {
		for _, v := range res.Beliefs.Row(s) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("node %d has invalid belief %v", s, v)
			}
		}
	}
	if res.Beliefs.Row(0)[0] < 0.5-1e-9 {
		t.Fatal("hard-labeled node must stay at its label")
	}
}
