package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/beliefs"
	"repro/internal/durable"
	"repro/internal/graph"
)

// expiredCtx returns a context whose deadline has already passed.
func expiredCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Minute))
	t.Cleanup(cancel)
	return ctx
}

// TestExpiredContextRejectedBeforeKernel pins the admission contract
// for every method and every solve entry point: a request carrying an
// already-expired deadline returns context.DeadlineExceeded without
// running a single kernel round. (Cancellation used to be observed
// only at round boundaries, so a dead request still paid for rounds.)
func TestExpiredContextRejectedBeforeKernel(t *testing.T) {
	for _, m := range []Method{MethodBP, MethodLinBP, MethodLinBPStar, MethodSBP, MethodFABP} {
		t.Run(m.String(), func(t *testing.T) {
			k := 3
			if m == MethodFABP {
				k = 2
			}
			p := randomProblem(t, 40, 90, k, 0.05, 7)
			s, err := Prepare(p, m, WithMaxIter(200))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			ctx := expiredCtx(t)

			if _, err := s.Solve(ctx, p.Explicit); !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("Solve err = %v, want DeadlineExceeded", err)
			}
			dst := beliefs.New(p.Graph.N(), k)
			if _, err := s.SolveInto(ctx, dst, p.Explicit); !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("SolveInto err = %v, want DeadlineExceeded", err)
			}
			reqs := []Request{{E: p.Explicit}, {E: p.Explicit}, {E: p.Explicit}}
			for i, r := range s.SolveBatch(ctx, reqs) {
				if !errors.Is(r.Err, context.DeadlineExceeded) {
					t.Errorf("SolveBatch[%d] err = %v, want DeadlineExceeded", i, r.Err)
				}
			}
			if st := s.Stats(); st.Iterations != 0 {
				t.Errorf("%d kernel iterations ran for dead-on-arrival requests", st.Iterations)
			}
		})
	}
}

// TestStatePoolBoundedAfterBurst covers the free-list high-water cap
// in isolation: a burst checks out far more states than the cap, and
// on return the pool retains at most maxFree, destroys the excess
// exactly once each, and drops them from the Close registry.
func TestStatePoolBoundedAfterBurst(t *testing.T) {
	built, destroyed := 0, 0
	p := newStatePool(func() (*int, error) {
		built++
		v := built
		return &v, nil
	}).withDestroy(func(*int) { destroyed++ })
	p.maxFree = 3

	const burst = 20
	out := make([]*int, burst)
	for i := range out {
		v, err := p.get()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = v
	}
	if built != burst {
		t.Fatalf("built %d states for a burst of %d", built, burst)
	}
	for _, v := range out {
		p.put(v)
	}
	if got := p.idle(); got != 3 {
		t.Errorf("idle after burst = %d, want maxFree = 3", got)
	}
	if destroyed != burst-3 {
		t.Errorf("destroyed = %d, want %d (burst minus cap)", destroyed, burst-3)
	}
	if len(p.all) != 3 {
		t.Errorf("registry holds %d states, want 3 (destroyed ones must leave it)", len(p.all))
	}
	p.closeAll()
	if destroyed != burst {
		t.Errorf("after closeAll destroyed = %d, want every built state (%d)", destroyed, burst)
	}
}

// TestSolverPoolShrinksAfterBurst is the end-to-end memory-regression
// guard for the cap: a burst of concurrent solves on one shared
// prepared solver must not leave more idle engines pooled than the
// high-water mark.
func TestSolverPoolShrinksAfterBurst(t *testing.T) {
	p := randomProblem(t, 60, 130, 3, 0.05, 11)
	s, err := Prepare(p, MethodLinBP, WithMaxIter(300))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	snap := s.(*dynSolver).cur.Load().snap.(*linbpSolver)

	const burst = 4 * 16
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := beliefs.New(p.Graph.N(), 3)
			if _, err := s.SolveInto(context.Background(), dst, p.Explicit); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got, cap := snap.states.idle(), snap.states.maxFree; got > cap {
		t.Errorf("idle engines after burst = %d, want <= high-water cap %d", got, cap)
	}
}

// TestBatchHintPerMethod pins the batch-shape hint the serving front
// end sizes its coalescing window from: the fused-kernel methods
// report batchWidth/k, the sequential ones 1.
func TestBatchHintPerMethod(t *testing.T) {
	cases := []struct {
		m    Method
		k    int
		want int
	}{
		{MethodLinBP, 2, 6},
		{MethodLinBP, 3, 4},
		{MethodLinBPStar, 3, 4},
		{MethodBP, 3, 1},
		{MethodSBP, 3, 1},
		{MethodFABP, 2, 6},
	}
	for _, c := range cases {
		p := randomProblem(t, 30, 60, c.k, 0.05, 13)
		s, err := Prepare(p, c.m, WithMaxIter(100))
		if err != nil {
			t.Fatal(err)
		}
		want := c.want
		if c.m == MethodBP || c.m == MethodSBP || c.m == MethodFABP {
			want = 1 // sequential batch paths
		}
		if got := s.Stats().BatchHint; got != want {
			t.Errorf("%v k=%d BatchHint = %d, want %d", c.m, c.k, got, want)
		}
		s.Close()
	}
}

// TestBatchChunkIsolation pins the cohort-failure contract: a request
// whose explicit beliefs blow the iteration up to ±Inf fails its own
// fused chunk with ErrNonFinite, and the batch's remaining chunks
// still solve correctly. (The whole batch used to fail once any chunk
// reported an engine error.)
func TestBatchChunkIsolation(t *testing.T) {
	p := randomProblem(t, 60, 130, 3, 0.05, 17)
	s, err := Prepare(p, MethodLinBP, WithMaxIter(300))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// k=3 fuses 4 requests per chunk: requests 0–3 are the poisoned
	// cohort, 4–7 the innocent second chunk.
	poisoned := p.Explicit.Clone()
	pd := poisoned.Matrix().Data()
	pd[0], pd[1], pd[2] = math.MaxFloat64, -math.MaxFloat64, math.MaxFloat64

	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{E: p.Explicit}
	}
	reqs[1].E = poisoned

	want, err := s.Solve(context.Background(), p.Explicit)
	if err != nil {
		t.Fatal(err)
	}
	resp := s.SolveBatch(context.Background(), reqs)
	for i := 0; i < 4; i++ {
		if !errors.Is(resp[i].Err, ErrNonFinite) {
			t.Errorf("poisoned chunk resp[%d].Err = %v, want ErrNonFinite", i, resp[i].Err)
		}
	}
	for i := 4; i < 8; i++ {
		if resp[i].Err != nil {
			t.Errorf("innocent chunk resp[%d].Err = %v, want nil", i, resp[i].Err)
			continue
		}
		if d := maxAbsDiff(resp[i].Beliefs, want.Beliefs); d > 1e-12 {
			t.Errorf("innocent chunk resp[%d] diverges by %g from the one-shot solve", i, d)
		}
	}
}

// walFaultFS overlays Truncate failure injection over a MemFS so an
// append rollback fails and the WAL latches its broken state.
type walFaultFS struct {
	durable.FS
	failTruncate bool
}

func (f *walFaultFS) Truncate(path string, size int64) error {
	if f.failTruncate {
		return fmt.Errorf("core test: %w", durable.ErrInjected)
	}
	return f.FS.Truncate(path, size)
}

// TestWALBrokenLatchesDegraded drives the durable plane into its
// sticky broken-WAL state and pins the degradation contract: the
// failing Update immediately latches SolverStats.Degraded, later
// Updates fail typed with ErrWALBroken, and solves keep answering
// from the last committed state.
func TestWALBrokenLatchesDegraded(t *testing.T) {
	p := randomProblem(t, 60, 130, 3, 0.05, 19)
	mem := durable.NewMemFS()
	ffs := &walFaultFS{FS: mem}
	s, err := Prepare(p, MethodLinBP, append(durTight,
		WithDurabilityFS(ffs, "st", DurabilityPolicy{Sync: SyncAlways}))...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Update(context.Background(), Update{}); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Degraded {
		t.Fatal("Degraded latched before any durable failure")
	}

	// Tear the next append mid-frame and make its rollback truncate
	// fail: the WAL is now stickily broken.
	walPath := durable.Join("st", durable.WALFile)
	size, err := mem.Size(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.FailWritesAfter(walPath, size+10); err != nil {
		t.Fatal(err)
	}
	ffs.failTruncate = true
	u := Update{AddEdges: []graph.Edge{{S: 2, T: 50, W: 1}}}
	if _, err := s.Update(context.Background(), u); err == nil {
		t.Fatal("torn append committed")
	}
	mem.ClearWriteFault(walPath)
	ffs.failTruncate = false

	if !s.Stats().Degraded {
		t.Error("Degraded not latched by the torn append that broke the WAL")
	}
	if _, err := s.Update(context.Background(), u); !errors.Is(err, ErrWALBroken) {
		t.Errorf("Update on broken WAL err = %v, want ErrWALBroken", err)
	}
	// Reads keep serving: the maintained state never saw the torn
	// batch, so solves must match a fresh prepare of the same problem.
	mirror := &Problem{Graph: p.Graph.Clone(), Explicit: p.Explicit.Clone(), Ho: p.Ho, EpsilonH: p.EpsilonH}
	want := freshSolve(t, mirror, MethodLinBP, mirror.Explicit, durTight...)
	res, err := s.Solve(context.Background(), p.Explicit)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Beliefs, want); d > 1e-12 {
		t.Errorf("degraded-mode solve diverges by %g from fresh prepare", d)
	}
}
