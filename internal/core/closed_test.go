package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/beliefs"
)

// TestSolvesCounterSkipsRejected pins the SolverStats contract: Solves
// counts completed solves, so a request rejected by shape validation
// must not move it.
func TestSolvesCounterSkipsRejected(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 40, 80, 3, 0.01, 73)
	p2 := randomProblem(t, 40, 80, 2, 0.01, 73)
	for _, tc := range []struct {
		m Method
		p *Problem
	}{
		{MethodBP, p}, {MethodLinBP, p}, {MethodLinBPStar, p}, {MethodSBP, p}, {MethodFABP, p2},
	} {
		s, err := Prepare(tc.p, tc.m)
		if err != nil {
			t.Fatal(err)
		}
		bad := beliefs.New(7, tc.p.K())
		if _, err := s.SolveInto(ctx, beliefs.New(tc.p.Graph.N(), tc.p.K()), bad); !errors.Is(err, ErrDimensionMismatch) {
			t.Fatalf("%v: want ErrDimensionMismatch, got %v", tc.m, err)
		}
		if _, err := s.Solve(ctx, bad); !errors.Is(err, ErrDimensionMismatch) {
			t.Fatalf("%v: want ErrDimensionMismatch, got %v", tc.m, err)
		}
		if got := s.Stats().Solves; got != 0 {
			t.Fatalf("%v: Solves = %d after only rejected requests, want 0", tc.m, got)
		}
		s.Close()
	}
}

// TestCloseContractEveryMethod pins the lifecycle contract on all five
// methods — the message-passing runners (BP, SBP) included, which
// historically only the kernel-backed paths had tests for: Close is
// idempotent, every solve entry point after Close fails with ErrClosed,
// and Stats stays readable on a closed solver.
func TestCloseContractEveryMethod(t *testing.T) {
	ctx := context.Background()
	p3 := randomProblem(t, 60, 130, 3, 0.01, 71)
	p2 := randomProblem(t, 60, 130, 2, 0.01, 71)
	for _, tc := range []struct {
		m Method
		p *Problem
	}{
		{MethodBP, p3},
		{MethodLinBP, p3},
		{MethodLinBPStar, p3},
		{MethodSBP, p3},
		{MethodFABP, p2},
	} {
		t.Run(tc.m.String(), func(t *testing.T) {
			s, err := Prepare(tc.p, tc.m)
			if err != nil {
				t.Fatal(err)
			}
			dst := beliefs.New(tc.p.Graph.N(), tc.p.K())
			if _, err := s.SolveInto(ctx, dst, tc.p.Explicit); err != nil && !errors.Is(err, ErrNotConverged) {
				t.Fatalf("pre-close solve: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("first Close: %v", err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close must be idempotent: %v", err)
			}
			if _, err := s.Solve(ctx, tc.p.Explicit); !errors.Is(err, ErrClosed) {
				t.Fatalf("Solve after Close = %v, want ErrClosed", err)
			}
			if _, err := s.SolveInto(ctx, dst, tc.p.Explicit); !errors.Is(err, ErrClosed) {
				t.Fatalf("SolveInto after Close = %v, want ErrClosed", err)
			}
			resps := s.SolveBatch(ctx, []Request{{E: tc.p.Explicit}, {E: tc.p.Explicit}})
			if len(resps) != 2 {
				t.Fatalf("closed SolveBatch returned %d responses, want 2", len(resps))
			}
			for i, r := range resps {
				if !errors.Is(r.Err, ErrClosed) {
					t.Fatalf("batch response %d after Close = %v, want ErrClosed", i, r.Err)
				}
			}
			if st := s.Stats(); st.Method != tc.m || st.Solves != 1 {
				t.Fatalf("Stats on closed solver: %+v", st)
			}
		})
	}
}
