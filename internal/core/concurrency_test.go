package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/beliefs"
)

// stressInputs builds a handful of distinct explicit-belief inputs and
// their reference solutions, computed sequentially before the stress
// run, so every concurrent solve can verify its own result — workspace
// cross-contamination between pooled engines would show up as a wrong
// answer, not just a race.
func stressInputs(t *testing.T, p *Problem, m Method, count int, opts ...Option) ([]*beliefs.Residual, []*beliefs.Residual) {
	t.Helper()
	s, err := Prepare(p, m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ins := make([]*beliefs.Residual, count)
	wants := make([]*beliefs.Residual, count)
	for i := range ins {
		e, _ := beliefs.Seed(p.Graph.N(), p.K(), beliefs.SeedConfig{Fraction: 0.1, Seed: uint64(200 + i)})
		ins[i] = e
		want := beliefs.New(p.Graph.N(), p.K())
		if _, err := s.SolveInto(context.Background(), want, e); err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatal(err)
		}
		wants[i] = want
	}
	return ins, wants
}

// stressSolver hammers one shared Solver with 32 goroutines mixing
// Solve, SolveInto, SolveBatch, and Stats, with one goroutine closing
// the solver partway through ("late Close"). Run under -race (make
// test-race) this is the concurrency contract's enforcement: no data
// races, correct results before the close, clean ErrClosed after, and
// an idempotent Close.
func stressSolver(t *testing.T, p *Problem, m Method, iters int, opts ...Option) {
	t.Helper()
	const goroutines = 32
	ins, wants := stressInputs(t, p, m, 8, opts...)
	s, err := Prepare(p, m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := beliefs.New(p.Graph.N(), p.K())
			bd := []*beliefs.Residual{beliefs.New(p.Graph.N(), p.K()), beliefs.New(p.Graph.N(), p.K())}
			for it := 0; it < iters; it++ {
				in := ins[(g+it)%len(ins)]
				want := wants[(g+it)%len(ins)]
				switch it % 4 {
				case 0, 1:
					_, err := s.SolveInto(ctx, dst, in)
					if err != nil {
						if errors.Is(err, ErrClosed) || errors.Is(err, ErrNotConverged) {
							continue
						}
						t.Errorf("goroutine %d: SolveInto: %v", g, err)
						return
					}
					if d := maxAbsDiff(dst, want); d > 1e-12 {
						t.Errorf("goroutine %d: concurrent SolveInto diverges by %g", g, d)
						return
					}
				case 2:
					reqs := []Request{{E: in, Dst: bd[0]}, {E: ins[(g+it+1)%len(ins)], Dst: bd[1]}}
					for ri, r := range s.SolveBatch(ctx, reqs) {
						if r.Err != nil {
							if errors.Is(r.Err, ErrClosed) || errors.Is(r.Err, ErrNotConverged) {
								continue
							}
							t.Errorf("goroutine %d: batch request %d: %v", g, ri, r.Err)
							return
						}
						want := wants[(g+it+ri)%len(ins)]
						if d := maxAbsDiff(r.Beliefs, want); d > 1e-12 {
							t.Errorf("goroutine %d: concurrent batch diverges by %g", g, d)
							return
						}
					}
				case 3:
					st := s.Stats()
					if st.N != p.Graph.N() || st.K != p.K() {
						t.Errorf("goroutine %d: Stats shape %dx%d", g, st.N, st.K)
						return
					}
				}
				if it == iters/2 && g == 0 {
					// Late close from inside the storm: in-flight solves
					// finish, later ones fail with ErrClosed.
					if err := s.Close(); err != nil {
						t.Errorf("late Close: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := s.SolveInto(ctx, beliefs.New(p.Graph.N(), p.K()), ins[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("solve after Close = %v, want ErrClosed", err)
	}
	if _, err := s.Solve(ctx, ins[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Solve after Close = %v, want ErrClosed", err)
	}
	for _, r := range s.SolveBatch(ctx, []Request{{E: ins[0]}}) {
		if !errors.Is(r.Err, ErrClosed) {
			t.Errorf("SolveBatch after Close = %v, want ErrClosed", r.Err)
		}
	}
}

// TestConcurrentSolverStress runs the 32-goroutine stress over every
// method on one shared Solver each, including the partitioned and
// span-parallel kernel planes.
func TestConcurrentSolverStress(t *testing.T) {
	p3 := randomProblem(t, 220, 500, 3, 0.01, 61)
	p2 := randomProblem(t, 220, 500, 2, 0.01, 61)
	pbp := randomProblem(t, 50, 100, 3, 0.01, 61) // BP pays per-edge k² per round
	for _, tc := range []struct {
		name  string
		p     *Problem
		m     Method
		iters int
		opts  []Option
	}{
		{"LinBP", p3, MethodLinBP, 24, nil},
		{"LinBP/partitioned", p3, MethodLinBP, 16, []Option{WithPartitions(3)}},
		{"LinBP/workers", p3, MethodLinBP, 16, []Option{WithWorkers(2)}},
		{"LinBPStar/reordered", p3, MethodLinBPStar, 16, []Option{WithReordering(ReorderRCM)}},
		{"FABP", p2, MethodFABP, 24, nil},
		{"SBP", p3, MethodSBP, 16, nil},
		{"BP", pbp, MethodBP, 6, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			stressSolver(t, tc.p, tc.m, tc.iters, tc.opts...)
		})
	}
}

// TestConcurrentSolveIntoZeroAlloc extends the zero-allocation serving
// guarantee to the shared-solver scenario: after the pool has one
// engine per concurrent caller, steady-state SolveInto allocates
// nothing even though the engines come and go through the state pool.
func TestConcurrentSolveIntoZeroAlloc(t *testing.T) {
	p := randomProblem(t, 250, 600, 3, 0.01, 67)
	s, err := Prepare(p, MethodLinBP)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	dst := beliefs.New(250, 3)
	if _, err := s.SolveInto(ctx, dst, p.Explicit); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.SolveInto(ctx, dst, p.Explicit); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("%v allocs per pooled SolveInto, want 0", allocs)
	}
}
