// Package core ties the reproduction together: it defines the Problem
// type (graph + explicit beliefs + coupling, Problem 1 of the paper)
// and the prepared-solver serving surface — Prepare builds a reusable
// Solver for any of the methods the paper evaluates (standard loopy BP,
// LinBP, LinBP*, SBP, and the binary FABP collapse of Appendix E), and
// the legacy one-shot Solve entry point is a thin wrapper over it — so
// that callers and experiments can swap methods freely.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/linbp"
	"repro/internal/sbp"
)

// Sentinel errors of the solver API, re-exported from the shared leaf
// package so callers can classify failures with errors.Is/As.
var (
	// ErrNotConverged wraps every iterative solve that exhausts its
	// iteration budget; the partial result is still returned with it.
	ErrNotConverged = errs.ErrNotConverged
	// ErrDimensionMismatch wraps every shape inconsistency between
	// graph, beliefs, coupling, and destination buffers.
	ErrDimensionMismatch = errs.ErrDimensionMismatch
	// ErrInvalidCoupling wraps every coupling-matrix defect.
	ErrInvalidCoupling = errs.ErrInvalidCoupling
	// ErrClosed wraps any use of a Solver after Close.
	ErrClosed = errs.ErrClosed
	// ErrNonFinite wraps NaN/Inf inputs (edge weights, explicit
	// beliefs) and iterative solves whose update delta overflowed.
	ErrNonFinite = errs.ErrNonFinite
	// ErrCorruptState wraps durable solver state (snapshot or WAL) that
	// failed checksum or structural validation on Open.
	ErrCorruptState = errs.ErrCorruptState
)

// Method selects the inference algorithm.
type Method int

// The four methods of the paper's evaluation, plus the binary (k = 2)
// FABP collapse of Appendix E.
const (
	// MethodBP is standard loopy belief propagation (Section 2).
	MethodBP Method = iota
	// MethodLinBP is linearized BP with echo cancellation (Eq. 4).
	MethodLinBP
	// MethodLinBPStar is linearized BP without echo cancellation (Eq. 5).
	MethodLinBPStar
	// MethodSBP is single-pass BP (Section 6).
	MethodSBP
	// MethodFABP is the binary-case scalar linearization (Appendix E);
	// it requires k = 2.
	MethodFABP
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodBP:
		return "BP"
	case MethodLinBP:
		return "LinBP"
	case MethodLinBPStar:
		return "LinBP*"
	case MethodSBP:
		return "SBP"
	case MethodFABP:
		return "FABP"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Problem is one top-belief-assignment instance (Problem 1): an
// undirected weighted graph, explicit residual beliefs for some nodes,
// and a residual coupling matrix Hˆo scaled by EpsilonH.
type Problem struct {
	// Graph is the undirected, optionally weighted network.
	Graph *graph.Graph
	// Explicit holds the residual explicit beliefs Eˆ (zero rows for
	// unlabeled nodes).
	Explicit *beliefs.Residual
	// Ho is the unscaled residual coupling matrix Hˆo.
	Ho *dense.Matrix
	// EpsilonH scales Ho into Hˆ = εH·Hˆo. SBP ignores it (its
	// standardized output is εH-invariant); BP, LinBP, and LinBP* use it.
	EpsilonH float64
}

// Validate checks structural consistency and the residual invariants.
func (p *Problem) Validate() error {
	if p.Graph == nil || p.Explicit == nil || p.Ho == nil {
		return fmt.Errorf("core: problem has nil components: %w", errs.ErrInvalidInput)
	}
	if p.EpsilonH < 0 {
		return fmt.Errorf("core: negative EpsilonH: %w", errs.ErrInvalidInput)
	}
	// A non-square Ho is rejected explicitly: comparing only K against
	// Ho.Rows() would let e.g. a k×(k+1) matrix slip through to the
	// per-method code paths.
	if p.Ho.Rows() != p.Ho.Cols() {
		return fmt.Errorf("core: coupling matrix %dx%d is not square: %w",
			p.Ho.Rows(), p.Ho.Cols(), errs.ErrDimensionMismatch)
	}
	if p.Explicit.N() != p.Graph.N() {
		return fmt.Errorf("core: %d belief rows for %d nodes: %w",
			p.Explicit.N(), p.Graph.N(), errs.ErrDimensionMismatch)
	}
	if p.Explicit.K() != p.Ho.Rows() {
		return fmt.Errorf("core: %d belief classes vs %dx%d coupling: %w",
			p.Explicit.K(), p.Ho.Rows(), p.Ho.Cols(), errs.ErrDimensionMismatch)
	}
	if err := coupling.ValidateResidual(p.Ho); err != nil {
		return err
	}
	// graph.AddEdge rejects w <= 0 but NaN fails that comparison too, so
	// NaN (and +Inf) weights can reach a built graph; catch them here
	// before they poison the fixpoint.
	for _, e := range p.Graph.Edges() {
		if math.IsNaN(e.W) || math.IsInf(e.W, 0) {
			return fmt.Errorf("core: edge (%d,%d) has weight %v: %w", e.S, e.T, e.W, errs.ErrNonFinite)
		}
	}
	return p.Explicit.Validate()
}

// K returns the number of classes.
func (p *Problem) K() int { return p.Ho.Rows() }

// ScaledH returns Hˆ = εH·Hˆo.
func (p *Problem) ScaledH() *dense.Matrix { return coupling.Scale(p.Ho, p.EpsilonH) }

// Options tunes Solve. The zero value selects per-method defaults.
type Options struct {
	// MaxIter bounds iterative methods (default: method-specific).
	MaxIter int
	// Tol is the convergence tolerance; negative forces MaxIter rounds.
	Tol float64
	// Workers sets the goroutine count of the fused LinBP/LinBP* kernel
	// (0 or 1 selects the serial pass). BP and SBP ignore it.
	Workers int
}

// Result is the uniform output of Solve.
type Result struct {
	// Method that produced the result.
	Method Method
	// Beliefs holds the final residual beliefs.
	Beliefs *beliefs.Residual
	// Top is the top-belief assignment (with ties) per node.
	Top [][]int
	// Iterations/Converged/Delta describe iterative methods; SBP always
	// converges with Iterations = max geodesic number.
	Iterations int
	Converged  bool
	Delta      float64
	// SBP exposes the incremental state when Method == MethodSBP.
	SBP *sbp.State
}

// Solve runs the chosen method on the problem. It is a thin
// compatibility wrapper over the prepared-solver API: it Prepares a
// Solver, runs one solve, and Closes it. Callers issuing repeated
// solves over the same graph should hold on to Prepare's Solver
// instead. Unlike Solver.Solve, non-convergence is reported through
// Result.Converged rather than as an error (the historical contract).
//
// For BP, the explicit residuals are auto-rescaled (Lemma 12 makes this
// harmless for the classification) so the uncentered priors are valid
// probabilities, and the coupling is uncentered to a stochastic matrix.
func Solve(p *Problem, m Method, opts Options) (*Result, error) {
	s, err := Prepare(p, m, WithWorkers(opts.Workers), WithMaxIter(opts.MaxIter), WithTol(opts.Tol))
	if err != nil {
		return nil, err
	}
	defer s.Close()
	res, err := s.Solve(context.Background(), p.Explicit)
	if err != nil && !errors.Is(err, ErrNotConverged) {
		return nil, err
	}
	return res, nil
}

// bpSafeScale returns the λ that brings the largest explicit residual
// magnitude down to 0.1 (a comfortably valid prior), or 1 if already
// safe. Scaling Eˆ does not change the top-belief assignment
// (Corollary 13); for BP itself the effect is a mild damping of priors.
func bpSafeScale(e *beliefs.Residual) float64 {
	max := e.Matrix().MaxAbs()
	if max <= 0.1 {
		return 1
	}
	return 0.1 / max
}

// Convergence re-exports the LinBP criteria for the problem's scaled
// coupling matrix (Lemma 8 exact, Lemma 9 sufficient).
func (p *Problem) Convergence(m Method) (*linbp.Convergence, error) {
	switch m {
	case MethodLinBP, MethodLinBPStar:
		return linbp.CheckConvergence(p.Graph, p.ScaledH(), m == MethodLinBP)
	default:
		return nil, fmt.Errorf("core: convergence criteria only apply to LinBP/LinBP*, not %v: %w", m, errs.ErrInvalidInput)
	}
}

// AutoEpsilonH returns a safe εH for the problem's graph and Hˆo: half
// of the exact convergence threshold of Lemma 8 for the chosen method.
// The paper recommends choosing εH by Lemma 8 (Section 7, Result 4).
func AutoEpsilonH(g *graph.Graph, ho *dense.Matrix, m Method) (float64, error) {
	if m != MethodLinBP && m != MethodLinBPStar {
		return 0, fmt.Errorf("core: AutoEpsilonH applies to LinBP/LinBP*, not %v: %w", m, errs.ErrInvalidInput)
	}
	eps, err := linbp.MaxEpsilonH(g, ho, m == MethodLinBP, true)
	if err != nil {
		return 0, err
	}
	if math.IsInf(eps, 1) {
		return 1, nil
	}
	return eps / 2, nil
}
