package core

import (
	"math"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func torusProblem(t *testing.T, eps float64) *Problem {
	t.Helper()
	ho, err := coupling.NewResidual(coupling.Fig1c())
	if err != nil {
		t.Fatal(err)
	}
	e := beliefs.New(8, 3)
	e.Set(0, []float64{2, -1, -1})
	e.Set(1, []float64{-1, 2, -1})
	e.Set(2, []float64{-1, -1, 2})
	return &Problem{Graph: gen.Torus(), Explicit: e, Ho: ho, EpsilonH: eps}
}

func TestValidate(t *testing.T) {
	p := torusProblem(t, 0.1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.EpsilonH = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative εH must fail")
	}
	bad2 := *p
	bad2.Explicit = beliefs.New(5, 3)
	if err := bad2.Validate(); err == nil {
		t.Fatal("shape mismatch must fail")
	}
	bad3 := *p
	bad3.Graph = nil
	if err := bad3.Validate(); err == nil {
		t.Fatal("nil graph must fail")
	}
}

func TestSolveAllMethods(t *testing.T) {
	p := torusProblem(t, 0.1)
	for _, m := range []Method{MethodBP, MethodLinBP, MethodLinBPStar, MethodSBP} {
		res, err := Solve(p, m, Options{})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Beliefs == nil || len(res.Top) != 8 {
			t.Fatalf("%v: incomplete result", m)
		}
		if !res.Converged {
			t.Fatalf("%v: did not converge", m)
		}
		// Explicit nodes keep their classes.
		for s := 0; s < 3; s++ {
			if len(res.Top[s]) != 1 || res.Top[s][0] != s {
				t.Fatalf("%v: node %d top = %v", m, s, res.Top[s])
			}
		}
	}
}

// TestMethodsAgree is the paper's central quality claim in miniature:
// at a small εH all four methods give the same top-belief assignment.
func TestMethodsAgree(t *testing.T) {
	p := torusProblem(t, 0.05)
	base, err := Solve(p, MethodBP, Options{MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{MethodLinBP, MethodLinBPStar, MethodSBP} {
		res, err := Solve(p, m, Options{MaxIter: 300})
		if err != nil {
			t.Fatal(err)
		}
		pr, err := metrics.Compare(base.Top, res.Top)
		if err != nil {
			t.Fatal(err)
		}
		if pr.F1 < 0.99 {
			t.Fatalf("%v vs BP: F1 = %v\nBP:  %v\n%v: %v", m, pr.F1, base.Top, m, res.Top)
		}
	}
}

func TestSolveSBPExposesState(t *testing.T) {
	p := torusProblem(t, 0.1)
	res, err := Solve(p, MethodSBP, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SBP == nil {
		t.Fatal("SBP state missing")
	}
	if res.Iterations != 3 { // max geodesic number on the torus instance
		t.Fatalf("Iterations = %d, want 3", res.Iterations)
	}
}

func TestSolveBPAutoRescale(t *testing.T) {
	// Explicit residuals of magnitude 2 would be invalid BP priors;
	// Solve must rescale internally rather than erroring.
	p := torusProblem(t, 0.05)
	if _, err := Solve(p, MethodBP, Options{}); err != nil {
		t.Fatalf("auto-rescale failed: %v", err)
	}
}

func TestSolveUnknownMethod(t *testing.T) {
	if _, err := Solve(torusProblem(t, 0.1), Method(99), Options{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		MethodBP: "BP", MethodLinBP: "LinBP", MethodLinBPStar: "LinBP*",
		MethodSBP: "SBP", Method(42): "Method(42)",
	} {
		if m.String() != want {
			t.Fatalf("String() = %q, want %q", m.String(), want)
		}
	}
}

func TestConvergenceAccessor(t *testing.T) {
	p := torusProblem(t, 0.1)
	c, err := p.Convergence(MethodLinBP)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Exact {
		t.Fatal("εH=0.1 should be inside the exact region")
	}
	if _, err := p.Convergence(MethodSBP); err == nil {
		t.Fatal("SBP has no convergence criterion")
	}
}

func TestAutoEpsilonH(t *testing.T) {
	p := torusProblem(t, 0)
	eps, err := AutoEpsilonH(p.Graph, p.Ho, MethodLinBP)
	if err != nil {
		t.Fatal(err)
	}
	// Half of Example 20's ≈0.488.
	if math.Abs(eps-0.244) > 5e-3 {
		t.Fatalf("AutoEpsilonH = %v, want ≈0.244", eps)
	}
	if _, err := AutoEpsilonH(p.Graph, p.Ho, MethodBP); err == nil {
		t.Fatal("expected error for BP")
	}
	// Edgeless graph: threshold is infinite, fall back to 1.
	eps, err = AutoEpsilonH(graph.New(3), p.Ho, MethodLinBPStar)
	if err != nil {
		t.Fatal(err)
	}
	if eps != 1 {
		t.Fatalf("edgeless AutoEpsilonH = %v, want 1", eps)
	}
}
