// The durable serving plane: every prepared (or recovered) solver can
// persist its state under a directory as one checksummed snapshot
// plus a write-ahead log of update batches.
//
// Commit protocol (the invariant the crash matrix pins): an Update's
// batch is appended to the WAL — under the configured fsync policy —
// BEFORE any in-memory mutation. A crash at any point therefore
// leaves one of exactly two recoverable states: the batch is absent
// from the log (it never happened) or present (replay reapplies it);
// a half-applied batch is unrepresentable. Compaction rebuilds write
// a fresh checkpoint snapshot and rotate the log only after the
// rename is durable, so the log's records are always >= the
// snapshot's fold point.
//
// Open is the recovery path: load + verify the snapshot (cold start
// is a map-and-validate, not a re-Prepare — no reordering, no
// partitioning, no epsilon search), replay the intact WAL prefix into
// the dynamic state, commit it as one epoch, and checkpoint so the
// next crash replays nothing.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/durable"
	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/sparse"
)

// DurabilityPolicy selects when WAL appends reach stable storage; see
// the Sync* policies.
type DurabilityPolicy = durable.Policy

// SyncPolicy is the fsync cadence of the update WAL.
type SyncPolicy = durable.SyncPolicy

// The WAL fsync policies (re-exported from internal/durable).
const (
	// SyncAlways flushes after every committed update — nothing
	// acknowledged is ever lost. The default.
	SyncAlways = durable.SyncAlways
	// SyncInterval flushes every Policy.Interval updates; a crash
	// loses at most the last Interval-1 batches.
	SyncInterval = durable.SyncInterval
	// SyncNever leaves flushing to the OS page cache.
	SyncNever = durable.SyncNever
)

// ErrWALBroken (re-exported from internal/durable) reports that the
// write-ahead log is stickily unusable: an append failed in a way that
// could not be rolled back, so no further update can commit durably.
// The solver latches SolverStats.Degraded and keeps serving reads;
// every later Update fails wrapping this sentinel.
var ErrWALBroken = durable.ErrWALBroken

// WithDurability persists the prepared state into dir (created if
// needed) and write-ahead-logs every Update under the given policy.
// Prepare starts the directory fresh, overwriting any previous state;
// use Open to resume from existing state instead. When passed to
// Open, only the policy is honored (the directory is Open's
// argument).
func WithDurability(dir string, pol DurabilityPolicy) Option {
	return func(c *config) { c.durFS, c.durDir, c.durPol, c.durSet = durable.OS, dir, pol, true }
}

// WithDurabilityFS is WithDurability on an explicit filesystem — the
// hook the fault-injection harness uses to run the real commit path
// against a crashing, bit-flipping in-memory disk.
func WithDurabilityFS(fsys durable.FS, dir string, pol DurabilityPolicy) Option {
	return func(c *config) { c.durFS, c.durDir, c.durPol, c.durSet = fsys, dir, pol, true }
}

// HasState reports whether dir holds a snapshot a subsequent Open
// could resume from.
func HasState(dir string) bool { return durable.HasSnapshot(durable.OS, dir) }

// HasStateFS is HasState on an explicit filesystem.
func HasStateFS(fsys durable.FS, dir string) bool { return durable.HasSnapshot(fsys, dir) }

// durability is the dynSolver's durable half: the open WAL and the
// sequence number of the last logged update. Guarded by dynSolver.mu.
type durability struct {
	fs      durable.FS
	dir     string
	pol     durable.Policy
	wal     *durable.WAL
	seq     uint64
	release func() // snapshot mapping backing the recovered arrays
}

func (du *durability) close() error {
	var err error
	if du.wal != nil {
		err = du.wal.Close()
		du.wal = nil
	}
	if du.release != nil {
		du.release()
		du.release = nil
	}
	return err
}

// initDurability publishes the freshly prepared state and opens the
// WAL. Called once from Prepare, before the solver is returned.
func (d *dynSolver) initDurability() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	du := &durability{fs: d.cfg.durFS, dir: d.cfg.durDir, pol: d.cfg.durPol}
	img, err := d.snapshotImageLocked(du.seq)
	if err != nil {
		return err
	}
	if err := durable.WriteSnapshot(du.fs, du.dir, img); err != nil {
		return err
	}
	// A stale log from a previous incarnation must not replay over the
	// fresh snapshot: Prepare semantics are "start over".
	if err := du.fs.Truncate(durable.Join(du.dir, durable.WALFile), 0); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("core: durability: reset wal: %w", err)
	}
	wal, err := durable.OpenWAL(du.fs, du.dir, du.pol)
	if err != nil {
		return err
	}
	du.wal = wal
	d.dur = du
	return nil
}

// appendWALLocked logs the batch as the next sequence number; on
// error nothing was committed and the Update must abort.
func (d *dynSolver) appendWALLocked(u Update) error {
	rec := recordFromUpdate(u, d.dur.seq+1, d.k)
	if err := d.dur.wal.Append(rec); err != nil {
		if d.dur.wal.Broken() != nil {
			// The failed append also poisoned the log (its rollback
			// truncate failed): no later update can commit durably.
			// Latch read-only mode now, not on the next attempt.
			d.degraded.Store(true)
		}
		return err
	}
	d.dur.seq++
	return nil
}

// checkpointLocked durably publishes the current maintained state and
// rotates the WAL. Rotation failure is non-fatal for correctness (the
// superseded records replay as already-covered) but is surfaced.
func (d *dynSolver) checkpointLocked() error {
	img, err := d.snapshotImageLocked(d.dur.seq)
	if err != nil {
		return err
	}
	if err := durable.WriteSnapshot(d.dur.fs, d.dur.dir, img); err != nil {
		return err
	}
	if d.dur.wal == nil { // recovery checkpoints before reopening the log
		return nil
	}
	if err := d.dur.wal.Rotate(); err != nil {
		if d.dur.wal.Broken() != nil {
			d.degraded.Store(true)
		}
		return err
	}
	return nil
}

// snapshotImageLocked assembles the durable image of the maintained
// state: the current layout CSR (with any pending overlay delta
// folded in — the WAL sequence recorded alongside covers it), the
// layout metadata, and the belief matrices.
func (d *dynSolver) snapshotImageLocked(seq uint64) (*durable.Snapshot, error) {
	img := &durable.Snapshot{
		Method:     uint32(d.method),
		Ordering:   d.info.ordering.Code(),
		N:          d.n,
		K:          d.k,
		EpsH:       d.eps,
		WALSeq:     seq,
		BandBefore: d.info.bandBefore,
		BandAfter:  d.info.bandAfter,
	}
	var a *sparse.CSR
	switch d.method {
	case MethodLinBP, MethodLinBPStar, MethodFABP:
		a = d.layoutA
		if d.overlay != nil && d.overlay.DeltaNNZ() > 0 {
			a = d.overlay.Merge()
		}
	default:
		img.GraphOrder = true
		g := d.g
		if g == nil {
			g = d.srcGraph
		}
		a = g.Adjacency()
	}
	rowPtr, colIdx, vals := a.Index()
	img.RowPtr, img.Vals = rowPtr, vals
	if _, ci32, ok := a.CompactIndex(); ok {
		img.ColIdx32 = ci32
	} else {
		img.ColIdx = colIdx
	}
	if d.perm != nil {
		img.Perm = []int(d.perm)
	}
	img.PartStarts = d.partStarts
	img.HO = d.ho.Data()
	exp := d.exp
	if exp == nil {
		exp = d.srcExp
	}
	img.Explicit = exp.Matrix().Data()
	if d.last != nil {
		img.Last = d.last.Matrix().Data()
	}
	return img, nil
}

// recordFromUpdate encodes the batch exactly as the apply path reads
// it: only the non-zero explicit rows travel.
func recordFromUpdate(u Update, seq uint64, k int) *durable.Record {
	rec := &durable.Record{Seq: seq, K: k}
	for _, e := range u.AddEdges {
		rec.Adds = append(rec.Adds, durable.Edge{S: uint32(e.S), T: uint32(e.T), W: e.W})
	}
	for _, e := range u.RemoveEdges {
		rec.Dels = append(rec.Dels, durable.Pair{S: uint32(e.S), T: uint32(e.T)})
	}
	if u.SetExplicit != nil {
		for _, v := range u.SetExplicit.ExplicitNodes() {
			row := make([]float64, k)
			copy(row, u.SetExplicit.Row(v))
			rec.Rows = append(rec.Rows, durable.BeliefRow{Node: uint32(v), Row: row})
		}
	}
	return rec
}

// updateFromRecord is the replay-side inverse of recordFromUpdate.
func updateFromRecord(rec *durable.Record, n, k int) (Update, error) {
	var u Update
	for _, e := range rec.Adds {
		u.AddEdges = append(u.AddEdges, graph.Edge{S: int(e.S), T: int(e.T), W: e.W})
	}
	for _, p := range rec.Dels {
		u.RemoveEdges = append(u.RemoveEdges, graph.Edge{S: int(p.S), T: int(p.T)})
	}
	if len(rec.Rows) > 0 {
		if rec.K != k {
			return u, fmt.Errorf("core: wal record k=%d, solver k=%d: %w", rec.K, k, errs.ErrCorruptState)
		}
		exp := beliefs.New(n, k)
		for _, row := range rec.Rows {
			if int(row.Node) >= n {
				return u, fmt.Errorf("core: wal record node %d out of range n=%d: %w", row.Node, n, errs.ErrCorruptState)
			}
			exp.Set(int(row.Node), row.Row)
		}
		u.SetExplicit = exp
	}
	return u, nil
}

// Open resumes a solver from the durable state under dir: the
// snapshot is verified and adopted (no re-Prepare), the WAL's intact
// prefix is replayed and committed as one epoch, and a fresh
// checkpoint is published so the next open replays nothing. Options
// apply as in Prepare; a WithDurability option contributes its fsync
// policy (the directory is dir). Corrupt state surfaces
// ErrCorruptState; a missing snapshot surfaces os.ErrNotExist.
func Open(dir string, opts ...Option) (Solver, error) {
	return OpenFS(durable.OS, dir, opts...)
}

// OpenFS is Open on an explicit filesystem (fault-injection harness
// entry point).
func OpenFS(fsys durable.FS, dir string, opts ...Option) (Solver, error) {
	snap, err := durable.LoadSnapshot(fsys, dir)
	if err != nil {
		return nil, err
	}
	d, err := rebuildFromSnapshot(snap, fsys, dir, opts)
	if err != nil {
		snap.Close()
		return nil, err
	}
	if err := d.recoverLocked(snap); err != nil {
		d.dur.close()
		snap.Close() // idempotent if the recovery already owned it
		d.cur.Load().snap.Close()
		return nil, err
	}
	return d, nil
}

// rebuildFromSnapshot reconstitutes the dynSolver (without WAL
// replay) from a verified snapshot image.
func rebuildFromSnapshot(snap *durable.Snapshot, fsys durable.FS, dir string, opts []Option) (*dynSolver, error) {
	m := Method(snap.Method)
	switch m {
	case MethodBP, MethodLinBP, MethodLinBPStar, MethodSBP, MethodFABP:
	default:
		return nil, fmt.Errorf("core: open: snapshot method %d unknown: %w", snap.Method, errs.ErrCorruptState)
	}
	ordering, err := order.StrategyFromCode(snap.Ordering)
	if err != nil {
		return nil, fmt.Errorf("core: open: %v: %w", err, errs.ErrCorruptState)
	}
	var cfg config
	cfg.reorder = ordering
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	cfg.durFS, cfg.durDir = fsys, dir
	if !cfg.durSet {
		cfg.durPol = durable.Policy{Sync: durable.SyncAlways}
	}

	n, k := snap.N, snap.K
	var perm order.Permutation
	if snap.Perm != nil {
		perm = order.Permutation(snap.Perm)
		if err := perm.Validate(n); err != nil {
			return nil, fmt.Errorf("core: open: %v: %w", err, errs.ErrCorruptState)
		}
	}
	if snap.PartStarts != nil {
		if err := order.ValidateStarts(snap.PartStarts, n); err != nil {
			return nil, fmt.Errorf("core: open: %v: %w", err, errs.ErrCorruptState)
		}
	}
	var a *sparse.CSR
	if snap.ColIdx32 != nil {
		a, err = sparse.NewCSRFromCompact(n, n, snap.RowPtr, snap.ColIdx32, snap.Vals)
	} else {
		a, err = sparse.NewCSRFromRaw(n, n, snap.RowPtr, snap.ColIdx, snap.Vals)
	}
	if err != nil {
		return nil, fmt.Errorf("core: open: %v: %w", err, errs.ErrCorruptState)
	}
	for _, w := range snap.Vals {
		if !(w > 0) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("core: open: adjacency weight %v invalid: %w", w, errs.ErrCorruptState)
		}
	}
	for _, v := range snap.HO {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("core: open: coupling matrix holds %v: %w", v, errs.ErrCorruptState)
		}
	}
	ho := dense.New(k, k)
	copy(ho.Data(), snap.HO)
	expM := dense.New(n, k)
	copy(expM.Data(), snap.Explicit)
	exp := beliefs.FromMatrix(expM)
	if err := exp.Validate(); err != nil {
		return nil, fmt.Errorf("core: open: explicit beliefs: %v: %w", err, errs.ErrCorruptState)
	}

	info := solverInfo{
		method: m, n: n, k: k, workers: cfg.workers, eps: snap.EpsH,
		ordering: ordering, bandBefore: snap.BandBefore, bandAfter: snap.BandAfter,
	}
	// Reconstruct the caller-order graph the dynamic plane maintains:
	// for kernel methods the stored CSR is layout-ordered, so undo the
	// permutation first. Parallel edges were already collapsed by the
	// original adjacency build; the sum-equivalent graph serves every
	// later rebuild identically.
	adj := a
	if !snap.GraphOrder && perm != nil {
		adj = a.Permute([]int(perm.Inverse()))
	}
	g := graph.New(n)
	g.ReserveEdges((adj.NNZ() + n) / 2)
	rp, ci, vs := adj.Index()
	for i := 0; i < n; i++ {
		for p := rp[i]; p < rp[i+1]; p++ {
			if j := ci[p]; j >= i {
				g.AddEdge(i, j, vs[p])
			}
		}
	}

	var inner snapshot
	switch m {
	case MethodLinBP, MethodLinBPStar, MethodFABP:
		if snap.GraphOrder {
			return nil, fmt.Errorf("core: open: kernel method with graph-order matrix: %w", errs.ErrCorruptState)
		}
		if snap.PartStarts != nil {
			st := order.StatsForStarts(a, snap.PartStarts)
			info.partitions = st.Blocks()
			info.cutEdges = st.CutEdges
			info.imbalance = st.Imbalance
		}
		lay := kernelLayout{a: a, perm: perm, partStarts: snap.PartStarts}
		if m == MethodFABP {
			lay.d = a.RowSumsSquared()
			inner, err = newFABPSolverOn(snap.EpsH*ho.At(0, 0), info, cfg, lay)
		} else {
			if m == MethodLinBP {
				lay.d = a.RowSumsSquared()
			}
			inner, err = newLinBPSolverOn(coupling.Scale(ho, snap.EpsH), info, cfg, lay)
		}
	case MethodBP:
		inner, err = newBPSolverOn(g.Clone(), ho, info, cfg, perm)
	default: // MethodSBP
		inner, err = newSBPSolverOn(g.Clone(), ho, info, perm)
	}
	if err != nil {
		return nil, err
	}

	d := &dynSolver{method: m, cfg: cfg, ho: ho, srcGraph: g, srcExp: exp}
	d.info, d.perm, d.partStarts = info, perm, snap.PartStarts
	if !snap.GraphOrder {
		d.layoutA = a
	}
	d.n, d.k, d.eps = n, k, snap.EpsH
	d.cur.Store(&epochState{snap: inner})
	d.dur = &durability{fs: fsys, dir: dir, pol: cfg.durPol, seq: snap.WALSeq, release: nil}
	return d, nil
}

// recoverLocked replays the WAL's intact prefix into the maintained
// state, commits any topology change as one epoch, restores the
// warm-start fixpoint, and checkpoints.
func (d *dynSolver) recoverLocked(snap *durable.Snapshot) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.initDynState()
	if snap.Last != nil {
		lastM := dense.New(d.n, d.k)
		copy(lastM.Data(), snap.Last)
		d.last = beliefs.FromMatrix(lastM)
	}
	changed := false
	lastSeq, replayed, err := durable.ReplayWAL(d.dur.fs, d.dur.dir, snap.WALSeq, func(rec *durable.Record) error {
		u, err := updateFromRecord(rec, d.n, d.k)
		if err != nil {
			return err
		}
		// The checksum proves integrity, not sanity: a foreign or
		// stale-schema record must fail recovery, not poison the state.
		if err := d.validateUpdate(u); err != nil {
			return fmt.Errorf("core: wal replay seq %d: %v: %w", rec.Seq, err, errs.ErrCorruptState)
		}
		if u.SetExplicit != nil {
			for _, v := range u.SetExplicit.ExplicitNodes() {
				d.exp.Set(v, u.SetExplicit.Row(v))
			}
		}
		if d.applyTopologyLocked(u) {
			changed = true
		}
		return nil
	})
	if err != nil {
		return err
	}
	d.dur.seq = lastSeq
	d.updates.Store(int64(lastSeq))
	if changed {
		// One commit for the whole replayed suffix: per-record epochs
		// would re-merge the overlay O(replayed) times for no reader.
		if err := d.swapSnapshotLocked(context.Background()); err != nil {
			return err
		}
	}
	// The mapped snapshot's arrays may now back the serving epoch;
	// hold the mapping until Close.
	d.dur.release = func() { snap.Close() }
	wal, err := durable.OpenWAL(d.dur.fs, d.dur.dir, d.dur.pol)
	if err != nil {
		return err
	}
	d.dur.wal = wal
	if replayed > 0 {
		if err := d.checkpointLocked(); err != nil {
			return fmt.Errorf("core: open: post-replay checkpoint: %w", err)
		}
	}
	return nil
}
