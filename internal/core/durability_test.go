package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/durable"
	"repro/internal/errs"
	"repro/internal/graph"
)

var durTight = []Option{WithMaxIter(500), WithTol(1e-13)}

// applyMirror folds an Update into the reference problem.
func applyMirror(m *Problem, u Update) {
	for _, e := range u.AddEdges {
		m.Graph.AddEdge(e.S, e.T, e.W)
	}
	m.Graph.RemoveEdges(u.RemoveEdges)
	if u.SetExplicit != nil {
		for _, v := range u.SetExplicit.ExplicitNodes() {
			m.Explicit.Set(v, u.SetExplicit.Row(v))
		}
	}
}

// TestDurableOpenMatchesFreshPrepare walks every method through
// Prepare-with-durability, a short update stream, an orderly Close,
// and an Open — pinning the recovered fixpoint to a fresh Prepare on
// the mirrored problem.
func TestDurableOpenMatchesFreshPrepare(t *testing.T) {
	const tol = 1e-12
	for _, m := range []Method{MethodLinBP, MethodLinBPStar, MethodFABP, MethodBP, MethodSBP} {
		t.Run(m.String(), func(t *testing.T) {
			k := 3
			if m == MethodFABP {
				k = 2
			}
			p := randomProblem(t, 70, 150, k, 0.05, 29)
			mirror := &Problem{Graph: p.Graph.Clone(), Explicit: p.Explicit.Clone(), Ho: p.Ho, EpsilonH: p.EpsilonH}
			fs := durable.NewMemFS()
			opts := append([]Option{WithDurabilityFS(fs, "state", DurabilityPolicy{Sync: SyncAlways})}, durTight...)
			s, err := Prepare(p, m, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if !HasStateFS(fs, "state") {
				t.Fatal("no snapshot after durable Prepare")
			}
			ctx := context.Background()
			batches := []Update{
				{AddEdges: []graph.Edge{{S: 0, T: 33, W: 1}, {S: 5, T: 9, W: 0.5}}},
				{RemoveEdges: []graph.Edge{{S: 0, T: 33}},
					SetExplicit: labelMatrix(p.Graph.N(), k, map[int]int{12: 1})},
				{}, // pure re-solve: still sequenced, still recoverable
			}
			for bi, u := range batches {
				if _, err := s.Update(ctx, u); err != nil && !errors.Is(err, ErrNotConverged) {
					t.Fatalf("batch %d: %v", bi, err)
				}
				applyMirror(mirror, u)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			r, err := OpenFS(fs, "state", durTight...)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if got := r.Stats().Updates; got != int64(len(batches)) {
				t.Errorf("recovered Updates = %d, want %d", got, len(batches))
			}
			res, err := r.Update(ctx, Update{})
			if err != nil && !errors.Is(err, ErrNotConverged) {
				t.Fatal(err)
			}
			want := freshSolve(t, mirror, m, mirror.Explicit, durTight...)
			refTol := tol
			if m == MethodBP {
				refTol = 1e-9 // BP's fixpoint tolerance matches the dynamic-plane tests
			}
			if d := maxAbsDiff(res.Beliefs, want); d > refTol {
				t.Errorf("recovered fixpoint diverges from fresh Prepare by %g", d)
			}
			// The recovered solver keeps updating durably.
			u := Update{AddEdges: []graph.Edge{{S: 1, T: 2, W: 1}}}
			res, err = r.Update(ctx, u)
			if err != nil && !errors.Is(err, ErrNotConverged) {
				t.Fatal(err)
			}
			applyMirror(mirror, u)
			if d := maxAbsDiff(res.Beliefs, freshSolve(t, mirror, m, mirror.Explicit, durTight...)); d > refTol {
				t.Errorf("post-recovery update diverges by %g", d)
			}
		})
	}
}

// TestDurableCrashRecovery loses the process (no Close) after synced
// updates; Open must replay the WAL tail onto the snapshot.
func TestDurableCrashRecovery(t *testing.T) {
	p := randomProblem(t, 60, 130, 3, 0.05, 31)
	mirror := &Problem{Graph: p.Graph.Clone(), Explicit: p.Explicit.Clone(), Ho: p.Ho, EpsilonH: p.EpsilonH}
	fs := durable.NewMemFS()
	opts := append([]Option{WithDurabilityFS(fs, "st", DurabilityPolicy{Sync: SyncAlways})}, durTight...)
	s, err := Prepare(p, MethodLinBP, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, u := range []Update{
		{AddEdges: []graph.Edge{{S: 3, T: 44, W: 1}}},
		{SetExplicit: labelMatrix(p.Graph.N(), 3, map[int]int{7: 0})},
	} {
		if _, err := s.Update(ctx, u); err != nil {
			t.Fatal(err)
		}
		applyMirror(mirror, u)
	}
	// Power loss: no Close, unsynced state dropped.
	fs.Crash()

	r, err := OpenFS(fs, "st", durTight...)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Stats().Updates; got != 2 {
		t.Fatalf("recovered Updates = %d, want 2", got)
	}
	res, err := r.Update(ctx, Update{})
	if err != nil {
		t.Fatal(err)
	}
	want := freshSolve(t, mirror, MethodLinBP, mirror.Explicit, durTight...)
	if d := maxAbsDiff(res.Beliefs, want); d > 1e-12 {
		t.Errorf("crash-recovered fixpoint diverges by %g", d)
	}
}

// TestDurableOpenCorruptSnapshot pins the typed error contract: bit
// rot in the snapshot surfaces ErrCorruptState, never a solver.
func TestDurableOpenCorruptSnapshot(t *testing.T) {
	p := randomProblem(t, 40, 80, 3, 0.05, 37)
	fs := durable.NewMemFS()
	s, err := Prepare(p, MethodLinBP, WithDurabilityFS(fs, "st", DurabilityPolicy{Sync: SyncAlways}))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := fs.FlipBit(durable.Join("st", durable.SnapshotFile), 4200, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFS(fs, "st"); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("Open on flipped bit = %v, want ErrCorruptState", err)
	}
}

// TestUpdateCancelledBeforeSwap pins the commit-abort contract: a
// context cancelled between overlay materialization and the epoch
// swap returns an error, publishes nothing, and the next Update
// commits the retained delta.
func TestUpdateCancelledBeforeSwap(t *testing.T) {
	p := randomProblem(t, 60, 130, 3, 0.05, 41)
	mirror := &Problem{Graph: p.Graph.Clone(), Explicit: p.Explicit.Clone(), Ho: p.Ho, EpsilonH: p.EpsilonH}
	s, err := Prepare(p, MethodLinBP, durTight...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	u1 := Update{AddEdges: []graph.Edge{{S: 2, T: 50, W: 1}}}
	if _, err := s.Update(cancelled, u1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Update err = %v, want context.Canceled", err)
	}
	applyMirror(mirror, u1)
	if st := s.Stats(); st.Epoch != 0 {
		t.Fatalf("epoch advanced to %d despite cancellation", st.Epoch)
	}
	// Readers still serve the pre-batch epoch (n.b. the delta is
	// retained, not rolled back — it simply has not been published).
	u2 := Update{AddEdges: []graph.Edge{{S: 4, T: 17, W: 1}}}
	res, err := s.Update(context.Background(), u2)
	if err != nil {
		t.Fatal(err)
	}
	applyMirror(mirror, u2)
	if st := s.Stats(); st.Epoch != 1 {
		t.Fatalf("retry epoch = %d, want 1 (one swap for both batches)", st.Epoch)
	}
	want := freshSolve(t, mirror, MethodLinBP, mirror.Explicit, durTight...)
	if d := maxAbsDiff(res.Beliefs, want); d > 1e-12 {
		t.Errorf("post-retry fixpoint diverges by %g (pending delta lost?)", d)
	}
}

// TestPrepareRejectsNonFiniteInputs covers the typed-error satellite:
// NaN/Inf edge weights and explicit beliefs must fail validation with
// ErrNonFinite instead of poisoning the kernel.
func TestPrepareRejectsNonFiniteInputs(t *testing.T) {
	p := randomProblem(t, 20, 40, 3, 0.05, 43)
	p.Graph.AddEdge(1, 2, math.NaN()) // slips past AddEdge's w <= 0 panic
	if _, err := Prepare(p, MethodLinBP); !errors.Is(err, errs.ErrNonFinite) {
		t.Fatalf("NaN edge weight: Prepare err = %v, want ErrNonFinite", err)
	}

	p2 := randomProblem(t, 20, 40, 3, 0.05, 43)
	p2.Graph.AddEdge(1, 2, math.Inf(1))
	if _, err := Prepare(p2, MethodLinBP); !errors.Is(err, errs.ErrNonFinite) {
		t.Fatalf("+Inf edge weight: Prepare err = %v, want ErrNonFinite", err)
	}

	p3 := randomProblem(t, 20, 40, 3, 0.05, 43)
	p3.Explicit.Set(4, []float64{math.NaN(), 0, 0})
	if _, err := Prepare(p3, MethodLinBP); !errors.Is(err, errs.ErrNonFinite) {
		t.Fatalf("NaN explicit belief: Prepare err = %v, want ErrNonFinite", err)
	}
}

// TestKernelDivergenceSurfacesNonFinite pins the convergence-check
// satellite: an update operator far past the spectral bound overflows
// the iteration, and the solve must fail fast with ErrNonFinite
// rather than spin to MaxIter on NaN deltas.
func TestKernelDivergenceSurfacesNonFinite(t *testing.T) {
	p := randomProblem(t, 30, 80, 3, 1e200, 47)
	s, err := Prepare(p, MethodLinBP, WithMaxIter(5000))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	dst := beliefs.New(30, 3)
	_, err = s.SolveInto(context.Background(), dst, p.Explicit)
	if !errors.Is(err, errs.ErrNonFinite) {
		t.Fatalf("diverging solve err = %v, want ErrNonFinite", err)
	}
	if st := s.Stats(); st.NotConverged == 0 {
		t.Errorf("divergence not counted as NotConverged: %+v", st)
	}
}
