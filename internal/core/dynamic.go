// The epoch-versioned dynamic serving plane. Prepare wraps every
// method's immutable prepared state (a snapshot) in a dynSolver, which
// adds the Update path of the paper's incremental-maintenance story
// (Section 8; SBP Algorithms 3–4) on top of the existing serving
// surface:
//
//   - Deltas accumulate in a mutable overlay over the prepared,
//     layout-ordered CSR (sparse.Overlay: weight additions plus
//     tombstones). Committing a topology update materializes the merged
//     adjacency by one merged-row pass — no COO rebuild, no reordering
//     recompute, no partition recompute — and builds a fresh snapshot
//     on it, reusing the prepare-time permutation and partition
//     boundaries.
//   - The snapshot swap is RCU-style: the current-epoch pointer is
//     swapped atomically, solves already in flight drain on the old
//     snapshot (its Close waits for them), and new solves land on the
//     new one. A reader that loses the race — loads the old pointer
//     just as it retires — observes the old snapshot's ErrClosed and
//     transparently retries on the current epoch, so no caller ever
//     sees a torn graph or a spurious closed error.
//   - Workspaces are pooled per epoch (each snapshot owns its
//     statePools); retiring an epoch closes its pools and folds its
//     counters into the solver-lifetime accumulator, and the kernel's
//     package-level workspace pool recycles the large buffers across
//     epochs.
//   - Update re-solves the maintained problem warm-started from the
//     previous fixpoint for the kernel-backed methods (the fixpoint is
//     unique under the convergence criterion, so warm starting changes
//     the iteration count, never the answer). BP and SBP re-solve cold.
//   - When the overlay's delta-cell count crosses
//     UpdatePolicy.CompactionRatio × base nnz, the commit becomes a
//     compaction rebuild: the reordering strategy and the partitioner
//     replay on the merged graph and the overlay rebases onto the
//     fresh layout.
//
// Convergence caveat: εH (including a WithAutoEpsilonH derivation) is
// fixed at preparation time. Edge insertions raise the spectral radius
// of the update operator, so a long-running insert-heavy stream should
// either keep a safety margin in εH or watch for ErrNotConverged from
// Update — the same contract the paper's Section 8 sketch implies.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/durable"
	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/sparse"
)

// Update is one delta batch for Solver.Update. Within a batch the
// additions apply before the removals (so a pair both added and
// removed ends up absent); the belief rows are independent of the
// topology delta. The whole batch commits as one epoch.
type Update struct {
	// AddEdges inserts undirected weighted edges (weights must be
	// positive, endpoints within the prepared node range — the node set
	// is fixed at preparation time).
	AddEdges []graph.Edge
	// RemoveEdges deletes all stored edges between each listed endpoint
	// pair (parallel edges go together; weights are ignored and absent
	// pairs are skipped).
	RemoveEdges []graph.Edge
	// SetExplicit installs the non-zero rows of the given n×k residual
	// matrix as new or replacement explicit beliefs of the maintained
	// problem — the belief half of the update stream. Zero rows leave
	// the node's maintained belief untouched (clearing a label is not
	// representable, matching SBP's Algorithm 3 surface).
	SetExplicit *beliefs.Residual
}

// UpdatePolicy tunes the dynamic plane; see WithUpdatePolicy. The zero
// value selects the defaults.
type UpdatePolicy struct {
	// CompactionRatio is the overlay-growth threshold that triggers a
	// compaction rebuild: when the accumulated delta cells exceed
	// CompactionRatio × base nnz, the commit replays the reordering
	// strategy and the partitioner on the merged graph instead of
	// merging over the stale layout. <= 0 selects
	// DefaultCompactionRatio; a very small positive value forces a
	// rebuild on every topology update (the differential tests use
	// this), a huge one disables compaction.
	CompactionRatio float64
	// DisableWarmStart makes Update re-solve from the Bˆ = 0 cold start
	// instead of the previous fixpoint (for benchmarking the warm-start
	// payoff; the served answer is the same either way).
	DisableWarmStart bool
}

// DefaultCompactionRatio is the default overlay-growth threshold: a
// quarter of the base's stored entries. Below it the stale layout's
// locality loss is marginal; above it the O(nnz) relayout amortizes.
const DefaultCompactionRatio = 0.25

// WithUpdatePolicy sets the dynamic plane's compaction and warm-start
// policy for Update; solvers that never see an Update ignore it.
func WithUpdatePolicy(p UpdatePolicy) Option { return func(c *config) { c.policy = p } }

// epochState is one immutable serving epoch — the unit the RCU pointer
// swaps.
type epochState struct {
	snap snapshot
}

// dynSolver is the epoch-versioned Solver every Prepare returns. The
// read path (Solve/SolveInto/SolveBatch/Stats) costs one atomic load
// over the wrapped snapshot; the update path serializes under mu.
type dynSolver struct {
	method Method
	cfg    config
	ho     *dense.Matrix
	n, k   int
	eps    float64

	// cur is the published epoch; the epoch-atomics lint rule pins
	// every touch to Load/Store/Swap/CompareAndSwap.
	//
	//lsbp:atomic
	cur atomic.Pointer[epochState]

	// Everything below mu is the updater's private state: the
	// caller-order graph and maintained beliefs (lazily cloned on the
	// first Update so purely static solvers pay nothing), the overlay
	// and layout the kernel snapshots rebuild from, and the compaction
	// bookkeeping.
	mu         sync.Mutex
	closed     bool
	srcGraph   *graph.Graph
	srcExp     *beliefs.Residual
	g          *graph.Graph      // current caller-order graph (private clone)
	exp        *beliefs.Residual // maintained explicit beliefs
	last       *beliefs.Residual // previous fixpoint (warm-start seed)
	layoutA    *sparse.CSR       // prepare-time layout CSR (kernel methods)
	overlay    *sparse.Overlay   // delta overlay (kernel methods)
	perm       order.Permutation
	partStarts []int
	info       solverInfo
	baseNNZ    int
	deltaCells int

	// pendingSwap records a built-but-unswapped commit (the Update's
	// context was cancelled between materialization and the epoch
	// swap); the next Update retries the swap before anything else.
	pendingSwap bool
	// lastConverged reports that last is the converged fixpoint of the
	// exactly-current epoch — the validity gate of the residual plane's
	// localized touched-row seeding. It is pessimistically cleared at
	// the top of every Update and restored only after a successful
	// re-solve, so any early exit (WAL failure, aborted swap,
	// cancellation) forces the next re-solve to seed fully.
	lastConverged bool
	// epsRederived latches that a compaction re-derived the auto εH to
	// a different value — the fixpoint moved globally, so the next
	// re-solve must not trust a localized seed. Consumed by Update.
	epsRederived bool
	// tlist/tmark are the reusable touched-row accumulator of
	// collectTouched (caller-order ids, deduplicated per batch).
	tlist []int
	tmark []bool
	// dur is the durable half (snapshot + WAL); nil without
	// WithDurability.
	dur *durability

	// Stats counters, read without mu by Stats().
	//
	//lsbp:atomic
	epochN, updates, rebuilds, overlayNNZ atomic.Int64

	// degraded latches true when the durable plane breaks stickily
	// (ErrWALBroken from a WAL append): the solver keeps serving reads
	// from the last committed state while Stats advertises the
	// condition so a serving front end can flip to read-only mode.
	//
	//lsbp:atomic
	degraded atomic.Bool

	statsMu sync.Mutex
	retired SolverStats // folded counters of retired epochs
}

// newDynSolver wraps the freshly prepared snapshot. The layout fields
// are lifted off the concrete snapshot types so rebuilds can reuse
// them without re-deriving anything from the problem.
func newDynSolver(p *Problem, m Method, cfg config, inner snapshot) *dynSolver {
	d := &dynSolver{method: m, cfg: cfg, ho: p.Ho, srcGraph: p.Graph, srcExp: p.Explicit}
	switch s := inner.(type) {
	case *linbpSolver:
		d.info, d.perm, d.partStarts, d.layoutA = s.solverInfo, s.perm, s.partStarts, s.a
	case *fabpSolver:
		d.info, d.perm, d.partStarts, d.layoutA = s.solverInfo, s.perm, s.partStarts, s.a
	case *bpSolver:
		d.info, d.perm = s.solverInfo, s.perm
	case *sbpSolver:
		d.info, d.perm = s.solverInfo, s.perm
	}
	d.n, d.k, d.eps = d.info.n, d.info.k, d.info.eps
	d.cur.Store(&epochState{snap: inner})
	return d
}

// Solve, SolveInto, and SolveBatch delegate to the current epoch's
// snapshot. The retry handles the RCU race: a snapshot that retired
// between the pointer load and the solve's lock acquisition answers
// ErrClosed, and as long as the epoch pointer has moved on the call
// simply re-lands on the current snapshot. When the pointer has not
// moved the ErrClosed is real (the solver itself was closed).
func (d *dynSolver) Solve(ctx context.Context, e *beliefs.Residual) (*Result, error) {
	for {
		ep := d.cur.Load()
		res, err := ep.snap.Solve(ctx, e)
		if err != nil && errors.Is(err, errs.ErrClosed) && d.cur.Load() != ep {
			continue
		}
		return res, err
	}
}

func (d *dynSolver) SolveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error) {
	for {
		ep := d.cur.Load()
		info, err := ep.snap.SolveInto(ctx, dst, e)
		if err != nil && errors.Is(err, errs.ErrClosed) && d.cur.Load() != ep {
			continue
		}
		return info, err
	}
}

func (d *dynSolver) SolveBatch(ctx context.Context, reqs []Request) []Response {
	for {
		ep := d.cur.Load()
		resp := ep.snap.SolveBatch(ctx, reqs)
		// A closed snapshot fails every request with ErrClosed, so the
		// first response tells the whole story.
		if len(resp) > 0 && errors.Is(resp[0].Err, errs.ErrClosed) && d.cur.Load() != ep {
			continue
		}
		return resp
	}
}

func (d *dynSolver) Stats() SolverStats {
	// The epoch pointer and the retired accumulator are read under one
	// lock so a concurrent swap (which folds the retiring epoch's
	// counters in the same critical section) can never make the totals
	// dip: a reader sees either the old epoch with the accumulator
	// before the fold, or the new epoch with the fold applied.
	d.statsMu.Lock()
	ep := d.cur.Load()
	r := d.retired
	d.statsMu.Unlock()
	st := ep.snap.Stats()
	st.Solves += r.Solves
	st.Batches += r.Batches
	st.BatchRequests += r.BatchRequests
	st.Iterations += r.Iterations
	st.NotConverged += r.NotConverged
	st.Cancelled += r.Cancelled
	st.ResidualRowsRelaxed += r.ResidualRowsRelaxed
	if r.ResidualQueuePeak > st.ResidualQueuePeak {
		st.ResidualQueuePeak = r.ResidualQueuePeak
	}
	st.Epoch = d.epochN.Load()
	st.Updates = d.updates.Load()
	st.Rebuilds = d.rebuilds.Load()
	st.OverlayNNZ = d.overlayNNZ.Load()
	st.Degraded = d.degraded.Load()
	return st
}

// foldRetired accumulates counters into the retired accumulator.
func (d *dynSolver) foldRetired(st SolverStats) {
	d.statsMu.Lock()
	d.foldRetiredLocked(st)
	d.statsMu.Unlock()
}

func (d *dynSolver) foldRetiredLocked(st SolverStats) {
	d.retired.Solves += st.Solves
	d.retired.Batches += st.Batches
	d.retired.BatchRequests += st.BatchRequests
	d.retired.Iterations += st.Iterations
	d.retired.NotConverged += st.NotConverged
	d.retired.Cancelled += st.Cancelled
	d.retired.ResidualRowsRelaxed += st.ResidualRowsRelaxed
	// The queue peak is a lifetime maximum, not a sum.
	if st.ResidualQueuePeak > d.retired.ResidualQueuePeak {
		d.retired.ResidualQueuePeak = st.ResidualQueuePeak
	}
}

// statsDelta returns the counter fields of post minus pre — the bumps
// in-flight solves landed on a retiring epoch while it drained.
func statsDelta(post, pre SolverStats) SolverStats {
	return SolverStats{
		Solves:        post.Solves - pre.Solves,
		Batches:       post.Batches - pre.Batches,
		BatchRequests: post.BatchRequests - pre.BatchRequests,
		Iterations:    post.Iterations - pre.Iterations,
		NotConverged:  post.NotConverged - pre.NotConverged,
		Cancelled:     post.Cancelled - pre.Cancelled,
		// The per-snapshot peak is monotone, so the drained snapshot's
		// final peak is the right value to fold (max, not difference).
		ResidualRowsRelaxed: post.ResidualRowsRelaxed - pre.ResidualRowsRelaxed,
		ResidualQueuePeak:   post.ResidualQueuePeak,
	}
}

// Close drains and closes the current epoch after any in-flight Update
// (including its compaction rebuild) finishes; retired epochs were
// already closed at their swap. Idempotent.
func (d *dynSolver) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.cur.Load().snap.Close()
	if d.dur != nil {
		// After the epoch drains nothing reads the mapped snapshot
		// arrays; flush and release the durable half last.
		if derr := d.dur.close(); err == nil {
			err = derr
		}
	}
	return err
}

// Update applies the delta batch and re-solves the maintained problem,
// returning the refreshed result (warm-started from the previous
// fixpoint for LinBP/LinBP*/FABP). An empty Update{} just (re-)solves
// the maintained problem — the idiom for obtaining the initial
// fixpoint after Prepare. Updates serialize; readers keep serving the
// previous epoch until the commit swaps the snapshot. On a context
// error the delta is already committed (readers see it) and only the
// returned re-solve was aborted; the next Update re-solves from the
// last stored fixpoint.
func (d *dynSolver) Update(ctx context.Context, u Update) (*Result, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("core: %v solver: %w", d.method, errs.ErrClosed)
	}
	if err := d.validateUpdate(u); err != nil {
		return nil, err
	}
	// Write-ahead: the batch is durably logged before any in-memory
	// mutation, so a crash recovers either the pre-batch or post-batch
	// state — never a torn middle. A failed append commits nothing.
	if d.dur != nil {
		if err := d.appendWALLocked(u); err != nil {
			if errors.Is(err, durable.ErrWALBroken) {
				// The WAL is stickily unusable: no further write can
				// commit durably. Latch degraded so Stats (and any
				// front end polling it) reflects read-only reality.
				d.degraded.Store(true)
			}
			return nil, err
		}
	}
	d.initDynState()
	// The localized touched-row seed is only sound when the previous
	// fixpoint converged on exactly the previous epoch and this batch is
	// the whole epoch delta — a pending (retried) swap folds an earlier
	// batch into this commit, so its rows would be missed. Capture the
	// gate before mutating, clear it pessimistically, and restore it
	// only after a successful re-solve.
	seedable := d.lastConverged && !d.pendingSwap && d.last != nil && !d.cfg.policy.DisableWarmStart
	d.lastConverged = false
	touched := d.collectTouched(u)
	if u.SetExplicit != nil {
		for _, v := range u.SetExplicit.ExplicitNodes() {
			d.exp.Set(v, u.SetExplicit.Row(v))
		}
	}
	if d.applyTopologyLocked(u) || d.pendingSwap {
		if err := d.swapSnapshotLocked(ctx); err != nil {
			return nil, err
		}
		if d.epsRederived {
			// The compaction moved the coupling scale: the old fixpoint
			// is globally stale, so this re-solve seeds fully.
			seedable = false
			d.epsRederived = false
		}
	}
	d.updates.Add(1)
	res, err := d.resolveLocked(ctx, seedable, touched)
	if res != nil && res.Beliefs != nil {
		d.last = res.Beliefs.Clone()
		d.lastConverged = res.Converged
	}
	return res, err
}

// collectTouched gathers the caller-order rows whose residuals this
// batch perturbs — the endpoints of every added or removed edge (their
// adjacency rows and degrees change) plus the rows with replacement
// explicit beliefs — deduplicated through the reusable mark array. The
// returned slice aliases d.tlist and is valid until the next Update;
// an empty (non-nil) result means a no-change batch, which the
// residual plane re-solves for free.
func (d *dynSolver) collectTouched(u Update) []int {
	if d.tmark == nil {
		d.tmark = make([]bool, d.n)
	}
	t := d.tlist[:0]
	add := func(i int) {
		if !d.tmark[i] {
			d.tmark[i] = true
			t = append(t, i)
		}
	}
	for _, e := range u.AddEdges {
		add(e.S)
		add(e.T)
	}
	for _, e := range u.RemoveEdges {
		add(e.S)
		add(e.T)
	}
	if u.SetExplicit != nil {
		for _, v := range u.SetExplicit.ExplicitNodes() {
			add(v)
		}
	}
	for _, i := range t {
		d.tmark[i] = false
	}
	d.tlist = t
	return t
}

// applyTopologyLocked folds the batch's edge delta into the
// maintained graph and overlay, reporting whether the structure
// actually changed. Removals of absent pairs are no-ops; a batch with
// no net structural change skips the snapshot rebuild entirely (an
// idempotent delete stream must not pay an O(nnz) epoch per call).
func (d *dynSolver) applyTopologyLocked(u Update) bool {
	if len(u.AddEdges) == 0 && len(u.RemoveEdges) == 0 {
		return false
	}
	for _, e := range u.AddEdges {
		d.g.AddEdge(e.S, e.T, e.W)
	}
	removed := d.g.RemoveEdges(u.RemoveEdges)
	changed := len(u.AddEdges) > 0 || removed > 0
	if d.overlay != nil {
		for _, e := range u.AddEdges {
			i, j := d.pm(e.S), d.pm(e.T)
			d.overlay.Add(i, j, e.W)
			if i != j {
				d.overlay.Add(j, i, e.W)
			}
		}
		for _, e := range u.RemoveEdges {
			i, j := d.pm(e.S), d.pm(e.T)
			d.overlay.Remove(i, j)
			if i != j {
				d.overlay.Remove(j, i)
			}
		}
		d.deltaCells = d.overlay.DeltaNNZ()
	} else if changed {
		d.deltaCells += 2*len(u.AddEdges) + removed
	}
	return changed
}

// pm maps a caller node id into the current layout order.
func (d *dynSolver) pm(i int) int {
	if d.perm == nil {
		return i
	}
	return d.perm[i]
}

func (d *dynSolver) validateUpdate(u Update) error {
	for _, e := range u.AddEdges {
		if e.S < 0 || e.S >= d.n || e.T < 0 || e.T >= d.n {
			return fmt.Errorf("core: update edge (%d,%d) out of range n=%d: %w", e.S, e.T, d.n, errs.ErrDimensionMismatch)
		}
		// !(W > 0) also rejects NaN, which e.W <= 0 would let through —
		// and a NaN weight poisons the maintained graph permanently.
		if !(e.W > 0) || math.IsInf(e.W, 1) {
			return fmt.Errorf("core: update edge (%d,%d) has invalid weight %v (want finite > 0): %w", e.S, e.T, e.W, errs.ErrInvalidInput)
		}
	}
	for _, e := range u.RemoveEdges {
		if e.S < 0 || e.S >= d.n || e.T < 0 || e.T >= d.n {
			return fmt.Errorf("core: update edge (%d,%d) out of range n=%d: %w", e.S, e.T, d.n, errs.ErrDimensionMismatch)
		}
	}
	if u.SetExplicit != nil {
		if u.SetExplicit.N() != d.n || u.SetExplicit.K() != d.k {
			return fmt.Errorf("core: update belief matrix %dx%d does not match n=%d k=%d: %w",
				u.SetExplicit.N(), u.SetExplicit.K(), d.n, d.k, errs.ErrDimensionMismatch)
		}
		if err := u.SetExplicit.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// initDynState lazily clones the mutable dynamic state on the first
// Update, so a solver that is never updated shares the caller's graph
// and pays no copy.
func (d *dynSolver) initDynState() {
	if d.g != nil {
		return
	}
	d.g = d.srcGraph.Clone()
	d.exp = d.srcExp.Clone()
	switch d.method {
	case MethodLinBP, MethodLinBPStar, MethodFABP:
		d.overlay = sparse.NewOverlay(d.layoutA)
		d.baseNNZ = d.layoutA.NNZ()
	default:
		d.baseNNZ = d.srcGraph.Adjacency().NNZ()
	}
}

// compactionRatio resolves the policy threshold.
func (d *dynSolver) compactionRatio() float64 {
	if d.cfg.policy.CompactionRatio > 0 {
		return d.cfg.policy.CompactionRatio
	}
	return DefaultCompactionRatio
}

// swapSnapshotLocked commits the accumulated topology delta: build the
// next epoch's snapshot (merged overlay on the fast path, a full
// layout replay when the compaction threshold is crossed), swap it in,
// and retire the old epoch — its Close drains the in-flight solves,
// after which its counters fold into the lifetime accumulator. The
// context is re-checked between materialization and the pointer swap:
// a cancelled Update returns without a half-committed epoch (the
// delta stays accumulated and the next Update retries the swap).
func (d *dynSolver) swapSnapshotLocked(ctx context.Context) error {
	kernelMethod := d.overlay != nil
	compact := float64(d.deltaCells) >= d.compactionRatio()*float64(d.baseNNZ)
	info := d.info
	var snap snapshot
	var err error
	switch {
	case compact:
		// Replay the layout optimizer and (for the kernel methods) the
		// partitioner on the merged graph, exactly as Prepare would.
		a := d.g.Adjacency()
		if d.cfg.autoEps && d.method != MethodSBP {
			// Compaction already replays the layout on the merged graph;
			// re-derive the auto εH there too, so a long insert-heavy
			// stream recovers the spectral safety margin instead of
			// serving the stale prepare-time scale. The new epoch's εH
			// is what Stats().EpsilonH reports from here on.
			eps, eerr := autoEpsilon(d.g, d.ho, d.method == MethodLinBP || d.method == MethodBP || d.method == MethodFABP)
			if eerr != nil {
				return fmt.Errorf("core: compaction auto-εH re-derivation: %w", eerr)
			}
			if eps != d.eps {
				d.eps = eps
				d.epsRederived = true
			}
			info.eps = d.eps
		}
		perm, chosen := order.Compute(d.cfg.reorder, a)
		info.ordering = chosen
		info.bandBefore = order.Bandwidth(a, nil)
		info.bandAfter = info.bandBefore
		if perm != nil {
			info.bandAfter = order.Bandwidth(a, perm)
		}
		d.perm = perm
		if kernelMethod {
			la := a
			if perm != nil {
				la = a.Permute(perm)
			}
			info.partitions, info.cutEdges, info.imbalance = 0, 0, 0
			d.partStarts = resolvePartition(d.cfg.partitions, d.cfg.workers, la, &info)
			d.overlay.Rebase(la)
			d.layoutA = la
			d.baseNNZ = la.NNZ()
			snap, err = d.buildKernelSnapshot(la, info)
		} else {
			d.baseNNZ = a.NNZ()
			snap, err = d.buildGraphSnapshot(info)
		}
		if err == nil {
			d.deltaCells = 0
			d.rebuilds.Add(1)
		}
	case kernelMethod:
		merged := d.overlay.Merge()
		if d.partStarts != nil {
			// Keep the partition diagnostics honest while the structure
			// drifts under the fixed prepare-time boundaries.
			st := order.StatsForStarts(merged, d.partStarts)
			info.cutEdges = st.CutEdges
			info.imbalance = st.Imbalance
		}
		snap, err = d.buildKernelSnapshot(merged, info)
	default:
		snap, err = d.buildGraphSnapshot(info)
	}
	if err != nil {
		// The old epoch keeps serving; the delta stays accumulated for
		// the next commit attempt.
		return err
	}
	if cerr := ctx.Err(); cerr != nil {
		// Cancelled between materialization and the swap: discard the
		// built snapshot and leave the delta pending — readers keep the
		// previous epoch, and the next Update retries the commit.
		snap.Close()
		d.pendingSwap = true
		return fmt.Errorf("core: update commit aborted before epoch swap: %w", cerr)
	}
	d.pendingSwap = false
	d.info = info
	old := d.cur.Load()
	// Fold the retiring epoch's counters in the same critical section
	// as the pointer swap (see Stats), so the lifetime totals never dip
	// while the old epoch drains; the bumps that land during the drain
	// are folded as a delta once Close returns.
	pre := old.snap.Stats()
	d.statsMu.Lock()
	d.cur.Store(&epochState{snap: snap})
	d.foldRetiredLocked(pre)
	d.statsMu.Unlock()
	d.epochN.Add(1)
	d.overlayNNZ.Store(int64(d.deltaCells))
	old.snap.Close()
	d.foldRetired(statsDelta(old.snap.Stats(), pre))
	if compact && d.dur != nil {
		// A compaction rewrote the layout: publish a checkpoint and
		// rotate the log so recovery replays from the fresh base. The
		// in-memory commit above stands either way; a checkpoint error
		// only means recovery still replays the old log.
		if cerr := d.checkpointLocked(); cerr != nil {
			return fmt.Errorf("core: compaction checkpoint: %w", cerr)
		}
	}
	return nil
}

// buildKernelSnapshot prepares a kernel-backed snapshot over the given
// layout-ordered adjacency, reusing the current permutation and
// partition boundaries. Degrees are re-derived from the matrix itself
// (one O(nnz) pass), so LinBP's echo term always matches the merged
// weights.
func (d *dynSolver) buildKernelSnapshot(a *sparse.CSR, info solverInfo) (snapshot, error) {
	lay := kernelLayout{a: a, perm: d.perm, partStarts: d.partStarts}
	switch d.method {
	case MethodFABP:
		lay.d = a.RowSumsSquared()
		return newFABPSolverOn(d.eps*d.ho.At(0, 0), info, d.cfg, lay)
	case MethodLinBP:
		lay.d = a.RowSumsSquared()
	}
	return newLinBPSolverOn(coupling.Scale(d.ho, d.eps), info, d.cfg, lay)
}

// buildGraphSnapshot prepares a message-passing snapshot (BP, SBP) on a
// private clone of the current graph — private so later updates to d.g
// never race the snapshot's readers.
func (d *dynSolver) buildGraphSnapshot(info solverInfo) (snapshot, error) {
	g := d.g.Clone()
	if d.method == MethodBP {
		return newBPSolverOn(g, d.ho, info, d.cfg, d.perm)
	}
	return newSBPSolverOn(g, d.ho, info, d.perm)
}

// resolveLocked re-solves the maintained problem on the current epoch:
// warm-started from the previous fixpoint where the method supports it,
// cold otherwise. Under a residual schedule the kernel methods route
// through the residual plane: seedable localized solves seed from
// exactly the touched rows, everything else seeds fully (always under
// ScheduleResidual, only when localized under ScheduleAuto — a full
// residual seed costs a round and converges no faster than warm
// rounds, so Auto prefers rounds there).
func (d *dynSolver) resolveLocked(ctx context.Context, seedable bool, touched []int) (*Result, error) {
	ep := d.cur.Load()
	var start *beliefs.Residual
	if !d.cfg.policy.DisableWarmStart {
		start = d.last
	}
	if ss, ok := ep.snap.(seededSolver); ok && d.cfg.schedule != ScheduleRounds {
		if !seedable || start == nil {
			touched = nil
		}
		if touched != nil || d.cfg.schedule == ScheduleResidual {
			dst := beliefs.New(d.n, d.k)
			info, err := ss.SolveSeeded(ctx, dst, d.exp, start, touched)
			if err != nil && !isNotConverged(err) {
				return nil, err
			}
			res := &Result{
				Method: d.method, Beliefs: dst,
				Iterations: info.Iterations, Converged: info.Converged, Delta: info.Delta,
			}
			res.Top = dst.TopAssignment()
			return res, err
		}
	}
	if ws, ok := ep.snap.(warmStarter); ok {
		dst := beliefs.New(d.n, d.k)
		info, err := ws.SolveFrom(ctx, dst, d.exp, start)
		if err != nil && !isNotConverged(err) {
			return nil, err
		}
		res := &Result{
			Method: d.method, Beliefs: dst,
			Iterations: info.Iterations, Converged: info.Converged, Delta: info.Delta,
		}
		res.Top = dst.TopAssignment()
		return res, err
	}
	return ep.snap.Solve(ctx, d.exp)
}
