package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// freshSolve prepares a throwaway solver on p and returns the beliefs
// for e — the from-scratch reference every dynamic epoch must match.
func freshSolve(t testing.TB, p *Problem, m Method, e *beliefs.Residual, opts ...Option) *beliefs.Residual {
	t.Helper()
	s, err := Prepare(p, m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	dst := beliefs.New(p.Graph.N(), p.K())
	if _, err := s.SolveInto(context.Background(), dst, e); err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatal(err)
	}
	return dst
}

// TestDynamicUpdateMatchesFreshPrepare walks a solver through edge
// inserts, deletes, and relabels, comparing every epoch against a
// from-scratch Prepare on the mirrored graph.
func TestDynamicUpdateMatchesFreshPrepare(t *testing.T) {
	const tol = 1e-12
	tight := []Option{WithMaxIter(400), WithTol(1e-13)}
	for _, m := range []Method{MethodLinBP, MethodLinBPStar} {
		p := randomProblem(t, 80, 160, 3, 0.05, 11)
		mirror := &Problem{Graph: p.Graph.Clone(), Explicit: p.Explicit.Clone(), Ho: p.Ho, EpsilonH: p.EpsilonH}
		s, err := Prepare(p, m, tight...)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		ctx := context.Background()

		// Initial fixpoint via an empty update.
		res, err := s.Update(ctx, Update{})
		if err != nil {
			t.Fatalf("%v initial Update: %v", m, err)
		}
		if d := maxAbsDiff(res.Beliefs, freshSolve(t, mirror, m, mirror.Explicit, tight...)); d > tol {
			t.Errorf("%v epoch 0 diverges by %g", m, d)
		}

		batches := []Update{
			{AddEdges: []graph.Edge{{S: 0, T: 41, W: 1}, {S: 7, T: 63, W: 1}, {S: 5, T: 5, W: 1}}},
			{RemoveEdges: []graph.Edge{{S: 0, T: 41}, {S: 7, T: 63}}},
			{AddEdges: []graph.Edge{{S: 0, T: 41, W: 2}},
				SetExplicit: labelMatrix(p.Graph.N(), p.K(), map[int]int{3: 1, 41: 2})},
		}
		for bi, u := range batches {
			res, err := s.Update(ctx, u)
			if err != nil {
				t.Fatalf("%v batch %d: %v", m, bi, err)
			}
			for _, e := range u.AddEdges {
				mirror.Graph.AddEdge(e.S, e.T, e.W)
			}
			mirror.Graph.RemoveEdges(u.RemoveEdges)
			if u.SetExplicit != nil {
				for _, v := range u.SetExplicit.ExplicitNodes() {
					mirror.Explicit.Set(v, u.SetExplicit.Row(v))
				}
			}
			want := freshSolve(t, mirror, m, mirror.Explicit, tight...)
			if d := maxAbsDiff(res.Beliefs, want); d > tol {
				t.Errorf("%v batch %d: warm Update result diverges by %g", m, bi, d)
			}
			// The serving path must answer on the updated snapshot too.
			dst := beliefs.New(p.Graph.N(), p.K())
			if _, err := s.SolveInto(ctx, dst, mirror.Explicit); err != nil && !errors.Is(err, ErrNotConverged) {
				t.Fatalf("%v batch %d SolveInto: %v", m, bi, err)
			}
			if d := maxAbsDiff(dst, want); d > tol {
				t.Errorf("%v batch %d: cold serve diverges by %g", m, bi, d)
			}
		}
		st := s.Stats()
		if st.Epoch != 3 || st.Updates != 4 {
			t.Errorf("%v stats: epoch=%d updates=%d, want 3/4", m, st.Epoch, st.Updates)
		}
	}
}

// labelMatrix builds an n×k update matrix labeling the given nodes.
func labelMatrix(n, k int, labels map[int]int) *beliefs.Residual {
	en := beliefs.New(n, k)
	for v, c := range labels {
		en.Set(v, beliefs.LabelResidual(k, c, 0.1))
	}
	return en
}

// TestDynamicCompaction forces a rebuild on every topology update and
// checks that the layout replay keeps answers identical and the
// counters advance.
func TestDynamicCompaction(t *testing.T) {
	tight := []Option{WithMaxIter(400), WithTol(1e-13),
		WithReordering(ReorderRCM),
		WithUpdatePolicy(UpdatePolicy{CompactionRatio: 1e-12})}
	p := randomProblem(t, 70, 150, 2, 0.05, 13)
	mirror := &Problem{Graph: p.Graph.Clone(), Explicit: p.Explicit, Ho: p.Ho, EpsilonH: p.EpsilonH}
	s, err := Prepare(p, MethodLinBP, tight...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		u := Update{AddEdges: []graph.Edge{{S: i, T: 69 - i, W: 1}}}
		res, err := s.Update(ctx, u)
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		mirror.Graph.AddEdge(i, 69-i, 1)
		want := freshSolve(t, mirror, MethodLinBP, mirror.Explicit, tight...)
		if d := maxAbsDiff(res.Beliefs, want); d > 1e-12 {
			t.Errorf("update %d: compacted epoch diverges by %g", i, d)
		}
	}
	st := s.Stats()
	if st.Rebuilds != 3 {
		t.Errorf("Rebuilds = %d, want 3", st.Rebuilds)
	}
	if st.OverlayNNZ != 0 {
		t.Errorf("OverlayNNZ = %d, want 0 after compaction", st.OverlayNNZ)
	}
	if st.Ordering != ReorderRCM {
		t.Errorf("Ordering = %v, want rcm after relayout", st.Ordering)
	}
}

// TestDynamicUpdateFABP exercises the scalar collapse through the same
// dynamic path.
func TestDynamicUpdateFABP(t *testing.T) {
	tight := []Option{WithMaxIter(800), WithTol(1e-13)}
	p := randomProblem(t, 60, 120, 2, 0.05, 17)
	mirror := &Problem{Graph: p.Graph.Clone(), Explicit: p.Explicit, Ho: p.Ho, EpsilonH: p.EpsilonH}
	s, err := Prepare(p, MethodFABP, tight...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	u := Update{AddEdges: []graph.Edge{{S: 1, T: 50, W: 1}}, RemoveEdges: []graph.Edge{{S: 1, T: 50}}}
	// Add then remove in separate updates so both paths run.
	if _, err := s.Update(context.Background(), Update{AddEdges: u.AddEdges}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Update(context.Background(), Update{RemoveEdges: u.RemoveEdges})
	if err != nil {
		t.Fatal(err)
	}
	want := freshSolve(t, mirror, MethodFABP, mirror.Explicit, tight...)
	if d := maxAbsDiff(res.Beliefs, want); d > 1e-12 {
		t.Errorf("FABP add+remove round trip diverges by %g", d)
	}
}

// TestDynamicUpdateBPAndSBP covers the cold-rebuild methods.
func TestDynamicUpdateBPAndSBP(t *testing.T) {
	for _, m := range []Method{MethodBP, MethodSBP} {
		p := randomProblem(t, 60, 120, 3, 0.05, 19)
		mirror := &Problem{Graph: p.Graph.Clone(), Explicit: p.Explicit, Ho: p.Ho, EpsilonH: p.EpsilonH}
		s, err := Prepare(p, m)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Update(context.Background(), Update{AddEdges: []graph.Edge{{S: 2, T: 33, W: 1}}})
		if err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatalf("%v: %v", m, err)
		}
		mirror.Graph.AddEdge(2, 33, 1)
		want := freshSolve(t, mirror, m, mirror.Explicit)
		if d := maxAbsDiff(res.Beliefs, want); d > 1e-9 {
			t.Errorf("%v update diverges by %g", m, d)
		}
		if m == MethodSBP && res.SBP == nil {
			t.Error("SBP update lost the incremental state in Result.SBP")
		}
		s.Close()
	}
}

// TestDynamicWarmStartSavesIterations pins the headline property: after
// a small delta, the warm-started re-solve takes fewer rounds than a
// cold solve of the same problem.
func TestDynamicWarmStartSavesIterations(t *testing.T) {
	p := randomProblem(t, 400, 900, 3, 0.03, 23)
	opts := []Option{WithMaxIter(300), WithTol(1e-10)}
	warm, err := Prepare(p, MethodLinBP, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	cold, err := Prepare(p, MethodLinBP, append([]Option{WithUpdatePolicy(UpdatePolicy{DisableWarmStart: true})}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	ctx := context.Background()
	if _, err := warm.Update(ctx, Update{}); err != nil {
		t.Fatal(err)
	}
	if _, err := cold.Update(ctx, Update{}); err != nil {
		t.Fatal(err)
	}
	delta := Update{AddEdges: []graph.Edge{{S: 3, T: 200, W: 1}, {S: 9, T: 120, W: 1}}}
	wres, err := warm.Update(ctx, delta)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := cold.Update(ctx, delta)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Iterations >= cres.Iterations {
		t.Errorf("warm start took %d iterations, cold %d — no savings", wres.Iterations, cres.Iterations)
	}
	if d := maxAbsDiff(wres.Beliefs, cres.Beliefs); d > 1e-9 {
		t.Errorf("warm and cold fixpoints diverge by %g", d)
	}
}

// TestDynamicUpdateValidation pins the error taxonomy of the update
// surface.
func TestDynamicUpdateValidation(t *testing.T) {
	p := randomProblem(t, 20, 40, 2, 0.05, 29)
	s, err := Prepare(p, MethodLinBP)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []Update{
		{AddEdges: []graph.Edge{{S: -1, T: 0, W: 1}}},
		{AddEdges: []graph.Edge{{S: 0, T: 20, W: 1}}},
		{RemoveEdges: []graph.Edge{{S: 0, T: 99}}},
		{SetExplicit: beliefs.New(21, 2)},
	}
	for i, u := range cases {
		if _, err := s.Update(ctx, u); err == nil {
			t.Errorf("case %d: invalid update accepted", i)
		}
	}
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := s.Update(ctx, Update{AddEdges: []graph.Edge{{S: 0, T: 1, W: w}}}); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
	// A failed update must not have mutated the maintained state.
	if st := s.Stats(); st.Updates != 0 || st.Epoch != 0 {
		t.Errorf("failed updates committed: %+v", st)
	}
	s.Close()
	if _, err := s.Update(ctx, Update{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Update after Close: %v, want ErrClosed", err)
	}
	if s.Close() != nil {
		t.Error("second Close errored")
	}
}

// TestDynamicConcurrentUpdateStress is the torn-snapshot detector: 8
// reader goroutines hammer the solver with a fixed input while an
// updater commits topology updates (including forced compaction
// rebuilds) and finally closes the solver mid-traffic. Every
// successful read must match the fixpoint of SOME epoch — a result
// matching no epoch would mean a reader saw a half-swapped snapshot.
// Run under -race via make test-race.
func TestDynamicConcurrentUpdateStress(t *testing.T) {
	const (
		readers = 8
		updates = 12
	)
	p := randomProblem(t, 150, 300, 3, 0.05, 31)
	opts := []Option{WithMaxIter(300), WithTol(1e-13), WithPartitions(2),
		WithUpdatePolicy(UpdatePolicy{CompactionRatio: 0.01})}
	s, err := Prepare(p, MethodLinBP, opts...)
	if err != nil {
		t.Fatal(err)
	}
	e0 := p.Explicit
	mirror := &Problem{Graph: p.Graph.Clone(), Explicit: e0, Ho: p.Ho, EpsilonH: p.EpsilonH}

	// expected[i] = fresh fixpoint for e0 after i update batches; the
	// updater appends to it before committing each batch so readers can
	// always match against a published epoch.
	var expMu sync.Mutex
	expected := []*beliefs.Residual{freshSolve(t, mirror, MethodLinBP, e0, opts...)}
	snapshotExpected := func() []*beliefs.Residual {
		expMu.Lock()
		defer expMu.Unlock()
		return expected[:len(expected):len(expected)]
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	closed := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			dst := beliefs.New(p.Graph.N(), p.K())
			for it := 0; ; it++ {
				_, err := s.SolveInto(ctx, dst, e0)
				if errors.Is(err, ErrClosed) {
					select {
					case <-closed:
						return // legitimate: the updater closed the solver
					default:
						t.Errorf("reader %d: ErrClosed before Close", r)
						return
					}
				}
				if err != nil && !errors.Is(err, ErrNotConverged) {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				best := math.Inf(1)
				for _, want := range snapshotExpected() {
					if d := maxAbsDiff(dst, want); d < best {
						best = d
					}
				}
				if best > 1e-11 {
					t.Errorf("reader %d it %d: torn snapshot — best epoch distance %g", r, it, best)
					return
				}
			}
		}(r)
	}

	rng := xrand.New(99)
	for i := 0; i < updates; i++ {
		s2 := rng.Intn(p.Graph.N())
		t2 := rng.Intn(p.Graph.N())
		if s2 == t2 {
			t2 = (t2 + 1) % p.Graph.N()
		}
		u := Update{AddEdges: []graph.Edge{{S: s2, T: t2, W: 1}}}
		mirror.Graph.AddEdge(s2, t2, 1)
		want := freshSolve(t, mirror, MethodLinBP, e0, opts...)
		expMu.Lock()
		expected = append(expected, want)
		expMu.Unlock()
		if _, err := s.Update(ctx, u); err != nil {
			t.Errorf("update %d: %v", i, err)
		}
	}
	close(closed)
	if err := s.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	wg.Wait()
	st := s.Stats()
	if st.Epoch != updates {
		t.Errorf("Epoch = %d, want %d", st.Epoch, updates)
	}
	if st.Rebuilds == 0 {
		t.Error("stress never triggered a compaction rebuild")
	}
	if _, err := s.Solve(ctx, e0); !errors.Is(err, ErrClosed) {
		t.Errorf("Solve after Close: %v, want ErrClosed", err)
	}
}

// TestDynamicCloseDrainsPendingUpdate closes the solver while an
// updater (forced compaction rebuilds) and readers are mid-flight:
// Close must wait for the in-flight Update — including its rebuild —
// then drain both the retiring and current snapshots; the updater's
// next Update fails with ErrClosed.
func TestDynamicCloseDrainsPendingUpdate(t *testing.T) {
	p := randomProblem(t, 120, 240, 3, 0.05, 37)
	s, err := Prepare(p, MethodLinBP,
		WithUpdatePolicy(UpdatePolicy{CompactionRatio: 1e-12}), // rebuild every commit
		WithMaxIter(200), WithTol(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	started := make(chan struct{})
	wg.Add(1)
	go func() { // updater: commits rebuild-heavy updates until closed
		defer wg.Done()
		for i := 0; ; i++ {
			u := Update{AddEdges: []graph.Edge{{S: i % 120, T: (i*7 + 1) % 120, W: 1}}}
			if u.AddEdges[0].S == u.AddEdges[0].T {
				u.AddEdges[0].T = (u.AddEdges[0].T + 1) % 120
			}
			_, err := s.Update(ctx, u)
			if i == 0 {
				close(started)
			}
			if errors.Is(err, ErrClosed) {
				return
			}
			if err != nil && !errors.Is(err, ErrNotConverged) {
				t.Errorf("updater: %v", err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ { // readers ride through the swaps
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := beliefs.New(120, 3)
			for {
				if _, err := s.SolveInto(ctx, dst, p.Explicit); errors.Is(err, ErrClosed) {
					return
				}
			}
		}()
	}
	<-started
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if _, err := s.Update(ctx, Update{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Update after Close: %v", err)
	}
}

// TestDynamicStatsMonotonicThroughSwap polls the lifetime counters
// while epochs swap under solve traffic: the totals must never
// decrease (the retiring epoch's counters fold atomically with the
// pointer swap, not after the drain).
func TestDynamicStatsMonotonicThroughSwap(t *testing.T) {
	p := randomProblem(t, 100, 200, 3, 0.05, 41)
	s, err := Prepare(p, MethodLinBP, WithMaxIter(200), WithTol(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ { // solve traffic to give the counters volume
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := beliefs.New(100, 3)
			for {
				select {
				case <-done:
					return
				default:
					s.SolveInto(ctx, dst, p.Explicit)
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // stats poller: totals must be non-decreasing
		defer wg.Done()
		var lastSolves, lastIters int64
		for {
			st := s.Stats()
			if st.Solves < lastSolves || st.Iterations < lastIters {
				t.Errorf("stats dipped: solves %d->%d iters %d->%d",
					lastSolves, st.Solves, lastIters, st.Iterations)
				return
			}
			lastSolves, lastIters = st.Solves, st.Iterations
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	for i := 0; i < 10; i++ {
		u := Update{AddEdges: []graph.Edge{{S: i, T: 99 - i, W: 1}}}
		if _, err := s.Update(ctx, u); err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatalf("update %d: %v", i, err)
		}
	}
	close(done)
	wg.Wait()
}

// TestDynamicNoOpRemovalSkipsEpoch: removals of absent pairs must not
// pay a snapshot rebuild — the epoch counter stays put and the served
// answer is unchanged.
func TestDynamicNoOpRemovalSkipsEpoch(t *testing.T) {
	p := randomProblem(t, 40, 80, 2, 0.05, 43)
	s, err := Prepare(p, MethodLinBP)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Update(ctx, Update{RemoveEdges: []graph.Edge{{S: 0, T: 39}}}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Epoch != 0 || st.Updates != 1 {
		t.Errorf("no-op removal: epoch=%d updates=%d, want 0/1", st.Epoch, st.Updates)
	}
	// A real removal after the no-op still commits.
	victim := p.Graph.Edges()[0]
	if _, err := s.Update(ctx, Update{RemoveEdges: []graph.Edge{{S: victim.S, T: victim.T}}}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Epoch != 1 {
		t.Errorf("real removal: epoch=%d, want 1", st.Epoch)
	}
}
