package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/order"
)

// TestWithPartitionsEquivalence: the partition-parallel plane must
// reproduce the unpartitioned solve within 1e-12 for every kernel-backed
// method, partition count, and forced ordering (the partitioned and
// span planes run identical row kernels, so this is really bitwise; the
// 1e-12 bar matches the differential harness).
func TestWithPartitionsEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		k    int
		m    Method
	}{
		{"LinBP", 3, MethodLinBP},
		{"LinBPStar", 5, MethodLinBPStar},
		{"FABP", 2, MethodFABP},
	} {
		p := randomProblem(t, 350, 800, tc.k, 0.01, 41)
		base, err := Prepare(p, tc.m, WithMaxIter(30))
		if err != nil {
			t.Fatal(err)
		}
		want := beliefs.New(p.Graph.N(), tc.k)
		if _, err := base.SolveInto(ctx, want, p.Explicit); err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatal(err)
		}
		base.Close()
		for _, parts := range []int{1, 2, 5} {
			for _, r := range []Reordering{ReorderNone, ReorderRCM} {
				s, err := Prepare(p, tc.m, WithMaxIter(30), WithPartitions(parts), WithReordering(r))
				if err != nil {
					t.Fatalf("%s parts=%d %v: %v", tc.name, parts, r, err)
				}
				st := s.Stats()
				if st.Partitions != parts {
					t.Fatalf("%s parts=%d: Stats.Partitions = %d", tc.name, parts, st.Partitions)
				}
				if parts > 1 && st.CutEdges == 0 {
					t.Fatalf("%s parts=%d: CutEdges = 0 on a connected graph", tc.name, parts)
				}
				if st.Imbalance < 1 {
					t.Fatalf("%s parts=%d: Imbalance = %v", tc.name, parts, st.Imbalance)
				}
				got := beliefs.New(p.Graph.N(), tc.k)
				if _, err := s.SolveInto(ctx, got, p.Explicit); err != nil && !errors.Is(err, ErrNotConverged) {
					t.Fatalf("%s parts=%d %v: %v", tc.name, parts, r, err)
				}
				if d := maxAbsDiff(got, want); d > 1e-12 {
					t.Fatalf("%s parts=%d %v: partitioned vs baseline diff %g", tc.name, parts, r, d)
				}
				s.Close()
			}
		}
	}
}

// TestWithPartitionsSolveBatch runs the fused batch path on the
// partitioned plane across a chunk boundary and compares each response
// against the unpartitioned one-shot solve.
func TestWithPartitionsSolveBatch(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 300, 700, 3, 0.01, 43)
	base, err := Prepare(p, MethodLinBP, WithMaxIter(5), WithTol(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	s, err := Prepare(p, MethodLinBP, WithMaxIter(5), WithTol(-1), WithPartitions(3))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const nreq = 6 // 4 + 2: spans a chunk boundary
	reqs := make([]Request, nreq)
	for i := range reqs {
		e, _ := beliefs.Seed(300, 3, beliefs.SeedConfig{Fraction: 0.1, Seed: uint64(i + 11)})
		reqs[i] = Request{E: e, Dst: beliefs.New(300, 3)}
	}
	resps := s.SolveBatch(ctx, reqs)
	dst := beliefs.New(300, 3)
	for i, r := range resps {
		if r.Err != nil && !errors.Is(r.Err, ErrNotConverged) {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if _, err := base.SolveInto(ctx, dst, reqs[i].E); err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatal(err)
		}
		if d := maxAbsDiff(r.Beliefs, dst); d > 1e-12 {
			t.Fatalf("request %d: partitioned batch vs baseline diff %g", i, d)
		}
	}
}

// TestPartitionsAutoGate pins the auto heuristic: small cache-resident
// graphs keep the unpartitioned plane, and the default (no
// WithPartitions) stays off entirely.
func TestPartitionsAutoGate(t *testing.T) {
	p := randomProblem(t, 200, 400, 3, 0.01, 47)
	if p.Graph.N() >= order.AutoMinNodes {
		t.Fatal("test graph unexpectedly at or above the auto gate")
	}
	s, err := Prepare(p, MethodLinBP, WithPartitions(PartitionsAuto))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Partitions; got != 0 {
		t.Fatalf("auto partitions on a small graph = %d, want 0", got)
	}
	s.Close()
	s, err = Prepare(p, MethodLinBP)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Partitions; got != 0 {
		t.Fatalf("default partitions = %d, want 0", got)
	}
	s.Close()
}

// TestPartitionsIgnoredByBPAndSBP: the message-passing methods do not
// use the fused kernel; WithPartitions must be a no-op for them, not an
// error.
func TestPartitionsIgnoredByBPAndSBP(t *testing.T) {
	ctx := context.Background()
	p := randomProblem(t, 80, 160, 3, 0.01, 53)
	for _, m := range []Method{MethodBP, MethodSBP} {
		s, err := Prepare(p, m, WithPartitions(4))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got := s.Stats().Partitions; got != 0 {
			t.Fatalf("%v: Stats.Partitions = %d, want 0", m, got)
		}
		dst := beliefs.New(80, 3)
		if _, err := s.SolveInto(ctx, dst, p.Explicit); err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatalf("%v: %v", m, err)
		}
		s.Close()
	}
}
