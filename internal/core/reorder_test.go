package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/gen"
	"repro/internal/order"
)

// reorderProblem builds one instance per topology for the round-trip
// suite: a random graph and a Kronecker power, both big enough that the
// forced orderings actually shuffle, both small enough to stay fast.
func reorderProblems(t *testing.T, k int) map[string]*Problem {
	t.Helper()
	out := map[string]*Problem{}
	gr := gen.Random(400, 900, uint64(k))
	er, _ := beliefs.Seed(400, k, beliefs.SeedConfig{Fraction: 0.08, Seed: uint64(k + 1)})
	out["random"] = &Problem{Graph: gr, Explicit: er, Ho: coupling.Homophily(k, 0.8), EpsilonH: 0.01}
	gk := gen.Kronecker(5) // 243 nodes
	ek, _ := beliefs.Seed(gk.N(), k, beliefs.SeedConfig{Fraction: 0.08, Seed: uint64(k + 2)})
	out["kronecker"] = &Problem{Graph: gk, Explicit: ek, Ho: coupling.Homophily(k, 0.8), EpsilonH: 0.01}
	for name, p := range out {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	return out
}

// TestReorderingStatsAndSolvePath keeps the layout optimizer's
// contract pieces the differential harness does not cover: the chosen
// ordering and bandwidths land in Stats, and the allocating Solve path
// (top assignment built on un-permuted beliefs) agrees with the
// natural-order SolveInto. The full method × k × ordering equivalence
// matrix that used to live here moved to the reusable harness in
// internal/difftest (TestDifferentialMatrix).
func TestReorderingStatsAndSolvePath(t *testing.T) {
	for name, p := range reorderProblems(t, 3) {
		base, err := Prepare(p, MethodLinBP, WithReordering(ReorderNone), WithMaxIter(300))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := beliefs.New(p.Graph.N(), 3)
		if _, err := base.SolveInto(context.Background(), want, p.Explicit); err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatalf("%s natural: %v", name, err)
		}
		base.Close()
		for _, r := range []Reordering{ReorderRCM, ReorderDegree} {
			s, err := Prepare(p, MethodLinBP, WithReordering(r), WithMaxIter(300))
			if err != nil {
				t.Fatalf("%s %v: %v", name, r, err)
			}
			st := s.Stats()
			if st.Ordering != r {
				t.Fatalf("%s: Stats.Ordering = %v, want %v", name, st.Ordering, r)
			}
			if st.BandwidthBefore <= 0 {
				t.Fatalf("%s: BandwidthBefore = %d", name, st.BandwidthBefore)
			}
			res, err := s.Solve(context.Background(), p.Explicit)
			if err != nil && !errors.Is(err, ErrNotConverged) {
				t.Fatal(err)
			}
			if d := maxAbsDiff(res.Beliefs, want); d > 1e-12 {
				t.Fatalf("%s %v: Solve path diff %g", name, r, d)
			}
			s.Close()
		}
	}
}

// TestReorderingSolveBatch checks the fused batch path across chunk
// boundaries under a forced reordering: 7 requests at k=3 run as one
// 4-block chunk plus one 3-block chunk, and each response must match
// the per-request natural-order solve.
func TestReorderingSolveBatch(t *testing.T) {
	ps := reorderProblems(t, 3)
	for name, p := range ps {
		natural, err := Prepare(p, MethodLinBP, WithReordering(ReorderNone), WithMaxIter(5), WithTol(-1))
		if err != nil {
			t.Fatal(err)
		}
		reordered, err := Prepare(p, MethodLinBP, WithReordering(ReorderRCM), WithMaxIter(5), WithTol(-1))
		if err != nil {
			t.Fatal(err)
		}
		const nreq = 7 // 4 + 3: spans a chunk boundary
		reqs := make([]Request, nreq)
		for i := range reqs {
			e, _ := beliefs.Seed(p.Graph.N(), 3, beliefs.SeedConfig{Fraction: 0.1, Seed: uint64(i + 40)})
			reqs[i] = Request{E: e, Dst: beliefs.New(p.Graph.N(), 3)}
		}
		resps := reordered.SolveBatch(context.Background(), reqs)
		dst := beliefs.New(p.Graph.N(), 3)
		for i, r := range resps {
			if r.Err != nil && !errors.Is(r.Err, ErrNotConverged) {
				t.Fatalf("%s request %d: %v", name, i, r.Err)
			}
			if _, err := natural.SolveInto(context.Background(), dst, reqs[i].E); err != nil && !errors.Is(err, ErrNotConverged) {
				t.Fatal(err)
			}
			if d := maxAbsDiff(r.Beliefs, dst); d > 1e-12 {
				t.Fatalf("%s request %d: reordered batch vs natural solve diff %g", name, i, d)
			}
		}
		natural.Close()
		reordered.Close()
	}
}

// TestReorderingZeroAlloc extends the serving guarantee to reordered
// layouts: the permutation shuffles ride along in preallocated
// scratch, so SolveInto stays at zero steady-state allocations for the
// kernel-backed methods and SolveBatch stays at its one-allocation
// floor (the caller-owned response slice).
func TestReorderingZeroAlloc(t *testing.T) {
	p3 := reorderProblems(t, 3)["random"]
	p2 := reorderProblems(t, 2)["random"]
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		p    *Problem
		m    Method
	}{
		{"LinBP", p3, MethodLinBP},
		{"LinBPStar", p3, MethodLinBPStar},
		{"FABP", p2, MethodFABP},
	} {
		s, err := Prepare(tc.p, tc.m, WithReordering(ReorderRCM))
		if err != nil {
			t.Fatal(err)
		}
		dst := beliefs.New(tc.p.Graph.N(), tc.p.K())
		if _, err := s.SolveInto(ctx, dst, tc.p.Explicit); err != nil {
			t.Fatalf("%s warm: %v", tc.name, err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			s.SolveInto(ctx, dst, tc.p.Explicit)
		})
		if allocs > 0 {
			t.Errorf("%s: %v allocs per reordered SolveInto, want 0", tc.name, allocs)
		}
		s.Close()
	}

	// Batch path: recurring size with caller destinations.
	s, err := Prepare(p3, MethodLinBP, WithReordering(ReorderRCM))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reqs := make([]Request, 4)
	for i := range reqs {
		e, _ := beliefs.Seed(p3.Graph.N(), 3, beliefs.SeedConfig{Fraction: 0.1, Seed: uint64(i + 90)})
		reqs[i] = Request{E: e, Dst: beliefs.New(p3.Graph.N(), 3)}
	}
	s.SolveBatch(ctx, reqs) // warm
	allocs := testing.AllocsPerRun(20, func() {
		for _, r := range s.SolveBatch(ctx, reqs) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	})
	// One allocation — the caller-owned response slice — is the floor
	// of the concurrency-safe batch contract; everything else rides in
	// pooled workspaces.
	if allocs > 1 {
		t.Errorf("%v allocs per reordered SolveBatch, want 1 (the response slice)", allocs)
	}
}

// TestReorderAutoSmallGraphIsNone pins the auto heuristic's size gate:
// preparing a small graph under the default auto strategy must keep the
// natural order (and therefore stay bitwise identical to PR 2 results).
func TestReorderAutoSmallGraphIsNone(t *testing.T) {
	p := reorderProblems(t, 3)["random"]
	s, err := Prepare(p, MethodLinBP)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Stats().Ordering; got != ReorderNone {
		t.Fatalf("auto ordering on a small graph = %v, want none", got)
	}
	if p.Graph.N() >= order.AutoMinNodes {
		t.Fatal("test graph unexpectedly at or above the auto gate")
	}
}

// TestReorderingWideLayout checks WithCompactIndices(false) — the PR 2
// wide-index baseline — against the default compact layout: results
// must be bitwise identical (the index width never changes arithmetic).
func TestReorderingWideLayout(t *testing.T) {
	p := reorderProblems(t, 3)["kronecker"]
	wide, err := Prepare(p, MethodLinBP, WithCompactIndices(false), WithMaxIter(20), WithTol(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer wide.Close()
	compact, err := Prepare(p, MethodLinBP, WithCompactIndices(true), WithMaxIter(20), WithTol(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer compact.Close()
	a := beliefs.New(p.Graph.N(), 3)
	b := beliefs.New(p.Graph.N(), 3)
	if _, err := wide.SolveInto(context.Background(), a, p.Explicit); err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatal(err)
	}
	if _, err := compact.SolveInto(context.Background(), b, p.Explicit); err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatal(err)
	}
	if d := maxAbsDiff(a, b); d != 0 {
		t.Fatalf("wide vs compact layouts differ by %g, want bitwise identity", d)
	}
}
