// The prepared-solver serving surface: Prepare builds a Solver that
// preprocesses everything derivable from the problem's fixed parts —
// the CSR adjacency, the weighted degrees, the flattened couplings,
// kernel workspaces, BP's directed-edge layout, SBP's geodesic ordering
// — once, and then answers many solves for changing explicit beliefs.
// This is the "prepare once, solve many" shape the paper's
// data-management pitch implies: one network, heavy repeated
// classification traffic.
//
// Solvers are safe for concurrent use: the prepared state (adjacency,
// degrees, couplings, layouts) is immutable and shared, while the
// mutable per-solve workspaces — kernel engines, BP message buffers,
// SBP runners, permutation scratch — are handed out through a pooled
// free list (statePool), so N goroutines can hammer one shared Solver
// with zero steady-state allocations on the SolveInto path. Stats
// reads atomic counters; Close is idempotent, waits for in-flight
// solves, and every solve after it fails with ErrClosed.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/beliefs"
	"repro/internal/bp"
	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/durable"
	"repro/internal/errs"
	"repro/internal/fabp"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/linbp"
	"repro/internal/order"
	"repro/internal/sbp"
	"repro/internal/sparse"
)

// Option configures Prepare. Options replace the zero-value Options
// struct for the prepared API; unset options select the same per-method
// defaults the one-shot Solve uses.
type Option func(*config)

type config struct {
	workers    int
	maxIter    int
	tol        float64
	echo       bool
	echoSet    bool
	autoEps    bool
	reorder    Reordering
	layout     kernel.Layout
	partitions int
	schedule   Schedule
	policy     UpdatePolicy
	durFS      durable.FS
	durDir     string
	durPol     durable.Policy
	durSet     bool
}

// Reordering selects the prepare-time graph layout strategy; see
// WithReordering. The zero value is ReorderAuto.
type Reordering = order.Strategy

// The selectable reorderings (re-exported from internal/order).
const (
	// ReorderAuto evaluates RCM and the degree sort with a cheap
	// edge-span heuristic and keeps the natural order unless one of
	// them wins; small graphs (below order.AutoMinNodes) always keep
	// the natural order. The default.
	ReorderAuto = order.StrategyAuto
	// ReorderRCM forces reverse Cuthill–McKee.
	ReorderRCM = order.StrategyRCM
	// ReorderDegree forces the descending-degree hub-packing sort.
	ReorderDegree = order.StrategyDegree
	// ReorderNone keeps the caller's node order.
	ReorderNone = order.StrategyNone
)

// ParseReordering maps the flag spellings auto|rcm|degree|none onto
// Reordering values.
func ParseReordering(name string) (Reordering, error) { return order.ParseStrategy(name) }

// WithWorkers sets the goroutine count of the fused kernel's
// row-partitioned parallel pass (LinBP, LinBP*, FABP, and their
// batches). 0 or 1 selects the serial kernel. BP and SBP ignore it.
// While WithPartitions is active the partitioned plane replaces the
// span pool, and Workers only seeds the auto partition count.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithMaxIter bounds the update rounds of iterative methods
// (method-specific default when unset or 0).
func WithMaxIter(n int) Option { return func(c *config) { c.maxIter = n } }

// WithTol sets the convergence tolerance: iteration stops once no
// belief (or BP message) entry changes by more than tol between
// rounds. 0 selects the method default; negative forces exactly
// MaxIter rounds (the paper's timing setup).
func WithTol(tol float64) Option { return func(c *config) { c.tol = tol } }

// WithEchoCancellation selects between LinBP (true, Eq. 4) and LinBP*
// (false, Eq. 5) regardless of which of the two methods was named;
// other methods ignore it.
func WithEchoCancellation(on bool) Option {
	return func(c *config) { c.echo = on; c.echoSet = true }
}

// WithAutoEpsilonH derives the coupling scale from the exact
// convergence criterion (half the Lemma 8 threshold, the paper's
// Section 7 recommendation) instead of using Problem.EpsilonH. BP and
// FABP borrow LinBP's criterion; SBP is εH-invariant and ignores it.
// The chosen value is reported by Stats().EpsilonH.
func WithAutoEpsilonH() Option { return func(c *config) { c.autoEps = true } }

// WithReordering selects the prepare-time node reordering of the graph
// layout optimizer (ReorderAuto when unset): the adjacency structure is
// relabeled once for cache locality, every engine the solver prepares
// runs over the relabeled layout, and explicit beliefs/results are
// permuted on the way in/out so callers keep their node ids — with no
// extra steady-state allocations on SolveInto or SolveBatch. Stats()
// reports the ordering chosen and the bandwidth before/after.
func WithReordering(r Reordering) Option { return func(c *config) { c.reorder = r } }

// WithCompactIndices toggles the engines' compact (int32) CSR index
// layout, on by default whenever the matrix fits it. Turning it off
// restores the wide layout of PR 2; layout benchmarks and debugging are
// the only reasons to do so.
func WithCompactIndices(on bool) Option {
	return func(c *config) {
		if on {
			c.layout = kernel.LayoutCompact
		} else {
			c.layout = kernel.LayoutWide
		}
	}
}

// PartitionsAuto asks WithPartitions to size the partition-parallel
// plane automatically: serving-scale graphs get one partition per
// kernel worker (or GOMAXPROCS when Workers is unset, capped at
// maxAutoPartitions); small cache-resident graphs keep the
// unpartitioned plane.
const PartitionsAuto = -1

// maxAutoPartitions caps the automatically chosen partition count: the
// partitioned plane exists to pin blocks to sockets/cores, and past a
// modest worker count the per-round merge step costs more than further
// splitting buys.
const maxAutoPartitions = 16

// WithPartitions selects the kernel's partition-parallel data plane for
// the kernel-backed methods (LinBP, LinBP*, FABP, and their batches):
// the layout-ordered adjacency is split into n contiguous nnz-balanced
// row blocks (order.PartitionRows), and each prepared engine binds one
// persistent OS-thread-locked worker per block with first-touched
// private block state and partition-local delta accumulators — one
// merge/exchange step per round instead of span stealing. n = 1 runs a
// single-block partitioned plane (the overhead baseline);
// PartitionsAuto sizes the plane from the graph and worker count; 0
// (the default) disables it. BP and SBP ignore partitions. Stats()
// reports the partition count, cut edges, and nnz imbalance.
func WithPartitions(n int) Option { return func(c *config) { c.partitions = n } }

// Schedule selects the execution schedule of the kernel-backed methods
// (LinBP, LinBP*, FABP); see WithSchedule. The zero value is
// ScheduleRounds. BP and SBP have no alternative schedule and ignore
// the option.
type Schedule int

const (
	// ScheduleRounds runs synchronous Jacobi rounds: every update pass
	// advances all n rows once, regardless of where the remaining error
	// lives. The default, and the only schedule SolveBatch's fused
	// chunks use.
	ScheduleRounds Schedule = iota
	// ScheduleResidual runs the residual-scheduled push plane: rows are
	// relaxed in largest-residual-first order and the solve costs what
	// it touches, so localized inputs (and the dynamic plane's deltas)
	// converge without full passes. The fixpoint matches the rounds
	// schedule within the tolerance budget ‖(I−M)⁻¹‖·tol — a tolerance
	// band, never bitwise equality — and requires a positive tolerance
	// (the schedule has no fixed-round mode, so it composes with
	// WithTol(0) = method default but not with a negative tolerance).
	ScheduleResidual
	// ScheduleAuto picks per solve: synchronous rounds for cold solves
	// and batches (where every row carries error anyway), the residual
	// plane for the dynamic plane's localized Update re-solves seeded
	// from exactly the rows a delta touched.
	ScheduleAuto
)

// String returns the flag spelling of the schedule.
func (s Schedule) String() string {
	switch s {
	case ScheduleRounds:
		return "rounds"
	case ScheduleResidual:
		return "residual"
	case ScheduleAuto:
		return "auto"
	}
	return fmt.Sprintf("Schedule(%d)", int(s))
}

// ParseSchedule maps the flag spellings rounds|residual|auto onto
// Schedule values.
func ParseSchedule(name string) (Schedule, error) {
	switch name {
	case "rounds":
		return ScheduleRounds, nil
	case "residual":
		return ScheduleResidual, nil
	case "auto":
		return ScheduleAuto, nil
	}
	return 0, fmt.Errorf("core: unknown schedule %q (want rounds, residual, or auto): %w", name, errs.ErrInvalidInput)
}

// WithSchedule selects the execution schedule for the kernel-backed
// methods. Stats().Schedule reports the choice; SolveInfo.RowsRelaxed
// and SolveInfo.QueuePeak report the residual plane's per-solve work.
func WithSchedule(s Schedule) Option { return func(c *config) { c.schedule = s } }

// SolveInfo describes one completed solve on the serving path.
type SolveInfo struct {
	// Iterations is the number of update rounds executed (for SBP, the
	// number of geodesic levels propagated).
	Iterations int
	// Converged reports whether the fixpoint was reached within the
	// tolerance. SBP always converges.
	Converged bool
	// Delta is the final maximum belief/message change (0 for SBP).
	// For a residual-scheduled solve it is the largest residual
	// magnitude remaining (at most the tolerance when converged).
	Delta float64
	// RowsRelaxed is the number of row relaxations a residual-scheduled
	// solve executed (0 under the rounds schedule); Iterations then
	// reports the round-equivalent ⌈RowsRelaxed/n⌉, so iteration budgets
	// and counters stay comparable across schedules.
	RowsRelaxed int
	// QueuePeak is the residual queue's high-water population during
	// the solve (0 under the rounds schedule) — how much of the graph
	// the solve's frontier covered at its widest.
	QueuePeak int
}

// Request is one unit of work for Solver.SolveBatch.
type Request struct {
	// E holds the explicit residual beliefs of this request (n×k).
	E *beliefs.Residual
	// Dst, when non-nil, receives the final residual beliefs (n×k,
	// overwritten), so steady-state batches avoid the belief-matrix
	// allocations. When nil a fresh matrix is allocated for the
	// response.
	Dst *beliefs.Residual
}

// Response is the outcome of one batch request.
type Response struct {
	// Beliefs holds the final residual beliefs (Request.Dst when that
	// was set). nil when Err prevented the solve from running.
	Beliefs *beliefs.Residual
	// Info carries the solve diagnostics. Requests batched into the
	// same fused chunk share rounds, so they report the chunk's
	// iteration count and maximum delta.
	Info SolveInfo
	// Err is nil on success, wraps ErrNotConverged when the iteration
	// budget ran out (Beliefs then holds the last iterate), wraps
	// ErrDimensionMismatch for ill-shaped requests, or carries the
	// context error when the batch was cancelled.
	Err error
}

// SolverStats is a snapshot of a Solver's configuration and lifetime
// counters, for serving observability. It is safe to call concurrently
// with solves; the counters are read atomically.
type SolverStats struct {
	// Method is the prepared inference method.
	Method Method
	// N and K are the problem dimensions.
	N, K int
	// Workers is the configured kernel worker count (0 = serial).
	Workers int
	// EpsilonH is the effective coupling scale (after WithAutoEpsilonH).
	EpsilonH float64
	// Ordering is the node reordering the prepare-time layout
	// optimizer chose — always a concrete strategy (rcm, degree, or
	// none), never auto.
	Ordering Reordering
	// BandwidthBefore and BandwidthAfter are the adjacency bandwidths
	// under the natural and the chosen ordering (equal when Ordering
	// is none).
	BandwidthBefore, BandwidthAfter int
	// Partitions is the row-block count of the partition-parallel
	// plane (0 when the plane is off — the default — or the method
	// does not use the fused kernel). CutEdges counts the stored
	// adjacency entries crossing block boundaries and Imbalance is the
	// heaviest block's nnz relative to the ideal per-block share
	// (1.0 = perfectly balanced); both are 0 when Partitions is 0.
	Partitions, CutEdges int
	Imbalance            float64
	// Schedule is the execution schedule of the kernel-backed methods
	// (always ScheduleRounds for BP and SBP, which have no alternative
	// plane).
	Schedule Schedule
	// Epoch is the number of snapshot swaps the dynamic plane has
	// performed (0 until the first topology Update); Updates counts
	// committed Update calls, Rebuilds the subset that triggered a
	// compaction relayout (reordering and partitioning replayed on the
	// merged graph). OverlayNNZ is the number of delta cells currently
	// accumulated over the prepared base — it resets to 0 at every
	// compaction.
	Epoch, Updates, Rebuilds int64
	OverlayNNZ               int64
	// Solves counts completed Solve/SolveInto calls; BatchRequests
	// counts requests served through SolveBatch (Batches calls) for
	// every method — batch-internal solves are not double-counted
	// into Solves.
	Solves, Batches, BatchRequests int64
	// Iterations accumulates the update rounds the engine executed —
	// the work done, so requests fused into one chunk contribute
	// their shared rounds once.
	Iterations int64
	// NotConverged counts solves that exhausted the iteration budget;
	// Cancelled counts solves aborted by context.
	NotConverged, Cancelled int64
	// ResidualRowsRelaxed accumulates the row relaxations executed by
	// residual-scheduled solves (the plane's unit of work, the analogue
	// of Iterations·n for rounds); ResidualQueuePeak is the largest
	// queue population any single residual-scheduled solve reached over
	// the solver's lifetime. Both stay 0 under ScheduleRounds.
	ResidualRowsRelaxed int64
	ResidualQueuePeak   int64
	// BatchHint is the number of requests the method fuses into one
	// SolveBatch kernel chunk (always ≥ 1; 1 for methods that serve
	// batches sequentially). A front end coalescing concurrent requests
	// gets the full fused-kernel win at multiples of this size.
	BatchHint int
	// Degraded reports that the durable plane failed stickily (broken
	// write-ahead log): every further Update is rejected while solves
	// keep serving the last committed state. Always false for solvers
	// prepared without durability.
	Degraded bool
}

// Solver is a prepared inference engine over one problem configuration
// (graph + coupling + εH): construct it once with Prepare (or the
// per-method PrepareBP/PrepareLinBP/PrepareSBP/PrepareFABP wrappers in
// the facade), then issue many solves for changing explicit beliefs.
// All methods serve through this one interface with their preprocessed
// state reused across solves.
//
// The solver is epoch-versioned: the graph fixed at preparation time
// is the first epoch, and Update evolves it — edge insertions and
// deletions, explicit-belief changes — without re-preparing from
// scratch. Each committed topology update builds a fresh immutable
// snapshot (merged adjacency, engines, pools) and swaps it in
// atomically; solves already in flight finish on the snapshot they
// started on, new solves land on the new one, and no reader ever
// observes a half-updated graph.
//
// Solvers are safe for concurrent use: any number of goroutines may
// call Solve, SolveInto, SolveBatch, Update, and Stats on one shared
// Solver (updates serialize internally). Per-solve workspaces are
// recycled through per-epoch pools, so the SolveInto serving path
// stays allocation-free in steady state no matter how many goroutines
// share the solver. Close is idempotent, waits for in-flight solves
// and a pending update (including its compaction rebuild) to drain,
// and fails later solves with ErrClosed. One carve-out: the
// incremental SBP state a Solve on an SBP solver returns (Result.SBP)
// shares the epoch's graph, so its mutators (AddEdges,
// AddExplicitBeliefs) are NOT covered by the guarantee — use Update
// instead, which keeps the solver and the graph consistent.
type Solver interface {
	// Solve runs the method for the explicit residual beliefs e and
	// allocates a fresh result (including the top-belief assignment).
	// Non-convergence is reported as an error wrapping ErrNotConverged
	// with the result still returned; cancellation via ctx returns the
	// context error within one kernel round.
	Solve(ctx context.Context, e *beliefs.Residual) (*Result, error)
	// SolveInto is the serving path: it writes the final residual
	// beliefs into dst (n×k, overwritten) and skips the result and
	// top-assignment allocations. For the kernel-backed methods
	// (LinBP, LinBP*, FABP) steady-state calls allocate nothing.
	// Concurrent callers must pass distinct dst matrices.
	SolveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error)
	// SolveBatch answers independent requests over the shared prepared
	// state, amortizing workspace acquisition across the batch; the
	// LinBP/LinBP* implementation additionally fuses requests into
	// multi-block kernel chunks that traverse the adjacency structure
	// once per round for the whole batch. The returned slice is owned
	// by the caller (it is freshly allocated per call, the one
	// steady-state allocation of the batch path — a requirement of
	// concurrent batch callers).
	SolveBatch(ctx context.Context, reqs []Request) []Response
	// Update applies a graph/belief delta to the solver — see the
	// Update type for the delta surface and the UpdatePolicy for the
	// compaction and warm-start knobs — re-solves the maintained
	// problem (warm-started from the previous fixpoint for the
	// kernel-backed methods), and returns the refreshed result.
	// Updates serialize against each other; concurrent solves keep
	// serving the previous snapshot until the swap and are never
	// interrupted.
	Update(ctx context.Context, u Update) (*Result, error)
	// Stats returns a snapshot of configuration and serving counters;
	// safe to call concurrently with solves.
	Stats() SolverStats
	// Close releases pooled resources after waiting for in-flight
	// solves to complete. It is idempotent; any solve after Close
	// fails with ErrClosed.
	Close() error
}

// snapshot is the immutable serving surface of one epoch — the Solver
// contract minus Update. The per-method solver implementations below
// are snapshots; Prepare wraps the initial one in the epoch-versioned
// dynamic solver (dynamic.go), which swaps snapshots as updates
// commit.
type snapshot interface {
	Solve(ctx context.Context, e *beliefs.Residual) (*Result, error)
	SolveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error)
	SolveBatch(ctx context.Context, reqs []Request) []Response
	Stats() SolverStats
	Close() error
}

// warmStarter is implemented by the kernel-backed snapshots (LinBP,
// LinBP*, FABP): SolveFrom is SolveInto warm-started from a previous
// fixpoint, the cheap re-solve of the dynamic plane. A nil start is a
// cold solve.
type warmStarter interface {
	SolveFrom(ctx context.Context, dst, e, start *beliefs.Residual) (SolveInfo, error)
}

// seededSolver is implemented by the kernel-backed snapshots when a
// residual schedule is available: SolveSeeded is SolveFrom served by
// the residual plane, with touched (caller node ids, deduplicated)
// restricting the warm seed to the rows a delta perturbed — the
// dynamic plane's localized re-solve. A nil touched recomputes every
// row's residual (valid from any start); a non-nil empty touched is
// the no-change fast path. Snapshots prepared without a usable
// residual plane (fixed-round tolerance under ScheduleAuto) fall back
// to warm rounds internally.
type seededSolver interface {
	warmStarter
	SolveSeeded(ctx context.Context, dst, e, start *beliefs.Residual, touched []int) (SolveInfo, error)
}

// Prepare validates the problem once and builds a prepared Solver for
// the method. The problem's Graph, Ho, and EpsilonH are fixed at
// preparation time; Explicit only participates in shape validation and
// may be a zero matrix for pure serving use.
func Prepare(p *Problem, m Method, opts ...Option) (Solver, error) {
	var cfg config
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch m {
	case MethodBP, MethodLinBP, MethodLinBPStar, MethodSBP, MethodFABP:
	default:
		return nil, fmt.Errorf("core: unknown method %v: %w", m, errs.ErrInvalidInput)
	}
	switch cfg.schedule {
	case ScheduleRounds, ScheduleResidual, ScheduleAuto:
	default:
		return nil, fmt.Errorf("core: unknown schedule %v: %w", cfg.schedule, errs.ErrInvalidInput)
	}
	if cfg.schedule == ScheduleResidual && cfg.tol < 0 {
		return nil, fmt.Errorf("core: the residual schedule needs a convergence tolerance (a negative WithTol forces fixed rounds): %w", errs.ErrInvalidInput)
	}
	echo := m != MethodLinBPStar // LinBP and the FABP collapse cancel echo
	if cfg.echoSet && (m == MethodLinBP || m == MethodLinBPStar) {
		echo = cfg.echo
		if echo {
			m = MethodLinBP
		} else {
			m = MethodLinBPStar
		}
	}
	eps := p.EpsilonH
	if cfg.autoEps && m != MethodSBP {
		var err error
		eps, err = autoEpsilon(p.Graph, p.Ho, m == MethodLinBP || m == MethodBP || m == MethodFABP)
		if err != nil {
			return nil, err
		}
	}
	base := solverInfo{method: m, n: p.Graph.N(), k: p.K(), workers: cfg.workers, eps: eps}
	switch m {
	case MethodLinBP, MethodLinBPStar, MethodFABP:
		base.schedule = cfg.schedule
	default:
		// BP and SBP have no residual plane; they ignore the schedule
		// the way they ignore Workers and Partitions.
	}

	// The layout optimizer runs once per prepared solver: resolve the
	// reordering strategy on the adjacency structure and record the
	// locality diagnostics. perm is nil for the natural order.
	a := p.Graph.Adjacency()
	perm, chosen := order.Compute(cfg.reorder, a)
	base.ordering = chosen
	base.bandBefore = order.Bandwidth(a, nil)
	base.bandAfter = base.bandBefore
	if perm != nil {
		base.bandAfter = order.Bandwidth(a, perm)
	}

	var inner snapshot
	var err error
	switch m {
	case MethodBP:
		inner, err = newBPSolver(p, base, cfg, perm)
	case MethodLinBP, MethodLinBPStar:
		inner, err = newLinBPSolver(p, base, cfg, perm)
	case MethodSBP:
		inner, err = newSBPSolver(p, base, perm)
	default:
		inner, err = newFABPSolver(p, base, cfg, perm)
	}
	if err != nil {
		return nil, err
	}
	// Every prepared solver is served through the epoch-versioned
	// dynamic plane; a solver that never sees an Update pays only an
	// atomic pointer load per solve for it.
	d := newDynSolver(p, m, cfg, inner)
	if cfg.durDir != "" {
		// Publish the prepared state before handing the solver out, so
		// a crash at any later point recovers at least the initial
		// fixpoint problem.
		if err := d.initDurability(); err != nil {
			d.Close()
			return nil, err
		}
	}
	return d, nil
}

// permutedLayout applies perm to the adjacency and (optionally) the
// degree vector, returning the relabeled pair. d may be nil.
func permutedLayout(a *sparse.CSR, d []float64, perm order.Permutation) (*sparse.CSR, []float64) {
	if perm == nil {
		return a, d
	}
	ap := a.Permute(perm)
	if d == nil {
		return ap, nil
	}
	dp := make([]float64, len(d))
	for i, v := range d {
		dp[perm[i]] = v
	}
	return ap, dp
}

// resolvePartition turns the WithPartitions setting into concrete block
// boundaries over the layout-ordered adjacency, recording the partition
// diagnostics in base. It returns nil (no partitioned plane) when the
// setting is 0 or the auto heuristic keeps the unpartitioned plane.
func resolvePartition(requested, workers int, a *sparse.CSR, base *solverInfo) []int {
	parts := requested
	if parts == 0 {
		return nil
	}
	if parts < 0 { // PartitionsAuto
		if a.Rows() < order.AutoMinNodes {
			// Cache-resident graphs: the merge step per round costs
			// more than block locality buys.
			return nil
		}
		parts = workers
		if parts < 1 {
			parts = runtime.GOMAXPROCS(0)
		}
		if parts > maxAutoPartitions {
			parts = maxAutoPartitions
		}
		if parts < 2 {
			return nil
		}
	}
	p := order.PartitionRows(a, parts)
	base.partitions = p.Blocks()
	base.cutEdges = p.CutEdges
	base.imbalance = p.Imbalance
	return p.Starts
}

// autoEpsilon is AutoEpsilonH without the method restriction: half the
// exact Lemma 8 threshold for the chosen echo setting.
func autoEpsilon(g *graph.Graph, ho *dense.Matrix, echo bool) (float64, error) {
	eps, err := linbp.MaxEpsilonH(g, ho, echo, true)
	if err != nil {
		return 0, err
	}
	if math.IsInf(eps, 1) {
		return 1, nil
	}
	return eps / 2, nil
}

// statePool hands out per-solve workspaces from a strong-reference
// free list — deliberately not a sync.Pool: the pooled states own real
// resources (kernel worker goroutines, OS-thread-locked partition
// workers, message buffers), and a GC-evicting pool would strand those
// engines in the Close registry while cache misses build ever more —
// an unbounded leak of memory and locked threads under sustained
// traffic. The free list keeps built states reusable until Close, so
// steady-state get/put allocate nothing and the mutex push/pop is
// noise against a solve — but the retained population is bounded by
// the maxFree high-water cap, not by peak concurrency: a burst of N
// concurrent solves builds N states, and the ones beyond the cap are
// destroyed as they come back instead of pinning their memory (and,
// on the partitioned plane, their OS-thread-locked workers) forever.
type statePool[T comparable] struct {
	mu      sync.Mutex
	free    []T
	all     []T
	build   func() (T, error)
	destroy func(T) // releases a state's resources; nil = GC suffices
	maxFree int     // high-water cap on the idle free list
}

// defaultPoolFreeCap bounds how many idle per-solve states a pool
// retains: enough that every core can be solving concurrently with
// headroom for handoff jitter, small enough that a one-off burst of
// thousands of goroutines does not permanently pin thousands of
// kernel workspaces.
func defaultPoolFreeCap() int {
	if c := 2 * runtime.GOMAXPROCS(0); c > 4 {
		return c
	}
	return 4
}

func newStatePool[T comparable](build func() (T, error)) *statePool[T] {
	return &statePool[T]{build: build, maxFree: defaultPoolFreeCap()}
}

// withDestroy registers the release hook invoked for states dropped at
// the high-water cap and for every live state at closeAll.
func (p *statePool[T]) withDestroy(f func(T)) *statePool[T] {
	p.destroy = f
	return p
}

// get returns a pooled state or builds a fresh one.
//
//lsbp:hotpath
func (p *statePool[T]) get() (T, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		var zero T
		p.free[n-1] = zero
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return v, nil
	}
	p.mu.Unlock()
	v, err := p.build()
	if err != nil {
		var zero T
		return zero, err
	}
	p.mu.Lock()
	p.all = append(p.all, v)
	p.mu.Unlock()
	return v, nil
}

// put returns a state for reuse, or destroys it when the free list is
// already at its high-water cap — the path that lets memory (and
// locked worker threads) return to the system after a concurrency
// burst instead of being pinned until Close.
//
//lsbp:hotpath
func (p *statePool[T]) put(v T) {
	p.mu.Lock()
	if len(p.free) < p.maxFree {
		p.free = append(p.free, v)
		p.mu.Unlock()
		return
	}
	p.dropLocked(v)
	p.mu.Unlock()
	if p.destroy != nil {
		p.destroy(v)
	}
}

// dropLocked removes v from the Close registry so a capped-out state
// is destroyed exactly once (here, not again at closeAll). It sits on
// put's annotated path but runs only on cold over-cap evictions.
//
//lsbp:hotpath
func (p *statePool[T]) dropLocked(v T) {
	for i, x := range p.all {
		if x == v {
			last := len(p.all) - 1
			p.all[i] = p.all[last]
			var zero T
			p.all[last] = zero
			p.all = p.all[:last]
			return
		}
	}
}

// idle reports the current free-list depth (for shrink tests).
func (p *statePool[T]) idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// closeAll destroys every state still registered and empties the
// registry. Callers guarantee no state is in use (Close holds the
// solver's write lock).
func (p *statePool[T]) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.destroy != nil {
		for _, v := range p.all {
			p.destroy(v)
		}
	}
	p.all = nil
	p.free = nil
}

// solverInfo is the plain-data identity of a prepared solver — the
// configuration echo Stats reports. It carries no locks, so Prepare
// passes it around by value before the solver goes live.
type solverInfo struct {
	method  Method
	n, k    int
	workers int
	eps     float64

	ordering              Reordering
	bandBefore, bandAfter int
	partitions, cutEdges  int
	imbalance             float64
	schedule              Schedule

	// batchHint is the number of requests the method fuses into one
	// kernel chunk (0/1 for methods that serve batches sequentially) —
	// the natural coalescing granularity for a serving front end.
	batchHint int
}

// solverBase carries the identity, lifecycle, and counters every method
// solver shares. Solves hold the read side of mu for their whole
// duration; Close takes the write side, so it waits for in-flight
// solves and flips closed exactly once. Counters are atomics because
// any number of solves may run concurrently.
type solverBase struct {
	solverInfo

	mu     sync.RWMutex
	closed bool

	solves, batches, batchReqs atomic.Int64
	iterations                 atomic.Int64
	notConverged, cancelled    atomic.Int64
	rowsRelaxed                atomic.Int64
	// queuePeak is a lifetime maximum, not a sum; record folds it with
	// a CAS-max.
	queuePeak atomic.Int64
}

// begin enters one solve: it takes the read lock and rejects closed
// solvers. Every public solve entry point pairs it with end; nested
// begin calls are forbidden (recursive read locks can deadlock against
// a pending Close).
//
//lsbp:hotpath
func (b *solverBase) begin() bool {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return false
	}
	return true
}

//lsbp:hotpath
func (b *solverBase) end() { b.mu.RUnlock() }

// closeOnce runs release under the write lock the first time the solver
// is closed — after every in-flight solve has drained — and is a no-op
// afterwards.
func (b *solverBase) closeOnce(release func()) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	if release != nil {
		release()
	}
	return nil
}

func (b *solverBase) Stats() SolverStats {
	bh := b.batchHint
	if bh < 1 {
		bh = 1
	}
	return SolverStats{
		Method: b.method, N: b.n, K: b.k, Workers: b.workers, EpsilonH: b.eps,
		Ordering: b.ordering, BandwidthBefore: b.bandBefore, BandwidthAfter: b.bandAfter,
		Partitions: b.partitions, CutEdges: b.cutEdges, Imbalance: b.imbalance,
		Schedule:  b.schedule,
		BatchHint: bh,
		Solves:    b.solves.Load(), Batches: b.batches.Load(), BatchRequests: b.batchReqs.Load(),
		Iterations: b.iterations.Load(), NotConverged: b.notConverged.Load(), Cancelled: b.cancelled.Load(),
		ResidualRowsRelaxed: b.rowsRelaxed.Load(), ResidualQueuePeak: b.queuePeak.Load(),
	}
}

// admitCtx rejects a request whose context is already done before any
// kernel work runs. The iterative loops only observe cancellation at
// round boundaries; admission must fail an already-expired deadline
// without spinning up (or waiting on) an engine. The rejection counts
// as a cancelled solve, matching mid-solve aborts.
//
//lsbp:hotpath
func (b *solverBase) admitCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		b.cancelled.Add(1)
		return fmt.Errorf("core: %v admission: %w", b.method, err)
	}
	return nil
}

// record folds one solve outcome into the counters and normalizes the
// error: non-convergence becomes an ErrNotConverged wrap, context
// aborts pass through.
//
//lsbp:hotpath
func (b *solverBase) record(info SolveInfo, err error) (SolveInfo, error) {
	b.iterations.Add(int64(info.Iterations))
	if info.RowsRelaxed > 0 {
		b.rowsRelaxed.Add(int64(info.RowsRelaxed))
	}
	if p := int64(info.QueuePeak); p > 0 {
		for {
			cur := b.queuePeak.Load()
			if p <= cur || b.queuePeak.CompareAndSwap(cur, p) {
				break
			}
		}
	}
	if err != nil {
		// A diverged solve (overflowed update delta) is a convergence
		// failure, not a caller abort; keep the Cancelled counter
		// meaning "context" only.
		if errors.Is(err, errs.ErrNonFinite) {
			b.notConverged.Add(1)
		} else {
			b.cancelled.Add(1)
		}
		return info, fmt.Errorf("core: %v solve: %w", b.method, err)
	}
	if !info.Converged {
		b.notConverged.Add(1)
		return info, fmt.Errorf("core: %v after %d iterations (delta %g): %w",
			b.method, info.Iterations, info.Delta, errs.ErrNotConverged)
	}
	return info, nil
}

func (b *solverBase) errClosed() error {
	return fmt.Errorf("core: %v solver: %w", b.method, errs.ErrClosed)
}

// checkShapes validates one dst/e pair against the prepared dimensions.
//
//lsbp:hotpath
func (b *solverBase) checkShapes(dst, e *beliefs.Residual) error {
	if e == nil || dst == nil {
		return fmt.Errorf("core: nil belief matrix: %w", errs.ErrDimensionMismatch)
	}
	if e.N() != b.n || e.K() != b.k || dst.N() != b.n || dst.K() != b.k {
		return fmt.Errorf("core: belief matrix %dx%d / destination %dx%d do not match n=%d k=%d: %w",
			e.N(), e.K(), dst.N(), dst.K(), b.n, b.k, errs.ErrDimensionMismatch)
	}
	return nil
}

// finish assembles the allocating-path Result from a SolveInto outcome.
func (b *solverBase) finish(dst *beliefs.Residual, info SolveInfo, err error) (*Result, error) {
	res := &Result{
		Method: b.method, Beliefs: dst,
		Iterations: info.Iterations, Converged: info.Converged, Delta: info.Delta,
	}
	if err != nil && !isNotConverged(err) {
		return nil, err
	}
	res.Top = dst.TopAssignment()
	return res, err
}

func isNotConverged(err error) bool {
	return err != nil && errors.Is(err, errs.ErrNotConverged)
}

// failAll builds a response slice carrying one shared error.
func failAll(reqs []Request, err error) []Response {
	resp := make([]Response, len(reqs))
	for i := range resp {
		resp[i].Err = err
	}
	return resp
}

// sequentialBatch is the shared SolveBatch shape for methods without a
// fused multi-request kernel: requests run one after another over the
// prepared state through the method's internal (uncounted, shape-trusting)
// solve, so shapes are fully validated here. Callers hold the solver's
// read lock.
func (b *solverBase) sequentialBatch(ctx context.Context, reqs []Request,
	solve func(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error)) []Response {
	b.batches.Add(1)
	b.batchReqs.Add(int64(len(reqs)))
	if err := b.admitCtx(ctx); err != nil {
		b.cancelled.Add(int64(len(reqs)) - 1) // admitCtx counted one
		return failAll(reqs, err)
	}
	resp := make([]Response, len(reqs))
	for i, req := range reqs {
		dst := req.Dst
		if dst == nil {
			dst = beliefs.New(b.n, b.k)
		}
		if err := b.checkShapes(dst, req.E); err != nil {
			resp[i].Err = err
			continue
		}
		info, err := solve(ctx, dst, req.E)
		resp[i] = Response{Beliefs: dst, Info: info, Err: err}
	}
	return resp
}

// ---------------------------------------------------------------------------
// LinBP / LinBP*

// batchWidth caps the flat row width (blocks·k) of a fused batch
// chunk. Width 12 keeps every chunk on the kernel's register-blocked
// fast paths (k ∈ {2, 3}) and the working set close to the
// single-problem one, which matters on cache-resident graphs.
const batchWidth = 12

type linbpBatchEngine struct {
	eng *kernel.Engine
	ws  *kernel.Workspace
	ein []float64 // interleaved explicit beliefs, n × blocks·k
}

// linbpSolver serves LinBP and LinBP* through pooled prepared kernel
// engines: a statePool of single-problem engines for Solve/SolveInto
// and one statePool of fused multi-block engines per batch chunk size
// for SolveBatch. All engines share the immutable graph CSR, degree
// vector, coupling, and partition layout; only the mutable workspaces
// are per-pool-entry, so concurrent solves never contend on state.
type linbpSolver struct {
	solverBase
	a          *sparse.CSR // layout-ordered adjacency shared by all engines
	d          []float64   // matching degrees (nil for LinBP*)
	h          *dense.Matrix
	perm       order.Permutation // nil = natural order
	layout     kernel.Layout
	partStarts []int // nil = unpartitioned plane
	maxIter    int
	tol        float64

	states *statePool[*linbp.Engine]
	batch  []*statePool[*linbpBatchEngine] // index c-1 → chunks of c requests
	// rstates pools the residual-scheduled engines; nil when the
	// schedule is rounds-only or a negative tolerance forces fixed
	// rounds (the residual plane has no fixed-round mode).
	rstates *statePool[*linbp.ResidualEngine]
}

// kernelLayout is the concrete prepared layout a kernel-backed snapshot
// runs on: the (possibly reordered) adjacency, its matching degree
// vector (nil disables echo cancellation), the relabeling it was
// produced under, and the partition boundaries. Prepare derives it from
// the problem; the dynamic plane derives it from a merged overlay,
// reusing the prepare-time permutation and partitions between
// compactions.
type kernelLayout struct {
	a          *sparse.CSR
	d          []float64
	perm       order.Permutation
	partStarts []int
}

func newLinBPSolver(p *Problem, base solverInfo, cfg config, perm order.Permutation) (*linbpSolver, error) {
	var d []float64
	if base.method == MethodLinBP {
		d = p.Graph.WeightedDegrees()
	}
	a, d := permutedLayout(p.Graph.Adjacency(), d, perm)
	lay := kernelLayout{a: a, d: d, perm: perm,
		partStarts: resolvePartition(cfg.partitions, cfg.workers, a, &base)}
	return newLinBPSolverOn(coupling.Scale(p.Ho, base.eps), base, cfg, lay)
}

// newLinBPSolverOn builds the snapshot on an explicit layout; base must
// already carry the partition diagnostics for lay.partStarts.
func newLinBPSolverOn(h *dense.Matrix, base solverInfo, cfg config, lay kernelLayout) (*linbpSolver, error) {
	s := &linbpSolver{
		a:          lay.a,
		d:          lay.d,
		h:          h,
		perm:       lay.perm,
		layout:     cfg.layout,
		partStarts: lay.partStarts,
		maxIter:    cfg.maxIter,
		tol:        cfg.tol,
	}
	s.solverInfo = base
	if s.maxIter == 0 {
		s.maxIter = linbp.DefaultMaxIter
	}
	if s.tol == 0 {
		s.tol = linbp.DefaultTol
	}
	s.batchHint = s.maxBlocks()
	s.states = newStatePool(func() (*linbp.Engine, error) {
		return linbp.NewEngineLayout(s.a, s.d, s.h, s.perm, linbp.Options{
			EchoCancellation: s.method == MethodLinBP,
			MaxIter:          s.maxIter,
			Tol:              s.tol,
			Workers:          s.workers,
			Layout:           s.layout,
			PartitionStarts:  s.partStarts,
		})
	}).withDestroy(func(e *linbp.Engine) { e.Close() })
	s.batch = make([]*statePool[*linbpBatchEngine], s.maxBlocks())
	for i := range s.batch {
		c := i + 1
		s.batch[i] = newStatePool(func() (*linbpBatchEngine, error) {
			ws := kernel.GetWorkspace()
			eng, err := kernel.New(kernel.Config{
				A: s.a, D: s.d, H: s.h,
				Workers: s.workers, Blocks: c, Layout: s.layout,
				SymmetricA: true, PartitionStarts: s.partStarts,
			}, ws)
			if err != nil {
				ws.Release()
				return nil, fmt.Errorf("core: batch engine: %w", err)
			}
			return &linbpBatchEngine{eng: eng, ws: ws, ein: make([]float64, s.n*c*s.k)}, nil
		}).withDestroy(func(be *linbpBatchEngine) {
			be.eng.Close()
			be.ws.Release()
		})
	}
	if s.schedule != ScheduleRounds && s.tol > 0 {
		s.rstates = newStatePool(func() (*linbp.ResidualEngine, error) {
			return linbp.NewResidualEngineLayout(s.a, s.d, s.h, s.perm, linbp.Options{
				MaxIter: s.maxIter,
				Tol:     s.tol,
				Layout:  s.layout,
			})
		}).withDestroy(func(e *linbp.ResidualEngine) { e.Close() })
	}
	// Build (and pool) the first engine eagerly: it validates the
	// configuration and triggers the shared CSR's compact-index build
	// while preparation is still single-goroutine.
	eng, err := s.states.get()
	if err != nil {
		return nil, err
	}
	s.states.put(eng)
	if s.schedule == ScheduleResidual {
		// The residual plane is this solver's serving path: validate its
		// configuration eagerly too, so Prepare (not the first solve)
		// reports a bad tolerance.
		reng, err := s.rstates.get()
		if err != nil {
			return nil, err
		}
		s.rstates.put(reng)
	}
	return s, nil
}

func (s *linbpSolver) Solve(ctx context.Context, e *beliefs.Residual) (*Result, error) {
	if !s.begin() {
		return nil, s.errClosed()
	}
	defer s.end()
	dst := beliefs.New(s.n, s.k)
	if err := s.checkShapes(dst, e); err != nil {
		return nil, err
	}
	s.solves.Add(1) // counted only once the request is well-formed
	info, err := s.solveInto(ctx, dst, e)
	return s.finish(dst, info, err)
}

//lsbp:hotpath
func (s *linbpSolver) SolveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error) {
	if !s.begin() {
		return SolveInfo{}, s.errClosed()
	}
	defer s.end()
	if err := s.checkShapes(dst, e); err != nil {
		return SolveInfo{}, err
	}
	s.solves.Add(1)
	return s.solveInto(ctx, dst, e)
}

// solveInto runs one counted-elsewhere solve on a pooled engine. The
// caller holds the read lock and has validated the shapes.
//
//lsbp:hotpath
func (s *linbpSolver) solveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error) {
	if s.schedule == ScheduleResidual && s.rstates != nil {
		return s.solveResidual(ctx, dst, e, nil, nil)
	}
	if err := s.admitCtx(ctx); err != nil {
		return SolveInfo{}, err
	}
	eng, err := s.states.get()
	if err != nil {
		return SolveInfo{}, err
	}
	defer s.states.put(eng)
	iters, delta, converged, err := eng.SolveIntoContext(ctx, dst, e)
	return s.record(SolveInfo{Iterations: iters, Converged: converged, Delta: delta}, err)
}

// SolveFrom is the warm-started serving path of the dynamic plane: the
// iteration begins at start (a previous fixpoint in the caller's node
// order) instead of Bˆ = 0, so a solve after a small input delta
// converges in a fraction of the cold rounds. A nil start solves cold.
// Under ScheduleResidual it is served by the residual plane (full warm
// seed — valid from any start).
//
//lsbp:hotpath
func (s *linbpSolver) SolveFrom(ctx context.Context, dst, e, start *beliefs.Residual) (SolveInfo, error) {
	if !s.begin() {
		return SolveInfo{}, s.errClosed()
	}
	defer s.end()
	if err := s.checkShapes(dst, e); err != nil {
		return SolveInfo{}, err
	}
	s.solves.Add(1)
	if s.schedule == ScheduleResidual && s.rstates != nil {
		return s.solveResidual(ctx, dst, e, start, nil)
	}
	return s.solveFromRounds(ctx, dst, e, start)
}

// solveFromRounds is the round-scheduled warm solve; callers hold the
// read lock, have validated shapes, and have counted the solve.
//
//lsbp:hotpath
func (s *linbpSolver) solveFromRounds(ctx context.Context, dst, e, start *beliefs.Residual) (SolveInfo, error) {
	if err := s.admitCtx(ctx); err != nil {
		return SolveInfo{}, err
	}
	eng, err := s.states.get()
	if err != nil {
		return SolveInfo{}, err
	}
	defer s.states.put(eng)
	iters, delta, converged, err := eng.SolveFromIntoContext(ctx, dst, e, start)
	return s.record(SolveInfo{Iterations: iters, Converged: converged, Delta: delta}, err)
}

// SolveSeeded is the residual plane's localized entry point (see
// seededSolver): a warm solve seeded from exactly the touched rows.
// Without a usable residual plane (ScheduleAuto over a fixed-round
// tolerance) it degrades to the full warm rounds solve.
//
//lsbp:hotpath
func (s *linbpSolver) SolveSeeded(ctx context.Context, dst, e, start *beliefs.Residual, touched []int) (SolveInfo, error) {
	if !s.begin() {
		return SolveInfo{}, s.errClosed()
	}
	defer s.end()
	if err := s.checkShapes(dst, e); err != nil {
		return SolveInfo{}, err
	}
	s.solves.Add(1)
	if s.rstates == nil {
		return s.solveFromRounds(ctx, dst, e, start)
	}
	return s.solveResidual(ctx, dst, e, start, touched)
}

// solveResidual runs one counted-elsewhere solve on a pooled residual
// engine; the round-equivalent ⌈relaxed/n⌉ keeps Iterations comparable
// across schedules. Callers hold the read lock and have validated the
// shapes; s.rstates must be non-nil.
//
//lsbp:hotpath
func (s *linbpSolver) solveResidual(ctx context.Context, dst, e, start *beliefs.Residual, touched []int) (SolveInfo, error) {
	if err := s.admitCtx(ctx); err != nil {
		return SolveInfo{}, err
	}
	eng, err := s.rstates.get()
	if err != nil {
		return SolveInfo{}, err
	}
	defer s.rstates.put(eng)
	relaxed, peak, maxResid, converged, err := eng.SolveSeededContext(ctx, dst, e, start, touched)
	iters := 0
	if s.n > 0 {
		iters = (relaxed + s.n - 1) / s.n
	}
	return s.record(SolveInfo{
		Iterations: iters, Converged: converged, Delta: maxResid,
		RowsRelaxed: relaxed, QueuePeak: peak,
	}, err)
}

// maxBlocks is the largest number of requests fused into one kernel
// chunk for this solver's class count.
//
//lsbp:hotpath
func (s *linbpSolver) maxBlocks() int {
	b := batchWidth / s.k
	if b < 1 {
		return 1
	}
	return b
}

// SolveBatch fuses the requests into multi-block kernel chunks: each
// update round traverses the CSR once for every request in a chunk, so
// a batch of R requests costs far less than R one-shot solves even on
// a single core (and the chunks still run on the partitioned or
// span-parallel plane when one is configured). Requests in a chunk
// share rounds: iteration stops once every request's delta is within
// tolerance, and the shared round count and maximum delta are reported
// for each. Results match the request's one-shot solve up to
// summation-order rounding (~1 ulp per round).
//
//lsbp:hotpath
func (s *linbpSolver) SolveBatch(ctx context.Context, reqs []Request) []Response {
	if !s.begin() {
		return failAll(reqs, s.errClosed())
	}
	defer s.end()
	s.batches.Add(1)
	s.batchReqs.Add(int64(len(reqs)))
	if err := s.admitCtx(ctx); err != nil {
		s.cancelled.Add(int64(len(reqs)) - 1) // admitCtx counted one
		return failAll(reqs, err)
	}
	//lsbp:ignore hotpath-noalloc -- the response slice is the batch path's one documented caller-owned allocation
	resp := make([]Response, len(reqs))

	// Chunk the well-shaped requests on the fly (failing ill-shaped
	// ones in place) with a fixed-size index buffer — together with the
	// response slice above, the batch path's only steady-state
	// allocation is that caller-owned slice.
	var idx [batchWidth]int
	mb := s.maxBlocks()
	cn := 0
	var batchErr error
	//lsbp:ignore hotpath-noalloc -- one closure per batch call, amortized over up to batchWidth solves per flush
	flush := func() {
		chunk := idx[:cn]
		cn = 0
		if batchErr != nil {
			// Once the batch's context is gone, later chunks fail
			// without running. Non-context chunk failures (a diverging
			// request poisoning its cohort) stay confined to their own
			// chunk — see solveChunk.
			for _, ri := range chunk {
				resp[ri].Err = batchErr
				s.cancelled.Add(1)
			}
			return
		}
		batchErr = s.solveChunk(ctx, reqs, resp, chunk)
	}
	for i, req := range reqs {
		if req.E == nil || req.E.N() != s.n || req.E.K() != s.k ||
			(req.Dst != nil && (req.Dst.N() != s.n || req.Dst.K() != s.k)) {
			resp[i].Err = fmt.Errorf("core: request %d does not match n=%d k=%d: %w", i, s.n, s.k, errs.ErrDimensionMismatch)
			continue
		}
		idx[cn] = i
		cn++
		if cn == mb {
			flush()
		}
	}
	if cn > 0 {
		flush()
	}
	return resp
}

// solveChunk runs one fused chunk on a pooled batch engine and fills
// its responses. It returns non-nil only when the batch cannot
// meaningfully continue — the shared context is done, or engines can
// no longer be built — telling SolveBatch to fail the remaining
// chunks without running them. A chunk that merely fails numerically
// (one diverging request poisons its fused cohort) reports the error
// in its own responses and returns nil, so unrelated chunks in the
// same batch still run.
//
//lsbp:hotpath
func (s *linbpSolver) solveChunk(ctx context.Context, reqs []Request, resp []Response, chunk []int) error {
	c := len(chunk)
	be, err := s.batch[c-1].get()
	if err != nil {
		for _, ri := range chunk {
			resp[ri].Err = err
		}
		return err
	}
	defer s.batch[c-1].put(be)
	n, k := s.n, s.k
	// Interleave the chunk's explicit beliefs: node i's blocks·k row
	// holds request 0..c-1's k-wide rows back to back. Element loops
	// instead of per-row copy() — at k ∈ {2,3} the memmove call would
	// cost more than the moved bytes. Under a reordered layout the
	// permutation rides along in the same pass: node i lands at its
	// layout position, so the shuffle costs nothing extra.
	for bi, ri := range chunk {
		ed := reqs[ri].E.Matrix().Data()
		if s.perm == nil {
			for i := 0; i < n; i++ {
				dst := be.ein[(i*c+bi)*k : (i*c+bi)*k+k]
				src := ed[i*k : i*k+k]
				for j := range dst {
					dst[j] = src[j]
				}
			}
		} else {
			for i := 0; i < n; i++ {
				pi := s.perm[i]
				dst := be.ein[(pi*c+bi)*k : (pi*c+bi)*k+k]
				src := ed[i*k : i*k+k]
				for j := range dst {
					dst[j] = src[j]
				}
			}
		}
	}
	be.eng.ResetFast()
	be.eng.SetExplicit(be.ein)
	iters, delta, converged, runErr := be.eng.RunContext(ctx, s.maxIter, s.tol, nil)
	s.iterations.Add(int64(iters))

	// One shared error value per chunk: its requests share rounds, so
	// they share the outcome too.
	var chunkErr error
	switch {
	case runErr != nil:
		chunkErr = fmt.Errorf("core: %v batch: %w", s.method, runErr) //lsbp:ignore hotpath-noalloc -- error construction runs only on cancelled chunks
	case !converged:
		//lsbp:ignore hotpath-noalloc -- error construction runs only on non-converged chunks
		chunkErr = fmt.Errorf("core: %v after %d iterations (delta %g): %w", s.method, iters, delta, errs.ErrNotConverged)
	}

	// De-interleave results and fill the chunk's responses. When no
	// round completed (pre-cancelled context) the engine buffer is not
	// meaningful; the responses carry only the error.
	state := be.eng.Beliefs()
	info := SolveInfo{Iterations: iters, Converged: converged, Delta: delta}
	for bi, ri := range chunk {
		resp[ri].Info = info
		resp[ri].Err = chunkErr
		switch {
		case runErr != nil && errors.Is(runErr, errs.ErrNonFinite):
			s.notConverged.Add(1) // divergence, not a caller abort
		case runErr != nil:
			s.cancelled.Add(1)
		case !converged:
			s.notConverged.Add(1)
		}
		if iters == 0 {
			// No round completed (pre-cancelled context or a
			// non-positive iteration cap): with ResetFast the engine
			// buffer may hold a previous chunk, so expose no beliefs.
			continue
		}
		dst := reqs[ri].Dst
		if dst == nil {
			dst = beliefs.New(n, k) //lsbp:ignore hotpath-noalloc -- a nil Dst is the caller opting out of zero-alloc
		}
		dd := dst.Matrix().Data()
		if s.perm == nil {
			for i := 0; i < n; i++ {
				out := dd[i*k : i*k+k]
				src := state[(i*c+bi)*k : (i*c+bi)*k+k]
				for j := range out {
					out[j] = src[j]
				}
			}
		} else {
			for i := 0; i < n; i++ {
				pi := s.perm[i]
				out := dd[i*k : i*k+k]
				src := state[(pi*c+bi)*k : (pi*c+bi)*k+k]
				for j := range out {
					out[j] = src[j]
				}
			}
		}
		resp[ri].Beliefs = dst
	}
	if runErr != nil && ctx.Err() != nil {
		// Only a dead context condemns the chunks that follow; a
		// numeric failure is this chunk's alone.
		return fmt.Errorf("core: %v batch: %w", s.method, runErr)
	}
	return nil
}

func (s *linbpSolver) Close() error {
	return s.closeOnce(func() {
		s.states.closeAll()
		for _, bp := range s.batch {
			bp.closeAll()
		}
		if s.rstates != nil {
			s.rstates.closeAll()
		}
	})
}

// ---------------------------------------------------------------------------
// BP

// bpState is one per-solve BP workspace: a clone of the shared
// directed-edge layout with private message buffers, plus the
// layout-order permutation scratch.
type bpState struct {
	eng          *bp.Engine
	eperm, dperm *beliefs.Residual // layout-order scratch (nil without perm)
}

// bpSolver serves standard loopy BP through pooled clones of one
// prepared bp.Engine: the directed-edge layout is built once and
// shared read-only; message buffers live in the pooled states.
// Explicit residuals too large to be valid priors are rescaled per
// solve exactly as the one-shot Solve always did (Lemma 12). Under a
// reordered layout the engines run on the relabeled graph with scratch
// belief matrices carrying the permutation in and out.
type bpSolver struct {
	solverBase
	perm   order.Permutation
	states *statePool[*bpState]
}

func newBPSolver(p *Problem, base solverInfo, cfg config, perm order.Permutation) (*bpSolver, error) {
	return newBPSolverOn(p.Graph, p.Ho, base, cfg, perm)
}

// newBPSolverOn builds the snapshot on an explicit caller-order graph —
// the rebuild entry point of the dynamic plane (which passes a private
// clone so later updates never race the snapshot's readers).
func newBPSolverOn(cg *graph.Graph, ho *dense.Matrix, base solverInfo, cfg config, perm order.Permutation) (*bpSolver, error) {
	h := coupling.Uncenter(coupling.Scale(ho, base.eps))
	g := cg
	if perm != nil {
		g = g.Permute(perm)
	}
	// proto carries the shared directed-edge layout; every pooled state
	// clones it (sharing the layout, owning its message buffers), so
	// concurrent pool misses never touch shared mutable state.
	proto, err := bp.NewEngine(g, h, bp.Options{MaxIter: cfg.maxIter, Tol: cfg.tol})
	if err != nil {
		return nil, err
	}
	s := &bpSolver{perm: perm}
	s.solverInfo = base
	s.states = newStatePool(func() (*bpState, error) {
		st := &bpState{eng: proto.Clone()}
		if s.perm != nil {
			st.eperm = beliefs.New(s.n, s.k)
			st.dperm = beliefs.New(s.n, s.k)
		}
		return st, nil
	})
	st, err := s.states.get()
	if err != nil {
		return nil, err
	}
	s.states.put(st)
	return s, nil
}

func (s *bpSolver) Solve(ctx context.Context, e *beliefs.Residual) (*Result, error) {
	if !s.begin() {
		return nil, s.errClosed()
	}
	defer s.end()
	dst := beliefs.New(s.n, s.k)
	if err := s.checkShapes(dst, e); err != nil {
		return nil, err
	}
	s.solves.Add(1)
	info, err := s.solveInto(ctx, dst, e)
	return s.finish(dst, info, err)
}

func (s *bpSolver) SolveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error) {
	if !s.begin() {
		return SolveInfo{}, s.errClosed()
	}
	defer s.end()
	if err := s.checkShapes(dst, e); err != nil {
		return SolveInfo{}, err
	}
	s.solves.Add(1)
	return s.solveInto(ctx, dst, e)
}

func (s *bpSolver) solveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error) {
	if err := s.admitCtx(ctx); err != nil {
		return SolveInfo{}, err
	}
	st, err := s.states.get()
	if err != nil {
		return SolveInfo{}, err
	}
	defer s.states.put(st)
	scale := bpSafeScale(e) // row shuffles keep MaxAbs, so original e is fine
	var iters int
	var delta float64
	var converged bool
	if s.perm == nil {
		iters, delta, converged, err = st.eng.SolveInto(ctx, dst, e, scale)
	} else {
		s.perm.ApplyRows(st.eperm.Matrix().Data(), e.Matrix().Data(), s.k)
		iters, delta, converged, err = st.eng.SolveInto(ctx, st.dperm, st.eperm, scale)
		s.perm.InvertRows(dst.Matrix().Data(), st.dperm.Matrix().Data(), s.k)
	}
	return s.record(SolveInfo{Iterations: iters, Converged: converged, Delta: delta}, err)
}

func (s *bpSolver) SolveBatch(ctx context.Context, reqs []Request) []Response {
	if !s.begin() {
		return failAll(reqs, s.errClosed())
	}
	defer s.end()
	return s.sequentialBatch(ctx, reqs, s.solveInto)
}

func (s *bpSolver) Close() error { return s.closeOnce(nil) }

// ---------------------------------------------------------------------------
// SBP

// sbpState is one per-solve SBP workspace: a private Runner (each
// caches its own geodesic ordering) plus permutation scratch.
type sbpState struct {
	runner       *sbp.Runner
	eperm, dperm *beliefs.Residual // layout-order scratch (nil without perm)
}

// sbpSolver serves single-pass BP. Solve materializes a full
// incremental State (the legacy contract — Result.SBP supports
// AddExplicitBeliefs/AddEdges); that State aliases the problem's
// graph, so its mutators fall outside the solver's concurrency
// guarantee (see the Solver doc). SolveInto and SolveBatch use pooled
// prepared Runners, each reusing its geodesic ordering across solves
// with an unchanged explicit node set. SBP is εH-invariant, so the
// unscaled Hˆo is used throughout. Under a reordered layout the
// Runners work on the relabeled graph (the incremental Solve path
// keeps the caller's graph — its State exposes node ids).
type sbpSolver struct {
	solverBase
	g      *graph.Graph // caller-order graph (legacy Solve path)
	pg     *graph.Graph // layout-ordered graph the runners serve on
	ho     *dense.Matrix
	perm   order.Permutation
	states *statePool[*sbpState]
}

func newSBPSolver(p *Problem, base solverInfo, perm order.Permutation) (*sbpSolver, error) {
	return newSBPSolverOn(p.Graph, p.Ho, base, perm)
}

// newSBPSolverOn builds the snapshot on an explicit caller-order graph
// (the dynamic plane passes a private clone per epoch).
func newSBPSolverOn(cg *graph.Graph, ho *dense.Matrix, base solverInfo, perm order.Permutation) (*sbpSolver, error) {
	g := cg
	if perm != nil {
		g = g.Permute(perm)
	}
	s := &sbpSolver{g: cg, pg: g, ho: ho, perm: perm}
	s.solverInfo = base
	if cg.N() > 0 {
		// Warm the caller-order graph's lazy neighbor index while
		// preparation is single-goroutine; concurrent legacy Solves
		// then only read it. (NewRunner warms the layout-order graph.)
		cg.Degree(0)
	}
	s.states = newStatePool(func() (*sbpState, error) {
		runner, err := sbp.NewRunner(s.pg, s.ho)
		if err != nil {
			return nil, err
		}
		st := &sbpState{runner: runner}
		if s.perm != nil {
			st.eperm = beliefs.New(s.n, s.k)
			st.dperm = beliefs.New(s.n, s.k)
		}
		return st, nil
	})
	st, err := s.states.get()
	if err != nil {
		return nil, err
	}
	s.states.put(st)
	return s, nil
}

func (s *sbpSolver) Solve(ctx context.Context, e *beliefs.Residual) (*Result, error) {
	if !s.begin() {
		return nil, s.errClosed()
	}
	defer s.end()
	if err := s.checkShapes(e, e); err != nil {
		return nil, err
	}
	s.solves.Add(1)
	if err := s.admitCtx(ctx); err != nil {
		return nil, err
	}
	st, err := sbp.RunContext(ctx, s.g, e, s.ho)
	if err != nil {
		s.cancelled.Add(1)
		return nil, fmt.Errorf("core: %v solve: %w", s.method, err)
	}
	res := &Result{Method: s.method, Beliefs: st.Beliefs(), SBP: st, Converged: true}
	for _, g := range st.Geodesics() {
		if g > res.Iterations {
			res.Iterations = g
		}
	}
	s.iterations.Add(int64(res.Iterations))
	res.Top = res.Beliefs.TopAssignment()
	return res, nil
}

func (s *sbpSolver) SolveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error) {
	if !s.begin() {
		return SolveInfo{}, s.errClosed()
	}
	defer s.end()
	if err := s.checkShapes(dst, e); err != nil {
		return SolveInfo{}, err
	}
	s.solves.Add(1)
	return s.solveInto(ctx, dst, e)
}

func (s *sbpSolver) solveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error) {
	if err := s.admitCtx(ctx); err != nil {
		return SolveInfo{}, err
	}
	st, err := s.states.get()
	if err != nil {
		return SolveInfo{}, err
	}
	defer s.states.put(st)
	var levels int
	if s.perm == nil {
		levels, err = st.runner.SolveInto(ctx, dst, e)
	} else {
		s.perm.ApplyRows(st.eperm.Matrix().Data(), e.Matrix().Data(), s.k)
		levels, err = st.runner.SolveInto(ctx, st.dperm, st.eperm)
		s.perm.InvertRows(dst.Matrix().Data(), st.dperm.Matrix().Data(), s.k)
	}
	info := SolveInfo{Iterations: levels, Converged: err == nil}
	return s.record(info, err)
}

func (s *sbpSolver) SolveBatch(ctx context.Context, reqs []Request) []Response {
	if !s.begin() {
		return failAll(reqs, s.errClosed())
	}
	defer s.end()
	return s.sequentialBatch(ctx, reqs, s.solveInto)
}

func (s *sbpSolver) Close() error { return s.closeOnce(nil) }

// ---------------------------------------------------------------------------
// FABP

// fabpState is one per-solve FABP workspace: a prepared scalar engine
// plus the collapse/expand scratch vectors.
type fabpState struct {
	eng        *fabp.Engine
	es, bs, ss []float64 // scalar explicit/result/start scratch (layout order)
	// reng and ts serve the residual schedule; reng is nil when the
	// schedule is rounds-only or a negative tolerance forces fixed
	// rounds, and ts is the layout-order touched-row scratch.
	reng *fabp.ResidualEngine
	ts   []int32
}

// fabpSolver serves the binary (k = 2) scalar linearization of
// Appendix E through pooled prepared fabp.Engines. The k×k residual
// problem surface is kept: explicit beliefs come in as n×2 residual
// rows whose class-0 component is the scalar input, and results are
// expanded back to (b, −b) rows, so FABP really is a drop-in fifth
// method.
type fabpSolver struct {
	solverBase
	a          *sparse.CSR
	d          []float64
	hhat       float64
	perm       order.Permutation
	partStarts []int
	maxIter    int
	tol        float64
	states     *statePool[*fabpState]
}

func newFABPSolver(p *Problem, base solverInfo, cfg config, perm order.Permutation) (*fabpSolver, error) {
	if p.K() != 2 {
		return nil, fmt.Errorf("core: FABP needs k=2 classes, got k=%d: %w", p.K(), errs.ErrDimensionMismatch)
	}
	a, d := permutedLayout(p.Graph.Adjacency(), p.Graph.WeightedDegrees(), perm)
	lay := kernelLayout{a: a, d: d, perm: perm,
		partStarts: resolvePartition(cfg.partitions, cfg.workers, a, &base)}
	// Any valid k=2 residual coupling has the form [[ĥ,−ĥ],[−ĥ,ĥ]];
	// the scaled ĥ is its (0,0) entry.
	return newFABPSolverOn(base.eps*p.Ho.At(0, 0), base, cfg, lay)
}

// newFABPSolverOn builds the snapshot on an explicit layout; base must
// already carry the partition diagnostics for lay.partStarts.
func newFABPSolverOn(hhat float64, base solverInfo, cfg config, lay kernelLayout) (*fabpSolver, error) {
	s := &fabpSolver{
		a:          lay.a,
		d:          lay.d,
		hhat:       hhat,
		perm:       lay.perm,
		partStarts: lay.partStarts,
		maxIter:    cfg.maxIter,
		tol:        cfg.tol,
	}
	s.solverInfo = base
	s.states = newStatePool(func() (*fabpState, error) {
		eng, err := fabp.NewEngineCSR(s.a, s.d, s.hhat, fabp.Options{
			MaxIter: s.maxIter, Tol: s.tol, PartitionStarts: s.partStarts,
		})
		if err != nil {
			return nil, err
		}
		st := &fabpState{
			eng: eng,
			es:  make([]float64, s.n),
			bs:  make([]float64, s.n),
			ss:  make([]float64, s.n),
		}
		if s.schedule != ScheduleRounds && s.tol >= 0 {
			// Tol 0 selects the package default inside fabp, matching the
			// rounds engine above; only an explicit fixed-round tolerance
			// (< 0) leaves the residual plane out.
			st.reng, err = fabp.NewResidualEngineCSR(s.a, s.d, s.hhat, fabp.Options{
				MaxIter: s.maxIter, Tol: s.tol,
			})
			if err != nil {
				eng.Close()
				return nil, err
			}
			st.ts = make([]int32, 0, s.n)
		}
		return st, nil
	}).withDestroy(func(st *fabpState) { st.eng.Close() })
	st, err := s.states.get()
	if err != nil {
		return nil, err
	}
	s.states.put(st)
	return s, nil
}

func (s *fabpSolver) Solve(ctx context.Context, e *beliefs.Residual) (*Result, error) {
	if !s.begin() {
		return nil, s.errClosed()
	}
	defer s.end()
	dst := beliefs.New(s.n, s.k)
	if err := s.checkShapes(dst, e); err != nil {
		return nil, err
	}
	s.solves.Add(1)
	info, err := s.solveInto(ctx, dst, e)
	return s.finish(dst, info, err)
}

func (s *fabpSolver) SolveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error) {
	if !s.begin() {
		return SolveInfo{}, s.errClosed()
	}
	defer s.end()
	if err := s.checkShapes(dst, e); err != nil {
		return SolveInfo{}, err
	}
	s.solves.Add(1)
	return s.solveInto(ctx, dst, e)
}

func (s *fabpSolver) solveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error) {
	return s.solveFromInto(ctx, dst, e, nil, nil, s.schedule == ScheduleResidual)
}

// SolveFrom is the warm-started serving path of the dynamic plane (see
// linbpSolver.SolveFrom); the binary collapse starts the Jacobi
// iteration at start's class-0 residuals. A nil start solves cold.
// Under ScheduleResidual it is served by the residual plane (full warm
// seed — valid from any start).
func (s *fabpSolver) SolveFrom(ctx context.Context, dst, e, start *beliefs.Residual) (SolveInfo, error) {
	if !s.begin() {
		return SolveInfo{}, s.errClosed()
	}
	defer s.end()
	if err := s.checkShapes(dst, e); err != nil {
		return SolveInfo{}, err
	}
	if start != nil && (start.N() != s.n || start.K() != s.k) {
		return SolveInfo{}, fmt.Errorf("core: start matrix %dx%d does not match n=%d k=%d: %w",
			start.N(), start.K(), s.n, s.k, errs.ErrDimensionMismatch)
	}
	s.solves.Add(1)
	return s.solveFromInto(ctx, dst, e, start, nil, s.schedule == ScheduleResidual)
}

// SolveSeeded is the residual plane's localized entry point (see
// seededSolver and linbpSolver.SolveSeeded).
func (s *fabpSolver) SolveSeeded(ctx context.Context, dst, e, start *beliefs.Residual, touched []int) (SolveInfo, error) {
	if !s.begin() {
		return SolveInfo{}, s.errClosed()
	}
	defer s.end()
	if err := s.checkShapes(dst, e); err != nil {
		return SolveInfo{}, err
	}
	if start != nil && (start.N() != s.n || start.K() != s.k) {
		return SolveInfo{}, fmt.Errorf("core: start matrix %dx%d does not match n=%d k=%d: %w",
			start.N(), start.K(), s.n, s.k, errs.ErrDimensionMismatch)
	}
	s.solves.Add(1)
	return s.solveFromInto(ctx, dst, e, start, touched, true)
}

// solveFromInto is the shared collapse/solve/expand body. residual
// selects the residual-scheduled plane; it degrades to warm rounds
// when the pooled state has no residual engine (fixed-round tolerance
// under ScheduleAuto).
func (s *fabpSolver) solveFromInto(ctx context.Context, dst, e, start *beliefs.Residual, touched []int, residual bool) (SolveInfo, error) {
	if err := s.admitCtx(ctx); err != nil {
		return SolveInfo{}, err
	}
	st, err := s.states.get()
	if err != nil {
		return SolveInfo{}, err
	}
	defer s.states.put(st)
	// The scalar collapse/expand copies double as the layout shuffle:
	// indexing through perm costs nothing extra per element.
	ed := e.Matrix().Data()
	if s.perm == nil {
		for i := 0; i < s.n; i++ {
			st.es[i] = ed[i*2]
		}
	} else {
		for i := 0; i < s.n; i++ {
			st.es[s.perm[i]] = ed[i*2]
		}
	}
	var ss []float64
	if start != nil {
		sd := start.Matrix().Data()
		ss = st.ss
		if s.perm == nil {
			for i := 0; i < s.n; i++ {
				ss[i] = sd[i*2]
			}
		} else {
			for i := 0; i < s.n; i++ {
				ss[s.perm[i]] = sd[i*2]
			}
		}
	}
	var iters, relaxed, peak int
	var delta float64
	var converged bool
	if residual && st.reng != nil {
		var tptr []int32
		if touched != nil {
			ts := st.ts[:0]
			if s.perm == nil {
				for _, id := range touched {
					ts = append(ts, int32(id))
				}
			} else {
				for _, id := range touched {
					ts = append(ts, int32(s.perm[id]))
				}
			}
			st.ts = ts
			tptr = ts
		}
		relaxed, peak, delta, converged, err = st.reng.SolveSeeded(ctx, st.bs, st.es, ss, tptr)
		if s.n > 0 {
			iters = (relaxed + s.n - 1) / s.n
		}
	} else {
		iters, delta, converged, err = st.eng.SolveFromInto(ctx, st.bs, st.es, ss)
	}
	dd := dst.Matrix().Data()
	if s.perm == nil {
		for i, b := range st.bs {
			dd[i*2], dd[i*2+1] = b, -b
		}
	} else {
		for i := 0; i < s.n; i++ {
			b := st.bs[s.perm[i]]
			dd[i*2], dd[i*2+1] = b, -b
		}
	}
	return s.record(SolveInfo{
		Iterations: iters, Converged: converged, Delta: delta,
		RowsRelaxed: relaxed, QueuePeak: peak,
	}, err)
}

func (s *fabpSolver) SolveBatch(ctx context.Context, reqs []Request) []Response {
	if !s.begin() {
		return failAll(reqs, s.errClosed())
	}
	defer s.end()
	return s.sequentialBatch(ctx, reqs, s.solveInto)
}

func (s *fabpSolver) Close() error {
	return s.closeOnce(func() {
		s.states.closeAll()
	})
}
