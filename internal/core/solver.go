// The prepared-solver serving surface: Prepare builds a Solver that
// preprocesses everything derivable from the problem's fixed parts —
// the CSR adjacency, the weighted degrees, the flattened couplings,
// kernel workspaces, BP's directed-edge layout, SBP's geodesic ordering
// — once, and then answers many solves for changing explicit beliefs.
// This is the "prepare once, solve many" shape the paper's
// data-management pitch implies: one network, heavy repeated
// classification traffic.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/beliefs"
	"repro/internal/bp"
	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/errs"
	"repro/internal/fabp"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/linbp"
	"repro/internal/order"
	"repro/internal/sbp"
	"repro/internal/sparse"
)

// Option configures Prepare. Options replace the zero-value Options
// struct for the prepared API; unset options select the same per-method
// defaults the one-shot Solve uses.
type Option func(*config)

type config struct {
	workers int
	maxIter int
	tol     float64
	echo    bool
	echoSet bool
	autoEps bool
	reorder Reordering
	layout  kernel.Layout
}

// Reordering selects the prepare-time graph layout strategy; see
// WithReordering. The zero value is ReorderAuto.
type Reordering = order.Strategy

// The selectable reorderings (re-exported from internal/order).
const (
	// ReorderAuto evaluates RCM and the degree sort with a cheap
	// edge-span heuristic and keeps the natural order unless one of
	// them wins; small graphs (below order.AutoMinNodes) always keep
	// the natural order. The default.
	ReorderAuto = order.StrategyAuto
	// ReorderRCM forces reverse Cuthill–McKee.
	ReorderRCM = order.StrategyRCM
	// ReorderDegree forces the descending-degree hub-packing sort.
	ReorderDegree = order.StrategyDegree
	// ReorderNone keeps the caller's node order.
	ReorderNone = order.StrategyNone
)

// ParseReordering maps the flag spellings auto|rcm|degree|none onto
// Reordering values.
func ParseReordering(name string) (Reordering, error) { return order.ParseStrategy(name) }

// WithWorkers sets the goroutine count of the fused kernel's
// row-partitioned parallel pass (LinBP, LinBP*, FABP, and their
// batches). 0 or 1 selects the serial kernel. BP and SBP ignore it.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithMaxIter bounds the update rounds of iterative methods
// (method-specific default when unset or 0).
func WithMaxIter(n int) Option { return func(c *config) { c.maxIter = n } }

// WithTol sets the convergence tolerance: iteration stops once no
// belief (or BP message) entry changes by more than tol between
// rounds. 0 selects the method default; negative forces exactly
// MaxIter rounds (the paper's timing setup).
func WithTol(tol float64) Option { return func(c *config) { c.tol = tol } }

// WithEchoCancellation selects between LinBP (true, Eq. 4) and LinBP*
// (false, Eq. 5) regardless of which of the two methods was named;
// other methods ignore it.
func WithEchoCancellation(on bool) Option {
	return func(c *config) { c.echo = on; c.echoSet = true }
}

// WithAutoEpsilonH derives the coupling scale from the exact
// convergence criterion (half the Lemma 8 threshold, the paper's
// Section 7 recommendation) instead of using Problem.EpsilonH. BP and
// FABP borrow LinBP's criterion; SBP is εH-invariant and ignores it.
// The chosen value is reported by Stats().EpsilonH.
func WithAutoEpsilonH() Option { return func(c *config) { c.autoEps = true } }

// WithReordering selects the prepare-time node reordering of the graph
// layout optimizer (ReorderAuto when unset): the adjacency structure is
// relabeled once for cache locality, every engine the solver prepares
// runs over the relabeled layout, and explicit beliefs/results are
// permuted on the way in/out so callers keep their node ids — with no
// extra steady-state allocations on SolveInto or SolveBatch. Stats()
// reports the ordering chosen and the bandwidth before/after.
func WithReordering(r Reordering) Option { return func(c *config) { c.reorder = r } }

// WithCompactIndices toggles the engines' compact (int32) CSR index
// layout, on by default whenever the matrix fits it. Turning it off
// restores the wide layout of PR 2; layout benchmarks and debugging are
// the only reasons to do so.
func WithCompactIndices(on bool) Option {
	return func(c *config) {
		if on {
			c.layout = kernel.LayoutCompact
		} else {
			c.layout = kernel.LayoutWide
		}
	}
}

// SolveInfo describes one completed solve on the serving path.
type SolveInfo struct {
	// Iterations is the number of update rounds executed (for SBP, the
	// number of geodesic levels propagated).
	Iterations int
	// Converged reports whether the fixpoint was reached within the
	// tolerance. SBP always converges.
	Converged bool
	// Delta is the final maximum belief/message change (0 for SBP).
	Delta float64
}

// Request is one unit of work for Solver.SolveBatch.
type Request struct {
	// E holds the explicit residual beliefs of this request (n×k).
	E *beliefs.Residual
	// Dst, when non-nil, receives the final residual beliefs (n×k,
	// overwritten), so steady-state batches allocate nothing. When nil
	// a fresh matrix is allocated for the response.
	Dst *beliefs.Residual
}

// Response is the outcome of one batch request.
type Response struct {
	// Beliefs holds the final residual beliefs (Request.Dst when that
	// was set). nil when Err prevented the solve from running.
	Beliefs *beliefs.Residual
	// Info carries the solve diagnostics. Requests batched into the
	// same fused chunk share rounds, so they report the chunk's
	// iteration count and maximum delta.
	Info SolveInfo
	// Err is nil on success, wraps ErrNotConverged when the iteration
	// budget ran out (Beliefs then holds the last iterate), wraps
	// ErrDimensionMismatch for ill-shaped requests, or carries the
	// context error when the batch was cancelled.
	Err error
}

// SolverStats is a snapshot of a Solver's configuration and lifetime
// counters, for serving observability.
type SolverStats struct {
	// Method is the prepared inference method.
	Method Method
	// N and K are the problem dimensions.
	N, K int
	// Workers is the configured kernel worker count (0 = serial).
	Workers int
	// EpsilonH is the effective coupling scale (after WithAutoEpsilonH).
	EpsilonH float64
	// Ordering is the node reordering the prepare-time layout
	// optimizer chose — always a concrete strategy (rcm, degree, or
	// none), never auto.
	Ordering Reordering
	// BandwidthBefore and BandwidthAfter are the adjacency bandwidths
	// under the natural and the chosen ordering (equal when Ordering
	// is none).
	BandwidthBefore, BandwidthAfter int
	// Solves counts completed Solve/SolveInto calls; BatchRequests
	// counts requests served through SolveBatch (Batches calls) for
	// every method — batch-internal solves are not double-counted
	// into Solves.
	Solves, Batches, BatchRequests int64
	// Iterations accumulates the update rounds the engine executed —
	// the work done, so requests fused into one chunk contribute
	// their shared rounds once.
	Iterations int64
	// NotConverged counts solves that exhausted the iteration budget;
	// Cancelled counts solves aborted by context.
	NotConverged, Cancelled int64
}

// Solver is a prepared inference engine over one fixed problem
// configuration (graph + coupling + εH): construct it once with
// Prepare (or the per-method PrepareBP/PrepareLinBP/PrepareSBP/
// PrepareFABP wrappers in the facade), then issue many solves for
// changing explicit beliefs. All four methods serve through this one
// interface with their preprocessed state reused across solves.
//
// Solvers are not safe for concurrent use; run one per goroutine or
// serialize access. Close releases pooled resources.
type Solver interface {
	// Solve runs the method for the explicit residual beliefs e and
	// allocates a fresh result (including the top-belief assignment).
	// Non-convergence is reported as an error wrapping ErrNotConverged
	// with the result still returned; cancellation via ctx returns the
	// context error within one kernel round.
	Solve(ctx context.Context, e *beliefs.Residual) (*Result, error)
	// SolveInto is the serving path: it writes the final residual
	// beliefs into dst (n×k, overwritten) and skips the result and
	// top-assignment allocations. For the kernel-backed methods
	// (LinBP, LinBP*, FABP) steady-state calls allocate nothing.
	SolveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error)
	// SolveBatch answers independent requests over the shared prepared
	// state, amortizing workspace acquisition across the batch; the
	// LinBP/LinBP* implementation additionally fuses requests into
	// multi-block kernel rounds that traverse the adjacency structure
	// once per round for the whole batch. The returned slice is owned
	// by the solver and overwritten by the next SolveBatch call.
	SolveBatch(ctx context.Context, reqs []Request) []Response
	// Stats returns a snapshot of configuration and serving counters.
	Stats() SolverStats
	// Close releases pooled resources. It is idempotent; any solve
	// after Close fails with ErrClosed.
	Close() error
}

// Prepare validates the problem once and builds a prepared Solver for
// the method. The problem's Graph, Ho, and EpsilonH are fixed at
// preparation time; Explicit only participates in shape validation and
// may be a zero matrix for pure serving use.
func Prepare(p *Problem, m Method, opts ...Option) (Solver, error) {
	var cfg config
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch m {
	case MethodBP, MethodLinBP, MethodLinBPStar, MethodSBP, MethodFABP:
	default:
		return nil, fmt.Errorf("core: unknown method %v", m)
	}
	echo := m != MethodLinBPStar // LinBP and the FABP collapse cancel echo
	if cfg.echoSet && (m == MethodLinBP || m == MethodLinBPStar) {
		echo = cfg.echo
		if echo {
			m = MethodLinBP
		} else {
			m = MethodLinBPStar
		}
	}
	eps := p.EpsilonH
	if cfg.autoEps && m != MethodSBP {
		var err error
		eps, err = autoEpsilon(p.Graph, p.Ho, m == MethodLinBP || m == MethodBP || m == MethodFABP)
		if err != nil {
			return nil, err
		}
	}
	base := solverBase{method: m, n: p.Graph.N(), k: p.K(), workers: cfg.workers, eps: eps}

	// The layout optimizer runs once per prepared solver: resolve the
	// reordering strategy on the adjacency structure and record the
	// locality diagnostics. perm is nil for the natural order.
	a := p.Graph.Adjacency()
	perm, chosen := order.Compute(cfg.reorder, a)
	base.ordering = chosen
	base.bandBefore = order.Bandwidth(a, nil)
	base.bandAfter = base.bandBefore
	if perm != nil {
		base.bandAfter = order.Bandwidth(a, perm)
	}

	switch m {
	case MethodBP:
		return newBPSolver(p, base, cfg, perm)
	case MethodLinBP, MethodLinBPStar:
		return newLinBPSolver(p, base, cfg, perm)
	case MethodSBP:
		return newSBPSolver(p, base, perm)
	default:
		return newFABPSolver(p, base, cfg, perm)
	}
}

// permutedLayout applies perm to the adjacency and (optionally) the
// degree vector, returning the relabeled pair. d may be nil.
func permutedLayout(a *sparse.CSR, d []float64, perm order.Permutation) (*sparse.CSR, []float64) {
	if perm == nil {
		return a, d
	}
	ap := a.Permute(perm)
	if d == nil {
		return ap, nil
	}
	dp := make([]float64, len(d))
	for i, v := range d {
		dp[perm[i]] = v
	}
	return ap, dp
}

// autoEpsilon is AutoEpsilonH without the method restriction: half the
// exact Lemma 8 threshold for the chosen echo setting.
func autoEpsilon(g *graph.Graph, ho *dense.Matrix, echo bool) (float64, error) {
	eps, err := linbp.MaxEpsilonH(g, ho, echo, true)
	if err != nil {
		return 0, err
	}
	if math.IsInf(eps, 1) {
		return 1, nil
	}
	return eps / 2, nil
}

// solverBase carries the identity and counters every method solver
// shares. Counters are plain ints because a Solver is single-goroutine
// by contract; the kernel's internal worker pool never touches them.
type solverBase struct {
	method  Method
	n, k    int
	workers int
	eps     float64
	closed  bool

	ordering              Reordering
	bandBefore, bandAfter int

	solves, batches, batchReqs int64
	iterations                 int64
	notConverged, cancelled    int64
	resp                       []Response
}

func (b *solverBase) Stats() SolverStats {
	return SolverStats{
		Method: b.method, N: b.n, K: b.k, Workers: b.workers, EpsilonH: b.eps,
		Ordering: b.ordering, BandwidthBefore: b.bandBefore, BandwidthAfter: b.bandAfter,
		Solves: b.solves, Batches: b.batches, BatchRequests: b.batchReqs,
		Iterations: b.iterations, NotConverged: b.notConverged, Cancelled: b.cancelled,
	}
}

// record folds one solve outcome into the counters and normalizes the
// error: non-convergence becomes an ErrNotConverged wrap, context
// aborts pass through.
func (b *solverBase) record(info SolveInfo, err error) (SolveInfo, error) {
	b.iterations += int64(info.Iterations)
	if err != nil {
		b.cancelled++
		return info, fmt.Errorf("core: %v solve: %w", b.method, err)
	}
	if !info.Converged {
		b.notConverged++
		return info, fmt.Errorf("core: %v after %d iterations (delta %g): %w",
			b.method, info.Iterations, info.Delta, errs.ErrNotConverged)
	}
	return info, nil
}

func (b *solverBase) errClosed() error {
	return fmt.Errorf("core: %v solver: %w", b.method, errs.ErrClosed)
}

// checkShapes validates one dst/e pair against the prepared dimensions.
func (b *solverBase) checkShapes(dst, e *beliefs.Residual) error {
	if e == nil || dst == nil {
		return fmt.Errorf("core: nil belief matrix: %w", errs.ErrDimensionMismatch)
	}
	if e.N() != b.n || e.K() != b.k || dst.N() != b.n || dst.K() != b.k {
		return fmt.Errorf("core: belief matrix %dx%d / destination %dx%d do not match n=%d k=%d: %w",
			e.N(), e.K(), dst.N(), dst.K(), b.n, b.k, errs.ErrDimensionMismatch)
	}
	return nil
}

// finish assembles the allocating-path Result from a SolveInto outcome.
func (b *solverBase) finish(dst *beliefs.Residual, info SolveInfo, err error) (*Result, error) {
	res := &Result{
		Method: b.method, Beliefs: dst,
		Iterations: info.Iterations, Converged: info.Converged, Delta: info.Delta,
	}
	if err != nil && !isNotConverged(err) {
		return nil, err
	}
	res.Top = dst.TopAssignment()
	return res, err
}

func isNotConverged(err error) bool {
	return err != nil && errors.Is(err, errs.ErrNotConverged)
}

// sequentialBatch is the shared SolveBatch shape for methods without a
// fused multi-request kernel: requests run one after another over the
// same prepared state, reusing the solver's cached response slice.
func sequentialBatch(b *solverBase, s Solver, ctx context.Context, reqs []Request) []Response {
	b.batches++
	resp := b.resp[:0]
	for _, req := range reqs {
		b.batchReqs++
		dst := req.Dst
		if dst == nil {
			dst = beliefs.New(b.n, b.k)
		}
		var r Response
		if req.E == nil {
			r.Err = fmt.Errorf("core: nil request beliefs: %w", errs.ErrDimensionMismatch)
		} else {
			// Re-classify the inner SolveInto as a batch request so
			// Solves counts the same thing for every method.
			before := b.solves
			info, err := s.SolveInto(ctx, dst, req.E)
			b.solves = before
			r = Response{Beliefs: dst, Info: info, Err: err}
		}
		resp = append(resp, r)
	}
	b.resp = resp
	return resp
}

// ---------------------------------------------------------------------------
// LinBP / LinBP*

// batchWidth caps the flat row width (blocks·k) of a fused batch
// chunk. Width 12 keeps every chunk on the kernel's register-blocked
// fast paths (k ∈ {2, 3}) and the working set close to the
// single-problem one, which matters on cache-resident graphs.
const batchWidth = 12

type linbpBatchEngine struct {
	eng *kernel.Engine
	ws  *kernel.Workspace
	ein []float64 // interleaved explicit beliefs, n × blocks·k
}

// linbpSolver serves LinBP and LinBP* through prepared kernel engines:
// one single-problem engine for Solve/SolveInto and, lazily, one fused
// multi-block engine per batch chunk size for SolveBatch. All engines
// share the graph's CSR, the degree vector, and the coupling.
type linbpSolver struct {
	solverBase
	a       *sparse.CSR // layout-ordered adjacency shared by all engines
	d       []float64   // matching degrees (nil for LinBP*)
	h       *dense.Matrix
	perm    order.Permutation // nil = natural order
	layout  kernel.Layout
	maxIter int
	tol     float64

	eng   *linbp.Engine
	batch map[int]*linbpBatchEngine
	chunk []int // scratch: indices of the requests in the current chunk
}

func newLinBPSolver(p *Problem, base solverBase, cfg config, perm order.Permutation) (*linbpSolver, error) {
	h := coupling.Scale(p.Ho, base.eps)
	var d []float64
	if base.method == MethodLinBP {
		d = p.Graph.WeightedDegrees()
	}
	a, d := permutedLayout(p.Graph.Adjacency(), d, perm)
	eng, err := linbp.NewEngineLayout(a, d, h, perm, linbp.Options{
		EchoCancellation: base.method == MethodLinBP,
		MaxIter:          cfg.maxIter,
		Tol:              cfg.tol,
		Workers:          cfg.workers,
		Layout:           cfg.layout,
	})
	if err != nil {
		return nil, err
	}
	s := &linbpSolver{
		solverBase: base,
		a:          a,
		d:          d,
		h:          h,
		perm:       perm,
		layout:     cfg.layout,
		maxIter:    cfg.maxIter,
		tol:        cfg.tol,
		eng:        eng,
		batch:      map[int]*linbpBatchEngine{},
	}
	if s.maxIter == 0 {
		s.maxIter = linbp.DefaultMaxIter
	}
	if s.tol == 0 {
		s.tol = linbp.DefaultTol
	}
	return s, nil
}

func (s *linbpSolver) Solve(ctx context.Context, e *beliefs.Residual) (*Result, error) {
	dst := beliefs.New(s.n, s.k)
	info, err := s.SolveInto(ctx, dst, e)
	return s.finish(dst, info, err)
}

func (s *linbpSolver) SolveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error) {
	if s.closed {
		return SolveInfo{}, s.errClosed()
	}
	if err := s.checkShapes(dst, e); err != nil {
		return SolveInfo{}, err
	}
	s.solves++
	iters, delta, converged, err := s.eng.SolveIntoContext(ctx, dst, e)
	return s.record(SolveInfo{Iterations: iters, Converged: converged, Delta: delta}, err)
}

// maxBlocks is the largest number of requests fused into one kernel
// chunk for this solver's class count.
func (s *linbpSolver) maxBlocks() int {
	b := batchWidth / s.k
	if b < 1 {
		return 1
	}
	return b
}

// batchEngine returns the cached fused engine for a chunk of c
// requests, building it on first use. Steady-state batches of
// recurring sizes therefore allocate nothing.
func (s *linbpSolver) batchEngine(c int) (*linbpBatchEngine, error) {
	if be, ok := s.batch[c]; ok {
		return be, nil
	}
	ws := kernel.GetWorkspace()
	eng, err := kernel.New(kernel.Config{A: s.a, D: s.d, H: s.h, Workers: s.workers, Blocks: c, Layout: s.layout, SymmetricA: true}, ws)
	if err != nil {
		ws.Release()
		return nil, fmt.Errorf("core: batch engine: %w", err)
	}
	be := &linbpBatchEngine{eng: eng, ws: ws, ein: make([]float64, s.n*c*s.k)}
	s.batch[c] = be
	return be, nil
}

// SolveBatch fuses the requests into multi-block kernel chunks: each
// update round traverses the CSR once for every request in a chunk, so
// a batch of R requests costs far less than R one-shot solves even on
// a single core (and the chunks still run on the nnz-balanced worker
// pool when Workers > 1). Requests in a chunk share rounds: iteration
// stops once every request's delta is within tolerance, and the shared
// round count and maximum delta are reported for each. Results match
// the request's one-shot solve up to summation-order rounding (~1 ulp
// per round).
func (s *linbpSolver) SolveBatch(ctx context.Context, reqs []Request) []Response {
	if s.closed {
		return s.failAllBase(reqs, s.errClosed())
	}
	s.batches++
	s.batchReqs += int64(len(reqs))
	resp := s.resp[:0]
	for range reqs {
		resp = append(resp, Response{})
	}
	s.resp = resp

	// Partition the well-shaped requests into chunks of at most
	// maxBlocks, failing ill-shaped ones up front.
	pending := s.chunk[:0]
	for i, req := range reqs {
		if req.E == nil || req.E.N() != s.n || req.E.K() != s.k ||
			(req.Dst != nil && (req.Dst.N() != s.n || req.Dst.K() != s.k)) {
			resp[i].Err = fmt.Errorf("core: request %d does not match n=%d k=%d: %w", i, s.n, s.k, errs.ErrDimensionMismatch)
			continue
		}
		pending = append(pending, i)
	}
	s.chunk = pending

	var batchErr error
	for lo := 0; lo < len(pending); lo += s.maxBlocks() {
		hi := lo + s.maxBlocks()
		if hi > len(pending) {
			hi = len(pending)
		}
		chunk := pending[lo:hi]
		if batchErr != nil {
			for _, ri := range chunk {
				resp[ri].Err = batchErr
				s.cancelled++
			}
			continue
		}
		batchErr = s.solveChunk(ctx, reqs, resp, chunk)
	}
	return resp
}

// solveChunk runs one fused chunk and fills its responses. A returned
// error (context cancellation or engine failure) tells SolveBatch to
// fail the remaining chunks without running them.
func (s *linbpSolver) solveChunk(ctx context.Context, reqs []Request, resp []Response, chunk []int) error {
	c := len(chunk)
	be, err := s.batchEngine(c)
	if err != nil {
		for _, ri := range chunk {
			resp[ri].Err = err
		}
		return err
	}
	n, k := s.n, s.k
	// Interleave the chunk's explicit beliefs: node i's blocks·k row
	// holds request 0..c-1's k-wide rows back to back. Element loops
	// instead of per-row copy() — at k ∈ {2,3} the memmove call would
	// cost more than the moved bytes. Under a reordered layout the
	// permutation rides along in the same pass: node i lands at its
	// layout position, so the shuffle costs nothing extra.
	for bi, ri := range chunk {
		ed := reqs[ri].E.Matrix().Data()
		if s.perm == nil {
			for i := 0; i < n; i++ {
				dst := be.ein[(i*c+bi)*k : (i*c+bi)*k+k]
				src := ed[i*k : i*k+k]
				for j := range dst {
					dst[j] = src[j]
				}
			}
		} else {
			for i := 0; i < n; i++ {
				pi := s.perm[i]
				dst := be.ein[(pi*c+bi)*k : (pi*c+bi)*k+k]
				src := ed[i*k : i*k+k]
				for j := range dst {
					dst[j] = src[j]
				}
			}
		}
	}
	be.eng.ResetFast()
	be.eng.SetExplicit(be.ein)
	iters, delta, converged, runErr := be.eng.RunContext(ctx, s.maxIter, s.tol, nil)
	s.iterations += int64(iters)

	// One shared error value per chunk: its requests share rounds, so
	// they share the outcome too.
	var chunkErr error
	switch {
	case runErr != nil:
		chunkErr = fmt.Errorf("core: %v batch: %w", s.method, runErr)
	case !converged:
		chunkErr = fmt.Errorf("core: %v after %d iterations (delta %g): %w",
			s.method, iters, delta, errs.ErrNotConverged)
	}

	// De-interleave results and fill the chunk's responses. When no
	// round completed (pre-cancelled context) the engine buffer is not
	// meaningful; the responses carry only the error.
	state := be.eng.Beliefs()
	info := SolveInfo{Iterations: iters, Converged: converged, Delta: delta}
	for bi, ri := range chunk {
		resp[ri].Info = info
		resp[ri].Err = chunkErr
		switch {
		case runErr != nil:
			s.cancelled++
		case !converged:
			s.notConverged++
		}
		if iters == 0 {
			// No round completed (pre-cancelled context or a
			// non-positive iteration cap): with ResetFast the engine
			// buffer may hold a previous chunk, so expose no beliefs.
			continue
		}
		dst := reqs[ri].Dst
		if dst == nil {
			dst = beliefs.New(n, k)
		}
		dd := dst.Matrix().Data()
		if s.perm == nil {
			for i := 0; i < n; i++ {
				out := dd[i*k : i*k+k]
				src := state[(i*c+bi)*k : (i*c+bi)*k+k]
				for j := range out {
					out[j] = src[j]
				}
			}
		} else {
			for i := 0; i < n; i++ {
				pi := s.perm[i]
				out := dd[i*k : i*k+k]
				src := state[(pi*c+bi)*k : (pi*c+bi)*k+k]
				for j := range out {
					out[j] = src[j]
				}
			}
		}
		resp[ri].Beliefs = dst
	}
	if runErr != nil {
		return fmt.Errorf("core: %v batch: %w", s.method, runErr)
	}
	return nil
}

func (s *linbpSolver) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.eng.Close()
	for _, be := range s.batch {
		be.eng.Close()
		be.ws.Release()
	}
	return nil
}

// ---------------------------------------------------------------------------
// BP

// bpSolver serves standard loopy BP through a prepared bp.Engine,
// reusing the directed-edge layout and message buffers across solves.
// Explicit residuals too large to be valid priors are rescaled per
// solve exactly as the one-shot Solve always did (Lemma 12). Under a
// reordered layout the engine runs on the relabeled graph with scratch
// belief matrices carrying the permutation in and out.
type bpSolver struct {
	solverBase
	eng          *bp.Engine
	perm         order.Permutation
	eperm, dperm *beliefs.Residual // layout-order scratch (nil without perm)
}

func newBPSolver(p *Problem, base solverBase, cfg config, perm order.Permutation) (*bpSolver, error) {
	h := coupling.Uncenter(coupling.Scale(p.Ho, base.eps))
	g := p.Graph
	if perm != nil {
		g = g.Permute(perm)
	}
	eng, err := bp.NewEngine(g, h, bp.Options{MaxIter: cfg.maxIter, Tol: cfg.tol})
	if err != nil {
		return nil, err
	}
	s := &bpSolver{solverBase: base, eng: eng, perm: perm}
	if perm != nil {
		s.eperm = beliefs.New(base.n, base.k)
		s.dperm = beliefs.New(base.n, base.k)
	}
	return s, nil
}

func (s *bpSolver) Solve(ctx context.Context, e *beliefs.Residual) (*Result, error) {
	dst := beliefs.New(s.n, s.k)
	info, err := s.SolveInto(ctx, dst, e)
	return s.finish(dst, info, err)
}

func (s *bpSolver) SolveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error) {
	if s.closed {
		return SolveInfo{}, s.errClosed()
	}
	if err := s.checkShapes(dst, e); err != nil {
		return SolveInfo{}, err
	}
	s.solves++
	scale := bpSafeScale(e) // row shuffles keep MaxAbs, so original e is fine
	var iters int
	var delta float64
	var converged bool
	var err error
	if s.perm == nil {
		iters, delta, converged, err = s.eng.SolveInto(ctx, dst, e, scale)
	} else {
		s.perm.ApplyRows(s.eperm.Matrix().Data(), e.Matrix().Data(), s.k)
		iters, delta, converged, err = s.eng.SolveInto(ctx, s.dperm, s.eperm, scale)
		s.perm.InvertRows(dst.Matrix().Data(), s.dperm.Matrix().Data(), s.k)
	}
	return s.record(SolveInfo{Iterations: iters, Converged: converged, Delta: delta}, err)
}

func (s *bpSolver) SolveBatch(ctx context.Context, reqs []Request) []Response {
	return sequentialBatch(&s.solverBase, s, ctx, reqs)
}

func (s *bpSolver) Close() error { s.closed = true; return nil }

// ---------------------------------------------------------------------------
// SBP

// sbpSolver serves single-pass BP. Solve materializes a full
// incremental State (the legacy contract — Result.SBP supports
// AddExplicitBeliefs/AddEdges); SolveInto and SolveBatch use the
// prepared Runner, which reuses the geodesic ordering across solves
// with an unchanged explicit node set. SBP is εH-invariant, so the
// unscaled Hˆo is used throughout. Under a reordered layout the Runner
// works on the relabeled graph (the incremental Solve path keeps the
// caller's graph — its State exposes node ids).
type sbpSolver struct {
	solverBase
	g            *graph.Graph
	ho           *dense.Matrix
	runner       *sbp.Runner
	perm         order.Permutation
	eperm, dperm *beliefs.Residual // layout-order scratch (nil without perm)
}

func newSBPSolver(p *Problem, base solverBase, perm order.Permutation) (*sbpSolver, error) {
	g := p.Graph
	if perm != nil {
		g = g.Permute(perm)
	}
	runner, err := sbp.NewRunner(g, p.Ho)
	if err != nil {
		return nil, err
	}
	s := &sbpSolver{solverBase: base, g: p.Graph, ho: p.Ho, runner: runner, perm: perm}
	if perm != nil {
		s.eperm = beliefs.New(base.n, base.k)
		s.dperm = beliefs.New(base.n, base.k)
	}
	return s, nil
}

func (s *sbpSolver) Solve(ctx context.Context, e *beliefs.Residual) (*Result, error) {
	if s.closed {
		return nil, s.errClosed()
	}
	if err := s.checkShapes(e, e); err != nil {
		return nil, err
	}
	s.solves++
	st, err := sbp.RunContext(ctx, s.g, e, s.ho)
	if err != nil {
		s.cancelled++
		return nil, fmt.Errorf("core: %v solve: %w", s.method, err)
	}
	res := &Result{Method: s.method, Beliefs: st.Beliefs(), SBP: st, Converged: true}
	for _, g := range st.Geodesics() {
		if g > res.Iterations {
			res.Iterations = g
		}
	}
	s.iterations += int64(res.Iterations)
	res.Top = res.Beliefs.TopAssignment()
	return res, nil
}

func (s *sbpSolver) SolveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error) {
	if s.closed {
		return SolveInfo{}, s.errClosed()
	}
	if err := s.checkShapes(dst, e); err != nil {
		return SolveInfo{}, err
	}
	s.solves++
	var levels int
	var err error
	if s.perm == nil {
		levels, err = s.runner.SolveInto(ctx, dst, e)
	} else {
		s.perm.ApplyRows(s.eperm.Matrix().Data(), e.Matrix().Data(), s.k)
		levels, err = s.runner.SolveInto(ctx, s.dperm, s.eperm)
		s.perm.InvertRows(dst.Matrix().Data(), s.dperm.Matrix().Data(), s.k)
	}
	info := SolveInfo{Iterations: levels, Converged: err == nil}
	return s.record(info, err)
}

func (s *sbpSolver) SolveBatch(ctx context.Context, reqs []Request) []Response {
	if s.closed {
		return s.failAllBase(reqs, s.errClosed())
	}
	return sequentialBatch(&s.solverBase, s, ctx, reqs)
}

func (s *sbpSolver) Close() error { s.closed = true; return nil }

// ---------------------------------------------------------------------------
// FABP

// fabpSolver serves the binary (k = 2) scalar linearization of
// Appendix E through a prepared fabp.Engine. The k×k residual problem
// surface is kept: explicit beliefs come in as n×2 residual rows whose
// class-0 component is the scalar input, and results are expanded back
// to (b, −b) rows, so FABP really is a drop-in fourth method.
type fabpSolver struct {
	solverBase
	eng    *fabp.Engine
	perm   order.Permutation
	es, bs []float64 // scalar explicit/result scratch (layout order)
}

func newFABPSolver(p *Problem, base solverBase, cfg config, perm order.Permutation) (*fabpSolver, error) {
	if p.K() != 2 {
		return nil, fmt.Errorf("core: FABP needs k=2 classes, got k=%d: %w", p.K(), errs.ErrDimensionMismatch)
	}
	// Any valid k=2 residual coupling has the form [[ĥ,−ĥ],[−ĥ,ĥ]];
	// the scaled ĥ is its (0,0) entry.
	hhat := base.eps * p.Ho.At(0, 0)
	a, d := permutedLayout(p.Graph.Adjacency(), p.Graph.WeightedDegrees(), perm)
	eng, err := fabp.NewEngineCSR(a, d, hhat, fabp.Options{MaxIter: cfg.maxIter, Tol: cfg.tol})
	if err != nil {
		return nil, err
	}
	return &fabpSolver{
		solverBase: base,
		eng:        eng,
		perm:       perm,
		es:         make([]float64, base.n),
		bs:         make([]float64, base.n),
	}, nil
}

func (s *fabpSolver) Solve(ctx context.Context, e *beliefs.Residual) (*Result, error) {
	dst := beliefs.New(s.n, s.k)
	info, err := s.SolveInto(ctx, dst, e)
	return s.finish(dst, info, err)
}

func (s *fabpSolver) SolveInto(ctx context.Context, dst, e *beliefs.Residual) (SolveInfo, error) {
	if s.closed {
		return SolveInfo{}, s.errClosed()
	}
	if err := s.checkShapes(dst, e); err != nil {
		return SolveInfo{}, err
	}
	s.solves++
	// The scalar collapse/expand copies double as the layout shuffle:
	// indexing through perm costs nothing extra per element.
	ed := e.Matrix().Data()
	if s.perm == nil {
		for i := 0; i < s.n; i++ {
			s.es[i] = ed[i*2]
		}
	} else {
		for i := 0; i < s.n; i++ {
			s.es[s.perm[i]] = ed[i*2]
		}
	}
	iters, delta, converged, err := s.eng.SolveInto(ctx, s.bs, s.es)
	dd := dst.Matrix().Data()
	if s.perm == nil {
		for i, b := range s.bs {
			dd[i*2], dd[i*2+1] = b, -b
		}
	} else {
		for i := 0; i < s.n; i++ {
			b := s.bs[s.perm[i]]
			dd[i*2], dd[i*2+1] = b, -b
		}
	}
	return s.record(SolveInfo{Iterations: iters, Converged: converged, Delta: delta}, err)
}

func (s *fabpSolver) SolveBatch(ctx context.Context, reqs []Request) []Response {
	if s.closed {
		return s.failAllBase(reqs, s.errClosed())
	}
	return sequentialBatch(&s.solverBase, s, ctx, reqs)
}

func (s *fabpSolver) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.eng.Close()
	return nil
}

// failAllBase fills the cached response slice with one shared error.
func (b *solverBase) failAllBase(reqs []Request, err error) []Response {
	resp := b.resp[:0]
	for range reqs {
		resp = append(resp, Response{Err: err})
	}
	b.resp = resp
	return resp
}
