package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/beliefs"
	"repro/internal/bp"
	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/fabp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linbp"
	"repro/internal/sbp"
)

// randomProblem builds a deterministic random instance with ~8% labeled
// nodes and a homophily coupling, sized so every method finishes fast.
func randomProblem(t *testing.T, n, edges, k int, eps float64, seed uint64) *Problem {
	t.Helper()
	g := gen.Random(n, edges, seed)
	e, _ := beliefs.Seed(n, k, beliefs.SeedConfig{Fraction: 0.08, Seed: seed + 1})
	p := &Problem{Graph: g, Explicit: e, Ho: coupling.Homophily(k, 0.8), EpsilonH: eps}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func maxAbsDiff(a, b *beliefs.Residual) float64 {
	var max float64
	ad, bd := a.Matrix().Data(), b.Matrix().Data()
	for i := range ad {
		if d := math.Abs(ad[i] - bd[i]); d > max {
			max = d
		}
	}
	return max
}

// TestPreparedEquivalence is the redesign's contract: Prepare(...).Solve
// must reproduce the direct method implementations for every method,
// k ∈ {2, 3, 5}, and worker counts {0, 4}.
func TestPreparedEquivalence(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		p := randomProblem(t, 150, 320, k, 0.01, uint64(k))
		h := p.ScaledH()
		for _, workers := range []int{0, 4} {
			for _, m := range []Method{MethodBP, MethodLinBP, MethodLinBPStar, MethodSBP, MethodFABP} {
				if m == MethodFABP && k != 2 {
					continue
				}
				s, err := Prepare(p, m, WithWorkers(workers), WithMaxIter(300))
				if err != nil {
					t.Fatalf("k=%d %v: Prepare: %v", k, m, err)
				}
				res, err := s.Solve(context.Background(), p.Explicit)
				if err != nil && !errors.Is(err, ErrNotConverged) {
					t.Fatalf("k=%d %v: Solve: %v", k, m, err)
				}

				var want *beliefs.Residual
				switch m {
				case MethodBP:
					e := p.Explicit
					if lambda := bpSafeScale(e); lambda != 1 {
						e = e.Clone().Scale(lambda)
					}
					r, err := bp.Run(p.Graph, e, coupling.Uncenter(h), bp.Options{MaxIter: 300})
					if err != nil {
						t.Fatal(err)
					}
					want = r.Beliefs
				case MethodLinBP, MethodLinBPStar:
					r, err := linbp.Run(p.Graph, p.Explicit, h, linbp.Options{
						EchoCancellation: m == MethodLinBP, MaxIter: 300, Workers: workers,
					})
					if err != nil {
						t.Fatal(err)
					}
					want = r.Beliefs
				case MethodSBP:
					st, err := sbp.Run(p.Graph, p.Explicit, p.Ho)
					if err != nil {
						t.Fatal(err)
					}
					want = st.Beliefs()
				case MethodFABP:
					es := make([]float64, p.Graph.N())
					for i := range es {
						es[i] = p.Explicit.Row(i)[0]
					}
					r, err := fabp.Run(p.Graph, es, p.EpsilonH*p.Ho.At(0, 0), fabp.Options{MaxIter: 300})
					if err != nil {
						t.Fatal(err)
					}
					want = beliefs.New(p.Graph.N(), 2)
					for i, b := range r.B {
						want.Row(i)[0], want.Row(i)[1] = b, -b
					}
				}
				if d := maxAbsDiff(res.Beliefs, want); d > 1e-12 {
					t.Fatalf("k=%d %v workers=%d: prepared vs direct max diff %g", k, m, workers, d)
				}
				if res.Top == nil {
					t.Fatalf("k=%d %v: missing top assignment", k, m)
				}
				s.Close()
			}
		}
	}
}

// TestLegacySolveMatchesPrepared pins the compat wrapper to the
// prepared path it now delegates to.
func TestLegacySolveMatchesPrepared(t *testing.T) {
	p := randomProblem(t, 100, 220, 3, 0.01, 9)
	for _, m := range []Method{MethodBP, MethodLinBP, MethodLinBPStar, MethodSBP} {
		legacy, err := Solve(p, m, Options{MaxIter: 200})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		s, err := Prepare(p, m, WithMaxIter(200))
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		res, err := s.Solve(context.Background(), p.Explicit)
		if err != nil && !errors.Is(err, ErrNotConverged) {
			t.Fatalf("%v: %v", m, err)
		}
		if d := maxAbsDiff(legacy.Beliefs, res.Beliefs); d != 0 {
			t.Fatalf("%v: legacy vs prepared max diff %g", m, d)
		}
		if legacy.Iterations != res.Iterations || legacy.Converged != res.Converged {
			t.Fatalf("%v: diagnostics diverge: %+v vs %+v", m, legacy, res)
		}
		s.Close()
	}
}

// TestSolverReuse runs many solves with changing evidence through one
// prepared solver and checks each against a fresh one-shot solve —
// prepared state must not leak between requests.
func TestSolverReuse(t *testing.T) {
	p := randomProblem(t, 120, 260, 3, 0.01, 3)
	for _, m := range []Method{MethodBP, MethodLinBP, MethodSBP} {
		s, err := Prepare(p, m, WithMaxIter(300))
		if err != nil {
			t.Fatal(err)
		}
		dst := beliefs.New(120, 3)
		for trial := 0; trial < 4; trial++ {
			e, _ := beliefs.Seed(120, 3, beliefs.SeedConfig{Fraction: 0.1, Seed: uint64(trial + 10)})
			if _, err := s.SolveInto(context.Background(), dst, e); err != nil {
				t.Fatalf("%v trial %d: %v", m, trial, err)
			}
			q := &Problem{Graph: p.Graph, Explicit: e, Ho: p.Ho, EpsilonH: p.EpsilonH}
			want, err := Solve(q, m, Options{MaxIter: 300})
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(dst, want.Beliefs); d > 1e-12 {
				t.Fatalf("%v trial %d: reuse drift %g", m, trial, d)
			}
		}
		s.Close()
	}
}

// TestSolveBatchMatchesSolveInto checks the fused multi-block batch
// against per-request solves, across chunk boundaries (k=3 packs 4
// requests per register-blocked chunk, so 20 requests run as 5 chunks)
// and for both fixed-round and tolerance stopping.
func TestSolveBatchMatchesSolveInto(t *testing.T) {
	p := randomProblem(t, 90, 200, 3, 0.01, 5)
	for _, opts := range [][]Option{
		{WithMaxIter(5), WithTol(-1)},
		{WithMaxIter(300)},
	} {
		s, err := Prepare(p, MethodLinBP, opts...)
		if err != nil {
			t.Fatal(err)
		}
		const nreq = 20 // spans two chunks at 16 blocks per chunk
		reqs := make([]Request, nreq)
		for i := range reqs {
			e, _ := beliefs.Seed(90, 3, beliefs.SeedConfig{Fraction: 0.1, Seed: uint64(i + 30)})
			reqs[i] = Request{E: e, Dst: beliefs.New(90, 3)}
		}
		resps := s.SolveBatch(context.Background(), reqs)
		if len(resps) != nreq {
			t.Fatalf("got %d responses", len(resps))
		}
		dst := beliefs.New(90, 3)
		for i, r := range resps {
			if r.Err != nil && !errors.Is(r.Err, ErrNotConverged) {
				t.Fatalf("request %d: %v", i, r.Err)
			}
			if _, err := s.SolveInto(context.Background(), dst, reqs[i].E); err != nil && !errors.Is(err, ErrNotConverged) {
				t.Fatal(err)
			}
			// Fixed rounds differ only by the summation order of the
			// blocked vs unrolled coupling multiply (~1 ulp per round);
			// shared-round stopping may differ within the tolerance.
			tol := 1e-14
			if len(opts) == 1 {
				tol = 1e-9
			}
			if d := maxAbsDiff(r.Beliefs, dst); d > tol {
				t.Fatalf("request %d: batch vs single max diff %g", i, d)
			}
		}
		s.Close()
	}
}

// TestSolveBatchSequentialMethods covers the non-fused batch path.
func TestSolveBatchSequentialMethods(t *testing.T) {
	p := randomProblem(t, 80, 170, 2, 0.01, 7)
	for _, m := range []Method{MethodBP, MethodSBP, MethodFABP} {
		s, err := Prepare(p, m, WithMaxIter(300))
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]Request, 3)
		for i := range reqs {
			e, _ := beliefs.Seed(80, 2, beliefs.SeedConfig{Fraction: 0.1, Seed: uint64(i + 50)})
			reqs[i] = Request{E: e}
		}
		dst := beliefs.New(80, 2)
		for i, r := range s.SolveBatch(context.Background(), reqs) {
			if r.Err != nil && !errors.Is(r.Err, ErrNotConverged) {
				t.Fatalf("%v request %d: %v", m, i, r.Err)
			}
			if _, err := s.SolveInto(context.Background(), dst, reqs[i].E); err != nil && !errors.Is(err, ErrNotConverged) {
				t.Fatal(err)
			}
			if d := maxAbsDiff(r.Beliefs, dst); d != 0 {
				t.Fatalf("%v request %d: batch vs single max diff %g", m, i, d)
			}
		}
		s.Close()
	}
}

// TestValidateRejectsNonSquareHo is the regression test for the
// Validate fix: a k×(k+1) coupling must be rejected explicitly with
// ErrDimensionMismatch (it used to slip past the K-vs-Rows check into
// the per-method code when Rows matched K).
func TestValidateRejectsNonSquareHo(t *testing.T) {
	g := gen.Torus()
	p := &Problem{
		Graph:    g,
		Explicit: beliefs.New(8, 3),
		Ho:       dense.New(3, 4), // non-square, Rows() matches K
		EpsilonH: 0.1,
	}
	err := p.Validate()
	if err == nil {
		t.Fatal("non-square Ho must fail validation")
	}
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("want ErrDimensionMismatch, got %v", err)
	}
	if _, err := Prepare(p, MethodLinBP); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("Prepare must surface the mismatch, got %v", err)
	}
}

// TestErrorTaxonomy walks the sentinel errors through errors.Is.
func TestErrorTaxonomy(t *testing.T) {
	p := randomProblem(t, 40, 80, 2, 0.01, 11)

	// ErrInvalidCoupling: a non-symmetric residual coupling.
	bad := dense.NewFromRows([][]float64{{0.1, -0.1}, {-0.2, 0.2}})
	q := &Problem{Graph: p.Graph, Explicit: p.Explicit, Ho: bad, EpsilonH: 0.1}
	if _, err := Prepare(q, MethodLinBP); !errors.Is(err, ErrInvalidCoupling) {
		t.Fatalf("want ErrInvalidCoupling, got %v", err)
	}

	// ErrInvalidCoupling: FABP with |ĥ| at the linearization boundary.
	strong := &Problem{Graph: p.Graph, Explicit: p.Explicit, Ho: coupling.Homophily(2, 1), EpsilonH: 1}
	if _, err := Prepare(strong, MethodFABP); !errors.Is(err, ErrInvalidCoupling) {
		t.Fatalf("want ErrInvalidCoupling for ĥ=1/2, got %v", err)
	}

	// ErrDimensionMismatch: FABP needs k=2.
	p3 := randomProblem(t, 40, 80, 3, 0.01, 12)
	if _, err := Prepare(p3, MethodFABP); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("want ErrDimensionMismatch for k=3 FABP, got %v", err)
	}

	// ErrDimensionMismatch: ill-shaped explicit beliefs at solve time.
	s, err := Prepare(p, MethodLinBP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background(), beliefs.New(7, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("want ErrDimensionMismatch, got %v", err)
	}

	// ErrNotConverged: one fixed round of a non-trivial iteration.
	short, err := Prepare(p, MethodLinBP, WithMaxIter(1), WithTol(-1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := short.Solve(context.Background(), p.Explicit)
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
	if res == nil || res.Beliefs == nil {
		t.Fatal("partial result must accompany ErrNotConverged")
	}
	short.Close()

	// ErrClosed: every entry point after Close.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close must be idempotent: %v", err)
	}
	if _, err := s.Solve(context.Background(), p.Explicit); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := s.SolveInto(context.Background(), beliefs.New(40, 2), p.Explicit); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	for _, r := range s.SolveBatch(context.Background(), []Request{{E: p.Explicit}}) {
		if !errors.Is(r.Err, ErrClosed) {
			t.Fatalf("want ErrClosed in batch, got %v", r.Err)
		}
	}
}

// TestCancellation covers both required behaviors: a pre-cancelled
// context returns promptly without iterating, and a deadline expiring
// mid-iteration aborts with context.DeadlineExceeded.
func TestCancellation(t *testing.T) {
	p := randomProblem(t, 2000, 10000, 3, 0.01, 13)
	for _, m := range []Method{MethodBP, MethodLinBP, MethodLinBPStar, MethodSBP} {
		s, err := Prepare(p, m, WithMaxIter(1_000_000), WithTol(-1))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		info, err := s.SolveInto(ctx, beliefs.New(2000, 3), p.Explicit)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: want context.Canceled, got %v", m, err)
		}
		if m != MethodSBP && info.Iterations != 0 {
			t.Fatalf("%v: pre-cancelled ctx ran %d rounds", m, info.Iterations)
		}

		dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		start := time.Now()
		_, err = s.SolveInto(dctx, beliefs.New(2000, 3), p.Explicit)
		dcancel()
		if m == MethodSBP {
			// SBP finishes its handful of levels before any sane
			// deadline; only the pre-cancelled case is meaningful.
			s.Close()
			continue
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%v: want DeadlineExceeded, got %v", m, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("%v: cancellation took %v", m, elapsed)
		}
		s.Close()
	}
}

// TestBatchCancellation checks that a cancelled context fails the whole
// batch with the context error.
func TestBatchCancellation(t *testing.T) {
	p := randomProblem(t, 200, 420, 3, 0.01, 17)
	s, err := Prepare(p, MethodLinBP, WithMaxIter(1_000_000), WithTol(-1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := []Request{{E: p.Explicit}, {E: p.Explicit}}
	for i, r := range s.SolveBatch(ctx, reqs) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("request %d: want context.Canceled, got %v", i, r.Err)
		}
	}
}

// TestSolveIntoZeroAlloc asserts the serving guarantee for the
// kernel-backed methods: steady-state SolveInto performs zero
// allocations.
func TestSolveIntoZeroAlloc(t *testing.T) {
	p := randomProblem(t, 300, 700, 3, 0.01, 19)
	p2 := randomProblem(t, 300, 700, 2, 0.01, 19)
	for _, tc := range []struct {
		name string
		p    *Problem
		m    Method
	}{
		{"LinBP", p, MethodLinBP},
		{"LinBPStar", p, MethodLinBPStar},
		{"FABP", p2, MethodFABP},
	} {
		s, err := Prepare(tc.p, tc.m, WithMaxIter(5), WithTol(-1))
		if err != nil {
			t.Fatal(err)
		}
		dst := beliefs.New(300, tc.p.K())
		ctx := context.Background()
		if _, err := s.SolveInto(ctx, dst, tc.p.Explicit); !errors.Is(err, ErrNotConverged) {
			t.Fatalf("%s warm: %v", tc.name, err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			s.SolveInto(ctx, dst, tc.p.Explicit)
		})
		// The ErrNotConverged wrap of the fixed-round run allocates its
		// message; measure the converged path instead when that shows.
		if allocs > 0 {
			sc, err := Prepare(tc.p, tc.m)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sc.SolveInto(ctx, dst, tc.p.Explicit); err != nil {
				t.Fatalf("%s converged warm: %v", tc.name, err)
			}
			allocs = testing.AllocsPerRun(20, func() {
				sc.SolveInto(ctx, dst, tc.p.Explicit)
			})
			sc.Close()
		}
		if allocs > 0 {
			t.Errorf("%s: %v allocs per SolveInto, want 0", tc.name, allocs)
		}
		s.Close()
	}
}

// TestSolveBatchZeroAlloc asserts that steady-state batches of a
// recurring size with caller-provided destinations allocate nothing
// beyond the caller-owned response slice: since the Solver became safe
// for concurrent use, each SolveBatch hands its responses to the caller
// in a freshly allocated slice (recycling it would race with another
// goroutine still reading its previous batch), so exactly one
// allocation per call is the floor.
func TestSolveBatchZeroAlloc(t *testing.T) {
	p := randomProblem(t, 300, 700, 3, 0.01, 23)
	s, err := Prepare(p, MethodLinBP)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reqs := make([]Request, 6)
	for i := range reqs {
		e, _ := beliefs.Seed(300, 3, beliefs.SeedConfig{Fraction: 0.1, Seed: uint64(i + 70)})
		reqs[i] = Request{E: e, Dst: beliefs.New(300, 3)}
	}
	ctx := context.Background()
	s.SolveBatch(ctx, reqs) // warm: builds the fused engine
	allocs := testing.AllocsPerRun(20, func() {
		for _, r := range s.SolveBatch(ctx, reqs) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	})
	if allocs > 1 {
		t.Errorf("%v allocs per SolveBatch, want 1 (the caller-owned response slice)", allocs)
	}
}

// TestStats checks the observability counters and configuration echo.
func TestStats(t *testing.T) {
	p := randomProblem(t, 60, 130, 3, 0.01, 29)
	s, err := Prepare(p, MethodLinBP, WithWorkers(2), WithMaxIter(50))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if _, err := s.Solve(ctx, p.Explicit); err != nil && !errors.Is(err, ErrNotConverged) {
		t.Fatal(err)
	}
	s.SolveBatch(ctx, []Request{{E: p.Explicit}, {E: p.Explicit}})
	st := s.Stats()
	if st.Method != MethodLinBP || st.N != 60 || st.K != 3 || st.Workers != 2 {
		t.Fatalf("config echo wrong: %+v", st)
	}
	if st.EpsilonH != 0.01 {
		t.Fatalf("EpsilonH = %v", st.EpsilonH)
	}
	if st.Solves != 1 || st.Batches != 1 || st.BatchRequests != 2 {
		t.Fatalf("counters wrong: %+v", st)
	}
	if st.Iterations == 0 {
		t.Fatalf("iterations not counted: %+v", st)
	}
}

// TestWithAutoEpsilonH checks the option against the criterion it
// implements and its effect on the prepared coupling.
func TestWithAutoEpsilonH(t *testing.T) {
	p := randomProblem(t, 60, 130, 3, 0.9, 31) // deliberately unsafe εH
	s, err := Prepare(p, MethodLinBP, WithAutoEpsilonH())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	eps := s.Stats().EpsilonH
	max, err := linbp.MaxEpsilonH(p.Graph, p.Ho, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-max/2) > 1e-9*max {
		t.Fatalf("auto εH = %v, want %v", eps, max/2)
	}
	if _, err := s.Solve(context.Background(), p.Explicit); err != nil {
		t.Fatalf("auto-scaled solve must converge: %v", err)
	}
}

// TestWithEchoCancellationOverride checks that the option flips a
// named LinBP method and is reflected in the stats.
func TestWithEchoCancellationOverride(t *testing.T) {
	p := randomProblem(t, 60, 130, 3, 0.01, 37)
	s, err := Prepare(p, MethodLinBP, WithEchoCancellation(false), WithMaxIter(300))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.Stats().Method; got != MethodLinBPStar {
		t.Fatalf("method = %v, want LinBP*", got)
	}
	res, err := s.Solve(context.Background(), p.Explicit)
	if err != nil {
		t.Fatal(err)
	}
	want, err := linbp.Run(p.Graph, p.Explicit, p.ScaledH(), linbp.Options{EchoCancellation: false, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(res.Beliefs, want.Beliefs); d != 0 {
		t.Fatalf("override result diff %g", d)
	}
}

// TestSBPRunnerReusesOrdering checks the SBP serving path across an
// explicit-set change (the cached geodesic ordering must refresh).
func TestSBPRunnerReusesOrdering(t *testing.T) {
	g := graph.New(6)
	for i := 0; i < 5; i++ {
		g.AddUnitEdge(i, i+1)
	}
	ho := coupling.Homophily(2, 0.8)
	p := &Problem{Graph: g, Explicit: beliefs.New(6, 2), Ho: ho, EpsilonH: 0.1}
	s, err := Prepare(p, MethodSBP)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	dst := beliefs.New(6, 2)
	e1 := beliefs.New(6, 2)
	e1.Set(0, beliefs.LabelResidual(2, 0, 0.1))
	for trial := 0; trial < 2; trial++ { // second solve reuses the ordering
		e1.Row(0)[0], e1.Row(0)[1] = 0.1+0.05*float64(trial), -0.1-0.05*float64(trial)
		info, err := s.SolveInto(context.Background(), dst, e1)
		if err != nil {
			t.Fatal(err)
		}
		if info.Iterations != 5 {
			t.Fatalf("trial %d: %d levels, want 5", trial, info.Iterations)
		}
		st, err := sbp.Run(g, e1, ho)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAbsDiff(dst, st.Beliefs()); d != 0 {
			t.Fatalf("trial %d: runner vs state diff %g", trial, d)
		}
	}
	// New explicit set: ordering must be rebuilt, node 5 now explicit.
	e2 := beliefs.New(6, 2)
	e2.Set(5, beliefs.LabelResidual(2, 1, 0.1))
	if _, err := s.SolveInto(context.Background(), dst, e2); err != nil {
		t.Fatal(err)
	}
	st, err := sbp.Run(g, e2, ho)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(dst, st.Beliefs()); d != 0 {
		t.Fatalf("post-change diff %g", d)
	}
}

// TestMethodFABPString covers the new enum value.
func TestMethodFABPString(t *testing.T) {
	if MethodFABP.String() != "FABP" {
		t.Fatalf("String() = %q", MethodFABP.String())
	}
}
