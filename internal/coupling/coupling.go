// Package coupling handles the k×k class-coupling ("heterophily")
// matrices of the paper: validation of the doubly-stochastic requirement,
// centering into residual form Hˆ (Definition 3), scaling by the εH
// parameter of Section 6.2, and the standard example matrices of
// Fig. 1, Fig. 6b, and Fig. 11a.
//
// A coupling matrix H(j, i) gives the relative influence of class j of a
// node on class i of its neighbor. The paper requires H to be symmetric
// and doubly stochastic; the residual matrix Hˆ = H − 1/k then has zero
// row and column sums and makes attraction (positive) and repulsion
// (negative) explicit.
package coupling

import (
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/errs"
)

// Validation errors returned by Validate and NewResidual. Each wraps
// errs.ErrInvalidCoupling, so callers of the solver API can classify
// any coupling defect with errors.Is(err, ErrInvalidCoupling) while
// still matching the specific failure here.
var (
	ErrNotSquare        = fmt.Errorf("coupling: matrix is not square: %w", errs.ErrInvalidCoupling)
	ErrNotSymmetric     = fmt.Errorf("coupling: matrix is not symmetric: %w", errs.ErrInvalidCoupling)
	ErrNotStochastic    = fmt.Errorf("coupling: rows/columns do not sum to 1: %w", errs.ErrInvalidCoupling)
	ErrNegativeEntry    = fmt.Errorf("coupling: negative entry: %w", errs.ErrInvalidCoupling)
	ErrResidualRowSum   = fmt.Errorf("coupling: residual rows/columns do not sum to 0: %w", errs.ErrInvalidCoupling)
	ErrResidualTooLarge = fmt.Errorf("coupling: residual entries must stay within (-1/k, 1-1/k): %w", errs.ErrInvalidCoupling)
)

// tol is the numeric slack used by all validations.
const tol = 1e-9

// Validate checks that h is a symmetric, doubly stochastic, non-negative
// coupling matrix as Problem 1 requires.
func Validate(h *dense.Matrix) error {
	k := h.Rows()
	if k != h.Cols() {
		return ErrNotSquare
	}
	for i := 0; i < k; i++ {
		var rowSum, colSum float64
		for j := 0; j < k; j++ {
			v := h.At(i, j)
			if v < -tol {
				return fmt.Errorf("%w: H(%d,%d) = %v", ErrNegativeEntry, i, j, v)
			}
			if math.Abs(v-h.At(j, i)) > tol {
				return fmt.Errorf("%w: H(%d,%d) != H(%d,%d)", ErrNotSymmetric, i, j, j, i)
			}
			rowSum += v
			colSum += h.At(j, i)
		}
		if math.Abs(rowSum-1) > tol || math.Abs(colSum-1) > tol {
			return fmt.Errorf("%w: row %d sums to %v", ErrNotStochastic, i, rowSum)
		}
	}
	return nil
}

// NewResidual validates the stochastic coupling matrix h and returns the
// residual matrix Hˆ = h − 1/k (centering of Definition 3).
func NewResidual(h *dense.Matrix) (*dense.Matrix, error) {
	if err := Validate(h); err != nil {
		return nil, err
	}
	k := h.Rows()
	out := dense.New(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			out.Set(i, j, h.At(i, j)-1/float64(k))
		}
	}
	return out, nil
}

// ValidateResidual checks that hr is a symmetric residual coupling matrix:
// square, symmetric, zero row and column sums, and entries within
// (−1/k, 1−1/k) so the uncentered matrix stays non-negative.
func ValidateResidual(hr *dense.Matrix) error {
	k := hr.Rows()
	if k != hr.Cols() {
		return ErrNotSquare
	}
	kf := float64(k)
	for i := 0; i < k; i++ {
		var rowSum float64
		for j := 0; j < k; j++ {
			v := hr.At(i, j)
			if math.Abs(v-hr.At(j, i)) > tol {
				return ErrNotSymmetric
			}
			if v < -1/kf-tol || v > 1-1/kf+tol {
				return fmt.Errorf("%w: Hˆ(%d,%d) = %v", ErrResidualTooLarge, i, j, v)
			}
			rowSum += v
		}
		if math.Abs(rowSum) > tol {
			return fmt.Errorf("%w: row %d sums to %v", ErrResidualRowSum, i, rowSum)
		}
	}
	return nil
}

// Uncenter returns H = Hˆ + 1/k, the stochastic matrix a residual matrix
// came from. Needed to run standard BP on the same problem instance.
func Uncenter(hr *dense.Matrix) *dense.Matrix {
	k := hr.Rows()
	out := dense.New(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			out.Set(i, j, hr.At(i, j)+1/float64(k))
		}
	}
	return out
}

// Scale returns εH·hˆo, the scaled residual coupling matrix of
// Section 6.2 (Hˆ = εH·Hˆo). It panics for εH < 0.
func Scale(ho *dense.Matrix, epsH float64) *dense.Matrix {
	if epsH < 0 {
		panic("coupling: negative εH")
	}
	return ho.Scaled(epsH)
}

// Sinkhorn projects an elementwise-positive square matrix onto the
// doubly stochastic set by alternating row/column normalization
// (Sinkhorn–Knopp). This implements footnote 7's observation that
// arbitrary relative coupling strengths can be turned into a valid
// (singly, and with symmetric input doubly) stochastic coupling matrix.
// It returns an error if the iteration does not reach the tolerance.
func Sinkhorn(m *dense.Matrix, maxIter int, tolerance float64) (*dense.Matrix, error) {
	k := m.Rows()
	if k != m.Cols() {
		return nil, ErrNotSquare
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	if tolerance <= 0 {
		tolerance = 1e-12
	}
	out := m.Clone()
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if out.At(i, j) <= 0 {
				return nil, fmt.Errorf("coupling: Sinkhorn needs positive entries, got %v at (%d,%d): %w", out.At(i, j), i, j, errs.ErrInvalidCoupling)
			}
		}
	}
	for iter := 0; iter < maxIter; iter++ {
		// Row normalize.
		for i := 0; i < k; i++ {
			var s float64
			for j := 0; j < k; j++ {
				s += out.At(i, j)
			}
			for j := 0; j < k; j++ {
				out.Set(i, j, out.At(i, j)/s)
			}
		}
		// Column normalize.
		maxDev := 0.0
		for j := 0; j < k; j++ {
			var s float64
			for i := 0; i < k; i++ {
				s += out.At(i, j)
			}
			for i := 0; i < k; i++ {
				out.Set(i, j, out.At(i, j)/s)
			}
			if d := math.Abs(s - 1); d > maxDev {
				maxDev = d
			}
		}
		if maxDev < tolerance {
			return out, nil
		}
	}
	return nil, fmt.Errorf("coupling: Sinkhorn did not converge: %w", errs.ErrNotConverged)
}

// Homophily returns the k×k residual coupling matrix where each class
// attracts itself with strength s and repels every other class equally:
// Hˆ(i,i) = s·(k−1)/k and Hˆ(i,j) = −s/k. It panics unless 0 < s ≤ 1
// and k ≥ 2 (s = 1 corresponds to the identity coupling matrix).
func Homophily(k int, s float64) *dense.Matrix {
	if k < 2 {
		panic("coupling: need k >= 2")
	}
	if s <= 0 || s > 1 {
		panic("coupling: homophily strength must be in (0,1]")
	}
	kf := float64(k)
	out := dense.New(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				out.Set(i, j, s*(kf-1)/kf)
			} else {
				out.Set(i, j, -s/kf)
			}
		}
	}
	return out
}

// Heterophily returns the 2-class residual matrix [[−ĥ, ĥ], [ĥ, −ĥ]] in
// which opposites attract with strength hhat ∈ (0, 1/2].
func Heterophily(hhat float64) *dense.Matrix {
	if hhat <= 0 || hhat > 0.5 {
		panic("coupling: heterophily strength must be in (0, 1/2]")
	}
	return dense.NewFromRows([][]float64{{-hhat, hhat}, {hhat, -hhat}})
}

// Fig1a returns the 2-class homophily coupling matrix of Fig. 1a
// (Democrats/Republicans).
func Fig1a() *dense.Matrix {
	return dense.NewFromRows([][]float64{{0.8, 0.2}, {0.2, 0.8}})
}

// Fig1b returns the 2-class heterophily coupling matrix of Fig. 1b
// (Talkative/Silent).
func Fig1b() *dense.Matrix {
	return dense.NewFromRows([][]float64{{0.3, 0.7}, {0.7, 0.3}})
}

// Fig1c returns the 3-class general coupling matrix of Fig. 1c
// (Honest/Accomplice/Fraudster).
func Fig1c() *dense.Matrix {
	return dense.NewFromRows([][]float64{
		{0.6, 0.3, 0.1},
		{0.3, 0.0, 0.7},
		{0.1, 0.7, 0.2},
	})
}

// Fig6bResidual returns the unscaled residual coupling matrix Hˆo of
// Fig. 6b used by the synthetic experiments, in the paper's ×10⁻?
// convention: the figure lists integers that must be read as a residual
// matrix with zero row sums; the natural reading is Hˆo = figure/30,
// which has zero row/column sums and entries in (−1/3, 2/3).
func Fig6bResidual() *dense.Matrix {
	raw := [][]float64{
		{10, -4, -6},
		{-4, 7, -3},
		{-6, -3, 9},
	}
	out := dense.New(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out.Set(i, j, raw[i][j]/30)
		}
	}
	return out
}

// Fig11aResidual returns the unscaled residual 4-class homophily matrix
// of Fig. 11a used for the DBLP experiment, normalized like Fig6bResidual
// (figure/8 gives zero row sums with diagonal 3/4).
func Fig11aResidual() *dense.Matrix {
	out := dense.New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				out.Set(i, j, 6.0/8.0)
			} else {
				out.Set(i, j, -2.0/8.0)
			}
		}
	}
	return out
}
