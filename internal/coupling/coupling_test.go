package coupling

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dense"
)

func TestValidateAcceptsFig1(t *testing.T) {
	for name, h := range map[string]*dense.Matrix{
		"fig1a": Fig1a(), "fig1b": Fig1b(), "fig1c": Fig1c(),
	} {
		if err := Validate(h); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]struct {
		m    *dense.Matrix
		want error
	}{
		"not square":    {dense.New(2, 3), ErrNotSquare},
		"not symmetric": {dense.NewFromRows([][]float64{{0.5, 0.5}, {0.4, 0.6}}), ErrNotSymmetric},
		"not stochastic": {dense.NewFromRows([][]float64{{0.5, 0.4}, {0.4, 0.5}}),
			ErrNotStochastic},
		"negative": {dense.NewFromRows([][]float64{{1.2, -0.2}, {-0.2, 1.2}}),
			ErrNegativeEntry},
	}
	for name, c := range cases {
		err := Validate(c.m)
		if !errors.Is(err, c.want) {
			t.Fatalf("%s: got %v, want %v", name, err, c.want)
		}
	}
}

func TestNewResidualCentering(t *testing.T) {
	hr, err := NewResidual(Fig1c())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hr.At(0, 0)-(0.6-1.0/3.0)) > 1e-12 {
		t.Fatalf("Hˆ(0,0) = %v", hr.At(0, 0))
	}
	if err := ValidateResidual(hr); err != nil {
		t.Fatal(err)
	}
}

func TestUncenterRoundTrip(t *testing.T) {
	hr, _ := NewResidual(Fig1a())
	back := Uncenter(hr)
	if !back.EqualApprox(Fig1a(), 1e-12) {
		t.Fatal("Uncenter(NewResidual(H)) != H")
	}
}

func TestValidateResidualRejects(t *testing.T) {
	// Row sums nonzero.
	bad := dense.NewFromRows([][]float64{{0.1, 0.1}, {0.1, 0.1}})
	if err := ValidateResidual(bad); !errors.Is(err, ErrResidualRowSum) {
		t.Fatalf("got %v", err)
	}
	// Out of range: entry < −1/k.
	bad2 := dense.NewFromRows([][]float64{{0.6, -0.6}, {-0.6, 0.6}})
	if err := ValidateResidual(bad2); !errors.Is(err, ErrResidualTooLarge) {
		t.Fatalf("got %v", err)
	}
	// Asymmetric.
	bad3 := dense.NewFromRows([][]float64{{0.1, -0.1}, {0.1, -0.1}})
	if err := ValidateResidual(bad3); !errors.Is(err, ErrNotSymmetric) {
		t.Fatalf("got %v", err)
	}
}

func TestScale(t *testing.T) {
	hr, _ := NewResidual(Fig1b())
	s := Scale(hr, 0.5)
	if math.Abs(s.At(0, 1)-0.1) > 1e-12 { // (0.7−0.5)·0.5
		t.Fatalf("scaled entry %v", s.At(0, 1))
	}
}

func TestScaleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Scale(dense.New(2, 2), -1)
}

func TestSinkhornProducesDoublyStochastic(t *testing.T) {
	m := dense.NewFromRows([][]float64{{3, 1, 1}, {1, 4, 1}, {1, 1, 5}})
	ds, err := Sinkhorn(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		var rowSum, colSum float64
		for j := 0; j < 3; j++ {
			rowSum += ds.At(i, j)
			colSum += ds.At(j, i)
		}
		if math.Abs(rowSum-1) > 1e-9 || math.Abs(colSum-1) > 1e-9 {
			t.Fatalf("row/col %d sums %v / %v", i, rowSum, colSum)
		}
	}
}

func TestSinkhornSymmetricInputStaysSymmetric(t *testing.T) {
	m := dense.NewFromRows([][]float64{{2, 1}, {1, 3}})
	ds, err := Sinkhorn(m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ds.At(0, 1)-ds.At(1, 0)) > 1e-9 {
		t.Fatal("symmetric input must give symmetric output")
	}
	if err := Validate(ds); err != nil {
		t.Fatal(err)
	}
}

func TestSinkhornRejectsNonPositive(t *testing.T) {
	if _, err := Sinkhorn(dense.NewFromRows([][]float64{{1, 0}, {0, 1}}), 0, 0); err == nil {
		t.Fatal("expected error for zero entries")
	}
	if _, err := Sinkhorn(dense.New(2, 3), 0, 0); !errors.Is(err, ErrNotSquare) {
		t.Fatal("expected ErrNotSquare")
	}
}

func TestHomophilyResidualValid(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		h := Homophily(k, 0.9)
		if err := ValidateResidual(h); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if h.At(0, 0) <= 0 || h.At(0, 1) >= 0 {
			t.Fatal("homophily must attract self, repel others")
		}
	}
}

func TestHomophilyPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Homophily(1, 0.5) },
		func() { Homophily(3, 0) },
		func() { Homophily(3, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHeterophily(t *testing.T) {
	h := Heterophily(0.3)
	if err := ValidateResidual(h); err != nil {
		t.Fatal(err)
	}
	if h.At(0, 0) != -0.3 || h.At(0, 1) != 0.3 {
		t.Fatal("heterophily structure wrong")
	}
}

func TestFig6bResidualValid(t *testing.T) {
	h := Fig6bResidual()
	if err := ValidateResidual(h); err != nil {
		t.Fatal(err)
	}
	// Uncentered must be a valid stochastic coupling matrix.
	if err := Validate(Uncenter(h)); err != nil {
		t.Fatal(err)
	}
}

func TestFig11aResidualValid(t *testing.T) {
	h := Fig11aResidual()
	if err := ValidateResidual(h); err != nil {
		t.Fatal(err)
	}
	if err := Validate(Uncenter(h)); err != nil {
		t.Fatal(err)
	}
	// Homophily: diagonal dominates.
	if h.At(0, 0) <= h.At(0, 1) {
		t.Fatal("Fig 11a must be homophily")
	}
}

// TestResidualZeroSumsProperty: centering any doubly stochastic matrix
// always yields zero row and column sums.
func TestResidualZeroSumsProperty(t *testing.T) {
	f := func(a, b float64) bool {
		// Build a random symmetric doubly stochastic 2x2: [[p,1−p],[1−p,p]].
		p := math.Mod(math.Abs(a), 1)
		if math.IsNaN(p) {
			p = 0.5
		}
		h := dense.NewFromRows([][]float64{{p, 1 - p}, {1 - p, p}})
		hr, err := NewResidual(h)
		if err != nil {
			return false
		}
		return math.Abs(hr.At(0, 0)+hr.At(0, 1)) < 1e-12 &&
			math.Abs(hr.At(0, 0)+hr.At(1, 0)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
