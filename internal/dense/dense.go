// Package dense provides a small dense linear-algebra kernel used by the
// LinBP reproduction: row-major matrices with the operations the paper's
// derivation needs (products, Kronecker products, vectorization, LU-based
// solves and inverses, and sub-multiplicative norms).
//
// The package is deliberately self-contained (standard library only) and
// favors clarity over raw speed; the performance-critical path of LinBP
// lives in package sparse, not here. Dense matrices appear only where the
// paper itself uses them: the k×k coupling matrix algebra, the closed-form
// solution on small graphs, and norm computations.
package dense

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64 values.
//
// The zero value is an empty 0×0 matrix. All methods that return a Matrix
// allocate a fresh result and never alias the receiver unless documented.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New returns a zero-initialized rows×cols matrix.
// It panics if either dimension is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewFromRows builds a matrix from a slice of equal-length rows.
// It panics if the rows are ragged.
func NewFromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("dense: ragged row %d: len %d, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
//
//lsbp:hotpath
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
//
//lsbp:hotpath
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("dense: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
//
//lsbp:hotpath
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("dense: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Data returns the underlying row-major storage, aliasing the matrix.
//
//lsbp:hotpath
func (m *Matrix) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Zero resets every element of m to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// CopyFrom copies the contents of src into m. Dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("dense: CopyFrom dimension mismatch %dx%d vs %dx%d",
			m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Plus returns m + b.
func (m *Matrix) Plus(b *Matrix) *Matrix {
	m.sameShape(b, "Plus")
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = v + b.data[i]
	}
	return out
}

// Minus returns m − b.
func (m *Matrix) Minus(b *Matrix) *Matrix {
	m.sameShape(b, "Minus")
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = v - b.data[i]
	}
	return out
}

// Scaled returns s·m.
func (m *Matrix) Scaled(s float64) *Matrix {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = s * v
	}
	return out
}

func (m *Matrix) sameShape(b *Matrix, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("dense: %s dimension mismatch %dx%d vs %dx%d",
			op, m.rows, m.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("dense: Mul dimension mismatch %dx%d · %dx%d",
			m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		mi := m.data[i*m.cols : (i+1)*m.cols]
		oi := out.data[i*b.cols : (i+1)*b.cols]
		for kk, v := range mi {
			if v == 0 {
				continue
			}
			bk := b.data[kk*b.cols : (kk+1)*b.cols]
			for j, bv := range bk {
				oi[j] += v * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("dense: MulVec dimension mismatch %dx%d · %d",
			m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Kron returns the Kronecker product m ⊗ b, the (m.rows·b.rows)×(m.cols·b.cols)
// block matrix whose (i,j) block is m(i,j)·b. This is the operator the
// closed-form solution of LinBP (Proposition 7) is built from.
func (m *Matrix) Kron(b *Matrix) *Matrix {
	out := New(m.rows*b.rows, m.cols*b.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			v := m.data[i*m.cols+j]
			if v == 0 {
				continue
			}
			for bi := 0; bi < b.rows; bi++ {
				dst := out.data[(i*b.rows+bi)*out.cols+j*b.cols:]
				src := b.data[bi*b.cols : (bi+1)*b.cols]
				for bj, bv := range src {
					dst[bj] = v * bv
				}
			}
		}
	}
	return out
}

// Vec stacks the columns of m into a single column vector of length
// rows·cols (the vec(·) operator of Section 4.2).
func (m *Matrix) Vec() []float64 {
	out := make([]float64, m.rows*m.cols)
	idx := 0
	for j := 0; j < m.cols; j++ {
		for i := 0; i < m.rows; i++ {
			out[idx] = m.data[i*m.cols+j]
			idx++
		}
	}
	return out
}

// Unvec is the inverse of Vec: it reshapes a column-stacked vector of
// length rows·cols back into a rows×cols matrix.
func Unvec(v []float64, rows, cols int) *Matrix {
	if len(v) != rows*cols {
		panic(fmt.Sprintf("dense: Unvec length %d != %d*%d", len(v), rows, cols))
	}
	m := New(rows, cols)
	idx := 0
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			m.data[i*cols+j] = v[idx]
			idx++
		}
	}
	return m
}

// MaxAbsDiff returns max_ij |m(i,j) − b(i,j)|, used for convergence checks.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	m.sameShape(b, "MaxAbsDiff")
	var max float64
	for i, v := range m.data {
		d := math.Abs(v - b.data[i])
		if d > max {
			max = d
		}
	}
	return max
}

// MaxAbs returns max_ij |m(i,j)|.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		a := math.Abs(v)
		if a > max {
			max = a
		}
	}
	return max
}

// EqualApprox reports whether m and b have the same shape and all entries
// within tol of each other.
func (m *Matrix) EqualApprox(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	return m.MaxAbsDiff(b) <= tol
}

// String renders the matrix for debugging, one row per line.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "% .6g", m.data[i*m.cols+j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
