package dense

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(-1, 2)
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("got %dx%d", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 || m.At(0, 0) != 1 {
		t.Fatal("wrong contents")
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestNewFromRowsEmpty(t *testing.T) {
	m := NewFromRows(nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("got %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestSetAtAdd(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 3.5)
	m.Add(0, 1, 0.5)
	if m.At(0, 1) != 4 {
		t.Fatalf("got %v, want 4", m.At(0, 1))
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestRowAliases(t *testing.T) {
	m := New(2, 3)
	m.Row(1)[2] = 7
	if m.At(1, 2) != 7 {
		t.Fatal("Row must alias matrix storage")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias")
	}
}

func TestPlusMinusScaled(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	sum := a.Plus(b)
	if sum.At(1, 1) != 12 {
		t.Fatalf("Plus wrong: %v", sum.At(1, 1))
	}
	diff := b.Minus(a)
	if diff.At(0, 0) != 4 {
		t.Fatalf("Minus wrong: %v", diff.At(0, 0))
	}
	sc := a.Scaled(2)
	if sc.At(1, 0) != 6 {
		t.Fatalf("Scaled wrong: %v", sc.At(1, 0))
	}
}

func TestMul(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := NewFromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := a.Mul(b)
	want := NewFromRows([][]float64{{58, 64}, {139, 154}})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("got %v", got)
	}
}

func TestMulIdentity(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if !a.Mul(Identity(2)).EqualApprox(a, 0) || !Identity(2).Mul(a).EqualApprox(a, 0) {
		t.Fatal("multiplication by identity must be a no-op")
	}
}

func TestMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestMulVec(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	got := a.MulVec([]float64{5, 6})
	if got[0] != 17 || got[1] != 39 {
		t.Fatalf("got %v", got)
	}
}

func TestTranspose(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("bad transpose: %v", at)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(vals [6]float64) bool {
		a := NewFromRows([][]float64{vals[:3], vals[3:6]})
		return a.T().T().EqualApprox(a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKronSmall(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{0, 5}, {6, 7}})
	k := a.Kron(b)
	want := NewFromRows([][]float64{
		{0, 5, 0, 10},
		{6, 7, 12, 14},
		{0, 15, 0, 20},
		{18, 21, 24, 28},
	})
	if !k.EqualApprox(want, 0) {
		t.Fatalf("got %v", k)
	}
}

// TestRothColumnLemma checks vec(X·Y·Z) == (Zᵀ ⊗ X)·vec(Y), the identity
// Proposition 7 rests on.
func TestRothColumnLemma(t *testing.T) {
	f := func(xv [4]float64, yv [6]float64, zv [9]float64) bool {
		x := NewFromRows([][]float64{xv[:2], xv[2:4]})          // 2x2
		y := NewFromRows([][]float64{yv[:3], yv[3:6]})          // 2x3
		z := NewFromRows([][]float64{zv[:3], zv[3:6], zv[6:9]}) // 3x3
		lhs := x.Mul(y).Mul(z).Vec()
		rhs := z.T().Kron(x).MulVec(y.Vec())
		for i := range lhs {
			// Relative tolerance: quick can generate huge magnitudes.
			scale := math.Max(1, math.Abs(lhs[i]))
			if math.Abs(lhs[i]-rhs[i]) > 1e-9*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVecUnvecRoundTrip(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := a.Vec()
	want := []float64{1, 4, 2, 5, 3, 6} // column-stacked
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Vec = %v, want %v", v, want)
		}
	}
	if !Unvec(v, 2, 3).EqualApprox(a, 0) {
		t.Fatal("Unvec(Vec(a)) != a")
	}
}

func TestUnvecLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Unvec([]float64{1, 2, 3}, 2, 2)
}

func TestMaxAbsDiffAndEqualApprox(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{1, 2.5}, {3, 4}})
	if d := a.MaxAbsDiff(b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if !a.EqualApprox(b, 0.5) || a.EqualApprox(b, 0.4) {
		t.Fatal("EqualApprox tolerance handling wrong")
	}
	if a.EqualApprox(New(2, 3), 100) {
		t.Fatal("EqualApprox must reject shape mismatch")
	}
}

func TestZeroAndCopyFrom(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := New(2, 2)
	b.CopyFrom(a)
	if !b.EqualApprox(a, 0) {
		t.Fatal("CopyFrom failed")
	}
	a.Zero()
	if a.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
	if b.At(0, 0) != 1 {
		t.Fatal("CopyFrom must not alias")
	}
}

func TestLUSolve(t *testing.T) {
	a := NewFromRows([][]float64{{2, 1, 1}, {1, 3, 2}, {1, 0, 0}})
	b := []float64{4, 5, 6}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax := a.MulVec(x)
	for i := range b {
		if !almostEqual(ax[i], b[i], 1e-10) {
			t.Fatalf("A·x = %v, want %v", ax, b)
		}
	}
}

func TestLUSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := NewFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 7, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 1}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestLUDet(t *testing.T) {
	a := NewFromRows([][]float64{{3, 0}, {0, 2}})
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Det(), 6, 1e-12) {
		t.Fatalf("det = %v", f.Det())
	}
	// Permutation parity: swapping rows flips the sign.
	b := NewFromRows([][]float64{{0, 2}, {3, 0}})
	fb, err := Factorize(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fb.Det(), -6, 1e-12) {
		t.Fatalf("det = %v", fb.Det())
	}
}

func TestInverse(t *testing.T) {
	a := NewFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).EqualApprox(Identity(2), 1e-12) {
		t.Fatalf("A·A⁻¹ != I: %v", a.Mul(inv))
	}
}

func TestInverseSingular(t *testing.T) {
	if _, err := Inverse(NewFromRows([][]float64{{1, 1}, {1, 1}})); err == nil {
		t.Fatal("expected singular error")
	}
}

// TestSolveRandomSPDLike is a property test: for random diagonally
// dominant matrices (always invertible) Solve must satisfy A·x ≈ b.
func TestSolveRandomDiagonallyDominant(t *testing.T) {
	f := func(vals [9]float64, bv [3]float64) bool {
		a := New(3, 3)
		for i := 0; i < 3; i++ {
			var rowSum float64
			for j := 0; j < 3; j++ {
				v := math.Mod(math.Abs(vals[i*3+j]), 1) // clamp to [0,1)
				if math.IsNaN(v) {
					v = 0.5
				}
				a.Set(i, j, v)
				rowSum += v
			}
			a.Set(i, i, rowSum+1) // strict diagonal dominance
		}
		b := []float64{math.Mod(bv[0], 100), math.Mod(bv[1], 100), math.Mod(bv[2], 100)}
		for i := range b {
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				b[i] = 1
			}
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNorms(t *testing.T) {
	a := NewFromRows([][]float64{{1, -2}, {-3, 4}})
	if !almostEqual(a.Frobenius(), math.Sqrt(30), 1e-12) {
		t.Fatalf("Frobenius = %v", a.Frobenius())
	}
	if a.Induced1() != 6 { // max column abs-sum: |−2|+4 = 6
		t.Fatalf("Induced1 = %v", a.Induced1())
	}
	if a.InducedInf() != 7 { // max row abs-sum: 3+4 = 7
		t.Fatalf("InducedInf = %v", a.InducedInf())
	}
	if a.MinNorm() != math.Sqrt(30) {
		t.Fatalf("MinNorm = %v", a.MinNorm())
	}
}

func TestMeanStdStandardize(t *testing.T) {
	x := []float64{1, 0}
	z := Standardize(x)
	if z[0] != 1 || z[1] != -1 {
		t.Fatalf("ζ([1,0]) = %v, want [1,-1]", z)
	}
	z = Standardize([]float64{1, 1, 1})
	for _, v := range z {
		if v != 0 {
			t.Fatalf("ζ of constant vector must be 0, got %v", z)
		}
	}
	z = Standardize([]float64{1, 0, 0, 0, 0})
	want := []float64{2, -0.5, -0.5, -0.5, -0.5}
	for i := range want {
		if !almostEqual(z[i], want[i], 1e-12) {
			t.Fatalf("ζ = %v, want %v", z, want)
		}
	}
}

// TestStandardizeScaleInvariant checks ζ(λx) == ζ(x) for λ > 0
// (the property behind Corollary 13).
func TestStandardizeScaleInvariant(t *testing.T) {
	g := func(raw [5]float64, lraw float64) bool {
		lambda := math.Mod(math.Abs(lraw), 10) + 0.1
		x := make([]float64, 5)
		for i, v := range raw[:] {
			m := math.Mod(v, 100)
			if math.IsNaN(m) || math.IsInf(m, 0) {
				m = float64(i)
			}
			x[i] = m
		}
		return compareStandardized(x, lambda)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func compareStandardized(x []float64, lambda float64) bool {
	sx := Standardize(x)
	scaled := make([]float64, len(x))
	for i, v := range x {
		scaled[i] = lambda * v
	}
	ss := Standardize(scaled)
	for i := range sx {
		if math.Abs(sx[i]-ss[i]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestDotNorms(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2 wrong")
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Fatal("NormInf wrong")
	}
}

func TestAxpyScale(t *testing.T) {
	dst := make([]float64, 3)
	AxpyInto(dst, 2, []float64{1, 2, 3}, []float64{10, 20, 30})
	if dst[2] != 36 {
		t.Fatalf("AxpyInto = %v", dst)
	}
	ScaleInto(dst, 0.5, []float64{2, 4, 6})
	if dst[1] != 2 {
		t.Fatalf("ScaleInto = %v", dst)
	}
}

func TestStringRendering(t *testing.T) {
	s := NewFromRows([][]float64{{1, 2}}).String()
	if s == "" {
		t.Fatal("String must render something")
	}
}
