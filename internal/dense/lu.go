package dense

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by Solve and Inverse when the matrix has no
// (numerically stable) inverse.
var ErrSingular = errors.New("dense: matrix is singular")

// LU holds a LU factorization with partial pivoting: P·A = L·U, stored
// compactly in a single matrix with the pivot permutation alongside.
type LU struct {
	lu    *Matrix // L below the diagonal (unit diag implied), U on and above
	pivot []int   // row permutation applied to A
	sign  int     // +1 or −1, parity of the permutation
}

// Factorize computes the LU factorization of the square matrix a with
// partial pivoting. It returns ErrSingular if a pivot collapses to zero.
func Factorize(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("dense: Factorize needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	pivot := make([]int, n)
	for i := range pivot {
		pivot[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Find the pivot row: largest |value| in this column at or below col.
		p := col
		max := math.Abs(lu.data[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.data[r*n+col]); v > max {
				max, p = v, r
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != col {
			ra, rb := lu.data[p*n:(p+1)*n], lu.data[col*n:(col+1)*n]
			for j := 0; j < n; j++ {
				ra[j], rb[j] = rb[j], ra[j]
			}
			pivot[p], pivot[col] = pivot[col], pivot[p]
			sign = -sign
		}
		inv := 1 / lu.data[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu.data[r*n+col] * inv
			lu.data[r*n+col] = f
			if f == 0 {
				continue
			}
			rowR := lu.data[r*n : (r+1)*n]
			rowC := lu.data[col*n : (col+1)*n]
			for j := col + 1; j < n; j++ {
				rowR[j] -= f * rowC[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// SolveVec solves A·x = b for x given the factorization of A.
func (f *LU) SolveVec(b []float64) []float64 {
	n := f.lu.rows
	if len(b) != n {
		panic(fmt.Sprintf("dense: SolveVec length %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	// Apply the permutation, then forward-substitute L·y = P·b.
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	for i := 1; i < n; i++ {
		row := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back-substitute U·x = y.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// Solve solves A·x = b for a vector b, factorizing A first.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}

// Inverse returns A⁻¹ computed column-by-column from the LU factorization.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col := f.SolveVec(e)
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.data[i*n+j] = col[i]
		}
	}
	return inv, nil
}
