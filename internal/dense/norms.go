package dense

import "math"

// Frobenius returns the Frobenius norm ‖m‖F = sqrt(Σ m(i,j)²), an
// elementwise 2-norm. It is sub-multiplicative and hence an upper bound
// on the spectral radius (used by Lemma 9).
func (m *Matrix) Frobenius() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Induced1 returns the induced 1-norm: the maximum absolute column sum.
func (m *Matrix) Induced1() float64 {
	var max float64
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			s += math.Abs(m.data[i*m.cols+j])
		}
		if s > max {
			max = s
		}
	}
	return max
}

// InducedInf returns the induced ∞-norm: the maximum absolute row sum.
func (m *Matrix) InducedInf() float64 {
	var max float64
	for i := 0; i < m.rows; i++ {
		var s float64
		for _, v := range m.data[i*m.cols : (i+1)*m.cols] {
			s += math.Abs(v)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// MinNorm returns min(‖m‖F, ‖m‖1, ‖m‖∞), the set-M norm bound the paper
// recommends in Section 5.1: every member is sub-multiplicative, so the
// minimum is still an upper bound on ρ(m) and tighter than any single one.
func (m *Matrix) MinNorm() float64 {
	return math.Min(m.Frobenius(), math.Min(m.Induced1(), m.InducedInf()))
}
