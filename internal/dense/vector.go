package dense

import "math"

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x (the σ of
// Definition 11), or 0 for slices with fewer than one element.
func StdDev(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	mu := Mean(x)
	var s float64
	for _, v := range x {
		d := v - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(x)))
}

// Standardize returns ζ(x) of Definition 11: (x − μ)/σ elementwise,
// or the all-zero vector when σ = 0. The input is not modified.
func Standardize(x []float64) []float64 {
	out := make([]float64, len(x))
	sigma := StdDev(x)
	if sigma == 0 {
		return out
	}
	mu := Mean(x)
	for i, v := range x {
		out[i] = (v - mu) / sigma
	}
	return out
}

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("dense: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of x.
func NormInf(x []float64) float64 {
	var max float64
	for _, v := range x {
		a := math.Abs(v)
		if a > max {
			max = a
		}
	}
	return max
}

// AxpyInto computes dst = a·x + y elementwise; the three slices must have
// equal length, and dst may alias x or y.
func AxpyInto(dst []float64, a float64, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("dense: AxpyInto length mismatch")
	}
	for i := range dst {
		dst[i] = a*x[i] + y[i]
	}
}

// ScaleInto computes dst = a·x elementwise; dst may alias x.
func ScaleInto(dst []float64, a float64, x []float64) {
	if len(dst) != len(x) {
		panic("dense: ScaleInto length mismatch")
	}
	for i := range dst {
		dst[i] = a * x[i]
	}
}
