package difftest

// The crash-recovery half of the harness: every fault the injectable
// filesystem can produce — torn WAL appends, bit rot in the log or the
// snapshot, lying fsyncs, power loss mid-checkpoint — is driven
// through the real durable commit path, and the recovered solver is
// pinned against a fresh Prepare on the exact update prefix that was
// durable at the crash point. The acceptance contract: recovery lands
// within the differential bound OR fails with a typed actionable
// error; a silently wrong solver is the one outcome no scenario may
// produce.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/errs"
	"repro/internal/graph"
)

// crashDir is the durability directory every scenario runs under.
const crashDir = "state"

// crashOutcome is what a scenario promises about recovery: either the
// number of stream batches that must survive (openErr nil), or the
// sentinel Open must fail with.
type crashOutcome struct {
	survive int
	openErr error
}

// crashScenario is one cell of the fault matrix. run drives the
// prepared durable solver through (part of) the stream, injects the
// scenario's fault, and reports the promised outcome; any injected
// fault knob must be cleared before returning (the replacement disk
// at recovery time works).
type crashScenario struct {
	name   string
	method core.Method
	policy core.UpdatePolicy
	sync   core.DurabilityPolicy
	run    func(t testing.TB, fs *durable.MemFS, s core.Solver, stream []DynamicBatch, n, k int) crashOutcome
}

// noCompact pins the overlay path so a scenario's fault lands on the
// WAL alone; forceCompact makes every topology batch checkpoint.
var (
	noCompact    = core.UpdatePolicy{CompactionRatio: 1e12}
	forceCompact = core.UpdatePolicy{CompactionRatio: 1e-12}
)

func syncAlways() core.DurabilityPolicy { return core.DurabilityPolicy{Sync: core.SyncAlways} }

// applyBatches feeds stream batches through Update, tolerating only
// non-convergence.
func applyBatches(t testing.TB, s core.Solver, stream []DynamicBatch, n, k int) {
	t.Helper()
	ctx := context.Background()
	for bi, b := range stream {
		if _, err := s.Update(ctx, b.ToUpdate(n, k)); err != nil && !errors.Is(err, errs.ErrNotConverged) {
			t.Fatalf("batch %d: %v", bi, err)
		}
	}
}

// crashScenarios enumerates the fault matrix. The stream always holds
// three batches.
func crashScenarios() []crashScenario {
	walPath := durable.Join(crashDir, durable.WALFile)
	snapPath := durable.Join(crashDir, durable.SnapshotFile)
	return []crashScenario{
		{
			// The baseline: an orderly shutdown recovers everything.
			name: "clean-close", method: core.MethodLinBP, policy: noCompact, sync: syncAlways(),
			run: func(t testing.TB, fs *durable.MemFS, s core.Solver, stream []DynamicBatch, n, k int) crashOutcome {
				applyBatches(t, s, stream, n, k)
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				return crashOutcome{survive: len(stream)}
			},
		},
		{
			// Same, for the graph-order snapshot family (BP stores the
			// caller-order adjacency, not the kernel layout).
			name: "clean-close-graph-order", method: core.MethodBP, policy: noCompact, sync: syncAlways(),
			run: func(t testing.TB, fs *durable.MemFS, s core.Solver, stream []DynamicBatch, n, k int) crashOutcome {
				applyBatches(t, s, stream, n, k)
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				return crashOutcome{survive: len(stream)}
			},
		},
		{
			// Power loss with every append fsynced: nothing acknowledged
			// is lost, nothing beyond the log exists to lose.
			name: "power-loss-synced", method: core.MethodLinBP, policy: noCompact, sync: syncAlways(),
			run: func(t testing.TB, fs *durable.MemFS, s core.Solver, stream []DynamicBatch, n, k int) crashOutcome {
				applyBatches(t, s, stream, n, k)
				fs.Crash()
				return crashOutcome{survive: len(stream)}
			},
		},
		{
			// The disk dies 10 bytes into the last append: the torn frame
			// fails the write-ahead step, so the batch never commits, and
			// replay truncates the tail back to the record boundary.
			name: "torn-wal-append", method: core.MethodLinBP, policy: noCompact, sync: syncAlways(),
			run: func(t testing.TB, fs *durable.MemFS, s core.Solver, stream []DynamicBatch, n, k int) crashOutcome {
				applyBatches(t, s, stream[:len(stream)-1], n, k)
				size, err := fs.Size(walPath)
				if err != nil {
					t.Fatal(err)
				}
				if err := fs.FailWritesAfter(walPath, size+10); err != nil {
					t.Fatal(err)
				}
				last := stream[len(stream)-1]
				if _, err := s.Update(context.Background(), last.ToUpdate(n, k)); !errors.Is(err, durable.ErrInjected) {
					t.Fatalf("torn append: Update err = %v, want ErrInjected", err)
				}
				fs.ClearWriteFault(walPath)
				return crashOutcome{survive: len(stream) - 1}
			},
		},
		{
			// Bit rot inside the last WAL record: its checksum fails,
			// replay stops at the previous boundary and repairs the file.
			name: "wal-bit-rot", method: core.MethodLinBP, policy: noCompact, sync: syncAlways(),
			run: func(t testing.TB, fs *durable.MemFS, s core.Solver, stream []DynamicBatch, n, k int) crashOutcome {
				applyBatches(t, s, stream, n, k)
				size, err := fs.Size(walPath)
				if err != nil {
					t.Fatal(err)
				}
				if err := fs.FlipBit(walPath, size-1, 3); err != nil {
					t.Fatal(err)
				}
				return crashOutcome{survive: len(stream) - 1}
			},
		},
		{
			// A lying disk acknowledges every fsync and persists nothing:
			// power loss reverts to the Prepare-time snapshot. Lossy, but
			// a consistent prefix — never a torn state.
			name: "dropped-sync", method: core.MethodLinBP, policy: noCompact, sync: syncAlways(),
			run: func(t testing.TB, fs *durable.MemFS, s core.Solver, stream []DynamicBatch, n, k int) crashOutcome {
				fs.SetDropSync(true)
				applyBatches(t, s, stream, n, k)
				fs.SetDropSync(false)
				fs.Crash()
				return crashOutcome{survive: 0}
			},
		},
		{
			// The interval policy's documented loss bound: with fsync
			// every 2 appends, a crash after 3 batches keeps exactly 2.
			name: "fsync-interval-loss-bound", method: core.MethodLinBP, policy: noCompact,
			sync: core.DurabilityPolicy{Sync: core.SyncInterval, Interval: 2},
			run: func(t testing.TB, fs *durable.MemFS, s core.Solver, stream []DynamicBatch, n, k int) crashOutcome {
				applyBatches(t, s, stream, n, k)
				fs.Crash()
				return crashOutcome{survive: len(stream) - 1}
			},
		},
		{
			// Power loss mid-checkpoint: the compacting batch's snapshot
			// rename never becomes durable (the directory fsync fails) and
			// rolls back at the crash — but the batch is already in the
			// log, so recovery replays it over the previous checkpoint.
			name: "interrupted-checkpoint", method: core.MethodLinBP, policy: forceCompact, sync: syncAlways(),
			run: func(t testing.TB, fs *durable.MemFS, s core.Solver, stream []DynamicBatch, n, k int) crashOutcome {
				applyBatches(t, s, stream[:len(stream)-1], n, k)
				fs.SetFailSyncDir(true)
				last := stream[len(stream)-1]
				if _, err := s.Update(context.Background(), last.ToUpdate(n, k)); !errors.Is(err, durable.ErrInjected) {
					t.Fatalf("interrupted checkpoint: Update err = %v, want ErrInjected", err)
				}
				fs.SetFailSyncDir(false)
				fs.Crash()
				return crashOutcome{survive: len(stream)}
			},
		},
		{
			// Bit rot in a snapshot section: Open must refuse with the
			// typed corruption sentinel, never hand back a solver.
			name: "snapshot-bit-rot", method: core.MethodLinBP, policy: noCompact, sync: syncAlways(),
			run: func(t testing.TB, fs *durable.MemFS, s core.Solver, stream []DynamicBatch, n, k int) crashOutcome {
				applyBatches(t, s, stream, n, k)
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				if err := fs.FlipBit(snapPath, 4100, 5); err != nil {
					t.Fatal(err)
				}
				return crashOutcome{openErr: errs.ErrCorruptState}
			},
		},
	}
}

// RunCrashMatrix is the fault-injection acceptance suite: each
// scenario prepares a durable solver on a deterministic problem,
// drives the same three-batch update stream while injecting its
// fault, and then recovers. Recovery must yield a solver whose
// fixpoint matches a fresh Prepare on exactly the surviving update
// prefix within the differential bound — and must itself keep
// serving durably (one more batch, another close/open round-trip) —
// or fail with the promised typed error.
func RunCrashMatrix(t *testing.T, n, edges int, seed uint64) {
	for _, sc := range crashScenarios() {
		t.Run(fmt.Sprintf("%s/%v", sc.name, sc.method), func(t *testing.T) {
			k := 3
			p, err := Problem(n, edges, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			stream := DynamicStream(p, 3, seed+7)
			fs := durable.NewMemFS()
			opts := append(crashExtra(sc.method),
				core.WithDurabilityFS(fs, crashDir, sc.sync), core.WithUpdatePolicy(sc.policy))
			s, err := core.Prepare(p, sc.method, opts...)
			if err != nil {
				t.Fatal(err)
			}
			out := sc.run(t, fs, s, stream, n, k)
			if out.openErr != nil {
				if _, err := core.OpenFS(fs, crashDir); !errors.Is(err, out.openErr) {
					t.Fatalf("Open after %s = %v, want %v", sc.name, err, out.openErr)
				}
				return
			}
			checkRecovered(t, fs, p, sc.method, stream, out.survive)
		})
	}
	t.Run("missing-state", func(t *testing.T) {
		if _, err := core.OpenFS(durable.NewMemFS(), crashDir); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("Open on empty dir = %v, want os.ErrNotExist", err)
		}
	})
}

// crashExtra pins tight stopping rules for the kernel methods so both
// sides of the comparison land on the unique fixpoint; BP and SBP run
// their defaults.
func crashExtra(m core.Method) []core.Option {
	if m == core.MethodBP || m == core.MethodSBP {
		return nil
	}
	return []core.Option{core.WithMaxIter(500), core.WithTol(1e-13)}
}

// crashTol is the per-method recovery bound: the kernel methods pin to
// the differential default; BP's message-delta stopping rule leaves
// more summation noise between a recovered layout and a fresh one.
func crashTol(m core.Method) float64 {
	if m == core.MethodBP {
		return 1e-9
	}
	return DefaultTol
}

// checkRecovered opens the durable state, asserts exactly `survive`
// stream batches came back, pins the recovered fixpoint to a fresh
// Prepare on the mirrored prefix, and proves the recovered solver is
// still a durable one: one more batch, a clean close, and a second
// recovery must line up too.
func checkRecovered(t *testing.T, fs *durable.MemFS, base *core.Problem, m core.Method, stream []DynamicBatch, survive int) {
	t.Helper()
	extra := crashExtra(m)
	tol := crashTol(m)
	r, err := core.OpenFS(fs, crashDir, extra...)
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	j := r.Stats().Updates
	if j != int64(survive) {
		t.Errorf("recovered Updates = %d, want %d", j, survive)
	}
	if j > int64(len(stream)) {
		t.Fatalf("recovered %d updates, only %d were ever applied", j, len(stream))
	}
	mirror := &core.Problem{Graph: base.Graph.Clone(), Explicit: base.Explicit.Clone(), Ho: base.Ho, EpsilonH: base.EpsilonH}
	for _, b := range stream[:j] {
		b.ApplyMirror(mirror.Graph, mirror.Explicit)
	}
	ctx := context.Background()
	res, err := r.Update(ctx, core.Update{})
	if err != nil && !errors.Is(err, errs.ErrNotConverged) {
		t.Fatalf("recovered solve: %v", err)
	}
	fresh := Variant{Name: "fresh"}
	if d := maxAbsDiff(res.Beliefs, solveOnce(t, mirror, m, fresh, extra)); d > tol {
		t.Errorf("recovered fixpoint diverges from fresh Prepare by %g (tol %g)", d, tol)
	}

	// The recovered solver keeps its durability: commit one more batch,
	// shut down cleanly, and recover again.
	n, k := base.Graph.N(), base.Explicit.K()
	post := DynamicBatch{Add: []graph.Edge{{S: 0, T: n / 2, W: 1}}, Labels: map[int]int{1: 0}}
	res, err = r.Update(ctx, post.ToUpdate(n, k))
	if err != nil && !errors.Is(err, errs.ErrNotConverged) {
		t.Fatalf("post-recovery update: %v", err)
	}
	post.ApplyMirror(mirror.Graph, mirror.Explicit)
	want := solveOnce(t, mirror, m, fresh, extra)
	if d := maxAbsDiff(res.Beliefs, want); d > tol {
		t.Errorf("post-recovery update diverges by %g (tol %g)", d, tol)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := core.OpenFS(fs, crashDir, extra...)
	if err != nil {
		t.Fatalf("second recovery Open: %v", err)
	}
	defer r2.Close()
	// The empty pin solve and the post batch were both logged.
	if got := r2.Stats().Updates; got != j+2 {
		t.Errorf("second recovery Updates = %d, want %d", got, j+2)
	}
	res, err = r2.Update(ctx, core.Update{})
	if err != nil && !errors.Is(err, errs.ErrNotConverged) {
		t.Fatalf("second recovery solve: %v", err)
	}
	if d := maxAbsDiff(res.Beliefs, want); d > tol {
		t.Errorf("second recovery diverges by %g (tol %g)", d, tol)
	}
}
