package difftest

import "testing"

// TestCrashRecoveryMatrix is the fault-injection acceptance suite of
// the durable serving plane: torn appends, bit rot, lying fsyncs, and
// power loss mid-checkpoint must all recover to a pinned update
// prefix or fail with a typed error — never a silently wrong solver.
func TestCrashRecoveryMatrix(t *testing.T) {
	RunCrashMatrix(t, 60, 130, 11)
}
