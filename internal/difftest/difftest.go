// Package difftest is the reusable differential-correctness harness of
// the repository: it solves one identical problem instance under every
// serving configuration axis the prepared-Solver API exposes — method,
// class count, wide/compact index layout, prepare-time reordering,
// partition-parallel plane, and kernel worker count — and asserts that
// every variant reproduces the reference configuration within a tight
// divergence bound (1e-12 by default; the kernel planes are in fact
// bitwise identical, the reordered ones differ only by summation
// order).
//
// It replaces the per-PR ad-hoc equivalence tests: a PR that adds a new
// execution plane or layout axis extends Variants once and every
// method × k combination is covered, including the fuzzed edge-list
// entry point (FuzzLinBPEquivalence in this package's tests).
//
// The dynamic half of the harness (RunDynamic/RunDynamicMatrix) checks
// the epoch-versioned update plane: any stream of edge inserts,
// deletes, and relabels applied through Solver.Update — under every
// layout × ordering × partition variant and every compaction policy,
// including forced rebuilds — must land within the same bound of a
// fresh Prepare+Solve on the final graph. FuzzDynamicEquivalence is
// the fuzzed entry point for byte-encoded update streams.
package difftest

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/core"
	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/errs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/order"
	"repro/internal/xrand"
)

// DefaultTol is the divergence bound variants must stay within.
const DefaultTol = 1e-12

// ResidualScheduleTol is the divergence bound for residual-scheduled
// variants — the documented tolerance ladder of the schedule axis. The
// rounds-scheduled variants differ from the reference only by
// summation order (DefaultTol, near-bitwise); the residual plane
// relaxes rows in a data-dependent order and stops on a per-row
// residual bound, so each side is within ‖(I−M)⁻¹‖·tol_solve of the
// unique fixpoint and their distance is bounded by a small multiple of
// the solve tolerance, not by rounding noise. With the suite's solve
// tolerances (≤ 1e-12) the observed gap stays well under 1e-9.
const ResidualScheduleTol = 1e-9

// Ks is the class-count axis: the paper's experiment shapes (2, 3, 5)
// plus k = 1, the scalar collapse of Appendix E. The Problem surface
// requires k ≥ 2 (beliefs.New), so the k = 1 cell runs the kernel-level
// differential check (RunKernelK1) over the same configuration axes
// instead of the prepared-Solver one.
var Ks = []int{1, 2, 3, 5}

// Methods is the method axis: all five methods of the Problem surface.
var Methods = []core.Method{
	core.MethodBP, core.MethodLinBP, core.MethodLinBPStar, core.MethodSBP, core.MethodFABP,
}

// Variant is one point on the configuration axes. Tol, when positive,
// overrides the run's divergence bound for this variant — the
// tolerance-ladder hook the schedule axis uses (see
// ResidualScheduleTol).
type Variant struct {
	Name string
	Opts []core.Option
	Tol  float64
}

// bound resolves the effective divergence bound for the variant.
func (v Variant) bound(tol float64) float64 {
	if v.Tol > 0 {
		return v.Tol
	}
	return tol
}

// Reference is the baseline configuration every variant is compared
// against: natural order, compact indices (the default), serial,
// unpartitioned.
func Reference() Variant {
	return Variant{Name: "reference", Opts: []core.Option{core.WithReordering(core.ReorderNone)}}
}

// Variants enumerates the configuration axes for a method: the full
// layout × ordering × partitions × workers cross product for the
// kernel-backed methods, and the ordering axis alone for the
// message-passing methods (BP, SBP), which consume no kernel options.
func Variants(m core.Method) []Variant {
	orderings := []struct {
		name string
		r    core.Reordering
	}{
		{"natural", core.ReorderNone},
		{"rcm", core.ReorderRCM},
		{"degree", core.ReorderDegree},
	}
	var out []Variant
	if m == core.MethodBP || m == core.MethodSBP {
		for _, o := range orderings {
			out = append(out, Variant{
				Name: fmt.Sprintf("order=%s", o.name),
				Opts: []core.Option{core.WithReordering(o.r)},
			})
		}
		return out
	}
	for _, layout := range []struct {
		name    string
		compact bool
	}{{"compact", true}, {"wide", false}} {
		for _, o := range orderings {
			for _, parts := range []int{0, 1, 3} {
				for _, workers := range []int{0, 4} {
					out = append(out, Variant{
						Name: fmt.Sprintf("layout=%s/order=%s/parts=%d/workers=%d",
							layout.name, o.name, parts, workers),
						Opts: []core.Option{
							core.WithCompactIndices(layout.compact),
							core.WithReordering(o.r),
							core.WithPartitions(parts),
							core.WithWorkers(workers),
						},
					})
				}
			}
		}
	}
	return out
}

// Problem builds the deterministic random instance the matrix runs on:
// a random graph with explicit beliefs on ~8% of the nodes and the
// k-class homophily coupling. k must be ≥ 2 (the Problem surface's
// floor); the k = 1 axis runs through RunKernelK1.
func Problem(n, edges, k int, seed uint64) (*core.Problem, error) {
	if k < 2 {
		return nil, fmt.Errorf("difftest: Problem needs k >= 2, got %d (use RunKernelK1): %w", k, errs.ErrInvalidInput)
	}
	g := gen.Random(n, edges, seed)
	ho := coupling.Homophily(k, 0.8)
	e, _ := beliefs.Seed(n, k, beliefs.SeedConfig{Fraction: 0.08, Seed: seed + 1})
	p := &core.Problem{Graph: g, Explicit: e, Ho: ho, EpsilonH: 0.01}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Skip reports whether a method × k combination is outside the Problem
// surface (FABP is defined for k = 2 only).
func Skip(m core.Method, k int) bool {
	return m == core.MethodFABP && k != 2
}

// Run solves p with method m under the reference configuration and
// every variant, asserting that all results agree within tol (≤ 0
// selects DefaultTol). extra options (iteration caps, tolerances) are
// appended to every configuration so the comparison runs under
// identical stopping rules. Non-convergence within the iteration cap
// is fine — the iterates are still compared.
func Run(t testing.TB, p *core.Problem, m core.Method, tol float64, extra ...core.Option) {
	if tol <= 0 {
		tol = DefaultTol
	}
	want := solveOnce(t, p, m, Reference(), extra)
	for _, v := range Variants(m) {
		got := solveOnce(t, p, m, v, extra)
		if vtol := v.bound(tol); maxAbsDiff(got, want) > vtol {
			t.Errorf("%v %s: diverges from reference by %g (tol %g)", m, v.Name, maxAbsDiff(got, want), vtol)
		}
	}
}

// RunMatrix runs the full method × k matrix on deterministic random
// instances — the canonical differential suite. Each cell runs as a
// subtest so failures name their exact configuration. The k = 1 cell
// exercises the scalar kernel through RunKernelK1.
func RunMatrix(t *testing.T, n, edges int, seed uint64, extra ...core.Option) {
	for _, k := range Ks {
		if k == 1 {
			t.Run("kernel/k=1", func(t *testing.T) {
				RunKernelK1(t, n, edges, seed, DefaultTol)
			})
			continue
		}
		p, err := Problem(n, edges, k, seed)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for _, m := range Methods {
			if Skip(m, k) {
				continue
			}
			t.Run(fmt.Sprintf("%v/k=%d", m, k), func(t *testing.T) {
				Run(t, p, m, DefaultTol, extra...)
			})
		}
	}
}

// RunKernelK1 is the k = 1 cell of the matrix: the scalar kernel (the
// engine behind FABP's Appendix E collapse) run under every kernel
// configuration axis — layout × partitions × workers — and compared to
// the serial reference within tol after a fixed number of rounds.
func RunKernelK1(t testing.TB, n, edges int, seed uint64, tol float64) {
	if tol <= 0 {
		tol = DefaultTol
	}
	a := gen.Random(n, edges, seed).Adjacency()
	d := a.RowSumsSquared()
	h := dense.NewFromRows([][]float64{{0.04}})
	echoH := dense.NewFromRows([][]float64{{0.003}})
	e := make([]float64, n)
	x := seed*2862933555777941757 + 3037000493
	for i := range e {
		x = x*2862933555777941757 + 3037000493
		e[i] = float64(int64(x>>33)) / float64(1<<31) * 0.1
	}
	const rounds = 6
	run := func(cfg kernel.Config) []float64 {
		eng, err := kernel.New(cfg, nil)
		if err != nil {
			t.Fatalf("k=1 kernel: %v", err)
		}
		defer eng.Close()
		eng.SetExplicit(e)
		eng.Run(rounds, -1, nil)
		return append([]float64(nil), eng.Beliefs()...)
	}
	want := run(kernel.Config{A: a, D: d, H: h, EchoH: echoH, SymmetricA: true})
	for _, layout := range []kernel.Layout{kernel.LayoutCompact, kernel.LayoutWide} {
		for _, parts := range []int{0, 1, 3} {
			for _, workers := range []int{1, 4} {
				cfg := kernel.Config{A: a, D: d, H: h, EchoH: echoH, SymmetricA: true, Layout: layout, Workers: workers}
				if parts > 0 {
					cfg.PartitionStarts = order.PartitionRows(a, parts).Starts
				}
				got := run(cfg)
				for i := range got {
					diff := got[i] - want[i]
					if diff < 0 {
						diff = -diff
					}
					if diff > tol {
						t.Errorf("k=1 layout=%v parts=%d workers=%d: belief[%d] diverges by %g",
							layout, parts, workers, i, diff)
						return
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Dynamic equivalence: any update stream applied through Solver.Update
// must land on the same answer as a fresh Prepare+Solve on the final
// graph, for every serving configuration and update policy.

// DynamicBatch is one Update batch of a dynamic-equivalence stream.
// Within a batch additions apply before removals (the Update
// contract), so mirrors must replay in the same order.
type DynamicBatch struct {
	Add    []graph.Edge
	Del    []graph.Edge
	Labels map[int]int // node → class, installed with strength 0.1
}

// ToUpdate converts the batch into the core Update surface for a
// k-class problem over n nodes.
func (b DynamicBatch) ToUpdate(n, k int) core.Update {
	u := core.Update{AddEdges: b.Add, RemoveEdges: b.Del}
	if len(b.Labels) > 0 {
		en := beliefs.New(n, k)
		for v, c := range b.Labels {
			en.Set(v, beliefs.LabelResidual(k, c, 0.1))
		}
		u.SetExplicit = en
	}
	return u
}

// ApplyMirror replays the batch onto a from-scratch mirror problem.
func (b DynamicBatch) ApplyMirror(g *graph.Graph, e *beliefs.Residual) {
	for _, ed := range b.Add {
		g.AddEdge(ed.S, ed.T, ed.W)
	}
	g.RemoveEdges(b.Del)
	for v, c := range b.Labels {
		e.Set(v, beliefs.LabelResidual(e.K(), c, 0.1))
	}
}

// DynamicStream generates a deterministic update stream against the
// problem's graph: each batch inserts a few unit edges (self-loops and
// parallel edges included occasionally — both are legal), deletes a
// couple of existing edges, and relabels a node. Unit weights keep the
// merged-overlay and fresh-build summations exactly equal, so streams
// stay inside the 1e-12 differential bound.
func DynamicStream(p *core.Problem, batches int, seed uint64) []DynamicBatch {
	rng := xrand.New(seed)
	n, k := p.Graph.N(), p.K()
	mirror := p.Graph.Clone()
	out := make([]DynamicBatch, batches)
	for bi := range out {
		var b DynamicBatch
		adds := 2 + rng.Intn(3)
		for a := 0; a < adds; a++ {
			s, t := rng.Intn(n), rng.Intn(n)
			b.Add = append(b.Add, graph.Edge{S: s, T: t, W: 1})
		}
		for _, e := range b.Add {
			mirror.AddEdge(e.S, e.T, e.W)
		}
		dels := rng.Intn(3)
		for d := 0; d < dels && mirror.NumEdges() > 1; d++ {
			edges := mirror.Edges()
			pick := edges[rng.Intn(len(edges))]
			b.Del = append(b.Del, graph.Edge{S: pick.S, T: pick.T})
			mirror.RemoveEdges(b.Del[len(b.Del)-1:])
		}
		b.Labels = map[int]int{rng.Intn(n): rng.Intn(k)}
		out[bi] = b
	}
	return out
}

// DynamicVariants enumerates the serving axes of the dynamic
// differential suite per the acceptance matrix: wide+compact layouts ×
// all orderings × partitions ∈ {1, auto} × schedules for the kernel
// methods, and the ordering axis alone for BP and SBP (which have no
// kernel options or residual plane). The residual and auto schedules
// carry the looser ResidualScheduleTol bound — the documented
// tolerance ladder: relaxation order is data-dependent, so those
// variants agree with the rounds reference within the tolerance
// budget, never bitwise.
func DynamicVariants(m core.Method) []Variant {
	orderings := []struct {
		name string
		r    core.Reordering
	}{
		{"natural", core.ReorderNone},
		{"rcm", core.ReorderRCM},
		{"degree", core.ReorderDegree},
	}
	var out []Variant
	if m == core.MethodBP || m == core.MethodSBP {
		for _, o := range orderings {
			out = append(out, Variant{
				Name: fmt.Sprintf("order=%s", o.name),
				Opts: []core.Option{core.WithReordering(o.r)},
			})
		}
		return out
	}
	schedules := []struct {
		name string
		s    core.Schedule
		tol  float64
	}{
		{"rounds", core.ScheduleRounds, 0},
		{"residual", core.ScheduleResidual, ResidualScheduleTol},
		{"auto", core.ScheduleAuto, ResidualScheduleTol},
	}
	for _, layout := range []struct {
		name    string
		compact bool
	}{{"compact", true}, {"wide", false}} {
		for _, o := range orderings {
			for _, parts := range []struct {
				name string
				n    int
			}{{"1", 1}, {"auto", core.PartitionsAuto}} {
				for _, sched := range schedules {
					out = append(out, Variant{
						Name: fmt.Sprintf("layout=%s/order=%s/parts=%s/schedule=%s",
							layout.name, o.name, parts.name, sched.name),
						Opts: []core.Option{
							core.WithCompactIndices(layout.compact),
							core.WithReordering(o.r),
							core.WithPartitions(parts.n),
							core.WithSchedule(sched.s),
						},
						Tol: sched.tol,
					})
				}
			}
		}
	}
	return out
}

// DynamicPolicies is the policy axis: the default merge-until-threshold
// behavior, a forced compaction rebuild on every topology update, and
// pure overlay accumulation with compaction disabled.
func DynamicPolicies() []struct {
	Name   string
	Policy core.UpdatePolicy
} {
	return []struct {
		Name   string
		Policy core.UpdatePolicy
	}{
		{"default", core.UpdatePolicy{}},
		{"force-compact", core.UpdatePolicy{CompactionRatio: 1e-12}},
		{"no-compact", core.UpdatePolicy{CompactionRatio: 1e12}},
	}
}

// RunDynamic drives one update stream through a dynamic solver under
// the variant and policy, checking after every batch that (a) the
// Update-returned (warm-started) beliefs and (b) a cold solve served
// from the updated snapshot both match a fresh Prepare+Solve on the
// mirrored final graph within tol. The tight iteration options pin
// both sides far below the bound: warm and cold iterates land within
// ~tol_solve/(1−ρ) of the unique fixpoint, so their distance cannot
// exceed the differential tolerance.
func RunDynamic(t testing.TB, p *core.Problem, m core.Method, v Variant, policy core.UpdatePolicy, stream []DynamicBatch, tol float64) {
	if tol <= 0 {
		tol = DefaultTol
	}
	tol = v.bound(tol)
	var extra []core.Option
	if m == core.MethodLinBP || m == core.MethodLinBPStar || m == core.MethodFABP {
		extra = []core.Option{core.WithMaxIter(500), core.WithTol(1e-13)}
	}
	opts := append(append(append([]core.Option{}, v.Opts...), extra...), core.WithUpdatePolicy(policy))
	s, err := core.Prepare(p, m, opts...)
	if err != nil {
		t.Fatalf("%v %s: Prepare: %v", m, v.Name, err)
	}
	defer s.Close()
	mirror := &core.Problem{Graph: p.Graph.Clone(), Explicit: p.Explicit.Clone(), Ho: p.Ho, EpsilonH: p.EpsilonH}
	ctx := context.Background()
	n, k := p.Graph.N(), p.K()
	for bi, b := range stream {
		res, err := s.Update(ctx, b.ToUpdate(n, k))
		if err != nil && !errors.Is(err, errs.ErrNotConverged) {
			t.Fatalf("%v %s batch %d: Update: %v", m, v.Name, bi, err)
		}
		b.ApplyMirror(mirror.Graph, mirror.Explicit)
		fresh := solveOnce(t, mirror, m, v, extra)
		if d := maxAbsDiff(res.Beliefs, fresh); d > tol {
			t.Errorf("%v %s batch %d: Update result diverges from fresh Prepare by %g (tol %g)", m, v.Name, bi, d, tol)
		}
		dst := beliefs.New(n, k)
		if _, err := s.SolveInto(ctx, dst, mirror.Explicit); err != nil && !errors.Is(err, errs.ErrNotConverged) {
			t.Fatalf("%v %s batch %d: SolveInto: %v", m, v.Name, bi, err)
		}
		if d := maxAbsDiff(dst, fresh); d > tol {
			t.Errorf("%v %s batch %d: served solve diverges from fresh Prepare by %g (tol %g)", m, v.Name, bi, d, tol)
		}
	}
}

// RunDynamicMatrix is the canonical dynamic differential suite: for
// every method it crosses the serving variants with the update
// policies on a deterministic stream. BP runs at a slightly looser
// bound (its message iteration stops on the message delta, not the
// belief delta, so the stale-layout epochs differ from the fresh
// prepare by more summation noise than the kernel methods).
func RunDynamicMatrix(t *testing.T, n, edges, batches int, seed uint64) {
	for _, m := range Methods {
		k := 3
		if m == core.MethodFABP {
			k = 2
		}
		p, err := Problem(n, edges, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		stream := DynamicStream(p, batches, seed+7)
		tol := DefaultTol
		if m == core.MethodBP {
			tol = 1e-10
		}
		for _, v := range DynamicVariants(m) {
			for _, pol := range DynamicPolicies() {
				t.Run(fmt.Sprintf("%v/%s/policy=%s", m, v.Name, pol.Name), func(t *testing.T) {
					RunDynamic(t, p, m, v, pol.Policy, stream, tol)
				})
			}
		}
	}
}

// solveOnce prepares one configuration, runs one SolveInto, and returns
// the final beliefs.
func solveOnce(t testing.TB, p *core.Problem, m core.Method, v Variant, extra []core.Option) *beliefs.Residual {
	opts := append(append([]core.Option{}, v.Opts...), extra...)
	s, err := core.Prepare(p, m, opts...)
	if err != nil {
		t.Fatalf("%v %s: Prepare: %v", m, v.Name, err)
	}
	defer s.Close()
	dst := beliefs.New(p.Graph.N(), p.K())
	if _, err := s.SolveInto(context.Background(), dst, p.Explicit); err != nil && !errors.Is(err, errs.ErrNotConverged) {
		t.Fatalf("%v %s: SolveInto: %v", m, v.Name, err)
	}
	return dst
}

// maxAbsDiff returns the largest element-wise divergence.
func maxAbsDiff(a, b *beliefs.Residual) float64 {
	ad, bd := a.Matrix().Data(), b.Matrix().Data()
	var max float64
	for i := range ad {
		d := ad[i] - bd[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}
