package difftest

import (
	"testing"

	"repro/internal/core"
)

// TestDifferentialMatrix is the canonical equivalence suite: every
// method × k ∈ {1,2,3,5} on two deterministic random instances, each
// solved under the full configuration cross product (wide/compact ×
// ordering × partitions × workers for the kernel-backed methods,
// ordering for BP/SBP) and pinned to the reference within 1e-12.
func TestDifferentialMatrix(t *testing.T) {
	RunMatrix(t, 350, 800, 7, core.WithMaxIter(60))
}

// TestDifferentialMatrixFixedRounds re-runs the matrix under the
// paper's timing convention (fixed rounds, no early stopping): the
// iterates after exactly 5 rounds must also agree, which catches
// divergence the converged fixpoint would mask.
func TestDifferentialMatrixFixedRounds(t *testing.T) {
	RunMatrix(t, 250, 600, 11, core.WithMaxIter(5), core.WithTol(-1))
}

// TestVariantsCoverAxes pins the harness itself: the kernel-backed
// variant set must span both layouts, all three orderings, the
// partition counts, and both worker settings.
func TestVariantsCoverAxes(t *testing.T) {
	vs := Variants(core.MethodLinBP)
	if len(vs) != 2*3*3*2 {
		t.Fatalf("kernel variant count = %d, want %d", len(vs), 2*3*3*2)
	}
	seen := map[string]bool{}
	for _, v := range vs {
		seen[v.Name] = true
	}
	for _, name := range []string{
		"layout=compact/order=natural/parts=0/workers=0",
		"layout=wide/order=degree/parts=3/workers=4",
		"layout=compact/order=rcm/parts=1/workers=0",
	} {
		if !seen[name] {
			t.Fatalf("variant %q missing", name)
		}
	}
	if got := len(Variants(core.MethodBP)); got != 3 {
		t.Fatalf("BP variant count = %d, want 3 (ordering axis only)", got)
	}
}

// TestProblemRejectsInvalid guards the instance builder: every k ≥ 2
// axis value builds a valid instance, and k = 1 is routed to the
// kernel-level check instead.
func TestProblemRejectsInvalid(t *testing.T) {
	for _, k := range Ks {
		p, err := Problem(120, 260, k, 5)
		if k == 1 {
			if err == nil {
				t.Fatal("k=1 must be rejected by the Problem surface")
			}
			continue
		}
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.Graph.N() != 120 || p.K() != k {
			t.Fatalf("k=%d: got n=%d k=%d", k, p.Graph.N(), p.K())
		}
	}
}
