package difftest

import (
	"testing"

	"repro/internal/core"
)

// TestDynamicEquivalenceMatrix is the dynamic differential suite of the
// acceptance matrix: every method × serving variant × update policy
// replays the same deterministic insert/delete/relabel stream and must
// match a fresh Prepare on the evolving graph after every batch.
func TestDynamicEquivalenceMatrix(t *testing.T) {
	RunDynamicMatrix(t, 48, 96, 4, 5)
}

// TestDynamicEquivalenceLargerKernel gives the kernel methods a second,
// denser instance where the auto partitioner and reorderer make
// non-trivial choices.
func TestDynamicEquivalenceLargerKernel(t *testing.T) {
	p, err := Problem(120, 300, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	stream := DynamicStream(p, 5, 78)
	for _, m := range []core.Method{core.MethodLinBP, core.MethodLinBPStar} {
		v := Variant{Name: "defaults", Opts: nil}
		t.Run(m.String(), func(t *testing.T) {
			RunDynamic(t, p, m, v, core.UpdatePolicy{CompactionRatio: 0.02}, stream, DefaultTol)
		})
	}
}
