package difftest

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// TestDynamicEquivalenceMatrix is the dynamic differential suite of the
// acceptance matrix: every method × serving variant × update policy
// replays the same deterministic insert/delete/relabel stream and must
// match a fresh Prepare on the evolving graph after every batch.
func TestDynamicEquivalenceMatrix(t *testing.T) {
	RunDynamicMatrix(t, 48, 96, 4, 5)
}

// TestDynamicAutoEpsilonEquivalence is the compaction εH-re-derivation
// differential: with WithAutoEpsilonH and a forced compaction on every
// topology update, each epoch re-derives εH on the merged graph exactly
// as a fresh Prepare would, so the dynamic solver must keep matching a
// fresh Prepare (also under auto εH) after every batch. The residual
// variant runs the same stream through the seeded re-solve path, where
// an εH change must invalidate the localized warm seed.
func TestDynamicAutoEpsilonEquivalence(t *testing.T) {
	for _, m := range []core.Method{core.MethodLinBP, core.MethodLinBPStar, core.MethodFABP} {
		k := 3
		if m == core.MethodFABP {
			k = 2
		}
		p, err := Problem(48, 96, k, 21)
		if err != nil {
			t.Fatal(err)
		}
		stream := DynamicStream(p, 4, 22)
		for _, v := range []Variant{
			{Name: "autoeps", Opts: []core.Option{core.WithAutoEpsilonH()}},
			{Name: "autoeps/residual", Opts: []core.Option{core.WithAutoEpsilonH(), core.WithSchedule(core.ScheduleResidual)}, Tol: ResidualScheduleTol},
		} {
			t.Run(m.String()+"/"+v.Name, func(t *testing.T) {
				RunDynamic(t, p, m, v, core.UpdatePolicy{CompactionRatio: 1e-12}, stream, DefaultTol)
			})
		}
	}
}

// TestCompactionExposesRederivedEpsilonH pins the Stats surface of the
// εH re-derivation: after an insert-heavy update stream crosses the
// compaction threshold, Stats().EpsilonH reports the new epoch's εH —
// the value a fresh auto-εH Prepare on the merged graph derives — not
// the stale prepare-time scale.
func TestCompactionExposesRederivedEpsilonH(t *testing.T) {
	p, err := Problem(48, 72, 3, 33)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Prepare(p, core.MethodLinBP, core.WithAutoEpsilonH(),
		core.WithUpdatePolicy(core.UpdatePolicy{CompactionRatio: 1e-12}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	before := s.Stats().EpsilonH
	mirror := p.Graph.Clone()
	ctx := context.Background()
	// Densify: enough inserts to move the spectral scale measurably.
	var u core.Update
	for i := 0; i < 48; i++ {
		e := graph.Edge{S: i, T: (i*7 + 3) % 48, W: 1}
		u.AddEdges = append(u.AddEdges, e)
		mirror.AddEdge(e.S, e.T, e.W)
	}
	if _, err := s.Update(ctx, u); err != nil {
		t.Fatalf("Update: %v", err)
	}
	after := s.Stats().EpsilonH
	if after == before {
		t.Fatalf("compaction did not re-derive εH: still %g", before)
	}
	fp := &core.Problem{Graph: mirror, Explicit: p.Explicit, Ho: p.Ho, EpsilonH: p.EpsilonH}
	fs, err := core.Prepare(fp, core.MethodLinBP, core.WithAutoEpsilonH())
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if want := fs.Stats().EpsilonH; math.Abs(after-want) > 1e-12 {
		t.Fatalf("re-derived εH = %g, fresh Prepare derives %g", after, want)
	}
}

// TestDynamicEquivalenceLargerKernel gives the kernel methods a second,
// denser instance where the auto partitioner and reorderer make
// non-trivial choices.
func TestDynamicEquivalenceLargerKernel(t *testing.T) {
	p, err := Problem(120, 300, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	stream := DynamicStream(p, 5, 78)
	for _, m := range []core.Method{core.MethodLinBP, core.MethodLinBPStar} {
		v := Variant{Name: "defaults", Opts: nil}
		t.Run(m.String(), func(t *testing.T) {
			RunDynamic(t, p, m, v, core.UpdatePolicy{CompactionRatio: 0.02}, stream, DefaultTol)
		})
	}
}
