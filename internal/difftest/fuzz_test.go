package difftest

import (
	"testing"

	"repro/internal/beliefs"
	"repro/internal/core"
	"repro/internal/coupling"
	"repro/internal/graph"
)

// FuzzLinBPEquivalence fuzzes edge lists and explicit beliefs and
// asserts that every serving configuration (layout × ordering ×
// partitions × workers) of the prepared LinBP solver reproduces the
// reference within 1e-12 after a fixed number of rounds. Run the seeds
// with plain `go test`; explore with
//
//	go test -fuzz=FuzzLinBPEquivalence ./internal/difftest
func FuzzLinBPEquivalence(f *testing.F) {
	// Seed corpus: a triangle with one labeled node per class count, a
	// star (hub stresses the nnz-balanced partitioner), a path, and a
	// denser random-ish blob.
	f.Add([]byte{0, 1, 0, 1, 1, 2, 2, 0, 200, 17, 64, 190, 12, 250})
	f.Add([]byte{1, 6, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5, 9, 220, 31, 130, 77, 5, 255, 128})
	f.Add([]byte{2, 8, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 42, 42, 42, 42, 42, 42, 42, 42, 42, 42})
	f.Add([]byte{0, 30, 3, 11, 7, 23, 1, 29, 14, 2, 8, 8, 19, 4, 26, 13, 90, 180, 45, 210, 33, 156, 201, 78, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		p := fuzzProblem(raw)
		if p == nil {
			t.Skip("bytes do not encode a valid instance")
		}
		// Fixed rounds: deterministic stopping across configurations
		// and no dependence on convergence of the fuzzed coupling.
		Run(t, p, core.MethodLinBP, DefaultTol, core.WithMaxIter(5), core.WithTol(-1))
	})
}

// FuzzDynamicEquivalence fuzzes byte-encoded update streams — edge
// inserts, deletes, relabels, and epoch commits — against a fixed
// small instance and asserts that the epoch-versioned Update path
// stays within 1e-12 of a fresh Prepare+Solve on the evolving graph at
// every commit. Explore with
//
//	go test -fuzz=FuzzDynamicEquivalence ./internal/difftest
func FuzzDynamicEquivalence(f *testing.F) {
	// Seeds: insert-heavy, delete/re-add churn, relabel-only, and a mix
	// with several commits.
	f.Add([]byte{0, 1, 5, 0, 2, 9, 3, 255, 0, 0, 4, 11, 0})
	f.Add([]byte{1, 1, 5, 3, 0, 1, 5, 0, 1, 5, 3, 255, 2, 4, 1})
	f.Add([]byte{2, 3, 1, 2, 7, 2, 3, 255, 2, 9, 0, 255})
	f.Add([]byte{0, 2, 13, 1, 13, 2, 255, 0, 13, 2, 3, 255, 2, 1, 1, 0, 6, 17, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		stream := fuzzStream(raw)
		if len(stream) == 0 {
			t.Skip("bytes encode no committed batch")
		}
		p, err := Problem(24, 48, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		RunDynamic(t, p, core.MethodLinBP, Variant{Name: "fuzz"},
			core.UpdatePolicy{CompactionRatio: 0.1}, stream, DefaultTol)
	})
}

// FuzzResidualSchedule fuzzes byte-encoded update streams against a
// residual-scheduled LinBP solver: every committed batch's localized
// touched-row re-solve must stay within the tolerance budget of a
// fresh rounds-reference Prepare on the evolving graph. The seeds are
// adversarial for the seeded path specifically — repeated touches of
// the same rows, remove-then-re-add of the same edge (a no-op delta
// whose touched rows must still reconverge), relabel churn on one
// node, and a batch mixing all three. Explore with
//
//	go test -fuzz=FuzzResidualSchedule ./internal/difftest
func FuzzResidualSchedule(f *testing.F) {
	f.Add([]byte{0, 1, 5, 0, 1, 5, 0, 5, 1, 255, 0, 1, 5, 255})
	f.Add([]byte{0, 2, 9, 1, 2, 9, 0, 2, 9, 1, 2, 9, 255})
	f.Add([]byte{2, 3, 0, 2, 3, 1, 2, 3, 2, 2, 3, 0, 255, 2, 3, 1, 255})
	f.Add([]byte{0, 7, 8, 1, 7, 8, 2, 7, 1, 0, 8, 9, 255, 1, 8, 9, 2, 9, 2, 255, 255})
	f.Fuzz(func(t *testing.T, raw []byte) {
		stream := fuzzStream(raw)
		if len(stream) == 0 {
			t.Skip("bytes encode no committed batch")
		}
		p, err := Problem(24, 48, 3, 3)
		if err != nil {
			t.Fatal(err)
		}
		RunDynamic(t, p, core.MethodLinBP,
			Variant{Name: "fuzz-residual", Opts: []core.Option{core.WithSchedule(core.ScheduleResidual)}, Tol: ResidualScheduleTol},
			core.UpdatePolicy{CompactionRatio: 0.1}, stream, DefaultTol)
	})
}

// fuzzStream decodes bytes into DynamicBatches over a 24-node graph:
// opcode 0 = add edge (two operand bytes), 1 = delete edge (two
// operands), 2 = relabel (node, class), 255 = commit the batch.
// Batches and per-batch ops are capped to keep fuzz cases fast.
func fuzzStream(raw []byte) []DynamicBatch {
	const n = 24
	var out []DynamicBatch
	var cur DynamicBatch
	ops := 0
	for i := 0; i < len(raw) && len(out) < 6; {
		op := raw[i]
		switch {
		case op == 255:
			if ops > 0 {
				out = append(out, cur)
				cur = DynamicBatch{}
				ops = 0
			}
			i++
		case i+2 < len(raw):
			a, b := int(raw[i+1])%n, int(raw[i+2])%n
			switch op % 3 {
			case 0:
				cur.Add = append(cur.Add, graph.Edge{S: a, T: b, W: 1})
			case 1:
				cur.Del = append(cur.Del, graph.Edge{S: a, T: b})
			case 2:
				if cur.Labels == nil {
					cur.Labels = map[int]int{}
				}
				cur.Labels[a] = b % 3
			}
			ops++
			if ops >= 8 {
				out = append(out, cur)
				cur = DynamicBatch{}
				ops = 0
			}
			i += 3
		default:
			i = len(raw)
		}
	}
	if ops > 0 && len(out) < 6 {
		out = append(out, cur)
	}
	return out
}

// fuzzProblem decodes bytes into a small LinBP instance: byte 0 picks
// k ∈ {2, 3, 5}, byte 1 the node count, then byte pairs form edges
// until a zero pair or the belief section, whose bytes fill centered
// explicit rows. Returns nil when the bytes do not produce a valid
// problem.
func fuzzProblem(raw []byte) *core.Problem {
	if len(raw) < 6 {
		return nil
	}
	k := []int{2, 3, 5}[int(raw[0])%3]
	n := 2 + int(raw[1])%40
	g := graph.New(n)
	i := 2
	for ; i+1 < len(raw) && g.NumEdges() < 3*n; i += 2 {
		u, v := int(raw[i])%n, int(raw[i+1])%n
		if u == v {
			continue
		}
		g.AddUnitEdge(u, v)
	}
	if g.NumEdges() == 0 {
		return nil
	}
	e := beliefs.New(n, k)
	row := make([]float64, k)
	for node := 0; i+k-1 < len(raw) && node < n; node++ {
		var sum float64
		for c := 0; c < k-1; c++ {
			row[c] = (float64(raw[i+c]) - 127.5) / 127.5 * 0.1
			sum += row[c]
		}
		row[k-1] = -sum
		e.Set(node, row)
		i += k - 1
	}
	p := &core.Problem{Graph: g, Explicit: e, Ho: coupling.Homophily(k, 0.8), EpsilonH: 0.01}
	if p.Validate() != nil {
		return nil
	}
	return p
}
