// Byte-level codecs for the snapshot sections. On the dominant
// platform shape (little-endian, 64-bit int — checked at runtime, not
// assumed) the slice<->byte conversions are zero-copy aliases, which
// is what lets the mmap loader serve the CSR arrays straight out of
// the mapping. Big-endian or 32-bit hosts fall back to an explicit
// encode/decode pass; the on-disk format is identical either way.
package durable

import (
	"encoding/binary"
	"math"
	"strconv"
	"unsafe"
)

// le is the on-disk byte order for every integer in the format.
var le = binary.LittleEndian

// hostAliasable reports whether []int/[]int32/[]float64 share memory
// layout with their little-endian on-disk encodings.
var hostAliasable = strconv.IntSize == 64 && func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// intsBytes returns the little-endian i64 encoding of s, aliasing its
// memory when the host layout permits. The result must be treated as
// read-only in the alias case.
func intsBytes(s []int) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostAliasable {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	b := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
	return b
}

func int32sBytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostAliasable {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	b := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
	}
	return b
}

func floatsBytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostAliasable {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	b := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

// bytesInts decodes b as i64s. When alias is true and the host
// permits, the returned slice shares b's memory (b must stay alive
// and unmodified); otherwise it is a fresh copy.
func bytesInts(b []byte, alias bool) []int {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if alias && hostAliasable {
		return unsafe.Slice((*int)(unsafe.Pointer(&b[0])), n)
	}
	s := make([]int, n)
	for i := range s {
		s[i] = int(int64(binary.LittleEndian.Uint64(b[i*8:])))
	}
	return s
}

func bytesInt32s(b []byte, alias bool) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if alias && hostAliasable {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return s
}

func bytesFloats(b []byte, alias bool) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if alias && hostAliasable {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return s
}
