package durable

import (
	"errors"
	"os"
	"reflect"
	"testing"

	"repro/internal/errs"
)

func testSnapshot() *Snapshot {
	return &Snapshot{
		Method:     2,
		Ordering:   1,
		N:          4,
		K:          2,
		EpsH:       0.05,
		WALSeq:     7,
		BandBefore: 3,
		BandAfter:  1,
		Perm:       []int{2, 0, 1, 3},
		PartStarts: []int{0, 2, 4},
		RowPtr:     []int{0, 2, 3, 5, 6},
		ColIdx32:   []int32{1, 2, 0, 0, 3, 2},
		Vals:       []float64{1, 2, 1, 2, 0.5, 0.5},
		HO:         []float64{0.1, -0.1, -0.1, 0.1},
		Explicit:   []float64{0.9, -0.9, 0, 0, 0, 0, -0.3, 0.3},
		Last:       []float64{1, 2, 3, 4, 5, 6, 7, 8},
	}
}

func checkSnapshotEqual(t *testing.T, got, want *Snapshot) {
	t.Helper()
	if got.Method != want.Method || got.Ordering != want.Ordering ||
		got.N != want.N || got.K != want.K || got.EpsH != want.EpsH ||
		got.WALSeq != want.WALSeq || got.BandBefore != want.BandBefore ||
		got.BandAfter != want.BandAfter || got.GraphOrder != want.GraphOrder {
		t.Fatalf("header mismatch: got %+v", got)
	}
	for name, pair := range map[string][2]any{
		"perm":       {got.Perm, want.Perm},
		"partStarts": {got.PartStarts, want.PartStarts},
		"rowPtr":     {got.RowPtr, want.RowPtr},
		"colIdx32":   {got.ColIdx32, want.ColIdx32},
		"vals":       {got.Vals, want.Vals},
		"ho":         {got.HO, want.HO},
		"explicit":   {got.Explicit, want.Explicit},
		"last":       {got.Last, want.Last},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Errorf("%s: got %v want %v", name, pair[0], pair[1])
		}
	}
}

func TestSnapshotRoundtripMemFS(t *testing.T) {
	fs := NewMemFS()
	want := testSnapshot()
	if err := WriteSnapshot(fs, "d", want); err != nil {
		t.Fatal(err)
	}
	if !HasSnapshot(fs, "d") {
		t.Fatal("HasSnapshot = false after write")
	}
	got, err := LoadSnapshot(fs, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	checkSnapshotEqual(t, got, want)
}

func TestSnapshotRoundtripOSWithMmap(t *testing.T) {
	dir := t.TempDir()
	want := testSnapshot()
	want.GraphOrder = true
	want.Last = nil // exercise the absent-section flag too
	if err := WriteSnapshot(OS, dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	checkSnapshotEqual(t, got, want)
}

func TestSnapshotWideColIdxRoundtrip(t *testing.T) {
	fs := NewMemFS()
	want := testSnapshot()
	want.ColIdx = []int{1, 2, 0, 0, 3, 2}
	want.ColIdx32 = nil
	if err := WriteSnapshot(fs, "d", want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(fs, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()
	if got.ColIdx32 != nil || !reflect.DeepEqual(got.ColIdx, want.ColIdx) {
		t.Fatalf("wide colIdx: got %v / %v", got.ColIdx, got.ColIdx32)
	}
}

func TestSnapshotMissingIsNotExist(t *testing.T) {
	if _, err := LoadSnapshot(NewMemFS(), "d"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
	if HasSnapshot(NewMemFS(), "d") {
		t.Fatal("HasSnapshot on empty fs")
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	path := Join("d", SnapshotFile)
	cases := []struct {
		name string
		off  int64 // byte to flip
	}{
		{"header", 25},         // n field
		{"section-table", 80},  // first table entry
		{"section-body", 4100}, // inside the first aligned section
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := NewMemFS()
			if err := WriteSnapshot(fs, "d", testSnapshot()); err != nil {
				t.Fatal(err)
			}
			if err := fs.FlipBit(path, tc.off, 3); err != nil {
				t.Fatal(err)
			}
			if _, err := LoadSnapshot(fs, "d"); !errors.Is(err, errs.ErrCorruptState) {
				t.Fatalf("err = %v, want ErrCorruptState", err)
			}
		})
	}
}

func TestSnapshotTruncatedIsCorrupt(t *testing.T) {
	fs := NewMemFS()
	if err := WriteSnapshot(fs, "d", testSnapshot()); err != nil {
		t.Fatal(err)
	}
	path := Join("d", SnapshotFile)
	size, _ := fs.Size(path)
	// The file is padded out to a page boundary, so cut a whole page
	// to land inside the last section rather than its padding.
	if err := fs.Truncate(path, size-pageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(fs, "d"); !errors.Is(err, errs.ErrCorruptState) {
		t.Fatalf("err = %v, want ErrCorruptState", err)
	}
}

func TestSnapshotFutureVersionRejected(t *testing.T) {
	fs := NewMemFS()
	if err := WriteSnapshot(fs, "d", testSnapshot()); err != nil {
		t.Fatal(err)
	}
	path := Join("d", SnapshotFile)
	// Bump the version field (offset 8) and refresh nothing else: the
	// loader must refuse before checksum verification even matters.
	f, _ := fs.OpenAppend(path)
	if _, err := f.WriteAt([]byte{99, 0, 0, 0}, 8); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err := LoadSnapshot(fs, "d")
	if err == nil || errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want version rejection", err)
	}
}

func TestSnapshotCrashBeforeRenameLeavesOld(t *testing.T) {
	fs := NewMemFS()
	old := testSnapshot()
	if err := WriteSnapshot(fs, "d", old); err != nil {
		t.Fatal(err)
	}
	// Sabotage the next write so the tmp file is torn mid-stream.
	next := testSnapshot()
	next.WALSeq = 99
	// The tmp file is created inside WriteSnapshot; inject by making
	// sync fail instead, which aborts before the rename.
	fs.SetFailSync(true)
	if err := WriteSnapshot(fs, "d", next); !errors.Is(err, ErrInjected) {
		t.Fatalf("sabotaged write err = %v, want ErrInjected", err)
	}
	fs.SetFailSync(false)
	fs.Crash()
	got, err := LoadSnapshot(fs, "d")
	if err != nil {
		t.Fatalf("old snapshot lost: %v", err)
	}
	defer got.Close()
	if got.WALSeq != old.WALSeq {
		t.Fatalf("WALSeq = %d, want the old snapshot's %d", got.WALSeq, old.WALSeq)
	}
}

func TestSnapshotCrashAfterRenameWithoutDirSync(t *testing.T) {
	fs := NewMemFS()
	old := testSnapshot()
	if err := WriteSnapshot(fs, "d", old); err != nil {
		t.Fatal(err)
	}
	next := testSnapshot()
	next.WALSeq = 99
	fs.SetFailSyncDir(true)
	err := WriteSnapshot(fs, "d", next)
	fs.SetFailSyncDir(false)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected from dir sync", err)
	}
	fs.Crash()
	// The rename was never made durable: the old snapshot must be back.
	got, lerr := LoadSnapshot(fs, "d")
	if lerr != nil {
		t.Fatalf("after crash: %v", lerr)
	}
	defer got.Close()
	if got.WALSeq != old.WALSeq {
		t.Fatalf("WALSeq = %d, want rollback to %d", got.WALSeq, old.WALSeq)
	}
}

func record(seq uint64) *Record {
	return &Record{
		Seq:  seq,
		K:    2,
		Adds: []Edge{{S: 1, T: 2, W: 0.5}},
		Dels: []Pair{{S: 0, T: 3}},
		Rows: []BeliefRow{{Node: 1, Row: []float64{0.25, -0.25}}},
	}
}

func replayAll(t *testing.T, fs FS, dir string, after uint64) (uint64, []*Record) {
	t.Helper()
	var recs []*Record
	last, n, err := ReplayWAL(fs, dir, after, func(r *Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs) {
		t.Fatalf("replayed count %d, callback saw %d", n, len(recs))
	}
	return last, recs
}

func TestWALAppendReplayRoundtrip(t *testing.T) {
	fs := NewMemFS()
	w, err := OpenWAL(fs, "d", Policy{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 3; seq++ {
		if err := w.Append(record(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	last, recs := replayAll(t, fs, "d", 0)
	if last != 3 || len(recs) != 3 {
		t.Fatalf("replay: last=%d n=%d, want 3/3", last, len(recs))
	}
	if !reflect.DeepEqual(recs[1], record(2)) {
		t.Fatalf("record 2 = %+v", recs[1])
	}
	// Skipping a checkpointed prefix.
	last, recs = replayAll(t, fs, "d", 2)
	if last != 3 || len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("after=2 replay: last=%d recs=%v", last, recs)
	}
}

func TestWALSyncPoliciesUnderCrash(t *testing.T) {
	for _, tc := range []struct {
		name string
		pol  Policy
		want int // records surviving the crash
	}{
		{"always", Policy{Sync: SyncAlways}, 4},
		{"interval-2", Policy{Sync: SyncInterval, Interval: 2}, 4},
		{"interval-3", Policy{Sync: SyncInterval, Interval: 3}, 3},
		{"never", Policy{Sync: SyncNever}, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs := NewMemFS()
			w, err := OpenWAL(fs, "d", tc.pol)
			if err != nil {
				t.Fatal(err)
			}
			for seq := uint64(1); seq <= 4; seq++ {
				if err := w.Append(record(seq)); err != nil {
					t.Fatal(err)
				}
			}
			// No Close: the process dies here.
			fs.Crash()
			last, recs := replayAll(t, fs, "d", 0)
			if len(recs) != tc.want || last != uint64(tc.want) {
				t.Fatalf("survived %d records (last=%d), want %d", len(recs), last, tc.want)
			}
		})
	}
}

func TestWALTornAppendRolledBackAndAppendable(t *testing.T) {
	fs := NewMemFS()
	w, err := OpenWAL(fs, "d", Policy{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(record(1)); err != nil {
		t.Fatal(err)
	}
	// Tear the second append mid-frame.
	path := Join("d", WALFile)
	size, _ := fs.Size(path)
	if err := fs.FailWritesAfter(path, size+10); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(record(2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn append err = %v", err)
	}
	fs.ClearWriteFault(path)
	// Append rolls the torn frame back immediately: the file is at the
	// last acknowledged boundary without any replay in between.
	if got, _ := fs.Size(path); got != size {
		t.Fatalf("file size %d after failed append, want rollback to %d", got, size)
	}
	// Continued operation on the SAME handle: the committer retries the
	// unacknowledged batch at the same seq, and the new record must be
	// replayable (the old code let it land after the torn frame, where
	// replay silently discarded it).
	if err := w.Append(record(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(record(3)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	last, recs := replayAll(t, fs, "d", 0)
	if last != 3 || len(recs) != 3 {
		t.Fatalf("post-tear replay: last=%d n=%d, want 3/3", last, len(recs))
	}
}

func TestWALFailedSyncRollsBackUnacknowledgedFrame(t *testing.T) {
	fs := NewMemFS()
	w, err := OpenWAL(fs, "d", Policy{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(record(1)); err != nil {
		t.Fatal(err)
	}
	path := Join("d", WALFile)
	size, _ := fs.Size(path)
	// The frame lands in full but the fsync fails: under SyncAlways the
	// record was never acknowledged, so it must not survive on disk —
	// otherwise the retried batch duplicates its seq and replay breaks.
	fs.SetFailSync(true)
	if err := w.Append(record(2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("failed-sync append err = %v", err)
	}
	fs.SetFailSync(false)
	if got, _ := fs.Size(path); got != size {
		t.Fatalf("file size %d after failed sync, want rollback to %d", got, size)
	}
	if err := w.Append(record(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(record(3)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	last, recs := replayAll(t, fs, "d", 0)
	if last != 3 || len(recs) != 3 {
		t.Fatalf("post-sync-failure replay: last=%d n=%d, want 3/3", last, len(recs))
	}
}

func TestWALOversizedRecordRefused(t *testing.T) {
	fs := NewMemFS()
	w, err := OpenWAL(fs, "d", Policy{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(record(1)); err != nil {
		t.Fatal(err)
	}
	path := Join("d", WALFile)
	size, _ := fs.Size(path)
	// One belief row at an absurd k pushes the encoding past the frame
	// limit; the refusal happens before encode, so nothing is allocated
	// or written and the log stays healthy.
	big := &Record{Seq: 2, K: 1 << 27, Rows: []BeliefRow{{Node: 0}}}
	if err := w.Append(big); !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized append err = %v, want ErrRecordTooLarge", err)
	}
	if got, _ := fs.Size(path); got != size {
		t.Fatalf("file size %d after refused append, want %d", got, size)
	}
	if err := w.Append(record(2)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	last, recs := replayAll(t, fs, "d", 0)
	if last != 2 || len(recs) != 2 {
		t.Fatalf("post-refusal replay: last=%d n=%d, want 2/2", last, len(recs))
	}
}

// faultFS overlays failure injection for the FS methods MemFS has no
// knobs for (rotation and rollback paths).
type faultFS struct {
	FS
	failOpenAppend bool
	failTruncate   bool
}

func (f *faultFS) OpenAppend(path string) (File, error) {
	if f.failOpenAppend {
		return nil, ErrInjected
	}
	return f.FS.OpenAppend(path)
}

func (f *faultFS) Truncate(path string, size int64) error {
	if f.failTruncate {
		return ErrInjected
	}
	return f.FS.Truncate(path, size)
}

func TestWALBrokenWhenRollbackTruncateFails(t *testing.T) {
	mem := NewMemFS()
	ffs := &faultFS{FS: mem}
	w, err := OpenWAL(ffs, "d", Policy{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(record(1)); err != nil {
		t.Fatal(err)
	}
	path := Join("d", WALFile)
	size, _ := mem.Size(path)
	if err := mem.FailWritesAfter(path, size+10); err != nil {
		t.Fatal(err)
	}
	ffs.failTruncate = true
	if err := w.Append(record(2)); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn append err = %v", err)
	}
	mem.ClearWriteFault(path)
	ffs.failTruncate = false
	// The torn frame could not be cut away: the WAL must refuse further
	// appends rather than acknowledge records replay would discard.
	if err := w.Append(record(2)); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("append on broken wal err = %v, want ErrWALBroken", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("sync on broken wal err = %v, want ErrWALBroken", err)
	}
	w.Close()
	// Recovery still works: replay truncates the torn tail as usual.
	last, recs := replayAll(t, mem, "d", 0)
	if last != 1 || len(recs) != 1 {
		t.Fatalf("replay: last=%d n=%d, want 1/1", last, len(recs))
	}
}

func TestWALRotateReopenFailureBreaksLogWithoutPanic(t *testing.T) {
	mem := NewMemFS()
	ffs := &faultFS{FS: mem}
	w, err := OpenWAL(ffs, "d", Policy{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(record(1)); err != nil {
		t.Fatal(err)
	}
	ffs.failOpenAppend = true
	if err := w.Rotate(); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("rotate err = %v, want ErrWALBroken", err)
	}
	ffs.failOpenAppend = false
	// The old code left w.f nil here and the next Append panicked.
	if err := w.Append(record(2)); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("append after failed rotate err = %v, want ErrWALBroken", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALRotateTruncateFailureIsNonFatal(t *testing.T) {
	mem := NewMemFS()
	ffs := &faultFS{FS: mem}
	w, err := OpenWAL(ffs, "d", Policy{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 2; seq++ {
		if err := w.Append(record(seq)); err != nil {
			t.Fatal(err)
		}
	}
	ffs.failTruncate = true
	err = w.Rotate()
	ffs.failTruncate = false
	if !errors.Is(err, ErrInjected) || errors.Is(err, ErrWALBroken) {
		t.Fatalf("rotate err = %v, want non-fatal ErrInjected", err)
	}
	// The stale records remain but are covered by the checkpoint; the
	// log keeps accepting appends after them.
	if err := w.Append(record(3)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	last, recs := replayAll(t, mem, "d", 2)
	if last != 3 || len(recs) != 1 || recs[0].Seq != 3 {
		t.Fatalf("post-rotate-failure replay: last=%d recs=%v", last, recs)
	}
}

func TestWALMidLogCorruptionStopsReplay(t *testing.T) {
	fs := NewMemFS()
	w, err := OpenWAL(fs, "d", Policy{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{0}
	path := Join("d", WALFile)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := w.Append(record(seq)); err != nil {
			t.Fatal(err)
		}
		s, _ := fs.Size(path)
		sizes = append(sizes, s)
	}
	w.Close()
	// Flip a payload bit inside record 2.
	if err := fs.FlipBit(path, sizes[1]+frameHeader+4, 0); err != nil {
		t.Fatal(err)
	}
	last, recs := replayAll(t, fs, "d", 0)
	if last != 1 || len(recs) != 1 {
		t.Fatalf("replay past corruption: last=%d n=%d, want 1/1", last, len(recs))
	}
	if got, _ := fs.Size(path); got != sizes[1] {
		t.Fatalf("log not truncated at corruption: %d, want %d", got, sizes[1])
	}
}

func TestWALRotateEmptiesLog(t *testing.T) {
	fs := NewMemFS()
	w, err := OpenWAL(fs, "d", Policy{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 2; seq++ {
		if err := w.Append(record(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	// Appends continue on the rotated log.
	if err := w.Append(record(3)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	last, recs := replayAll(t, fs, "d", 2)
	if last != 3 || len(recs) != 1 {
		t.Fatalf("post-rotate replay: last=%d n=%d", last, len(recs))
	}
}

func TestWALSequenceBreakStopsReplay(t *testing.T) {
	fs := NewMemFS()
	w, err := OpenWAL(fs, "d", Policy{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	w.Append(record(1))
	w.Append(record(5)) // a gap the committer would never produce
	w.Close()
	last, recs := replayAll(t, fs, "d", 0)
	if last != 1 || len(recs) != 1 {
		t.Fatalf("replay across seq gap: last=%d n=%d", last, len(recs))
	}
}

func TestRecordEncodeDecodeEmpty(t *testing.T) {
	r := &Record{Seq: 12, K: 3}
	if !r.Empty() {
		t.Fatal("zero-delta record not Empty")
	}
	got, err := decodeRecord(r.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 12 || got.K != 3 || !got.Empty() {
		t.Fatalf("roundtrip = %+v", got)
	}
}

func TestMemFSDropSyncLosesData(t *testing.T) {
	fs := NewMemFS()
	fs.SetDropSync(true)
	w, err := OpenWAL(fs, "d", Policy{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(record(1)); err != nil {
		t.Fatal(err) // the lying disk reports success
	}
	fs.Crash()
	last, recs := replayAll(t, fs, "d", 0)
	if last != 0 || len(recs) != 0 {
		t.Fatalf("dropped-sync data survived crash: last=%d n=%d", last, len(recs))
	}
}
