// Package durable is the on-disk half of the serving plane: a
// versioned, checksummed snapshot of prepared solver state plus a
// write-ahead log of update batches, written through a small
// filesystem abstraction so the crash-recovery tests can inject torn
// writes, bit rot, and dropped fsyncs without touching a real disk.
//
// Durability contract (what recovery may assume):
//
//   - A snapshot becomes visible atomically: it is written to a temp
//     file, synced, and renamed over the final name, with the
//     directory synced after the rename. A reader therefore sees
//     either the old complete snapshot or the new complete one, never
//     a prefix.
//   - Every WAL record is independently checksummed and
//     length-prefixed. Replay stops at the first torn or corrupt
//     record; everything before it is trusted, everything after is
//     discarded (the file is truncated back to the valid prefix
//     before new appends).
//   - Corruption that checksums correctly is still caught
//     structurally: the snapshot loader re-validates every invariant
//     (CSR shape, permutation bijectivity, partition bounds) before
//     any kernel touches the arrays.
//
// All integers on disk are little-endian; checksums are CRC-32C
// (Castagnoli), the polynomial with hardware support on both amd64
// and arm64.
package durable

import (
	"errors"
	"io"
	"os"
	"path/filepath"
)

// ErrInjected is the error returned by fault-injection knobs on the
// in-memory filesystem (short writes, failed syncs). Production code
// never returns it; tests assert on it to distinguish an injected
// fault from a real bug.
var ErrInjected = errors.New("durable: injected fault")

// File is the slice of *os.File the snapshot writer and WAL need.
// WriteAt is used on files opened with Create (the snapshot writer
// patches the header after streaming the sections) and by the WAL,
// which appends at an explicitly tracked offset so a rollback
// truncate cannot desynchronize the handle's cursor from the file.
type File interface {
	io.Writer
	io.WriterAt
	io.ReaderAt
	io.Closer
	// Sync flushes the file's data to stable storage. After a
	// successful Sync, a crash loses nothing written before the call.
	Sync() error
}

// FS is the filesystem surface the durable plane writes through. The
// production implementation is OS; tests substitute a MemFS with
// fault knobs.
type FS interface {
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// OpenAppend opens path for appending, creating it if absent; the
	// write position starts at the current end.
	OpenAppend(path string) (File, error)
	// Rename atomically replaces newpath with oldpath. The rename is
	// durable only after SyncDir on the containing directory.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Size reports the current length of path (os.ErrNotExist if
	// absent).
	Size(path string) (int64, error)
	// Truncate cuts path to size bytes.
	Truncate(path string, size int64) error
	// SyncDir flushes the directory entry metadata (creations,
	// renames) of dir to stable storage.
	SyncDir(dir string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
}

// OS is the production FS backed by the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(path string) (File, error) { return os.Create(path) }
func (osFS) Open(path string) (File, error)   { return os.Open(path) }

func (osFS) OpenAppend(path string) (File, error) {
	// O_RDWR + explicit seek instead of O_APPEND: O_APPEND files
	// reject WriteAt on some platforms, and replay needs ReadAt on the
	// same handle.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }

func (osFS) Size(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Join builds an FS path. All FS implementations accept
// filepath-style paths.
func Join(elem ...string) string { return filepath.Join(elem...) }
