// In-memory filesystem with programmable faults — the substrate of
// the crash-recovery test matrix. It models the durability semantics
// the durable plane relies on, no more: data written but not synced
// is lost on Crash, namespace changes (creations, renames, removals)
// not followed by SyncDir are rolled back, and the fault knobs
// produce exactly the failure shapes real disks produce (short
// writes, silent sync loss, bit rot).
package durable

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// memFile is the inode: handles and the namespace both point at it,
// so a rename (or its crash rollback) never invalidates an open
// handle, matching POSIX.
type memFile struct {
	data   []byte
	synced int   // durable prefix: Crash truncates data to this
	fail   int64 // short-write offset; <0 disables
}

type nsOp struct {
	kind     int // 0 create, 1 rename, 2 remove
	name     string
	other    string   // rename source
	prev     *memFile // displaced inode (rename/create target, removed file)
	hadPrev  bool
	prevFile *memFile // rename: the moved inode (to put back under other)
}

// MemFS is a single-directory in-memory FS with crash simulation.
// Safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	// journal holds the inverse of every namespace change since the
	// last SyncDir; Crash applies it in reverse.
	journal []nsOp

	dropSync    bool // Sync succeeds but persists nothing
	failSync    bool // Sync returns ErrInjected
	failSyncDir bool // SyncDir returns ErrInjected
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

type memHandle struct {
	fs     *MemFS
	f      *memFile
	pos    int64
	rdonly bool
	closed bool
}

func (m *MemFS) lookup(path string) (*memFile, bool) {
	f, ok := m.files[path]
	return f, ok
}

func (m *MemFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prev, had := m.files[path]
	f := &memFile{fail: -1}
	m.files[path] = f
	m.journal = append(m.journal, nsOp{kind: 0, name: path, prev: prev, hadPrev: had})
	return &memHandle{fs: m, f: f}, nil
}

func (m *MemFS) Open(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.lookup(path)
	if !ok {
		return nil, &os.PathError{Op: "open", Path: path, Err: os.ErrNotExist}
	}
	return &memHandle{fs: m, f: f, rdonly: true}, nil
}

func (m *MemFS) OpenAppend(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.lookup(path)
	if !ok {
		f = &memFile{fail: -1}
		m.files[path] = f
		m.journal = append(m.journal, nsOp{kind: 0, name: path})
	}
	return &memHandle{fs: m, f: f, pos: int64(len(f.data))}, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.lookup(oldpath)
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	prev, had := m.files[newpath]
	m.files[newpath] = f
	delete(m.files, oldpath)
	m.journal = append(m.journal, nsOp{kind: 1, name: newpath, other: oldpath, prev: prev, hadPrev: had, prevFile: f})
	return nil
}

func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.lookup(path)
	if !ok {
		return &os.PathError{Op: "remove", Path: path, Err: os.ErrNotExist}
	}
	delete(m.files, path)
	m.journal = append(m.journal, nsOp{kind: 2, name: path, prev: f, hadPrev: true})
	return nil
}

func (m *MemFS) Size(path string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.lookup(path)
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: path, Err: os.ErrNotExist}
	}
	return int64(len(f.data)), nil
}

// Truncate is modeled as immediately durable (it is a metadata
// operation the plane only uses for WAL rotation, where losing it is
// harmless: stale records replay as already-applied and are skipped).
func (m *MemFS) Truncate(path string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.lookup(path)
	if !ok {
		return &os.PathError{Op: "truncate", Path: path, Err: os.ErrNotExist}
	}
	if size < 0 || size > int64(len(f.data)) {
		if size < 0 {
			return fmt.Errorf("durable: memfs truncate to negative size %d: %w", size, os.ErrInvalid)
		}
		return nil
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

func (m *MemFS) SyncDir(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failSyncDir {
		return fmt.Errorf("durable: memfs syncdir: %w", ErrInjected)
	}
	m.journal = nil
	return nil
}

func (m *MemFS) MkdirAll(string) error { return nil }

// --- fault knobs ---

// FailWritesAfter arranges for writes to path to be cut short once
// the file reaches off bytes: the portion below off lands, the rest
// is dropped and the write returns ErrInjected. This is the torn-
// write primitive.
func (m *MemFS) FailWritesAfter(path string, off int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.lookup(path)
	if !ok {
		// Pre-register: the file may not exist yet (e.g. the snapshot
		// temp file). Create an empty inode the next Create/OpenAppend
		// will replace — instead, remember by creating lazily is
		// complex; require existence for determinism.
		return &os.PathError{Op: "failwrites", Path: path, Err: os.ErrNotExist}
	}
	f.fail = off
	return nil
}

// ClearWriteFault removes a FailWritesAfter arrangement from path.
func (m *MemFS) ClearWriteFault(path string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.lookup(path); ok {
		f.fail = -1
	}
}

// FlipBit flips one bit of the stored byte at byteOff in path —
// bit-rot injection. It corrupts the durable image directly (synced
// watermark is untouched).
func (m *MemFS) FlipBit(path string, byteOff int64, bit uint) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.lookup(path)
	if !ok {
		return &os.PathError{Op: "flipbit", Path: path, Err: os.ErrNotExist}
	}
	if byteOff < 0 || byteOff >= int64(len(f.data)) {
		return fmt.Errorf("durable: memfs flipbit offset %d outside %d-byte file: %w", byteOff, len(f.data), os.ErrInvalid)
	}
	f.data[byteOff] ^= 1 << (bit % 8)
	return nil
}

// SetDropSync makes every Sync report success while persisting
// nothing — the lying-disk scenario. Data written under a dropped
// sync is lost at the next Crash.
func (m *MemFS) SetDropSync(v bool) {
	m.mu.Lock()
	m.dropSync = v
	m.mu.Unlock()
}

// SetFailSync makes every Sync return ErrInjected.
func (m *MemFS) SetFailSync(v bool) {
	m.mu.Lock()
	m.failSync = v
	m.mu.Unlock()
}

// SetFailSyncDir makes every SyncDir return ErrInjected.
func (m *MemFS) SetFailSyncDir(v bool) {
	m.mu.Lock()
	m.failSyncDir = v
	m.mu.Unlock()
}

// Crash simulates power loss: every file reverts to its synced
// prefix, and namespace changes since the last SyncDir are rolled
// back in reverse order. Open handles remain usable (tests discard
// them to simulate process death; nothing enforces that).
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := len(m.journal) - 1; i >= 0; i-- {
		op := m.journal[i]
		switch op.kind {
		case 0: // create: drop the entry, restore what it displaced
			if op.hadPrev {
				m.files[op.name] = op.prev
			} else {
				delete(m.files, op.name)
			}
		case 1: // rename: move the inode back, restore the old target
			m.files[op.other] = op.prevFile
			if op.hadPrev {
				m.files[op.name] = op.prev
			} else {
				delete(m.files, op.name)
			}
		case 2: // remove: resurrect
			m.files[op.name] = op.prev
		}
	}
	m.journal = nil
	for _, f := range m.files {
		if f.synced < len(f.data) {
			f.data = f.data[:f.synced]
		}
	}
}

// --- handle ---

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	n, err := h.writeAtLocked(p, h.pos)
	h.pos += int64(n)
	return n, err
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return h.writeAtLocked(p, off)
}

func (h *memHandle) writeAtLocked(p []byte, off int64) (int, error) {
	if h.closed {
		return 0, os.ErrClosed
	}
	if h.rdonly {
		return 0, fmt.Errorf("durable: memfs write on read-only handle: %w", os.ErrPermission)
	}
	f := h.f
	end := off + int64(len(p))
	if f.fail >= 0 && end > f.fail {
		// Short write: land what fits below the fault line.
		keep := f.fail - off
		if keep < 0 {
			keep = 0
		}
		n := h.writeLocked(p[:keep], off)
		return n, fmt.Errorf("durable: memfs short write at %d: %w", f.fail, ErrInjected)
	}
	return h.writeLocked(p, off), nil
}

func (h *memHandle) writeLocked(p []byte, off int64) int {
	f := h.f
	end := off + int64(len(p))
	if int64(len(f.data)) < end {
		grown := make([]byte, end)
		copy(grown, f.data)
		f.data = grown
	}
	copy(f.data[off:end], p)
	return len(p)
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	f := h.f
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	if h.fs.failSync {
		return fmt.Errorf("durable: memfs sync: %w", ErrInjected)
	}
	if h.fs.dropSync {
		return nil
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
