//go:build !unix

package durable

import "errors"

// Mmap is unavailable off unix; the loader falls back to reading the
// snapshot into RAM, which is slower but byte-for-byte equivalent.
func (osFS) Mmap(string) ([]byte, func(), error) {
	return nil, nil, errors.New("durable: mmap unsupported on this platform")
}
