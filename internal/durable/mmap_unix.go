//go:build unix

package durable

import (
	"os"
	"syscall"
)

// Mmap maps path read-only. The returned release unmaps; the slice
// must not be written or used after release. Implementing this method
// lets the snapshot loader alias the big CSR sections straight out of
// the page cache instead of copying them — the "cold start = map +
// verify" half of the durability story.
func (osFS) Mmap(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { syscall.Munmap(data) }, nil
}
