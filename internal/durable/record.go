// WAL record codec. One record is one committed Update batch, framed
// as
//
//	u32 payload length | u32 CRC-32C(payload) | payload
//
// with payload
//
//	u64 seq | u32 k | u32 nAdd | u32 nDel | u32 nRow
//	| nAdd x {u32 s, u32 t, f64 w}
//	| nDel x {u32 s, u32 t}
//	| nRow x {u32 node, k x f64}
//
// Sequence numbers are assigned by the committer, strictly
// increasing, starting just above the snapshot's WALSeq; replay uses
// them to skip records a later checkpoint already folded in.
package durable

import (
	"fmt"
	"math"
)

// Edge is one weighted edge addition in a record.
type Edge struct {
	S, T uint32
	W    float64
}

// Pair is one edge-removal endpoint pair in a record.
type Pair struct {
	S, T uint32
}

// BeliefRow is one explicit-belief row assignment in a record.
type BeliefRow struct {
	Node uint32
	Row  []float64 // length k
}

// Record is the durable image of one Update batch.
type Record struct {
	Seq  uint64
	K    int
	Adds []Edge
	Dels []Pair
	Rows []BeliefRow
}

//lsbp:format
const recHeader = 8 + 4 + 4 + 4 + 4

//lsbp:hotpath
func (r *Record) encodedLen() int {
	return recHeader + len(r.Adds)*16 + len(r.Dels)*8 + len(r.Rows)*(4+8*r.K)
}

func (r *Record) encode() []byte {
	b := make([]byte, r.encodedLen())
	r.encodeInto(b)
	return b
}

// encodeInto serializes the record into b, which must be exactly
// encodedLen() bytes. Split from encode so the WAL append path can
// reuse a pooled buffer instead of allocating per record.
//
//lsbp:hotpath
func (r *Record) encodeInto(b []byte) {
	le.PutUint64(b, r.Seq)
	le.PutUint32(b[8:], uint32(r.K))
	le.PutUint32(b[12:], uint32(len(r.Adds)))
	le.PutUint32(b[16:], uint32(len(r.Dels)))
	le.PutUint32(b[20:], uint32(len(r.Rows)))
	p := recHeader
	for _, e := range r.Adds {
		le.PutUint32(b[p:], e.S)
		le.PutUint32(b[p+4:], e.T)
		le.PutUint64(b[p+8:], math.Float64bits(e.W))
		p += 16
	}
	for _, d := range r.Dels {
		le.PutUint32(b[p:], d.S)
		le.PutUint32(b[p+4:], d.T)
		p += 8
	}
	for _, row := range r.Rows {
		le.PutUint32(b[p:], row.Node)
		p += 4
		for _, v := range row.Row {
			le.PutUint64(b[p:], math.Float64bits(v))
			p += 8
		}
	}
}

func decodeRecord(b []byte) (*Record, error) {
	if len(b) < recHeader {
		return nil, corrupt("wal record payload %d bytes, want >= %d", len(b), recHeader)
	}
	r := &Record{
		Seq: le.Uint64(b),
		K:   int(le.Uint32(b[8:])),
	}
	nAdd := int(le.Uint32(b[12:]))
	nDel := int(le.Uint32(b[16:]))
	nRow := int(le.Uint32(b[20:]))
	if r.K < 0 || r.K > maxK {
		return nil, corrupt("wal record claims k=%d", r.K)
	}
	want := recHeader + nAdd*16 + nDel*8 + nRow*(4+8*r.K)
	if nAdd < 0 || nDel < 0 || nRow < 0 || len(b) != want {
		return nil, corrupt("wal record payload %d bytes, counts require %d", len(b), want)
	}
	p := recHeader
	if nAdd > 0 {
		r.Adds = make([]Edge, nAdd)
		for i := range r.Adds {
			r.Adds[i] = Edge{
				S: le.Uint32(b[p:]),
				T: le.Uint32(b[p+4:]),
				W: math.Float64frombits(le.Uint64(b[p+8:])),
			}
			p += 16
		}
	}
	if nDel > 0 {
		r.Dels = make([]Pair, nDel)
		for i := range r.Dels {
			r.Dels[i] = Pair{S: le.Uint32(b[p:]), T: le.Uint32(b[p+4:])}
			p += 8
		}
	}
	if nRow > 0 {
		r.Rows = make([]BeliefRow, nRow)
		for i := range r.Rows {
			row := BeliefRow{Node: le.Uint32(b[p:]), Row: make([]float64, r.K)}
			p += 4
			for j := range row.Row {
				row.Row[j] = math.Float64frombits(le.Uint64(b[p:]))
				p += 8
			}
			r.Rows[i] = row
		}
	}
	return r, nil
}

// Empty reports whether the record carries no delta (a bare re-solve
// Update; logged so sequence numbers track the update counter
// exactly).
func (r *Record) Empty() bool {
	return len(r.Adds) == 0 && len(r.Dels) == 0 && len(r.Rows) == 0
}

func (r *Record) String() string {
	return fmt.Sprintf("wal record seq=%d +%d -%d rows=%d", r.Seq, len(r.Adds), len(r.Dels), len(r.Rows))
}
