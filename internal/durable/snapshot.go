// The versioned snapshot format. One file, one header page, then
// page-aligned sections, each independently CRC-32C checksummed:
//
//	offset 0:  magic "LSBPSNP1" (8 bytes)
//	        8:  format version  u32
//	       12:  method          u32  (core.Method value)
//	       16:  flags           u32  (see flag* constants)
//	       20:  ordering        u32  (order.Strategy code)
//	       24:  n               u64
//	       32:  k               u32
//	       36:  section count   u32
//	       40:  epsilon_H       f64
//	       48:  wal sequence    u64  (updates already folded in)
//	       56:  bandwidth before u64
//	       64:  bandwidth after  u64
//	       72:  section table: count x 32 bytes
//	            {kind u32, pad u32, offset u64, length u64, crc u32, pad u32}
//	      ...:  header CRC-32C  u32  (over everything above it)
//
// Sections start at 4096-byte-aligned offsets so an mmap'd load can
// alias them at natural alignment. The header is patched in last
// (WriteAt offset 0) after every section byte is on its way to disk,
// then the file is synced, renamed over the final name, and the
// directory synced — the standard atomic-publish dance.
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/errs"
)

// File names inside a durability directory.
//
//lsbp:format
const (
	SnapshotFile = "snapshot.lsbp"
	snapshotTmp  = "snapshot.lsbp.tmp"
	WALFile      = "updates.wal"
)

// FormatVersion is the current snapshot format version. Readers
// reject other versions with an actionable error rather than
// misparsing.
const FormatVersion = 1

// formatLock pins the //lsbp:format declarations of this package to
// FormatVersion: the durable-format analyzer recomputes the hash over
// those declarations and fails the build if they changed without a
// version bump and a re-lock. Run make lint for the expected value.
const formatLock = "v1:dfaaa120c3d55d35"

//lsbp:format
const (
	snapMagic  = "LSBPSNP1"
	pageSize   = 4096
	headerBase = 72 // fixed fields before the section table
	sectEntry  = 32
	// maxK bounds the class count a header may claim; anything larger
	// is corruption (the paper's workloads top out in the tens).
	maxK = 1 << 16
)

// Flags (header offset 16).
//
//lsbp:format
const (
	flagWideColIdx = 1 << 0 // section kinds: colIdx stored as i64, not i32
	flagHasLast    = 1 << 1 // warm-start fixpoint section present
	flagGraphOrder = 1 << 2 // CSR is caller-order adjacency (BP/SBP), not layout-order
	flagHasPerm    = 1 << 3
	flagHasParts   = 1 << 4
)

// Section kinds.
//
//lsbp:format
const (
	sectPerm       = 1 // n x i64 layout permutation
	sectPartStarts = 2 // (P+1) x i64 partition boundaries
	sectRowPtr     = 3 // (n+1) x i64 CSR row pointers
	sectColIdx     = 4 // nnz x i32 (or i64 when flagWideColIdx)
	sectVals       = 5 // nnz x f64
	sectHO         = 6 // k x k f64 coupling matrix (row-major)
	sectExplicit   = 7 // n x k f64 explicit-belief residuals (row-major)
	sectLast       = 8 // n x k f64 last fixpoint (row-major)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshot is the in-memory image of a snapshot file: everything the
// core package needs to reconstitute a prepared solver without
// re-running the layout optimizer or the partitioner. Loaded slices
// for the CSR triplet may alias a read-only mmap — treat them as
// immutable; the mutable matrices (Explicit, Last, HO) are always
// private copies.
type Snapshot struct {
	Method     uint32
	Ordering   uint32 // order.Strategy code
	N, K       int
	EpsH       float64
	WALSeq     uint64 // updates already reflected in this snapshot
	BandBefore int
	BandAfter  int
	// GraphOrder marks the CSR as the caller-order adjacency (message-
	// passing methods) rather than the layout-ordered kernel matrix.
	GraphOrder bool

	Perm       []int // nil when no reordering was applied
	PartStarts []int // nil for non-partitioned methods
	RowPtr     []int
	ColIdx32   []int32 // compact index; nil when ColIdx is set
	ColIdx     []int   // wide index; nil when ColIdx32 is set
	Vals       []float64
	HO         []float64 // k*k row-major
	Explicit   []float64 // n*k row-major
	Last       []float64 // n*k row-major, nil if absent

	release func()
}

// Close releases the backing mapping, if any. The snapshot's aliased
// slices must not be used afterwards.
func (s *Snapshot) Close() {
	if s.release != nil {
		s.release()
		s.release = nil
	}
}

func corrupt(format string, args ...any) error {
	return fmt.Errorf("durable: "+format+": %w", append(args, errs.ErrCorruptState)...)
}

// HasSnapshot reports whether dir holds a snapshot file (readable or
// not — existence only).
func HasSnapshot(fsys FS, dir string) bool {
	_, err := fsys.Size(Join(dir, SnapshotFile))
	return err == nil
}

type section struct {
	kind uint32
	data []byte
}

// sumWriter is the checksumming section writer: it folds every byte it
// forwards to the snapshot file into a running CRC-32C, so the section
// table records checksums of the exact bytes sent to the file — a
// payload write that bypasses it cannot get a checksum at all.
type sumWriter struct {
	f   File
	crc uint32
}

// Write forwards to the underlying file, checksumming what was
// actually accepted.
//
//lsbp:rawio
func (sw *sumWriter) Write(p []byte) (int, error) {
	n, err := sw.f.Write(p)
	sw.crc = crc32.Update(sw.crc, castagnoli, p[:n])
	return n, err
}

// reset starts a fresh checksum domain (one per section).
func (sw *sumWriter) reset() { sw.crc = 0 }

// sum returns the CRC-32C of the bytes written since the last reset.
func (sw *sumWriter) sum() uint32 { return sw.crc }

func alignPage(off int64) int64 { return (off + pageSize - 1) &^ (pageSize - 1) }

// WriteSnapshot publishes s atomically into dir: temp file, streamed
// checksummed sections, header patch, fsync, rename, directory sync.
// On any error the previous snapshot (if one exists) is untouched.
func WriteSnapshot(fsys FS, dir string, s *Snapshot) (err error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return fmt.Errorf("durable: snapshot dir: %w", err)
	}
	secs := buildSections(s)
	flags := uint32(0)
	if s.ColIdx != nil {
		flags |= flagWideColIdx
	}
	if s.Last != nil {
		flags |= flagHasLast
	}
	if s.GraphOrder {
		flags |= flagGraphOrder
	}
	if s.Perm != nil {
		flags |= flagHasPerm
	}
	if s.PartStarts != nil {
		flags |= flagHasParts
	}

	headerLen := headerBase + sectEntry*len(secs) + 4
	header := make([]byte, headerLen)
	copy(header, snapMagic)
	le.PutUint32(header[8:], FormatVersion)
	le.PutUint32(header[12:], s.Method)
	le.PutUint32(header[16:], flags)
	le.PutUint32(header[20:], s.Ordering)
	le.PutUint64(header[24:], uint64(s.N))
	le.PutUint32(header[32:], uint32(s.K))
	le.PutUint32(header[36:], uint32(len(secs)))
	le.PutUint64(header[40:], math.Float64bits(s.EpsH))
	le.PutUint64(header[48:], s.WALSeq)
	le.PutUint64(header[56:], uint64(s.BandBefore))
	le.PutUint64(header[64:], uint64(s.BandAfter))

	tmp := Join(dir, snapshotTmp)
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: snapshot create: %w", err)
	}
	defer func() {
		if f != nil {
			f.Close()
			fsys.Remove(tmp)
		}
	}()

	// Stream the sections at aligned offsets through the checksumming
	// writer, recording the table as we go; the header stays zeroed on
	// disk until everything else is written, so a crash mid-write can
	// never look like a snapshot.
	sw := &sumWriter{f: f}
	off := alignPage(int64(headerLen))
	if err := writeZeros(sw, off); err != nil {
		return fmt.Errorf("durable: snapshot pad: %w", err)
	}
	for i, sec := range secs {
		entry := header[headerBase+sectEntry*i:]
		le.PutUint32(entry, sec.kind)
		le.PutUint64(entry[8:], uint64(off))
		le.PutUint64(entry[16:], uint64(len(sec.data)))
		sw.reset()
		if _, err := sw.Write(sec.data); err != nil {
			return fmt.Errorf("durable: snapshot section %d: %w", sec.kind, err)
		}
		le.PutUint32(entry[24:], sw.sum())
		off += int64(len(sec.data))
		next := alignPage(off)
		if err := writeZeros(sw, next-off); err != nil {
			return fmt.Errorf("durable: snapshot pad: %w", err)
		}
		off = next
	}
	le.PutUint32(header[headerLen-4:], crc32.Checksum(header[:headerLen-4], castagnoli))
	if err := patchHeader(f, header); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("durable: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		f = nil
		fsys.Remove(tmp)
		return fmt.Errorf("durable: snapshot close: %w", err)
	}
	f = nil
	if err := fsys.Rename(tmp, Join(dir, SnapshotFile)); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: snapshot publish: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("durable: snapshot dir sync: %w", err)
	}
	return nil
}

func buildSections(s *Snapshot) []section {
	var secs []section
	if s.Perm != nil {
		secs = append(secs, section{sectPerm, intsBytes(s.Perm)})
	}
	if s.PartStarts != nil {
		secs = append(secs, section{sectPartStarts, intsBytes(s.PartStarts)})
	}
	secs = append(secs, section{sectRowPtr, intsBytes(s.RowPtr)})
	if s.ColIdx != nil {
		secs = append(secs, section{sectColIdx, intsBytes(s.ColIdx)})
	} else {
		secs = append(secs, section{sectColIdx, int32sBytes(s.ColIdx32)})
	}
	secs = append(secs,
		section{sectVals, floatsBytes(s.Vals)},
		section{sectHO, floatsBytes(s.HO)},
		section{sectExplicit, floatsBytes(s.Explicit)})
	if s.Last != nil {
		secs = append(secs, section{sectLast, floatsBytes(s.Last)})
	}
	return secs
}

// patchHeader publishes the completed header (its trailing CRC-32C
// already stamped) under the section bytes at offset 0 — the last
// write before the sync/rename publish. It is the one deliberate
// bypass of the section writer: the header checksums itself.
//
//lsbp:rawio
func patchHeader(f File, header []byte) error {
	if _, err := f.WriteAt(header, 0); err != nil {
		return fmt.Errorf("durable: snapshot header: %w", err)
	}
	return nil
}

// writeZeros pads with zero bytes through the section writer; padding
// precedes each reset, so it never lands in a section's checksum.
func writeZeros(w *sumWriter, n int64) error {
	if n <= 0 {
		return nil
	}
	var pad [pageSize]byte
	for n > 0 {
		c := n
		if c > pageSize {
			c = pageSize
		}
		if _, err := w.Write(pad[:c]); err != nil {
			return err
		}
		n -= c
	}
	return nil
}

// LoadSnapshot maps (or reads) dir's snapshot and verifies every
// checksum plus the structural size invariants. Checksum and
// structure failures wrap errs.ErrCorruptState; a missing file
// surfaces os.ErrNotExist. The caller owns the returned Snapshot's
// Close.
func LoadSnapshot(fsys FS, dir string) (*Snapshot, error) {
	path := Join(dir, SnapshotFile)
	data, release, err := slurp(fsys, path)
	if err != nil {
		return nil, err
	}
	s, err := parseSnapshot(data)
	if err != nil {
		release()
		return nil, err
	}
	s.release = release
	return s, nil
}

// slurp returns the full file image: an mmap when the FS supports it
// (the OS FS on unix), a read into RAM otherwise.
func slurp(fsys FS, path string) (data []byte, release func(), err error) {
	if m, ok := fsys.(interface {
		Mmap(path string) ([]byte, func(), error)
	}); ok {
		if data, release, err = m.Mmap(path); err == nil {
			return data, release, nil
		}
		// Fall through to the portable read on any mmap failure.
	}
	size, err := fsys.Size(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := fsys.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	data = make([]byte, size)
	if _, err := readFullAt(f, data, 0); err != nil {
		return nil, nil, fmt.Errorf("durable: snapshot read: %w", err)
	}
	return data, func() {}, nil
}

func readFullAt(r io.ReaderAt, p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		n, err := r.ReadAt(p[total:], off+int64(total))
		total += n
		if err != nil {
			if errors.Is(err, io.EOF) && total == len(p) {
				return total, nil
			}
			return total, err
		}
	}
	return total, nil
}

func parseSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < headerBase+4 {
		return nil, corrupt("snapshot file truncated at %d bytes", len(data))
	}
	if string(data[:8]) != snapMagic {
		return nil, corrupt("snapshot magic mismatch")
	}
	if v := le.Uint32(data[8:]); v != FormatVersion {
		return nil, fmt.Errorf("durable: snapshot format version %d, this build reads %d: %w", v, FormatVersion, errs.ErrCorruptState)
	}
	count := int(le.Uint32(data[36:]))
	headerLen := headerBase + sectEntry*count + 4
	if count < 0 || count > 16 || len(data) < headerLen {
		return nil, corrupt("snapshot section count %d invalid for %d-byte file", count, len(data))
	}
	if crc32.Checksum(data[:headerLen-4], castagnoli) != le.Uint32(data[headerLen-4:]) {
		return nil, corrupt("snapshot header checksum mismatch")
	}

	s := &Snapshot{
		Method:     le.Uint32(data[12:]),
		Ordering:   le.Uint32(data[20:]),
		N:          int(le.Uint64(data[24:])),
		K:          int(le.Uint32(data[32:])),
		EpsH:       math.Float64frombits(le.Uint64(data[40:])),
		WALSeq:     le.Uint64(data[48:]),
		BandBefore: int(le.Uint64(data[56:])),
		BandAfter:  int(le.Uint64(data[64:])),
	}
	flags := le.Uint32(data[16:])
	s.GraphOrder = flags&flagGraphOrder != 0
	if s.N < 0 || s.K <= 0 || s.K > maxK {
		return nil, corrupt("snapshot claims n=%d k=%d", s.N, s.K)
	}

	sections := make(map[uint32][]byte, count)
	for i := 0; i < count; i++ {
		entry := data[headerBase+sectEntry*i:]
		kind := le.Uint32(entry)
		off := le.Uint64(entry[8:])
		length := le.Uint64(entry[16:])
		crc := le.Uint32(entry[24:])
		if off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, corrupt("section %d spans [%d, +%d) outside %d-byte file", kind, off, length, len(data))
		}
		body := data[off : off+length]
		if crc32.Checksum(body, castagnoli) != crc {
			return nil, corrupt("section %d checksum mismatch", kind)
		}
		if _, dup := sections[kind]; dup {
			return nil, corrupt("duplicate section %d", kind)
		}
		sections[kind] = body
	}

	// Materialize with size validation. The big read-only arrays alias
	// the image; the mutable ones are copied out of it.
	want := func(kind uint32, name string, bytes int) ([]byte, error) {
		b, ok := sections[kind]
		if !ok {
			return nil, corrupt("snapshot missing %s section", name)
		}
		if len(b) != bytes {
			return nil, corrupt("%s section is %d bytes, want %d", name, len(b), bytes)
		}
		return b, nil
	}
	var b []byte
	var err error
	if flags&flagHasPerm != 0 {
		if b, err = want(sectPerm, "permutation", s.N*8); err != nil {
			return nil, err
		}
		s.Perm = bytesInts(b, false)
	}
	if flags&flagHasParts != 0 {
		b, ok := sections[sectPartStarts]
		if !ok || len(b)%8 != 0 || len(b) < 16 {
			return nil, corrupt("partition section malformed")
		}
		s.PartStarts = bytesInts(b, false)
	}
	if b, err = want(sectRowPtr, "rowPtr", (s.N+1)*8); err != nil {
		return nil, err
	}
	s.RowPtr = bytesInts(b, true)
	nnz := s.RowPtr[s.N]
	if nnz < 0 {
		return nil, corrupt("rowPtr tail %d negative", nnz)
	}
	if flags&flagWideColIdx != 0 {
		if b, err = want(sectColIdx, "colIdx", nnz*8); err != nil {
			return nil, err
		}
		s.ColIdx = bytesInts(b, true)
	} else {
		if b, err = want(sectColIdx, "colIdx", nnz*4); err != nil {
			return nil, err
		}
		s.ColIdx32 = bytesInt32s(b, true)
	}
	if b, err = want(sectVals, "values", nnz*8); err != nil {
		return nil, err
	}
	s.Vals = bytesFloats(b, true)
	if b, err = want(sectHO, "coupling", s.K*s.K*8); err != nil {
		return nil, err
	}
	s.HO = bytesFloats(b, false)
	if b, err = want(sectExplicit, "explicit beliefs", s.N*s.K*8); err != nil {
		return nil, err
	}
	s.Explicit = bytesFloats(b, false)
	if flags&flagHasLast != 0 {
		if b, err = want(sectLast, "last fixpoint", s.N*s.K*8); err != nil {
			return nil, err
		}
		s.Last = bytesFloats(b, false)
	}
	return s, nil
}
