// The write-ahead log. Appends happen BEFORE the in-memory commit
// (epoch swap): a crash after the append replays the batch, a crash
// before it loses the batch entirely — never a half-applied state.
// Replay trusts the longest prefix of intact records and truncates
// the torn tail; rotation empties the log only after a fresh
// checkpoint snapshot is durably published.
package durable

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// SyncPolicy selects when Append flushes to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: no committed update is
	// ever lost, at one disk flush per batch.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs every Policy.Interval appends: a crash loses
	// at most Interval-1 of the most recent batches.
	SyncInterval
	// SyncNever leaves flushing to the OS: fastest, loses an unbounded
	// recent suffix on power failure (process crashes still keep
	// everything the page cache accepted).
	SyncNever
)

// Policy is the durability policy of a WAL.
type Policy struct {
	Sync SyncPolicy
	// Interval is the append count between fsyncs under SyncInterval;
	// <= 1 degenerates to SyncAlways.
	Interval int
}

// frame header: u32 payload length, u32 CRC-32C.
//
//lsbp:format
const frameHeader = 8

// maxRecordLen bounds a single record frame; a length prefix above it
// is treated as corruption rather than an allocation request.
//
//lsbp:format
const maxRecordLen = 1 << 30

// ErrRecordTooLarge is returned by Append for a batch whose encoding
// exceeds maxRecordLen. Such a record must be refused up front: replay
// would reject its length prefix as corruption, so acknowledging it
// would acknowledge something unrecoverable. Split the batch instead.
var ErrRecordTooLarge = errors.New("durable: wal record exceeds max frame size")

// ErrWALBroken marks a WAL whose on-disk tail could not be restored to
// a record boundary (a rollback truncate or a rotation step failed).
// Every subsequent Append or Sync refuses with this error: appending
// past an unaccounted-for tail could place acknowledged records after
// a torn frame, where replay would silently drop them.
var ErrWALBroken = errors.New("durable: wal broken")

// WAL is an open write-ahead log positioned at its end. Not
// concurrency-safe: the dynamic plane serializes updates under its
// own lock.
type WAL struct {
	fs      FS
	dir     string
	f       File
	pol     Policy
	pending int    // appends since the last flush
	off     int64  // logical end: every acknowledged frame lies below it
	err     error  // sticky ErrWALBroken state; nil while healthy
	buf     []byte // reusable frame buffer: steady-state appends allocate nothing
}

// OpenWAL opens (creating if needed) dir's log for appending. The
// caller replays first — ReplayWAL also truncates any torn tail — so
// the append position is always a record boundary.
func OpenWAL(fsys FS, dir string, pol Policy) (*WAL, error) {
	path := Join(dir, WALFile)
	_, statErr := fsys.Size(path)
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, fmt.Errorf("durable: wal open: %w", err)
	}
	if errors.Is(statErr, os.ErrNotExist) {
		// Freshly created: make the directory entry durable now, so a
		// crash cannot lose the whole log file while keeping the
		// snapshot that expects it.
		if err := fsys.SyncDir(dir); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: wal dir sync: %w", err)
		}
	}
	size, err := fsys.Size(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("durable: wal stat: %w", err)
	}
	return &WAL{fs: fsys, dir: dir, f: f, pol: pol, off: size}, nil
}

// Append writes one record frame and applies the sync policy. On
// error the record must be treated as not logged (the in-memory
// commit must not proceed), and the file is truncated back to the
// pre-append boundary so later acknowledged records never land beyond
// a torn or unacknowledged frame; if even that rollback fails, the
// WAL enters a broken state and refuses further appends.
//
// Append writes the frame with WriteAt against its tracked offset; the
// frame carries its own CRC-32C, which is the //lsbp:rawio license.
//
//lsbp:hotpath
//lsbp:rawio
func (w *WAL) Append(r *Record) error {
	if w.err != nil {
		return w.err
	}
	n := r.encodedLen()
	if n > maxRecordLen {
		return fmt.Errorf("durable: wal append: %d-byte record over the %d-byte frame limit (split the batch): %w",
			n, maxRecordLen, ErrRecordTooLarge)
	}
	// Encode into the WAL's reusable buffer: after warm-up, appends
	// perform zero allocations.
	if cap(w.buf) < frameHeader+n {
		w.growBuf(frameHeader + n)
	}
	frame := w.buf[:frameHeader+n]
	payload := frame[frameHeader:]
	r.encodeInto(payload)
	le.PutUint32(frame, uint32(n))
	le.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	// WriteAt against the tracked offset, not Write: after a rollback
	// the handle's own cursor would be past the truncation point, and
	// appending there would punch a zero-filled hole into the log.
	start := w.off
	if _, err := w.f.WriteAt(frame, start); err != nil {
		w.rollback(start)
		return fmt.Errorf("durable: wal append: %w", err)
	}
	w.off += int64(len(frame))
	w.pending++
	switch w.pol.Sync {
	case SyncAlways:
		if err := w.Sync(); err != nil {
			w.rollback(start)
			return err
		}
	case SyncInterval:
		if w.pol.Interval <= 1 || w.pending >= w.pol.Interval {
			if err := w.Sync(); err != nil {
				w.rollback(start)
				return err
			}
		}
	}
	return nil
}

// Broken reports the WAL's sticky failure state: non-nil (wrapping
// ErrWALBroken) once a failed rollback or rotation reopen has made
// further appends unsafe. Callers use it to flip read-only degraded
// mode the moment the log dies, rather than on the next append.
func (w *WAL) Broken() error { return w.err }

// rollback restores the log to the record boundary at off after a
// failed append: the partial (or complete but unacknowledged) frame
// is cut away so the on-disk log holds exactly the acknowledged
// records. A failed truncate leaves the tail state unknown — the WAL
// goes broken rather than risk appending after a bad frame.
func (w *WAL) rollback(off int64) {
	if terr := w.fs.Truncate(Join(w.dir, WALFile), off); terr != nil {
		w.err = fmt.Errorf("%w: truncate to %d after failed append: %v", ErrWALBroken, off, terr)
		return
	}
	if w.off > off && w.pending > 0 {
		w.pending-- // the rolled-back frame no longer awaits a flush
	}
	w.off = off
}

// growBuf replaces the frame buffer with one of at least n bytes. Kept
// out of Append so the allocation lives on an annotated init path —
// it runs only while the buffer warms up to the workload's batch size.
//
//lsbp:hotpath-init
func (w *WAL) growBuf(n int) {
	w.buf = make([]byte, n)
}

// Sync flushes appended records to stable storage.
//
//lsbp:hotpath
func (w *WAL) Sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: wal sync: %w", err)
	}
	w.pending = 0
	return nil
}

// Rotate empties the log. Call only after a checkpoint snapshot
// covering every logged record is durably published. A failed
// truncate is non-fatal: the old records remain, replay skips them
// (their seq is covered by the snapshot), and appending after them is
// still correct. A failed close or reopen leaves no usable handle, so
// the WAL goes broken instead of letting a later Append crash.
func (w *WAL) Rotate() error {
	if w.err != nil {
		return w.err
	}
	path := Join(w.dir, WALFile)
	if err := w.f.Close(); err != nil {
		w.f = nil
		w.err = fmt.Errorf("%w: rotate close: %v", ErrWALBroken, err)
		return w.err
	}
	w.f = nil
	terr := w.fs.Truncate(path, 0)
	f, err := w.fs.OpenAppend(path)
	if err != nil {
		w.err = fmt.Errorf("%w: rotate reopen: %v", ErrWALBroken, err)
		return w.err
	}
	size, err := w.fs.Size(path)
	if err != nil {
		f.Close()
		w.err = fmt.Errorf("%w: rotate stat: %v", ErrWALBroken, err)
		return w.err
	}
	w.f = f
	w.off = size
	w.pending = 0
	if terr != nil {
		return fmt.Errorf("durable: wal rotate truncate: %w", terr)
	}
	return w.Sync()
}

// Close flushes (best effort under SyncNever is still a flush — the
// final state should survive an orderly shutdown) and closes the log.
func (w *WAL) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// ReplayWAL scans dir's log, invoking fn for every intact record with
// seq > after, in order. It stops at the first torn or corrupt frame,
// truncates the file back to the last intact boundary, and returns
// the highest sequence seen (or `after` when none). A missing log is
// an empty log. Errors from fn abort the replay unchanged.
func ReplayWAL(fsys FS, dir string, after uint64, fn func(*Record) error) (lastSeq uint64, replayed int, err error) {
	path := Join(dir, WALFile)
	size, err := fsys.Size(path)
	if errors.Is(err, os.ErrNotExist) {
		return after, 0, nil
	}
	if err != nil {
		return after, 0, fmt.Errorf("durable: wal stat: %w", err)
	}
	f, err := fsys.Open(path)
	if err != nil {
		return after, 0, fmt.Errorf("durable: wal open: %w", err)
	}
	data := make([]byte, size)
	if _, err := readFullAt(f, data, 0); err != nil {
		f.Close()
		return after, 0, fmt.Errorf("durable: wal read: %w", err)
	}
	f.Close()

	lastSeq = after
	valid := int64(0)
	off := 0
	for off+frameHeader <= len(data) {
		payloadLen := int(le.Uint32(data[off:]))
		if payloadLen < recHeader || payloadLen > maxRecordLen || off+frameHeader+payloadLen > len(data) {
			break // torn or corrupt tail
		}
		payload := data[off+frameHeader : off+frameHeader+payloadLen]
		if crc32.Checksum(payload, castagnoli) != le.Uint32(data[off+4:]) {
			break
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			break
		}
		if rec.Seq <= after {
			// Pre-checkpoint record: already folded into the snapshot.
			off += frameHeader + payloadLen
			valid = int64(off)
			continue
		}
		if rec.Seq != lastSeq+1 {
			// A sequence break is corruption the checksum cannot see
			// (e.g. a restored stale file); trust only the prefix.
			break
		}
		if err := fn(rec); err != nil {
			return lastSeq, replayed, err
		}
		lastSeq = rec.Seq
		replayed++
		off += frameHeader + payloadLen
		valid = int64(off)
	}
	if valid < size {
		if terr := fsys.Truncate(path, valid); terr != nil {
			return lastSeq, replayed, fmt.Errorf("durable: wal truncate torn tail: %w", terr)
		}
	}
	return lastSeq, replayed, nil
}
