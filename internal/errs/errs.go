// Package errs defines the sentinel errors of the public solver API.
// It is a leaf package so that every layer — the kernel-facing method
// implementations (bp, linbp, sbp, fabp), the coupling validators, and
// the core dispatch — can wrap the same sentinels with fmt.Errorf("%w")
// and callers can classify failures uniformly with errors.Is/As instead
// of matching message strings.
package errs

import "errors"

var (
	// ErrNotConverged reports that an iterative solve exhausted its
	// iteration budget before reaching the convergence tolerance. The
	// partial result (the last iterate) is still returned alongside it.
	ErrNotConverged = errors.New("solver did not converge")

	// ErrDimensionMismatch reports inconsistent shapes between the
	// graph, the explicit beliefs, the coupling matrix, or a
	// caller-provided destination buffer.
	ErrDimensionMismatch = errors.New("dimension mismatch")

	// ErrInvalidCoupling reports a coupling matrix that violates the
	// paper's requirements (square, symmetric, doubly stochastic /
	// centered residual, entries in range).
	ErrInvalidCoupling = errors.New("invalid coupling matrix")

	// ErrClosed reports use of a solver after Close.
	ErrClosed = errors.New("solver is closed")

	// ErrNonFinite reports a NaN or infinite value where the math
	// requires finite input or produced finite output: an edge weight,
	// an explicit belief entry, or an iterative update whose delta
	// overflowed. Solvers surface it instead of spinning to MaxIter on
	// a poisoned fixpoint.
	ErrNonFinite = errors.New("non-finite value")

	// ErrCorruptState reports that on-disk solver state (a snapshot
	// section or a write-ahead-log record) failed its checksum or
	// structural validation and cannot be recovered from. The durable
	// layer never serves a fixpoint from state that fails verification.
	ErrCorruptState = errors.New("corrupt durable state")
)
