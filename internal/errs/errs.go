// Package errs defines the sentinel errors of the public solver API.
// It is a leaf package so that every layer — the kernel-facing method
// implementations (bp, linbp, sbp, fabp), the coupling validators, and
// the core dispatch — can wrap the same sentinels with fmt.Errorf("%w")
// and callers can classify failures uniformly with errors.Is/As instead
// of matching message strings.
package errs

import "errors"

var (
	// ErrNotConverged reports that an iterative solve exhausted its
	// iteration budget before reaching the convergence tolerance. The
	// partial result (the last iterate) is still returned alongside it.
	ErrNotConverged = errors.New("solver did not converge")

	// ErrDimensionMismatch reports inconsistent shapes between the
	// graph, the explicit beliefs, the coupling matrix, or a
	// caller-provided destination buffer.
	ErrDimensionMismatch = errors.New("dimension mismatch")

	// ErrInvalidCoupling reports a coupling matrix that violates the
	// paper's requirements (square, symmetric, doubly stochastic /
	// centered residual, entries in range).
	ErrInvalidCoupling = errors.New("invalid coupling matrix")

	// ErrClosed reports use of a solver after Close.
	ErrClosed = errors.New("solver is closed")
)
