// Package errs defines the sentinel errors of the public solver API.
// It is a leaf package so that every layer — the kernel-facing method
// implementations (bp, linbp, sbp, fabp), the coupling validators, and
// the core dispatch — can wrap the same sentinels with fmt.Errorf("%w")
// and callers can classify failures uniformly with errors.Is/As instead
// of matching message strings.
package errs

import "errors"

var (
	// ErrNotConverged reports that an iterative solve exhausted its
	// iteration budget before reaching the convergence tolerance. The
	// partial result (the last iterate) is still returned alongside it.
	ErrNotConverged = errors.New("solver did not converge")

	// ErrDimensionMismatch reports inconsistent shapes between the
	// graph, the explicit beliefs, the coupling matrix, or a
	// caller-provided destination buffer.
	ErrDimensionMismatch = errors.New("dimension mismatch")

	// ErrInvalidCoupling reports a coupling matrix that violates the
	// paper's requirements (square, symmetric, doubly stochastic /
	// centered residual, entries in range).
	ErrInvalidCoupling = errors.New("invalid coupling matrix")

	// ErrClosed reports use of a solver after Close.
	ErrClosed = errors.New("solver is closed")

	// ErrNonFinite reports a NaN or infinite value where the math
	// requires finite input or produced finite output: an edge weight,
	// an explicit belief entry, or an iterative update whose delta
	// overflowed. Solvers surface it instead of spinning to MaxIter on
	// a poisoned fixpoint.
	ErrNonFinite = errors.New("non-finite value")

	// ErrCorruptState reports that on-disk solver state (a snapshot
	// section or a write-ahead-log record) failed its checksum or
	// structural validation and cannot be recovered from. The durable
	// layer never serves a fixpoint from state that fails verification.
	ErrCorruptState = errors.New("corrupt durable state")

	// ErrInvalidInput reports caller-supplied data that is structurally
	// ill-formed before any shapes are compared: self-loop or
	// non-positive-weight edges, out-of-range priors or explicit
	// beliefs, nil required components, or contradictory options.
	// Distinct from ErrDimensionMismatch (shapes disagree between
	// otherwise-valid components) and ErrNonFinite (NaN/Inf values).
	ErrInvalidInput = errors.New("invalid input")

	// ErrOverloaded reports a request shed by the serving front end
	// because capacity ran out: the admission queue hit its depth cap
	// and this request — or the stale waiter evicted to make room for
	// it — cannot be served without collapsing latency for everyone
	// else. Overload shedding is load-dependent, so the request may
	// succeed on retry after backoff.
	ErrOverloaded = errors.New("overloaded: request shed")

	// ErrDeadlineBudget reports a request rejected at admission because
	// its remaining context-deadline budget is smaller than the front
	// end's current latency estimate: queueing it would burn kernel
	// time on an answer the caller will never wait for. Distinct from
	// context.DeadlineExceeded (the deadline actually passed) — here
	// the front end failed fast while budget remained.
	ErrDeadlineBudget = errors.New("deadline budget below estimated latency")

	// ErrDegraded reports a write (Update) rejected because the front
	// end is in read-only degraded mode: the durable plane failed
	// stickily (e.g. a broken write-ahead log) and accepting further
	// writes could acknowledge changes that crash recovery would lose.
	// Solves keep being served from the last good state.
	ErrDegraded = errors.New("degraded: front end is read-only")

	// ErrDraining reports a request rejected because the front end is
	// draining for shutdown or restart: admission is closed while the
	// already-admitted queue flushes.
	ErrDraining = errors.New("draining: admission closed")

	// ErrInternal reports a request that made the compute plane panic.
	// The panic is confined to the poisoned request — its batch
	// cohabitants are retried — and surfaced as this typed error
	// instead of crashing the process.
	ErrInternal = errors.New("internal: solve panicked")
)

// Classify names the taxonomy class of err: the variable name of the
// sentinel it wraps ("ErrNotConverged", ...), or "" when err is nil,
// or "untyped" when it wraps none — which the lint gate
// (errs-taxonomy) makes unreachable for errors produced inside this
// module. Intended for metrics labels and log fields, so operators
// aggregate failures by class rather than by unstable message text.
func Classify(err error) string {
	if err == nil {
		return ""
	}
	for _, c := range []struct {
		sentinel error
		name     string
	}{
		{ErrNotConverged, "ErrNotConverged"},
		{ErrDimensionMismatch, "ErrDimensionMismatch"},
		{ErrInvalidCoupling, "ErrInvalidCoupling"},
		{ErrClosed, "ErrClosed"},
		{ErrNonFinite, "ErrNonFinite"},
		{ErrCorruptState, "ErrCorruptState"},
		{ErrInvalidInput, "ErrInvalidInput"},
		{ErrOverloaded, "ErrOverloaded"},
		{ErrDeadlineBudget, "ErrDeadlineBudget"},
		{ErrDegraded, "ErrDegraded"},
		{ErrDraining, "ErrDraining"},
		{ErrInternal, "ErrInternal"},
	} {
		if errors.Is(err, c.sentinel) {
			return c.name
		}
	}
	return "untyped"
}
