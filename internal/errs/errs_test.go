package errs

import (
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{ErrNotConverged, "ErrNotConverged"},
		{ErrDimensionMismatch, "ErrDimensionMismatch"},
		{ErrInvalidCoupling, "ErrInvalidCoupling"},
		{ErrClosed, "ErrClosed"},
		{ErrNonFinite, "ErrNonFinite"},
		{ErrCorruptState, "ErrCorruptState"},
		{ErrInvalidInput, "ErrInvalidInput"},
		{ErrOverloaded, "ErrOverloaded"},
		{ErrDeadlineBudget, "ErrDeadlineBudget"},
		{ErrDegraded, "ErrDegraded"},
		{ErrDraining, "ErrDraining"},
		{ErrInternal, "ErrInternal"},
		{fmt.Errorf("solver: %w", ErrNotConverged), "ErrNotConverged"},
		{fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", ErrCorruptState)), "ErrCorruptState"},
		{fmt.Errorf("serve: queue full: %w", ErrOverloaded), "ErrOverloaded"},
		{errors.New("ad-hoc"), "untyped"},
		{fmt.Errorf("wrapping nothing of ours: %w", errors.New("x")), "untyped"},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestSentinelsDistinct guards against two sentinels ever aliasing:
// errors.Is across distinct sentinels must always be false, or the
// taxonomy (and every errors.Is call site in the module) silently
// conflates failure classes.
func TestSentinelsDistinct(t *testing.T) {
	sentinels := []error{
		ErrNotConverged, ErrDimensionMismatch, ErrInvalidCoupling,
		ErrClosed, ErrNonFinite, ErrCorruptState, ErrInvalidInput,
		ErrOverloaded, ErrDeadlineBudget, ErrDegraded, ErrDraining,
		ErrInternal,
	}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("errors.Is(%v, %v) = %v", a, b, i != j)
			}
		}
	}
}

// TestClassifyCoversEverySentinel parses errs.go and asserts that every
// exported Err* package variable appears in Classify's table. A
// sentinel added without a Classify entry would silently report as
// "untyped" in metrics labels — exactly the failure mode the serving
// front end's typed-shedding contract forbids.
func TestClassifyCoversEverySentinel(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "errs.go", nil, 0)
	if err != nil {
		t.Fatalf("parsing errs.go: %v", err)
	}
	var declared []string
	var classified map[string]bool
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			if d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if strings.HasPrefix(name.Name, "Err") && ast.IsExported(name.Name) {
						declared = append(declared, name.Name)
					}
				}
			}
		case *ast.FuncDecl:
			if d.Name.Name != "Classify" || d.Body == nil {
				continue
			}
			classified = map[string]bool{}
			ast.Inspect(d.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if ok && strings.HasPrefix(id.Name, "Err") {
					classified[id.Name] = true
				}
				return true
			})
		}
	}
	if len(declared) == 0 || classified == nil {
		t.Fatalf("parse found %d sentinels, classify table %v", len(declared), classified)
	}
	for _, name := range declared {
		if !classified[name] {
			t.Errorf("sentinel %s is not in Classify's table; metrics would label it \"untyped\"", name)
		}
	}
}
