package errs

import (
	"errors"
	"fmt"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{ErrNotConverged, "ErrNotConverged"},
		{ErrDimensionMismatch, "ErrDimensionMismatch"},
		{ErrInvalidCoupling, "ErrInvalidCoupling"},
		{ErrClosed, "ErrClosed"},
		{ErrNonFinite, "ErrNonFinite"},
		{ErrCorruptState, "ErrCorruptState"},
		{ErrInvalidInput, "ErrInvalidInput"},
		{fmt.Errorf("solver: %w", ErrNotConverged), "ErrNotConverged"},
		{fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", ErrCorruptState)), "ErrCorruptState"},
		{errors.New("ad-hoc"), "untyped"},
		{fmt.Errorf("wrapping nothing of ours: %w", errors.New("x")), "untyped"},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestSentinelsDistinct guards against two sentinels ever aliasing:
// errors.Is across distinct sentinels must always be false, or the
// taxonomy (and every errors.Is call site in the module) silently
// conflates failure classes.
func TestSentinelsDistinct(t *testing.T) {
	sentinels := []error{
		ErrNotConverged, ErrDimensionMismatch, ErrInvalidCoupling,
		ErrClosed, ErrNonFinite, ErrCorruptState, ErrInvalidInput,
	}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("errors.Is(%v, %v) = %v", a, b, i != j)
			}
		}
	}
}
