// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7, Appendix F, Appendix G) on laptop-scale
// versions of the same workloads. Each experiment prints the rows or
// series the paper reports; cmd/experiments is the CLI front end and
// bench_test.go wraps the same code paths in testing.B benchmarks.
//
// Absolute wall-clock numbers differ from the paper (different hardware,
// Go instead of JAVA/PostgreSQL); the reproduced quantities are the
// shapes: who wins, by roughly what factor, and where crossovers fall.
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Config sizes the experiment runs. Zero values select defaults that
// finish in seconds.
type Config struct {
	// Out receives the report (default: discarded if nil — callers
	// should set it).
	Out io.Writer
	// MaxGraph is the largest Kronecker graph number (Fig. 6a's #1–#9)
	// used by in-memory timing experiments (default 4).
	MaxGraph int
	// MaxRelGraph bounds the relational-engine experiments, which are
	// slower per edge (default 3).
	MaxRelGraph int
	// Iterations for fixed-round timing runs (default 5, as the paper).
	Iterations int
	// Seed for workload generation.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.MaxGraph == 0 {
		c.MaxGraph = 4
	}
	if c.MaxRelGraph == 0 {
		c.MaxRelGraph = 3
	}
	if c.Iterations == 0 {
		c.Iterations = 5
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// Experiment is one runnable reproduction unit.
type Experiment struct {
	// Name is the id used on the command line (e.g. "fig7a").
	Name string
	// Paper describes the corresponding artifact.
	Paper string
	// Run executes the experiment and writes its report.
	Run func(Config) error
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"ex20", "Example 20 constants (thresholds, golden beliefs)", Example20},
		{"fig4", "Fig. 4(a–d): standardized beliefs vs εH on the torus", Fig4},
		{"fig6a", "Fig. 6(a): Kronecker graph table", Fig6a},
		{"fig7a", "Fig. 7(a): in-memory scalability BP vs LinBP", Fig7a},
		{"fig7b", "Fig. 7(b): relational scalability LinBP vs SBP vs ΔSBP", Fig7b},
		{"fig7c", "Fig. 7(c): timing table with ratios", Fig7c},
		{"fig7d", "Fig. 7(d): per-iteration time SBP vs LinBP", Fig7d},
		{"fig7e", "Fig. 7(e): ΔSBP vs SBP for fractions of new beliefs", Fig7e},
		{"fig7f", "Fig. 7(f): recall/precision of LinBP w.r.t. BP vs εH", Fig7f},
		{"fig7g", "Fig. 7(g): SBP and LinBP* w.r.t. LinBP vs εH", Fig7g},
		{"fig10a", "Fig. 10(a): runtime vs fraction of explicit beliefs", Fig10a},
		{"fig10b", "Fig. 10(b): ΔSBP vs SBP for fractions of new edges", Fig10b},
		{"fig11b", "Fig. 11(b): DBLP-like F1 vs εH", Fig11b},
		{"appg", "Appendix G: LinBP criteria vs Mooij–Kappen BP bound", AppendixG},
		{"incr", "Section 8: incremental updates, warm vs cold re-solve", Incremental},
	}
}

// Lookup returns the experiment with the given name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// fig6b returns the synthetic-experiment coupling matrix Hˆo.
func fig6b() *dense.Matrix { return coupling.Fig6bResidual() }

// kronProblem builds the paper's synthetic workload for graph #num:
// the Kronecker graph plus 5% random explicit beliefs.
func kronProblem(num int, cfg Config) (*graph.Graph, *beliefs.Residual) {
	g := gen.Kronecker(gen.KroneckerGraphNumber(num))
	e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: 0.05, Seed: cfg.Seed + uint64(num)})
	return g, e
}

// timeIt measures one execution of fn.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// logspace returns n log-spaced values from lo to hi inclusive.
func logspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}

// header prints a section header.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}
