package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smallCfg keeps every experiment in the sub-second range for CI.
func smallCfg(buf *bytes.Buffer) Config {
	return Config{Out: buf, MaxGraph: 2, MaxRelGraph: 1, Iterations: 3, Seed: 7}
}

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(smallCfg(&buf)); err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.Name)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig7a"); !ok {
		t.Fatal("fig7a must exist")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown experiment must not resolve")
	}
}

func TestExample20OutputContainsConstants(t *testing.T) {
	var buf bytes.Buffer
	if err := Example20(smallCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"2.414", "0.629", "0.488", "0.658", "0.360", "0.455"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing paper constant %s:\n%s", want, out)
		}
	}
}

func TestFig6aCountsExactRows(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig6a(smallCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Paper's row for graph #9.
	if !strings.Contains(out, "1594323") || !strings.Contains(out, "67108864") {
		t.Fatalf("Fig 6a table missing the #9 row:\n%s", out)
	}
}

// TestFig7fQualityHigh checks the paper's headline quality claims in the
// mid εH range (where Lemma 8 recommends operating): LinBP matches BP to
// >99.9% and SBP matches LinBP to >98.6%.
func TestFig7fQualityHigh(t *testing.T) {
	cfg := Config{Out: new(bytes.Buffer), MaxGraph: 1, Iterations: 3, Seed: 7}
	pts, err := qualitySweep(1, cfg.withDefaults(), []float64{1e-4, 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if !pt.bpConv || !pt.linbpConv {
			t.Fatalf("both methods must converge at εH = %v", pt.eps)
		}
		if pt.linbpVsBP.F1 < 0.99 {
			t.Fatalf("eps=%v: LinBP vs BP F1 = %v, want > 0.99", pt.eps, pt.linbpVsBP.F1)
		}
		if pt.sbpVsLinBP.F1 < 0.986 {
			t.Fatalf("eps=%v: SBP vs LinBP F1 = %v, want > 0.986", pt.eps, pt.sbpVsLinBP.F1)
		}
		if pt.starVsLinBP.F1 < 0.99 {
			t.Fatalf("eps=%v: LinBP* vs LinBP F1 = %v, want > 0.99", pt.eps, pt.starVsLinBP.F1)
		}
	}
}

func TestLogspace(t *testing.T) {
	v := logspace(0.01, 1, 3)
	if len(v) != 3 || v[0] != 0.01 || v[2] < 0.999 || v[2] > 1.001 {
		t.Fatalf("logspace = %v", v)
	}
	if logspace(5, 10, 1)[0] != 5 {
		t.Fatal("degenerate logspace wrong")
	}
}
