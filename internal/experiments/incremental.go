// The incremental-maintenance experiment of the paper's Section 8
// (future work there; implemented here by the epoch-versioned dynamic
// serving plane): iterations and time saved by warm-starting the
// LinBP re-solve after edge deltas of increasing size, against the
// cold re-solve of the same epoch.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// Incremental prints, for edge deltas between 0.1% and 5% of the
// graph's edges, the warm-started Update's iteration count and wall
// time next to the cold restart's — the quantity the paper's
// incremental-update discussion cares about: maintenance cost must
// scale with the delta, not the graph.
func Incremental(cfg Config) error {
	cfg = cfg.withDefaults()
	g, e := kronProblem(cfg.MaxGraph, cfg)
	p := &core.Problem{Graph: g, Explicit: e, Ho: fig6b(), EpsilonH: 0}
	header(cfg.Out, fmt.Sprintf("Section 8 incremental updates: LinBP warm vs cold re-solve, Kronecker #%d (n=%d)", cfg.MaxGraph, g.N()))
	fmt.Fprintf(cfg.Out, "%-10s %12s %12s %14s %14s\n", "delta", "warm_iters", "cold_iters", "warm_ms", "cold_ms")

	for _, frac := range []float64{0.001, 0.005, 0.01, 0.05} {
		count := int(frac * float64(g.NumEdges()))
		if count < 1 {
			count = 1
		}
		delta := make([]graph.Edge, 0, count)
		rng := xrand.New(cfg.Seed + uint64(count))
		for len(delta) < count {
			s, t := rng.Intn(g.N()), rng.Intn(g.N())
			if s != t {
				delta = append(delta, graph.Edge{S: s, T: t, W: 1})
			}
		}
		run := func(policy core.UpdatePolicy) (int, time.Duration, error) {
			s, err := core.Prepare(p, core.MethodLinBP, core.WithAutoEpsilonH(),
				core.WithMaxIter(500), core.WithTol(1e-9), core.WithUpdatePolicy(policy))
			if err != nil {
				return 0, 0, err
			}
			defer s.Close()
			ctx := context.Background()
			if _, err := s.Update(ctx, core.Update{}); err != nil {
				return 0, 0, err
			}
			start := time.Now()
			res, err := s.Update(ctx, core.Update{AddEdges: delta})
			if err != nil {
				return 0, 0, err
			}
			return res.Iterations, time.Since(start), nil
		}
		warmIters, warmT, err := run(core.UpdatePolicy{})
		if err != nil {
			return err
		}
		coldIters, coldT, err := run(core.UpdatePolicy{DisableWarmStart: true})
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%-10s %12d %12d %14.2f %14.2f\n",
			fmt.Sprintf("%.1f%%", frac*100), warmIters, coldIters,
			float64(warmT.Microseconds())/1000, float64(coldT.Microseconds())/1000)
	}
	return nil
}
