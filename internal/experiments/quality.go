package experiments

import (
	"fmt"

	"repro/internal/beliefs"
	"repro/internal/core"
	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linbp"
	"repro/internal/metrics"
	"repro/internal/mooij"
	"repro/internal/sbp"
	"repro/internal/spectral"
)

// torusInstance returns the Example 20 problem components.
func torusInstance() (*core.Problem, *dense.Matrix) {
	ho, err := coupling.NewResidual(coupling.Fig1c())
	if err != nil {
		panic(err) // Fig. 1c is a constant; cannot fail
	}
	e := beliefs.New(8, 3)
	e.Set(0, []float64{2, -1, -1})
	e.Set(1, []float64{-1, 2, -1})
	e.Set(2, []float64{-1, -1, 2})
	return &core.Problem{Graph: gen.Torus(), Explicit: e, Ho: ho}, ho
}

// Example20 prints the paper's worked constants: spectral radii, exact
// and norm-based εH thresholds, and SBP's golden beliefs for v4.
func Example20(cfg Config) error {
	cfg = cfg.withDefaults()
	header(cfg.Out, "Example 20 (torus of Fig. 5c, coupling of Fig. 1c)")
	p, ho := torusInstance()

	rhoA, err := spectral.RadiusCSR(p.Graph.Adjacency(), spectral.Options{})
	if err != nil {
		return err
	}
	rhoH, err := spectral.RadiusDense(ho, spectral.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "rho(A)          = %.4f   (paper: 2.414)\n", rhoA)
	fmt.Fprintf(cfg.Out, "rho(Ho)         = %.4f   (paper: 0.629)\n", rhoH)

	for _, row := range []struct {
		label string
		echo  bool
		exact bool
		paper string
	}{
		{"LinBP  exact", true, true, "0.488"},
		{"LinBP* exact", false, true, "0.658"},
		{"LinBP  norms", true, false, "0.360"},
		{"LinBP* norms", false, false, "0.455"},
	} {
		eps, err := linbp.MaxEpsilonH(p.Graph, ho, row.echo, row.exact)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "eps_H %s = %.4f   (paper: %s)\n", row.label, eps, row.paper)
	}

	st, err := sbp.Run(p.Graph, p.Explicit, ho)
	if err != nil {
		return err
	}
	z := st.Beliefs().StandardizedRow(3)
	fmt.Fprintf(cfg.Out, "SBP zeta(b_v4)  = [%.3f %.3f %.3f]   (paper: [-0.069 1.258 -1.189])\n",
		z[0], z[1], z[2])
	fmt.Fprintf(cfg.Out, "SBP sigma(b_v4) = %.4f   (paper: 0.332 per unit eps_H^3)\n",
		dense.StdDev(st.Beliefs().Row(3)))
	return nil
}

// Fig4 sweeps εH on the torus and prints the standardized beliefs of v4
// under BP, LinBP, and LinBP* together with the SBP limit (Fig. 4a–c)
// and the standard deviations (Fig. 4d).
func Fig4(cfg Config) error {
	cfg = cfg.withDefaults()
	header(cfg.Out, "Fig. 4: standardized beliefs of v4 vs eps_H (torus)")
	p, ho := torusInstance()
	st, err := sbp.Run(p.Graph, p.Explicit, ho)
	if err != nil {
		return err
	}
	z := st.Beliefs().StandardizedRow(3)
	fmt.Fprintf(cfg.Out, "SBP limit: zeta = [%.4f %.4f %.4f]\n", z[0], z[1], z[2])
	fmt.Fprintf(cfg.Out, "%8s  %-28s %-28s %-28s %12s\n",
		"eps_H", "BP zeta(v4)", "LinBP zeta(v4)", "LinBP* zeta(v4)", "sigma(LinBP)")

	for _, eps := range logspace(0.01, 0.64, 13) {
		p.EpsilonH = eps
		row := fmt.Sprintf("%8.4f  ", eps)
		for _, m := range []core.Method{core.MethodBP, core.MethodLinBP, core.MethodLinBPStar} {
			res, err := core.Solve(p, m, core.Options{MaxIter: 200})
			if err != nil {
				return err
			}
			if !res.Converged {
				row += fmt.Sprintf("%-28s ", "(diverged)")
				continue
			}
			zz := res.Beliefs.StandardizedRow(3)
			row += fmt.Sprintf("[%7.3f %7.3f %7.3f]  ", zz[0], zz[1], zz[2])
		}
		res, err := core.Solve(p, core.MethodLinBP, core.Options{MaxIter: 200})
		if err != nil {
			return err
		}
		if res.Converged {
			row += fmt.Sprintf("%12.4g", dense.StdDev(res.Beliefs.Row(3)))
		} else {
			row += "           -"
		}
		fmt.Fprintln(cfg.Out, row)
	}
	return nil
}

// qualitySweep runs BP/LinBP/LinBP*/SBP on Kronecker graph #num over an
// εH sweep and returns per-εH precision/recall of each comparison the
// paper plots in Fig. 7f/7g.
type sweepPoint struct {
	eps               float64
	linbpVsBP         metrics.PR
	starVsLinBP       metrics.PR
	sbpVsLinBP        metrics.PR
	bpConv, linbpConv bool
}

func qualitySweep(num int, cfg Config, epss []float64) ([]sweepPoint, error) {
	g, e := kronProblem(num, cfg)
	p := &core.Problem{Graph: g, Explicit: e, Ho: fig6b()}
	sbpRes, err := core.Solve(p, core.MethodSBP, core.Options{})
	if err != nil {
		return nil, err
	}
	var out []sweepPoint
	for _, eps := range epss {
		p.EpsilonH = eps
		pt := sweepPoint{eps: eps}
		bpRes, err := core.Solve(p, core.MethodBP, core.Options{MaxIter: 100})
		if err != nil {
			return nil, err
		}
		linbpRes, err := core.Solve(p, core.MethodLinBP, core.Options{MaxIter: 200})
		if err != nil {
			return nil, err
		}
		starRes, err := core.Solve(p, core.MethodLinBPStar, core.Options{MaxIter: 200})
		if err != nil {
			return nil, err
		}
		pt.bpConv, pt.linbpConv = bpRes.Converged, linbpRes.Converged
		if pt.bpConv && pt.linbpConv {
			pt.linbpVsBP, _ = metrics.Compare(bpRes.Top, linbpRes.Top)
		}
		if pt.linbpConv && starRes.Converged {
			pt.starVsLinBP, _ = metrics.Compare(linbpRes.Top, starRes.Top)
		}
		if pt.linbpConv {
			pt.sbpVsLinBP, _ = metrics.Compare(linbpRes.Top, sbpRes.Top)
		}
		out = append(out, pt)
	}
	return out, nil
}

// Fig7f prints recall and precision of LinBP w.r.t. BP over εH.
func Fig7f(cfg Config) error {
	cfg = cfg.withDefaults()
	num := min(cfg.MaxGraph, 4)
	header(cfg.Out, fmt.Sprintf("Fig. 7(f): LinBP vs BP on Kronecker graph #%d", num))
	pts, err := qualitySweep(num, cfg, logspace(1e-6, 2e-2, 10))
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "%10s %9s %9s %6s\n", "eps_H", "recall", "precision", "conv")
	for _, pt := range pts {
		if !pt.bpConv || !pt.linbpConv {
			fmt.Fprintf(cfg.Out, "%10.2g %9s %9s %6s\n", pt.eps, "-", "-", "no")
			continue
		}
		fmt.Fprintf(cfg.Out, "%10.2g %9.4f %9.4f %6s\n",
			pt.eps, pt.linbpVsBP.Recall, pt.linbpVsBP.Precision, "yes")
	}
	return nil
}

// Fig7g prints SBP and LinBP* quality w.r.t. LinBP over εH.
func Fig7g(cfg Config) error {
	cfg = cfg.withDefaults()
	num := min(cfg.MaxGraph, 4)
	header(cfg.Out, fmt.Sprintf("Fig. 7(g): SBP and LinBP* vs LinBP on Kronecker graph #%d", num))
	pts, err := qualitySweep(num, cfg, logspace(1e-6, 2e-2, 10))
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "%10s %9s %9s %11s\n", "eps_H", "SBP r", "SBP p", "LinBP* r=p")
	for _, pt := range pts {
		if !pt.linbpConv {
			fmt.Fprintf(cfg.Out, "%10.2g %9s %9s %11s\n", pt.eps, "-", "-", "-")
			continue
		}
		fmt.Fprintf(cfg.Out, "%10.2g %9.4f %9.4f %11.4f\n",
			pt.eps, pt.sbpVsLinBP.Recall, pt.sbpVsLinBP.Precision, pt.starVsLinBP.Recall)
	}
	return nil
}

// Fig11b runs the DBLP-like experiment: F1 of LinBP, LinBP*, and SBP
// w.r.t. BP over εH, under 4-class homophily (Fig. 11a).
func Fig11b(cfg Config) error {
	cfg = cfg.withDefaults()
	header(cfg.Out, "Fig. 11(b): DBLP-like graph, F1 w.r.t. BP vs eps_H")
	d := gen.DBLP(gen.DefaultDBLPConfig())
	n := d.G.N()
	// Label ~10.4% of the nodes with their true class, as in the paper.
	e := beliefs.New(n, 4)
	seeded := beliefs.SeededNodes(n, beliefs.SeedConfig{Fraction: 0.104, Seed: cfg.Seed})
	for _, v := range seeded {
		e.Set(v, beliefs.LabelResidual(4, d.TrueClass[v], 0.05))
	}
	p := &core.Problem{Graph: d.G, Explicit: e, Ho: coupling.Fig11aResidual()}
	fmt.Fprintf(cfg.Out, "nodes=%d directed-edges=%d labeled=%d\n",
		n, d.G.DirectedEdgeCount(), len(seeded))

	sbpRes, err := core.Solve(p, core.MethodSBP, core.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "%10s %10s %10s %10s %12s\n", "eps_H", "LinBP F1", "LinBP* F1", "SBP F1", "truth-acc")
	for _, eps := range logspace(1e-5, 1e-2, 7) {
		p.EpsilonH = eps
		bpRes, err := core.Solve(p, core.MethodBP, core.Options{MaxIter: 100})
		if err != nil {
			return err
		}
		linbpRes, err := core.Solve(p, core.MethodLinBP, core.Options{MaxIter: 200})
		if err != nil {
			return err
		}
		starRes, err := core.Solve(p, core.MethodLinBPStar, core.Options{MaxIter: 200})
		if err != nil {
			return err
		}
		if !bpRes.Converged || !linbpRes.Converged {
			fmt.Fprintf(cfg.Out, "%10.2g (diverged)\n", eps)
			continue
		}
		f1 := func(top [][]int) float64 {
			pr, _ := metrics.Compare(bpRes.Top, top)
			return pr.F1
		}
		// Also report LinBP's agreement with the generator's true labels
		// on unlabeled nodes (not a paper series, but a useful sanity row).
		var correct, total int
		for s := 0; s < n; s++ {
			if e.IsExplicit(s) {
				continue
			}
			total++
			if len(linbpRes.Top[s]) == 1 && linbpRes.Top[s][0] == d.TrueClass[s] {
				correct++
			}
		}
		fmt.Fprintf(cfg.Out, "%10.2g %10.4f %10.4f %10.4f %12.4f\n",
			eps, f1(linbpRes.Top), f1(starRes.Top), f1(sbpRes.Top),
			float64(correct)/float64(total))
	}
	return nil
}

// AppendixG compares the paper's LinBP criteria with the Mooij–Kappen
// bound for standard BP on three graphs, demonstrating that neither
// subsumes the other.
func AppendixG(cfg Config) error {
	cfg = cfg.withDefaults()
	header(cfg.Out, "Appendix G: LinBP* criterion vs Mooij–Kappen BP bound")
	ho := fig6b()
	fmt.Fprintf(cfg.Out, "%-10s %8s %10s %10s %10s %10s %12s %12s\n",
		"graph", "eps_H", "rho(A)", "rho(Aedge)", "c(H)", "rho(H^)", "LinBP* conv", "MK certifies")
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"torus", gen.Torus()},
		{"kron#2", gen.Kronecker(6)},
		{"dense", gen.Random(60, 400, cfg.Seed)},
	} {
		epsMax, err := linbp.MaxEpsilonH(tc.g, ho, false, true)
		if err != nil {
			return err
		}
		rhoA, _ := spectral.RadiusCSR(tc.g.Adjacency(), spectral.Options{MaxIter: 5000})
		em, _ := tc.g.EdgeMatrix()
		rhoE, _ := spectral.RadiusCSR(em, spectral.Options{MaxIter: 10000})
		for _, f := range []float64{0.9, 1.1} {
			eps := f * epsMax
			hstoch := coupling.Uncenter(coupling.Scale(ho, eps))
			cH, _, cert, err := mooij.Bound(tc.g, hstoch)
			if err != nil {
				return err
			}
			rhoH, _ := spectral.RadiusDense(coupling.Scale(ho, eps), spectral.Options{})
			fmt.Fprintf(cfg.Out, "%-10s %8.4f %10.3f %10.3f %10.4f %10.4f %12v %12v\n",
				tc.name, eps, rhoA, rhoE, cH, rhoH, f < 1, cert)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
