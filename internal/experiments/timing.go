package experiments

import (
	"fmt"
	"time"

	"repro/internal/beliefs"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linbp"
	"repro/internal/relalgo"
	"repro/internal/reldb"
	"repro/internal/sbp"
)

// Fig6a prints the Kronecker graph table: nodes, directed edges, e/n,
// and the explicit-belief counts at 5% and 1‰. Graphs above MaxGraph
// are reported from the closed-form counts without being generated.
func Fig6a(cfg Config) error {
	cfg = cfg.withDefaults()
	header(cfg.Out, "Fig. 6(a): Kronecker graphs")
	fmt.Fprintf(cfg.Out, "%3s %10s %12s %7s %9s %7s %10s\n",
		"#", "nodes", "edges", "e/n", "5%", "1permil", "generated")
	n, e := 1, 1
	for p := 1; p <= 4; p++ {
		n *= 3
		e *= 4
	}
	for num := 1; num <= 9; num++ {
		n *= 3
		e *= 4
		generated := "no"
		if num <= cfg.MaxGraph {
			g := gen.Kronecker(gen.KroneckerGraphNumber(num))
			if g.N() != n || g.DirectedEdgeCount() != e {
				return fmt.Errorf("fig6a: graph #%d counts %d/%d, want %d/%d",
					num, g.N(), g.DirectedEdgeCount(), n, e)
			}
			generated = "yes"
		}
		permil := (n + 500) / 1000
		if permil < 1 {
			permil = 1 // the paper labels at least one node
		}
		fmt.Fprintf(cfg.Out, "%3d %10d %12d %7.1f %9d %7d %10s\n",
			num, n, e, float64(e)/float64(n), n/20, permil, generated)
	}
	return nil
}

// methodTime runs one method on graph #num (fixed iterations, as in the
// paper's timing methodology) and returns the elapsed computation time.
func methodTime(num int, m core.Method, cfg Config) (time.Duration, int, error) {
	g, e := kronProblem(num, cfg)
	p := &core.Problem{Graph: g, Explicit: e, Ho: fig6b(), EpsilonH: 0.001}
	// Warm the adjacency cache so timing covers computation only, as the
	// paper's JAVA runs excluded loading and initialization.
	g.Adjacency()
	g.WeightedDegrees()
	var err error
	d := timeIt(func() {
		_, err = core.Solve(p, m, core.Options{MaxIter: cfg.Iterations, Tol: -1})
	})
	return d, g.DirectedEdgeCount(), err
}

// Fig7a prints in-memory scalability: BP vs LinBP runtimes per graph.
func Fig7a(cfg Config) error {
	cfg = cfg.withDefaults()
	header(cfg.Out, "Fig. 7(a): in-memory scalability (fixed iterations)")
	fmt.Fprintf(cfg.Out, "%3s %12s %12s %12s %10s\n", "#", "edges", "BP", "LinBP", "BP/LinBP")
	for num := 1; num <= cfg.MaxGraph; num++ {
		bpT, edges, err := methodTime(num, core.MethodBP, cfg)
		if err != nil {
			return err
		}
		linT, _, err := methodTime(num, core.MethodLinBP, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "%3d %12d %12s %12s %10.1f\n",
			num, edges, bpT.Round(time.Microsecond), linT.Round(time.Microsecond),
			float64(bpT)/float64(linT))
	}
	return nil
}

// relProblem loads Kronecker graph #num into the relational engine.
func relProblem(num int, cfg Config) (*relalgo.DB, *graph.Graph, *beliefs.Residual) {
	g, e := kronProblem(num, cfg)
	return relalgo.Load(g, e, fig6b().Scaled(0.001)), g, e
}

// Fig7b prints relational-engine scalability: LinBP vs SBP vs ΔSBP.
// ΔSBP re-labels 1‰ of all nodes incrementally, as in Fig. 7(c).
func Fig7b(cfg Config) error {
	cfg = cfg.withDefaults()
	header(cfg.Out, "Fig. 7(b): relational engine scalability")
	fmt.Fprintf(cfg.Out, "%3s %12s %12s %12s %12s %12s %12s\n",
		"#", "edges", "LinBP", "SBP", "dSBP", "LinBP/SBP", "SBP/dSBP")
	for num := 1; num <= cfg.MaxRelGraph; num++ {
		db, g, _ := relProblem(num, cfg)
		linT := timeIt(func() { db.LinBP(cfg.Iterations, true) })

		var st *relalgo.SBPState
		sbpT := timeIt(func() { st = db.SBP() })

		// ΔSBP: 1‰ of all nodes get new labels.
		en := reldb.New("En", []string{"v", "c", "b"})
		count := g.N() / 1000
		if count < 1 {
			count = 1
		}
		fresh, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Count: count, Seed: cfg.Seed * 31})
		for _, v := range fresh.ExplicitNodes() {
			for c, b := range fresh.Row(v) {
				if b != 0 {
					en.Insert(float64(v), float64(c), b)
				}
			}
		}
		deltaT := timeIt(func() { st.AddExplicitBeliefs(en) })
		fmt.Fprintf(cfg.Out, "%3d %12d %12s %12s %12s %12.1f %12.1f\n",
			num, g.DirectedEdgeCount(),
			linT.Round(time.Microsecond), sbpT.Round(time.Microsecond), deltaT.Round(time.Microsecond),
			float64(linT)/float64(sbpT), float64(sbpT)/float64(deltaT))
	}
	return nil
}

// Fig7c prints the combined timing table of the paper: in-memory BP and
// LinBP, relational LinBP, SBP, and ΔSBP, with the same ratio columns.
func Fig7c(cfg Config) error {
	cfg = cfg.withDefaults()
	header(cfg.Out, "Fig. 7(c): combined timing table")
	fmt.Fprintf(cfg.Out, "%3s %12s %12s | %12s %12s %12s | %9s %10s %9s\n",
		"#", "BP(mem)", "LinBP(mem)", "LinBP(rel)", "SBP(rel)", "dSBP(rel)",
		"BP/LinBP", "LinBP/SBP", "SBP/dSBP")
	maxNum := min(cfg.MaxGraph, cfg.MaxRelGraph)
	for num := 1; num <= maxNum; num++ {
		bpT, _, err := methodTime(num, core.MethodBP, cfg)
		if err != nil {
			return err
		}
		linMemT, _, err := methodTime(num, core.MethodLinBP, cfg)
		if err != nil {
			return err
		}
		db, g, _ := relProblem(num, cfg)
		linRelT := timeIt(func() { db.LinBP(cfg.Iterations, true) })
		var st *relalgo.SBPState
		sbpT := timeIt(func() { st = db.SBP() })
		en := reldb.New("En", []string{"v", "c", "b"})
		count := g.N() / 1000
		if count < 1 {
			count = 1
		}
		fresh, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Count: count, Seed: cfg.Seed * 31})
		for _, v := range fresh.ExplicitNodes() {
			for c, b := range fresh.Row(v) {
				if b != 0 {
					en.Insert(float64(v), float64(c), b)
				}
			}
		}
		dT := timeIt(func() { st.AddExplicitBeliefs(en) })
		fmt.Fprintf(cfg.Out, "%3d %12s %12s | %12s %12s %12s | %9.1f %10.1f %9.1f\n",
			num, bpT.Round(time.Microsecond), linMemT.Round(time.Microsecond),
			linRelT.Round(time.Microsecond), sbpT.Round(time.Microsecond), dT.Round(time.Microsecond),
			float64(bpT)/float64(linMemT), float64(linRelT)/float64(sbpT), float64(sbpT)/float64(dT))
	}
	return nil
}

// Fig7d prints per-iteration work: LinBP revisits every edge each round,
// while SBP visits each geodesic level once.
func Fig7d(cfg Config) error {
	cfg = cfg.withDefaults()
	num := cfg.MaxGraph
	header(cfg.Out, fmt.Sprintf("Fig. 7(d): per-iteration time on Kronecker graph #%d", num))
	g, e := kronProblem(num, cfg)
	h := fig6b().Scaled(0.001)

	// LinBP: time each round inside a single run via the iteration hook.
	fmt.Fprintf(cfg.Out, "%5s %14s %14s %12s\n", "iter", "LinBP", "SBP(level)", "SBP nodes")
	var linTimes []time.Duration
	lastLin := time.Now()
	if _, err := linbp.Run(g, e, h, linbp.Options{
		EchoCancellation: true, MaxIter: cfg.Iterations, Tol: -1,
		OnIteration: func(iter int, delta float64) {
			now := time.Now()
			linTimes = append(linTimes, now.Sub(lastLin))
			lastLin = now
		},
	}); err != nil {
		return err
	}
	// SBP: time each geodesic level.
	type lvl struct {
		nodes int
		d     time.Duration
	}
	var levels []lvl
	last := time.Now()
	_, err := sbp.RunInstrumented(g, e, h, func(level, nodes int) {
		now := time.Now()
		levels = append(levels, lvl{nodes: nodes, d: now.Sub(last)})
		last = now
	})
	if err != nil {
		return err
	}
	for i := 0; i < len(linTimes) || i < len(levels); i++ {
		var linD time.Duration
		if i < len(linTimes) {
			linD = linTimes[i]
		}
		sbpD, nodes := time.Duration(0), 0
		if i < len(levels) {
			sbpD, nodes = levels[i].d, levels[i].nodes
		}
		fmt.Fprintf(cfg.Out, "%5d %14s %14s %12d\n",
			i+1, linD.Round(time.Microsecond), sbpD.Round(time.Microsecond), nodes)
	}
	return nil
}

// Fig7e compares incremental ΔSBP against SBP-from-scratch while the
// fraction of *new* explicit beliefs grows (Fig. 7(e): crossover ≈ 50%).
func Fig7e(cfg Config) error {
	cfg = cfg.withDefaults()
	num := cfg.MaxRelGraph
	header(cfg.Out, fmt.Sprintf("Fig. 7(e): dSBP vs SBP on Kronecker graph #%d (10%% explicit after update)", num))
	g := gen.Kronecker(gen.KroneckerGraphNumber(num))
	n := g.N()
	total := n / 10
	fmt.Fprintf(cfg.Out, "%10s %14s %14s\n", "new-frac", "dSBP", "SBP(scratch)")
	for _, frac := range []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0} {
		newCount := int(frac * float64(total))
		oldCount := total - newCount
		all, _ := beliefs.Seed(n, 3, beliefs.SeedConfig{Count: total, Seed: cfg.Seed})
		nodes := all.ExplicitNodes()
		oldE := beliefs.New(n, 3)
		newE := reldb.New("En", []string{"v", "c", "b"})
		for i, v := range nodes {
			if i < oldCount {
				oldE.Set(v, all.Row(v))
				continue
			}
			for c, b := range all.Row(v) {
				if b != 0 {
					newE.Insert(float64(v), float64(c), b)
				}
			}
		}
		// Incremental: start from the old state, add the new beliefs.
		db := relalgo.Load(g, oldE, fig6b())
		st := db.SBP()
		deltaT := timeIt(func() { st.AddExplicitBeliefs(newE) })
		// Scratch: full SBP with all beliefs.
		db2 := relalgo.Load(g, all, fig6b())
		scratchT := timeIt(func() { db2.SBP() })
		fmt.Fprintf(cfg.Out, "%10.0f%% %13s %14s\n",
			frac*100, deltaT.Round(time.Microsecond), scratchT.Round(time.Microsecond))
	}
	return nil
}

// Fig10a measures runtime against the fraction of explicit nodes:
// LinBP grows slightly, SBP shrinks slightly (Appendix F.1).
func Fig10a(cfg Config) error {
	cfg = cfg.withDefaults()
	num := cfg.MaxGraph
	header(cfg.Out, fmt.Sprintf("Fig. 10(a): runtime vs fraction of explicit nodes (graph #%d, in-memory)", num))
	g := gen.Kronecker(gen.KroneckerGraphNumber(num))
	g.Adjacency()
	g.WeightedDegrees()
	h := fig6b().Scaled(0.001)
	fmt.Fprintf(cfg.Out, "%10s %14s %14s\n", "explicit", "LinBP", "SBP")
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: frac, Seed: cfg.Seed})
		linT := timeIt(func() {
			if _, err := linbp.Run(g, e, h, linbp.Options{EchoCancellation: true, MaxIter: cfg.Iterations, Tol: -1}); err != nil {
				panic(err)
			}
		})
		sbpT := timeIt(func() {
			if _, err := sbp.Run(g, e, fig6b()); err != nil {
				panic(err)
			}
		})
		fmt.Fprintf(cfg.Out, "%9.0f%% %14s %14s\n",
			frac*100, linT.Round(time.Microsecond), sbpT.Round(time.Microsecond))
	}
	return nil
}

// Fig10b compares incremental edge insertion (Algorithm 4) against SBP
// from scratch while the fraction of new edges grows (Appendix F.1:
// crossover ≈ 3%).
func Fig10b(cfg Config) error {
	cfg = cfg.withDefaults()
	num := cfg.MaxRelGraph
	header(cfg.Out, fmt.Sprintf("Fig. 10(b): dSBP-edges vs SBP on Kronecker graph #%d (10%% explicit)", num))
	full := gen.Kronecker(gen.KroneckerGraphNumber(num))
	n := full.N()
	e, _ := beliefs.Seed(n, 3, beliefs.SeedConfig{Fraction: 0.1, Seed: cfg.Seed})
	edges := full.Edges()
	fmt.Fprintf(cfg.Out, "%10s %14s %14s\n", "new-frac", "dSBP-edges", "SBP(scratch)")
	for _, frac := range []float64{0.005, 0.01, 0.02, 0.05, 0.1} {
		newCount := int(frac * float64(len(edges)))
		if newCount < 1 {
			newCount = 1
		}
		base := graph.New(n)
		for _, ed := range edges[:len(edges)-newCount] {
			base.AddEdge(ed.S, ed.T, ed.W)
		}
		batch := append([]graph.Edge(nil), edges[len(edges)-newCount:]...)

		db := relalgo.Load(base, e, fig6b())
		st := db.SBP()
		deltaT := timeIt(func() { st.AddEdges(batch) })

		db2 := relalgo.Load(full, e, fig6b())
		scratchT := timeIt(func() { db2.SBP() })
		fmt.Fprintf(cfg.Out, "%9.1f%% %14s %14s\n",
			frac*100, deltaT.Round(time.Microsecond), scratchT.Round(time.Microsecond))
	}
	return nil
}
