// Package fabp implements the binary-case (k = 2) linearization of
// belief propagation from Appendix E, the multivariate generalization of
// which is LinBP. In the binary case the residual system collapses to a
// scalar per node: with residual coupling strength ĥ (the Hˆ of
// [[ĥ, −ĥ], [−ĥ, ĥ]]) the steady state satisfies
//
//	(I_n − c1·A + c2·D)·b = e,
//	c1 = 2ĥ/(1−4ĥ²),  c2 = 4ĥ²/(1−4ĥ²),
//
// where b and e hold the first components of the centered binary
// beliefs. This matches FABP of Koutra et al. (after accounting for the
// factor-2 centering difference Appendix E discusses) and agrees with
// k = 2 LinBP up to the (1−4ĥ²) denominator, i.e. to O(ĥ³).
package fabp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
)

// Options tunes the iterative Jacobi solver. The zero value selects
// defaults.
type Options struct {
	// MaxIter bounds the iterations (default 1000).
	MaxIter int
	// Tol is the max-change stopping criterion (default 1e-12).
	Tol float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 1000
	}
	if o.Tol == 0 {
		o.Tol = 1e-12
	}
	return o
}

// Result carries the binary beliefs and solver diagnostics.
type Result struct {
	// B holds the scalar residual belief of class 0 per node (class 1
	// is its negation).
	B []float64
	// Iterations and Converged describe the Jacobi iteration.
	Iterations int
	Converged  bool
	Delta      float64
}

// Coefficients returns c1 = 2ĥ/(1−4ĥ²) and c2 = 4ĥ²/(1−4ĥ²) of Eq. 33.
// It panics unless |ĥ| < 1/2 (beyond that the linearization's implicit
// (I−Hˆ²)⁻¹ does not exist).
func Coefficients(hhat float64) (c1, c2 float64) {
	if math.Abs(hhat) >= 0.5 {
		panic(fmt.Sprintf("fabp: |ĥ| = %v must be < 1/2", hhat))
	}
	den := 1 - 4*hhat*hhat
	return 2 * hhat / den, 4 * hhat * hhat / den
}

// Run solves the binary steady-state system iteratively:
// b ← e + c1·A·b − c2·D·b starting from b = 0. e holds the class-0
// residual of the explicit beliefs (0 for unlabeled nodes).
func Run(g *graph.Graph, e []float64, hhat float64, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	n := g.N()
	if len(e) != n {
		return nil, errors.New("fabp: explicit belief vector length mismatch")
	}
	c1, c2 := Coefficients(hhat)
	a := g.Adjacency()
	d := g.WeightedDegrees()

	cur := make([]float64, n)
	ab := make([]float64, n)
	next := make([]float64, n)
	res := &Result{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		a.MulVecInto(ab, cur)
		var delta float64
		for s := 0; s < n; s++ {
			v := e[s] + c1*ab[s] - c2*d[s]*cur[s]
			ch := math.Abs(v - cur[s])
			if math.IsNaN(ch) {
				ch = math.Inf(1) // overflow: report divergence
			}
			if ch > delta {
				delta = ch
			}
			next[s] = v
		}
		cur, next = next, cur
		res.Iterations = iter + 1
		res.Delta = delta
		if delta <= opts.Tol {
			res.Converged = true
			break
		}
	}
	res.B = cur
	return res, nil
}

// Message returns the steady-state residual message of Eq. 33,
//
//	mˆst = 4ĥ/(1−4ĥ²)·bˆs − 8ĥ²/(1−4ĥ²)·bˆt,
//
// given the endpoint beliefs. Provided mainly for documentation and
// tests; Run works directly on beliefs.
func Message(hhat, bs, bt float64) float64 {
	den := 1 - 4*hhat*hhat
	return 4*hhat/den*bs - 8*hhat*hhat/den*bt
}
