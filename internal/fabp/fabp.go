// Package fabp implements the binary-case (k = 2) linearization of
// belief propagation from Appendix E, the multivariate generalization of
// which is LinBP. In the binary case the residual system collapses to a
// scalar per node: with residual coupling strength ĥ (the Hˆ of
// [[ĥ, −ĥ], [−ĥ, ĥ]]) the steady state satisfies
//
//	(I_n − c1·A + c2·D)·b = e,
//	c1 = 2ĥ/(1−4ĥ²),  c2 = 4ĥ²/(1−4ĥ²),
//
// where b and e hold the first components of the centered binary
// beliefs. This matches FABP of Koutra et al. (after accounting for the
// factor-2 centering difference Appendix E discusses) and agrees with
// k = 2 LinBP up to the (1−4ĥ²) denominator, i.e. to O(ĥ³).
package fabp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/sparse"
)

// Options tunes the iterative Jacobi solver. The zero value selects
// defaults.
type Options struct {
	// MaxIter bounds the iterations (default 1000).
	MaxIter int
	// Tol is the max-change stopping criterion (default 1e-12).
	Tol float64
	// PartitionStarts, when set, selects the kernel's partition-parallel
	// data plane for the scalar collapse (see
	// kernel.Config.PartitionStarts).
	PartitionStarts []int
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 1000
	}
	if o.Tol == 0 {
		o.Tol = 1e-12
	}
	return o
}

// Result carries the binary beliefs and solver diagnostics.
type Result struct {
	// B holds the scalar residual belief of class 0 per node (class 1
	// is its negation).
	B []float64
	// Iterations and Converged describe the Jacobi iteration.
	Iterations int
	Converged  bool
	Delta      float64
}

// Coefficients returns c1 = 2ĥ/(1−4ĥ²) and c2 = 4ĥ²/(1−4ĥ²) of Eq. 33.
// It panics unless |ĥ| < 1/2 (beyond that the linearization's implicit
// (I−Hˆ²)⁻¹ does not exist).
func Coefficients(hhat float64) (c1, c2 float64) {
	if math.Abs(hhat) >= 0.5 {
		panic(fmt.Sprintf("fabp: |ĥ| = %v must be < 1/2", hhat))
	}
	den := 1 - 4*hhat*hhat
	return 2 * hhat / den, 4 * hhat * hhat / den
}

// Engine is a binary FABP solver prepared once for a fixed graph and
// residual coupling strength ĥ and reused across solves — the k = 1
// instance of the fused kernel engine with the echo coupling overridden
// to c2 (Appendix E's coefficient is not c1², so the override hook
// exists precisely for this collapse). Steady-state SolveInto calls
// perform zero allocations.
//
// An Engine is not safe for concurrent use. Call Close when done.
type Engine struct {
	eng    *kernel.Engine
	ws     *kernel.Workspace
	n      int
	opts   Options
	closed bool
}

// NewEngine prepares a reusable binary solver for graph g and residual
// coupling strength hhat (|ĥ| must be < 1/2, else the linearization's
// implicit (I−Hˆ²)⁻¹ does not exist and ErrInvalidCoupling is wrapped).
func NewEngine(g *graph.Graph, hhat float64, opts Options) (*Engine, error) {
	return NewEngineCSR(g.Adjacency(), g.WeightedDegrees(), hhat, opts)
}

// NewEngineCSR is NewEngine over an explicit adjacency layout: a
// (possibly reordered) CSR and its matching squared-weight degree
// vector. The prepared-solver path uses it to run the scalar collapse
// over a locality-ordered graph; beliefs in the caller's node order are
// the caller's concern (core permutes them during its scalar
// expand/collapse copies, for free).
func NewEngineCSR(a *sparse.CSR, d []float64, hhat float64, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	if math.Abs(hhat) >= 0.5 {
		return nil, fmt.Errorf("fabp: |ĥ| = %v must be < 1/2: %w", hhat, errs.ErrInvalidCoupling)
	}
	c1, c2 := Coefficients(hhat)
	ws := kernel.GetWorkspace()
	eng, err := kernel.New(kernel.Config{
		A:               a,
		D:               d,
		SymmetricA:      true,
		H:               dense.NewFromRows([][]float64{{c1}}),
		EchoH:           dense.NewFromRows([][]float64{{c2}}),
		PartitionStarts: opts.PartitionStarts,
	}, ws)
	if err != nil {
		ws.Release()
		return nil, fmt.Errorf("fabp: %w", err)
	}
	return &Engine{eng: eng, ws: ws, n: a.Rows(), opts: opts}, nil
}

// SolveInto runs the Jacobi iteration for the class-0 explicit
// residuals e and writes the final scalar beliefs into dst (length n,
// overwritten). ctx is checked at every kernel round boundary; on
// cancellation the solve aborts with ctx.Err() and dst holds the last
// completed iterate.
func (s *Engine) SolveInto(ctx context.Context, dst, e []float64) (iters int, delta float64, converged bool, err error) {
	return s.SolveFromInto(ctx, dst, e, nil)
}

// SolveFromInto is SolveInto warm-started from the scalar beliefs start
// instead of b = 0 — the binary collapse of the incremental-maintenance
// path: the Jacobi contraction restarted near its unique fixpoint
// reaches tolerance in far fewer rounds after a small input change. A
// nil start is the ordinary cold solve.
func (s *Engine) SolveFromInto(ctx context.Context, dst, e, start []float64) (iters int, delta float64, converged bool, err error) {
	if s.closed {
		return 0, 0, false, fmt.Errorf("fabp: %w", errs.ErrClosed)
	}
	if len(e) != s.n || len(dst) != s.n {
		return 0, 0, false, fmt.Errorf("fabp: belief vector lengths %d/%d do not match n=%d: %w", len(e), len(dst), s.n, errs.ErrDimensionMismatch)
	}
	if start == nil {
		s.eng.ResetFast()
	} else {
		if len(start) != s.n {
			return 0, 0, false, fmt.Errorf("fabp: start vector length %d does not match n=%d: %w", len(start), s.n, errs.ErrDimensionMismatch)
		}
		s.eng.SetStart(start)
	}
	s.eng.SetExplicit(e)
	iters, delta, converged, err = s.eng.RunContext(ctx, s.opts.MaxIter, s.opts.Tol, nil)
	if iters == 0 {
		// Nothing ran: the last completed iterate is the starting point
		// (with ResetFast the engine buffer may hold a prior solve, so
		// it is not read).
		if start != nil {
			copy(dst, start)
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		return iters, delta, converged, err
	}
	copy(dst, s.eng.Beliefs())
	return iters, delta, converged, err
}

// Close releases the kernel engine and its pooled workspace. Close is
// idempotent; the engine must not be used afterwards.
func (s *Engine) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.eng.Close()
	s.ws.Release()
}

// Run solves the binary steady-state system iteratively:
// b ← e + c1·A·b − c2·D·b starting from b = 0. e holds the class-0
// residual of the explicit beliefs (0 for unlabeled nodes).
func Run(g *graph.Graph, e []float64, hhat float64, opts Options) (*Result, error) {
	n := g.N()
	if len(e) != n {
		return nil, fmt.Errorf("fabp: explicit belief vector length %d does not match n=%d: %w", len(e), n, errs.ErrDimensionMismatch)
	}
	eng, err := NewEngine(g, hhat, opts)
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	res := &Result{B: make([]float64, n)}
	res.Iterations, res.Delta, res.Converged, err = eng.SolveInto(context.Background(), res.B, e)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Message returns the steady-state residual message of Eq. 33,
//
//	mˆst = 4ĥ/(1−4ĥ²)·bˆs − 8ĥ²/(1−4ĥ²)·bˆt,
//
// given the endpoint beliefs. Provided mainly for documentation and
// tests; Run works directly on beliefs.
func Message(hhat, bs, bt float64) float64 {
	den := 1 - 4*hhat*hhat
	return 4*hhat/den*bs - 8*hhat*hhat/den*bt
}
