package fabp

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/errs"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linbp"
	"repro/internal/xrand"
)

func TestCoefficients(t *testing.T) {
	c1, c2 := Coefficients(0.1)
	den := 1 - 0.04
	if math.Abs(c1-0.2/den) > 1e-15 || math.Abs(c2-0.04/den) > 1e-15 {
		t.Fatalf("c1=%v c2=%v", c1, c2)
	}
}

func TestCoefficientsPanicAtHalf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic at |ĥ| = 1/2")
		}
	}()
	Coefficients(0.5)
}

func TestRunSolvesFixedPoint(t *testing.T) {
	g := gen.Grid(4, 4)
	e := make([]float64, 16)
	e[0], e[15] = 0.3, -0.2
	res, err := Run(g, e, 0.08, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: delta %v", res.Delta)
	}
	// Verify the fixed-point equation b = e + c1·A·b − c2·D·b directly.
	c1, c2 := Coefficients(0.08)
	a := g.Adjacency()
	d := g.WeightedDegrees()
	ab := a.MulVec(res.B)
	for s := range res.B {
		want := e[s] + c1*ab[s] - c2*d[s]*res.B[s]
		if math.Abs(res.B[s]-want) > 1e-9 {
			t.Fatalf("node %d: fixed point violated: %v vs %v", s, res.B[s], want)
		}
	}
}

// TestMatchesLinBPForSmallH: Appendix E shows the binary system equals
// k=2 LinBP up to O(ĥ³) terms (the (1−4ĥ²)⁻¹ factors). For small ĥ the
// two must agree closely; the gap must shrink like ĥ³ (factor ≳ 100 for
// a 10× smaller ĥ) — checked loosely as ≥ 10× here.
func TestMatchesLinBPForSmallH(t *testing.T) {
	g := gen.Grid(3, 3)
	n := g.N()
	eScalar := make([]float64, n)
	eScalar[0], eScalar[8] = 0.1, -0.1
	gap := func(hhat float64) float64 {
		res, err := Run(g, eScalar, hhat, Options{})
		if err != nil {
			t.Fatal(err)
		}
		e2 := beliefs.New(n, 2)
		for s, v := range eScalar {
			if v != 0 {
				e2.Set(s, []float64{v, -v})
			}
		}
		h2 := coupling.Heterophily(hhat) // [[−ĥ, ĥ],[ĥ, −ĥ]]... sign flip below
		// The binary coupling of Appendix E is [[ĥ, −ĥ],[−ĥ, ĥ]]: homophily.
		h2 = h2.Scaled(-1)
		lres, err := linbp.Run(g, e2, h2, linbp.Options{EchoCancellation: true, MaxIter: 2000, Tol: 1e-14})
		if err != nil {
			t.Fatal(err)
		}
		var maxGap float64
		for s := 0; s < n; s++ {
			if d := math.Abs(res.B[s] - lres.Beliefs.Row(s)[0]); d > maxGap {
				maxGap = d
			}
		}
		return maxGap
	}
	g1, g2 := gap(0.1), gap(0.01)
	if g1 > 1e-3 {
		t.Fatalf("FABP and LinBP too far apart at ĥ=0.1: %v", g1)
	}
	if g2 > g1/10 {
		t.Fatalf("gap must shrink ~cubically: ĥ=0.1 → %v, ĥ=0.01 → %v", g1, g2)
	}
}

func TestAntisymmetryOfBinaryBeliefs(t *testing.T) {
	// The binary LinBP belief matrix has rows [b, −b]; FABP's scalar b
	// must match class 0 and negate for class 1 — implicitly guaranteed,
	// but verify via LinBP's full output.
	g := gen.Torus()
	e2 := beliefs.New(8, 2)
	e2.Set(0, []float64{0.2, -0.2})
	h := coupling.Heterophily(0.05).Scaled(-1)
	lres, err := linbp.Run(g, e2, h, linbp.Options{MaxIter: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		row := lres.Beliefs.Row(s)
		if math.Abs(row[0]+row[1]) > 1e-12 {
			t.Fatalf("binary beliefs must be antisymmetric: %v", row)
		}
	}
}

func TestHeterophilyNegativeH(t *testing.T) {
	// Negative ĥ (heterophily) flips the sign of odd-distance nodes.
	g := graph.New(3)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(1, 2)
	e := []float64{0.3, 0, 0}
	res, err := Run(g, e, -0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.B[1] >= 0 {
		t.Fatalf("neighbor must flip under heterophily: %v", res.B)
	}
	if res.B[2] <= 0 {
		t.Fatalf("two-hop neighbor must flip back: %v", res.B)
	}
}

func TestMessageFormula(t *testing.T) {
	m := Message(0.1, 1, 0.5)
	den := 1 - 0.04
	want := 0.4/den - 0.08*0.5/den
	if math.Abs(m-want) > 1e-15 {
		t.Fatalf("Message = %v, want %v", m, want)
	}
}

func TestRunLengthMismatch(t *testing.T) {
	g := gen.Torus()
	if _, err := Run(g, make([]float64, 3), 0.1, Options{}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestDivergenceForLargeH(t *testing.T) {
	// On the 3-regular-core torus, large ĥ diverges (c1·ρ(A) > 1). The
	// geometric growth overflows float64 partway through the budget,
	// and the kernel reports that as a typed non-finite error instead
	// of spinning out the remaining iterations on Inf deltas.
	g := gen.Torus()
	e := make([]float64, 8)
	e[0] = 0.3
	res, err := Run(g, e, 0.45, Options{MaxIter: 300})
	if err != nil {
		if !errors.Is(err, errs.ErrNonFinite) {
			t.Fatalf("divergence err = %v, want ErrNonFinite", err)
		}
		return
	}
	if res.Converged {
		t.Fatal("expected divergence at ĥ = 0.45")
	}
}

// TestEngineWarmStart pins the scalar warm-start path: restarting at
// the previous fixpoint converges in fewer Jacobi rounds to the same
// answer.
func TestEngineWarmStart(t *testing.T) {
	g := gen.Kronecker(5)
	rng := xrand.New(7)
	e := make([]float64, g.N())
	for i := range e {
		e[i] = (rng.Float64() - 0.5) * 0.1
	}
	eng, err := NewEngine(g, 0.002, Options{MaxIter: 500, Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	cold := make([]float64, g.N())
	coldIters, _, converged, err := eng.SolveInto(ctx, cold, e)
	if err != nil || !converged {
		t.Fatalf("cold solve: converged=%v err=%v", converged, err)
	}
	warm := make([]float64, g.N())
	warmIters, _, converged, err := eng.SolveFromInto(ctx, warm, e, cold)
	if err != nil || !converged {
		t.Fatalf("warm solve: err=%v", err)
	}
	if warmIters >= coldIters {
		t.Errorf("warm start took %d rounds, cold %d", warmIters, coldIters)
	}
	for i := range warm {
		d := warm[i] - cold[i]
		if d < 0 {
			d = -d
		}
		if d > 1e-10 {
			t.Fatalf("warm fixpoint diverges at %d by %g", i, d)
		}
	}
	if _, _, _, err := eng.SolveFromInto(ctx, warm, e, make([]float64, 3)); err == nil {
		t.Error("mis-shaped start accepted")
	}
}
