package fabp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/errs"
	"repro/internal/kernel"
	"repro/internal/sparse"
)

// ResidualEngine is the residual-scheduled counterpart of Engine: the
// k = 1 scalar collapse of Appendix E served by the push-based
// relaxation plane instead of synchronous Jacobi rounds. Like Engine
// it works on flat scalar vectors in the layout order; the caller
// (core's prepared-solver path) owns the collapse/expand and any node
// relabeling. Steady-state solves perform zero allocations.
//
// A ResidualEngine is not safe for concurrent use. It holds no
// goroutines; there is nothing to close.
type ResidualEngine struct {
	eng      *kernel.ResidualEngine
	n        int
	maxRelax int
}

// NewResidualEngineCSR prepares a residual-scheduled binary solver
// over an explicit adjacency layout, mirroring NewEngineCSR. opts.Tol
// is the relaxation tolerance and must be positive (the residual
// schedule has no fixed-round mode); opts.MaxIter bounds the work at
// MaxIter·n row relaxations. opts.PartitionStarts is ignored — the
// plane is sequential.
func NewResidualEngineCSR(a *sparse.CSR, d []float64, hhat float64, opts Options) (*ResidualEngine, error) {
	opts = opts.withDefaults()
	if opts.Tol <= 0 {
		return nil, fmt.Errorf("fabp: residual schedule needs a positive tolerance, got %v: %w", opts.Tol, errs.ErrInvalidInput)
	}
	if math.Abs(hhat) >= 0.5 {
		return nil, fmt.Errorf("fabp: |ĥ| = %v must be < 1/2: %w", hhat, errs.ErrInvalidCoupling)
	}
	c1, c2 := Coefficients(hhat)
	eng, err := kernel.NewResidual(kernel.Config{
		A:          a,
		D:          d,
		SymmetricA: true,
		H:          dense.NewFromRows([][]float64{{c1}}),
		EchoH:      dense.NewFromRows([][]float64{{c2}}),
	}, opts.Tol)
	if err != nil {
		return nil, fmt.Errorf("fabp: %w", err)
	}
	return &ResidualEngine{eng: eng, n: a.Rows(), maxRelax: opts.MaxIter * a.Rows()}, nil
}

// SolveSeeded runs the residual-scheduled scalar solve and writes the
// final beliefs into dst (length n, overwritten, layout order). A nil
// start is the cold solve; a non-nil start seeds the warm solve, with
// touched (layout-order rows, deduplicated) restricting the residual
// recomputation to the rows a delta perturbed — nil touched recomputes
// every row. Return values mirror kernel.ResidualEngine.Run, with dst
// holding the current iterate at every exit.
//
//lsbp:hotpath
func (s *ResidualEngine) SolveSeeded(ctx context.Context, dst, e, start []float64, touched []int32) (relaxed, peak int, maxResid float64, converged bool, err error) {
	if len(e) != s.n || len(dst) != s.n {
		return 0, 0, 0, false, fmt.Errorf("fabp: belief vector lengths %d/%d do not match n=%d: %w", len(e), len(dst), s.n, errs.ErrDimensionMismatch)
	}
	if start == nil {
		s.eng.SeedExplicit(e)
	} else {
		if len(start) != s.n {
			return 0, 0, 0, false, fmt.Errorf("fabp: start vector length %d does not match n=%d: %w", len(start), s.n, errs.ErrDimensionMismatch)
		}
		s.eng.SeedWarm(start, e, touched)
	}
	relaxed, peak, maxResid, converged, err = s.eng.Run(ctx, s.maxRelax)
	copy(dst, s.eng.Beliefs())
	return relaxed, peak, maxResid, converged, err
}
