// Package gen builds every synthetic workload the paper's evaluation
// uses: the deterministic Kronecker graph family of Fig. 6a, the small
// example graphs of Fig. 5, a stochastic block model for coupling-driven
// scenarios like the e-bay fraud example of Fig. 1c, and a DBLP-like
// heterogeneous graph standing in for the real DBLP dataset of Fig. 11
// (which is not available offline; see DESIGN.md §4 for the
// substitution argument).
package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/xrand"
)

// Torus returns the 8-node "torus" of Fig. 5c: an inner 4-cycle
// v5−v6−v7−v8 with one pendant attached to each cycle node (v1−v5,
// v2−v6, v3−v7, v4−v8). Node ids are 0-based, so v1 = 0 … v8 = 7.
//
// This topology is pinned down by Example 20: ρ(A) = 1+√2 ≈ 2.414,
// node v4 has geodesic number 3 with exactly the two shortest paths
// v1→v5→v8→v4 and v3→v7→v8→v4, and the norm-based convergence bounds
// come out as εH ≲ 0.360 (LinBP) and εH ≲ 0.455 (LinBP*).
func Torus() *graph.Graph {
	g := graph.New(8)
	for i := 0; i < 4; i++ {
		g.AddUnitEdge(4+i, 4+(i+1)%4) // inner cycle v5..v8
		g.AddUnitEdge(i, 4+i)         // pendant vi − v(i+4)
	}
	return g
}

// Fig5 returns the 7-node graph of Fig. 5a/5b used by Examples 16 and 18
// (v1 = 0 … v7 = 6). The explicit nodes in those examples are v2 and v7.
func Fig5() *graph.Graph {
	g := graph.New(7)
	for _, e := range [][2]int{
		{0, 2}, {0, 3}, {0, 4}, // v1−v3, v1−v4, v1−v5
		{1, 2}, {1, 3}, // v2−v3, v2−v4
		{2, 6}, // v3−v7
		{3, 4}, // v4−v5
		{4, 5}, // v5−v6
		{5, 6}, // v6−v7
	} {
		g.AddUnitEdge(e[0], e[1])
	}
	return g
}

// KroneckerSeedEdges is the directed-entry count of the Kronecker seed:
// the 3-node star v0−v1, v0−v2 has 4 nonzero adjacency entries, so the
// p-th Kronecker power has 3^p nodes and 4^p directed entries — exactly
// the node and edge counts of Fig. 6a (graph #i has power 4+i).
const KroneckerSeedEdges = 4

// Kronecker returns the deterministic Kronecker power graph used as
// synthetic workload: the p-fold Kronecker product of the 3-node star's
// adjacency matrix with itself. The result has 3^p nodes and 4^p/2
// undirected edges and reproduces the counts of Fig. 6a for p = 5…13.
// It panics for p < 1 or p > 13 (beyond 13 the edge list no longer fits
// in reasonable memory).
func Kronecker(p int) *graph.Graph {
	if p < 1 || p > 13 {
		panic(fmt.Sprintf("gen: Kronecker power %d out of range [1,13]", p))
	}
	// Seed: star with center 0. Directed entries.
	type pair struct{ u, v int32 }
	seed := []pair{{0, 1}, {1, 0}, {0, 2}, {2, 0}}
	pairs := seed
	for i := 1; i < p; i++ {
		next := make([]pair, 0, len(pairs)*len(seed))
		for _, pr := range pairs {
			for _, s := range seed {
				next = append(next, pair{pr.u*3 + s.u, pr.v*3 + s.v})
			}
		}
		pairs = next
	}
	n := 1
	for i := 0; i < p; i++ {
		n *= 3
	}
	g := graph.New(n)
	g.ReserveEdges(len(pairs) / 2)
	for _, pr := range pairs {
		if pr.u < pr.v { // each undirected edge once; the seed has no self-loops
			g.AddUnitEdge(int(pr.u), int(pr.v))
		}
	}
	return g
}

// KroneckerGraphNumber maps the paper's graph numbering (Fig. 6a,
// #1 … #9) to the Kronecker power (5 … 13).
func KroneckerGraphNumber(num int) int {
	if num < 1 || num > 9 {
		panic(fmt.Sprintf("gen: graph number %d out of range [1,9]", num))
	}
	return num + 4
}

// Grid returns the rows×cols 2D grid graph (no wraparound), nodes in
// row-major order. Useful as an auxiliary loopy test topology.
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	g.ReserveEdges(rows*(cols-1) + (rows-1)*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddUnitEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddUnitEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Random returns an Erdős–Rényi-style graph with n nodes and m distinct
// undirected edges (no self-loops), drawn deterministically from seed.
func Random(n, m int, seed uint64) *graph.Graph {
	if n < 2 {
		panic("gen: Random needs n >= 2")
	}
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		panic(fmt.Sprintf("gen: %d edges exceed the %d possible", m, maxEdges))
	}
	rng := xrand.New(seed)
	g := graph.New(n)
	g.ReserveEdges(m)
	seen := make(map[[2]int]bool, m)
	for len(seen) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		g.AddUnitEdge(u, v)
	}
	return g
}

// SBM draws a stochastic block model: classSizes[c] nodes of class c,
// and an undirected edge between nodes of classes c1, c2 with probability
// prob[c1][c2] (symmetric). It returns the graph and the class of every
// node. This is the generator behind the fraud example: Fig. 1c's
// coupling matrix, read as edge densities, produces the near-bipartite
// fraudster–accomplice cores the paper describes.
func SBM(classSizes []int, prob [][]float64, seed uint64) (*graph.Graph, []int) {
	k := len(classSizes)
	if len(prob) != k {
		panic("gen: SBM prob matrix size mismatch")
	}
	n := 0
	labels := []int{}
	for c, size := range classSizes {
		if size < 0 {
			panic("gen: negative class size")
		}
		n += size
		for i := 0; i < size; i++ {
			labels = append(labels, c)
		}
	}
	rng := xrand.New(seed)
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := prob[labels[u]][labels[v]]
			if p < 0 || p > 1 {
				panic(fmt.Sprintf("gen: SBM probability %v out of [0,1]", p))
			}
			if rng.Float64() < p {
				g.AddUnitEdge(u, v)
			}
		}
	}
	return g, labels
}

// DBLPNodeKind identifies the heterogeneous node types of the DBLP-like
// graph (papers connect to their authors, venue, and title terms).
type DBLPNodeKind int

// Node kinds of the DBLP-like graph.
const (
	DBLPPaper DBLPNodeKind = iota
	DBLPAuthor
	DBLPConference
	DBLPTerm
)

// DBLPGraph is the synthetic stand-in for the DBLP dataset of Fig. 11:
// a heterogeneous graph of papers, authors, conferences, and terms over
// four research areas (AI, DB, DM, IR in the paper).
type DBLPGraph struct {
	G *graph.Graph
	// Kind and TrueClass have one entry per node. TrueClass is the
	// research area (0..3) the generator assigned; terms get the class
	// they are most associated with.
	Kind      []DBLPNodeKind
	TrueClass []int
}

// DBLPConfig sizes the synthetic DBLP-like graph. The zero value is not
// valid; use DefaultDBLPConfig.
type DBLPConfig struct {
	PapersPerArea  int     // papers per research area
	AuthorsPerArea int     // authors per research area
	ConfsPerArea   int     // conferences per research area
	TermsPerArea   int     // area-specific terms
	SharedTerms    int     // generic terms used by every area
	AuthorsPerPap  int     // authors cited per paper
	TermsPerPaper  int     // terms per paper title
	CrossAreaProb  float64 // probability an author link crosses areas
	SharedTermProb float64 // probability a term slot picks a shared term
	Seed           uint64
}

// DefaultDBLPConfig returns a configuration producing roughly 4,600
// nodes and 40,000 edges — a 1:8 scale model of the paper's DBLP graph
// (36,138 nodes, 341,564 directed entries) with the same topology mix.
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{
		PapersPerArea:  800,
		AuthorsPerArea: 240,
		ConfsPerArea:   5,
		TermsPerArea:   80,
		SharedTerms:    60,
		AuthorsPerPap:  3,
		TermsPerPaper:  6,
		CrossAreaProb:  0.08,
		SharedTermProb: 0.25,
		Seed:           7,
	}
}

// DBLP generates the synthetic DBLP-like heterogeneous graph.
func DBLP(cfg DBLPConfig) *DBLPGraph {
	const areas = 4
	if cfg.PapersPerArea <= 0 || cfg.AuthorsPerArea <= 0 || cfg.ConfsPerArea <= 0 ||
		cfg.TermsPerArea <= 0 || cfg.AuthorsPerPap <= 0 || cfg.TermsPerPaper <= 0 {
		panic("gen: DBLP config has non-positive sizes")
	}
	nPapers := areas * cfg.PapersPerArea
	nAuthors := areas * cfg.AuthorsPerArea
	nConfs := areas * cfg.ConfsPerArea
	nTerms := areas*cfg.TermsPerArea + cfg.SharedTerms
	n := nPapers + nAuthors + nConfs + nTerms

	d := &DBLPGraph{
		G:         graph.New(n),
		Kind:      make([]DBLPNodeKind, n),
		TrueClass: make([]int, n),
	}
	// Every paper links to its venue, authors, and title terms.
	d.G.ReserveEdges(nPapers * (1 + cfg.AuthorsPerPap + cfg.TermsPerPaper))
	paperID := func(area, i int) int { return area*cfg.PapersPerArea + i }
	authorID := func(area, i int) int { return nPapers + area*cfg.AuthorsPerArea + i }
	confID := func(area, i int) int { return nPapers + nAuthors + area*cfg.ConfsPerArea + i }
	termID := func(idx int) int { return nPapers + nAuthors + nConfs + idx }

	for area := 0; area < areas; area++ {
		for i := 0; i < cfg.PapersPerArea; i++ {
			id := paperID(area, i)
			d.Kind[id] = DBLPPaper
			d.TrueClass[id] = area
		}
		for i := 0; i < cfg.AuthorsPerArea; i++ {
			id := authorID(area, i)
			d.Kind[id] = DBLPAuthor
			d.TrueClass[id] = area
		}
		for i := 0; i < cfg.ConfsPerArea; i++ {
			id := confID(area, i)
			d.Kind[id] = DBLPConference
			d.TrueClass[id] = area
		}
	}
	for idx := 0; idx < nTerms; idx++ {
		id := termID(idx)
		d.Kind[id] = DBLPTerm
		if idx < areas*cfg.TermsPerArea {
			d.TrueClass[id] = idx / cfg.TermsPerArea
		} else {
			d.TrueClass[id] = idx % areas // shared terms: arbitrary area
		}
	}

	rng := xrand.New(cfg.Seed)
	// Avoid parallel edges per paper with a small set.
	for area := 0; area < areas; area++ {
		for i := 0; i < cfg.PapersPerArea; i++ {
			p := paperID(area, i)
			used := map[int]bool{}
			// Authors: mostly same-area, occasionally cross-area.
			for a := 0; a < cfg.AuthorsPerPap; a++ {
				aArea := area
				if rng.Float64() < cfg.CrossAreaProb {
					aArea = rng.Intn(areas)
				}
				id := authorID(aArea, rng.Intn(cfg.AuthorsPerArea))
				if used[id] {
					continue
				}
				used[id] = true
				d.G.AddUnitEdge(p, id)
			}
			// Venue: always same-area.
			d.G.AddUnitEdge(p, confID(area, rng.Intn(cfg.ConfsPerArea)))
			// Terms: area-specific or shared.
			for tSlot := 0; tSlot < cfg.TermsPerPaper; tSlot++ {
				var id int
				if cfg.SharedTerms > 0 && rng.Float64() < cfg.SharedTermProb {
					id = termID(areas*cfg.TermsPerArea + rng.Intn(cfg.SharedTerms))
				} else {
					id = termID(area*cfg.TermsPerArea + rng.Intn(cfg.TermsPerArea))
				}
				if used[id] {
					continue
				}
				used[id] = true
				d.G.AddUnitEdge(p, id)
			}
		}
	}
	return d
}

// FraudConfig sizes the synthetic online-auction network of the fraud
// example (Fig. 1c): honest users, accomplices, and fraudsters with
// edge densities proportional to the coupling matrix.
type FraudConfig struct {
	Honest, Accomplice, Fraudster int
	// Density scales Fig. 1c's affinities into edge probabilities.
	Density float64
	Seed    uint64
}

// DefaultFraudConfig returns a small auction network: many honest users,
// few accomplices and fraudsters, as in online-auction fraud scenarios.
func DefaultFraudConfig() FraudConfig {
	return FraudConfig{Honest: 300, Accomplice: 60, Fraudster: 40, Density: 0.05, Seed: 11}
}

// Fraud generates the auction graph and returns it with the true class
// of every node (0 = honest, 1 = accomplice, 2 = fraudster).
func Fraud(cfg FraudConfig) (*graph.Graph, []int) {
	h := cfg.Density
	// Fig. 1c as relative edge densities: H/A/F.
	prob := [][]float64{
		{0.6 * h, 0.3 * h, 0.1 * h},
		{0.3 * h, 0.0 * h, 0.7 * h},
		{0.1 * h, 0.7 * h, 0.2 * h},
	}
	return SBM([]int{cfg.Honest, cfg.Accomplice, cfg.Fraudster}, prob, cfg.Seed)
}
