package gen

import (
	"math"
	"testing"

	"repro/internal/spectral"
)

func TestTorusShape(t *testing.T) {
	g := Torus()
	if g.N() != 8 || g.NumEdges() != 8 {
		t.Fatalf("torus: n=%d e=%d", g.N(), g.NumEdges())
	}
	// Degrees: pendants 1, cycle nodes 3.
	for i := 0; i < 4; i++ {
		if g.Degree(i) != 1 {
			t.Fatalf("pendant v%d degree %d", i+1, g.Degree(i))
		}
		if g.Degree(4+i) != 3 {
			t.Fatalf("cycle v%d degree %d", i+5, g.Degree(4+i))
		}
	}
}

func TestTorusSpectralRadius(t *testing.T) {
	rho, err := spectral.RadiusCSR(Torus().Adjacency(), spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-(1+math.Sqrt2)) > 1e-8 {
		t.Fatalf("rho = %v, want 1+sqrt2", rho)
	}
}

func TestTorusExample20Geodesics(t *testing.T) {
	g := Torus()
	geo := g.GeodesicNumbers([]int{0, 1, 2}) // explicit: v1, v2, v3
	if geo[3] != 3 {
		t.Fatalf("geodesic(v4) = %d, want 3", geo[3])
	}
	want := []int{0, 0, 0, 3, 1, 1, 1, 2}
	for i := range want {
		if geo[i] != want[i] {
			t.Fatalf("geo = %v, want %v", geo, want)
		}
	}
}

func TestFig5MatchesExample16(t *testing.T) {
	g := Fig5()
	if g.N() != 7 || g.NumEdges() != 9 {
		t.Fatalf("fig5: n=%d e=%d", g.N(), g.NumEdges())
	}
	geo := g.GeodesicNumbers([]int{1, 6}) // v2, v7 explicit
	if geo[0] != 2 {
		t.Fatalf("geodesic(v1) = %d, want 2", geo[0])
	}
}

func TestKroneckerCountsFig6a(t *testing.T) {
	// Fig. 6a rows #1..#4 (powers 5..8): n = 3^p, directed entries = 4^p.
	wantN := []int{243, 729, 2187, 6561}
	wantE := []int{1024, 4096, 16384, 65536}
	for i := 0; i < 4; i++ {
		p := KroneckerGraphNumber(i + 1)
		g := Kronecker(p)
		if g.N() != wantN[i] {
			t.Fatalf("graph #%d: n = %d, want %d", i+1, g.N(), wantN[i])
		}
		if got := g.DirectedEdgeCount(); got != wantE[i] {
			t.Fatalf("graph #%d: directed entries = %d, want %d", i+1, got, wantE[i])
		}
	}
}

func TestKroneckerSymmetricNoSelfLoops(t *testing.T) {
	g := Kronecker(5)
	a := g.Adjacency()
	if !a.IsSymmetric() {
		t.Fatal("Kronecker adjacency must be symmetric")
	}
	for i := 0; i < g.N(); i++ {
		if a.At(i, i) != 0 {
			t.Fatalf("self-loop at %d", i)
		}
	}
}

func TestKroneckerPowerBounds(t *testing.T) {
	for _, p := range []int{0, 14} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("power %d: expected panic", p)
				}
			}()
			Kronecker(p)
		}()
	}
}

func TestKroneckerGraphNumberBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KroneckerGraphNumber(0)
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("n = %d", g.N())
	}
	// Edges: 3*3 horizontal + 2*4 vertical = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("e = %d, want 17", g.NumEdges())
	}
	// Corner degree 2, center degree 4.
	if g.Degree(0) != 2 || g.Degree(5) != 4 {
		t.Fatalf("degrees: corner %d center %d", g.Degree(0), g.Degree(5))
	}
}

func TestRandomGraph(t *testing.T) {
	g := Random(50, 100, 3)
	if g.N() != 50 || g.NumEdges() != 100 {
		t.Fatalf("n=%d e=%d", g.N(), g.NumEdges())
	}
	// No self loops, no duplicate edges.
	seen := map[[2]int]bool{}
	for _, e := range g.SortedEdges() {
		if e.S == e.T {
			t.Fatal("self loop")
		}
		key := [2]int{e.S, e.T}
		if seen[key] {
			t.Fatal("duplicate edge")
		}
		seen[key] = true
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(30, 60, 9)
	b := Random(30, 60, 9)
	ae, be := a.SortedEdges(), b.SortedEdges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("same seed must give same graph")
		}
	}
}

func TestRandomTooManyEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Random(3, 4, 1)
}

func TestSBMRespectsDensities(t *testing.T) {
	sizes := []int{100, 100}
	prob := [][]float64{{0.2, 0.01}, {0.01, 0.2}}
	g, labels := SBM(sizes, prob, 5)
	if g.N() != 200 || len(labels) != 200 {
		t.Fatal("SBM sizing wrong")
	}
	var within, across int
	for _, e := range g.Edges() {
		if labels[e.S] == labels[e.T] {
			within++
		} else {
			across++
		}
	}
	// Expected within ≈ 2 * C(100,2)*0.2 = 1980, across ≈ 10000*0.01 = 100.
	if within < 1500 || within > 2500 {
		t.Fatalf("within-class edges = %d, want ~1980", within)
	}
	if across < 50 || across > 200 {
		t.Fatalf("across-class edges = %d, want ~100", across)
	}
}

func TestSBMZeroProbBlockEmpty(t *testing.T) {
	// Accomplice–accomplice affinity is 0 in Fig. 1c: no such edges.
	g, labels := Fraud(DefaultFraudConfig())
	for _, e := range g.Edges() {
		if labels[e.S] == 1 && labels[e.T] == 1 {
			t.Fatal("accomplice–accomplice edge must not exist (Fig. 1c has 0 affinity)")
		}
	}
}

func TestFraudNearBipartiteCore(t *testing.T) {
	g, labels := Fraud(DefaultFraudConfig())
	// Fraudsters should interact mostly with accomplices.
	var fa, fh, ff int
	for _, e := range g.Edges() {
		cs, ct := labels[e.S], labels[e.T]
		if cs > ct {
			cs, ct = ct, cs
		}
		switch {
		case cs == 1 && ct == 2:
			fa++
		case cs == 0 && ct == 2:
			fh++
		case cs == 2 && ct == 2:
			ff++
		}
	}
	if fa <= fh || fa <= ff {
		t.Fatalf("fraudster edges: F–A=%d F–H=%d F–F=%d; F–A should dominate", fa, fh, ff)
	}
}

func TestDBLPStructure(t *testing.T) {
	cfg := DefaultDBLPConfig()
	cfg.PapersPerArea = 50
	cfg.AuthorsPerArea = 20
	cfg.TermsPerArea = 15
	cfg.SharedTerms = 10
	d := DBLP(cfg)
	n := d.G.N()
	if len(d.Kind) != n || len(d.TrueClass) != n {
		t.Fatal("metadata sizing wrong")
	}
	// All edges must touch a paper (the graph is paper-centric).
	for _, e := range d.G.Edges() {
		if d.Kind[e.S] != DBLPPaper && d.Kind[e.T] != DBLPPaper {
			t.Fatalf("edge %v does not touch a paper", e)
		}
	}
	// Every paper has a venue edge.
	for id := 0; id < 4*cfg.PapersPerArea; id++ {
		hasConf := false
		d.G.Neighbors(id, func(t int, w float64) {
			if d.Kind[t] == DBLPConference {
				hasConf = true
			}
		})
		if !hasConf {
			t.Fatalf("paper %d has no conference", id)
		}
	}
	// Class distribution: every area appears.
	seen := map[int]int{}
	for _, c := range d.TrueClass {
		seen[c]++
	}
	for c := 0; c < 4; c++ {
		if seen[c] == 0 {
			t.Fatalf("area %d missing", c)
		}
	}
}

func TestDBLPHomophilyDominates(t *testing.T) {
	cfg := DefaultDBLPConfig()
	cfg.PapersPerArea = 100
	d := DBLP(cfg)
	var same, diff int
	for _, e := range d.G.Edges() {
		if d.TrueClass[e.S] == d.TrueClass[e.T] {
			same++
		} else {
			diff++
		}
	}
	if same < 2*diff {
		t.Fatalf("homophily too weak: same=%d diff=%d", same, diff)
	}
}

func TestDBLPInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DBLP(DBLPConfig{})
}

// TestKroneckerComponentsHaveStructure sanity-checks that the graph is a
// meaningful test workload: a hub-dominated structure with max degree
// 2^p on the center-power node.
func TestKroneckerDegreeDistribution(t *testing.T) {
	g := Kronecker(5)
	maxDeg := 0
	for i := 0; i < g.N(); i++ {
		if d := g.Degree(i); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg != 32 { // 2^5: the all-center node
		t.Fatalf("max degree = %d, want 32", maxDeg)
	}
	_, count := g.ConnectedComponents()
	if count <= 1 {
		t.Fatalf("star Kronecker powers are disconnected by construction; got %d component", count)
	}
}
