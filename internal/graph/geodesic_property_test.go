package graph

import (
	"testing"

	"repro/internal/xrand"
)

// bruteShortest computes all-pairs shortest hop counts by Floyd–Warshall
// as an oracle for the BFS geodesic numbers.
func bruteShortest(g *Graph) [][]int {
	n := g.N()
	const inf = 1 << 29
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = inf
			}
		}
	}
	for _, e := range g.Edges() {
		if e.S != e.T {
			d[e.S][e.T] = 1
			d[e.T][e.S] = 1
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

// TestGeodesicNumbersMatchFloydWarshall cross-validates BFS geodesics
// against the all-pairs oracle on random graphs and random seed sets.
func TestGeodesicNumbersMatchFloydWarshall(t *testing.T) {
	rng := xrand.New(123)
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(25)
		g := New(n)
		edges := rng.Intn(2 * n)
		for i := 0; i < edges; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddUnitEdge(u, v)
			}
		}
		var seeds []int
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.2 {
				seeds = append(seeds, v)
			}
		}
		if len(seeds) == 0 {
			seeds = []int{0}
		}
		geo := g.GeodesicNumbers(seeds)
		oracle := bruteShortest(g)
		for v := 0; v < n; v++ {
			best := 1 << 29
			for _, s := range seeds {
				if oracle[s][v] < best {
					best = oracle[s][v]
				}
			}
			want := best
			if best >= 1<<29 {
				want = Unreachable
			}
			if geo[v] != want {
				t.Fatalf("trial %d: geodesic[%d] = %d, oracle %d", trial, v, geo[v], want)
			}
		}
	}
}

// TestModifiedAdjacencyIsDAG checks Lemma 17(1) on random instances:
// A* never contains a directed cycle (verified via topological order by
// geodesic levels, which the construction guarantees).
func TestModifiedAdjacencyIsDAG(t *testing.T) {
	rng := xrand.New(321)
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(30)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddUnitEdge(u, v)
			}
		}
		seeds := []int{rng.Intn(n), rng.Intn(n)}
		geo := g.GeodesicNumbers(seeds)
		astar := g.ModifiedAdjacency(geo)
		for i := 0; i < n; i++ {
			astar.Row(i, func(j int, w float64) {
				if geo[j] != geo[i]+1 {
					t.Fatalf("trial %d: edge %d→%d violates the level order (%d→%d)",
						trial, i, j, geo[i], geo[j])
				}
			})
		}
	}
}

// TestEdgeMatrixRegularGraphRadius: on a d-regular graph every directed
// edge has exactly d−1 successors, so row counts must all equal d−1.
func TestEdgeMatrixRegularRowCounts(t *testing.T) {
	// 3-regular: the cube graph C4×K2.
	g := New(8)
	for i := 0; i < 4; i++ {
		g.AddUnitEdge(i, (i+1)%4)
		g.AddUnitEdge(4+i, 4+(i+1)%4)
		g.AddUnitEdge(i, 4+i)
	}
	em, dir := g.EdgeMatrix()
	for i := range dir {
		if em.RowNNZ(i) != 2 {
			t.Fatalf("edge %d has %d successors, want 2", i, em.RowNNZ(i))
		}
	}
}
