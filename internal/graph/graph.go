// Package graph provides the weighted undirected graph substrate for the
// reproduction: adjacency construction, the squared-weight degree vector
// the paper's echo-cancellation term needs (Section 5.2), BFS geodesic
// numbers (Definition 14), the modified DAG adjacency A* of Lemma 17,
// connected components, and the directed edge-to-edge matrix used by the
// Mooij–Kappen convergence bound comparison in Appendix G.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// Edge is one undirected weighted edge between nodes S and T.
type Edge struct {
	S, T int
	W    float64
}

// Graph is a weighted undirected graph over nodes 0..N−1.
//
// Internally the graph stores each undirected edge once; the adjacency
// matrix derived from it is symmetric. Parallel edges are allowed and
// their weights accumulate in the adjacency matrix.
type Graph struct {
	n     int
	edges []Edge

	// Lazily built caches, invalidated by AddEdge.
	adj *sparse.CSR
	nbr [][]halfEdge
}

type halfEdge struct {
	to int
	w  float64
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// NumEdges returns the number of stored undirected edges (parallel edges
// counted individually). Note that the paper's edge counts (Fig. 6a)
// count both directions; that convention is DirectedEdgeCount.
func (g *Graph) NumEdges() int { return len(g.edges) }

// DirectedEdgeCount returns the number of nonzero entries of the
// adjacency matrix, i.e. every undirected edge counted in both
// directions and self-loops once — the convention of Fig. 6a.
func (g *Graph) DirectedEdgeCount() int { return g.Adjacency().NNZ() }

// Edges returns the stored undirected edge list (do not modify).
func (g *Graph) Edges() []Edge { return g.edges }

// AddEdge adds the undirected edge s−t with weight w.
// It panics on out-of-range endpoints or non-positive weight (the paper
// requires w > 0 for weighted graphs, Section 5.2).
func (g *Graph) AddEdge(s, t int, w float64) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", s, t, g.n))
	}
	if w <= 0 {
		panic(fmt.Sprintf("graph: non-positive edge weight %v", w))
	}
	g.edges = append(g.edges, Edge{S: s, T: t, W: w})
	g.adj = nil
	g.nbr = nil
}

// AddUnitEdge adds the undirected edge s−t with weight 1.
func (g *Graph) AddUnitEdge(s, t int) { g.AddEdge(s, t, 1) }

// RemoveEdges deletes every stored edge between the endpoint pairs of
// edges (parallel edges between a pair all go; weights are ignored, and
// pairs with no stored edge are skipped), returning the number of edges
// removed. This is the topology-shrink half of the dynamic serving
// plane's Update stream; like AddEdge it invalidates the lazy caches.
func (g *Graph) RemoveEdges(edges []Edge) int {
	if len(edges) == 0 {
		return 0
	}
	kill := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		s, t := e.S, e.T
		if s > t {
			s, t = t, s
		}
		kill[[2]int{s, t}] = true
	}
	w := 0
	for _, e := range g.edges {
		s, t := e.S, e.T
		if s > t {
			s, t = t, s
		}
		if kill[[2]int{s, t}] {
			continue
		}
		g.edges[w] = e
		w++
	}
	removed := len(g.edges) - w
	if removed > 0 {
		g.edges = g.edges[:w]
		g.adj = nil
		g.nbr = nil
	}
	return removed
}

// ReserveEdges pre-sizes the edge list for at least m undirected edges
// in total. Generators that know their edge counts (Kronecker powers,
// grids) call it so building large graphs does not regrow the list.
func (g *Graph) ReserveEdges(m int) {
	if m <= cap(g.edges) {
		return
	}
	edges := make([]Edge, len(g.edges), m)
	copy(edges, g.edges)
	g.edges = edges
}

// Adjacency returns the symmetric weighted adjacency matrix A as CSR.
// The result is cached until the next AddEdge.
func (g *Graph) Adjacency() *sparse.CSR {
	if g.adj == nil {
		b := sparse.NewBuilder(g.n, g.n)
		b.Reserve(2 * len(g.edges))
		for _, e := range g.edges {
			b.AddSym(e.S, e.T, e.W)
		}
		g.adj = b.ToCSR()
	}
	return g.adj
}

// Neighbors invokes fn for every neighbor of node s with the accumulated
// edge weight, in ascending node order.
func (g *Graph) Neighbors(s int, fn func(t int, w float64)) {
	g.buildNbr()
	for _, h := range g.nbr[s] {
		fn(h.to, h.w)
	}
}

// Degree returns the number of distinct neighbors of node s.
func (g *Graph) Degree(s int) int {
	g.buildNbr()
	return len(g.nbr[s])
}

func (g *Graph) buildNbr() {
	if g.nbr != nil {
		return
	}
	adj := g.Adjacency()
	g.nbr = make([][]halfEdge, g.n)
	for i := 0; i < g.n; i++ {
		row := make([]halfEdge, 0, adj.RowNNZ(i))
		adj.Row(i, func(j int, w float64) {
			row = append(row, halfEdge{to: j, w: w})
		})
		g.nbr[i] = row
	}
}

// WeightedDegrees returns the vector d with d(s) = Σ_t A(s,t)², the
// degree definition Section 5.2 requires for the echo-cancellation term
// ("the degree of a node is the sum of the squared weights to its
// neighbors"). On an unweighted graph this equals the plain degree.
func (g *Graph) WeightedDegrees() []float64 {
	return g.Adjacency().RowSumsSquared()
}

// Unreachable marks a node with no geodesic number (no path to any
// explicitly labeled node).
const Unreachable = -1

// GeodesicNumbers returns, for every node, the length of the shortest
// path to any seed node (Definition 14). Seeds get 0; nodes in components
// without seeds get Unreachable.
func (g *Graph) GeodesicNumbers(seeds []int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	queue := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || s >= g.n {
			panic(fmt.Sprintf("graph: seed %d out of range n=%d", s, g.n))
		}
		if dist[s] == 0 {
			continue // duplicate seed
		}
		dist[s] = 0
		queue = append(queue, s)
	}
	g.buildNbr()
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, h := range g.nbr[u] {
			if dist[h.to] == Unreachable {
				dist[h.to] = dist[u] + 1
				queue = append(queue, h.to)
			}
		}
	}
	return dist
}

// ModifiedAdjacency returns the DAG adjacency A* of Lemma 17 for the
// given geodesic numbers: edges between nodes with equal geodesic numbers
// are removed, and each remaining edge is kept only in the direction from
// lower to higher geodesic number, so A*(s,t) = w iff gs+1 == gt.
// Edges touching unreachable nodes are dropped.
func (g *Graph) ModifiedAdjacency(geodesic []int) *sparse.CSR {
	if len(geodesic) != g.n {
		panic("graph: geodesic vector length mismatch")
	}
	b := sparse.NewBuilder(g.n, g.n)
	b.Reserve(len(g.edges))
	for _, e := range g.edges {
		gs, gt := geodesic[e.S], geodesic[e.T]
		if gs == Unreachable || gt == Unreachable {
			continue
		}
		switch {
		case gs+1 == gt:
			b.Add(e.S, e.T, e.W)
		case gt+1 == gs:
			b.Add(e.T, e.S, e.W)
		}
	}
	return b.ToCSR()
}

// ConnectedComponents returns a component id per node and the number of
// components. Ids are assigned in order of first discovery.
func (g *Graph) ConnectedComponents() (ids []int, count int) {
	g.buildNbr()
	ids = make([]int, g.n)
	for i := range ids {
		ids[i] = -1
	}
	var queue []int
	for start := 0; start < g.n; start++ {
		if ids[start] != -1 {
			continue
		}
		ids[start] = count
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, h := range g.nbr[u] {
				if ids[h.to] == -1 {
					ids[h.to] = count
					queue = append(queue, h.to)
				}
			}
		}
		count++
	}
	return ids, count
}

// EdgeMatrix returns the 2|E|×2|E| directed edge-to-edge matrix used by
// the Mooij–Kappen bound in Appendix G: directed edge (u→v) is connected
// to every directed edge (w→u) with w ≠ v. Entry values are 1 (the bound
// is stated for unweighted potentials). The second return value maps each
// row index to its directed edge.
func (g *Graph) EdgeMatrix() (*sparse.CSR, []Edge) {
	// Enumerate directed edges: each undirected edge yields two.
	dir := make([]Edge, 0, 2*len(g.edges))
	for _, e := range g.edges {
		dir = append(dir, Edge{S: e.S, T: e.T, W: e.W}, Edge{S: e.T, T: e.S, W: e.W})
	}
	// Index directed edges by target node to find (w→u) quickly.
	byTarget := make(map[int][]int)
	for i, e := range dir {
		byTarget[e.T] = append(byTarget[e.T], i)
	}
	b := sparse.NewBuilder(len(dir), len(dir))
	total := 0
	for _, e := range dir {
		total += len(byTarget[e.S])
	}
	b.Reserve(total)
	for i, e := range dir {
		// Row i = edge (u→v); columns: edges (w→u), w ≠ v.
		for _, j := range byTarget[e.S] {
			if dir[j].S == e.T {
				continue
			}
			b.Add(i, j, 1)
		}
	}
	return b.ToCSR(), dir
}

// Clone returns a deep copy of the graph (caches are not copied).
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = append([]Edge(nil), g.edges...)
	return c
}

// Permute returns a copy of the graph with every node relabeled to
// perm[old] = new — the graph-level counterpart of sparse.CSR.Permute,
// used by the prepared solvers to hand BP and SBP a locality-ordered
// network. perm must be a bijection on [0, N).
func (g *Graph) Permute(perm []int) *Graph {
	if len(perm) != g.n {
		panic(fmt.Sprintf("graph: permutation length %d, want %d", len(perm), g.n))
	}
	seen := make([]bool, g.n)
	for old, nw := range perm {
		if nw < 0 || nw >= g.n || seen[nw] {
			panic(fmt.Sprintf("graph: invalid permutation entry perm[%d] = %d", old, nw))
		}
		seen[nw] = true
	}
	c := New(g.n)
	c.edges = make([]Edge, len(g.edges))
	for i, e := range g.edges {
		c.edges[i] = Edge{S: perm[e.S], T: perm[e.T], W: e.W}
	}
	return c
}

// WriteEdgeList writes the graph as "s t w" lines, one per undirected edge.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.S, e.T, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses "s t [w]" lines (w defaults to 1) into a graph with
// n = 1 + max node id. Blank lines and lines starting with '#' are skipped.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	type line struct {
		s, t int
		w    float64
	}
	var lines []line
	maxID := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	ln := 0
	for sc.Scan() {
		ln++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: line %d: want 's t [w]', got %q", ln, text)
		}
		s, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source: %v", ln, err)
		}
		t, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target: %v", ln, err)
		}
		w := 1.0
		if len(fields) == 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", ln, err)
			}
		}
		if s < 0 || t < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", ln)
		}
		if s > maxID {
			maxID = s
		}
		if t > maxID {
			maxID = t
		}
		lines = append(lines, line{s, t, w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := New(maxID + 1)
	g.ReserveEdges(len(lines))
	for _, l := range lines {
		g.AddEdge(l.s, l.t, l.w)
	}
	return g, nil
}

// SortedEdges returns a copy of the edge list in canonical order
// (smaller endpoint first, then lexicographic), useful for stable output.
func (g *Graph) SortedEdges() []Edge {
	out := make([]Edge, len(g.edges))
	for i, e := range g.edges {
		if e.S > e.T {
			e.S, e.T = e.T, e.S
		}
		out[i] = e
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].S != out[j].S {
			return out[i].S < out[j].S
		}
		if out[i].T != out[j].T {
			return out[i].T < out[j].T
		}
		return out[i].W < out[j].W
	})
	return out
}
