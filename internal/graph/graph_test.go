package graph

import (
	"bytes"
	"strings"
	"testing"
)

// fig5a builds the 7-node graph of Fig. 5a/5b: v1 is two hops from the
// explicit nodes v2 and v7. Node ids are 0-based (v1 = 0, ..., v7 = 6).
// Edges follow Example 18's narrative: the matrix as printed in the
// paper text lost the A(1,5)/A(5,1) entries, but the prose explicitly
// discusses "the 4 entries for v1−v3 and v1−v5 in A", so v1−v5 exists.
func fig5a() *Graph {
	g := New(7)
	// v1−v3, v1−v4, v1−v5, v2−v3, v2−v4, v3−v7, v4−v5, v5−v6, v6−v7.
	g.AddUnitEdge(0, 2)
	g.AddUnitEdge(0, 3)
	g.AddUnitEdge(0, 4)
	g.AddUnitEdge(1, 2)
	g.AddUnitEdge(1, 3)
	g.AddUnitEdge(2, 6)
	g.AddUnitEdge(3, 4)
	g.AddUnitEdge(4, 5)
	g.AddUnitEdge(5, 6)
	return g
}

func TestAdjacencySymmetric(t *testing.T) {
	g := fig5a()
	a := g.Adjacency()
	if !a.IsSymmetric() {
		t.Fatal("adjacency must be symmetric")
	}
	if a.NNZ() != 18 {
		t.Fatalf("nnz = %d, want 18 (9 undirected edges)", a.NNZ())
	}
	if g.DirectedEdgeCount() != 18 {
		t.Fatalf("DirectedEdgeCount = %d", g.DirectedEdgeCount())
	}
	if g.NumEdges() != 9 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(2)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 2, 1) },
		func() { g.AddEdge(-1, 0, 1) },
		func() { g.AddEdge(0, 1, 0) },
		func() { g.AddEdge(0, 1, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestParallelEdgesAccumulate(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 2)
	if got := g.Adjacency().At(0, 1); got != 3 {
		t.Fatalf("A(0,1) = %v, want 3", got)
	}
}

func TestNeighborsAndDegree(t *testing.T) {
	g := fig5a()
	var nbrs []int
	g.Neighbors(2, func(j int, w float64) { nbrs = append(nbrs, j) })
	want := []int{0, 1, 6}
	if len(nbrs) != len(want) {
		t.Fatalf("neighbors of v3 = %v", nbrs)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("neighbors of v3 = %v, want %v", nbrs, want)
		}
	}
	if g.Degree(2) != 3 {
		t.Fatalf("Degree = %d", g.Degree(2))
	}
}

func TestWeightedDegrees(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	d := g.WeightedDegrees()
	// d0 = 2² + 3² = 13 (Section 5.2 definition).
	if d[0] != 13 || d[1] != 4 || d[2] != 9 {
		t.Fatalf("WeightedDegrees = %v", d)
	}
}

func TestGeodesicNumbersFig5(t *testing.T) {
	g := fig5a()
	// Explicit nodes: v2 (id 1) and v7 (id 6), as in Fig. 5b.
	geo := g.GeodesicNumbers([]int{1, 6})
	// From Example 18: v3, v1, v5 have geodesic numbers 1, 2, 2 and the
	// figure marks g=1 and g=2 rings.
	want := []int{2, 0, 1, 1, 2, 1, 0}
	for i := range want {
		if geo[i] != want[i] {
			t.Fatalf("geodesic = %v, want %v", geo, want)
		}
	}
}

func TestGeodesicUnreachable(t *testing.T) {
	g := New(3)
	g.AddUnitEdge(0, 1)
	geo := g.GeodesicNumbers([]int{0})
	if geo[2] != Unreachable {
		t.Fatalf("isolated node must be Unreachable, got %d", geo[2])
	}
}

func TestGeodesicDuplicateSeeds(t *testing.T) {
	g := New(2)
	g.AddUnitEdge(0, 1)
	geo := g.GeodesicNumbers([]int{0, 0})
	if geo[0] != 0 || geo[1] != 1 {
		t.Fatalf("geo = %v", geo)
	}
}

func TestGeodesicSeedOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).GeodesicNumbers([]int{5})
}

// TestModifiedAdjacencyExample18 reproduces the A* matrix printed in
// Example 18 exactly.
func TestModifiedAdjacencyExample18(t *testing.T) {
	g := fig5a()
	geo := g.GeodesicNumbers([]int{1, 6})
	astar := g.ModifiedAdjacency(geo)
	// Example 18's A* (1-based rows v1..v7); A*(s,t) != 0 iff edge s→t
	// exists, i.e. row s, column t with gs+1 == gt.
	want := [7][7]float64{
		{0, 0, 0, 0, 0, 0, 0},
		{0, 0, 1, 1, 0, 0, 0},
		{1, 0, 0, 0, 0, 0, 0}, // v3 → v1 (the paper lists the transpose convention; see below)
		{1, 0, 0, 0, 1, 0, 0},
		{0, 0, 0, 0, 0, 0, 0},
		{0, 0, 0, 0, 1, 0, 0},
		{0, 0, 1, 0, 0, 1, 0},
	}
	// The matrix in Example 18 is exactly this A* read as A*(s,t) with
	// s the lower-geodesic node. Compare entrywise.
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			if got := astar.At(i, j); got != want[i][j] {
				t.Fatalf("A*(%d,%d) = %v, want %v", i, j, got, want[i][j])
			}
		}
	}
	// Lemma 17(1): A* is a DAG — no directed cycles. Verify via the fact
	// that edges only go from geodesic g to g+1.
	for i := 0; i < 7; i++ {
		astar.Row(i, func(j int, w float64) {
			if geo[j] != geo[i]+1 {
				t.Fatalf("edge %d→%d violates geodesic ordering", i, j)
			}
		})
	}
}

func TestModifiedAdjacencyDropsEqualGeodesics(t *testing.T) {
	g := fig5a()
	geo := g.GeodesicNumbers([]int{1, 6})
	astar := g.ModifiedAdjacency(geo)
	// v1−v5 (ids 0,4) both have geodesic 2: edge must vanish entirely.
	if astar.At(0, 4) != 0 || astar.At(4, 0) != 0 {
		t.Fatal("edge between equal geodesic numbers must be removed")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(5)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(3, 4)
	ids, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if ids[0] != ids[1] || ids[3] != ids[4] || ids[0] == ids[2] || ids[2] == ids[3] {
		t.Fatalf("ids = %v", ids)
	}
}

func TestEdgeMatrixTriangle(t *testing.T) {
	// Triangle: every directed edge (u→v) sees exactly one (w→u), w ≠ v.
	g := New(3)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(1, 2)
	g.AddUnitEdge(2, 0)
	em, dir := g.EdgeMatrix()
	if em.Rows() != 6 || len(dir) != 6 {
		t.Fatalf("edge matrix %dx%d over %d directed edges", em.Rows(), em.Cols(), len(dir))
	}
	for i := 0; i < 6; i++ {
		if em.RowNNZ(i) != 1 {
			t.Fatalf("row %d nnz = %d, want 1", i, em.RowNNZ(i))
		}
	}
}

func TestEdgeMatrixStar(t *testing.T) {
	// Star K1,3 centered at 0: edge (0→leaf) sees (other leaf→0): 2 each;
	// edge (leaf→0) sees nothing (only edges into leaf are 0→leaf = excluded).
	g := New(4)
	g.AddUnitEdge(0, 1)
	g.AddUnitEdge(0, 2)
	g.AddUnitEdge(0, 3)
	em, dir := g.EdgeMatrix()
	for i, e := range dir {
		want := 0
		if e.S == 0 { // 0→leaf
			want = 2
		}
		if em.RowNNZ(i) != want {
			t.Fatalf("edge %v row nnz = %d, want %d", e, em.RowNNZ(i), want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := fig5a()
	c := g.Clone()
	c.AddUnitEdge(0, 1)
	if g.NumEdges() == c.NumEdges() {
		t.Fatal("Clone must be independent")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(2, 3, 2)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != 4 || g2.NumEdges() != 2 {
		t.Fatalf("round trip: n=%d e=%d", g2.N(), g2.NumEdges())
	}
	if g2.Adjacency().At(0, 1) != 1.5 {
		t.Fatal("weight lost in round trip")
	}
}

func TestReadEdgeListDefaultsAndComments(t *testing.T) {
	in := "# comment\n\n0 1\n1 2 3.5\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.Adjacency().At(0, 1) != 1 || g.Adjacency().At(1, 2) != 3.5 {
		t.Fatal("parse failed")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 b\n", "0 1 x\n", "-1 2\n", "0 1 2 3\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q: expected error", in)
		}
	}
}

func TestSortedEdgesCanonical(t *testing.T) {
	g := New(3)
	g.AddUnitEdge(2, 0)
	g.AddUnitEdge(1, 0)
	es := g.SortedEdges()
	if es[0].S != 0 || es[0].T != 1 || es[1].S != 0 || es[1].T != 2 {
		t.Fatalf("SortedEdges = %v", es)
	}
}

func TestPermute(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	g.AddEdge(2, 3, 4)
	perm := []int{3, 1, 0, 2} // old -> new
	p := g.Permute(perm)
	if p.N() != 4 || p.NumEdges() != 3 {
		t.Fatalf("shape lost: n=%d m=%d", p.N(), p.NumEdges())
	}
	a, pa := g.Adjacency(), p.Adjacency()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if pa.At(perm[i], perm[j]) != a.At(i, j) {
				t.Fatalf("adjacency entry (%d,%d) lost by Permute", i, j)
			}
		}
	}
	// Degrees travel with the relabeling.
	d, pd := g.WeightedDegrees(), p.WeightedDegrees()
	for i := range d {
		if pd[perm[i]] != d[i] {
			t.Fatalf("degree of node %d lost by Permute", i)
		}
	}
	for _, bad := range [][]int{{0, 1}, {0, 0, 2, 3}, {0, 1, 2, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("perm %v must panic", bad)
				}
			}()
			g.Permute(bad)
		}()
	}
}

func TestRemoveEdges(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 2) // parallel, reversed orientation
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 3, 1) // self-loop
	_ = g.Adjacency()  // build the caches so removal must invalidate them

	if got := g.RemoveEdges([]Edge{{S: 1, T: 0}}); got != 2 {
		t.Fatalf("removed %d parallel edges, want 2", got)
	}
	if g.Adjacency().At(0, 1) != 0 || g.Adjacency().At(1, 0) != 0 {
		t.Fatal("adjacency kept removed edge")
	}
	if g.Adjacency().At(1, 2) != 1 {
		t.Fatal("removal clobbered an unrelated edge")
	}
	if got := g.RemoveEdges([]Edge{{S: 3, T: 3}}); got != 1 {
		t.Fatalf("self-loop removal removed %d, want 1", got)
	}
	// Absent pairs and out-of-range ids are no-ops.
	if got := g.RemoveEdges([]Edge{{S: 0, T: 1}, {S: 4, T: 4}}); got != 0 {
		t.Fatalf("no-op removal removed %d", got)
	}
	if got := g.RemoveEdges(nil); got != 0 {
		t.Fatalf("empty removal removed %d", got)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}
