package kernel

import (
	"fmt"
	"runtime"
	"testing"
)

// benchEngine builds a warm engine over a mid-sized random graph.
func benchEngine(b *testing.B, k, workers int, echo bool) *Engine {
	b.Helper()
	a := randomCSR(3000, 8, 42)
	var d []float64
	if echo {
		d = degrees(a)
	}
	eng, err := New(Config{A: a, D: d, H: randomCoupling(k, 7), Workers: workers}, nil)
	if err != nil {
		b.Fatal(err)
	}
	e := make([]float64, a.Rows()*k)
	for i := 0; i < len(e); i += 13 {
		e[i] = 0.05
	}
	eng.SetExplicit(e)
	eng.Step() // warm: spawn workers, fault in buffers
	b.Cleanup(eng.Close)
	return eng
}

// BenchmarkStep times one fused iteration across the unrolled class
// counts of the paper's experiments (k ∈ {2, 3, 5}) and a generic k.
func BenchmarkStep(b *testing.B) {
	for _, k := range []int{2, 3, 4, 5} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			eng := benchEngine(b, k, 1, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
	}
}

// BenchmarkStepParallel times the row-partitioned pass with the worker
// pool at NumCPU (on a single-core host this falls back to serial).
func BenchmarkStepParallel(b *testing.B) {
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			eng := benchEngine(b, 3, workers, true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step()
			}
		})
	}
}

// BenchmarkStepNoEcho isolates the LinBP* path (no echo term).
func BenchmarkStepNoEcho(b *testing.B) {
	eng := benchEngine(b, 3, 1, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}
