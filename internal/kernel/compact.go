package kernel

// The compact-layout row kernels. Each mirrors its wide counterpart in
// kernel.go operation for operation — identical summation order, so the
// two layouts are bitwise interchangeable — but reads the CSR through
// the int32 index stream (half the index bytes per traversal), hoists
// the Engine fields the loop touches into locals (stores through the
// belief buffers keep the compiler from proving the struct unchanged,
// so the method-style wide kernels reload them every row), and reads
// the k×k coupling coefficients by constant index in the row epilogue
// instead of holding k² locals across the loop — Go's register
// allocator spills that many long-lived floats straight through the
// sparse inner loop, which costs more than the per-row reloads.

// rows1Compact is the k = 1 scalar collapse (FABP, Appendix E). Unlike
// the wide path, the compact fast paths honor the round-2 activity map
// (act != nil only in the round after the Bˆ¹ = Eˆ shortcut): skipping
// neighbors whose belief rows are exactly zero drops only v·0 terms, so
// the result stays bitwise identical while the mostly-dead round-2
// loads disappear. The act == nil branch keeps the dense rounds on the
// unchecked loop.
//
//lsbp:hotpath
func (e *Engine) rows1Compact(lo, hi int) float64 {
	rowPtr, colIdx, avals := e.rp32, e.ci32, e.vals
	cur, next := e.ws.cur, e.ws.next
	eexp, dvec, echo, track, act := e.e, e.d, e.echo, e.track, e.act
	h, h2 := e.h[0], e.h2[0]
	var delta float64
	for i := lo; i < hi; i++ {
		rs, re := int(rowPtr[i]), int(rowPtr[i+1])
		cols := colIdx[rs:re]
		vals := avals[rs:re]
		vals = vals[:len(cols)]
		var ab float64
		if act == nil {
			for p, j := range cols {
				ab += vals[p] * cur[j]
			}
		} else {
			for p, jj := range cols {
				j := int(jj)
				if act[j] == 0 {
					continue // neighbor's belief row is exactly zero
				}
				ab += vals[p] * cur[j]
			}
		}
		var v float64
		if eexp != nil {
			v = eexp[i]
		}
		v += ab * h
		if echo {
			v -= dvec[i] * cur[i] * h2
		}
		if track {
			delta = delta1(delta, v, cur[i])
		}
		next[i] = v
	}
	return delta
}

//lsbp:hotpath
func (e *Engine) rows2Compact(lo, hi int) float64 {
	rowPtr, colIdx, avals := e.rp32, e.ci32, e.vals
	cur, next := e.ws.cur, e.ws.next
	eexp, dvec, echo, track, act := e.e, e.d, e.echo, e.track, e.act
	h, g := e.h[:4], e.h2[:4]
	var delta float64
	for i := lo; i < hi; i++ {
		rs, re := int(rowPtr[i]), int(rowPtr[i+1])
		cols := colIdx[rs:re]
		vals := avals[rs:re]
		vals = vals[:len(cols)]
		var ab0, ab1 float64
		if act == nil {
			for p, jj := range cols {
				o := int(jj) * 2
				v := vals[p]
				ab0 += v * cur[o]
				ab1 += v * cur[o+1]
			}
		} else {
			for p, jj := range cols {
				j := int(jj)
				if act[j] == 0 {
					continue // neighbor's belief row is exactly zero
				}
				o := j * 2
				v := vals[p]
				ab0 += v * cur[o]
				ab1 += v * cur[o+1]
			}
		}
		var v0, v1 float64
		if eexp != nil {
			v0, v1 = eexp[i*2], eexp[i*2+1]
		}
		v0 += ab0*h[0] + ab1*h[2]
		v1 += ab0*h[1] + ab1*h[3]
		b0, b1 := cur[i*2], cur[i*2+1]
		if echo {
			di := dvec[i]
			v0 -= di * (b0*g[0] + b1*g[2])
			v1 -= di * (b0*g[1] + b1*g[3])
		}
		if track {
			delta = delta1(delta, v0, b0)
			delta = delta1(delta, v1, b1)
		}
		next[i*2], next[i*2+1] = v0, v1
	}
	return delta
}

//lsbp:hotpath
func (e *Engine) rows3Compact(lo, hi int) float64 {
	rowPtr, colIdx, avals := e.rp32, e.ci32, e.vals
	cur, next := e.ws.cur, e.ws.next
	eexp, dvec, echo, track, act := e.e, e.d, e.echo, e.track, e.act
	h, g := e.h[:9], e.h2[:9]
	var delta float64
	for i := lo; i < hi; i++ {
		rs, re := int(rowPtr[i]), int(rowPtr[i+1])
		cols := colIdx[rs:re]
		vals := avals[rs:re]
		vals = vals[:len(cols)]
		var ab0, ab1, ab2 float64
		if act == nil {
			for p, jj := range cols {
				o := int(jj) * 3
				v := vals[p]
				ab0 += v * cur[o]
				ab1 += v * cur[o+1]
				ab2 += v * cur[o+2]
			}
		} else {
			for p, jj := range cols {
				j := int(jj)
				if act[j] == 0 {
					continue // neighbor's belief row is exactly zero
				}
				o := j * 3
				v := vals[p]
				ab0 += v * cur[o]
				ab1 += v * cur[o+1]
				ab2 += v * cur[o+2]
			}
		}
		var v0, v1, v2 float64
		if eexp != nil {
			v0, v1, v2 = eexp[i*3], eexp[i*3+1], eexp[i*3+2]
		}
		v0 += ab0*h[0] + ab1*h[3] + ab2*h[6]
		v1 += ab0*h[1] + ab1*h[4] + ab2*h[7]
		v2 += ab0*h[2] + ab1*h[5] + ab2*h[8]
		b0, b1, b2 := cur[i*3], cur[i*3+1], cur[i*3+2]
		if echo {
			di := dvec[i]
			v0 -= di * (b0*g[0] + b1*g[3] + b2*g[6])
			v1 -= di * (b0*g[1] + b1*g[4] + b2*g[7])
			v2 -= di * (b0*g[2] + b1*g[5] + b2*g[8])
		}
		if track {
			delta = delta1(delta, v0, b0)
			delta = delta1(delta, v1, b1)
			delta = delta1(delta, v2, b2)
		}
		next[i*3], next[i*3+1], next[i*3+2] = v0, v1, v2
	}
	return delta
}

//lsbp:hotpath
func (e *Engine) rows5Compact(lo, hi int) float64 {
	rowPtr, colIdx, avals := e.rp32, e.ci32, e.vals
	cur, next := e.ws.cur, e.ws.next
	eexp, dvec, echo, track, act := e.e, e.d, e.echo, e.track, e.act
	h, g := e.h[:25], e.h2[:25]
	var delta float64
	for i := lo; i < hi; i++ {
		rs, re := int(rowPtr[i]), int(rowPtr[i+1])
		cols := colIdx[rs:re]
		vals := avals[rs:re]
		vals = vals[:len(cols)]
		var ab0, ab1, ab2, ab3, ab4 float64
		if act == nil {
			for p, jj := range cols {
				o := int(jj) * 5
				v := vals[p]
				ab0 += v * cur[o]
				ab1 += v * cur[o+1]
				ab2 += v * cur[o+2]
				ab3 += v * cur[o+3]
				ab4 += v * cur[o+4]
			}
		} else {
			for p, jj := range cols {
				j := int(jj)
				if act[j] == 0 {
					continue // neighbor's belief row is exactly zero
				}
				o := j * 5
				v := vals[p]
				ab0 += v * cur[o]
				ab1 += v * cur[o+1]
				ab2 += v * cur[o+2]
				ab3 += v * cur[o+3]
				ab4 += v * cur[o+4]
			}
		}
		var v0, v1, v2, v3, v4 float64
		if eexp != nil {
			o := i * 5
			v0, v1, v2, v3, v4 = eexp[o], eexp[o+1], eexp[o+2], eexp[o+3], eexp[o+4]
		}
		v0 += ab0*h[0] + ab1*h[5] + ab2*h[10] + ab3*h[15] + ab4*h[20]
		v1 += ab0*h[1] + ab1*h[6] + ab2*h[11] + ab3*h[16] + ab4*h[21]
		v2 += ab0*h[2] + ab1*h[7] + ab2*h[12] + ab3*h[17] + ab4*h[22]
		v3 += ab0*h[3] + ab1*h[8] + ab2*h[13] + ab3*h[18] + ab4*h[23]
		v4 += ab0*h[4] + ab1*h[9] + ab2*h[14] + ab3*h[19] + ab4*h[24]
		b := cur[i*5 : i*5+5]
		if echo {
			di := dvec[i]
			v0 -= di * (b[0]*g[0] + b[1]*g[5] + b[2]*g[10] + b[3]*g[15] + b[4]*g[20])
			v1 -= di * (b[0]*g[1] + b[1]*g[6] + b[2]*g[11] + b[3]*g[16] + b[4]*g[21])
			v2 -= di * (b[0]*g[2] + b[1]*g[7] + b[2]*g[12] + b[3]*g[17] + b[4]*g[22])
			v3 -= di * (b[0]*g[3] + b[1]*g[8] + b[2]*g[13] + b[3]*g[18] + b[4]*g[23])
			v4 -= di * (b[0]*g[4] + b[1]*g[9] + b[2]*g[14] + b[3]*g[19] + b[4]*g[24])
		}
		if track {
			delta = delta1(delta, v0, b[0])
			delta = delta1(delta, v1, b[1])
			delta = delta1(delta, v2, b[2])
			delta = delta1(delta, v3, b[3])
			delta = delta1(delta, v4, b[4])
		}
		nx := next[i*5 : i*5+5]
		nx[0], nx[1], nx[2], nx[3], nx[4] = v0, v1, v2, v3, v4
	}
	return delta
}

// rows3x4Compact fuses four k=3 solves (width 12) over the compact
// index stream; see rows3x4 for the register-blocking rationale.
//
//lsbp:hotpath
func (e *Engine) rows3x4Compact(lo, hi int) float64 {
	rowPtr, colIdx, avals := e.rp32, e.ci32, e.vals
	cur, next := e.ws.cur, e.ws.next
	eexp, dvec, echo, track, act := e.e, e.d, e.echo, e.track, e.act
	h, g := e.h[:9], e.h2[:9]
	var delta float64
	for i := lo; i < hi; i++ {
		rs, re := int(rowPtr[i]), int(rowPtr[i+1])
		cols := colIdx[rs:re]
		vals := avals[rs:re]
		vals = vals[:len(cols)]
		var a0, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11 float64
		for p, jj := range cols {
			j := int(jj)
			if act != nil && act[j] == 0 {
				continue // neighbor's belief row is exactly zero
			}
			v := vals[p]
			x := cur[j*12 : j*12+12]
			a0 += v * x[0]
			a1 += v * x[1]
			a2 += v * x[2]
			a3 += v * x[3]
			a4 += v * x[4]
			a5 += v * x[5]
			a6 += v * x[6]
			a7 += v * x[7]
			a8 += v * x[8]
			a9 += v * x[9]
			a10 += v * x[10]
			a11 += v * x[11]
		}
		b := cur[i*12 : i*12+12]
		nx := next[i*12 : i*12+12]
		var e0, e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11 float64
		if eexp != nil {
			er := eexp[i*12 : i*12+12]
			e0, e1, e2, e3, e4, e5 = er[0], er[1], er[2], er[3], er[4], er[5]
			e6, e7, e8, e9, e10, e11 = er[6], er[7], er[8], er[9], er[10], er[11]
		}
		v0 := e0 + (a0*h[0] + a1*h[3] + a2*h[6])
		v1 := e1 + (a0*h[1] + a1*h[4] + a2*h[7])
		v2 := e2 + (a0*h[2] + a1*h[5] + a2*h[8])
		v3 := e3 + (a3*h[0] + a4*h[3] + a5*h[6])
		v4 := e4 + (a3*h[1] + a4*h[4] + a5*h[7])
		v5 := e5 + (a3*h[2] + a4*h[5] + a5*h[8])
		v6 := e6 + (a6*h[0] + a7*h[3] + a8*h[6])
		v7 := e7 + (a6*h[1] + a7*h[4] + a8*h[7])
		v8 := e8 + (a6*h[2] + a7*h[5] + a8*h[8])
		v9 := e9 + (a9*h[0] + a10*h[3] + a11*h[6])
		v10 := e10 + (a9*h[1] + a10*h[4] + a11*h[7])
		v11 := e11 + (a9*h[2] + a10*h[5] + a11*h[8])
		if echo {
			di := dvec[i]
			v0 -= di * (b[0]*g[0] + b[1]*g[3] + b[2]*g[6])
			v1 -= di * (b[0]*g[1] + b[1]*g[4] + b[2]*g[7])
			v2 -= di * (b[0]*g[2] + b[1]*g[5] + b[2]*g[8])
			v3 -= di * (b[3]*g[0] + b[4]*g[3] + b[5]*g[6])
			v4 -= di * (b[3]*g[1] + b[4]*g[4] + b[5]*g[7])
			v5 -= di * (b[3]*g[2] + b[4]*g[5] + b[5]*g[8])
			v6 -= di * (b[6]*g[0] + b[7]*g[3] + b[8]*g[6])
			v7 -= di * (b[6]*g[1] + b[7]*g[4] + b[8]*g[7])
			v8 -= di * (b[6]*g[2] + b[7]*g[5] + b[8]*g[8])
			v9 -= di * (b[9]*g[0] + b[10]*g[3] + b[11]*g[6])
			v10 -= di * (b[9]*g[1] + b[10]*g[4] + b[11]*g[7])
			v11 -= di * (b[9]*g[2] + b[10]*g[5] + b[11]*g[8])
		}
		if track {
			delta = delta1(delta, v0, b[0])
			delta = delta1(delta, v1, b[1])
			delta = delta1(delta, v2, b[2])
			delta = delta1(delta, v3, b[3])
			delta = delta1(delta, v4, b[4])
			delta = delta1(delta, v5, b[5])
			delta = delta1(delta, v6, b[6])
			delta = delta1(delta, v7, b[7])
			delta = delta1(delta, v8, b[8])
			delta = delta1(delta, v9, b[9])
			delta = delta1(delta, v10, b[10])
			delta = delta1(delta, v11, b[11])
		}
		nx[0], nx[1], nx[2], nx[3], nx[4], nx[5] = v0, v1, v2, v3, v4, v5
		nx[6], nx[7], nx[8], nx[9], nx[10], nx[11] = v6, v7, v8, v9, v10, v11
	}
	return delta
}

// rows2x6Compact fuses six k=2 solves (width 12) over the compact index
// stream, the k=2 analogue of rows3x4Compact.
//
//lsbp:hotpath
func (e *Engine) rows2x6Compact(lo, hi int) float64 {
	rowPtr, colIdx, avals := e.rp32, e.ci32, e.vals
	cur, next := e.ws.cur, e.ws.next
	eexp, dvec, echo, track, act := e.e, e.d, e.echo, e.track, e.act
	h, g := e.h[:4], e.h2[:4]
	var delta float64
	for i := lo; i < hi; i++ {
		rs, re := int(rowPtr[i]), int(rowPtr[i+1])
		cols := colIdx[rs:re]
		vals := avals[rs:re]
		vals = vals[:len(cols)]
		var a0, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11 float64
		for p, jj := range cols {
			j := int(jj)
			if act != nil && act[j] == 0 {
				continue // neighbor's belief row is exactly zero
			}
			v := vals[p]
			x := cur[j*12 : j*12+12]
			a0 += v * x[0]
			a1 += v * x[1]
			a2 += v * x[2]
			a3 += v * x[3]
			a4 += v * x[4]
			a5 += v * x[5]
			a6 += v * x[6]
			a7 += v * x[7]
			a8 += v * x[8]
			a9 += v * x[9]
			a10 += v * x[10]
			a11 += v * x[11]
		}
		b := cur[i*12 : i*12+12]
		nx := next[i*12 : i*12+12]
		var e0, e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11 float64
		if eexp != nil {
			er := eexp[i*12 : i*12+12]
			e0, e1, e2, e3, e4, e5 = er[0], er[1], er[2], er[3], er[4], er[5]
			e6, e7, e8, e9, e10, e11 = er[6], er[7], er[8], er[9], er[10], er[11]
		}
		v0 := e0 + (a0*h[0] + a1*h[2])
		v1 := e1 + (a0*h[1] + a1*h[3])
		v2 := e2 + (a2*h[0] + a3*h[2])
		v3 := e3 + (a2*h[1] + a3*h[3])
		v4 := e4 + (a4*h[0] + a5*h[2])
		v5 := e5 + (a4*h[1] + a5*h[3])
		v6 := e6 + (a6*h[0] + a7*h[2])
		v7 := e7 + (a6*h[1] + a7*h[3])
		v8 := e8 + (a8*h[0] + a9*h[2])
		v9 := e9 + (a8*h[1] + a9*h[3])
		v10 := e10 + (a10*h[0] + a11*h[2])
		v11 := e11 + (a10*h[1] + a11*h[3])
		if echo {
			di := dvec[i]
			v0 -= di * (b[0]*g[0] + b[1]*g[2])
			v1 -= di * (b[0]*g[1] + b[1]*g[3])
			v2 -= di * (b[2]*g[0] + b[3]*g[2])
			v3 -= di * (b[2]*g[1] + b[3]*g[3])
			v4 -= di * (b[4]*g[0] + b[5]*g[2])
			v5 -= di * (b[4]*g[1] + b[5]*g[3])
			v6 -= di * (b[6]*g[0] + b[7]*g[2])
			v7 -= di * (b[6]*g[1] + b[7]*g[3])
			v8 -= di * (b[8]*g[0] + b[9]*g[2])
			v9 -= di * (b[8]*g[1] + b[9]*g[3])
			v10 -= di * (b[10]*g[0] + b[11]*g[2])
			v11 -= di * (b[10]*g[1] + b[11]*g[3])
		}
		if track {
			delta = delta1(delta, v0, b[0])
			delta = delta1(delta, v1, b[1])
			delta = delta1(delta, v2, b[2])
			delta = delta1(delta, v3, b[3])
			delta = delta1(delta, v4, b[4])
			delta = delta1(delta, v5, b[5])
			delta = delta1(delta, v6, b[6])
			delta = delta1(delta, v7, b[7])
			delta = delta1(delta, v8, b[8])
			delta = delta1(delta, v9, b[9])
			delta = delta1(delta, v10, b[10])
			delta = delta1(delta, v11, b[11])
		}
		nx[0], nx[1], nx[2], nx[3], nx[4], nx[5] = v0, v1, v2, v3, v4, v5
		nx[6], nx[7], nx[8], nx[9], nx[10], nx[11] = v6, v7, v8, v9, v10, v11
	}
	return delta
}

// sparseRoundCompact executes one full round from the Bˆ = Eˆ state
// (the round after the solve-from-scratch shortcut) in push form: Eˆ
// has nonzero rows only at the explicitly labeled nodes, so instead of
// pulling every stored entry the engine zeroes the output, pushes each
// active row's beliefs through its own adjacency row (which equals its
// column — Config.SymmetricA), and runs the epilogue (coupling, echo,
// explicit term, delta) only over rows that were reached or are active
// themselves. All untouched rows provably stay zero. Per-entry
// contributions arrive in ascending source order, matching the pull
// kernels' summation order, so the iterate is bitwise identical.
//
//lsbp:hotpath
func (e *Engine) sparseRoundCompact() float64 {
	rowPtr, colIdx, avals := e.rp32, e.ci32, e.vals
	n, k, wd := e.n, e.k, e.wd
	cur, next := e.ws.cur[:n*wd], e.ws.next[:n*wd]
	act, dirty := e.ws.act[:n], e.ws.dirty[:n]
	eexp, dvec, echo, track := e.e, e.d, e.echo, e.track
	for i := range next {
		next[i] = 0
	}
	copy(dirty, act) // active rows run the epilogue even if unreached
	// Scatter: next[i] accumulates (A·Bˆ)[i] from active sources only.
	for j := 0; j < n; j++ {
		if act[j] == 0 {
			continue
		}
		xj := cur[j*wd : j*wd+wd]
		rs, re := int(rowPtr[j]), int(rowPtr[j+1])
		cols := colIdx[rs:re]
		vals := avals[rs:re]
		vals = vals[:len(cols)]
		for p, ii := range cols {
			i := int(ii)
			v := vals[p]
			dirty[i] = 1
			xi := next[i*wd : i*wd+wd]
			for c, bc := range xj {
				xi[c] += v * bc
			}
		}
	}
	// Epilogue over reached/active rows; everything else stays zero
	// (their A·Bˆ, Eˆ, and belief rows are all exactly zero).
	var delta float64
	h, g := e.h, e.h2
	if wd == 1 {
		h, g := h[0], g[0]
		for i := 0; i < n; i++ {
			if dirty[i] == 0 {
				continue
			}
			ab := next[i]
			var v float64
			if eexp != nil {
				v = eexp[i]
			}
			v += ab * h
			if echo {
				v -= dvec[i] * cur[i] * g
			}
			if track {
				delta = delta1(delta, v, cur[i])
			}
			next[i] = v
		}
		return delta
	}
	if k == 3 && wd == 3 {
		h, g := h[:9], g[:9]
		for i := 0; i < n; i++ {
			if dirty[i] == 0 {
				continue
			}
			o := i * 3
			ab0, ab1, ab2 := next[o], next[o+1], next[o+2]
			var v0, v1, v2 float64
			if eexp != nil {
				v0, v1, v2 = eexp[o], eexp[o+1], eexp[o+2]
			}
			v0 += ab0*h[0] + ab1*h[3] + ab2*h[6]
			v1 += ab0*h[1] + ab1*h[4] + ab2*h[7]
			v2 += ab0*h[2] + ab1*h[5] + ab2*h[8]
			b0, b1, b2 := cur[o], cur[o+1], cur[o+2]
			if echo {
				di := dvec[i]
				v0 -= di * (b0*g[0] + b1*g[3] + b2*g[6])
				v1 -= di * (b0*g[1] + b1*g[4] + b2*g[7])
				v2 -= di * (b0*g[2] + b1*g[5] + b2*g[8])
			}
			if track {
				delta = delta1(delta, v0, b0)
				delta = delta1(delta, v1, b1)
				delta = delta1(delta, v2, b2)
			}
			next[o], next[o+1], next[o+2] = v0, v1, v2
		}
		return delta
	}
	// Generic epilogue: per k-block, identical order to rowsBlocked.
	for i := 0; i < n; i++ {
		if dirty[i] == 0 {
			continue
		}
		bRow := cur[i*wd : i*wd+wd]
		nxRow := next[i*wd : i*wd+wd]
		for b := 0; b < wd; b += k {
			bb := bRow[b : b+k]
			// The accumulated A·Bˆ block is read before it is
			// overwritten: lift it out first.
			var abb [maxSparseRoundWidth]float64
			copy(abb[:k], nxRow[b:b+k])
			ab := abb[:k]
			for c := 0; c < k; c++ {
				var v float64
				if eexp != nil {
					v = eexp[i*wd+b+c]
				}
				// Σ first, then add to the explicit term: the fast
				// paths compute v = e + (Σ ab·h), not a running sum.
				var cp float64
				for j, abv := range ab {
					cp += abv * h[j*k+c]
				}
				v += cp
				if echo {
					var s float64
					for j, bv := range bb {
						s += bv * g[j*k+c]
					}
					v -= dvec[i] * s
				}
				if track {
					delta = delta1(delta, v, bb[c])
				}
				nxRow[b+c] = v
			}
		}
	}
	return delta
}
