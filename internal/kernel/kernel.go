// Package kernel is the fused compute engine behind the iterative
// linearized solvers. One LinBP round (Eq. 6/7)
//
//	Bˆ(l+1) = Eˆ + A·Bˆ(l)·Hˆ − D·Bˆ(l)·Hˆ²
//
// is executed as a single row-partitioned pass: for every node the
// sparse A·Bˆ product, the k×k coupling multiply, the echo-cancellation
// term, and the convergence delta are computed together while the row is
// hot in cache, with Hˆ and Hˆ² hoisted into flat row-major slices (no
// bounds-checked At() calls in the inner loop) and fully unrolled fast
// paths for the class counts the paper's experiments use (k ∈ {2, 3, 5},
// plus k = 1 for the binary FABP collapse of Appendix E).
//
// The engine owns reusable buffers: repeated solves on the same graph —
// the serving scenario the ROADMAP targets — perform zero steady-state
// allocations. Workspaces are recycled through a sync.Pool so that even
// independent Run calls stop reallocating their n×k work arrays. With
// Workers > 1 the rows are split into nnz-balanced spans processed by a
// persistent goroutine pool (the role Parallel Colt played in the
// paper's JAVA implementation); each worker reduces a local max-delta
// and the engine folds them at the join.
package kernel

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/dense"
	"repro/internal/sparse"
)

// Config describes one fused-iteration operator
// B ↦ E + A·B·H − D∘(B·H₂).
type Config struct {
	// A is the n×n sparse adjacency matrix.
	A *sparse.CSR
	// D holds per-row echo scales (the weighted degrees of Section 5.2).
	// nil disables the echo term entirely (LinBP*).
	D []float64
	// H is the k×k residual coupling matrix Hˆ.
	H *dense.Matrix
	// EchoH optionally overrides the echo coupling matrix. When nil and
	// D is set, Hˆ² is used (LinBP). FABP's binary collapse needs the
	// override: its echo coefficient c2 is not c1² (Appendix E, Eq. 33).
	EchoH *dense.Matrix
	// Workers sets the goroutine count for row-partitioned steps.
	// Values <= 1 select the serial kernel.
	Workers int
}

// span is one contiguous, nnz-balanced row range of a parallel pass.
type span struct{ lo, hi int }

// scratchStride returns the padded per-worker scratch width: at least k,
// rounded up to a full 64-byte cache line to avoid false sharing.
func scratchStride(k int) int { return (k + 7) &^ 7 }

// Workspace holds the large reusable buffers of an Engine. Workspaces
// are recycled via GetWorkspace/Release so repeated solves reuse the
// same n×k arrays instead of reallocating them per call.
type Workspace struct {
	cur, next []float64
	scratch   []float64 // per-worker A·B row scratch, cache-line padded
	hbuf      []float64 // flat H and H₂/EchoH, 2·k² values
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace returns a workspace from the package pool. Release it
// when the engine using it is closed.
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// Release returns the workspace to the pool. The caller must not use
// the workspace (or any engine built on it) afterwards.
func (w *Workspace) Release() { wsPool.Put(w) }

// grow resizes the workspace for an n×k problem, reusing existing
// capacity whenever possible.
func (w *Workspace) grow(n, k, workers int) {
	w.cur = growSlice(w.cur, n*k)
	w.next = growSlice(w.next, n*k)
	w.scratch = growSlice(w.scratch, workers*scratchStride(k))
	w.hbuf = growSlice(w.hbuf, 2*k*k)
}

func growSlice(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Engine executes fused LinBP iterations over one fixed (A, D, H)
// configuration. It is built once per graph and reused across solves;
// see New for the construction contract and Close for teardown.
type Engine struct {
	a       *sparse.CSR
	d       []float64
	e       []float64 // explicit residuals Eˆ, flat n×k; nil reads as 0
	h, h2   []float64 // flat k×k coupling and echo coupling
	n, k    int
	echo    bool
	workers int
	ws      *Workspace

	// Parallel machinery, spawned lazily on the first parallel pass.
	spans   []span
	work    chan span
	results chan float64
	started bool
	closed  bool
}

// New validates cfg and builds an engine on ws. A nil ws allocates a
// private workspace; passing GetWorkspace() enables pooled reuse (the
// caller releases it after Close). Beliefs start at Bˆ = 0.
func New(cfg Config, ws *Workspace) (*Engine, error) {
	if cfg.A == nil || cfg.H == nil {
		return nil, errors.New("kernel: config needs A and H")
	}
	n := cfg.A.Rows()
	if cfg.A.Cols() != n {
		return nil, fmt.Errorf("kernel: adjacency %dx%d is not square", n, cfg.A.Cols())
	}
	k := cfg.H.Rows()
	if cfg.H.Cols() != k {
		return nil, fmt.Errorf("kernel: coupling %dx%d is not square", k, cfg.H.Cols())
	}
	if cfg.D != nil && len(cfg.D) != n {
		return nil, fmt.Errorf("kernel: degree vector length %d, want %d", len(cfg.D), n)
	}
	if cfg.EchoH != nil && (cfg.EchoH.Rows() != k || cfg.EchoH.Cols() != k) {
		return nil, fmt.Errorf("kernel: echo coupling %dx%d, want %dx%d", cfg.EchoH.Rows(), cfg.EchoH.Cols(), k, k)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if ws == nil {
		ws = new(Workspace)
	}
	ws.grow(n, k, workers)

	e := &Engine{
		a:       cfg.A,
		d:       cfg.D,
		n:       n,
		k:       k,
		echo:    cfg.D != nil,
		workers: workers,
		ws:      ws,
	}
	// Hoist H (and the echo coupling) into flat row-major slices once.
	e.h = ws.hbuf[:k*k]
	e.h2 = ws.hbuf[k*k : 2*k*k]
	hd := cfg.H.Data()
	copy(e.h, hd)
	switch {
	case cfg.EchoH != nil:
		copy(e.h2, cfg.EchoH.Data())
	case e.echo:
		// h2 = H·H computed in place, no dense.Matrix allocation.
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				var s float64
				for m := 0; m < k; m++ {
					s += hd[i*k+m] * hd[m*k+j]
				}
				e.h2[i*k+j] = s
			}
		}
	default:
		for i := range e.h2 {
			e.h2[i] = 0
		}
	}
	e.Reset()
	return e, nil
}

// checkOpen panics on use after Close: a closed engine may share its
// workspace with a newer engine through the pool, so continuing to
// write would silently corrupt the other engine's state.
func (e *Engine) checkOpen() {
	if e.closed {
		panic("kernel: engine used after Close")
	}
}

// Reset zeroes the belief state (the Bˆ = 0 start of Section 3).
func (e *Engine) Reset() {
	e.checkOpen()
	for i := range e.ws.cur {
		e.ws.cur[i] = 0
	}
}

// SetStart warm-starts the iteration from b (flat n×k, copied).
func (e *Engine) SetStart(b []float64) {
	e.checkOpen()
	if len(b) != e.n*e.k {
		panic(fmt.Sprintf("kernel: start length %d, want %d", len(b), e.n*e.k))
	}
	copy(e.ws.cur, b)
}

// SetExplicit installs the explicit residual beliefs Eˆ (flat n×k). The
// slice is retained, not copied, so callers may mutate entries between
// steps (the incremental solver does). nil means Eˆ = 0.
func (e *Engine) SetExplicit(explicit []float64) {
	if explicit != nil && len(explicit) != e.n*e.k {
		panic(fmt.Sprintf("kernel: explicit length %d, want %d", len(explicit), e.n*e.k))
	}
	e.e = explicit
}

// Beliefs returns the current belief state as a flat n×k view of the
// engine's buffer. Valid until the next Step/Run; treat as read-only.
func (e *Engine) Beliefs() []float64 {
	e.checkOpen()
	return e.ws.cur[:e.n*e.k]
}

// Step executes one fused update round and returns the maximum absolute
// belief change. Steady-state Steps perform no allocations.
func (e *Engine) Step() float64 {
	e.checkOpen()
	delta := e.pass()
	e.ws.cur, e.ws.next = e.ws.next, e.ws.cur
	return delta
}

// Run iterates Step up to maxIter times, stopping early once the delta
// drops to tol (tol < 0 forces exactly maxIter rounds, the paper's
// timing setup). onIter, if non-nil, observes every round.
func (e *Engine) Run(maxIter int, tol float64, onIter func(iter int, delta float64)) (iters int, delta float64, converged bool) {
	for iters < maxIter {
		delta = e.Step()
		iters++
		if onIter != nil {
			onIter(iters, delta)
		}
		if delta <= tol {
			return iters, delta, true
		}
	}
	return iters, delta, false
}

// ApplyInto computes dst = A·src·H − D∘(src·H₂) — the bare update
// operator without the explicit-belief term — through the same fused
// row kernels as Step. It backs spectral.LinBPOp's power iteration
// (Lemma 8), so the spectral criteria and the solver share one
// implementation of the operator. dst and src are flat n×k and must
// not alias. The engine's iteration state is left untouched.
func (e *Engine) ApplyInto(dst, src []float64) {
	e.checkOpen()
	if len(src) != e.n*e.k || len(dst) != e.n*e.k {
		panic("kernel: ApplyInto dimension mismatch")
	}
	savedCur, savedNext, savedE := e.ws.cur, e.ws.next, e.e
	e.ws.cur, e.ws.next, e.e = src, dst, nil
	e.pass()
	e.ws.cur, e.ws.next, e.e = savedCur, savedNext, savedE
}

// pass runs one full fused update ws.cur → ws.next and returns the max
// delta (ignored by the spectral ApplyInto path).
func (e *Engine) pass() float64 {
	if e.workers > 1 && e.n >= 2*e.workers {
		e.startWorkers()
		for _, s := range e.spans {
			e.work <- s
		}
		var delta float64
		for range e.spans {
			if d := <-e.results; d > delta {
				delta = d
			}
		}
		return delta
	}
	// The serial fallback runs the identical row kernel as the parallel
	// spans, so results are bitwise identical across Workers settings.
	return e.rows(0, e.n, e.ws.scratch[:scratchStride(e.k)])
}

// startWorkers lazily spawns the persistent goroutine pool and the
// nnz-balanced spans it consumes. Spans are finer than the worker count
// so a heavy span (Kronecker graphs have very skewed rows) can be
// compensated by work stealing from the shared channel.
func (e *Engine) startWorkers() {
	if e.started {
		return
	}
	nspans := e.workers * 4
	target := e.a.NNZ()/nspans + 1
	stride := scratchStride(e.k)
	e.spans = e.spans[:0]
	lo, acc := 0, 0
	for i := 0; i < e.n; i++ {
		acc += e.a.RowNNZ(i)
		if acc >= target && i+1 < e.n {
			e.spans = append(e.spans, span{lo, i + 1})
			lo, acc = i+1, 0
		}
	}
	e.spans = append(e.spans, span{lo, e.n})
	e.work = make(chan span, len(e.spans))
	e.results = make(chan float64, len(e.spans))
	for w := 0; w < e.workers; w++ {
		go e.worker(e.ws.scratch[w*stride : (w+1)*stride])
	}
	e.started = true
}

func (e *Engine) worker(scratch []float64) {
	for s := range e.work {
		e.results <- e.rows(s.lo, s.hi, scratch)
	}
}

// Close stops the worker pool. The engine must not be used afterwards;
// a workspace obtained from GetWorkspace may be Released only after
// Close returns.
func (e *Engine) Close() {
	if e.started && !e.closed {
		close(e.work)
	}
	e.closed = true
}

// rows processes rows [lo, hi) of one update round, fused: sparse
// product, coupling multiply, echo term, and local max delta in a
// single pass per row. scratch provides k floats of per-worker storage
// for the generic-k path.
func (e *Engine) rows(lo, hi int, scratch []float64) float64 {
	switch e.k {
	case 1:
		return e.rows1(lo, hi)
	case 2:
		return e.rows2(lo, hi)
	case 3:
		return e.rows3(lo, hi)
	case 5:
		return e.rows5(lo, hi)
	default:
		return e.rowsGeneric(lo, hi, scratch)
	}
}

// delta1 folds one element change into the running max, mapping the NaN
// of Inf−Inf (post-overflow divergence) to +Inf so divergence is
// reported rather than masked.
func delta1(delta, v, b float64) float64 {
	ch := math.Abs(v - b)
	if ch != ch {
		ch = math.Inf(1)
	}
	if ch > delta {
		return ch
	}
	return delta
}

// rows1 is the k = 1 scalar collapse (FABP, Appendix E):
// next = e + h·(A·b) − h₂·d∘b.
func (e *Engine) rows1(lo, hi int) float64 {
	cur, next := e.ws.cur, e.ws.next
	h, h2 := e.h[0], e.h2[0]
	var delta float64
	for i := lo; i < hi; i++ {
		cols, vals := e.a.RowView(i)
		vals = vals[:len(cols)]
		var ab float64
		for p, j := range cols {
			ab += vals[p] * cur[j]
		}
		var v float64
		if e.e != nil {
			v = e.e[i]
		}
		v += ab * h
		if e.echo {
			v -= e.d[i] * cur[i] * h2
		}
		delta = delta1(delta, v, cur[i])
		next[i] = v
	}
	return delta
}

func (e *Engine) rows2(lo, hi int) float64 {
	cur, next := e.ws.cur, e.ws.next
	h00, h01, h10, h11 := e.h[0], e.h[1], e.h[2], e.h[3]
	g00, g01, g10, g11 := e.h2[0], e.h2[1], e.h2[2], e.h2[3]
	var delta float64
	for i := lo; i < hi; i++ {
		cols, vals := e.a.RowView(i)
		vals = vals[:len(cols)]
		var ab0, ab1 float64
		for p, j := range cols {
			v := vals[p]
			x := cur[j*2 : j*2+2]
			ab0 += v * x[0]
			ab1 += v * x[1]
		}
		var v0, v1 float64
		if e.e != nil {
			er := e.e[i*2 : i*2+2]
			v0, v1 = er[0], er[1]
		}
		v0 += ab0*h00 + ab1*h10
		v1 += ab0*h01 + ab1*h11
		b := cur[i*2 : i*2+2]
		if e.echo {
			di := e.d[i]
			v0 -= di * (b[0]*g00 + b[1]*g10)
			v1 -= di * (b[0]*g01 + b[1]*g11)
		}
		delta = delta1(delta, v0, b[0])
		delta = delta1(delta, v1, b[1])
		nx := next[i*2 : i*2+2]
		nx[0], nx[1] = v0, v1
	}
	return delta
}

func (e *Engine) rows3(lo, hi int) float64 {
	cur, next := e.ws.cur, e.ws.next
	h00, h01, h02 := e.h[0], e.h[1], e.h[2]
	h10, h11, h12 := e.h[3], e.h[4], e.h[5]
	h20, h21, h22 := e.h[6], e.h[7], e.h[8]
	g00, g01, g02 := e.h2[0], e.h2[1], e.h2[2]
	g10, g11, g12 := e.h2[3], e.h2[4], e.h2[5]
	g20, g21, g22 := e.h2[6], e.h2[7], e.h2[8]
	var delta float64
	for i := lo; i < hi; i++ {
		cols, vals := e.a.RowView(i)
		vals = vals[:len(cols)]
		var ab0, ab1, ab2 float64
		for p, j := range cols {
			v := vals[p]
			x := cur[j*3 : j*3+3]
			ab0 += v * x[0]
			ab1 += v * x[1]
			ab2 += v * x[2]
		}
		var v0, v1, v2 float64
		if e.e != nil {
			er := e.e[i*3 : i*3+3]
			v0, v1, v2 = er[0], er[1], er[2]
		}
		v0 += ab0*h00 + ab1*h10 + ab2*h20
		v1 += ab0*h01 + ab1*h11 + ab2*h21
		v2 += ab0*h02 + ab1*h12 + ab2*h22
		b := cur[i*3 : i*3+3]
		if e.echo {
			di := e.d[i]
			v0 -= di * (b[0]*g00 + b[1]*g10 + b[2]*g20)
			v1 -= di * (b[0]*g01 + b[1]*g11 + b[2]*g21)
			v2 -= di * (b[0]*g02 + b[1]*g12 + b[2]*g22)
		}
		delta = delta1(delta, v0, b[0])
		delta = delta1(delta, v1, b[1])
		delta = delta1(delta, v2, b[2])
		nx := next[i*3 : i*3+3]
		nx[0], nx[1], nx[2] = v0, v1, v2
	}
	return delta
}

func (e *Engine) rows5(lo, hi int) float64 {
	cur, next := e.ws.cur, e.ws.next
	h, g := e.h, e.h2
	var delta float64
	for i := lo; i < hi; i++ {
		cols, vals := e.a.RowView(i)
		vals = vals[:len(cols)]
		var ab0, ab1, ab2, ab3, ab4 float64
		for p, j := range cols {
			v := vals[p]
			x := cur[j*5 : j*5+5]
			ab0 += v * x[0]
			ab1 += v * x[1]
			ab2 += v * x[2]
			ab3 += v * x[3]
			ab4 += v * x[4]
		}
		var v0, v1, v2, v3, v4 float64
		if e.e != nil {
			er := e.e[i*5 : i*5+5]
			v0, v1, v2, v3, v4 = er[0], er[1], er[2], er[3], er[4]
		}
		v0 += ab0*h[0] + ab1*h[5] + ab2*h[10] + ab3*h[15] + ab4*h[20]
		v1 += ab0*h[1] + ab1*h[6] + ab2*h[11] + ab3*h[16] + ab4*h[21]
		v2 += ab0*h[2] + ab1*h[7] + ab2*h[12] + ab3*h[17] + ab4*h[22]
		v3 += ab0*h[3] + ab1*h[8] + ab2*h[13] + ab3*h[18] + ab4*h[23]
		v4 += ab0*h[4] + ab1*h[9] + ab2*h[14] + ab3*h[19] + ab4*h[24]
		b := cur[i*5 : i*5+5]
		if e.echo {
			di := e.d[i]
			v0 -= di * (b[0]*g[0] + b[1]*g[5] + b[2]*g[10] + b[3]*g[15] + b[4]*g[20])
			v1 -= di * (b[0]*g[1] + b[1]*g[6] + b[2]*g[11] + b[3]*g[16] + b[4]*g[21])
			v2 -= di * (b[0]*g[2] + b[1]*g[7] + b[2]*g[12] + b[3]*g[17] + b[4]*g[22])
			v3 -= di * (b[0]*g[3] + b[1]*g[8] + b[2]*g[13] + b[3]*g[18] + b[4]*g[23])
			v4 -= di * (b[0]*g[4] + b[1]*g[9] + b[2]*g[14] + b[3]*g[19] + b[4]*g[24])
		}
		delta = delta1(delta, v0, b[0])
		delta = delta1(delta, v1, b[1])
		delta = delta1(delta, v2, b[2])
		delta = delta1(delta, v3, b[3])
		delta = delta1(delta, v4, b[4])
		nx := next[i*5 : i*5+5]
		nx[0], nx[1], nx[2], nx[3], nx[4] = v0, v1, v2, v3, v4
	}
	return delta
}

// rowsGeneric handles arbitrary k with a per-worker scratch row, still
// fused into a single pass per row.
func (e *Engine) rowsGeneric(lo, hi int, scratch []float64) float64 {
	cur, next := e.ws.cur, e.ws.next
	k := e.k
	h, h2 := e.h, e.h2
	ab := scratch[:k]
	var delta float64
	for i := lo; i < hi; i++ {
		for c := range ab {
			ab[c] = 0
		}
		cols, vals := e.a.RowView(i)
		vals = vals[:len(cols)]
		for p, j := range cols {
			v := vals[p]
			x := cur[j*k : j*k+k]
			for c, xv := range x {
				ab[c] += v * xv
			}
		}
		bRow := cur[i*k : i*k+k]
		nxRow := next[i*k : i*k+k]
		for c := 0; c < k; c++ {
			var v float64
			if e.e != nil {
				v = e.e[i*k+c]
			}
			for j, abv := range ab {
				v += abv * h[j*k+c]
			}
			if e.echo {
				var s float64
				for j, bv := range bRow {
					s += bv * h2[j*k+c]
				}
				v -= e.d[i] * s
			}
			delta = delta1(delta, v, bRow[c])
			nxRow[c] = v
		}
	}
	return delta
}
