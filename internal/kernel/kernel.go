// Package kernel is the fused compute engine behind the iterative
// linearized solvers. One LinBP round (Eq. 6/7)
//
//	Bˆ(l+1) = Eˆ + A·Bˆ(l)·Hˆ − D·Bˆ(l)·Hˆ²
//
// is executed as a single row-partitioned pass: for every node the
// sparse A·Bˆ product, the k×k coupling multiply, the echo-cancellation
// term, and the convergence delta are computed together while the row is
// hot in cache, with Hˆ and Hˆ² hoisted into flat row-major slices (no
// bounds-checked At() calls in the inner loop) and fully unrolled fast
// paths for the class counts the paper's experiments use (k ∈ {2, 3, 5},
// plus k = 1 for the binary FABP collapse of Appendix E).
//
// The engine owns reusable buffers: repeated solves on the same graph —
// the serving scenario the ROADMAP targets — perform zero steady-state
// allocations. Workspaces are recycled through a sync.Pool so that even
// independent Run calls stop reallocating their n×k work arrays. With
// Workers > 1 the rows are split into nnz-balanced spans processed by a
// persistent goroutine pool (the role Parallel Colt played in the
// paper's JAVA implementation); each worker reduces a local max-delta
// and the engine folds them at the join.
//
// Two serving-oriented hooks extend the basic round loop. RunContext
// checks context cancellation at every round boundary, so a deadline or
// cancel aborts a running solve within one kernel round. Config.Blocks
// batches several independent solves over the same (A, D, H) into one
// engine: the belief state widens to n×(blocks·k), each round traverses
// the CSR once for the whole batch (the sparse product reads each
// neighbor row as one contiguous blocks·k span instead of `blocks`
// scattered k-wide loads), and the coupling is applied block-diagonally
// so every block evolves exactly as it would alone.
package kernel

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/dense"
	"repro/internal/errs"
	"repro/internal/sparse"
)

// Config describes one fused-iteration operator
// B ↦ E + A·B·H − D∘(B·H₂).
type Config struct {
	// A is the n×n sparse adjacency matrix.
	A *sparse.CSR
	// D holds per-row echo scales (the weighted degrees of Section 5.2).
	// nil disables the echo term entirely (LinBP*).
	D []float64
	// H is the k×k residual coupling matrix Hˆ.
	H *dense.Matrix
	// EchoH optionally overrides the echo coupling matrix. When nil and
	// D is set, Hˆ² is used (LinBP). FABP's binary collapse needs the
	// override: its echo coefficient c2 is not c1² (Appendix E, Eq. 33).
	EchoH *dense.Matrix
	// Workers sets the goroutine count for row-partitioned steps.
	// Values <= 1 select the serial kernel.
	Workers int
	// Blocks batches that many independent solves sharing (A, D, H)
	// into one engine. The flat state becomes n×(blocks·k) with the
	// blocks interleaved per node, and H is applied per k-block, so
	// each block evolves exactly as it would alone (up to the
	// summation order of the blocked vs unrolled coupling multiply,
	// ~1 ulp per round). Values <= 1 select the plain engine.
	Blocks int
	// Layout selects the CSR index representation; see Layout. The
	// zero value (LayoutAuto) is right for every caller except layout
	// benchmarks and debugging.
	Layout Layout
	// SymmetricA declares that A equals its transpose bitwise (true
	// for every adjacency built from an undirected graph, including
	// permuted ones). It licenses the push-based sparse round: the
	// second round of a solve-from-scratch starts from Bˆ = Eˆ, whose
	// rows are mostly zero, so instead of pulling over every stored
	// entry the engine pushes each active row's contribution through
	// its own adjacency row (= its column, by symmetry) and touches
	// only the active-incident entries. The summation order matches
	// the pull kernels term for term, so results stay bitwise
	// identical.
	SymmetricA bool
	// PartitionStarts, when it holds at least two boundaries, selects
	// the partition-parallel data plane (see partition.go): row block p
	// covers [PartitionStarts[p], PartitionStarts[p+1]), one persistent
	// OS-thread-locked worker per block with first-touched private CSR
	// copies and partition-local delta accumulators. It must span
	// [0, n) contiguously. Partitioned mode replaces the span pool, so
	// Workers is ignored while it is set.
	PartitionStarts []int
}

// Layout selects the CSR index representation of an engine.
type Layout int

const (
	// LayoutAuto adopts the compact layout whenever the matrix fits
	// int32 indices — in practice always; the wide form remains for
	// beyond-int32 matrices and for A/B layout benchmarking.
	LayoutAuto Layout = iota
	// LayoutWide pins the engine to the original int-indexed kernels —
	// the PR 2 data plane, kept verbatim as the comparison baseline
	// and as the fallback for matrices whose dimensions or nonzero
	// count exceed int32.
	LayoutWide
	// LayoutCompact forces the int32 form (falling back to wide when
	// the matrix does not fit it).
	LayoutCompact
)

// The compact kernels are separate, hand-hoisted implementations: the
// int32 index stream halves the index bytes per traversal, and every
// engine field the row loop touches (explicit beliefs, degrees, flags)
// is copied to locals up front — stores through the output slice keep
// the compiler from proving the Engine struct unchanged, so the
// original methods reload those fields on every row. Both paths are
// bitwise identical in arithmetic order (asserted by the equivalence
// tests); only the bytes moved and the surrounding scaffolding differ.

// span is one contiguous, nnz-balanced row range of a parallel pass.
type span struct{ lo, hi int }

// scratchStride returns the padded per-worker scratch width: at least k,
// rounded up to a full 64-byte cache line to avoid false sharing.
//
//lsbp:hotpath
func scratchStride(k int) int { return (k + 7) &^ 7 }

// Workspace holds the large reusable buffers of an Engine. Workspaces
// are recycled via GetWorkspace/Release so repeated solves reuse the
// same n×k arrays instead of reallocating them per call.
type Workspace struct {
	cur, next []float64
	scratch   []float64 // per-worker A·B row scratch, cache-line padded
	hbuf      []float64 // flat H and H₂/EchoH, 2·k² values
	act       []byte    // per-node activity map for the sparse round 2
	dirty     []byte    // rows reached by the push-based sparse round
}

var wsPool = sync.Pool{New: func() any { return new(Workspace) }}

// GetWorkspace returns a workspace from the package pool. Release it
// when the engine using it is closed.
//
//lsbp:hotpath-init
func GetWorkspace() *Workspace { return wsPool.Get().(*Workspace) }

// Release returns the workspace to the pool. The caller must not use
// the workspace (or any engine built on it) afterwards.
//
//lsbp:hotpath-init
func (w *Workspace) Release() { wsPool.Put(w) }

// grow resizes the workspace for a problem with n rows of width wd
// (wd = blocks·k) and a k×k coupling, reusing existing capacity
// whenever possible.
//
//lsbp:hotpath-init
func (w *Workspace) grow(n, wd, k, workers int) {
	w.cur = growSlice(w.cur, n*wd)
	w.next = growSlice(w.next, n*wd)
	w.scratch = growSlice(w.scratch, workers*scratchStride(wd))
	w.hbuf = growSlice(w.hbuf, 2*k*k)
	if cap(w.act) < n {
		w.act = make([]byte, n)
	}
	w.act = w.act[:n]
	if cap(w.dirty) < n {
		w.dirty = make([]byte, n)
	}
	w.dirty = w.dirty[:n]
}

//lsbp:hotpath-init
func growSlice(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Engine executes fused LinBP iterations over one fixed (A, D, H)
// configuration. It is built once per graph and reused across solves;
// see New for the construction contract and Close for teardown.
type Engine struct {
	a *sparse.CSR
	// Compact index form; nil on the wide (legacy) layout, which reads
	// the CSR through RowView instead. vals aliases the CSR values.
	rp32    []int32
	ci32    []int32
	vals    []float64
	d       []float64
	e       []float64 // explicit residuals Eˆ, flat n×wd; nil reads as 0
	h, h2   []float64 // flat k×k coupling and echo coupling
	n, k    int
	blocks  int // independent solves batched into this engine
	wd      int // row width: blocks·k
	echo    bool
	symA    bool // A is bitwise symmetric (Config.SymmetricA)
	workers int
	ws      *Workspace

	// startZero marks that the belief state is the all-zero start of
	// Section 3, letting the next Step shortcut to Bˆ¹ = Eˆ (the sparse
	// product of a zero matrix contributes nothing), which skips one
	// full SpMM round on every solve-from-scratch.
	startZero bool
	// track enables the per-entry max-delta reduction. RunContext
	// clears it for the non-final rounds of fixed-round runs (tol < 0
	// with no per-iteration observer), where the intermediate deltas
	// are never read.
	track bool
	// sparseNext marks that the state equals Eˆ (the shortcut round
	// just ran), so the next round may skip neighbors whose belief row
	// is entirely zero — explicit beliefs are sparse, making round 2
	// mostly dead loads. act is the per-node nonzero map for that
	// round (nil in dense rounds); skipping exact-zero rows leaves the
	// arithmetic bitwise identical.
	sparseNext bool
	act        []byte

	// Parallel machinery, spawned lazily on the first parallel pass.
	spans   []span
	work    chan span
	results chan float64
	started bool
	closed  bool

	// Partition-parallel plane (see partition.go), spawned lazily on
	// the first partitioned pass. Non-nil partStarts selects the plane.
	partStarts  []int
	partWorkers []*partWorker
	partStarted bool
}

// New validates cfg and builds an engine on ws. A nil ws allocates a
// private workspace; passing GetWorkspace() enables pooled reuse (the
// caller releases it after Close). Beliefs start at Bˆ = 0.
func New(cfg Config, ws *Workspace) (*Engine, error) {
	if cfg.A == nil || cfg.H == nil {
		return nil, fmt.Errorf("kernel: config needs A and H: %w", errs.ErrInvalidInput)
	}
	n := cfg.A.Rows()
	if cfg.A.Cols() != n {
		return nil, fmt.Errorf("kernel: adjacency %dx%d is not square: %w", n, cfg.A.Cols(), errs.ErrDimensionMismatch)
	}
	k := cfg.H.Rows()
	if cfg.H.Cols() != k {
		return nil, fmt.Errorf("kernel: coupling %dx%d is not square: %w", k, cfg.H.Cols(), errs.ErrDimensionMismatch)
	}
	if cfg.D != nil && len(cfg.D) != n {
		return nil, fmt.Errorf("kernel: degree vector length %d, want %d: %w", len(cfg.D), n, errs.ErrDimensionMismatch)
	}
	if cfg.EchoH != nil && (cfg.EchoH.Rows() != k || cfg.EchoH.Cols() != k) {
		return nil, fmt.Errorf("kernel: echo coupling %dx%d, want %dx%d: %w", cfg.EchoH.Rows(), cfg.EchoH.Cols(), k, k, errs.ErrDimensionMismatch)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	blocks := cfg.Blocks
	if blocks < 1 {
		blocks = 1
	}
	if cfg.PartitionStarts != nil {
		if err := validPartitionStarts(cfg.PartitionStarts, n); err != nil {
			return nil, err
		}
	}
	if ws == nil {
		ws = new(Workspace)
	}
	ws.grow(n, blocks*k, k, workers)

	e := &Engine{
		a:       cfg.A,
		d:       cfg.D,
		n:       n,
		k:       k,
		blocks:  blocks,
		wd:      blocks * k,
		echo:    cfg.D != nil,
		symA:    cfg.SymmetricA,
		workers: workers,
		ws:      ws,
		track:   true,
	}
	if len(cfg.PartitionStarts) >= 2 {
		e.partStarts = cfg.PartitionStarts
	}
	// Pick the index layout once; the compact form is built lazily on
	// the CSR and shared by every engine over the same graph.
	if cfg.Layout != LayoutWide {
		if rp32, ci32, ok := cfg.A.CompactIndex(); ok {
			e.rp32, e.ci32 = rp32, ci32
			_, _, e.vals = cfg.A.Index()
		}
	}
	// Hoist H (and the echo coupling) into flat row-major slices once.
	e.h = ws.hbuf[:k*k]
	e.h2 = ws.hbuf[k*k : 2*k*k]
	hd := cfg.H.Data()
	copy(e.h, hd)
	switch {
	case cfg.EchoH != nil:
		copy(e.h2, cfg.EchoH.Data())
	case e.echo:
		// h2 = H·H computed in place, no dense.Matrix allocation.
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				var s float64
				for m := 0; m < k; m++ {
					s += hd[i*k+m] * hd[m*k+j]
				}
				e.h2[i*k+j] = s
			}
		}
	default:
		for i := range e.h2 {
			e.h2[i] = 0
		}
	}
	e.Reset()
	return e, nil
}

// checkOpen panics on use after Close: a closed engine may share its
// workspace with a newer engine through the pool, so continuing to
// write would silently corrupt the other engine's state.
//
//lsbp:hotpath
func (e *Engine) checkOpen() {
	if e.closed {
		panic("kernel: engine used after Close")
	}
}

// Reset zeroes the belief state (the Bˆ = 0 start of Section 3).
//
//lsbp:hotpath
func (e *Engine) Reset() {
	e.checkOpen()
	for i := range e.ws.cur {
		e.ws.cur[i] = 0
	}
	e.startZero = true
	e.sparseNext = false
}

// ResetFast marks the zero start of Section 3 without clearing the
// state buffer: the first Step's Bˆ¹ = Eˆ shortcut overwrites the state
// in full (or zeroes it when Eˆ is nil), so the eager clear would be
// redundant stores. Callers that might read Beliefs before completing
// a round must use Reset.
//
//lsbp:hotpath
func (e *Engine) ResetFast() {
	e.checkOpen()
	e.startZero = true
	e.sparseNext = false
}

// Width returns the flat row width of the engine's state: k for a
// single-problem engine, blocks·k for a batched one.
//
//lsbp:hotpath
func (e *Engine) Width() int { return e.wd }

// SetStart warm-starts the iteration from b (flat n×width, copied).
//
//lsbp:hotpath
func (e *Engine) SetStart(b []float64) {
	e.checkOpen()
	if len(b) != e.n*e.wd {
		panic(fmt.Sprintf("kernel: start length %d, want %d", len(b), e.n*e.wd))
	}
	copy(e.ws.cur, b)
	e.startZero = false
	e.sparseNext = false
}

// SetStartPermuted warm-starts the iteration from b (flat n×width,
// copied) under the node relabeling perm (perm[old] = new): b's row i
// lands at state row perm[i], so callers holding beliefs in their own
// node order can seed a layout-reordered engine in one pass with no
// intermediate shuffle buffer. A nil perm is SetStart. Like SetStart it
// cancels the Bˆ¹ = Eˆ zero-start shortcut: the next Step runs a full
// round from the provided state.
//
//lsbp:hotpath
func (e *Engine) SetStartPermuted(b []float64, perm []int) {
	if perm == nil {
		e.SetStart(b)
		return
	}
	e.checkOpen()
	if len(b) != e.n*e.wd {
		panic(fmt.Sprintf("kernel: start length %d, want %d", len(b), e.n*e.wd))
	}
	if len(perm) != e.n {
		panic(fmt.Sprintf("kernel: start permutation length %d, want %d", len(perm), e.n))
	}
	wd := e.wd
	cur := e.ws.cur
	for i, nw := range perm {
		copy(cur[nw*wd:nw*wd+wd], b[i*wd:i*wd+wd])
	}
	e.startZero = false
	e.sparseNext = false
}

// SetExplicit installs the explicit residual beliefs Eˆ (flat n×width).
// The slice is retained, not copied, so callers may mutate entries
// between steps (the incremental solver does). nil means Eˆ = 0.
//
//lsbp:hotpath
func (e *Engine) SetExplicit(explicit []float64) {
	if explicit != nil && len(explicit) != e.n*e.wd {
		panic(fmt.Sprintf("kernel: explicit length %d, want %d", len(explicit), e.n*e.wd))
	}
	e.e = explicit
}

// Beliefs returns the current belief state as a flat n×width view of
// the engine's buffer. Valid until the next Step/Run; treat as
// read-only.
//
//lsbp:hotpath
func (e *Engine) Beliefs() []float64 {
	e.checkOpen()
	return e.ws.cur[:e.n*e.wd]
}

// Step executes one fused update round and returns the maximum absolute
// belief change. Steady-state Steps perform no allocations.
//
//lsbp:hotpath
func (e *Engine) Step() float64 {
	e.checkOpen()
	if e.startZero {
		// Bˆ¹ = Eˆ + A·0·Hˆ − D∘(0·Hˆ₂) = Eˆ exactly: the first round
		// from the zero start is a copy, no sparse pass needed. The
		// copy doubles as the scan for the per-node activity map that
		// lets the next round skip all-zero neighbor rows.
		e.startZero = false
		state := e.ws.cur[:e.n*e.wd]
		if e.e == nil {
			// Eˆ = 0: the zero state is the fixpoint step. Clear it
			// explicitly so the shortcut also covers ResetFast.
			for i := range state {
				state[i] = 0
			}
			return 0
		}
		copy(state, e.e)
		act := e.ws.act[:e.n]
		wd := e.wd
		var delta float64
		for i := 0; i < e.n; i++ {
			row := state[i*wd : i*wd+wd]
			var a byte
			for _, v := range row {
				if v != 0 {
					a = 1
					break
				}
			}
			act[i] = a
			if e.track {
				for _, v := range row {
					delta = delta1(delta, v, 0)
				}
			}
		}
		e.sparseNext = true
		return delta
	}
	if e.sparseNext {
		e.sparseNext = false
		if e.sparseRoundEligible() {
			// Push-based sparse round: touch only the entries incident
			// to active rows instead of scanning the whole structure.
			delta := e.sparseRoundCompact()
			e.ws.cur, e.ws.next = e.ws.next, e.ws.cur
			return delta
		}
		e.act = e.ws.act[:e.n]
	} else {
		e.act = nil
	}
	delta := e.pass()
	e.act = nil
	e.ws.cur, e.ws.next = e.ws.next, e.ws.cur
	return delta
}

// Run iterates Step up to maxIter times, stopping early once the delta
// drops to tol (tol < 0 forces exactly maxIter rounds, the paper's
// timing setup). onIter, if non-nil, observes every round.
//
//lsbp:hotpath
func (e *Engine) Run(maxIter int, tol float64, onIter func(iter int, delta float64)) (iters int, delta float64, converged bool) {
	iters, delta, converged, _ = e.RunContext(context.Background(), maxIter, tol, onIter)
	return iters, delta, converged
}

// RunContext is Run with cooperative cancellation: ctx is checked at
// every round boundary, so a cancelled context or an expired deadline
// aborts the solve within one kernel round. On abort it returns the
// rounds completed so far and ctx.Err() (context.Canceled or
// context.DeadlineExceeded); the belief state holds the last completed
// iterate. A nil ctx disables the checks.
//
//lsbp:hotpath
func (e *Engine) RunContext(ctx context.Context, maxIter int, tol float64, onIter func(iter int, delta float64)) (iters int, delta float64, converged bool, err error) {
	e.checkOpen()
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	// Fixed-round runs with no observer never read the intermediate
	// deltas; skip the per-entry reduction until the final round.
	skipDelta := tol < 0 && onIter == nil
	defer func() { e.track = true }()
	for iters < maxIter {
		if done != nil {
			select {
			case <-done:
				return iters, delta, false, ctx.Err()
			default:
			}
		}
		e.track = !skipDelta || iters+1 == maxIter
		delta = e.Step()
		iters++
		if onIter != nil {
			onIter(iters, delta)
		}
		// Step maps NaN deltas to +Inf (divergence is reported, never
		// masked); once the update has overflowed no later round can
		// shrink it back under tol, so stop paying for dead rounds and
		// surface the divergence as a typed error.
		if math.IsInf(delta, 1) {
			return iters, delta, false,
				fmt.Errorf("kernel: belief update overflowed at iteration %d: %w", iters, errs.ErrNonFinite)
		}
		if delta <= tol {
			return iters, delta, true, nil
		}
	}
	return iters, delta, false, nil
}

// ApplyInto computes dst = A·src·H − D∘(src·H₂) — the bare update
// operator without the explicit-belief term — through the same fused
// row kernels as Step. It backs spectral.LinBPOp's power iteration
// (Lemma 8), so the spectral criteria and the solver share one
// implementation of the operator. dst and src are flat n×width and
// must not alias. The engine's iteration state is left untouched.
//
//lsbp:hotpath
func (e *Engine) ApplyInto(dst, src []float64) {
	e.checkOpen()
	if len(src) != e.n*e.wd || len(dst) != e.n*e.wd {
		panic("kernel: ApplyInto dimension mismatch")
	}
	savedCur, savedNext, savedE := e.ws.cur, e.ws.next, e.e
	e.ws.cur, e.ws.next, e.e = src, dst, nil
	e.pass()
	e.ws.cur, e.ws.next, e.e = savedCur, savedNext, savedE
}

// pass runs one full fused update ws.cur → ws.next and returns the max
// delta (ignored by the spectral ApplyInto path).
//
//lsbp:hotpath
func (e *Engine) pass() float64 {
	if e.partStarts != nil {
		return e.partPass()
	}
	if e.workers > 1 && e.n >= 2*e.workers {
		e.startWorkers()
		for _, s := range e.spans {
			e.work <- s
		}
		var delta float64
		for range e.spans {
			if d := <-e.results; d > delta {
				delta = d
			}
		}
		return delta
	}
	// The serial fallback runs the identical row kernel as the parallel
	// spans, so results are bitwise identical across Workers settings.
	return e.rows(0, e.n, e.ws.scratch[:scratchStride(e.wd)])
}

// startWorkers lazily spawns the persistent goroutine pool and the
// nnz-balanced spans it consumes. Spans are finer than the worker count
// so a heavy span (Kronecker graphs have very skewed rows) can be
// compensated by work stealing from the shared channel.
//
//lsbp:hotpath-init
func (e *Engine) startWorkers() {
	if e.started {
		return
	}
	nspans := e.workers * 4
	target := e.a.NNZ()/nspans + 1
	stride := scratchStride(e.wd)
	e.spans = e.spans[:0]
	lo, acc := 0, 0
	for i := 0; i < e.n; i++ {
		acc += e.a.RowNNZ(i)
		if acc >= target && i+1 < e.n {
			e.spans = append(e.spans, span{lo, i + 1})
			lo, acc = i+1, 0
		}
	}
	e.spans = append(e.spans, span{lo, e.n})
	e.work = make(chan span, len(e.spans))
	e.results = make(chan float64, len(e.spans))
	for w := 0; w < e.workers; w++ {
		go e.worker(e.ws.scratch[w*stride : (w+1)*stride])
	}
	e.started = true
}

//lsbp:hotpath
func (e *Engine) worker(scratch []float64) {
	for s := range e.work {
		e.results <- e.rows(s.lo, s.hi, scratch)
	}
}

// Close stops the worker pool. The engine must not be used afterwards;
// a workspace obtained from GetWorkspace may be Released only after
// Close returns.
func (e *Engine) Close() {
	if e.started && !e.closed {
		close(e.work)
	}
	if e.partStarted && !e.closed {
		for _, w := range e.partWorkers {
			close(w.work)
		}
	}
	e.closed = true
}

// rows processes rows [lo, hi) of one update round, fused: sparse
// product, coupling multiply, echo term, and local max delta in a
// single pass per row. scratch provides width floats of per-worker
// storage for the generic/blocked path. The compact layout dispatches
// to the hoisted int32 kernels; the wide layout runs the original
// (PR 2) methods unchanged.
//
//lsbp:hotpath
func (e *Engine) rows(lo, hi int, scratch []float64) float64 {
	if e.ci32 != nil {
		// The compact kernels cover the unrolled shapes (the class
		// counts and batch widths of the paper's workloads); generic
		// shapes fall through to the wide blocked kernel, whose
		// scratch-row inner loop gains nothing from the narrower index.
		// The width-12 batch blocks additionally gate on graph size:
		// their belief traffic already dominates the index stream, so
		// the narrower index only pays once the working set leaves
		// cache — below that the wide register blocks are faster.
		if e.blocks == 1 {
			switch e.k {
			case 1:
				return e.rows1Compact(lo, hi)
			case 2:
				return e.rows2Compact(lo, hi)
			case 3:
				return e.rows3Compact(lo, hi)
			case 5:
				return e.rows5Compact(lo, hi)
			}
		} else if e.n >= compactBatchMinNodes {
			switch {
			case e.k == 3 && e.blocks == 4:
				return e.rows3x4Compact(lo, hi)
			case e.k == 2 && e.blocks == 6:
				return e.rows2x6Compact(lo, hi)
			}
		}
	}
	if e.blocks == 1 {
		switch e.k {
		case 1:
			return e.rows1(lo, hi)
		case 2:
			return e.rows2(lo, hi)
		case 3:
			return e.rows3(lo, hi)
		case 5:
			return e.rows5(lo, hi)
		}
	} else {
		// Register-blocked batch fast paths: narrow enough (width 12)
		// that all accumulators stay in registers, with the column
		// index and value loads shared across the whole chunk. The
		// summation order matches the single-problem fast paths, so
		// each block is bitwise identical to its own serial solve.
		switch {
		case e.k == 3 && e.blocks == 4:
			return e.rows3x4(lo, hi)
		case e.k == 2 && e.blocks == 6:
			return e.rows2x6(lo, hi)
		}
	}
	return e.rowsBlocked(lo, hi, scratch)
}

// rows3x4 fuses four k=3 solves (width 12): one CSR traversal per row
// feeds twelve register accumulators, then the coupling and echo terms
// are applied per block exactly as rows3 does.
//
//lsbp:hotpath
func (e *Engine) rows3x4(lo, hi int) float64 {
	cur, next := e.ws.cur, e.ws.next
	h, g := e.h, e.h2
	h00, h01, h02 := h[0], h[1], h[2]
	h10, h11, h12 := h[3], h[4], h[5]
	h20, h21, h22 := h[6], h[7], h[8]
	g00, g01, g02 := g[0], g[1], g[2]
	g10, g11, g12 := g[3], g[4], g[5]
	g20, g21, g22 := g[6], g[7], g[8]
	act := e.act
	var delta float64
	for i := lo; i < hi; i++ {
		cols, vals := e.a.RowView(i)
		vals = vals[:len(cols)]
		var a0, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11 float64
		for p, j := range cols {
			if act != nil && act[j] == 0 {
				continue // neighbor's belief row is exactly zero
			}
			v := vals[p]
			x := cur[j*12 : j*12+12]
			a0 += v * x[0]
			a1 += v * x[1]
			a2 += v * x[2]
			a3 += v * x[3]
			a4 += v * x[4]
			a5 += v * x[5]
			a6 += v * x[6]
			a7 += v * x[7]
			a8 += v * x[8]
			a9 += v * x[9]
			a10 += v * x[10]
			a11 += v * x[11]
		}
		b := cur[i*12 : i*12+12]
		nx := next[i*12 : i*12+12]
		var e0, e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11 float64
		if e.e != nil {
			er := e.e[i*12 : i*12+12]
			e0, e1, e2, e3, e4, e5 = er[0], er[1], er[2], er[3], er[4], er[5]
			e6, e7, e8, e9, e10, e11 = er[6], er[7], er[8], er[9], er[10], er[11]
		}
		v0 := e0 + (a0*h00 + a1*h10 + a2*h20)
		v1 := e1 + (a0*h01 + a1*h11 + a2*h21)
		v2 := e2 + (a0*h02 + a1*h12 + a2*h22)
		v3 := e3 + (a3*h00 + a4*h10 + a5*h20)
		v4 := e4 + (a3*h01 + a4*h11 + a5*h21)
		v5 := e5 + (a3*h02 + a4*h12 + a5*h22)
		v6 := e6 + (a6*h00 + a7*h10 + a8*h20)
		v7 := e7 + (a6*h01 + a7*h11 + a8*h21)
		v8 := e8 + (a6*h02 + a7*h12 + a8*h22)
		v9 := e9 + (a9*h00 + a10*h10 + a11*h20)
		v10 := e10 + (a9*h01 + a10*h11 + a11*h21)
		v11 := e11 + (a9*h02 + a10*h12 + a11*h22)
		if e.echo {
			di := e.d[i]
			v0 -= di * (b[0]*g00 + b[1]*g10 + b[2]*g20)
			v1 -= di * (b[0]*g01 + b[1]*g11 + b[2]*g21)
			v2 -= di * (b[0]*g02 + b[1]*g12 + b[2]*g22)
			v3 -= di * (b[3]*g00 + b[4]*g10 + b[5]*g20)
			v4 -= di * (b[3]*g01 + b[4]*g11 + b[5]*g21)
			v5 -= di * (b[3]*g02 + b[4]*g12 + b[5]*g22)
			v6 -= di * (b[6]*g00 + b[7]*g10 + b[8]*g20)
			v7 -= di * (b[6]*g01 + b[7]*g11 + b[8]*g21)
			v8 -= di * (b[6]*g02 + b[7]*g12 + b[8]*g22)
			v9 -= di * (b[9]*g00 + b[10]*g10 + b[11]*g20)
			v10 -= di * (b[9]*g01 + b[10]*g11 + b[11]*g21)
			v11 -= di * (b[9]*g02 + b[10]*g12 + b[11]*g22)
		}
		if e.track {
			delta = delta1(delta, v0, b[0])
			delta = delta1(delta, v1, b[1])
			delta = delta1(delta, v2, b[2])
			delta = delta1(delta, v3, b[3])
			delta = delta1(delta, v4, b[4])
			delta = delta1(delta, v5, b[5])
			delta = delta1(delta, v6, b[6])
			delta = delta1(delta, v7, b[7])
			delta = delta1(delta, v8, b[8])
			delta = delta1(delta, v9, b[9])
			delta = delta1(delta, v10, b[10])
			delta = delta1(delta, v11, b[11])
		}
		nx[0], nx[1], nx[2], nx[3], nx[4], nx[5] = v0, v1, v2, v3, v4, v5
		nx[6], nx[7], nx[8], nx[9], nx[10], nx[11] = v6, v7, v8, v9, v10, v11
	}
	return delta
}

// rows2x6 fuses six k=2 solves (width 12), the k=2 analogue of rows3x4
// with the summation order of rows2.
//
//lsbp:hotpath
func (e *Engine) rows2x6(lo, hi int) float64 {
	cur, next := e.ws.cur, e.ws.next
	h00, h01, h10, h11 := e.h[0], e.h[1], e.h[2], e.h[3]
	g00, g01, g10, g11 := e.h2[0], e.h2[1], e.h2[2], e.h2[3]
	act := e.act
	var delta float64
	for i := lo; i < hi; i++ {
		cols, vals := e.a.RowView(i)
		vals = vals[:len(cols)]
		var a0, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11 float64
		for p, j := range cols {
			if act != nil && act[j] == 0 {
				continue // neighbor's belief row is exactly zero
			}
			v := vals[p]
			x := cur[j*12 : j*12+12]
			a0 += v * x[0]
			a1 += v * x[1]
			a2 += v * x[2]
			a3 += v * x[3]
			a4 += v * x[4]
			a5 += v * x[5]
			a6 += v * x[6]
			a7 += v * x[7]
			a8 += v * x[8]
			a9 += v * x[9]
			a10 += v * x[10]
			a11 += v * x[11]
		}
		b := cur[i*12 : i*12+12]
		nx := next[i*12 : i*12+12]
		var e0, e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11 float64
		if e.e != nil {
			er := e.e[i*12 : i*12+12]
			e0, e1, e2, e3, e4, e5 = er[0], er[1], er[2], er[3], er[4], er[5]
			e6, e7, e8, e9, e10, e11 = er[6], er[7], er[8], er[9], er[10], er[11]
		}
		v0 := e0 + (a0*h00 + a1*h10)
		v1 := e1 + (a0*h01 + a1*h11)
		v2 := e2 + (a2*h00 + a3*h10)
		v3 := e3 + (a2*h01 + a3*h11)
		v4 := e4 + (a4*h00 + a5*h10)
		v5 := e5 + (a4*h01 + a5*h11)
		v6 := e6 + (a6*h00 + a7*h10)
		v7 := e7 + (a6*h01 + a7*h11)
		v8 := e8 + (a8*h00 + a9*h10)
		v9 := e9 + (a8*h01 + a9*h11)
		v10 := e10 + (a10*h00 + a11*h10)
		v11 := e11 + (a10*h01 + a11*h11)
		if e.echo {
			di := e.d[i]
			v0 -= di * (b[0]*g00 + b[1]*g10)
			v1 -= di * (b[0]*g01 + b[1]*g11)
			v2 -= di * (b[2]*g00 + b[3]*g10)
			v3 -= di * (b[2]*g01 + b[3]*g11)
			v4 -= di * (b[4]*g00 + b[5]*g10)
			v5 -= di * (b[4]*g01 + b[5]*g11)
			v6 -= di * (b[6]*g00 + b[7]*g10)
			v7 -= di * (b[6]*g01 + b[7]*g11)
			v8 -= di * (b[8]*g00 + b[9]*g10)
			v9 -= di * (b[8]*g01 + b[9]*g11)
			v10 -= di * (b[10]*g00 + b[11]*g10)
			v11 -= di * (b[10]*g01 + b[11]*g11)
		}
		if e.track {
			delta = delta1(delta, v0, b[0])
			delta = delta1(delta, v1, b[1])
			delta = delta1(delta, v2, b[2])
			delta = delta1(delta, v3, b[3])
			delta = delta1(delta, v4, b[4])
			delta = delta1(delta, v5, b[5])
			delta = delta1(delta, v6, b[6])
			delta = delta1(delta, v7, b[7])
			delta = delta1(delta, v8, b[8])
			delta = delta1(delta, v9, b[9])
			delta = delta1(delta, v10, b[10])
			delta = delta1(delta, v11, b[11])
		}
		nx[0], nx[1], nx[2], nx[3], nx[4], nx[5] = v0, v1, v2, v3, v4, v5
		nx[6], nx[7], nx[8], nx[9], nx[10], nx[11] = v6, v7, v8, v9, v10, v11
	}
	return delta
}

// delta1 folds one element change into the running max, mapping the NaN
// of Inf−Inf (post-overflow divergence) to +Inf so divergence is
// reported rather than masked.
//
//lsbp:hotpath
func delta1(delta, v, b float64) float64 {
	ch := math.Abs(v - b)
	if ch != ch {
		ch = math.Inf(1)
	}
	if ch > delta {
		return ch
	}
	return delta
}

// rows1 is the k = 1 scalar collapse (FABP, Appendix E):
// next = e + h·(A·b) − h₂·d∘b.
//
//lsbp:hotpath
func (e *Engine) rows1(lo, hi int) float64 {
	cur, next := e.ws.cur, e.ws.next
	h, h2 := e.h[0], e.h2[0]
	var delta float64
	for i := lo; i < hi; i++ {
		cols, vals := e.a.RowView(i)
		vals = vals[:len(cols)]
		var ab float64
		for p, j := range cols {
			ab += vals[p] * cur[j]
		}
		var v float64
		if e.e != nil {
			v = e.e[i]
		}
		v += ab * h
		if e.echo {
			v -= e.d[i] * cur[i] * h2
		}
		if e.track {
			delta = delta1(delta, v, cur[i])
		}
		next[i] = v
	}
	return delta
}

//lsbp:hotpath
func (e *Engine) rows2(lo, hi int) float64 {
	cur, next := e.ws.cur, e.ws.next
	h00, h01, h10, h11 := e.h[0], e.h[1], e.h[2], e.h[3]
	g00, g01, g10, g11 := e.h2[0], e.h2[1], e.h2[2], e.h2[3]
	var delta float64
	for i := lo; i < hi; i++ {
		cols, vals := e.a.RowView(i)
		vals = vals[:len(cols)]
		var ab0, ab1 float64
		for p, j := range cols {
			v := vals[p]
			x := cur[j*2 : j*2+2]
			ab0 += v * x[0]
			ab1 += v * x[1]
		}
		var v0, v1 float64
		if e.e != nil {
			er := e.e[i*2 : i*2+2]
			v0, v1 = er[0], er[1]
		}
		v0 += ab0*h00 + ab1*h10
		v1 += ab0*h01 + ab1*h11
		b := cur[i*2 : i*2+2]
		if e.echo {
			di := e.d[i]
			v0 -= di * (b[0]*g00 + b[1]*g10)
			v1 -= di * (b[0]*g01 + b[1]*g11)
		}
		if e.track {
			delta = delta1(delta, v0, b[0])
			delta = delta1(delta, v1, b[1])
		}
		nx := next[i*2 : i*2+2]
		nx[0], nx[1] = v0, v1
	}
	return delta
}

//lsbp:hotpath
func (e *Engine) rows3(lo, hi int) float64 {
	cur, next := e.ws.cur, e.ws.next
	h00, h01, h02 := e.h[0], e.h[1], e.h[2]
	h10, h11, h12 := e.h[3], e.h[4], e.h[5]
	h20, h21, h22 := e.h[6], e.h[7], e.h[8]
	g00, g01, g02 := e.h2[0], e.h2[1], e.h2[2]
	g10, g11, g12 := e.h2[3], e.h2[4], e.h2[5]
	g20, g21, g22 := e.h2[6], e.h2[7], e.h2[8]
	var delta float64
	for i := lo; i < hi; i++ {
		cols, vals := e.a.RowView(i)
		vals = vals[:len(cols)]
		var ab0, ab1, ab2 float64
		for p, j := range cols {
			v := vals[p]
			x := cur[j*3 : j*3+3]
			ab0 += v * x[0]
			ab1 += v * x[1]
			ab2 += v * x[2]
		}
		var v0, v1, v2 float64
		if e.e != nil {
			er := e.e[i*3 : i*3+3]
			v0, v1, v2 = er[0], er[1], er[2]
		}
		v0 += ab0*h00 + ab1*h10 + ab2*h20
		v1 += ab0*h01 + ab1*h11 + ab2*h21
		v2 += ab0*h02 + ab1*h12 + ab2*h22
		b := cur[i*3 : i*3+3]
		if e.echo {
			di := e.d[i]
			v0 -= di * (b[0]*g00 + b[1]*g10 + b[2]*g20)
			v1 -= di * (b[0]*g01 + b[1]*g11 + b[2]*g21)
			v2 -= di * (b[0]*g02 + b[1]*g12 + b[2]*g22)
		}
		if e.track {
			delta = delta1(delta, v0, b[0])
			delta = delta1(delta, v1, b[1])
			delta = delta1(delta, v2, b[2])
		}
		nx := next[i*3 : i*3+3]
		nx[0], nx[1], nx[2] = v0, v1, v2
	}
	return delta
}

//lsbp:hotpath
func (e *Engine) rows5(lo, hi int) float64 {
	cur, next := e.ws.cur, e.ws.next
	h, g := e.h, e.h2
	var delta float64
	for i := lo; i < hi; i++ {
		cols, vals := e.a.RowView(i)
		vals = vals[:len(cols)]
		var ab0, ab1, ab2, ab3, ab4 float64
		for p, j := range cols {
			v := vals[p]
			x := cur[j*5 : j*5+5]
			ab0 += v * x[0]
			ab1 += v * x[1]
			ab2 += v * x[2]
			ab3 += v * x[3]
			ab4 += v * x[4]
		}
		var v0, v1, v2, v3, v4 float64
		if e.e != nil {
			er := e.e[i*5 : i*5+5]
			v0, v1, v2, v3, v4 = er[0], er[1], er[2], er[3], er[4]
		}
		v0 += ab0*h[0] + ab1*h[5] + ab2*h[10] + ab3*h[15] + ab4*h[20]
		v1 += ab0*h[1] + ab1*h[6] + ab2*h[11] + ab3*h[16] + ab4*h[21]
		v2 += ab0*h[2] + ab1*h[7] + ab2*h[12] + ab3*h[17] + ab4*h[22]
		v3 += ab0*h[3] + ab1*h[8] + ab2*h[13] + ab3*h[18] + ab4*h[23]
		v4 += ab0*h[4] + ab1*h[9] + ab2*h[14] + ab3*h[19] + ab4*h[24]
		b := cur[i*5 : i*5+5]
		if e.echo {
			di := e.d[i]
			v0 -= di * (b[0]*g[0] + b[1]*g[5] + b[2]*g[10] + b[3]*g[15] + b[4]*g[20])
			v1 -= di * (b[0]*g[1] + b[1]*g[6] + b[2]*g[11] + b[3]*g[16] + b[4]*g[21])
			v2 -= di * (b[0]*g[2] + b[1]*g[7] + b[2]*g[12] + b[3]*g[17] + b[4]*g[22])
			v3 -= di * (b[0]*g[3] + b[1]*g[8] + b[2]*g[13] + b[3]*g[18] + b[4]*g[23])
			v4 -= di * (b[0]*g[4] + b[1]*g[9] + b[2]*g[14] + b[3]*g[19] + b[4]*g[24])
		}
		if e.track {
			delta = delta1(delta, v0, b[0])
			delta = delta1(delta, v1, b[1])
			delta = delta1(delta, v2, b[2])
			delta = delta1(delta, v3, b[3])
			delta = delta1(delta, v4, b[4])
		}
		nx := next[i*5 : i*5+5]
		nx[0], nx[1], nx[2], nx[3], nx[4] = v0, v1, v2, v3, v4
	}
	return delta
}

// rowsBlocked handles arbitrary k and any block count with a per-worker
// scratch row, still fused into a single pass per row. The sparse
// product accumulates the full width (all blocks of a neighbor row are
// contiguous, so a batched engine reads each neighbor once for every
// request in the batch), then the coupling and echo terms are applied
// per k-block so each block evolves exactly as in a blocks=1 engine.
//
//lsbp:hotpath
func (e *Engine) rowsBlocked(lo, hi int, scratch []float64) float64 {
	cur, next := e.ws.cur, e.ws.next
	k, wd := e.k, e.wd
	h, h2 := e.h, e.h2
	ab := scratch[:wd]
	act := e.act
	var delta float64
	for i := lo; i < hi; i++ {
		for c := range ab {
			ab[c] = 0
		}
		cols, vals := e.a.RowView(i)
		vals = vals[:len(cols)]
		for p, j := range cols {
			if act != nil && act[j] == 0 {
				continue // neighbor's belief row is exactly zero
			}
			v := vals[p]
			x := cur[j*wd : j*wd+wd]
			for c, xv := range x {
				ab[c] += v * xv
			}
		}
		bRow := cur[i*wd : i*wd+wd]
		nxRow := next[i*wd : i*wd+wd]
		for b := 0; b < wd; b += k {
			abb := ab[b : b+k]
			bb := bRow[b : b+k]
			for c := 0; c < k; c++ {
				var v float64
				if e.e != nil {
					v = e.e[i*wd+b+c]
				}
				for j, abv := range abb {
					v += abv * h[j*k+c]
				}
				if e.echo {
					var s float64
					for j, bv := range bb {
						s += bv * h2[j*k+c]
					}
					v -= e.d[i] * s
				}
				if e.track {
					delta = delta1(delta, v, bb[c])
				}
				nxRow[b+c] = v
			}
		}
	}
	return delta
}

// maxSparseRoundWidth bounds the flat row width eligible for the
// push-based sparse round: its generic epilogue lifts each A·Bˆ block
// into a fixed-size stack array, so wider engines (which no serving
// path builds) take the pull round instead.
const maxSparseRoundWidth = 12

// compactBatchMinNodes is the graph size above which the width-12
// batch blocks switch to the compact index stream; see rows.
const compactBatchMinNodes = 1 << 15

// sparseRoundEligible reports whether this engine's round 2 may run as
// the push-based sparse round: serial, compact layout, bitwise-
// symmetric A, and a shape whose pull kernel the push epilogue mirrors
// term for term — the unrolled single-problem class counts everywhere,
// and the width-12 batch blocks above the size gate (below it the
// epilogue costs more than the act-skip pull). Generic shapes keep the
// pull round, whose blocked epilogue accumulates in a different order.
//
//lsbp:hotpath
func (e *Engine) sparseRoundEligible() bool {
	// The partitioned plane does not disqualify: the push round runs
	// serially on the parent engine (Step takes it before dispatching
	// to pass), reading the parent's full compact index and never
	// involving the partition workers — so partitioned solves keep the
	// cheap round 2 and stay bitwise identical to the serial plane.
	// Workers only matters on the span plane; it is ignored (here as
	// everywhere) while PartitionStarts is set.
	if !e.symA || (e.workers > 1 && e.partStarts == nil) || e.ci32 == nil {
		return false
	}
	if e.blocks == 1 {
		return e.k == 1 || e.k == 2 || e.k == 3 || e.k == 5
	}
	if e.n < compactBatchMinNodes {
		return false
	}
	return (e.k == 3 && e.blocks == 4) || (e.k == 2 && e.blocks == 6)
}
