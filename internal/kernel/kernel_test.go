package kernel

import (
	"math"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// refStep is the serial reference round — the seed implementation of
// linbp.Run's inner loop, kept verbatim with bounds-checked At() calls.
// The fused engine must reproduce it across all paths.
func refStep(next, cur, eData []float64, a *sparse.CSR, h, h2 *dense.Matrix, d []float64, n, k int, echo bool) float64 {
	ab := make([]float64, n*k)
	a.MulDenseInto(ab, cur, k)
	var delta float64
	for s := 0; s < n; s++ {
		abRow := ab[s*k : (s+1)*k]
		bRow := cur[s*k : (s+1)*k]
		nxRow := next[s*k : (s+1)*k]
		for i := 0; i < k; i++ {
			var v float64
			if eData != nil {
				v = eData[s*k+i]
			}
			for j := 0; j < k; j++ {
				v += abRow[j] * h.At(j, i)
			}
			if echo {
				var echoTerm float64
				for j := 0; j < k; j++ {
					echoTerm += bRow[j] * h2.At(j, i)
				}
				v -= d[s] * echoTerm
			}
			ch := math.Abs(v - bRow[i])
			if math.IsNaN(ch) {
				ch = math.Inf(1)
			}
			if ch > delta {
				delta = ch
			}
			nxRow[i] = v
		}
	}
	return delta
}

// randomCSR builds a symmetric sparse matrix with roughly avgDeg
// entries per row, deterministic in seed.
func randomCSR(n, avgDeg int, seed uint64) *sparse.CSR {
	rng := xrand.New(seed)
	b := sparse.NewBuilder(n, n)
	b.Reserve(n * avgDeg)
	for i := 0; i < n*avgDeg/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.AddSym(u, v, 0.5+rng.Float64())
	}
	return b.ToCSR()
}

// randomCoupling returns a small random symmetric k×k matrix scaled to
// keep the iteration contracting.
func randomCoupling(k int, seed uint64) *dense.Matrix {
	rng := xrand.New(seed)
	h := dense.New(k, k)
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			v := (rng.Float64() - 0.5) * 0.02
			h.Set(i, j, v)
			h.Set(j, i, v)
		}
	}
	return h
}

func degrees(a *sparse.CSR) []float64 { return a.RowSumsSquared() }

// TestEngineMatchesReference is the determinism/equivalence suite of
// the fused kernel: every unrolled and generic path, serial and
// parallel with worker counts {1, 2, 4, 8}, odd n, with and without the
// echo-cancellation term, must match the serial seed reference within
// 1e-12 after several rounds.
func TestEngineMatchesReference(t *testing.T) {
	const iters = 7
	for _, n := range []int{1, 9, 257} { // odd sizes, including a 1-node graph
		for _, k := range []int{1, 2, 3, 4, 5, 7} { // unrolled {1,2,3,5} + generic {4,7}
			for _, echo := range []bool{false, true} {
				for _, workers := range []int{1, 2, 4, 8} {
					a := randomCSR(n, 6, uint64(n*k+1))
					h := randomCoupling(k, uint64(k)+3)
					var d []float64
					if echo {
						d = degrees(a)
					}
					// Random explicit beliefs on ~20% of nodes.
					rng := xrand.New(uint64(n) + 17)
					e := make([]float64, n*k)
					for i := range e {
						if rng.Float64() < 0.2 {
							e[i] = rng.Float64() - 0.5
						}
					}

					eng, err := New(Config{A: a, D: d, H: h, Workers: workers}, nil)
					if err != nil {
						t.Fatalf("n=%d k=%d: %v", n, k, err)
					}
					eng.SetExplicit(e)

					h2 := h.Mul(h)
					ref := make([]float64, n*k)
					refNext := make([]float64, n*k)
					for it := 0; it < iters; it++ {
						wantDelta := refStep(refNext, ref, e, a, h, h2, d, n, k, echo)
						ref, refNext = refNext, ref
						gotDelta := eng.Step()
						if math.Abs(gotDelta-wantDelta) > 1e-12*(1+math.Abs(wantDelta)) {
							t.Fatalf("n=%d k=%d echo=%v workers=%d iter %d: delta %g, want %g",
								n, k, echo, workers, it, gotDelta, wantDelta)
						}
					}
					got := eng.Beliefs()
					for i := range ref {
						if math.Abs(got[i]-ref[i]) > 1e-12*(1+math.Abs(ref[i])) {
							t.Fatalf("n=%d k=%d echo=%v workers=%d: beliefs[%d] = %g, want %g",
								n, k, echo, workers, i, got[i], ref[i])
						}
					}
					eng.Close()
				}
			}
		}
	}
}

// TestEngineEchoOverride checks the EchoH hook (FABP's c2 ≠ c1²).
func TestEngineEchoOverride(t *testing.T) {
	a := randomCSR(33, 4, 5)
	d := degrees(a)
	h := dense.NewFromRows([][]float64{{0.04}})
	echoH := dense.NewFromRows([][]float64{{0.009}}) // ≠ 0.04²
	eng, err := New(Config{A: a, D: d, H: h, EchoH: echoH}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	e := make([]float64, 33)
	e[0], e[16] = 0.1, -0.2
	eng.SetExplicit(e)
	eng.Step()
	eng.Step()

	// Reference: b ← e + h·(A·b) − echoH·d∘b.
	cur := make([]float64, 33)
	next := make([]float64, 33)
	for it := 0; it < 2; it++ {
		ab := a.MulVec(cur)
		for i := range cur {
			next[i] = e[i] + 0.04*ab[i] - 0.009*d[i]*cur[i]
		}
		cur, next = next, cur
	}
	for i, want := range cur {
		if math.Abs(eng.Beliefs()[i]-want) > 1e-15 {
			t.Fatalf("beliefs[%d] = %g, want %g", i, eng.Beliefs()[i], want)
		}
	}
}

// TestEngineApplyInto checks the bare operator against a manual
// reference (the spectral power-iteration path).
func TestEngineApplyInto(t *testing.T) {
	n, k := 41, 3
	a := randomCSR(n, 5, 11)
	h := randomCoupling(k, 2)
	d := degrees(a)
	for _, workers := range []int{1, 4} {
		eng, err := New(Config{A: a, D: d, H: h, Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(9)
		src := make([]float64, n*k)
		for i := range src {
			src[i] = rng.Float64() - 0.5
		}
		dst := make([]float64, n*k)
		eng.ApplyInto(dst, src)

		want := make([]float64, n*k)
		refStep(want, src, nil, a, h, h.Mul(h), d, n, k, true)
		// refStep's delta compares against src; only the values matter here.
		for i := range want {
			if math.Abs(dst[i]-want[i]) > 1e-12 {
				t.Fatalf("workers=%d: dst[%d] = %g, want %g", workers, i, dst[i], want[i])
			}
		}
		// ApplyInto must not disturb the engine's iteration state.
		if got := eng.Beliefs(); got[0] != 0 {
			t.Fatalf("ApplyInto corrupted belief state: %g", got[0])
		}
		eng.Close()
	}
}

// TestEngineZeroAllocSteps asserts the serving guarantee: once warm, a
// Step allocates nothing, for the serial and the parallel engine alike.
func TestEngineZeroAllocSteps(t *testing.T) {
	a := randomCSR(301, 6, 21)
	h := randomCoupling(3, 4)
	e := make([]float64, 301*3)
	e[0] = 0.1
	for _, workers := range []int{1, 4} {
		eng, err := New(Config{A: a, D: degrees(a), H: h, Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetExplicit(e)
		eng.Step() // warm up: spawns the worker pool on the first pass
		allocs := testing.AllocsPerRun(50, func() { eng.Step() })
		if allocs > 0 {
			t.Errorf("workers=%d: %v allocs per Step, want 0", workers, allocs)
		}
		eng.Close()
	}
}

// TestWorkspaceReuse checks that pooled workspaces are recycled and
// resized across differently-shaped problems.
func TestWorkspaceReuse(t *testing.T) {
	ws := GetWorkspace()
	a1 := randomCSR(50, 4, 1)
	eng, err := New(Config{A: a1, H: randomCoupling(3, 1)}, ws)
	if err != nil {
		t.Fatal(err)
	}
	eng.Step()
	eng.Close()
	// Reuse the same workspace for a larger problem and a generic k.
	a2 := randomCSR(80, 4, 2)
	eng2, err := New(Config{A: a2, D: degrees(a2), H: randomCoupling(4, 2)}, ws)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Step()
	eng2.Close()
	ws.Release()
}

// TestEngineValidation covers the constructor's error paths.
func TestEngineValidation(t *testing.T) {
	a := randomCSR(10, 3, 1)
	h := randomCoupling(2, 1)
	cases := []Config{
		{A: nil, H: h},
		{A: a, H: nil},
		{A: a, H: dense.New(2, 3)},
		{A: a, H: h, D: make([]float64, 4)},
		{A: a, H: h, D: make([]float64, 10), EchoH: dense.New(3, 3)},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, nil); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestEngineDivergenceReportsInf checks the NaN→Inf mapping that keeps
// diverged runs reporting non-convergence (matching the seed solver).
func TestEngineDivergenceReportsInf(t *testing.T) {
	// A strongly amplifying iteration: big coupling, star graph.
	b := sparse.NewBuilder(3, 3)
	b.AddSym(0, 1, 100)
	b.AddSym(0, 2, 100)
	a := b.ToCSR()
	h := dense.NewFromRows([][]float64{{50, -50}, {-50, 50}})
	eng, err := New(Config{A: a, H: h}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	e := make([]float64, 6)
	e[0], e[1] = 1, -1
	eng.SetExplicit(e)
	var last float64
	for i := 0; i < 400; i++ {
		last = eng.Step()
		if math.IsInf(last, 1) {
			return // overflow surfaced as +Inf delta, as intended
		}
	}
	if !math.IsInf(last, 1) && last <= 1e300 {
		t.Fatalf("expected divergence to surface, delta %g", last)
	}
}

// TestEngineUseAfterClosePanics guards the workspace-pool safety
// contract: a closed engine may share its workspace with a newer
// engine, so any further use must panic loudly instead of silently
// corrupting the other engine's buffers.
func TestEngineUseAfterClosePanics(t *testing.T) {
	a := randomCSR(20, 3, 1)
	eng, err := New(Config{A: a, H: randomCoupling(2, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Step()
	eng.Close()
	for name, fn := range map[string]func(){
		"Step":      func() { eng.Step() },
		"Reset":     func() { eng.Reset() },
		"SetStart":  func() { eng.SetStart(make([]float64, 40)) },
		"ApplyInto": func() { eng.ApplyInto(make([]float64, 40), make([]float64, 40)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after Close did not panic", name)
				}
			}()
			fn()
		}()
	}
}
