package kernel

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/dense"
	"repro/internal/sparse"
	"repro/internal/xrand"
)

// refStep is the serial reference round — the seed implementation of
// linbp.Run's inner loop, kept verbatim with bounds-checked At() calls.
// The fused engine must reproduce it across all paths.
func refStep(next, cur, eData []float64, a *sparse.CSR, h, h2 *dense.Matrix, d []float64, n, k int, echo bool) float64 {
	ab := make([]float64, n*k)
	a.MulDenseInto(ab, cur, k)
	var delta float64
	for s := 0; s < n; s++ {
		abRow := ab[s*k : (s+1)*k]
		bRow := cur[s*k : (s+1)*k]
		nxRow := next[s*k : (s+1)*k]
		for i := 0; i < k; i++ {
			var v float64
			if eData != nil {
				v = eData[s*k+i]
			}
			for j := 0; j < k; j++ {
				v += abRow[j] * h.At(j, i)
			}
			if echo {
				var echoTerm float64
				for j := 0; j < k; j++ {
					echoTerm += bRow[j] * h2.At(j, i)
				}
				v -= d[s] * echoTerm
			}
			ch := math.Abs(v - bRow[i])
			if math.IsNaN(ch) {
				ch = math.Inf(1)
			}
			if ch > delta {
				delta = ch
			}
			nxRow[i] = v
		}
	}
	return delta
}

// randomCSR builds a symmetric sparse matrix with roughly avgDeg
// entries per row, deterministic in seed.
func randomCSR(n, avgDeg int, seed uint64) *sparse.CSR {
	rng := xrand.New(seed)
	b := sparse.NewBuilder(n, n)
	b.Reserve(n * avgDeg)
	for i := 0; i < n*avgDeg/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		b.AddSym(u, v, 0.5+rng.Float64())
	}
	return b.ToCSR()
}

// randomCoupling returns a small random symmetric k×k matrix scaled to
// keep the iteration contracting.
func randomCoupling(k int, seed uint64) *dense.Matrix {
	rng := xrand.New(seed)
	h := dense.New(k, k)
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			v := (rng.Float64() - 0.5) * 0.02
			h.Set(i, j, v)
			h.Set(j, i, v)
		}
	}
	return h
}

func degrees(a *sparse.CSR) []float64 { return a.RowSumsSquared() }

// TestEngineMatchesReference is the determinism/equivalence suite of
// the fused kernel: every unrolled and generic path, serial and
// parallel with worker counts {1, 2, 4, 8}, odd n, with and without the
// echo-cancellation term, must match the serial seed reference within
// 1e-12 after several rounds.
func TestEngineMatchesReference(t *testing.T) {
	const iters = 7
	for _, n := range []int{1, 9, 257} { // odd sizes, including a 1-node graph
		for _, k := range []int{1, 2, 3, 4, 5, 7} { // unrolled {1,2,3,5} + generic {4,7}
			for _, echo := range []bool{false, true} {
				for _, workers := range []int{1, 2, 4, 8} {
					a := randomCSR(n, 6, uint64(n*k+1))
					h := randomCoupling(k, uint64(k)+3)
					var d []float64
					if echo {
						d = degrees(a)
					}
					// Random explicit beliefs on ~20% of nodes.
					rng := xrand.New(uint64(n) + 17)
					e := make([]float64, n*k)
					for i := range e {
						if rng.Float64() < 0.2 {
							e[i] = rng.Float64() - 0.5
						}
					}

					eng, err := New(Config{A: a, D: d, H: h, Workers: workers}, nil)
					if err != nil {
						t.Fatalf("n=%d k=%d: %v", n, k, err)
					}
					eng.SetExplicit(e)

					h2 := h.Mul(h)
					ref := make([]float64, n*k)
					refNext := make([]float64, n*k)
					for it := 0; it < iters; it++ {
						wantDelta := refStep(refNext, ref, e, a, h, h2, d, n, k, echo)
						ref, refNext = refNext, ref
						gotDelta := eng.Step()
						if math.Abs(gotDelta-wantDelta) > 1e-12*(1+math.Abs(wantDelta)) {
							t.Fatalf("n=%d k=%d echo=%v workers=%d iter %d: delta %g, want %g",
								n, k, echo, workers, it, gotDelta, wantDelta)
						}
					}
					got := eng.Beliefs()
					for i := range ref {
						if math.Abs(got[i]-ref[i]) > 1e-12*(1+math.Abs(ref[i])) {
							t.Fatalf("n=%d k=%d echo=%v workers=%d: beliefs[%d] = %g, want %g",
								n, k, echo, workers, i, got[i], ref[i])
						}
					}
					eng.Close()
				}
			}
		}
	}
}

// TestEngineEchoOverride checks the EchoH hook (FABP's c2 ≠ c1²).
func TestEngineEchoOverride(t *testing.T) {
	a := randomCSR(33, 4, 5)
	d := degrees(a)
	h := dense.NewFromRows([][]float64{{0.04}})
	echoH := dense.NewFromRows([][]float64{{0.009}}) // ≠ 0.04²
	eng, err := New(Config{A: a, D: d, H: h, EchoH: echoH}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	e := make([]float64, 33)
	e[0], e[16] = 0.1, -0.2
	eng.SetExplicit(e)
	eng.Step()
	eng.Step()

	// Reference: b ← e + h·(A·b) − echoH·d∘b.
	cur := make([]float64, 33)
	next := make([]float64, 33)
	for it := 0; it < 2; it++ {
		ab := a.MulVec(cur)
		for i := range cur {
			next[i] = e[i] + 0.04*ab[i] - 0.009*d[i]*cur[i]
		}
		cur, next = next, cur
	}
	for i, want := range cur {
		if math.Abs(eng.Beliefs()[i]-want) > 1e-15 {
			t.Fatalf("beliefs[%d] = %g, want %g", i, eng.Beliefs()[i], want)
		}
	}
}

// TestEngineApplyInto checks the bare operator against a manual
// reference (the spectral power-iteration path).
func TestEngineApplyInto(t *testing.T) {
	n, k := 41, 3
	a := randomCSR(n, 5, 11)
	h := randomCoupling(k, 2)
	d := degrees(a)
	for _, workers := range []int{1, 4} {
		eng, err := New(Config{A: a, D: d, H: h, Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(9)
		src := make([]float64, n*k)
		for i := range src {
			src[i] = rng.Float64() - 0.5
		}
		dst := make([]float64, n*k)
		eng.ApplyInto(dst, src)

		want := make([]float64, n*k)
		refStep(want, src, nil, a, h, h.Mul(h), d, n, k, true)
		// refStep's delta compares against src; only the values matter here.
		for i := range want {
			if math.Abs(dst[i]-want[i]) > 1e-12 {
				t.Fatalf("workers=%d: dst[%d] = %g, want %g", workers, i, dst[i], want[i])
			}
		}
		// ApplyInto must not disturb the engine's iteration state.
		if got := eng.Beliefs(); got[0] != 0 {
			t.Fatalf("ApplyInto corrupted belief state: %g", got[0])
		}
		eng.Close()
	}
}

// TestEngineZeroAllocSteps asserts the serving guarantee: once warm, a
// Step allocates nothing, for the serial and the parallel engine alike.
func TestEngineZeroAllocSteps(t *testing.T) {
	a := randomCSR(301, 6, 21)
	h := randomCoupling(3, 4)
	e := make([]float64, 301*3)
	e[0] = 0.1
	for _, workers := range []int{1, 4} {
		eng, err := New(Config{A: a, D: degrees(a), H: h, Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetExplicit(e)
		eng.Step() // warm up: spawns the worker pool on the first pass
		allocs := testing.AllocsPerRun(50, func() { eng.Step() })
		if allocs > 0 {
			t.Errorf("workers=%d: %v allocs per Step, want 0", workers, allocs)
		}
		eng.Close()
	}
}

// TestWorkspaceReuse checks that pooled workspaces are recycled and
// resized across differently-shaped problems.
func TestWorkspaceReuse(t *testing.T) {
	ws := GetWorkspace()
	a1 := randomCSR(50, 4, 1)
	eng, err := New(Config{A: a1, H: randomCoupling(3, 1)}, ws)
	if err != nil {
		t.Fatal(err)
	}
	eng.Step()
	eng.Close()
	// Reuse the same workspace for a larger problem and a generic k.
	a2 := randomCSR(80, 4, 2)
	eng2, err := New(Config{A: a2, D: degrees(a2), H: randomCoupling(4, 2)}, ws)
	if err != nil {
		t.Fatal(err)
	}
	eng2.Step()
	eng2.Close()
	ws.Release()
}

// TestEngineValidation covers the constructor's error paths.
func TestEngineValidation(t *testing.T) {
	a := randomCSR(10, 3, 1)
	h := randomCoupling(2, 1)
	cases := []Config{
		{A: nil, H: h},
		{A: a, H: nil},
		{A: a, H: dense.New(2, 3)},
		{A: a, H: h, D: make([]float64, 4)},
		{A: a, H: h, D: make([]float64, 10), EchoH: dense.New(3, 3)},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, nil); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestEngineDivergenceReportsInf checks the NaN→Inf mapping that keeps
// diverged runs reporting non-convergence (matching the seed solver).
func TestEngineDivergenceReportsInf(t *testing.T) {
	// A strongly amplifying iteration: big coupling, star graph.
	b := sparse.NewBuilder(3, 3)
	b.AddSym(0, 1, 100)
	b.AddSym(0, 2, 100)
	a := b.ToCSR()
	h := dense.NewFromRows([][]float64{{50, -50}, {-50, 50}})
	eng, err := New(Config{A: a, H: h}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	e := make([]float64, 6)
	e[0], e[1] = 1, -1
	eng.SetExplicit(e)
	var last float64
	for i := 0; i < 400; i++ {
		last = eng.Step()
		if math.IsInf(last, 1) {
			return // overflow surfaced as +Inf delta, as intended
		}
	}
	if !math.IsInf(last, 1) && last <= 1e300 {
		t.Fatalf("expected divergence to surface, delta %g", last)
	}
}

// TestEngineUseAfterClosePanics guards the workspace-pool safety
// contract: a closed engine may share its workspace with a newer
// engine, so any further use must panic loudly instead of silently
// corrupting the other engine's buffers.
func TestEngineUseAfterClosePanics(t *testing.T) {
	a := randomCSR(20, 3, 1)
	eng, err := New(Config{A: a, H: randomCoupling(2, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Step()
	eng.Close()
	for name, fn := range map[string]func(){
		"Step":      func() { eng.Step() },
		"Reset":     func() { eng.Reset() },
		"SetStart":  func() { eng.SetStart(make([]float64, 40)) },
		"ApplyInto": func() { eng.ApplyInto(make([]float64, 40), make([]float64, 40)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s after Close did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestEngineBlockedMatchesSingle checks the multi-block batch path:
// every block of a Blocks=B engine must evolve exactly as the same
// problem does in its own single engine. For k outside the unrolled
// fast paths both sides run the blocked kernel and match bitwise; for
// unrolled k the summation order of the coupling multiply differs by
// ~1 ulp per round.
func TestEngineBlockedMatchesSingle(t *testing.T) {
	const blocks, iters = 5, 6
	for _, tc := range []struct {
		k   int
		tol float64
	}{
		{4, 0},     // generic path on both sides: bitwise
		{3, 1e-13}, // unrolled single vs blocked: rounding only
	} {
		n := 97
		a := randomCSR(n, 6, 7)
		h := randomCoupling(tc.k, 9)
		d := degrees(a)
		for _, echo := range []bool{false, true} {
			var dd []float64
			if echo {
				dd = d
			}
			// Per-block explicit beliefs and reference engines.
			rng := xrand.New(31)
			es := make([][]float64, blocks)
			refs := make([][]float64, blocks)
			for b := range es {
				es[b] = make([]float64, n*tc.k)
				for i := range es[b] {
					if rng.Float64() < 0.3 {
						es[b][i] = rng.Float64() - 0.5
					}
				}
				single, err := New(Config{A: a, D: dd, H: h}, nil)
				if err != nil {
					t.Fatal(err)
				}
				single.SetExplicit(es[b])
				for it := 0; it < iters; it++ {
					single.Step()
				}
				refs[b] = append([]float64(nil), single.Beliefs()...)
				single.Close()
			}
			// One blocked engine with the interleaved explicit beliefs.
			batched, err := New(Config{A: a, D: dd, H: h, Blocks: blocks}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if batched.Width() != blocks*tc.k {
				t.Fatalf("width = %d", batched.Width())
			}
			ein := make([]float64, n*blocks*tc.k)
			for b := range es {
				for i := 0; i < n; i++ {
					copy(ein[(i*blocks+b)*tc.k:(i*blocks+b)*tc.k+tc.k], es[b][i*tc.k:i*tc.k+tc.k])
				}
			}
			batched.SetExplicit(ein)
			for it := 0; it < iters; it++ {
				batched.Step()
			}
			state := batched.Beliefs()
			for b := range es {
				for i := 0; i < n; i++ {
					for c := 0; c < tc.k; c++ {
						got := state[(i*blocks+b)*tc.k+c]
						want := refs[b][i*tc.k+c]
						if math.Abs(got-want) > tc.tol {
							t.Fatalf("k=%d echo=%v block %d node %d class %d: %g, want %g",
								tc.k, echo, b, i, c, got, want)
						}
					}
				}
			}
			batched.Close()
		}
	}
}

// TestEngineBlockedParallelMatchesSerial checks that the worker pool
// produces identical results on a blocked engine (spans are row-based,
// independent of width).
func TestEngineBlockedParallelMatchesSerial(t *testing.T) {
	n, k, blocks := 257, 3, 4
	a := randomCSR(n, 5, 3)
	h := randomCoupling(k, 5)
	e := make([]float64, n*blocks*k)
	rng := xrand.New(8)
	for i := range e {
		e[i] = rng.Float64() - 0.5
	}
	var want []float64
	for _, workers := range []int{1, 4} {
		eng, err := New(Config{A: a, D: degrees(a), H: h, Blocks: blocks, Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetExplicit(e)
		for it := 0; it < 5; it++ {
			eng.Step()
		}
		if workers == 1 {
			want = append([]float64(nil), eng.Beliefs()...)
		} else {
			for i, v := range eng.Beliefs() {
				if v != want[i] {
					t.Fatalf("workers=%d: state[%d] = %g, want %g", workers, i, v, want[i])
				}
			}
		}
		eng.Close()
	}
}

// TestRunContext covers the cancellation hooks: a pre-cancelled
// context runs zero rounds, a context cancelled mid-run aborts within
// one round, and a background context matches Run.
func TestRunContext(t *testing.T) {
	a := randomCSR(64, 4, 13)
	h := randomCoupling(2, 2)
	e := make([]float64, 64*2)
	e[0] = 0.1
	eng, err := New(Config{A: a, D: degrees(a), H: h}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.SetExplicit(e)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	iters, _, converged, err := eng.RunContext(ctx, 100, -1, nil)
	if iters != 0 || converged || !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: iters=%d converged=%v err=%v", iters, converged, err)
	}

	// Cancel from the iteration callback: the run must stop on the
	// next round boundary.
	ctx2, cancel2 := context.WithCancel(context.Background())
	eng.Reset()
	stopAt := 3
	iters, _, _, err = eng.RunContext(ctx2, 100, -1, func(it int, _ float64) {
		if it == stopAt {
			cancel2()
		}
	})
	if iters != stopAt || !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: iters=%d err=%v", iters, err)
	}

	eng.Reset()
	iters, _, _, err = eng.RunContext(context.Background(), 7, -1, nil)
	if iters != 7 || err != nil {
		t.Fatalf("background ctx: iters=%d err=%v", iters, err)
	}
}

// TestCompactLayoutBitwiseIdentical pins the compact-index (int32)
// layout to the wide (int) layout: the index width changes only which
// bytes the traversal loads, never the arithmetic, so every fast path
// must produce bitwise-identical iterates — across class counts,
// echo settings, batch blocks, and the sparse round-2 activity map.
func TestCompactLayoutBitwiseIdentical(t *testing.T) {
	for _, tc := range []struct {
		k, blocks int
		echo      bool
	}{
		{1, 1, true}, {2, 1, true}, {3, 1, true}, {5, 1, true},
		{4, 1, true},               // generic blocked path
		{3, 1, false},              // no echo
		{3, 4, true},               // rows3x4 batch fast path
		{2, 6, true},               // rows2x6 batch fast path
		{3, 2, true}, {4, 3, true}, // generic batch widths
	} {
		a := randomCSR(300, 6, 11)
		var d []float64
		if tc.echo {
			d = degrees(a)
		}
		h := randomCoupling(tc.k, 5)
		wd := tc.blocks * tc.k
		e := make([]float64, a.Rows()*wd)
		for i := 0; i < len(e); i += 17 {
			e[i] = 0.07
		}

		wide, err := New(Config{A: a, D: d, H: h, Blocks: tc.blocks, Layout: LayoutWide}, nil)
		if err != nil {
			t.Fatal(err)
		}
		compact, err := New(Config{A: a, D: d, H: h, Blocks: tc.blocks, Layout: LayoutCompact}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if compact.ci32 == nil {
			t.Fatal("compact engine did not adopt the int32 layout")
		}
		if wide.ci32 != nil {
			t.Fatal("LayoutWide engine must stay on the wide layout")
		}
		wide.SetExplicit(e)
		compact.SetExplicit(e)
		for round := 0; round < 5; round++ {
			dw := wide.Step()
			dc := compact.Step()
			if dw != dc {
				t.Fatalf("k=%d blocks=%d echo=%v round %d: delta %g vs %g",
					tc.k, tc.blocks, tc.echo, round, dw, dc)
			}
			bw, bc := wide.Beliefs(), compact.Beliefs()
			for i := range bw {
				if bw[i] != bc[i] {
					t.Fatalf("k=%d blocks=%d echo=%v round %d: beliefs differ at %d: %g vs %g",
						tc.k, tc.blocks, tc.echo, round, i, bw[i], bc[i])
				}
			}
		}
		wide.Close()
		compact.Close()
	}
}

// TestCompactLayoutParallel checks the worker-pool pass on the compact
// layout against the serial wide reference.
func TestCompactLayoutParallel(t *testing.T) {
	a := randomCSR(500, 8, 13)
	d := degrees(a)
	h := randomCoupling(3, 9)
	e := make([]float64, a.Rows()*3)
	for i := 0; i < len(e); i += 7 {
		e[i] = 0.04
	}
	serial, err := New(Config{A: a, D: d, H: h, Layout: LayoutWide}, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(Config{A: a, D: d, H: h, Workers: 4, Layout: LayoutCompact}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	defer par.Close()
	serial.SetExplicit(e)
	par.SetExplicit(e)
	for round := 0; round < 6; round++ {
		ds := serial.Step()
		dp := par.Step()
		if ds != dp {
			t.Fatalf("round %d: delta %g vs %g", round, ds, dp)
		}
		bs, bp := serial.Beliefs(), par.Beliefs()
		for i := range bs {
			if bs[i] != bp[i] {
				t.Fatalf("round %d: beliefs differ at %d", round, i)
			}
		}
	}
}

// TestSparseRoundBitwiseIdentical pins the push-based sparse round
// (SymmetricA, serial, compact layout) against the plain pull round:
// starting from sparse explicit beliefs, every iterate across several
// rounds must be bitwise identical, for the k=3 fast epilogue, the k=1
// scalar path, generic k, and a batched width.
func TestSparseRoundBitwiseIdentical(t *testing.T) {
	for _, tc := range []struct {
		k, blocks int
		echo      bool
	}{
		{3, 1, true}, {3, 1, false}, {1, 1, true}, {2, 1, true},
		{4, 1, true}, {5, 1, true}, {3, 4, true}, {2, 6, true},
	} {
		a := randomCSR(400, 7, 21)
		var d []float64
		if tc.echo {
			d = degrees(a)
		}
		h := randomCoupling(tc.k, 3)
		wd := tc.blocks * tc.k
		e := make([]float64, a.Rows()*wd)
		for i := 0; i < len(e); i += 23 * wd { // sparse explicit rows
			e[i] = 0.07
		}
		pull, err := New(Config{A: a, D: d, H: h, Blocks: tc.blocks, Layout: LayoutCompact}, nil)
		if err != nil {
			t.Fatal(err)
		}
		push, err := New(Config{A: a, D: d, H: h, Blocks: tc.blocks, Layout: LayoutCompact, SymmetricA: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		pull.SetExplicit(e)
		push.SetExplicit(e)
		for round := 0; round < 4; round++ {
			dl := pull.Step()
			dp := push.Step()
			if dl != dp {
				t.Fatalf("k=%d blocks=%d echo=%v round %d: delta %g vs %g", tc.k, tc.blocks, tc.echo, round, dl, dp)
			}
			bl, bp := pull.Beliefs(), push.Beliefs()
			for i := range bl {
				if bl[i] != bp[i] {
					t.Fatalf("k=%d blocks=%d echo=%v round %d: beliefs differ at %d: %g vs %g",
						tc.k, tc.blocks, tc.echo, round, i, bl[i], bp[i])
				}
			}
		}
		pull.Close()
		push.Close()
	}
}

// TestCompactBatchKernelsLargeGraph exercises the width-12 compact
// batch blocks, which only dispatch above compactBatchMinNodes: results
// must stay bitwise identical to the wide register blocks.
func TestCompactBatchKernelsLargeGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a graph above compactBatchMinNodes")
	}
	for _, tc := range []struct{ k, blocks int }{{3, 4}, {2, 6}} {
		a := randomCSR(compactBatchMinNodes+10, 4, 31)
		d := degrees(a)
		h := randomCoupling(tc.k, 5)
		wd := tc.k * tc.blocks
		e := make([]float64, a.Rows()*wd)
		for i := 0; i < len(e); i += 37 {
			e[i] = 0.03
		}
		wide, err := New(Config{A: a, D: d, H: h, Blocks: tc.blocks, Layout: LayoutWide}, nil)
		if err != nil {
			t.Fatal(err)
		}
		// SymmetricA additionally exercises the batched push-based
		// sparse round, which only dispatches above the size gate.
		compact, err := New(Config{A: a, D: d, H: h, Blocks: tc.blocks, Layout: LayoutCompact, SymmetricA: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		wide.SetExplicit(e)
		compact.SetExplicit(e)
		for round := 0; round < 3; round++ {
			dw, dc := wide.Step(), compact.Step()
			if dw != dc {
				t.Fatalf("k=%d blocks=%d round %d: delta %g vs %g", tc.k, tc.blocks, round, dw, dc)
			}
			bw, bc := wide.Beliefs(), compact.Beliefs()
			for i := range bw {
				if bw[i] != bc[i] {
					t.Fatalf("k=%d blocks=%d round %d: beliefs differ at %d", tc.k, tc.blocks, round, i)
				}
			}
		}
		wide.Close()
		compact.Close()
	}
}

func TestSetStartPermutedMatchesSetStart(t *testing.T) {
	a := randomCSR(8, 3, 5)
	h := dense.NewFromRows([][]float64{{0.1, -0.1}, {-0.1, 0.1}})
	e := make([]float64, 16)
	start := make([]float64, 16)
	for i := range e {
		e[i] = 0.01 * float64(i%7-3)
		start[i] = -0.03 * float64(i%5-2)
	}

	// Reference: shuffle by hand, SetStart, run 3 rounds.
	perm := []int{3, 0, 7, 1, 6, 2, 5, 4}
	shuffled := make([]float64, 16)
	eShuffled := make([]float64, 16)
	for i, nw := range perm {
		copy(shuffled[nw*2:nw*2+2], start[i*2:i*2+2])
		copy(eShuffled[nw*2:nw*2+2], e[i*2:i*2+2])
	}
	pa := a.Permute(perm)
	pd := pa.RowSumsSquared()
	run := func(setStart func(e *Engine)) []float64 {
		eng, err := New(Config{A: pa, D: pd, H: h, SymmetricA: true}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		setStart(eng)
		eng.SetExplicit(eShuffled)
		eng.Run(3, -1, nil)
		return append([]float64(nil), eng.Beliefs()...)
	}
	want := run(func(e *Engine) { e.SetStart(shuffled) })
	got := run(func(e *Engine) { e.SetStartPermuted(start, perm) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("belief[%d] = %v, want %v (bitwise)", i, got[i], want[i])
		}
	}
	// nil perm degrades to SetStart.
	gotNil := run(func(e *Engine) { e.SetStartPermuted(shuffled, nil) })
	for i := range want {
		if gotNil[i] != want[i] {
			t.Fatalf("nil-perm belief[%d] = %v, want %v", i, gotNil[i], want[i])
		}
	}
}

func TestSetStartPermutedValidation(t *testing.T) {
	a := randomCSR(4, 2, 9)
	h := dense.NewFromRows([][]float64{{0.1}})
	eng, err := New(Config{A: a, H: h}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for name, fn := range map[string]func(){
		"short start": func() { eng.SetStartPermuted(make([]float64, 3), []int{0, 1, 2, 3}) },
		"short perm":  func() { eng.SetStartPermuted(make([]float64, 4), []int{0, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
