// The partition-parallel data plane. Where the span pool (kernel.go)
// lets any worker steal arbitrary nnz-balanced row chunks, partitioned
// mode binds each persistent worker to one fixed contiguous row block
// for the engine's whole lifetime:
//
//   - the worker locks its OS thread (runtime.LockOSThread), so on a
//     multi-socket host the scheduler cannot migrate it away from the
//     memory its block lives in;
//   - the worker itself allocates and writes its block's private CSR
//     copy (sparse.RowBlockCSR), compact index, and scratch — the
//     first-touch initialization that places those pages on the
//     worker's NUMA node under the default kernel policy;
//   - each round the worker processes exactly its rows [lo, hi) with a
//     partition-local max-delta accumulator, and the engine performs
//     one merge/exchange step per round: fold the local deltas, swap
//     the belief buffers (the only cross-partition data exchange —
//     halo belief rows are read directly from the shared state).
//
// The row kernels executed per block are the very same methods the
// span pool runs, so partitioned results are bitwise identical to the
// serial and span-parallel planes (asserted by the equivalence tests).
package kernel

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/errs"
)

// partWorker is one partition-bound persistent worker: a fixed row
// block, a private sub-engine over the block's first-touched CSR copy,
// and the round-trigger/result channels of the per-round merge step.
type partWorker struct {
	lo, hi  int
	sub     *Engine   // private block view; shares the parent's Workspace
	scratch []float64 // worker-local scratch for the generic row kernel
	work    chan struct{}
	res     chan float64
}

// validPartitionStarts checks that starts is a contiguous ascending
// partition of [0, n).
func validPartitionStarts(starts []int, n int) error {
	if len(starts) < 2 {
		return fmt.Errorf("kernel: partition needs at least 2 boundaries, got %d: %w", len(starts), errs.ErrInvalidInput)
	}
	if starts[0] != 0 || starts[len(starts)-1] != n {
		return fmt.Errorf("kernel: partition spans [%d, %d), want [0, %d): %w", starts[0], starts[len(starts)-1], n, errs.ErrInvalidInput)
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			return fmt.Errorf("kernel: partition boundaries not ascending at index %d: %w", i, errs.ErrInvalidInput)
		}
	}
	return nil
}

// startPartWorkers lazily spawns the partition-bound workers on the
// first partitioned pass and blocks until every worker has built its
// private block state (so no round races a worker's initialization).
//
//lsbp:hotpath-init
func (e *Engine) startPartWorkers() {
	if e.partStarted {
		return
	}
	var ready sync.WaitGroup
	for p := 0; p+1 < len(e.partStarts); p++ {
		w := &partWorker{
			lo:   e.partStarts[p],
			hi:   e.partStarts[p+1],
			work: make(chan struct{}, 1),
			res:  make(chan float64, 1),
		}
		e.partWorkers = append(e.partWorkers, w)
		ready.Add(1)
		go w.run(e, &ready)
	}
	ready.Wait()
	e.partStarted = true
}

// run is the partition worker loop. All block-local state — the private
// CSR copy, its compact index, the scratch row — is allocated and
// written here, on the locked OS thread that will use it every round,
// so first-touch page placement keeps it NUMA-local to this worker.
//
//lsbp:hotpath
func (w *partWorker) run(parent *Engine, ready *sync.WaitGroup) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	w.init(parent)
	ready.Done()
	for range w.work {
		w.res <- w.sub.rows(w.lo, w.hi, w.scratch)
	}
}

// init builds the worker's private block state. It runs exactly once,
// before the worker signals ready, and is the only allocating part of
// the worker's lifetime.
//
//lsbp:hotpath-init
func (w *partWorker) init(parent *Engine) {
	blk := parent.a.RowBlockCSR(w.lo, w.hi)
	sub := &Engine{
		a:      blk,
		d:      parent.d,
		h:      parent.h,
		h2:     parent.h2,
		n:      parent.n,
		k:      parent.k,
		blocks: parent.blocks,
		wd:     parent.wd,
		echo:   parent.echo,
		// symA stays false: the push-based sparse round writes rows
		// outside the block and is licensed only on the parent.
		workers: 1,
		ws:      parent.ws,
		track:   true,
	}
	if parent.ci32 != nil {
		if rp32, ci32, ok := blk.CompactIndex(); ok {
			sub.rp32, sub.ci32 = rp32, ci32
			_, _, sub.vals = blk.Index()
		}
	}
	w.scratch = make([]float64, scratchStride(parent.wd))
	w.sub = sub
}

// partPass runs one update round on the partitioned plane: trigger every
// partition worker on its own block, then fold the partition-local max
// deltas — the merge half of the round's single merge/exchange step (the
// exchange half is the caller's cur/next buffer swap, which publishes
// every block's new beliefs, halo rows included, to all partitions).
//
//lsbp:hotpath
func (e *Engine) partPass() float64 {
	e.startPartWorkers()
	for _, w := range e.partWorkers {
		// Per-round state sync; the channel send publishes these writes
		// to the worker before it starts its block.
		w.sub.e = e.e
		w.sub.track = e.track
		w.sub.act = e.act
		w.work <- struct{}{}
	}
	var delta float64
	for _, w := range e.partWorkers {
		if d := <-w.res; d > delta {
			delta = d
		}
	}
	return delta
}
