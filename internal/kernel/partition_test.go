package kernel

import (
	"testing"

	"repro/internal/order"
)

// TestPartitionedMatchesSerial is the partitioned plane's core
// contract: every class count, echo setting, and partition count must
// be bitwise identical to the serial engine — the partition workers run
// the same row kernels over the same global state, merely split by row
// block.
func TestPartitionedMatchesSerial(t *testing.T) {
	n := 157 // odd, not divisible by the partition counts
	a := randomCSR(n, 8, 5)
	for _, k := range []int{1, 2, 3, 5, 4} { // 4 exercises the generic kernel
		h := randomCoupling(k, uint64(k))
		e := make([]float64, n*k)
		rngFill(e, uint64(100+k))
		for _, echo := range []bool{false, true} {
			var d []float64
			if echo {
				d = degrees(a)
			}
			ref, err := New(Config{A: a, D: d, H: h, SymmetricA: true}, nil)
			if err != nil {
				t.Fatal(err)
			}
			ref.SetExplicit(e)
			refIters, refDelta, _ := ref.Run(6, -1, nil)
			want := append([]float64(nil), ref.Beliefs()...)
			ref.Close()

			for _, parts := range []int{1, 2, 3, 7} {
				p := order.PartitionRows(a, parts)
				eng, err := New(Config{A: a, D: d, H: h, SymmetricA: true, PartitionStarts: p.Starts}, nil)
				if err != nil {
					t.Fatal(err)
				}
				eng.SetExplicit(e)
				iters, delta, _ := eng.Run(6, -1, nil)
				if iters != refIters || delta != refDelta {
					t.Fatalf("k=%d echo=%v parts=%d: iters/delta %d/%v, want %d/%v",
						k, echo, parts, iters, delta, refIters, refDelta)
				}
				for i, v := range eng.Beliefs() {
					if v != want[i] {
						t.Fatalf("k=%d echo=%v parts=%d: belief[%d] = %v, want %v (bitwise)",
							k, echo, parts, i, v, want[i])
					}
				}
				eng.Close()
			}
		}
	}
}

// TestPartitionedBatchMatchesSerial extends the bitwise contract to the
// fused multi-block batch kernels (k=3 × 4 blocks, width 12).
func TestPartitionedBatchMatchesSerial(t *testing.T) {
	n := 203
	const k, blocks = 3, 4
	a := randomCSR(n, 6, 9)
	h := randomCoupling(k, 3)
	d := degrees(a)
	e := make([]float64, n*k*blocks)
	rngFill(e, 77)

	ref, err := New(Config{A: a, D: d, H: h, Blocks: blocks, SymmetricA: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetExplicit(e)
	ref.Run(5, -1, nil)
	want := append([]float64(nil), ref.Beliefs()...)
	ref.Close()

	p := order.PartitionRows(a, 3)
	eng, err := New(Config{A: a, D: d, H: h, Blocks: blocks, SymmetricA: true, PartitionStarts: p.Starts}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.SetExplicit(e)
	eng.Run(5, -1, nil)
	for i, v := range eng.Beliefs() {
		if v != want[i] {
			t.Fatalf("batch belief[%d] = %v, want %v (bitwise)", i, v, want[i])
		}
	}
}

// TestPartitionedWideLayout checks the partitioned plane over the wide
// (int-indexed) kernels as well — the sub-engines must follow the
// parent's layout choice.
func TestPartitionedWideLayout(t *testing.T) {
	n := 97
	a := randomCSR(n, 5, 21)
	h := randomCoupling(3, 8)
	e := make([]float64, n*3)
	rngFill(e, 4)

	ref, err := New(Config{A: a, H: h, Layout: LayoutWide}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetExplicit(e)
	ref.Run(4, -1, nil)
	want := append([]float64(nil), ref.Beliefs()...)
	ref.Close()

	p := order.PartitionRows(a, 4)
	eng, err := New(Config{A: a, H: h, Layout: LayoutWide, PartitionStarts: p.Starts}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	eng.SetExplicit(e)
	eng.Run(4, -1, nil)
	for i, v := range eng.Beliefs() {
		if v != want[i] {
			t.Fatalf("wide belief[%d] = %v, want %v", i, v, want[i])
		}
	}
}

// TestPartitionStartsValidation pins the Config contract.
func TestPartitionStartsValidation(t *testing.T) {
	a := randomCSR(10, 3, 1)
	h := randomCoupling(2, 1)
	for _, starts := range [][]int{{0}, {1, 10}, {0, 5}, {0, 7, 3, 10}} {
		if _, err := New(Config{A: a, H: h, PartitionStarts: starts}, nil); err == nil {
			t.Fatalf("starts %v must be rejected", starts)
		}
	}
	eng, err := New(Config{A: a, H: h, PartitionStarts: []int{0, 4, 10}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // idempotent with partition workers
}

// rngFill fills dst with small deterministic pseudo-random values.
func rngFill(dst []float64, seed uint64) {
	x := seed*2862933555777941757 + 3037000493
	for i := range dst {
		x = x*2862933555777941757 + 3037000493
		dst[i] = float64(int64(x>>33)) / float64(1<<31) * 0.1
	}
}
