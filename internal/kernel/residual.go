// The residual-scheduled execution plane. The round-based engines of
// kernel.go advance every node once per iteration, so one more digit of
// convergence costs a full SpMM pass even when the remaining error
// lives in a handful of rows. This plane instead runs the fixpoint
//
//	B = Eˆ + M·B,   M·X = A·X·Hˆ − D∘(X·Hˆ₂)
//
// as a push-based relaxation over the residual r = Eˆ + M·b − b,
// maintaining the invariant
//
//	x* = b + (I − M)⁻¹·r
//
// at every step: relaxing row i moves its residual δ = rᵢ into the
// belief bᵢ and pushes M·(δ at row i) back into the residuals — the
// echo term lands on row i itself, the A-term lands on the neighbors
// of i through its own CSR row (which equals its column, since the
// adjacency is symmetric). Rows are scheduled by residual magnitude
// through a bucket priority queue, so work concentrates where the
// error is and the solve costs what it touches: seeding from a small
// delta relaxes only the subgraph the delta perturbs.
//
// When the queue drains, every row's residual is at most tol in
// max-abs, so the distance to the unique fixpoint is bounded by
// ‖(I−M)⁻¹‖·tol — a small multiple of tol whenever the spectral
// convergence criterion holds. Relaxation order changes floating-point
// summation order, so results match the round-based engines within
// that tolerance budget, not bitwise; the difftest matrix pins the
// plane against the rounds schedule under an explicit tolerance
// ladder.
package kernel

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/errs"
	"repro/internal/sparse"
)

// residualBuckets is the bucket count of the scheduling queue: bucket b
// holds rows whose residual magnitude falls in [tol·2ᵇ, tol·2ᵇ⁺¹), so
// 44 buckets span the full ratio range a float64 solve can produce
// before the divergence check trips (2⁴⁴ ≈ 1.7e13; anything larger
// clamps into the top bucket and is simply relaxed first).
const residualBuckets = 44

// residualCtxStride is how many relaxations run between context
// checks: one relaxation touches a single adjacency row, so checking
// every operation would dominate small-row graphs, while 1024
// relaxations still bound the cancellation latency well below a full
// round on any graph this repo targets.
const residualCtxStride = 1024

// ResidualEngine executes the residual-scheduled relaxation over one
// fixed (A, D, H) configuration. Like Engine it is built once per
// graph snapshot and reused across solves; unlike Engine it is
// inherently sequential (the schedule is a priority order), so
// Workers, Blocks, and PartitionStarts do not apply. A is required to
// be symmetric (Config.SymmetricA) — the push step walks row i as
// column i.
//
// A ResidualEngine is not safe for concurrent use; run one per
// goroutine or pool them as the prepared solvers do.
type ResidualEngine struct {
	a       *sparse.CSR
	compact bool // compact int32 index available (see Layout)
	d       []float64
	h, h2   []float64 // flat k×k coupling and echo coupling
	n, k    int
	echo    bool
	tol     float64

	b    []float64 // accumulated beliefs, flat n×k
	r    []float64 // residuals, flat n×k
	rmag []float64 // per-row max-abs residual magnitude
	ph   []float64 // k-wide push scratch: δ·Hˆ
	pg   []float64 // k-wide push scratch: δ·Hˆ₂

	// Intrusive bucket queue: qnext/qprev link the rows of one bucket
	// into a doubly-linked list, heads holds each bucket's first row
	// (-1 when empty), occ mirrors bucket non-emptiness as a bitmask so
	// the top non-empty bucket is one bits.Len64 away, and qbkt records
	// each row's current bucket (-1 when unqueued).
	qnext, qprev []int32
	heads        [residualBuckets]int32
	occ          uint64
	qbkt         []int8
	queued       int
	peak         int

	// bhi[b] is bucket b's magnitude upper bound tol·2ᵇ⁺¹: a touched
	// row whose magnitude stays at or below its current bucket's bound
	// needs no migration, so the hot push path skips the Ilogb of
	// bucketOf entirely — one compare instead of an exponent extraction
	// per neighbor touch.
	bhi [residualBuckets]float64

	diverged bool
}

// NewResidual validates cfg and builds a residual-scheduled engine
// with convergence tolerance tol (the queue admission threshold: rows
// whose residual magnitude is at most tol are never scheduled).
// cfg.Workers and cfg.PartitionStarts are ignored — the plane is
// sequential; cfg.Blocks > 1 and non-symmetric adjacencies are
// rejected. All state is allocated here; solves reuse it.
func NewResidual(cfg Config, tol float64) (*ResidualEngine, error) {
	if cfg.A == nil || cfg.H == nil {
		return nil, fmt.Errorf("kernel: residual config needs A and H: %w", errs.ErrInvalidInput)
	}
	n := cfg.A.Rows()
	if cfg.A.Cols() != n {
		return nil, fmt.Errorf("kernel: adjacency %dx%d is not square: %w", n, cfg.A.Cols(), errs.ErrDimensionMismatch)
	}
	k := cfg.H.Rows()
	if cfg.H.Cols() != k {
		return nil, fmt.Errorf("kernel: coupling %dx%d is not square: %w", k, cfg.H.Cols(), errs.ErrDimensionMismatch)
	}
	if cfg.D != nil && len(cfg.D) != n {
		return nil, fmt.Errorf("kernel: degree vector length %d, want %d: %w", len(cfg.D), n, errs.ErrDimensionMismatch)
	}
	if cfg.EchoH != nil && (cfg.EchoH.Rows() != k || cfg.EchoH.Cols() != k) {
		return nil, fmt.Errorf("kernel: echo coupling %dx%d, want %dx%d: %w", cfg.EchoH.Rows(), cfg.EchoH.Cols(), k, k, errs.ErrDimensionMismatch)
	}
	if cfg.Blocks > 1 {
		return nil, fmt.Errorf("kernel: residual plane does not batch (Blocks=%d): %w", cfg.Blocks, errs.ErrInvalidInput)
	}
	if !cfg.SymmetricA {
		return nil, fmt.Errorf("kernel: residual plane requires a symmetric adjacency: %w", errs.ErrInvalidInput)
	}
	if !(tol > 0) || math.IsInf(tol, 1) {
		return nil, fmt.Errorf("kernel: residual tolerance %v must be positive and finite: %w", tol, errs.ErrInvalidInput)
	}
	e := &ResidualEngine{
		a:     cfg.A,
		d:     cfg.D,
		n:     n,
		k:     k,
		echo:  cfg.D != nil,
		tol:   tol,
		b:     make([]float64, n*k),
		r:     make([]float64, n*k),
		rmag:  make([]float64, n),
		ph:    make([]float64, k),
		pg:    make([]float64, k),
		qnext: make([]int32, n),
		qprev: make([]int32, n),
		qbkt:  make([]int8, n),
	}
	if cfg.Layout != LayoutWide {
		_, _, e.compact = cfg.A.CompactIndex()
	}
	for b := 0; b < residualBuckets; b++ {
		e.bhi[b] = math.Ldexp(tol, b+1)
	}
	// Hoist H and the echo coupling into flat slices, mirroring New.
	hbuf := make([]float64, 2*k*k)
	e.h = hbuf[:k*k]
	e.h2 = hbuf[k*k:]
	hd := cfg.H.Data()
	copy(e.h, hd)
	switch {
	case cfg.EchoH != nil:
		copy(e.h2, cfg.EchoH.Data())
	case e.echo:
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				var s float64
				for m := 0; m < k; m++ {
					s += hd[i*k+m] * hd[m*k+j]
				}
				e.h2[i*k+j] = s
			}
		}
	}
	e.resetState()
	return e, nil
}

// N returns the node count the engine was built for.
func (e *ResidualEngine) N() int { return e.n }

// K returns the class count the engine was built for.
func (e *ResidualEngine) K() int { return e.k }

// Tol returns the queue admission tolerance the engine was built with.
func (e *ResidualEngine) Tol() float64 { return e.tol }

// Beliefs returns the accumulated belief state as a flat n×k view of
// the engine's buffer. Valid until the next Seed*/Run; treat as
// read-only.
//
//lsbp:hotpath
func (e *ResidualEngine) Beliefs() []float64 { return e.b }

// resetState clears beliefs, residuals, and the queue — the prologue
// of a cold seed.
//
//lsbp:hotpath
func (e *ResidualEngine) resetState() {
	for i := range e.b {
		e.b[i] = 0
		e.r[i] = 0
	}
	e.resetQueue()
}

// resetQueue clears the scheduling state (magnitudes, bucket lists,
// counters) without touching beliefs or residuals — warm seeds
// overwrite those themselves and skip the redundant O(n·k) zeroing.
//
//lsbp:hotpath
func (e *ResidualEngine) resetQueue() {
	for i := range e.rmag {
		e.rmag[i] = 0
		e.qbkt[i] = -1
	}
	for i := range e.heads {
		e.heads[i] = -1
	}
	e.occ = 0
	e.queued = 0
	e.peak = 0
	e.diverged = false
}

// bucketOf maps a residual magnitude (> tol) to its queue bucket:
// the binary exponent of mag/tol, clamped to the bucket range. NaN
// and +Inf clamp into the top bucket; the divergence flag (set where
// the magnitude was produced) surfaces them as ErrNonFinite.
//
//lsbp:hotpath
func (e *ResidualEngine) bucketOf(mag float64) int32 {
	b := math.Ilogb(mag / e.tol)
	if b < 0 {
		b = 0
	}
	if b >= residualBuckets {
		b = residualBuckets - 1
	}
	return int32(b)
}

// enqueue pushes row i onto bucket bkt's list. The row must be
// unqueued.
//
//lsbp:hotpath
func (e *ResidualEngine) enqueue(i, bkt int32) {
	e.qbkt[i] = int8(bkt)
	h := e.heads[bkt]
	e.qnext[i] = h
	e.qprev[i] = -1
	if h >= 0 {
		e.qprev[h] = i
	}
	e.heads[bkt] = i
	e.occ |= 1 << uint(bkt)
	e.queued++
	if e.queued > e.peak {
		e.peak = e.queued
	}
}

// dequeue unlinks queued row i from its bucket list.
//
//lsbp:hotpath
func (e *ResidualEngine) dequeue(i int32) {
	bkt := e.qbkt[i]
	p, nx := e.qprev[i], e.qnext[i]
	if p >= 0 {
		e.qnext[p] = nx
	} else {
		e.heads[bkt] = nx
		if nx < 0 {
			e.occ &^= 1 << uint(bkt)
		}
	}
	if nx >= 0 {
		e.qprev[nx] = p
	}
	e.qbkt[i] = -1
	e.queued--
}

// touch records row i's new residual magnitude and keeps the queue
// consistent: rows above tol are enqueued (or migrated upward when
// their bucket grew — downward migration is lazy, pop filters stale
// entries), rows at or below tol are left to drain. Non-finite
// magnitudes trip the divergence flag.
//
//lsbp:hotpath
func (e *ResidualEngine) touch(i int32, mag float64) {
	e.rmag[i] = mag
	if mag <= e.tol {
		return
	}
	// mag is a max-abs, so it is non-negative: the single comparison
	// rejects both NaN (compares false) and +Inf.
	if !(mag <= math.MaxFloat64) {
		e.diverged = true
	}
	cur := e.qbkt[i]
	if cur >= 0 && mag <= e.bhi[cur] {
		return // already queued, still within its bucket — no migration
	}
	bkt := e.bucketOf(mag)
	if cur < 0 {
		e.enqueue(i, bkt)
	} else if int32(cur) < bkt {
		e.dequeue(i)
		e.enqueue(i, bkt)
	}
}

// pop removes and returns the row with the (approximately) largest
// residual, or -1 when every remaining residual is at most tol.
// Entries whose residual cancelled below tol after enqueueing are
// dropped here.
//
//lsbp:hotpath
func (e *ResidualEngine) pop() int32 {
	for e.occ != 0 {
		bkt := int32(bits.Len64(e.occ)) - 1
		i := e.heads[bkt]
		e.dequeue(i)
		if e.rmag[i] > e.tol {
			return i
		}
	}
	return -1
}

// relax processes one row: move its residual into the belief and push
// the resulting change through the operator — the echo term back onto
// the row itself, the A-term onto its neighbors via its own CSR row.
//
//lsbp:hotpath
func (e *ResidualEngine) relax(i int32) {
	k := e.k
	ri := e.r[int(i)*k : int(i)*k+k]
	bi := e.b[int(i)*k : int(i)*k+k]
	h := e.h
	ph := e.ph
	// ph = δ·Hˆ (and pg = δ·Hˆ₂) before δ = rᵢ is consumed.
	for c := 0; c < k; c++ {
		var s float64
		for m := 0; m < k; m++ {
			s += ri[m] * h[m*k+c]
		}
		ph[c] = s
	}
	if e.echo {
		h2 := e.h2
		pg := e.pg
		for c := 0; c < k; c++ {
			var s float64
			for m := 0; m < k; m++ {
				s += ri[m] * h2[m*k+c]
			}
			pg[c] = s
		}
	}
	for c := 0; c < k; c++ {
		bi[c] += ri[c]
		ri[c] = 0
	}
	e.rmag[i] = 0
	if e.echo {
		d := e.d[i]
		pg := e.pg
		var m float64
		for c := 0; c < k; c++ {
			ri[c] -= d * pg[c]
			// !(a <= m) instead of a > m so a NaN magnitude
			// propagates into m (and trips the divergence flag in
			// touch) rather than comparing false and vanishing.
			if a := math.Abs(ri[c]); !(a <= m) {
				m = a
			}
		}
		e.touch(i, m)
	}
	// Neighbor push. A self-loop entry lands back on ri — additive, so
	// it composes with the echo push above.
	if e.compact {
		cols, vals, _ := e.a.RowViewCompact(int(i))
		for p, j := range cols {
			w := vals[p]
			rj := e.r[int(j)*k : int(j)*k+k]
			var m float64
			for c := 0; c < k; c++ {
				rj[c] += w * ph[c]
				if a := math.Abs(rj[c]); !(a <= m) {
					m = a
				}
			}
			e.touch(j, m)
		}
		return
	}
	cols, vals := e.a.RowView(int(i))
	for p, jj := range cols {
		w := vals[p]
		rj := e.r[jj*k : jj*k+k]
		var m float64
		for c := 0; c < k; c++ {
			rj[c] += w * ph[c]
			if a := math.Abs(rj[c]); !(a <= m) {
				m = a
			}
		}
		e.touch(int32(jj), m)
	}
}

// rowMag returns the max-abs of row i's residual.
//
//lsbp:hotpath
func (e *ResidualEngine) rowMag(i int) float64 {
	k := e.k
	ri := e.r[i*k : i*k+k]
	var m float64
	for _, v := range ri {
		if a := math.Abs(v); !(a <= m) {
			m = a
		}
	}
	return m
}

// SeedExplicit seeds a cold solve: b = 0, r = Eˆ (nil means Eˆ = 0),
// and every row with a residual above tol enqueued. This is the
// residual-plane analogue of the zero start of Section 3.
//
//lsbp:hotpath
func (e *ResidualEngine) SeedExplicit(explicit []float64) {
	if explicit != nil && len(explicit) != e.n*e.k {
		panic(fmt.Sprintf("kernel: explicit length %d, want %d", len(explicit), e.n*e.k))
	}
	e.resetState()
	if explicit == nil {
		return
	}
	copy(e.r, explicit)
	for i := 0; i < e.n; i++ {
		if m := e.rowMag(i); m != 0 {
			e.touch(int32(i), m)
		}
	}
}

// SeedWarm seeds a warm solve from the start beliefs: b = start and
// the residual r = Eˆ + M·b − b recomputed by a pull pass over the
// rows listed in touched (engine/layout order, deduplicated by the
// caller) — the rows a delta perturbed. Rows outside touched keep a
// zero residual, which is exact only when the start was a converged
// fixpoint for their unchanged rows; the carried error of at most tol
// per prior solve is part of the plane's documented tolerance budget.
// A nil touched recomputes every row (the full warm seed, one
// round-equivalent of work, valid for any start).
//
//lsbp:hotpath
func (e *ResidualEngine) SeedWarm(start, explicit []float64, touched []int32) {
	if len(start) != e.n*e.k {
		panic(fmt.Sprintf("kernel: start length %d, want %d", len(start), e.n*e.k))
	}
	if explicit != nil && len(explicit) != e.n*e.k {
		panic(fmt.Sprintf("kernel: explicit length %d, want %d", len(explicit), e.n*e.k))
	}
	e.resetQueue()
	copy(e.b, start)
	for i := range e.r {
		e.r[i] = 0
	}
	if touched == nil {
		for i := 0; i < e.n; i++ {
			e.seedRow(int32(i), explicit)
		}
		return
	}
	for _, i := range touched {
		e.seedRow(i, explicit)
	}
}

// seedRow pull-computes row i's residual from the current beliefs:
// rᵢ = Eˆᵢ + Σ_{(j,w)∈row i} w·(b_j·Hˆ) − dᵢ·(bᵢ·Hˆ₂) − bᵢ.
//
//lsbp:hotpath
func (e *ResidualEngine) seedRow(i int32, explicit []float64) {
	k := e.k
	ph := e.ph
	// Accumulate Σ w·b_j into ph, then apply Hˆ on the way out — same
	// association as the round kernels' scratch row.
	for c := 0; c < k; c++ {
		ph[c] = 0
	}
	if e.compact {
		cols, vals, _ := e.a.RowViewCompact(int(i))
		for p, j := range cols {
			w := vals[p]
			bj := e.b[int(j)*k : int(j)*k+k]
			for c := 0; c < k; c++ {
				ph[c] += w * bj[c]
			}
		}
	} else {
		cols, vals := e.a.RowView(int(i))
		for p, jj := range cols {
			w := vals[p]
			bj := e.b[jj*k : jj*k+k]
			for c := 0; c < k; c++ {
				ph[c] += w * bj[c]
			}
		}
	}
	h := e.h
	ri := e.r[int(i)*k : int(i)*k+k]
	bi := e.b[int(i)*k : int(i)*k+k]
	var m float64
	for c := 0; c < k; c++ {
		var s float64
		for mm := 0; mm < k; mm++ {
			s += ph[mm] * h[mm*k+c]
		}
		if explicit != nil {
			s += explicit[int(i)*k+c]
		}
		if e.echo {
			h2 := e.h2
			d := e.d[i]
			var g float64
			for mm := 0; mm < k; mm++ {
				g += bi[mm] * h2[mm*k+c]
			}
			s -= d * g
		}
		s -= bi[c]
		ri[c] = s
		if a := math.Abs(s); !(a <= m) {
			m = a
		}
	}
	if m != 0 {
		e.touch(i, m)
	} else {
		e.rmag[i] = 0
	}
}

// Run drains the queue: rows are relaxed in (approximate)
// largest-residual-first order until every residual is at most tol
// (converged), the relaxation budget maxRelax is exhausted, the
// context is cancelled (checked every residualCtxStride relaxations),
// or a residual overflows (ErrNonFinite — a diverging εH past the
// spectral bound, exactly as the round engines report it). It returns
// the relaxation count, the peak queue population, and the largest
// residual magnitude remaining. The belief state is valid — the
// invariant holds — at every exit, converged or not.
//
//lsbp:hotpath
func (e *ResidualEngine) Run(ctx context.Context, maxRelax int) (relaxed, peak int, maxResid float64, converged bool, err error) {
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for {
		if e.diverged {
			return relaxed, e.peak, e.maxResidual(), false,
				fmt.Errorf("kernel: residual update overflowed after %d relaxations: %w", relaxed, errs.ErrNonFinite)
		}
		if relaxed >= maxRelax {
			return relaxed, e.peak, e.maxResidual(), false, nil
		}
		if done != nil && relaxed%residualCtxStride == residualCtxStride-1 {
			select {
			case <-done:
				return relaxed, e.peak, e.maxResidual(), false, ctx.Err()
			default:
			}
		}
		i := e.pop()
		if i < 0 {
			return relaxed, e.peak, e.maxResidual(), true, nil
		}
		e.relax(i)
		relaxed++
	}
}

// maxResidual scans the per-row magnitudes for the largest remaining
// residual — the plane's analogue of the round engines' final delta.
//
//lsbp:hotpath
func (e *ResidualEngine) maxResidual() float64 {
	var m float64
	for _, v := range e.rmag {
		if v > m {
			m = v
		}
	}
	return m
}
