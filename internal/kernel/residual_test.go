package kernel

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/errs"
	"repro/internal/xrand"
)

// roundsFixpoint solves the same configuration on the round-based
// engine to a much tighter tolerance than the residual plane under
// test, so the comparison error is dominated by the residual budget.
func roundsFixpoint(t *testing.T, cfg Config, e []float64, tol float64) []float64 {
	t.Helper()
	eng, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("rounds engine: %v", err)
	}
	defer eng.Close()
	eng.SetExplicit(e)
	if _, _, conv, err := eng.RunContext(context.Background(), 5000, tol, nil); err != nil || !conv {
		t.Fatalf("rounds reference did not converge: conv=%v err=%v", conv, err)
	}
	out := make([]float64, len(eng.Beliefs()))
	copy(out, eng.Beliefs())
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestResidualMatchesRounds pins the residual-scheduled fixpoint to
// the round-based fixpoint across class counts, echo on/off, and both
// CSR layouts. The two schedules sum in different orders, so the
// budget is a tolerance band, not bitwise equality: each plane is
// within O(tol/(1-ρ)) of the unique fixpoint.
func TestResidualMatchesRounds(t *testing.T) {
	const tol = 1e-12
	for _, n := range []int{1, 9, 257} {
		for _, k := range []int{1, 2, 3, 5, 7} {
			for _, echo := range []bool{false, true} {
				for _, layout := range []Layout{LayoutCompact, LayoutWide} {
					a := randomCSR(n, 6, uint64(n*k+1))
					h := randomCoupling(k, uint64(k)+3)
					var d []float64
					if echo {
						d = degrees(a)
					}
					rng := xrand.New(uint64(n) + 17)
					e := make([]float64, n*k)
					for i := range e {
						if rng.Float64() < 0.2 {
							e[i] = rng.Float64() - 0.5
						}
					}

					ref := roundsFixpoint(t, Config{A: a, D: d, H: h, SymmetricA: true, Layout: layout}, e, 1e-14)

					res, err := NewResidual(Config{A: a, D: d, H: h, SymmetricA: true, Layout: layout}, tol)
					if err != nil {
						t.Fatalf("n=%d k=%d: %v", n, k, err)
					}
					res.SeedExplicit(e)
					relaxed, peak, maxResid, conv, err := res.Run(context.Background(), 5000*n+1)
					if err != nil || !conv {
						t.Fatalf("n=%d k=%d echo=%v: residual solve conv=%v err=%v", n, k, echo, conv, err)
					}
					if maxResid > tol {
						t.Fatalf("n=%d k=%d: converged with residual %g > tol %g", n, k, maxResid, tol)
					}
					if diff := maxAbsDiff(ref, res.Beliefs()); diff > 1e-10 {
						t.Fatalf("n=%d k=%d echo=%v layout=%v: fixpoints differ by %g (relaxed=%d peak=%d)",
							n, k, echo, layout, diff, relaxed, peak)
					}
					if relaxed > 0 && peak == 0 {
						t.Fatalf("n=%d k=%d: relaxed %d rows but peak queue population is 0", n, k, relaxed)
					}
				}
			}
		}
	}
}

// TestResidualWarmSeedTouched verifies the localized warm path: after
// a converged solve, re-seeding from the result with only the rows an
// explicit-belief delta touched reaches the new fixpoint, and costs
// far fewer relaxations than the cold solve.
func TestResidualWarmSeedTouched(t *testing.T) {
	const n, k, tol = 257, 3, 1e-12
	a := randomCSR(n, 6, 7)
	h := randomCoupling(k, 5)
	d := degrees(a)
	rng := xrand.New(99)
	e := make([]float64, n*k)
	for i := range e {
		if rng.Float64() < 0.2 {
			e[i] = rng.Float64() - 0.5
		}
	}

	res, err := NewResidual(Config{A: a, D: d, H: h, SymmetricA: true}, tol)
	if err != nil {
		t.Fatal(err)
	}
	res.SeedExplicit(e)
	coldRelaxed, _, _, conv, err := res.Run(context.Background(), 5000*n)
	if err != nil || !conv {
		t.Fatalf("cold solve: conv=%v err=%v", conv, err)
	}
	prev := make([]float64, n*k)
	copy(prev, res.Beliefs())

	// Perturb the explicit beliefs of two rows; only those rows'
	// residuals change, so they are the full touched set.
	touched := []int32{11, 42}
	for _, i := range touched {
		e[int(i)*k] += 0.3
	}
	ref := roundsFixpoint(t, Config{A: a, D: d, H: h, SymmetricA: true}, e, 1e-14)

	res.SeedWarm(prev, e, touched)
	warmRelaxed, _, _, conv, err := res.Run(context.Background(), 5000*n)
	if err != nil || !conv {
		t.Fatalf("warm solve: conv=%v err=%v", conv, err)
	}
	if diff := maxAbsDiff(ref, res.Beliefs()); diff > 1e-9 {
		t.Fatalf("warm fixpoint differs from fresh reference by %g", diff)
	}
	if warmRelaxed >= coldRelaxed {
		t.Fatalf("warm solve relaxed %d rows, cold %d — warm should be cheaper", warmRelaxed, coldRelaxed)
	}

	// The full warm seed (touched=nil) is valid from any start and
	// must land on the same fixpoint.
	res.SeedWarm(prev, e, nil)
	if _, _, _, conv, err = res.Run(context.Background(), 5000*n); err != nil || !conv {
		t.Fatalf("full warm solve: conv=%v err=%v", conv, err)
	}
	if diff := maxAbsDiff(ref, res.Beliefs()); diff > 1e-9 {
		t.Fatalf("full warm fixpoint differs from fresh reference by %g", diff)
	}
}

// TestResidualBudgetExhaustion verifies the relaxation budget: a
// budget of zero returns immediately, non-converged, with the seeded
// state intact, and the engine can still be drained afterwards.
func TestResidualBudgetExhaustion(t *testing.T) {
	const n, k, tol = 64, 2, 1e-12
	a := randomCSR(n, 5, 3)
	h := randomCoupling(k, 4)
	e := make([]float64, n*k)
	e[0], e[k] = 0.4, -0.2

	res, err := NewResidual(Config{A: a, H: h, SymmetricA: true}, tol)
	if err != nil {
		t.Fatal(err)
	}
	res.SeedExplicit(e)
	relaxed, _, maxResid, conv, err := res.Run(context.Background(), 0)
	if err != nil || conv || relaxed != 0 {
		t.Fatalf("zero budget: relaxed=%d conv=%v err=%v", relaxed, conv, err)
	}
	if maxResid < 0.4 {
		t.Fatalf("seeded residual %g, want >= 0.4", maxResid)
	}
	// Resume with a real budget: the queue state carried over.
	if _, _, _, conv, err = res.Run(context.Background(), 5000*n); err != nil || !conv {
		t.Fatalf("resumed solve: conv=%v err=%v", conv, err)
	}
	ref := roundsFixpoint(t, Config{A: a, H: h, SymmetricA: true}, e, 1e-14)
	if diff := maxAbsDiff(ref, res.Beliefs()); diff > 1e-10 {
		t.Fatalf("resumed fixpoint differs by %g", diff)
	}
}

// TestResidualCancellation verifies the periodic context check.
func TestResidualCancellation(t *testing.T) {
	const n, k, tol = 512, 3, 1e-14
	a := randomCSR(n, 8, 11)
	h := randomCoupling(k, 6)
	rng := xrand.New(2)
	e := make([]float64, n*k)
	for i := range e {
		e[i] = rng.Float64() - 0.5
	}
	res, err := NewResidual(Config{A: a, H: h, SymmetricA: true}, tol)
	if err != nil {
		t.Fatal(err)
	}
	res.SeedExplicit(e)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, conv, err := res.Run(ctx, 1<<30)
	if conv || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: conv=%v err=%v", conv, err)
	}
}

// TestResidualDivergence drives the iteration past the spectral bound
// (a coupling far above any convergent εH) and expects ErrNonFinite,
// matching the round engines' overflow contract.
func TestResidualDivergence(t *testing.T) {
	const n, k, tol = 64, 2, 1e-12
	a := randomCSR(n, 6, 13)
	h := randomCoupling(k, 4)
	h = h.Scaled(1e6)
	e := make([]float64, n*k)
	e[0] = 1
	res, err := NewResidual(Config{A: a, H: h, SymmetricA: true}, tol)
	if err != nil {
		t.Fatal(err)
	}
	res.SeedExplicit(e)
	if _, _, _, _, err := res.Run(context.Background(), 1<<30); !errors.Is(err, errs.ErrNonFinite) {
		t.Fatalf("diverging run returned %v, want ErrNonFinite", err)
	}
}

// TestResidualConfigValidation exercises the constructor's rejects.
func TestResidualConfigValidation(t *testing.T) {
	a := randomCSR(8, 3, 1)
	h := randomCoupling(2, 1)
	cases := []struct {
		name string
		cfg  Config
		tol  float64
	}{
		{"asymmetric", Config{A: a, H: h}, 1e-9},
		{"batched", Config{A: a, H: h, SymmetricA: true, Blocks: 2}, 1e-9},
		{"zero tol", Config{A: a, H: h, SymmetricA: true}, 0},
		{"negative tol", Config{A: a, H: h, SymmetricA: true}, -1},
		{"missing H", Config{A: a, SymmetricA: true}, 1e-9},
	}
	for _, tc := range cases {
		if _, err := NewResidual(tc.cfg, tc.tol); err == nil {
			t.Errorf("%s: NewResidual accepted an invalid config", tc.name)
		}
	}
}

// TestResidualZeroExplicit: with Eˆ = 0 the fixpoint is 0 and no row
// is ever scheduled.
func TestResidualZeroExplicit(t *testing.T) {
	a := randomCSR(32, 4, 5)
	h := randomCoupling(3, 2)
	res, err := NewResidual(Config{A: a, H: h, SymmetricA: true}, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	res.SeedExplicit(nil)
	relaxed, peak, maxResid, conv, err := res.Run(context.Background(), 1<<20)
	if err != nil || !conv || relaxed != 0 || peak != 0 || maxResid != 0 {
		t.Fatalf("zero solve: relaxed=%d peak=%d resid=%g conv=%v err=%v", relaxed, peak, maxResid, conv, err)
	}
	for _, v := range res.Beliefs() {
		if v != 0 {
			t.Fatal("zero solve produced nonzero beliefs")
		}
	}
}

// TestResidualSolveAllocs asserts the steady-state seed+run cycle is
// allocation-free — the contract the //lsbp:hotpath annotations and
// lsbplint enforce statically.
func TestResidualSolveAllocs(t *testing.T) {
	const n, k = 128, 3
	a := randomCSR(n, 6, 21)
	h := randomCoupling(k, 7)
	d := degrees(a)
	rng := xrand.New(31)
	e := make([]float64, n*k)
	for i := range e {
		if rng.Float64() < 0.2 {
			e[i] = rng.Float64() - 0.5
		}
	}
	res, err := NewResidual(Config{A: a, D: d, H: h, SymmetricA: true}, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	prev := make([]float64, n*k)
	touched := []int32{3, 77}
	allocs := testing.AllocsPerRun(20, func() {
		res.SeedExplicit(e)
		if _, _, _, conv, err := res.Run(ctx, 5000*n); err != nil || !conv {
			t.Fatalf("conv=%v err=%v", conv, err)
		}
		copy(prev, res.Beliefs())
		res.SeedWarm(prev, e, touched)
		if _, _, _, conv, err := res.Run(ctx, 5000*n); err != nil || !conv {
			t.Fatalf("warm conv=%v err=%v", conv, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("residual solve cycle allocates %v times per run, want 0", allocs)
	}
}
