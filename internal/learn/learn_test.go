package learn

import (
	"math"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/linbp"
)

func TestEstimateRecoversSBMCoupling(t *testing.T) {
	// Generate a large SBM whose block densities are proportional to a
	// known doubly stochastic H, label everything, and check recovery.
	truth := coupling.Fig1a() // [[0.8,0.2],[0.2,0.8]]
	prob := [][]float64{
		{0.8 * 0.05, 0.2 * 0.05},
		{0.2 * 0.05, 0.8 * 0.05},
	}
	g, labels := gen.SBM([]int{400, 400}, prob, 3)
	h, err := EstimateH(g, labels, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coupling.Validate(h); err != nil {
		t.Fatalf("estimate must be a valid coupling matrix: %v", err)
	}
	if !h.EqualApprox(truth, 0.03) {
		t.Fatalf("estimate %v too far from truth %v", h, truth)
	}
}

func TestEstimateRecoversFig1c(t *testing.T) {
	// The fraud generator draws edges with densities ∝ Fig. 1c. With
	// class-size correction the estimator recovers it, including the
	// zero accomplice–accomplice cell (up to smoothing).
	cfg := gen.FraudConfig{Honest: 500, Accomplice: 300, Fraudster: 300, Density: 0.1, Seed: 4}
	g, labels := gen.Fraud(cfg)
	h, err := EstimateH(g, labels, 3, Options{ClassPrior: true, Smoothing: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	truth := coupling.Fig1c()
	if !h.EqualApprox(truth, 0.05) {
		t.Fatalf("estimate\n%v\ntoo far from Fig. 1c\n%v", h, truth)
	}
	// The A–A cell must come out near zero.
	if h.At(1, 1) > 0.05 {
		t.Fatalf("H(A,A) = %v, want ≈0", h.At(1, 1))
	}
}

func TestEstimateConsistency(t *testing.T) {
	// More labeled data → closer estimate (consistency).
	truth := coupling.Fig1a()
	prob := [][]float64{
		{0.8 * 0.08, 0.2 * 0.08},
		{0.2 * 0.08, 0.8 * 0.08},
	}
	errAt := func(n int) float64 {
		g, labels := gen.SBM([]int{n, n}, prob, 11)
		h, err := EstimateH(g, labels, 2, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return h.MaxAbsDiff(truth)
	}
	small, large := errAt(60), errAt(600)
	if large >= small {
		t.Fatalf("estimate must improve with data: n=60 err %v, n=600 err %v", small, large)
	}
}

func TestEstimatePartialLabels(t *testing.T) {
	g, labels := gen.SBM([]int{200, 200},
		[][]float64{{0.04, 0.01}, {0.01, 0.04}}, 5)
	// Hide 70% of the labels.
	partial := append([]int(nil), labels...)
	for v := range partial {
		if v%10 >= 3 {
			partial[v] = Unlabeled
		}
	}
	h, err := EstimateH(g, partial, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Homophily must still be detected.
	if h.At(0, 0) <= h.At(0, 1) {
		t.Fatalf("homophily lost under partial labels: %v", h)
	}
}

func TestEstimateErrors(t *testing.T) {
	g := graph.New(4)
	g.AddUnitEdge(0, 1)
	labels := []int{0, Unlabeled, Unlabeled, Unlabeled}
	if _, err := EstimateH(g, labels, 2, Options{}); err == nil {
		t.Fatal("no labeled edge: expected error")
	}
	if _, err := EstimateH(g, labels[:2], 2, Options{}); err == nil {
		t.Fatal("length mismatch: expected error")
	}
	if _, err := EstimateH(g, []int{0, 5, 0, 0}, 2, Options{}); err == nil {
		t.Fatal("label out of range: expected error")
	}
	if _, err := EstimateH(g, labels, 1, Options{}); err == nil {
		t.Fatal("k < 2: expected error")
	}
}

func TestEstimateResidual(t *testing.T) {
	g, labels := gen.SBM([]int{100, 100},
		[][]float64{{0.06, 0.01}, {0.01, 0.06}}, 9)
	hr, err := EstimateResidual(g, labels, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coupling.ValidateResidual(hr); err != nil {
		t.Fatal(err)
	}
	if hr.At(0, 0) <= 0 {
		t.Fatal("residual diagonal must be positive under homophily")
	}
}

func TestLabelsFromBeliefs(t *testing.T) {
	e := beliefs.New(4, 3)
	e.Set(1, beliefs.LabelResidual(3, 2, 0.1))
	e.Set(3, []float64{0.1, 0.1, -0.2}) // tie → Unlabeled
	labels := LabelsFromBeliefs(e)
	want := []int{Unlabeled, 2, Unlabeled, Unlabeled}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

// TestEndToEndLearnedCoupling closes the loop: learn H from the labeled
// subset, run LinBP with it, and verify the labeling beats a wrong
// (heterophily) prior on a homophily graph.
func TestEndToEndLearnedCoupling(t *testing.T) {
	g, truthLabels := gen.SBM([]int{150, 150},
		[][]float64{{0.05, 0.008}, {0.008, 0.05}}, 21)
	n := g.N()
	e := beliefs.New(n, 2)
	partial := make([]int, n)
	for v := range partial {
		partial[v] = Unlabeled
		if v%5 == 0 {
			partial[v] = truthLabels[v]
			e.Set(v, beliefs.LabelResidual(2, truthLabels[v], 0.1))
		}
	}
	hr, err := EstimateResidual(g, partial, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	acc := accuracyWith(t, g, e, hr, truthLabels, partial)
	if acc < 0.9 {
		t.Fatalf("learned coupling accuracy %v, want >= 0.9", acc)
	}
	wrong := coupling.Heterophily(0.3)
	accWrong := accuracyWith(t, g, e, wrong, truthLabels, partial)
	if acc <= accWrong {
		t.Fatalf("learned coupling (%v) must beat a wrong prior (%v)", acc, accWrong)
	}
}

func accuracyWith(t *testing.T, g *graph.Graph, e *beliefs.Residual,
	hr *dense.Matrix, truth, partial []int) float64 {
	t.Helper()
	eps, err := linbp.MaxEpsilonH(g, hr, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(eps, 1) {
		eps = 2
	}
	res, err := linbp.Run(g, e, hr.Scaled(eps/2), linbp.Options{EchoCancellation: true, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	var correct, total int
	for v := range truth {
		if partial[v] != Unlabeled {
			continue
		}
		top := res.Beliefs.Top(v, beliefs.TopTolerance)
		total++
		if len(top) == 1 && top[0] == truth[v] {
			correct++
		}
	}
	return float64(correct) / float64(total)
}
