package linbp

import (
	"context"
	"fmt"

	"repro/internal/beliefs"
	"repro/internal/dense"
	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/kernel"
)

// Engine is a LinBP solver prepared once for a fixed graph and coupling
// and reused across many solves — the serving scenario where the same
// network answers classification queries for changing explicit beliefs.
// All n×k work buffers live in the underlying kernel engine, so
// steady-state SolveInto calls perform zero allocations.
//
// An Engine is not safe for concurrent use; run one per goroutine or
// serialize access. Call Close when done.
type Engine struct {
	eng    *kernel.Engine
	ws     *kernel.Workspace
	n, k   int
	opts   Options
	closed bool
}

// NewEngine prepares a reusable solver for graph g and residual
// coupling h (already scaled by εH). opts.OnIteration is honored on
// every solve.
func NewEngine(g *graph.Graph, h *dense.Matrix, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	n, k := g.N(), h.Rows()
	if h.Cols() != k {
		return nil, fmt.Errorf("linbp: coupling matrix %dx%d is not square: %w", h.Rows(), h.Cols(), errs.ErrDimensionMismatch)
	}
	var d []float64
	if opts.EchoCancellation {
		d = g.WeightedDegrees()
	}
	ws := kernel.GetWorkspace()
	eng, err := kernel.New(kernel.Config{A: g.Adjacency(), D: d, H: h, Workers: opts.Workers}, ws)
	if err != nil {
		ws.Release()
		return nil, fmt.Errorf("linbp: %w", err)
	}
	return &Engine{eng: eng, ws: ws, n: n, k: k, opts: opts}, nil
}

// Solve runs LinBP for the explicit beliefs e, allocating a fresh
// result. Use SolveInto for the zero-allocation path.
func (s *Engine) Solve(e *beliefs.Residual) (*Result, error) {
	dst := beliefs.New(s.n, s.k)
	iters, delta, converged, err := s.SolveInto(dst, e)
	if err != nil {
		return nil, err
	}
	return &Result{Beliefs: dst, Iterations: iters, Converged: converged, Delta: delta}, nil
}

// SolveInto runs LinBP for the explicit beliefs e and writes the final
// residual beliefs into dst (n×k, overwritten). In steady state it
// performs no allocations.
func (s *Engine) SolveInto(dst *beliefs.Residual, e *beliefs.Residual) (iters int, delta float64, converged bool, err error) {
	return s.SolveIntoContext(context.Background(), dst, e)
}

// SolveIntoContext is SolveInto with cooperative cancellation: ctx is
// checked at every kernel round boundary, and on cancellation the
// solve aborts with ctx.Err() after at most one more round. dst then
// holds the last completed iterate.
func (s *Engine) SolveIntoContext(ctx context.Context, dst *beliefs.Residual, e *beliefs.Residual) (iters int, delta float64, converged bool, err error) {
	if s.closed {
		return 0, 0, false, fmt.Errorf("linbp: %w", errs.ErrClosed)
	}
	if e.N() != s.n || e.K() != s.k {
		return 0, 0, false, fmt.Errorf("linbp: belief matrix %dx%d does not match n=%d k=%d: %w", e.N(), e.K(), s.n, s.k, errs.ErrDimensionMismatch)
	}
	if dst.N() != s.n || dst.K() != s.k {
		return 0, 0, false, fmt.Errorf("linbp: destination matrix %dx%d does not match n=%d k=%d: %w", dst.N(), dst.K(), s.n, s.k, errs.ErrDimensionMismatch)
	}
	s.eng.ResetFast()
	s.eng.SetExplicit(e.Matrix().Data())
	iters, delta, converged, err = s.eng.RunContext(ctx, s.opts.MaxIter, s.opts.Tol, s.opts.OnIteration)
	dd := dst.Matrix().Data()
	if iters == 0 {
		// Nothing ran (pre-cancelled context or a zero iteration cap):
		// the last completed iterate is the zero start, and with
		// ResetFast the engine buffer may hold a previous solve.
		for i := range dd {
			dd[i] = 0
		}
		return iters, delta, converged, err
	}
	copy(dd, s.eng.Beliefs())
	return iters, delta, converged, err
}

// Close releases the worker pool and returns the workspace to the
// package pool. The engine must not be used afterwards; Close is
// idempotent.
func (s *Engine) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.eng.Close()
	s.ws.Release()
}
