package linbp

import (
	"fmt"

	"repro/internal/beliefs"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/kernel"
)

// Engine is a LinBP solver prepared once for a fixed graph and coupling
// and reused across many solves — the serving scenario where the same
// network answers classification queries for changing explicit beliefs.
// All n×k work buffers live in the underlying kernel engine, so
// steady-state SolveInto calls perform zero allocations.
//
// An Engine is not safe for concurrent use; run one per goroutine or
// serialize access. Call Close when done.
type Engine struct {
	eng  *kernel.Engine
	ws   *kernel.Workspace
	n, k int
	opts Options
}

// NewEngine prepares a reusable solver for graph g and residual
// coupling h (already scaled by εH). opts.OnIteration is honored on
// every solve.
func NewEngine(g *graph.Graph, h *dense.Matrix, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	n, k := g.N(), h.Rows()
	if h.Cols() != k {
		return nil, fmt.Errorf("linbp: coupling matrix %dx%d is not square", h.Rows(), h.Cols())
	}
	var d []float64
	if opts.EchoCancellation {
		d = g.WeightedDegrees()
	}
	ws := kernel.GetWorkspace()
	eng, err := kernel.New(kernel.Config{A: g.Adjacency(), D: d, H: h, Workers: opts.Workers}, ws)
	if err != nil {
		ws.Release()
		return nil, fmt.Errorf("linbp: %w", err)
	}
	return &Engine{eng: eng, ws: ws, n: n, k: k, opts: opts}, nil
}

// Solve runs LinBP for the explicit beliefs e, allocating a fresh
// result. Use SolveInto for the zero-allocation path.
func (s *Engine) Solve(e *beliefs.Residual) (*Result, error) {
	dst := beliefs.New(s.n, s.k)
	iters, delta, converged, err := s.SolveInto(dst, e)
	if err != nil {
		return nil, err
	}
	return &Result{Beliefs: dst, Iterations: iters, Converged: converged, Delta: delta}, nil
}

// SolveInto runs LinBP for the explicit beliefs e and writes the final
// residual beliefs into dst (n×k, overwritten). In steady state it
// performs no allocations.
func (s *Engine) SolveInto(dst *beliefs.Residual, e *beliefs.Residual) (iters int, delta float64, converged bool, err error) {
	if e.N() != s.n || e.K() != s.k {
		return 0, 0, false, fmt.Errorf("linbp: belief matrix %dx%d does not match n=%d k=%d", e.N(), e.K(), s.n, s.k)
	}
	if dst.N() != s.n || dst.K() != s.k {
		return 0, 0, false, fmt.Errorf("linbp: destination matrix %dx%d does not match n=%d k=%d", dst.N(), dst.K(), s.n, s.k)
	}
	s.eng.Reset()
	s.eng.SetExplicit(e.Matrix().Data())
	iters, delta, converged = s.eng.Run(s.opts.MaxIter, s.opts.Tol, s.opts.OnIteration)
	copy(dst.Matrix().Data(), s.eng.Beliefs())
	return iters, delta, converged, nil
}

// Close releases the worker pool and returns the workspace to the
// package pool. The engine must not be used afterwards.
func (s *Engine) Close() {
	s.eng.Close()
	s.ws.Release()
}
