package linbp

import (
	"context"
	"fmt"

	"repro/internal/beliefs"
	"repro/internal/dense"
	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/order"
	"repro/internal/sparse"
)

// Engine is a LinBP solver prepared once for a fixed graph and coupling
// and reused across many solves — the serving scenario where the same
// network answers classification queries for changing explicit beliefs.
// All n×k work buffers live in the underlying kernel engine, so
// steady-state SolveInto calls perform zero allocations.
//
// An Engine is not safe for concurrent use; run one per goroutine or
// serialize access. Call Close when done.
type Engine struct {
	eng    *kernel.Engine
	ws     *kernel.Workspace
	n, k   int
	opts   Options
	closed bool

	// perm, when non-nil, is the node relabeling (perm[old] = new) the
	// engine's adjacency layout was prepared under. Explicit beliefs
	// are permuted into eperm on the way in and results are permuted
	// back on the way out, so callers never see the internal order.
	perm  order.Permutation
	eperm []float64
}

// NewEngine prepares a reusable solver for graph g and residual
// coupling h (already scaled by εH). opts.OnIteration is honored on
// every solve.
func NewEngine(g *graph.Graph, h *dense.Matrix, opts Options) (*Engine, error) {
	var d []float64
	if opts.EchoCancellation {
		d = g.WeightedDegrees()
	}
	return NewEngineLayout(g.Adjacency(), d, h, nil, opts)
}

// NewEngineLayout prepares an engine over an explicit adjacency layout:
// a (possibly reordered) CSR a, the matching degree vector d (nil
// disables echo cancellation regardless of opts.EchoCancellation), and
// the relabeling perm (perm[old] = new; nil for the natural order)
// under which a and d were produced. The layout optimizer in the
// prepared-solver path uses this to serve solves over a
// locality-ordered graph while callers keep their node ids: explicit
// beliefs are permuted in, results are permuted back out, with no
// steady-state allocations beyond NewEngine's.
func NewEngineLayout(a *sparse.CSR, d []float64, h *dense.Matrix, perm []int, opts Options) (*Engine, error) {
	opts = opts.withDefaults()
	n, k := a.Rows(), h.Rows()
	if h.Cols() != k {
		return nil, fmt.Errorf("linbp: coupling matrix %dx%d is not square: %w", h.Rows(), h.Cols(), errs.ErrDimensionMismatch)
	}
	if perm != nil && len(perm) != n {
		return nil, fmt.Errorf("linbp: permutation length %d does not match n=%d: %w", len(perm), n, errs.ErrDimensionMismatch)
	}
	ws := kernel.GetWorkspace()
	eng, err := kernel.New(kernel.Config{A: a, D: d, H: h, Workers: opts.Workers, Layout: opts.Layout, SymmetricA: true, PartitionStarts: opts.PartitionStarts}, ws)
	if err != nil {
		ws.Release()
		return nil, fmt.Errorf("linbp: %w", err)
	}
	e := &Engine{eng: eng, ws: ws, n: n, k: k, opts: opts, perm: perm}
	if perm != nil {
		e.eperm = make([]float64, n*k)
	}
	return e, nil
}

// Solve runs LinBP for the explicit beliefs e, allocating a fresh
// result. Use SolveInto for the zero-allocation path.
func (s *Engine) Solve(e *beliefs.Residual) (*Result, error) {
	dst := beliefs.New(s.n, s.k)
	iters, delta, converged, err := s.SolveInto(dst, e)
	if err != nil {
		return nil, err
	}
	return &Result{Beliefs: dst, Iterations: iters, Converged: converged, Delta: delta}, nil
}

// SolveInto runs LinBP for the explicit beliefs e and writes the final
// residual beliefs into dst (n×k, overwritten). In steady state it
// performs no allocations.
//
//lsbp:hotpath
func (s *Engine) SolveInto(dst *beliefs.Residual, e *beliefs.Residual) (iters int, delta float64, converged bool, err error) {
	return s.SolveIntoContext(context.Background(), dst, e)
}

// SolveIntoContext is SolveInto with cooperative cancellation: ctx is
// checked at every kernel round boundary, and on cancellation the
// solve aborts with ctx.Err() after at most one more round. dst then
// holds the last completed iterate.
//
//lsbp:hotpath
func (s *Engine) SolveIntoContext(ctx context.Context, dst *beliefs.Residual, e *beliefs.Residual) (iters int, delta float64, converged bool, err error) {
	return s.SolveFromIntoContext(ctx, dst, e, nil)
}

// SolveFromIntoContext is SolveIntoContext warm-started from start
// instead of the Bˆ = 0 zero start: the iteration begins at the
// provided beliefs (in the caller's node order; the engine shuffles
// them into its layout in one pass), so a solve whose inputs changed
// only slightly since the previous fixpoint converges in far fewer
// rounds — the incremental-maintenance direction of the paper's
// Section 8. The fixpoint is unique whenever the convergence criterion
// holds, so warm starting changes the iteration count, never the
// answer. A nil start is the ordinary cold solve (with its Bˆ¹ = Eˆ
// first-round shortcut); a non-nil start disables that shortcut and
// runs full rounds from the given state.
//
//lsbp:hotpath
func (s *Engine) SolveFromIntoContext(ctx context.Context, dst, e, start *beliefs.Residual) (iters int, delta float64, converged bool, err error) {
	if s.closed {
		return 0, 0, false, fmt.Errorf("linbp: %w", errs.ErrClosed)
	}
	if e.N() != s.n || e.K() != s.k {
		return 0, 0, false, fmt.Errorf("linbp: belief matrix %dx%d does not match n=%d k=%d: %w", e.N(), e.K(), s.n, s.k, errs.ErrDimensionMismatch)
	}
	if dst.N() != s.n || dst.K() != s.k {
		return 0, 0, false, fmt.Errorf("linbp: destination matrix %dx%d does not match n=%d k=%d: %w", dst.N(), dst.K(), s.n, s.k, errs.ErrDimensionMismatch)
	}
	if start == nil {
		s.eng.ResetFast()
	} else {
		if start.N() != s.n || start.K() != s.k {
			return 0, 0, false, fmt.Errorf("linbp: start matrix %dx%d does not match n=%d k=%d: %w", start.N(), start.K(), s.n, s.k, errs.ErrDimensionMismatch)
		}
		s.eng.SetStartPermuted(start.Matrix().Data(), s.perm)
	}
	ed := e.Matrix().Data()
	if s.perm == nil {
		s.eng.SetExplicit(ed)
	} else {
		// Shuffle the explicit beliefs into the engine's node order.
		s.perm.ApplyRows(s.eperm, ed, s.k)
		s.eng.SetExplicit(s.eperm)
	}
	iters, delta, converged, err = s.eng.RunContext(ctx, s.opts.MaxIter, s.opts.Tol, s.opts.OnIteration)
	dd := dst.Matrix().Data()
	if iters == 0 {
		// Nothing ran (pre-cancelled context or a zero iteration cap):
		// the last completed iterate is the starting point — the warm
		// start when one was given, else the zero start (with ResetFast
		// the engine buffer may hold a previous solve, so it is not
		// read).
		if start != nil {
			copy(dd, start.Matrix().Data())
		} else {
			for i := range dd {
				dd[i] = 0
			}
		}
		return iters, delta, converged, err
	}
	if s.perm == nil {
		copy(dd, s.eng.Beliefs())
	} else {
		// Un-shuffle straight from the engine state: one pass, no
		// intermediate buffer.
		s.perm.InvertRows(dd, s.eng.Beliefs(), s.k)
	}
	return iters, delta, converged, err
}

// Close releases the worker pool and returns the workspace to the
// package pool. The engine must not be used afterwards; Close is
// idempotent.
func (s *Engine) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.eng.Close()
	s.ws.Release()
}
