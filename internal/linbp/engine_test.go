package linbp

import (
	"math"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/gen"
)

// TestEngineMatchesRun checks the reusable serving engine against the
// one-shot Run on the same problem, echo on and off.
func TestEngineMatchesRun(t *testing.T) {
	g := gen.Kronecker(5)
	e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: 0.05, Seed: 1})
	h := coupling.Fig6bResidual().Scaled(0.001)
	for _, echo := range []bool{false, true} {
		opts := Options{EchoCancellation: echo, MaxIter: 50}
		want, err := Run(g, e, h, opts)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(g, h, opts)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ { // reuse across solves
			got, err := eng.Solve(e)
			if err != nil {
				t.Fatal(err)
			}
			if got.Iterations != want.Iterations || got.Converged != want.Converged {
				t.Fatalf("echo=%v trial %d: (iters, converged) = (%d, %v), want (%d, %v)",
					echo, trial, got.Iterations, got.Converged, want.Iterations, want.Converged)
			}
			wd, gd := want.Beliefs.Matrix().Data(), got.Beliefs.Matrix().Data()
			for i := range wd {
				if math.Abs(wd[i]-gd[i]) > 1e-14 {
					t.Fatalf("echo=%v trial %d: beliefs[%d] = %g, want %g", echo, trial, i, gd[i], wd[i])
				}
			}
		}
		eng.Close()
	}
}

// TestRunWorkBufferAllocations is the allocation-assertion satellite:
// routing Run through the pooled kernel workspace must eliminate the
// per-call cur/ab/next work arrays. What remains per call is the
// returned Result (its n×k belief matrix plus a handful of small
// headers) — so the bound here is a fixed small count, where the seed
// implementation paid three extra n×k slices on top of it.
func TestRunWorkBufferAllocations(t *testing.T) {
	g := gen.Kronecker(5)
	e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: 0.05, Seed: 1})
	h := coupling.Fig6bResidual().Scaled(0.001)
	opts := Options{EchoCancellation: true, MaxIter: 5, Tol: -1}
	if _, err := Run(g, e, h, opts); err != nil { // warm the workspace pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Run(g, e, h, opts); err != nil {
			t.Fatal(err)
		}
	})
	// Result struct + beliefs.Residual + dense.Matrix + its data slice +
	// kernel.Engine + slack for the runtime; the three n×k work buffers
	// of the seed implementation must not reappear.
	if allocs > 8 {
		t.Errorf("Run allocates %v objects per call, want <= 8 (work buffers must come from the pool)", allocs)
	}
}

// TestSolveIntoZeroAllocs asserts the serving path end to end: a warm
// engine solving into a caller-owned destination allocates nothing.
func TestSolveIntoZeroAllocs(t *testing.T) {
	g := gen.Kronecker(5)
	e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: 0.05, Seed: 1})
	h := coupling.Fig6bResidual().Scaled(0.001)
	eng, err := NewEngine(g, h, Options{EchoCancellation: true, MaxIter: 5, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	dst := beliefs.New(g.N(), 3)
	if _, _, _, err := eng.SolveInto(dst, e); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, _, err := eng.SolveInto(dst, e); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("SolveInto allocates %v objects per call, want 0", allocs)
	}
}

// TestEngineLayoutRoundTrip pins the reordered serving path: an engine
// over a permuted adjacency must return beliefs in the caller's node
// order, matching the natural-order engine to float tolerance, with the
// permutation shuffles adding no steady-state allocations.
func TestEngineLayoutRoundTrip(t *testing.T) {
	g := gen.Kronecker(5) // 243 nodes
	h := ho(t).Scaled(0.01)
	e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: 0.1, Seed: 3})
	n := g.N()
	// An arbitrary bijection: stride coprime with n.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i*64 + 7) % n // gcd(64, 243) = 1
	}
	a := g.Adjacency()
	ap := a.Permute(perm)
	d := g.WeightedDegrees()
	dp := make([]float64, n)
	for i, v := range d {
		dp[perm[i]] = v
	}
	plain, err := NewEngine(g, h, Options{EchoCancellation: true, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	reordered, err := NewEngineLayout(ap, dp, h, perm, Options{EchoCancellation: true, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer reordered.Close()
	want := beliefs.New(n, 3)
	got := beliefs.New(n, 3)
	if _, _, _, err := plain.SolveInto(want, e); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := reordered.SolveInto(got, e); err != nil {
		t.Fatal(err)
	}
	wd, gd := want.Matrix().Data(), got.Matrix().Data()
	for i := range wd {
		if d := math.Abs(wd[i] - gd[i]); d > 1e-12 {
			t.Fatalf("reordered result drifts at %d: %g", i, d)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		reordered.SolveInto(got, e)
	})
	if allocs > 0 {
		t.Errorf("%v allocs per reordered SolveInto, want 0", allocs)
	}
}

// TestEngineWarmStart pins the warm-start contract: starting at the
// previous fixpoint converges in fewer rounds to the same unique
// answer, with and without a layout permutation.
func TestEngineWarmStart(t *testing.T) {
	g := gen.Kronecker(5)
	e, _ := beliefs.Seed(g.N(), 3, beliefs.SeedConfig{Fraction: 0.05, Seed: 3})
	h := coupling.Fig6bResidual().Scaled(0.002)
	opts := Options{EchoCancellation: true, MaxIter: 200, Tol: 1e-11}
	for name, perm := range map[string][]int{"natural": nil, "permuted": reversePerm(g.N())} {
		var d []float64 = g.WeightedDegrees()
		a := g.Adjacency()
		if perm != nil {
			a = a.Permute(perm)
			dp := make([]float64, len(d))
			for i, v := range d {
				dp[perm[i]] = v
			}
			d = dp
		}
		eng, err := NewEngineLayout(a, d, h, perm, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		cold := beliefs.New(g.N(), 3)
		coldIters, _, converged, err := eng.SolveInto(cold, e)
		if err != nil || !converged {
			t.Fatalf("%s cold solve: iters=%d converged=%v err=%v", name, coldIters, converged, err)
		}
		warm := beliefs.New(g.N(), 3)
		warmIters, _, converged, err := eng.SolveFromIntoContext(nil, warm, e, cold)
		if err != nil || !converged {
			t.Fatalf("%s warm solve: err=%v", name, err)
		}
		if warmIters >= coldIters {
			t.Errorf("%s: warm start took %d rounds, cold %d", name, warmIters, coldIters)
		}
		if d := maxDiff(warm, cold); d > 1e-10 {
			t.Errorf("%s: warm fixpoint diverges by %g", name, d)
		}
		// Start-shape validation.
		if _, _, _, err := eng.SolveFromIntoContext(nil, warm, e, beliefs.New(3, 3)); err == nil {
			t.Errorf("%s: mis-shaped start accepted", name)
		}
	}
}

func reversePerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = n - 1 - i
	}
	return p
}

func maxDiff(a, b *beliefs.Residual) float64 {
	var max float64
	ad, bd := a.Matrix().Data(), b.Matrix().Data()
	for i := range ad {
		d := ad[i] - bd[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}
