package linbp

import (
	"fmt"

	"repro/internal/beliefs"
	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/kernel"
)

// Incremental maintains a LinBP solution across input changes by
// warm-starting the iterative updates from the previous fixpoint. The
// paper defers incremental LinBP maintenance to future work (Section 8,
// pointing at LINVIEW-style delta processing); warm starting is the
// simple, always-correct variant: the fixpoint of Eq. 4 is unique
// whenever ρ < 1, so restarting the contraction from a nearby point
// yields the same solution in fewer iterations (property-tested), with
// the iteration count shrinking as the perturbation shrinks.
type Incremental struct {
	g    *graph.Graph
	e    *beliefs.Residual
	h    *dense.Matrix
	opts Options
	last *beliefs.Residual
}

// NewIncremental solves the initial problem and returns the maintained
// state. opts.Tol must be non-negative (a fixpoint is required).
func NewIncremental(g *graph.Graph, e *beliefs.Residual, h *dense.Matrix, opts Options) (*Incremental, *Result, error) {
	if opts.Tol < 0 {
		return nil, nil, fmt.Errorf("linbp: incremental maintenance needs a convergence tolerance")
	}
	res, err := Run(g, e, h, opts)
	if err != nil {
		return nil, nil, err
	}
	if !res.Converged {
		return nil, nil, fmt.Errorf("linbp: initial solve did not converge (delta %g)", res.Delta)
	}
	inc := &Incremental{g: g, e: e.Clone(), h: h, opts: opts, last: res.Beliefs.Clone()}
	return inc, res, nil
}

// Beliefs returns the current fixpoint (aliased; treat as read-only).
func (inc *Incremental) Beliefs() *beliefs.Residual { return inc.last }

// UpdateExplicitBeliefs installs the non-zero rows of en as new or
// replacement explicit beliefs and re-solves from the previous
// fixpoint. It returns the refreshed result.
func (inc *Incremental) UpdateExplicitBeliefs(en *beliefs.Residual) (*Result, error) {
	if en.N() != inc.e.N() || en.K() != inc.e.K() {
		return nil, fmt.Errorf("linbp: update matrix %dx%d does not match state", en.N(), en.K())
	}
	for _, v := range en.ExplicitNodes() {
		inc.e.Set(v, en.Row(v))
	}
	return inc.resolve()
}

// UpdateEdges inserts new edges and re-solves from the previous
// fixpoint. The caller must ensure the perturbed system still satisfies
// the convergence criterion (CheckConvergence); otherwise an error is
// returned after MaxIter rounds.
func (inc *Incremental) UpdateEdges(edges []graph.Edge) (*Result, error) {
	for _, e := range edges {
		inc.g.AddEdge(e.S, e.T, e.W)
	}
	return inc.resolve()
}

// resolve runs the iterative updates warm-started at the previous
// fixpoint and stores the new one.
func (inc *Incremental) resolve() (*Result, error) {
	res, err := runFrom(inc.g, inc.e, inc.h, inc.opts, inc.last)
	if err != nil {
		return nil, err
	}
	if !res.Converged {
		return nil, fmt.Errorf("linbp: incremental solve did not converge (delta %g); check the convergence criterion after the update", res.Delta)
	}
	inc.last = res.Beliefs.Clone()
	return res, nil
}

// runFrom is Run with a caller-provided starting point instead of Bˆ = 0.
// It drives the fused kernel engine with a pooled workspace.
func runFrom(g *graph.Graph, e *beliefs.Residual, h *dense.Matrix, opts Options, start *beliefs.Residual) (*Result, error) {
	opts = opts.withDefaults()
	n, k, err := validate(g, e, h)
	if err != nil {
		return nil, err
	}
	if start != nil && (start.N() != n || start.K() != k) {
		return nil, fmt.Errorf("linbp: start matrix %dx%d does not match n=%d k=%d", start.N(), start.K(), n, k)
	}
	var d []float64
	if opts.EchoCancellation {
		d = g.WeightedDegrees()
	}
	ws := kernel.GetWorkspace()
	defer ws.Release()
	eng, err := kernel.New(kernel.Config{A: g.Adjacency(), D: d, H: h, Workers: opts.Workers, SymmetricA: true}, ws)
	if err != nil {
		return nil, fmt.Errorf("linbp: %w", err)
	}
	defer eng.Close()
	eng.SetExplicit(e.Matrix().Data())
	if start != nil {
		eng.SetStart(start.Matrix().Data())
	}

	res := &Result{}
	res.Iterations, res.Delta, res.Converged = eng.Run(opts.MaxIter, opts.Tol, opts.OnIteration)
	bm := dense.New(n, k)
	copy(bm.Data(), eng.Beliefs())
	res.Beliefs = beliefs.FromMatrix(bm)
	return res, nil
}
