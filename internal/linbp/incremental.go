package linbp

import (
	"fmt"
	"math"

	"repro/internal/beliefs"
	"repro/internal/dense"
	"repro/internal/graph"
)

// Incremental maintains a LinBP solution across input changes by
// warm-starting the iterative updates from the previous fixpoint. The
// paper defers incremental LinBP maintenance to future work (Section 8,
// pointing at LINVIEW-style delta processing); warm starting is the
// simple, always-correct variant: the fixpoint of Eq. 4 is unique
// whenever ρ < 1, so restarting the contraction from a nearby point
// yields the same solution in fewer iterations (property-tested), with
// the iteration count shrinking as the perturbation shrinks.
type Incremental struct {
	g    *graph.Graph
	e    *beliefs.Residual
	h    *dense.Matrix
	opts Options
	last *beliefs.Residual
}

// NewIncremental solves the initial problem and returns the maintained
// state. opts.Tol must be non-negative (a fixpoint is required).
func NewIncremental(g *graph.Graph, e *beliefs.Residual, h *dense.Matrix, opts Options) (*Incremental, *Result, error) {
	if opts.Tol < 0 {
		return nil, nil, fmt.Errorf("linbp: incremental maintenance needs a convergence tolerance")
	}
	res, err := Run(g, e, h, opts)
	if err != nil {
		return nil, nil, err
	}
	if !res.Converged {
		return nil, nil, fmt.Errorf("linbp: initial solve did not converge (delta %g)", res.Delta)
	}
	inc := &Incremental{g: g, e: e.Clone(), h: h, opts: opts, last: res.Beliefs.Clone()}
	return inc, res, nil
}

// Beliefs returns the current fixpoint (aliased; treat as read-only).
func (inc *Incremental) Beliefs() *beliefs.Residual { return inc.last }

// UpdateExplicitBeliefs installs the non-zero rows of en as new or
// replacement explicit beliefs and re-solves from the previous
// fixpoint. It returns the refreshed result.
func (inc *Incremental) UpdateExplicitBeliefs(en *beliefs.Residual) (*Result, error) {
	if en.N() != inc.e.N() || en.K() != inc.e.K() {
		return nil, fmt.Errorf("linbp: update matrix %dx%d does not match state", en.N(), en.K())
	}
	for _, v := range en.ExplicitNodes() {
		inc.e.Set(v, en.Row(v))
	}
	return inc.resolve()
}

// UpdateEdges inserts new edges and re-solves from the previous
// fixpoint. The caller must ensure the perturbed system still satisfies
// the convergence criterion (CheckConvergence); otherwise an error is
// returned after MaxIter rounds.
func (inc *Incremental) UpdateEdges(edges []graph.Edge) (*Result, error) {
	for _, e := range edges {
		inc.g.AddEdge(e.S, e.T, e.W)
	}
	return inc.resolve()
}

// resolve runs the iterative updates warm-started at the previous
// fixpoint and stores the new one.
func (inc *Incremental) resolve() (*Result, error) {
	res, err := runFrom(inc.g, inc.e, inc.h, inc.opts, inc.last)
	if err != nil {
		return nil, err
	}
	if !res.Converged {
		return nil, fmt.Errorf("linbp: incremental solve did not converge (delta %g); check the convergence criterion after the update", res.Delta)
	}
	inc.last = res.Beliefs.Clone()
	return res, nil
}

// runFrom is Run with a caller-provided starting point instead of Bˆ = 0.
func runFrom(g *graph.Graph, e *beliefs.Residual, h *dense.Matrix, opts Options, start *beliefs.Residual) (*Result, error) {
	opts = opts.withDefaults()
	n, k, err := validate(g, e, h)
	if err != nil {
		return nil, err
	}
	if start != nil && (start.N() != n || start.K() != k) {
		return nil, fmt.Errorf("linbp: start matrix %dx%d does not match n=%d k=%d", start.N(), start.K(), n, k)
	}
	a := g.Adjacency()
	var d []float64
	if opts.EchoCancellation {
		d = g.WeightedDegrees()
	}
	h2 := h.Mul(h)

	cur := make([]float64, n*k)
	if start != nil {
		copy(cur, start.Matrix().Data())
	}
	ab := make([]float64, n*k)
	next := make([]float64, n*k)
	eData := e.Matrix().Data()

	res := &Result{}
	for iter := 0; iter < opts.MaxIter; iter++ {
		a.MulDenseInto(ab, cur, k)
		delta := stepInto(next, cur, ab, eData, h, h2, d, n, k, opts.EchoCancellation)
		cur, next = next, cur
		res.Iterations = iter + 1
		res.Delta = delta
		if opts.OnIteration != nil {
			opts.OnIteration(iter+1, delta)
		}
		if delta <= opts.Tol {
			res.Converged = true
			break
		}
	}
	bm := dense.New(n, k)
	copy(bm.Data(), cur)
	res.Beliefs = beliefs.FromMatrix(bm)
	return res, nil
}

// stepInto computes one Jacobi round next = Eˆ + (A·B)·Hˆ − D·B·Hˆ² and
// returns the maximum change against cur.
func stepInto(next, cur, ab, eData []float64, h, h2 *dense.Matrix, d []float64, n, k int, echo bool) float64 {
	var delta float64
	for s := 0; s < n; s++ {
		abRow := ab[s*k : (s+1)*k]
		bRow := cur[s*k : (s+1)*k]
		nxRow := next[s*k : (s+1)*k]
		eRow := eData[s*k : (s+1)*k]
		for i := 0; i < k; i++ {
			v := eRow[i]
			for j := 0; j < k; j++ {
				v += abRow[j] * h.At(j, i)
			}
			if echo {
				var echoTerm float64
				for j := 0; j < k; j++ {
					echoTerm += bRow[j] * h2.At(j, i)
				}
				v -= d[s] * echoTerm
			}
			ch := abs(v - bRow[i])
			if ch != ch { // NaN from Inf − Inf after overflow: diverged
				ch = inf
			}
			if ch > delta {
				delta = ch
			}
			nxRow[i] = v
		}
	}
	return delta
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

var inf = math.Inf(1)
