package linbp

import (
	"fmt"

	"repro/internal/beliefs"
	"repro/internal/dense"
	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/kernel"
)

// The maintained-state Incremental type that used to live here was
// superseded by the epoch-versioned dynamic solver (core/dynamic.go +
// the lsbp.IncrementalLinBP wrapper): incremental maintenance now runs
// through the prepared kernel engines, layouts, partitions, and
// concurrency machinery instead of this package's one-shot path. What
// remains is the warm-start run primitive both paths are built on.

// runFrom is Run with a caller-provided starting point instead of Bˆ = 0.
// It drives the fused kernel engine with a pooled workspace. The
// fixpoint of Eq. 4 is unique whenever ρ < 1, so restarting the
// contraction from a nearby point yields the same solution in fewer
// iterations, with the iteration count shrinking as the perturbation
// shrinks.
func runFrom(g *graph.Graph, e *beliefs.Residual, h *dense.Matrix, opts Options, start *beliefs.Residual) (*Result, error) {
	opts = opts.withDefaults()
	n, k, err := validate(g, e, h)
	if err != nil {
		return nil, err
	}
	if start != nil && (start.N() != n || start.K() != k) {
		return nil, fmt.Errorf("linbp: start matrix %dx%d does not match n=%d k=%d: %w", start.N(), start.K(), n, k, errs.ErrDimensionMismatch)
	}
	var d []float64
	if opts.EchoCancellation {
		d = g.WeightedDegrees()
	}
	ws := kernel.GetWorkspace()
	defer ws.Release()
	eng, err := kernel.New(kernel.Config{A: g.Adjacency(), D: d, H: h, Workers: opts.Workers, SymmetricA: true}, ws)
	if err != nil {
		return nil, fmt.Errorf("linbp: %w", err)
	}
	defer eng.Close()
	eng.SetExplicit(e.Matrix().Data())
	if start != nil {
		eng.SetStart(start.Matrix().Data())
	}

	res := &Result{}
	res.Iterations, res.Delta, res.Converged = eng.Run(opts.MaxIter, opts.Tol, opts.OnIteration)
	bm := dense.New(n, k)
	copy(bm.Data(), eng.Beliefs())
	res.Beliefs = beliefs.FromMatrix(bm)
	return res, nil
}
