package linbp

import (
	"testing"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestIncrementalBeliefUpdateMatchesScratch: the warm-started fixpoint
// after a belief change equals solving from scratch.
func TestIncrementalBeliefUpdateMatchesScratch(t *testing.T) {
	g := gen.Random(60, 150, 77)
	e, _ := beliefs.Seed(60, 3, beliefs.SeedConfig{Fraction: 0.1, Seed: 7})
	h := coupling.Scale(ho(t), 0.02)
	inc, _, err := NewIncremental(g, e, h, Options{EchoCancellation: true, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}

	en := beliefs.New(60, 3)
	en.Set(5, beliefs.LabelResidual(3, 1, 0.1))
	en.Set(17, beliefs.LabelResidual(3, 2, 0.1))
	res, err := inc.UpdateExplicitBeliefs(en)
	if err != nil {
		t.Fatal(err)
	}

	merged := e.Clone()
	merged.Set(5, en.Row(5))
	merged.Set(17, en.Row(17))
	want, err := Run(g, merged, h, Options{EchoCancellation: true, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Beliefs.Matrix().EqualApprox(want.Beliefs.Matrix(), 1e-9) {
		t.Fatal("incremental fixpoint differs from scratch")
	}
	if !inc.Beliefs().Matrix().EqualApprox(want.Beliefs.Matrix(), 1e-9) {
		t.Fatal("state not updated")
	}
}

// TestIncrementalEdgeUpdateMatchesScratch: same for edge insertion.
func TestIncrementalEdgeUpdateMatchesScratch(t *testing.T) {
	g := gen.Random(60, 150, 78)
	e, _ := beliefs.Seed(60, 3, beliefs.SeedConfig{Fraction: 0.1, Seed: 8})
	h := coupling.Scale(ho(t), 0.02)
	inc, _, err := NewIncremental(g, e, h, Options{EchoCancellation: true, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	batch := []graph.Edge{{S: 0, T: 30, W: 1}, {S: 2, T: 40, W: 1}}
	res, err := inc.UpdateEdges(batch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(g, e, h, Options{EchoCancellation: true, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Beliefs.Matrix().EqualApprox(want.Beliefs.Matrix(), 1e-9) {
		t.Fatal("incremental edge fixpoint differs from scratch")
	}
}

// TestIncrementalSavesIterations: warm starting from a nearby fixpoint
// must need fewer rounds than a cold start for a small perturbation.
func TestIncrementalSavesIterations(t *testing.T) {
	g := gen.Random(80, 200, 79)
	e, _ := beliefs.Seed(80, 3, beliefs.SeedConfig{Fraction: 0.1, Seed: 9})
	h := coupling.Scale(ho(t), 0.02)
	inc, initial, err := NewIncremental(g, e, h, Options{EchoCancellation: true, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny perturbation: relabel a single node with a small residual.
	en := beliefs.New(80, 3)
	en.Set(3, beliefs.LabelResidual(3, 0, 0.001))
	res, err := inc.UpdateExplicitBeliefs(en)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= initial.Iterations {
		t.Fatalf("warm start took %d iterations, cold start %d", res.Iterations, initial.Iterations)
	}
}

func TestIncrementalRejectsForcedIterationMode(t *testing.T) {
	g := gen.Torus()
	e := beliefs.New(8, 3)
	e.Set(0, beliefs.LabelResidual(3, 0, 0.1))
	if _, _, err := NewIncremental(g, e, ho(t).Scaled(0.05), Options{Tol: -1}); err == nil {
		t.Fatal("negative Tol must be rejected")
	}
}

func TestIncrementalDivergenceAfterUpdateReported(t *testing.T) {
	// Start convergent, then add enough parallel edges to push the
	// spectral radius past 1: the update must report failure, not hang.
	g := gen.Torus()
	e := beliefs.New(8, 3)
	e.Set(0, beliefs.LabelResidual(3, 0, 0.1))
	batch := []graph.Edge{{S: 4, T: 6, W: 3}, {S: 5, T: 7, W: 3}}
	// Compute the exact thresholds before and after the insertion and
	// pick an εH strictly between them.
	epsOld, err := MaxEpsilonH(g, ho(t), true, true)
	if err != nil {
		t.Fatal(err)
	}
	gAfter := g.Clone()
	for _, ed := range batch {
		gAfter.AddEdge(ed.S, ed.T, ed.W)
	}
	epsNew, err := MaxEpsilonH(gAfter, ho(t), true, true)
	if err != nil {
		t.Fatal(err)
	}
	if epsNew >= epsOld {
		t.Fatalf("setup: batch must lower the threshold (old %v, new %v)", epsOld, epsNew)
	}
	h := coupling.Scale(ho(t), (epsOld+epsNew)/2)
	inc, _, err := NewIncremental(g, e, h, Options{EchoCancellation: true, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.UpdateEdges(batch); err == nil {
		t.Fatal("expected divergence error after destabilizing update")
	}
}

func TestRunFromNilStartEqualsRun(t *testing.T) {
	g, e := gen.Torus(), beliefs.New(8, 3)
	e.Set(0, []float64{2, -1, -1})
	h := ho(t).Scaled(0.1)
	a, err := Run(g, e, h, Options{EchoCancellation: true, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	b, err := runFrom(g, e, h, Options{EchoCancellation: true, MaxIter: 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Beliefs.Matrix().EqualApprox(b.Beliefs.Matrix(), 0) {
		t.Fatal("runFrom(nil) must equal Run")
	}
}
