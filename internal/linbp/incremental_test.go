package linbp

import (
	"testing"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/gen"
)

// The maintained-state Incremental tests moved with the feature: the
// dynamic-solver equivalents live in internal/core (dynamic_test.go)
// and internal/difftest (RunDynamicMatrix). What stays here covers the
// warm-start run primitive both were built on.

func TestRunFromNilStartEqualsRun(t *testing.T) {
	g, e := gen.Torus(), beliefs.New(8, 3)
	e.Set(0, []float64{2, -1, -1})
	h := ho(t).Scaled(0.1)
	a, err := Run(g, e, h, Options{EchoCancellation: true, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	b, err := runFrom(g, e, h, Options{EchoCancellation: true, MaxIter: 300}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Beliefs.Matrix().EqualApprox(b.Beliefs.Matrix(), 0) {
		t.Fatal("runFrom(nil) must equal Run")
	}
}

// TestRunFromWarmStartSavesIterations: restarting the contraction at a
// nearby fixpoint reaches tolerance in fewer rounds and lands on the
// same unique answer.
func TestRunFromWarmStartSavesIterations(t *testing.T) {
	g := gen.Random(80, 200, 79)
	e, _ := beliefs.Seed(80, 3, beliefs.SeedConfig{Fraction: 0.1, Seed: 9})
	h := coupling.Scale(ho(t), 0.02)
	opts := Options{EchoCancellation: true, MaxIter: 500}
	cold, err := Run(g, e, h, opts)
	if err != nil || !cold.Converged {
		t.Fatalf("cold solve: %+v err=%v", cold, err)
	}
	// Tiny perturbation: relabel one node with a small residual.
	e2 := e.Clone()
	e2.Set(3, beliefs.LabelResidual(3, 0, 0.001))
	warm, err := runFrom(g, e2, h, opts, cold.Beliefs)
	if err != nil || !warm.Converged {
		t.Fatalf("warm solve: err=%v", err)
	}
	if warm.Iterations >= cold.Iterations {
		t.Fatalf("warm start took %d iterations, cold start %d", warm.Iterations, cold.Iterations)
	}
	want, err := Run(g, e2, h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Beliefs.Matrix().EqualApprox(want.Beliefs.Matrix(), 1e-9) {
		t.Fatal("warm fixpoint differs from scratch")
	}
}

func TestRunFromRejectsMisshapedStart(t *testing.T) {
	g, e := gen.Torus(), beliefs.New(8, 3)
	e.Set(0, []float64{2, -1, -1})
	if _, err := runFrom(g, e, ho(t).Scaled(0.1), Options{}, beliefs.New(4, 3)); err == nil {
		t.Fatal("mis-shaped start accepted")
	}
}
