// Package linbp implements the paper's primary contribution: Linearized
// Belief Propagation. It provides
//
//   - the iterative update equations (Eq. 6/7):
//     Bˆ ← Eˆ + A·Bˆ·Hˆ − D·Bˆ·Hˆ²   (LinBP, with echo cancellation)
//     Bˆ ← Eˆ + A·Bˆ·Hˆ             (LinBP*, without)
//   - the closed-form solutions via the Kronecker system of
//     Proposition 7 (Eq. 11/12), for small problems,
//   - the exact spectral convergence criteria of Lemma 8, and
//   - the sufficient norm-based criteria of Lemma 9 and Lemma 23.
//
// Beliefs and couplings are handled in residual (centered) form
// throughout; see packages beliefs and coupling.
package linbp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/beliefs"
	"repro/internal/dense"
	"repro/internal/errs"
	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/spectral"
)

// Options tunes the iterative solver. The zero value selects defaults.
type Options struct {
	// EchoCancellation selects LinBP (true) or LinBP* (false).
	EchoCancellation bool
	// MaxIter bounds the number of update rounds (default 100).
	MaxIter int
	// Tol stops iteration when no belief entry changes by more than
	// Tol between rounds (default 1e-12). Set negative to force exactly
	// MaxIter rounds (the paper's timing runs use 5 fixed iterations).
	Tol float64
	// OnIteration, if set, is invoked after every update round with the
	// 1-based round number and the round's maximum belief change. Used
	// by the Fig. 7d experiment for per-iteration timing.
	OnIteration func(iter int, delta float64)
	// Workers parallelizes the fused update kernel across goroutines
	// (the role Parallel Colt played in the paper's JAVA
	// implementation). 0 or 1 keeps the single-threaded kernel the
	// paper's evaluation uses.
	Workers int
	// Layout selects the kernel's CSR index representation (the zero
	// value auto-adopts the compact int32 form whenever the graph fits
	// it); layout benchmarks pin it to kernel.LayoutWide.
	Layout kernel.Layout
	// PartitionStarts, when set, selects the kernel's partition-parallel
	// data plane: one OS-thread-locked persistent worker per contiguous
	// row block, with first-touched private block state (see
	// kernel.Config.PartitionStarts). It replaces the Workers span pool.
	PartitionStarts []int
}

// DefaultMaxIter and DefaultTol are the zero-value defaults of Options,
// exported so the prepared-solver batch path iterates under exactly the
// same cap and tolerance as a one-shot run.
const (
	DefaultMaxIter = 100
	DefaultTol     = 1e-12
)

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = DefaultMaxIter
	}
	if o.Tol == 0 {
		o.Tol = DefaultTol
	}
	return o
}

// Result carries the outcome of a LinBP run.
type Result struct {
	// Beliefs is the final residual belief matrix Bˆ.
	Beliefs *beliefs.Residual
	// Iterations is the number of update rounds executed.
	Iterations int
	// Converged reports whether the fixpoint was reached within Tol.
	Converged bool
	// Delta is the final maximum belief change.
	Delta float64
}

func validate(g *graph.Graph, e *beliefs.Residual, h *dense.Matrix) (n, k int, err error) {
	n, k = g.N(), h.Rows()
	if h.Cols() != k {
		return 0, 0, fmt.Errorf("linbp: coupling matrix %dx%d is not square: %w", h.Rows(), h.Cols(), errs.ErrDimensionMismatch)
	}
	if e.N() != n || e.K() != k {
		return 0, 0, fmt.Errorf("linbp: belief matrix %dx%d does not match n=%d k=%d: %w", e.N(), e.K(), n, k, errs.ErrDimensionMismatch)
	}
	return n, k, nil
}

// Run executes the iterative LinBP updates on graph g with explicit
// residual beliefs e and residual coupling matrix h (already scaled by
// εH). Iteration starts from Bˆ = 0 as Section 3 suggests.
//
// Each round runs through the fused compute engine of package kernel
// (sparse product, coupling multiply, echo cancellation, and delta in
// one row-partitioned pass); the n×k work buffers come from the
// engine's workspace pool, so repeated Runs do not reallocate them.
func Run(g *graph.Graph, e *beliefs.Residual, h *dense.Matrix, opts Options) (*Result, error) {
	return runFrom(g, e, h, opts, nil)
}

// ClosedFormLimit is the largest n·k for which ClosedForm will
// materialize and invert the Kronecker system; beyond it the dense
// O((nk)³) solve is no longer reasonable.
const ClosedFormLimit = 4096

// ClosedForm solves the LinBP system exactly via Proposition 7:
//
//	vec(Bˆ) = (I_nk − Hˆ⊗A + Hˆ²⊗D)⁻¹ vec(Eˆ)     (LinBP)
//	vec(Bˆ) = (I_nk − Hˆ⊗A)⁻¹ vec(Eˆ)             (LinBP*)
//
// It is exact whenever the system matrix is invertible — even outside
// the spectral-radius convergence region of the iterative updates —
// and is used to validate the iterative solver. n·k must not exceed
// ClosedFormLimit.
func ClosedForm(g *graph.Graph, e *beliefs.Residual, h *dense.Matrix, echo bool) (*beliefs.Residual, error) {
	n, k, err := validate(g, e, h)
	if err != nil {
		return nil, err
	}
	if n*k > ClosedFormLimit {
		return nil, fmt.Errorf("linbp: closed form needs n·k <= %d, got %d: %w", ClosedFormLimit, n*k, errs.ErrInvalidInput)
	}
	// Dense A and D.
	a := g.Adjacency()
	ad := dense.New(n, n)
	for i := 0; i < n; i++ {
		a.Row(i, func(j int, v float64) { ad.Set(i, j, v) })
	}
	sys := dense.Identity(n * k).Minus(h.Kron(ad))
	if echo {
		dd := dense.New(n, n)
		for i, v := range g.WeightedDegrees() {
			dd.Set(i, i, v)
		}
		sys = sys.Plus(h.Mul(h).Kron(dd))
	}
	x, err := dense.Solve(sys, e.Matrix().Vec())
	if err != nil {
		return nil, fmt.Errorf("linbp: closed-form system is singular: %w", err)
	}
	return beliefs.FromMatrix(dense.Unvec(x, n, k)), nil
}

// Convergence describes the outcome of the criteria of Section 5.1 for
// one configuration (graph, Hˆ, echo flag).
type Convergence struct {
	// SpectralRadius is ρ(Hˆ⊗A − Hˆ²⊗D) for LinBP or ρ(Hˆ)·ρ(A) for
	// LinBP* — the exact quantity of Lemma 8.
	SpectralRadius float64
	// Exact reports Lemma 8's necessary-and-sufficient criterion:
	// SpectralRadius < 1.
	Exact bool
	// NormBound is the value the sufficient criterion of Lemma 9
	// compares ‖Hˆ‖ against, using the min over the norm set M.
	NormBound float64
	// HNorm is ‖Hˆ‖_M.
	HNorm float64
	// Sufficient reports Lemma 9's easier (sufficient-only) criterion:
	// HNorm < NormBound.
	Sufficient bool
}

// CheckConvergence evaluates both the exact (Lemma 8) and the
// norm-based sufficient (Lemma 9) convergence criteria.
func CheckConvergence(g *graph.Graph, h *dense.Matrix, echo bool) (*Convergence, error) {
	a := g.Adjacency()
	c := &Convergence{}

	// ‖A‖_M and ‖D‖_M over the norm set {Frobenius, induced-1, induced-∞}.
	normA := minNormCSR(a)
	hn := h.MinNorm()
	c.HNorm = hn
	if echo {
		d := g.WeightedDegrees()
		op := spectral.NewLinBPOp(a, d, h, true)
		rho, err := spectral.Radius(op, spectral.Options{MaxIter: 5000})
		if err != nil && !errors.Is(err, spectral.ErrNoConverge) {
			return nil, err
		}
		c.SpectralRadius = rho
		// ‖D‖: D is diagonal, so all three norms equal max degree.
		maxD := 0.0
		for _, v := range d {
			if v > maxD {
				maxD = v
			}
		}
		if maxD == 0 {
			// No edges: iteration is trivially convergent.
			c.NormBound = math.Inf(1)
		} else {
			c.NormBound = (math.Sqrt(normA*normA+4*maxD) - normA) / (2 * maxD)
		}
	} else {
		rhoA, err := spectral.RadiusCSR(a, spectral.Options{MaxIter: 5000})
		if err != nil && !errors.Is(err, spectral.ErrNoConverge) {
			return nil, err
		}
		rhoH, err := spectral.RadiusDense(h, spectral.Options{MaxIter: 5000})
		if err != nil && !errors.Is(err, spectral.ErrNoConverge) {
			return nil, err
		}
		c.SpectralRadius = rhoA * rhoH
		if normA == 0 {
			c.NormBound = math.Inf(1)
		} else {
			c.NormBound = 1 / normA
		}
	}
	c.Exact = c.SpectralRadius < 1
	c.Sufficient = hn < c.NormBound
	return c, nil
}

// SimpleNormBound implements Lemma 23: LinBP converges if
// ‖Hˆ‖ < 1/(2‖A‖) for the induced 1- or ∞-norm. It returns the bound
// value 1/(2‖A‖) (∞ if the graph has no edges).
func SimpleNormBound(g *graph.Graph) float64 {
	a := g.Adjacency()
	norm := math.Min(a.MaxAbsColSum(), a.MaxAbsRowSum())
	if norm == 0 {
		return math.Inf(1)
	}
	return 1 / (2 * norm)
}

// MaxEpsilonH returns the largest εH for which the chosen criterion
// guarantees convergence with Hˆ = εH·ho: the exact spectral criterion
// (found by bisection) or the closed-form norm bound.
func MaxEpsilonH(g *graph.Graph, ho *dense.Matrix, echo bool, exact bool) (float64, error) {
	if !exact {
		c, err := CheckConvergence(g, ho, echo)
		if err != nil {
			return 0, err
		}
		if math.IsInf(c.NormBound, 1) {
			return math.Inf(1), nil
		}
		// ‖εH·Hˆo‖ = εH·‖Hˆo‖ < bound(A, D) — but for LinBP the bound
		// itself does not depend on Hˆ, so εH < bound/‖Hˆo‖.
		return c.NormBound / ho.MinNorm(), nil
	}
	if !echo {
		// ρ(εH·Hˆo)·ρ(A) < 1 is linear in εH.
		c, err := CheckConvergence(g, ho, false)
		if err != nil {
			return 0, err
		}
		if c.SpectralRadius == 0 {
			return math.Inf(1), nil
		}
		return 1 / c.SpectralRadius, nil
	}
	// LinBP with echo: ρ(εHˆo⊗A − ε²Hˆo²⊗D) crosses 1 monotonically in
	// ε > 0; locate the crossing by bracketed bisection.
	radius := func(eps float64) (float64, error) {
		c, err := CheckConvergence(g, ho.Scaled(eps), true)
		if err != nil {
			return 0, err
		}
		return c.SpectralRadius, nil
	}
	lo, hi := 0.0, 1.0
	for iter := 0; iter < 60; iter++ {
		r, err := radius(hi)
		if err != nil {
			return 0, err
		}
		if r >= 1 {
			break
		}
		lo, hi = hi, hi*2
		if hi > 1e6 {
			return math.Inf(1), nil
		}
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		r, err := radius(mid)
		if err != nil {
			return 0, err
		}
		if r < 1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// minNormCSR is min(Frobenius, induced-1, induced-∞) for a CSR matrix.
func minNormCSR(a interface {
	MaxAbsColSum() float64
	MaxAbsRowSum() float64
	RowSumsSquared() []float64
}) float64 {
	var fro float64
	for _, v := range a.RowSumsSquared() {
		fro += v
	}
	fro = math.Sqrt(fro)
	return math.Min(fro, math.Min(a.MaxAbsColSum(), a.MaxAbsRowSum()))
}
