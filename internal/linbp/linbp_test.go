package linbp

import (
	"math"
	"testing"

	"repro/internal/beliefs"
	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/graph"
)

// ho returns the unscaled residual coupling matrix of Example 20
// (Fig. 1c centered around 1/3).
func ho(t *testing.T) *dense.Matrix {
	t.Helper()
	h, err := coupling.NewResidual(coupling.Fig1c())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// torusProblem returns the Example 20 instance: torus graph, explicit
// residuals at v1..v3, coupling εH·Hˆo.
func torusProblem(t *testing.T, epsH float64) (*graph.Graph, *beliefs.Residual, *dense.Matrix) {
	t.Helper()
	g := gen.Torus()
	e := beliefs.New(8, 3)
	e.Set(0, []float64{2, -1, -1})
	e.Set(1, []float64{-1, 2, -1})
	e.Set(2, []float64{-1, -1, 2})
	return g, e, coupling.Scale(ho(t), epsH)
}

func TestRunMatchesClosedForm(t *testing.T) {
	for _, echo := range []bool{true, false} {
		g, e, h := torusProblem(t, 0.1)
		res, err := Run(g, e, h, Options{EchoCancellation: echo, MaxIter: 500})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("echo=%v: did not converge", echo)
		}
		cf, err := ClosedForm(g, e, h, echo)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Beliefs.Matrix().EqualApprox(cf.Matrix(), 1e-9) {
			t.Fatalf("echo=%v: iterative and closed form disagree:\n%v\n%v",
				echo, res.Beliefs.Matrix(), cf.Matrix())
		}
	}
}

func TestRunMatchesClosedFormOnRandomGraph(t *testing.T) {
	g := gen.Random(30, 60, 13)
	e, _ := beliefs.Seed(30, 3, beliefs.SeedConfig{Fraction: 0.2, Seed: 3})
	h := coupling.Scale(ho(t), 0.05)
	for _, echo := range []bool{true, false} {
		res, err := Run(g, e, h, Options{EchoCancellation: echo, MaxIter: 500})
		if err != nil {
			t.Fatal(err)
		}
		cf, err := ClosedForm(g, e, h, echo)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Beliefs.Matrix().EqualApprox(cf.Matrix(), 1e-9) {
			t.Fatalf("echo=%v: iterative and closed form disagree", echo)
		}
	}
}

func TestRunPreservesRowCentering(t *testing.T) {
	g, e, h := torusProblem(t, 0.2)
	res, err := Run(g, e, h, Options{EchoCancellation: true, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Beliefs.Validate(); err != nil {
		t.Fatalf("final beliefs must stay centered: %v", err)
	}
}

// TestScalingLemma12 verifies Eˆ ← λEˆ ⇒ Bˆ ← λBˆ.
func TestScalingLemma12(t *testing.T) {
	g, e, h := torusProblem(t, 0.1)
	res1, err := Run(g, e, h, Options{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	e2 := e.Clone()
	e2.Scale(3.5)
	res2, err := Run(g, e2, h, Options{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	scaled := res1.Beliefs.Matrix().Scaled(3.5)
	if !res2.Beliefs.Matrix().EqualApprox(scaled, 1e-9) {
		t.Fatal("Lemma 12 violated")
	}
}

// TestCorollary13 verifies that scaling Eˆ leaves the standardized and
// top belief assignments unchanged.
func TestCorollary13(t *testing.T) {
	g, e, h := torusProblem(t, 0.1)
	res1, _ := Run(g, e, h, Options{MaxIter: 500})
	e2 := e.Clone()
	e2.Scale(42)
	res2, _ := Run(g, e2, h, Options{MaxIter: 500})
	for s := 0; s < g.N(); s++ {
		z1, z2 := res1.Beliefs.StandardizedRow(s), res2.Beliefs.StandardizedRow(s)
		for i := range z1 {
			if math.Abs(z1[i]-z2[i]) > 1e-9 {
				t.Fatalf("node %d standardized beliefs changed under scaling", s)
			}
		}
	}
}

func TestDivergenceBeyondThreshold(t *testing.T) {
	// Example 20: LinBP diverges for εH ≳ 0.488.
	g, e, h := torusProblem(t, 0.6)
	res, err := Run(g, e, h, Options{EchoCancellation: true, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("LinBP should diverge at εH = 0.6 on the torus")
	}
	if res.Delta < 1 {
		t.Fatalf("delta should blow up, got %v", res.Delta)
	}
}

func TestCheckConvergenceTorusExact(t *testing.T) {
	g := gen.Torus()
	// Example 20 thresholds: LinBP ≈ 0.488, LinBP* ≈ 0.658.
	eps, err := MaxEpsilonH(g, ho(t), true, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-0.488) > 5e-3 {
		t.Fatalf("LinBP exact threshold = %v, want ≈0.488", eps)
	}
	epsStar, err := MaxEpsilonH(g, ho(t), false, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(epsStar-0.658) > 5e-3 {
		t.Fatalf("LinBP* exact threshold = %v, want ≈0.658", epsStar)
	}
}

func TestCheckConvergenceTorusNorms(t *testing.T) {
	g := gen.Torus()
	// Example 20 sufficient bounds: εH ≲ 0.360 (LinBP), 0.455 (LinBP*).
	eps, err := MaxEpsilonH(g, ho(t), true, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eps-0.360) > 5e-3 {
		t.Fatalf("LinBP norm threshold = %v, want ≈0.360", eps)
	}
	epsStar, err := MaxEpsilonH(g, ho(t), false, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(epsStar-0.455) > 5e-3 {
		t.Fatalf("LinBP* norm threshold = %v, want ≈0.455", epsStar)
	}
}

func TestCheckConvergenceFlags(t *testing.T) {
	g := gen.Torus()
	// Comfortably inside: both criteria hold.
	c, err := CheckConvergence(g, coupling.Scale(ho(t), 0.05), true)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Exact || !c.Sufficient {
		t.Fatalf("εH=0.05 should satisfy both criteria: %+v", c)
	}
	// Between the norm bound and the exact bound: exact only.
	c, err = CheckConvergence(g, coupling.Scale(ho(t), 0.42), true)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Exact || c.Sufficient {
		t.Fatalf("εH=0.42 should satisfy exact but not sufficient: %+v", c)
	}
	// Outside both.
	c, err = CheckConvergence(g, coupling.Scale(ho(t), 0.6), true)
	if err != nil {
		t.Fatal(err)
	}
	if c.Exact {
		t.Fatalf("εH=0.6 should fail the exact criterion: %+v", c)
	}
}

func TestSufficientImpliesExact(t *testing.T) {
	// Lemma 9 is sufficient: whenever it holds, Lemma 8 must hold too.
	g := gen.Random(40, 80, 17)
	for _, eps := range []float64{0.01, 0.05, 0.1, 0.2, 0.4} {
		for _, echo := range []bool{true, false} {
			c, err := CheckConvergence(g, coupling.Scale(ho(t), eps), echo)
			if err != nil {
				t.Fatal(err)
			}
			if c.Sufficient && !c.Exact {
				t.Fatalf("eps=%v echo=%v: sufficient holds but exact does not", eps, echo)
			}
		}
	}
}

func TestSimpleNormBound(t *testing.T) {
	g := gen.Torus()
	// Lemma 23: 1/(2·3) for max degree 3.
	if b := SimpleNormBound(g); math.Abs(b-1.0/6.0) > 1e-12 {
		t.Fatalf("SimpleNormBound = %v, want 1/6", b)
	}
	// Lemma 23 is weaker than Lemma 9's combined bound.
	c, err := CheckConvergence(g, ho(t), true)
	if err != nil {
		t.Fatal(err)
	}
	if SimpleNormBound(g) > c.NormBound {
		t.Fatal("Lemma 23 must not beat Lemma 9")
	}
	// Empty graph: bound is infinite.
	if !math.IsInf(SimpleNormBound(graph.New(3)), 1) {
		t.Fatal("edgeless graph must give an infinite bound")
	}
}

func TestEchoCancellationMatters(t *testing.T) {
	g, e, h := torusProblem(t, 0.2)
	with, _ := Run(g, e, h, Options{EchoCancellation: true, MaxIter: 500})
	without, _ := Run(g, e, h, Options{EchoCancellation: false, MaxIter: 500})
	if with.Beliefs.Matrix().EqualApprox(without.Beliefs.Matrix(), 1e-9) {
		t.Fatal("echo cancellation must change the result at εH = 0.2")
	}
}

func TestWeightedGraphUsesSquaredDegrees(t *testing.T) {
	// Section 5.2: on weighted graphs the echo term uses Σw². Compare the
	// iterative result against the closed form, which constructs D from
	// WeightedDegrees too — and against a manual fixed-point check.
	g := graph.New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 0.5)
	e := beliefs.New(3, 3)
	e.Set(0, []float64{2, -1, -1})
	h := coupling.Scale(ho(t), 0.05)
	res, err := Run(g, e, h, Options{EchoCancellation: true, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	cf, err := ClosedForm(g, e, h, true)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Beliefs.Matrix().EqualApprox(cf.Matrix(), 1e-10) {
		t.Fatal("weighted iterative vs closed form mismatch")
	}
	// Manual fixed point: Bˆ = Eˆ + ABˆHˆ − DBˆHˆ² with D = diag(4, 4.25, 0.25).
	b := res.Beliefs.Matrix()
	ad := dense.NewFromRows([][]float64{{0, 2, 0}, {2, 0, 0.5}, {0, 0.5, 0}})
	dd := dense.NewFromRows([][]float64{{4, 0, 0}, {0, 4.25, 0}, {0, 0, 0.25}})
	rhs := e.Matrix().Plus(ad.Mul(b).Mul(h)).Minus(dd.Mul(b).Mul(h.Mul(h)))
	if !b.EqualApprox(rhs, 1e-9) {
		t.Fatal("fixed-point equation violated on weighted graph")
	}
}

func TestClosedFormSizeLimit(t *testing.T) {
	g := gen.Kronecker(7) // 2187 nodes · 3 classes > limit
	e := beliefs.New(g.N(), 3)
	if _, err := ClosedForm(g, e, ho(t), true); err == nil {
		t.Fatal("expected size-limit error")
	}
}

func TestRunShapeMismatch(t *testing.T) {
	g := gen.Torus()
	e := beliefs.New(5, 3)
	if _, err := Run(g, e, ho(t), Options{}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestFixedIterationMode(t *testing.T) {
	g, e, h := torusProblem(t, 0.1)
	res, err := Run(g, e, h, Options{MaxIter: 5, Tol: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 5 || res.Converged {
		t.Fatalf("want exactly 5 iterations, got %d (converged=%v)", res.Iterations, res.Converged)
	}
}

func TestExplicitNodesDominatedByOwnLabel(t *testing.T) {
	g, e, h := torusProblem(t, 0.1)
	res, _ := Run(g, e, h, Options{EchoCancellation: true, MaxIter: 500})
	for s := 0; s < 3; s++ {
		top := res.Beliefs.Top(s, beliefs.TopTolerance)
		if len(top) != 1 || top[0] != s {
			t.Fatalf("explicit node v%d should keep class %d: top=%v", s+1, s, top)
		}
	}
}

func TestEmptyGraphReturnsExplicit(t *testing.T) {
	g := graph.New(4)
	e := beliefs.New(4, 3)
	e.Set(2, []float64{2, -1, -1})
	res, err := Run(g, e, ho(t), Options{EchoCancellation: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.Beliefs.Matrix().EqualApprox(e.Matrix(), 0) {
		t.Fatal("on an edgeless graph Bˆ must equal Eˆ")
	}
}

// TestWorkersOptionSameResult: the parallel kernel must not change the
// fixpoint.
func TestWorkersOptionSameResult(t *testing.T) {
	g := gen.Random(300, 900, 41)
	e, _ := beliefs.Seed(300, 3, beliefs.SeedConfig{Fraction: 0.1, Seed: 4})
	h := coupling.Scale(ho(t), 0.02)
	serial, err := Run(g, e, h, Options{EchoCancellation: true, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(g, e, h, Options{EchoCancellation: true, MaxIter: 300, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Beliefs.Matrix().EqualApprox(parallel.Beliefs.Matrix(), 0) {
		t.Fatal("parallel kernel changed the result")
	}
}
