package linbp

import (
	"context"
	"fmt"

	"repro/internal/beliefs"
	"repro/internal/dense"
	"repro/internal/errs"
	"repro/internal/kernel"
	"repro/internal/order"
	"repro/internal/sparse"
)

// ResidualEngine is the residual-scheduled counterpart of Engine: the
// same prepared (graph, coupling) surface, served by the push-based
// relaxation plane of kernel.ResidualEngine instead of synchronous
// rounds. It carries the same permutation plumbing — explicit beliefs,
// warm starts, and touched-row sets come in under the caller's node
// ids and are shuffled into the layout order in one pass — so the
// prepared-solver path can swap schedules without touching its belief
// handling. Steady-state solves perform zero allocations.
//
// A ResidualEngine is not safe for concurrent use; run one per
// goroutine or pool them as the prepared solvers do.
type ResidualEngine struct {
	eng      *kernel.ResidualEngine
	n, k     int
	maxRelax int
	closed   bool

	perm  order.Permutation
	eperm []float64 // permuted explicit beliefs
	sperm []float64 // permuted warm-start beliefs
	tperm []int32   // permuted touched-row ids
}

// NewResidualEngineLayout prepares a residual-scheduled solver over an
// explicit adjacency layout, mirroring NewEngineLayout: a (possibly
// reordered) symmetric CSR a, the matching degree vector d (nil
// disables echo cancellation), the residual coupling h (already scaled
// by εH), and the relabeling perm (perm[old] = new; nil for the
// natural order). opts.Tol is the relaxation tolerance and must be
// positive — the residual schedule has no fixed-round mode; opts
// .MaxIter bounds the work at MaxIter·n row relaxations, the budget of
// MaxIter full rounds. opts.Workers and opts.PartitionStarts are
// ignored (the plane is sequential); opts.OnIteration is not invoked
// (there are no rounds to observe).
func NewResidualEngineLayout(a *sparse.CSR, d []float64, h *dense.Matrix, perm []int, opts Options) (*ResidualEngine, error) {
	opts = opts.withDefaults()
	if opts.Tol <= 0 {
		return nil, fmt.Errorf("linbp: residual schedule needs a positive tolerance, got %v: %w", opts.Tol, errs.ErrInvalidInput)
	}
	n, k := a.Rows(), h.Rows()
	if h.Cols() != k {
		return nil, fmt.Errorf("linbp: coupling matrix %dx%d is not square: %w", h.Rows(), h.Cols(), errs.ErrDimensionMismatch)
	}
	if perm != nil && len(perm) != n {
		return nil, fmt.Errorf("linbp: permutation length %d does not match n=%d: %w", len(perm), n, errs.ErrDimensionMismatch)
	}
	eng, err := kernel.NewResidual(kernel.Config{A: a, D: d, H: h, Layout: opts.Layout, SymmetricA: true}, opts.Tol)
	if err != nil {
		return nil, fmt.Errorf("linbp: %w", err)
	}
	s := &ResidualEngine{eng: eng, n: n, k: k, maxRelax: opts.MaxIter * n, perm: perm}
	s.tperm = make([]int32, 0, n)
	if perm != nil {
		s.eperm = make([]float64, n*k)
		s.sperm = make([]float64, n*k)
	}
	return s, nil
}

// SolveSeededContext runs the residual-scheduled solve. A nil start is
// the cold solve seeded from the explicit beliefs alone. A non-nil
// start (a previous fixpoint, in the caller's node order) seeds the
// warm solve: with touched nil the residual is recomputed for every
// row (valid from any start, one round-equivalent of seeding work);
// with touched set (caller node ids, deduplicated) only those rows are
// recomputed — the localized path, valid when start converged for the
// unchanged rows. dst receives the final beliefs in the caller's node
// order at every exit. relaxed counts row relaxations, peak is the
// queue's high-water population, and maxResid is the largest residual
// magnitude remaining (at most the tolerance when converged).
//
//lsbp:hotpath
func (s *ResidualEngine) SolveSeededContext(ctx context.Context, dst, e, start *beliefs.Residual, touched []int) (relaxed, peak int, maxResid float64, converged bool, err error) {
	if s.closed {
		return 0, 0, 0, false, fmt.Errorf("linbp: %w", errs.ErrClosed)
	}
	if e != nil && (e.N() != s.n || e.K() != s.k) {
		return 0, 0, 0, false, fmt.Errorf("linbp: belief matrix %dx%d does not match n=%d k=%d: %w", e.N(), e.K(), s.n, s.k, errs.ErrDimensionMismatch)
	}
	if dst.N() != s.n || dst.K() != s.k {
		return 0, 0, 0, false, fmt.Errorf("linbp: destination matrix %dx%d does not match n=%d k=%d: %w", dst.N(), dst.K(), s.n, s.k, errs.ErrDimensionMismatch)
	}
	var ed []float64
	if e != nil {
		ed = e.Matrix().Data()
		if s.perm != nil {
			s.perm.ApplyRows(s.eperm, ed, s.k)
			ed = s.eperm
		}
	}
	if start == nil {
		s.eng.SeedExplicit(ed)
	} else {
		if start.N() != s.n || start.K() != s.k {
			return 0, 0, 0, false, fmt.Errorf("linbp: start matrix %dx%d does not match n=%d k=%d: %w", start.N(), start.K(), s.n, s.k, errs.ErrDimensionMismatch)
		}
		sd := start.Matrix().Data()
		if s.perm != nil {
			s.perm.ApplyRows(s.sperm, sd, s.k)
			sd = s.sperm
		}
		s.eng.SeedWarm(sd, ed, s.permTouched(touched))
	}
	relaxed, peak, maxResid, converged, err = s.eng.Run(ctx, s.maxRelax)
	dd := dst.Matrix().Data()
	if s.perm == nil {
		copy(dd, s.eng.Beliefs())
	} else {
		s.perm.InvertRows(dd, s.eng.Beliefs(), s.k)
	}
	return relaxed, peak, maxResid, converged, err
}

// permTouched maps caller node ids to engine rows. nil stays nil (the
// recompute-every-row seed); under the natural order ids are engine
// rows already, but the kernel takes int32, so both branches reuse the
// tperm buffer.
//
//lsbp:hotpath
func (s *ResidualEngine) permTouched(touched []int) []int32 {
	if touched == nil {
		return nil
	}
	t := s.tperm[:0]
	if s.perm == nil {
		for _, id := range touched {
			t = append(t, int32(id))
		}
	} else {
		for _, id := range touched {
			t = append(t, int32(s.perm[id]))
		}
	}
	s.tperm = t
	return t
}

// Close marks the engine unusable. The residual plane holds no
// goroutines or pooled workspaces, so this only fences use-after-close;
// it is idempotent.
func (s *ResidualEngine) Close() {
	s.closed = true
}
