// Package metrics implements the classification-quality measures of
// Section 7: precision and recall over top-belief sets with ties handled
// exactly as the paper describes, plus the F1 score ("overall accuracy,
// the harmonic mean of precision and recall") used in Figures 7f/7g/11b.
//
// Given ground-truth top-belief sets B_GT and comparison sets B_O (one
// set of classes per node), with B_∩ their per-node intersection:
//
//	recall    r = |B_∩| / |B_GT|
//	precision p = |B_∩| / |B_O|
package metrics

import "fmt"

// PR holds precision, recall, and their harmonic mean.
type PR struct {
	Precision float64
	Recall    float64
	F1        float64
}

// Compare evaluates the comparison assignment against the ground truth.
// Both arguments map node → set of top classes; ties contribute multiple
// entries, reproducing the worked example of Section 7 (GT with 3
// singleton assignments vs an assignment with one 2-way tie and one
// wrong label gives r = 2/3, p = 2/4).
func Compare(groundTruth, other [][]int) (PR, error) {
	if len(groundTruth) != len(other) {
		return PR{}, fmt.Errorf("metrics: %d ground-truth nodes vs %d comparison nodes",
			len(groundTruth), len(other))
	}
	var gtTotal, oTotal, shared int
	for s := range groundTruth {
		gtTotal += len(groundTruth[s])
		oTotal += len(other[s])
		shared += intersectionSize(groundTruth[s], other[s])
	}
	var pr PR
	if gtTotal > 0 {
		pr.Recall = float64(shared) / float64(gtTotal)
	}
	if oTotal > 0 {
		pr.Precision = float64(shared) / float64(oTotal)
	}
	pr.F1 = F1(pr.Precision, pr.Recall)
	return pr, nil
}

// CompareLabels evaluates single-label predictions against single-label
// ground truth (the DBLP experiment's setting), returning the fraction
// of exact matches as well as the PR structure (which degenerates to
// accuracy when every set is a singleton).
func CompareLabels(groundTruth, predicted []int) (PR, error) {
	if len(groundTruth) != len(predicted) {
		return PR{}, fmt.Errorf("metrics: length mismatch %d vs %d", len(groundTruth), len(predicted))
	}
	gt := make([][]int, len(groundTruth))
	pr := make([][]int, len(predicted))
	for i := range groundTruth {
		gt[i] = []int{groundTruth[i]}
		pr[i] = []int{predicted[i]}
	}
	return Compare(gt, pr)
}

// F1 returns the harmonic mean of precision and recall (0 when both are 0).
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// intersectionSize counts common elements of two small sorted-or-not
// class sets (k is tiny, so the quadratic scan is the fast option).
func intersectionSize(a, b []int) int {
	n := 0
	for _, x := range a {
		for _, y := range b {
			if x == y {
				n++
				break
			}
		}
	}
	return n
}

// Masked restricts an assignment to the nodes where keep is true,
// e.g. to evaluate only unlabeled nodes in SSL experiments.
func Masked(assignment [][]int, keep []bool) [][]int {
	var out [][]int
	for s, set := range assignment {
		if keep[s] {
			out = append(out, set)
		}
	}
	return out
}
