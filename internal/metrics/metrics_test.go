package metrics

import (
	"math"
	"testing"
)

// TestPaperWorkedExample reproduces Section 7's example: GT assigns
// {v1→c1, v2→c2, v3→c3}; the comparison assigns {v1→{c1,c2}, v2→c2,
// v3→c2}. Then r = 2/3 and p = 2/4.
func TestPaperWorkedExample(t *testing.T) {
	gt := [][]int{{0}, {1}, {2}}
	other := [][]int{{0, 1}, {1}, {1}}
	pr, err := Compare(gt, other)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pr.Recall-2.0/3.0) > 1e-15 {
		t.Fatalf("recall = %v, want 2/3", pr.Recall)
	}
	if math.Abs(pr.Precision-0.5) > 1e-15 {
		t.Fatalf("precision = %v, want 1/2", pr.Precision)
	}
}

func TestPerfectAgreement(t *testing.T) {
	a := [][]int{{0}, {1, 2}, {2}}
	pr, err := Compare(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Precision != 1 || pr.Recall != 1 || pr.F1 != 1 {
		t.Fatalf("pr = %+v", pr)
	}
}

func TestTotalDisagreement(t *testing.T) {
	pr, err := Compare([][]int{{0}, {0}}, [][]int{{1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Precision != 0 || pr.Recall != 0 || pr.F1 != 0 {
		t.Fatalf("pr = %+v", pr)
	}
}

func TestTiesRaiseRecallLowerPrecision(t *testing.T) {
	gt := [][]int{{0}}
	tied := [][]int{{0, 1}}
	pr, _ := Compare(gt, tied)
	if pr.Recall != 1 || pr.Precision != 0.5 {
		t.Fatalf("pr = %+v", pr)
	}
}

func TestLengthMismatch(t *testing.T) {
	if _, err := Compare([][]int{{0}}, [][]int{{0}, {1}}); err == nil {
		t.Fatal("expected error")
	}
}

func TestEmptyAssignments(t *testing.T) {
	pr, err := Compare([][]int{}, [][]int{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Precision != 0 || pr.Recall != 0 {
		t.Fatalf("pr = %+v", pr)
	}
}

func TestF1(t *testing.T) {
	if F1(0, 0) != 0 {
		t.Fatal("F1(0,0) must be 0")
	}
	if math.Abs(F1(0.5, 1)-2.0/3.0) > 1e-15 {
		t.Fatalf("F1(0.5,1) = %v", F1(0.5, 1))
	}
	if F1(1, 1) != 1 {
		t.Fatal("F1(1,1) must be 1")
	}
}

func TestCompareLabels(t *testing.T) {
	pr, err := CompareLabels([]int{0, 1, 2, 3}, []int{0, 1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pr.Precision-0.75) > 1e-15 || math.Abs(pr.Recall-0.75) > 1e-15 {
		t.Fatalf("pr = %+v", pr)
	}
	if _, err := CompareLabels([]int{0}, []int{0, 1}); err == nil {
		t.Fatal("expected error")
	}
}

func TestMasked(t *testing.T) {
	a := [][]int{{0}, {1}, {2}}
	keep := []bool{true, false, true}
	m := Masked(a, keep)
	if len(m) != 2 || m[0][0] != 0 || m[1][0] != 2 {
		t.Fatalf("Masked = %v", m)
	}
}

func TestDuplicateClassesInSet(t *testing.T) {
	// Defensive: duplicated class ids in a set count once per GT entry.
	pr, _ := Compare([][]int{{0}}, [][]int{{0, 0}})
	if pr.Recall != 1 {
		t.Fatalf("recall = %v", pr.Recall)
	}
	// |B_O| = 2, shared counts each GT element once → precision 1/2.
	if pr.Precision != 0.5 {
		t.Fatalf("precision = %v", pr.Precision)
	}
}
