// Serving-side instrumentation: a lock-free EWMA latency estimator
// and an exponential-bucket latency histogram. Both are safe for any
// number of concurrent writers and readers — the admission path
// observes and queries them on every request, so they must never
// serialize the front end behind a mutex.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// EWMA is an exponentially weighted moving average over float64
// observations, updated with compare-and-swap so concurrent observers
// never lose each other's samples. Before the first observation Value
// reports 0.
type EWMA struct {
	alpha float64
	// bits holds the current average as math.Float64bits; seen flips
	// with the first sample so Value can distinguish "no data" from a
	// genuine zero.
	bits atomic.Uint64
	seen atomic.Bool
}

// NewEWMA returns an estimator with smoothing factor alpha in (0, 1]:
// the weight of each new observation. Higher alpha tracks bursts
// faster; lower alpha smooths harder. Out-of-range alphas fall back
// to 0.2.
func NewEWMA(alpha float64) *EWMA {
	if !(alpha > 0) || alpha > 1 {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample into the average.
func (e *EWMA) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return // a poisoned sample must not wedge the estimator forever
	}
	if e.seen.CompareAndSwap(false, true) {
		e.bits.Store(math.Float64bits(v))
		return
	}
	for {
		old := e.bits.Load()
		next := (1-e.alpha)*math.Float64frombits(old) + e.alpha*v
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 {
	if !e.seen.Load() {
		return 0
	}
	return math.Float64frombits(e.bits.Load())
}

// Histogram shape: exact 1ns buckets up to 15ns, then four
// sub-buckets per power of two (≤ 25% relative error on quantiles) up
// to 2^34ns ≈ 17s; slower observations clamp into the last bucket.
const (
	histExact  = 16 // buckets 0..15: exact nanosecond counts
	histMinExp = 4  // first log-spaced octave is [16ns, 32ns)
	histMaxExp = 34 // last octave ends ≈ 17s
	histSub    = 4  // sub-buckets per octave
	histLen    = histExact + (histMaxExp-histMinExp+1)*histSub
)

// LatencyHist is a fixed-shape exponential histogram of durations:
// lock-free counters, O(buckets) quantile reads. The zero value is
// ready to use.
type LatencyHist struct {
	counts [histLen]atomic.Int64
	total  atomic.Int64
}

// Observe records one duration (non-positive durations count in the
// zero bucket).
func (h *LatencyHist) Observe(d time.Duration) {
	h.counts[histIdx(d)].Add(1)
	h.total.Add(1)
}

// Count returns the number of recorded observations.
func (h *LatencyHist) Count() int64 { return h.total.Load() }

// Quantile returns an upper-bound estimate of the q-quantile (q
// clamped to [0, 1]) — the upper boundary of the bucket holding that
// rank, overestimating by at most one bucket width (≈25%). Returns 0
// with no data. The scan is racy against concurrent Observes by
// design: it serves monitoring snapshots, not an exact census.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	switch {
	case !(q > 0):
		q = 0
	case q > 1:
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histLen; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return histUpper(i)
		}
	}
	return histUpper(histLen - 1)
}

// histIdx maps a duration to its bucket.
func histIdx(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	ns := uint64(d)
	if ns < histExact {
		return int(ns)
	}
	exp := 63 - bits.LeadingZeros64(ns) // floor(log2 ns), >= histMinExp
	if exp > histMaxExp {
		return histLen - 1
	}
	// The two bits below the leading one select the sub-bucket.
	frac := int(ns>>(uint(exp)-2)) & (histSub - 1)
	return histExact + (exp-histMinExp)*histSub + frac
}

// histUpper returns the upper boundary of bucket i (inclusive).
func histUpper(i int) time.Duration {
	if i < histExact {
		return time.Duration(i)
	}
	j := i - histExact
	exp := histMinExp + j/histSub
	frac := j % histSub
	base := uint64(1) << uint(exp)
	step := base / histSub
	return time.Duration(base + uint64(frac+1)*step - 1)
}
