package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestEWMATracksMean(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatalf("empty EWMA = %g, want 0", e.Value())
	}
	e.Observe(100)
	if e.Value() != 100 {
		t.Fatalf("first observation = %g, want 100 (seeded, not decayed from 0)", e.Value())
	}
	e.Observe(200)
	if got := e.Value(); got != 150 {
		t.Fatalf("after 100,200 with alpha .5 = %g, want 150", got)
	}
	// Converges toward a steady signal.
	for i := 0; i < 50; i++ {
		e.Observe(40)
	}
	if got := e.Value(); math.Abs(got-40) > 1e-6 {
		t.Fatalf("steady-state = %g, want ~40", got)
	}
}

func TestEWMAIgnoresPoisonedSamples(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(10)
	e.Observe(math.NaN())
	e.Observe(math.Inf(1))
	if got := e.Value(); got != 10 {
		t.Fatalf("after NaN/Inf samples = %g, want 10 unchanged", got)
	}
}

// TestEWMAConcurrentObserversLoseNothing: with alpha=1 the average is
// just the last sample; under concurrency every CAS must land, so the
// final value is one of the observed samples (never a torn mix).
func TestEWMAConcurrentObserversLoseNothing(t *testing.T) {
	e := NewEWMA(0.25)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				e.Observe(50)
			}
		}()
	}
	wg.Wait()
	if got := e.Value(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("concurrent steady signal = %g, want 50", got)
	}
}

func TestHistIdxBoundsAndMonotone(t *testing.T) {
	if got := histIdx(-time.Second); got != 0 {
		t.Errorf("negative duration bucket = %d, want 0", got)
	}
	prev := -1
	for _, d := range []time.Duration{
		0, 1, 2, 15, 16, 17, 31, 32, 63, 64,
		time.Microsecond, time.Millisecond, 10 * time.Millisecond,
		time.Second, 10 * time.Second, 17 * time.Second,
		time.Minute, time.Hour,
	} {
		idx := histIdx(d)
		if idx < 0 || idx >= histLen {
			t.Fatalf("histIdx(%v) = %d out of [0,%d)", d, idx, histLen)
		}
		if idx < prev {
			t.Fatalf("histIdx(%v) = %d < previous %d: not monotone", d, idx, prev)
		}
		prev = idx
		if up := histUpper(idx); d <= up {
			continue
		} else if idx != histLen-1 {
			t.Errorf("histUpper(%d) = %v < observation %v", idx, up, d)
		}
	}
	if histIdx(time.Hour) != histLen-1 {
		t.Errorf("1h should clamp to the overflow bucket")
	}
}

func TestHistQuantile(t *testing.T) {
	var h LatencyHist
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 90 fast observations, 10 slow ones: p50 must sit near the fast
	// mode, p99 near the slow one; bucket error is bounded by 25%.
	for i := 0; i < 90; i++ {
		h.Observe(1 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if n := h.Count(); n != 100 {
		t.Fatalf("Count = %d, want 100", n)
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	if p50 < 1*time.Millisecond || p50 > 1300*time.Microsecond {
		t.Errorf("p50 = %v, want ~1ms (upper bucket edge ≤ +25%%)", p50)
	}
	if p99 < 100*time.Millisecond || p99 > 130*time.Millisecond {
		t.Errorf("p99 = %v, want ~100ms (upper bucket edge ≤ +25%%)", p99)
	}
	if q0 := h.Quantile(0); q0 > p50 {
		t.Errorf("q0 = %v > p50 = %v", q0, p50)
	}
	if q1 := h.Quantile(1); q1 < p99 {
		t.Errorf("q1 = %v < p99 = %v", q1, p99)
	}
}
