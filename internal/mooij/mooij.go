// Package mooij implements the sufficient convergence bound for standard
// BP by Mooij & Kappen that Appendix G compares against the paper's
// LinBP criteria: for pairwise potentials with a single coupling matrix
// H, standard BP converges if
//
//	c(H) · ρ(A_edge) < 1,
//
// where A_edge is the 2|E|×2|E| directed edge-to-edge matrix (edge u→v
// is connected to every w→u with w ≠ v) and
//
//	c(H) = max_{c1≠c2} max_{d1≠d2} tanh( ¼·log( (H(c1,d1)·H(c2,d2)) / (H(c2,d1)·H(c1,d2)) ) )
//
// maximized over the sign of the log ratio (swapping d1 and d2 negates
// it, so the maximum is over its absolute value).
package mooij

import (
	"errors"
	"math"

	"repro/internal/dense"
	"repro/internal/graph"
	"repro/internal/spectral"
)

// ErrZeroEntry is returned when H contains a zero, which makes the
// potential-strength constant c(H) infinite (the bound is vacuous).
var ErrZeroEntry = errors.New("mooij: coupling matrix has a zero entry; c(H) is unbounded")

// C computes the potential-strength constant c(H) for a stochastic
// (uncentered) coupling matrix with strictly positive entries.
func C(h *dense.Matrix) (float64, error) {
	k := h.Rows()
	if k != h.Cols() {
		return 0, errors.New("mooij: coupling matrix must be square")
	}
	var max float64
	for c1 := 0; c1 < k; c1++ {
		for c2 := 0; c2 < k; c2++ {
			if c1 == c2 {
				continue
			}
			for d1 := 0; d1 < k; d1++ {
				for d2 := 0; d2 < k; d2++ {
					if d1 == d2 {
						continue
					}
					num := h.At(c1, d1) * h.At(c2, d2)
					den := h.At(c2, d1) * h.At(c1, d2)
					if den == 0 || num == 0 {
						return 0, ErrZeroEntry
					}
					v := math.Tanh(0.25 * math.Abs(math.Log(num/den)))
					if v > max {
						max = v
					}
				}
			}
		}
	}
	return max, nil
}

// Bound evaluates the Mooij–Kappen criterion for graph g and stochastic
// coupling matrix h. It returns c(H), ρ(A_edge), and whether the product
// certifies convergence of standard BP.
func Bound(g *graph.Graph, h *dense.Matrix) (cH, rhoEdge float64, converges bool, err error) {
	cH, err = C(h)
	if err != nil {
		return 0, 0, false, err
	}
	em, _ := g.EdgeMatrix()
	rhoEdge, rerr := spectral.RadiusCSR(em, spectral.Options{MaxIter: 5000})
	if rerr != nil && !errors.Is(rerr, spectral.ErrNoConverge) {
		return 0, 0, false, rerr
	}
	return cH, rhoEdge, cH*rhoEdge < 1, nil
}
