package mooij

import (
	"errors"
	"math"
	"testing"

	"repro/internal/coupling"
	"repro/internal/dense"
	"repro/internal/gen"
	"repro/internal/linbp"
	"repro/internal/spectral"
)

func TestCSymmetricHomophily(t *testing.T) {
	// For H = [[p, 1−p], [1−p, p]]: c(H) = tanh(½·|log(p/(1−p))|).
	h := coupling.Fig1a() // p = 0.8
	c, err := C(h)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Tanh(0.5 * math.Log(0.8/0.2))
	if math.Abs(c-want) > 1e-12 {
		t.Fatalf("c(H) = %v, want %v", c, want)
	}
}

func TestCUniformIsZero(t *testing.T) {
	h := dense.NewFromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	c, err := C(h)
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Fatalf("uniform coupling must give c = 0, got %v", c)
	}
}

func TestCZeroEntry(t *testing.T) {
	if _, err := C(coupling.Fig1c()); !errors.Is(err, ErrZeroEntry) {
		t.Fatalf("Fig 1c has H(A,A) = 0; want ErrZeroEntry, got %v", err)
	}
}

func TestCNotSquare(t *testing.T) {
	if _, err := C(dense.New(2, 3)); err == nil {
		t.Fatal("expected error")
	}
}

// TestEdgeRadiusBelowNodeRadius verifies the empirical observation of
// Appendix G: ρ(A_edge) < ρ(A) (roughly ρ(A_edge)+1 ≈ ρ(A)).
func TestEdgeRadiusBelowNodeRadius(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (float64, float64)
	}{
		{"torus", func() (float64, float64) {
			g := gen.Torus()
			em, _ := g.EdgeMatrix()
			re, _ := spectral.RadiusCSR(em, spectral.Options{MaxIter: 5000})
			ra, _ := spectral.RadiusCSR(g.Adjacency(), spectral.Options{})
			return re, ra
		}},
		{"grid", func() (float64, float64) {
			g := gen.Grid(5, 5)
			em, _ := g.EdgeMatrix()
			re, _ := spectral.RadiusCSR(em, spectral.Options{MaxIter: 5000})
			ra, _ := spectral.RadiusCSR(g.Adjacency(), spectral.Options{})
			return re, ra
		}},
		{"random", func() (float64, float64) {
			g := gen.Random(40, 120, 5)
			em, _ := g.EdgeMatrix()
			re, _ := spectral.RadiusCSR(em, spectral.Options{MaxIter: 5000})
			ra, _ := spectral.RadiusCSR(g.Adjacency(), spectral.Options{})
			return re, ra
		}},
	} {
		re, ra := tc.mk()
		if re >= ra {
			t.Fatalf("%s: ρ(A_edge) = %v should be < ρ(A) = %v", tc.name, re, ra)
		}
	}
}

func TestEdgeRadiusRegularGraph(t *testing.T) {
	// On a d-regular graph ρ(A) = d and ρ(A_edge) = d−1 exactly
	// (each directed edge feeds d−1 successors).
	g := gen.Grid(1, 2) // trivial: single edge, edge matrix empty
	em, _ := g.EdgeMatrix()
	re, _ := spectral.RadiusCSR(em, spectral.Options{})
	if re != 0 {
		t.Fatalf("single edge: ρ(A_edge) = %v, want 0", re)
	}
}

// TestBoundComparisonAppendixG demonstrates both directions of the
// appendix's non-subsumption claim with concrete instances:
//
//  1. On the sparse pendant torus, ρ(A_edge) ≈ 0.98 ≪ ρ(A) ≈ 2.41, so
//     the Mooij–Kappen bound still certifies BP at εH values where
//     LinBP* already diverges.
//  2. On a dense random graph (avg degree 10), ρ(A_edge) ≈ ρ(A), and
//     since c(H) > ρ(Hˆ) in multi-class settings, LinBP* converges at
//     εH values the Mooij–Kappen bound cannot certify.
func TestBoundComparisonAppendixG(t *testing.T) {
	ho := coupling.Fig6bResidual()

	// Direction 1: sparse torus, 110% of LinBP*'s exact threshold.
	g := gen.Torus()
	epsMax, err := linbp.MaxEpsilonH(g, ho, false, true)
	if err != nil {
		t.Fatal(err)
	}
	h := coupling.Uncenter(coupling.Scale(ho, 1.1*epsMax))
	cH, rhoEdge, certified, err := Bound(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if !certified {
		t.Fatalf("torus: Mooij bound should certify beyond LinBP*'s range: c=%v ρ_edge=%v", cH, rhoEdge)
	}
	if rhoEdge >= 1.5 { // ρ(A_edge) ≪ ρ(A) = 2.414 on the pendant torus
		t.Fatalf("torus: ρ(A_edge) = %v unexpectedly large", rhoEdge)
	}

	// Direction 2: dense graph, 90% of LinBP*'s exact threshold.
	gd := gen.Random(40, 200, 5)
	epsMaxD, err := linbp.MaxEpsilonH(gd, ho, false, true)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.9 * epsMaxD
	hd := coupling.Uncenter(coupling.Scale(ho, eps))
	cHd, rhoEdgeD, certifiedD, err := Bound(gd, hd)
	if err != nil {
		t.Fatal(err)
	}
	rhoH, _ := spectral.RadiusDense(coupling.Scale(ho, eps), spectral.Options{})
	if cHd <= rhoH {
		t.Fatalf("dense: expected c(H) > ρ(Hˆ): c=%v ρ=%v", cHd, rhoH)
	}
	if certifiedD {
		t.Fatalf("dense: Mooij bound should fail where LinBP* converges: c=%v ρ_edge=%v", cHd, rhoEdgeD)
	}
}

func TestBoundCertifiesWeakCoupling(t *testing.T) {
	g := gen.Torus()
	ho := coupling.Fig6bResidual()
	h := coupling.Uncenter(coupling.Scale(ho, 0.01))
	_, _, certified, err := Bound(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if !certified {
		t.Fatal("very weak coupling must be certified")
	}
}
