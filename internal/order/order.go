// Package order computes cache-locality-oriented node reorderings for
// the prepared solvers. The fused kernel's cost on large graphs is
// dominated by the scattered belief-row loads of the sparse product:
// for every stored entry (i, j) the kernel reads the k-wide belief row
// of node j, so the average distance |i − j| over the stored entries is
// a direct proxy for how often those loads miss cache. Reordering the
// nodes once at prepare time shrinks that distance for every subsequent
// solve.
//
// Two orderings are provided, matching the standard playbook of
// high-performance graph systems:
//
//   - Reverse Cuthill–McKee (RCM): breadth-first levels from a
//     pseudo-peripheral start, neighbors visited in ascending-degree
//     order, final order reversed. The classic bandwidth/profile
//     reducer; ideal for mesh-like and small-world graphs.
//   - Degree sort: nodes in descending degree, original order preserved
//     within ties. On heavy-tailed graphs this packs the hub rows —
//     the belief rows touched by almost every traversal — into one
//     contiguous, cache-resident prefix.
//
// Auto picks between them (or keeps the natural order) with a cheap
// heuristic on the edge-span statistics, so callers can default to it.
package order

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// Permutation is a node relabeling: p[old] = new. A nil Permutation
// means the identity (natural order) everywhere in this package and in
// the solvers consuming it.
type Permutation []int

// Validate checks that p is a bijection on [0, n).
func (p Permutation) Validate(n int) error {
	if len(p) != n {
		return fmt.Errorf("order: permutation length %d, want %d", len(p), n)
	}
	seen := make([]bool, n)
	for old, nw := range p {
		if nw < 0 || nw >= n || seen[nw] {
			return fmt.Errorf("order: invalid permutation entry p[%d] = %d", old, nw)
		}
		seen[nw] = true
	}
	return nil
}

// Inverse returns the inverse permutation: Inverse()[new] = old.
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for old, nw := range p {
		inv[nw] = old
	}
	return inv
}

// ApplyRows writes dst row p[i] = src row i for n rows of width k in
// flat row-major storage; with a nil receiver it degrades to a copy.
// dst and src must not alias.
//
//lsbp:hotpath
func (p Permutation) ApplyRows(dst, src []float64, k int) {
	if p == nil {
		copy(dst, src)
		return
	}
	for i, nw := range p {
		copy(dst[nw*k:nw*k+k], src[i*k:i*k+k])
	}
}

// InvertRows writes dst row i = src row p[i] — the inverse of
// ApplyRows, used to bring permuted solver output back to the caller's
// node order. dst and src must not alias.
//
//lsbp:hotpath
func (p Permutation) InvertRows(dst, src []float64, k int) {
	if p == nil {
		copy(dst, src)
		return
	}
	for i, nw := range p {
		copy(dst[i*k:i*k+k], src[nw*k:nw*k+k])
	}
}

// Strategy names a reordering choice.
type Strategy int

// The selectable strategies. StrategyAuto resolves to one of the other
// three at prepare time.
const (
	// StrategyAuto evaluates RCM and degree sort with the edge-span
	// heuristic and keeps the natural order unless one of them wins.
	StrategyAuto Strategy = iota
	// StrategyRCM forces reverse Cuthill–McKee.
	StrategyRCM
	// StrategyDegree forces the descending-degree sort.
	StrategyDegree
	// StrategyNone keeps the natural order.
	StrategyNone
)

// String implements fmt.Stringer with the flag spellings.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyRCM:
		return "rcm"
	case StrategyDegree:
		return "degree"
	case StrategyNone:
		return "none"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Code returns the stable on-disk identifier of a strategy for the
// durable snapshot header. The codes are frozen independently of the
// Strategy enum values (which are free to be reordered): auto is never
// persisted (snapshots record the strategy actually chosen), so 0 is
// reserved as invalid.
func (s Strategy) Code() uint32 {
	switch s {
	case StrategyRCM:
		return 1
	case StrategyDegree:
		return 2
	case StrategyNone:
		return 3
	default:
		return 0
	}
}

// StrategyFromCode inverts Code for snapshot loading; unknown codes
// (including 0/auto) are rejected.
func StrategyFromCode(c uint32) (Strategy, error) {
	switch c {
	case 1:
		return StrategyRCM, nil
	case 2:
		return StrategyDegree, nil
	case 3:
		return StrategyNone, nil
	default:
		return 0, fmt.Errorf("order: unknown strategy code %d", c)
	}
}

// ParseStrategy maps the flag spellings onto strategies.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "auto":
		return StrategyAuto, nil
	case "rcm":
		return StrategyRCM, nil
	case "degree":
		return StrategyDegree, nil
	case "none":
		return StrategyNone, nil
	default:
		return 0, fmt.Errorf("order: unknown strategy %q (want auto|rcm|degree|none)", name)
	}
}

// AutoMinNodes is the node count below which StrategyAuto keeps the
// natural order without evaluating candidates: the belief state and the
// CSR of smaller graphs fit comfortably in cache, so a reordering can
// only reshuffle summation order without buying locality.
const AutoMinNodes = 1 << 15

// autoImprovement is the minimum relative edge-span reduction a
// candidate must deliver before Auto prefers it over the natural order
// (reordering has a small constant cost per solve for the belief
// permutations, so marginal wins are not worth taking).
const autoImprovement = 0.95

// Compute resolves strategy s for the adjacency structure a: it returns
// the permutation to apply (nil for the natural order) and the concrete
// strategy chosen (s itself, or the winning candidate when s is
// StrategyAuto). The matrix must be square; only its pattern is read.
func Compute(s Strategy, a *sparse.CSR) (Permutation, Strategy) {
	switch s {
	case StrategyNone:
		return nil, StrategyNone
	case StrategyRCM:
		return RCM(a), StrategyRCM
	case StrategyDegree:
		return ByDegree(a), StrategyDegree
	}
	// Auto: cheap size gate first, then an edge-span bake-off.
	if a.Rows() < AutoMinNodes {
		return nil, StrategyNone
	}
	base := EdgeSpan(a, nil)
	if base == 0 {
		return nil, StrategyNone
	}
	bestPerm, bestStrat := Permutation(nil), StrategyNone
	bestSpan := uint64(float64(base) * autoImprovement)
	rcm := RCM(a)
	if span := EdgeSpan(a, rcm); span <= bestSpan {
		bestPerm, bestStrat, bestSpan = rcm, StrategyRCM, span
	}
	if p := ByDegree(a); EdgeSpan(a, p) < bestSpan {
		bestPerm, bestStrat = p, StrategyDegree
	}
	return bestPerm, bestStrat
}

// Bandwidth returns the matrix bandwidth under permutation p (nil for
// the natural order): max over stored entries of |p(i) − p(j)|.
func Bandwidth(a *sparse.CSR, p Permutation) int {
	rowPtr, colIdx, _ := a.Index()
	var bw int
	for i := 0; i < a.Rows(); i++ {
		pi := pos(p, i)
		for q := rowPtr[i]; q < rowPtr[i+1]; q++ {
			d := pi - pos(p, colIdx[q])
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// EdgeSpan returns the total index distance Σ |p(i) − p(j)| over the
// stored entries under permutation p (nil for the natural order) — the
// locality proxy Auto minimizes. Unlike the classic envelope profile it
// weights every entry, so a few pathological rows cannot mask a broad
// improvement.
func EdgeSpan(a *sparse.CSR, p Permutation) uint64 {
	rowPtr, colIdx, _ := a.Index()
	var span uint64
	for i := 0; i < a.Rows(); i++ {
		pi := pos(p, i)
		for q := rowPtr[i]; q < rowPtr[i+1]; q++ {
			d := pi - pos(p, colIdx[q])
			if d < 0 {
				d = -d
			}
			span += uint64(d)
		}
	}
	return span
}

// Profile returns the envelope profile under permutation p: for every
// row (in permuted position) the distance from the leftmost stored
// entry to the diagonal, summed. The classic RCM objective; reported
// for diagnostics.
func Profile(a *sparse.CSR, p Permutation) uint64 {
	rowPtr, colIdx, _ := a.Index()
	var prof uint64
	for i := 0; i < a.Rows(); i++ {
		pi := pos(p, i)
		min := pi
		for q := rowPtr[i]; q < rowPtr[i+1]; q++ {
			if pj := pos(p, colIdx[q]); pj < min {
				min = pj
			}
		}
		prof += uint64(pi - min)
	}
	return prof
}

func pos(p Permutation, i int) int {
	if p == nil {
		return i
	}
	return p[i]
}

// ByDegree returns the descending-degree ordering: position 0 gets the
// highest-degree node. The sort is stable, so equal-degree nodes keep
// their relative natural order (which preserves whatever locality the
// loader's id assignment already has within a degree class).
func ByDegree(a *sparse.CSR) Permutation {
	n := a.Rows()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		return a.RowNNZ(idx[x]) > a.RowNNZ(idx[y])
	})
	perm := make(Permutation, n)
	for nw, old := range idx {
		perm[old] = nw
	}
	return perm
}

// RCM returns the reverse Cuthill–McKee ordering of a's symmetrized
// pattern. Each connected component is traversed breadth-first from a
// pseudo-peripheral node (George–Liu sweeps), neighbors in ascending
// degree order; the concatenated order is reversed at the end.
func RCM(a *sparse.CSR) Permutation {
	n := a.Rows()
	nbr := symmetrizedPattern(a)
	deg := make([]int, n)
	for i, row := range nbr {
		deg[i] = len(row)
	}

	visited := make([]bool, n)
	cm := make([]int, 0, n) // Cuthill–McKee order: position -> node
	level := make([]int, n)
	queue := make([]int, 0, n)
	scratch := make([]int, 0, 64)

	// bfs runs a level-synchronous BFS from start over unvisited-marked
	// scratch state, returning the nodes in visit order and the index
	// where the last level begins. mark controls whether visited is
	// left set (the real traversal) or rolled back (peripheral sweeps).
	bfs := func(start int, mark bool) (order []int, lastLevel int) {
		queue = queue[:0]
		queue = append(queue, start)
		visited[start] = true
		level[start] = 0
		maxLvl := 0
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			scratch = scratch[:0]
			for _, v := range nbr[u] {
				if !visited[v] {
					visited[v] = true
					level[v] = level[u] + 1
					if level[v] > maxLvl {
						maxLvl = level[v]
					}
					scratch = append(scratch, v)
				}
			}
			// Ascending degree within the discovered batch (ties by id
			// for determinism).
			sort.Slice(scratch, func(x, y int) bool {
				if deg[scratch[x]] != deg[scratch[y]] {
					return deg[scratch[x]] < deg[scratch[y]]
				}
				return scratch[x] < scratch[y]
			})
			queue = append(queue, scratch...)
		}
		lastLevel = len(queue)
		for i := len(queue) - 1; i >= 0 && level[queue[i]] == maxLvl; i-- {
			lastLevel = i
		}
		if !mark {
			for _, u := range queue {
				visited[u] = false
			}
		}
		return queue, lastLevel
	}

	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		// Pseudo-peripheral search: walk to a min-degree node of the
		// farthest BFS level until the eccentricity stops growing.
		root := start
		bestEcc := -1
		for sweep := 0; sweep < 4; sweep++ {
			orderSeen, last := bfs(root, false)
			ecc := level[orderSeen[len(orderSeen)-1]]
			if ecc <= bestEcc {
				break
			}
			bestEcc = ecc
			next := root
			for _, u := range orderSeen[last:] {
				if next == root || deg[u] < deg[next] {
					next = u
				}
			}
			if next == root {
				break
			}
			root = next
		}
		comp, _ := bfs(root, true)
		cm = append(cm, comp...)
	}

	perm := make(Permutation, n)
	for i, u := range cm {
		perm[u] = n - 1 - i // the "reverse" in reverse Cuthill–McKee
	}
	return perm
}

// symmetrizedPattern returns the union pattern of a and aᵀ as adjacency
// lists (no self-loops, ascending, deduplicated). Graph adjacencies are
// already symmetric, in which case this is just their structure; the
// transpose union makes RCM well-defined for any square input.
func symmetrizedPattern(a *sparse.CSR) [][]int {
	n := a.Rows()
	var at sparse.CSR
	a.TransposeInto(&at)
	rowPtr, colIdx, _ := a.Index()
	tRowPtr, tColIdx, _ := at.Index()
	nbr := make([][]int, n)
	for i := 0; i < n; i++ {
		row := make([]int, 0, (rowPtr[i+1]-rowPtr[i])+(tRowPtr[i+1]-tRowPtr[i]))
		p, q := rowPtr[i], tRowPtr[i]
		// Merge the two ascending column lists, dropping duplicates and
		// the diagonal.
		for p < rowPtr[i+1] || q < tRowPtr[i+1] {
			var j int
			switch {
			case p >= rowPtr[i+1]:
				j = tColIdx[q]
				q++
			case q >= tRowPtr[i+1]:
				j = colIdx[p]
				p++
			case colIdx[p] < tColIdx[q]:
				j = colIdx[p]
				p++
			case colIdx[p] > tColIdx[q]:
				j = tColIdx[q]
				q++
			default:
				j = colIdx[p]
				p++
				q++
			}
			if j != i && (len(row) == 0 || row[len(row)-1] != j) {
				row = append(row, j)
			}
		}
		nbr[i] = row
	}
	return nbr
}
