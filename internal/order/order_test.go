package order

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/sparse"
)

// scrambledPath builds the adjacency of an n-node path whose node ids
// are scrambled, so the natural order has terrible bandwidth but a
// perfect ordering (bandwidth 1) exists.
func scrambledPath(n int) *sparse.CSR {
	label := make([]int, n)
	for i := range label {
		label[i] = (i*7919 + 13) % n // gcd(7919, n) = 1 for the n used below
	}
	b := sparse.NewBuilder(n, n)
	for i := 0; i+1 < n; i++ {
		b.AddSym(label[i], label[i+1], 1)
	}
	return b.ToCSR()
}

func TestRCMRestoresPathLocality(t *testing.T) {
	a := scrambledPath(500)
	before := Bandwidth(a, nil)
	p := RCM(a)
	if err := p.Validate(500); err != nil {
		t.Fatal(err)
	}
	after := Bandwidth(a, p)
	if after != 1 {
		t.Fatalf("RCM bandwidth on a path = %d, want 1 (before %d)", after, before)
	}
	if EdgeSpan(a, p) >= EdgeSpan(a, nil) {
		t.Fatal("RCM must reduce the edge span of a scrambled path")
	}
}

func TestRCMGrid(t *testing.T) {
	g := gen.Grid(30, 40)
	a := g.Adjacency()
	p := RCM(a)
	if err := p.Validate(a.Rows()); err != nil {
		t.Fatal(err)
	}
	// A 30×40 grid in row-major order has bandwidth 40; RCM must reach
	// the short dimension (+1 slack for the level rounding).
	if bw := Bandwidth(a, p); bw > 31 {
		t.Fatalf("RCM bandwidth on the grid = %d, want <= 31", bw)
	}
}

func TestRCMDisconnected(t *testing.T) {
	// Two scrambled components plus an isolated node.
	b := sparse.NewBuilder(21, 21)
	for i := 0; i+1 < 10; i++ {
		b.AddSym((i*3)%10, ((i+1)*3)%10, 1)
	}
	for i := 10; i+1 < 20; i++ {
		b.AddSym(10+((i*7)%10), 10+(((i+1)*7)%10), 1)
	}
	a := b.ToCSR()
	p := RCM(a)
	if err := p.Validate(21); err != nil {
		t.Fatal(err)
	}
	if bw := Bandwidth(a, p); bw >= Bandwidth(a, nil) {
		t.Fatalf("RCM did not improve the disconnected bandwidth: %d", bw)
	}
}

func TestByDegreePacksHubs(t *testing.T) {
	// A star: the hub must land at position 0, leaves keep their order.
	b := sparse.NewBuilder(6, 6)
	for i := 0; i < 6; i++ {
		if i != 3 {
			b.AddSym(3, i, 1) // hub is node 3
		}
	}
	a := b.ToCSR()
	p := ByDegree(a)
	if err := p.Validate(6); err != nil {
		t.Fatal(err)
	}
	if p[3] != 0 {
		t.Fatalf("hub position = %d, want 0", p[3])
	}
	// Stability: equal-degree leaves keep ascending relative order.
	prev := 0
	for i := 0; i < 6; i++ {
		if i == 3 {
			continue
		}
		if p[i] < prev {
			t.Fatalf("degree sort not stable: p = %v", p)
		}
		prev = p[i]
	}
}

func TestPermutationRows(t *testing.T) {
	p := Permutation{2, 0, 1}
	src := []float64{1, 10, 2, 20, 3, 30} // rows (1,10) (2,20) (3,30)
	dst := make([]float64, 6)
	p.ApplyRows(dst, src, 2)
	want := []float64{2, 20, 3, 30, 1, 10}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("ApplyRows = %v, want %v", dst, want)
		}
	}
	back := make([]float64, 6)
	p.InvertRows(back, dst, 2)
	for i := range src {
		if back[i] != src[i] {
			t.Fatalf("InvertRows round trip = %v, want %v", back, src)
		}
	}
	// nil permutation degrades to copy in both directions.
	var id Permutation
	id.ApplyRows(dst, src, 2)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatal("nil ApplyRows must copy")
		}
	}
	inv := p.Inverse()
	if inv[2] != 0 || inv[0] != 1 || inv[1] != 2 {
		t.Fatalf("Inverse = %v", inv)
	}
}

func TestValidateRejectsBadPermutations(t *testing.T) {
	for _, bad := range []Permutation{
		{0, 0, 2},
		{0, 1},
		{0, 1, 3},
		{-1, 1, 2},
	} {
		if err := bad.Validate(3); err == nil {
			t.Fatalf("permutation %v must fail validation", bad)
		}
	}
	if err := (Permutation{2, 1, 0}).Validate(3); err != nil {
		t.Fatal(err)
	}
}

func TestStrategyRoundTrip(t *testing.T) {
	for _, s := range []Strategy{StrategyAuto, StrategyRCM, StrategyDegree, StrategyNone} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy must fail to parse")
	}
}

func TestComputeForcedStrategies(t *testing.T) {
	a := scrambledPath(100)
	if p, s := Compute(StrategyNone, a); p != nil || s != StrategyNone {
		t.Fatal("none must keep the natural order")
	}
	if p, s := Compute(StrategyRCM, a); p == nil || s != StrategyRCM {
		t.Fatal("forced rcm must return a permutation")
	}
	if p, s := Compute(StrategyDegree, a); p == nil || s != StrategyDegree {
		t.Fatal("forced degree must return a permutation")
	}
}

func TestComputeAutoSmallGraphKeepsOrder(t *testing.T) {
	a := scrambledPath(100) // far below AutoMinNodes
	if p, s := Compute(StrategyAuto, a); p != nil || s != StrategyNone {
		t.Fatalf("auto below AutoMinNodes must keep the natural order, got %v", s)
	}
}

func TestComputeAutoPicksImprovement(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a graph above AutoMinNodes")
	}
	a := scrambledPath(AutoMinNodes + 1)
	p, s := Compute(StrategyAuto, a)
	if s != StrategyRCM || p == nil {
		t.Fatalf("auto on a scrambled path chose %v, want rcm", s)
	}
	if Bandwidth(a, p) != 1 {
		t.Fatalf("auto RCM bandwidth = %d", Bandwidth(a, p))
	}
}

func TestRCMOnKronecker(t *testing.T) {
	g := gen.Kronecker(6) // 729 nodes
	a := g.Adjacency()
	p := RCM(a)
	if err := p.Validate(a.Rows()); err != nil {
		t.Fatal(err)
	}
	if span := EdgeSpan(a, p); span >= EdgeSpan(a, nil) {
		t.Fatalf("RCM span %d did not improve on natural %d", span, EdgeSpan(a, nil))
	}
	// Profile is a diagnostics metric; it must be consistent with a
	// valid permutation (finite, computed without panics).
	_ = Profile(a, p)
	_ = Profile(a, nil)
}
